// Sensitivity: network bandwidth. The paper uses two metrics because the
// right answer depends on the network: "pages sent ... is useful for
// comparing the performance of the algorithms in a communication-bound
// environment such as the Internet", response time for "a local-area,
// high-speed network (100 Mbit/sec)". This sweep shows the same 2-way join
// moving from disk-bound (policy gap driven by interference) to
// network-bound (policy gap driven by pages sent) as bandwidth shrinks.

#include <iostream>

#include "core/report.h"
#include "harness.h"
#include "plan/binding.h"

using namespace dimsum;
using namespace dimsum::bench;

namespace {

double Run2Way(SiteAnnotation scan, SiteAnnotation join, double mbps) {
  WorkloadSpec spec;
  spec.num_relations = 2;
  spec.num_servers = 1;
  BenchmarkWorkload w = MakeChainWorkloadRoundRobin(spec);
  SystemConfig config;
  config.num_servers = 1;
  config.params.buf_alloc = BufAlloc::kMaximum;
  config.params.net_bandwidth_mbps = mbps;
  Plan plan(
      MakeDisplay(MakeJoin(MakeScan(0, scan), MakeScan(1, scan), join)));
  BindSites(plan, w.catalog);
  return ExecutePlan(plan, w.catalog, w.query, config).response_ms / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  std::cout << "==== Sensitivity: network bandwidth ====\n"
            << "2-way join, 1 server, no caching, maximum allocation [s]\n"
            << "(DS ships 500 pages, QS ships 250)\n\n";
  ReportTable table({"bandwidth [Mbit/s]", "DS", "QS", "DS/QS"});
  for (double mbps : {1.0, 4.0, 16.0, 100.0, 1000.0}) {
    const double ds =
        Run2Way(SiteAnnotation::kClient, SiteAnnotation::kConsumer, mbps);
    const double qs = Run2Way(SiteAnnotation::kPrimaryCopy,
                              SiteAnnotation::kInnerRel, mbps);
    table.AddRow({Fmt(mbps, 0), Fmt(ds), Fmt(qs), Fmt(ds / qs)});
  }
  table.Print(std::cout);
  std::cout << "\nOn a slow network the response-time ratio approaches the "
               "pages-sent ratio\n(500/250 = 2), justifying the paper's "
               "communication metric; on a fast LAN the\nratio is set by "
               "disk behavior instead.\n";
  return 0;
}

// Ablation: disable the disk controller's read-ahead. The sequential-scan
// advantage (3.5 vs 11.8 ms/page) collapses, and with it the structure of
// the Figure 3 tradeoff -- demonstrating that the interference effect the
// paper leans on is specifically about *losing sequentiality*.

#include <iostream>

#include "core/report.h"
#include "harness.h"
#include "plan/binding.h"

using namespace dimsum;
using namespace dimsum::bench;

namespace {

double Run2Way(SiteAnnotation scan, SiteAnnotation join, int readahead) {
  WorkloadSpec spec;
  spec.num_relations = 2;
  spec.num_servers = 1;
  BenchmarkWorkload w = MakeChainWorkloadRoundRobin(spec);
  SystemConfig config;
  config.num_servers = 1;
  config.params.buf_alloc = BufAlloc::kMinimum;
  config.disk_params.readahead_pages = readahead;
  Plan plan(MakeDisplay(
      MakeJoin(MakeScan(0, scan), MakeScan(1, scan), join)));
  BindSites(plan, w.catalog);
  return ExecutePlan(plan, w.catalog, w.query, config).response_ms / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  std::cout << "==== Ablation: disk read-ahead off ====\n"
            << "2-way join, 1 server, no caching, minimum allocation [s]\n\n";
  ReportTable table({"plan", "read-ahead on", "read-ahead off"});
  table.AddRow({"DS (scans at server disk, join at client)",
                Fmt(Run2Way(SiteAnnotation::kClient,
                            SiteAnnotation::kConsumer, 8)),
                Fmt(Run2Way(SiteAnnotation::kClient,
                            SiteAnnotation::kConsumer, 0))});
  table.AddRow({"QS (everything at the server)",
                Fmt(Run2Way(SiteAnnotation::kPrimaryCopy,
                            SiteAnnotation::kInnerRel, 8)),
                Fmt(Run2Way(SiteAnnotation::kPrimaryCopy,
                            SiteAnnotation::kInnerRel, 0))});
  table.Print(std::cout);
  std::cout << "\nWithout read-ahead every read pays nearly a full "
               "rotation, so QS's\ninterference penalty (scan pattern "
               "destroyed by temp I/O) disappears into\nuniformly slow "
               "I/O and the DS/QS gap narrows.\n";
  return 0;
}

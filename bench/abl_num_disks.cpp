// Ablation: NumDisks (Table 2). The paper ran everything with one disk per
// site; this sweep shows how the central single-server tradeoff of Figure 3
// changes when servers (and the client) get more arms: QS's scan/temp
// interference dissolves once the work spreads over independent disks, so
// the DS advantage at 0% caching shrinks.

#include <iostream>

#include "core/report.h"
#include "harness.h"
#include "plan/binding.h"

using namespace dimsum;
using namespace dimsum::bench;

namespace {

double Run2Way(SiteAnnotation scan, SiteAnnotation join, int num_disks) {
  WorkloadSpec spec;
  spec.num_relations = 2;
  spec.num_servers = 1;
  BenchmarkWorkload w = MakeChainWorkloadRoundRobin(spec);
  SystemConfig config;
  config.num_servers = 1;
  config.params.buf_alloc = BufAlloc::kMinimum;
  config.params.num_disks = num_disks;
  Plan plan(
      MakeDisplay(MakeJoin(MakeScan(0, scan), MakeScan(1, scan), join)));
  BindSites(plan, w.catalog);
  return ExecutePlan(plan, w.catalog, w.query, config).response_ms / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  std::cout << "==== Ablation: disks per site (Table 2 NumDisks) ====\n"
            << "2-way join, 1 server, no caching, minimum allocation [s]\n\n";
  ReportTable table({"disks/site", "DS (join at client)",
                     "QS (join at server)", "QS/DS"});
  for (int disks : {1, 2, 4}) {
    const double ds =
        Run2Way(SiteAnnotation::kClient, SiteAnnotation::kConsumer, disks);
    const double qs = Run2Way(SiteAnnotation::kPrimaryCopy,
                              SiteAnnotation::kInnerRel, disks);
    table.AddRow({std::to_string(disks), Fmt(ds), Fmt(qs), Fmt(qs / ds)});
  }
  table.Print(std::cout);
  std::cout << "\nWith one arm QS pays the interference penalty of Figure 3;"
               "\nadditional arms dissolve it and the policies converge.\n";
  return 0;
}

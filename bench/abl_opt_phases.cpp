// Ablation: optimizer phases. Compares the plan quality (estimated
// response time) and work (plans evaluated) of random plans, iterative
// improvement only, simulated annealing only, and the full 2PO
// combination -- the comparison that motivated 2PO in [IK90].

#include <iostream>

#include "core/report.h"
#include "harness.h"

using namespace dimsum;
using namespace dimsum::bench;

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  std::cout << "==== Ablation: optimizer phases (II / SA / 2PO) ====\n"
            << "10-way join over 5 servers, hybrid space, estimated "
               "response time [s]\n\n";

  WorkloadSpec spec;
  spec.num_relations = 10;
  spec.num_servers = 5;
  Rng workload_rng(321);
  BenchmarkWorkload w = MakeChainWorkload(spec, workload_rng);
  CostModel model(w.catalog, CostParams{});

  struct Variant {
    const char* name;
    bool enable_ii;
    bool enable_sa;
  };
  ReportTable table({"variant", "estimated response [s]", "plans evaluated"});
  for (const Variant& variant :
       {Variant{"random plan (no search)", false, false},
        Variant{"iterative improvement only", true, false},
        Variant{"simulated annealing only", false, true},
        Variant{"2PO (II + SA)", true, true}}) {
    RunningStat cost;
    RunningStat evals;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      OptimizerConfig config = HarnessOptimizer();
      config.metric = OptimizeMetric::kResponseTime;
      config.enable_ii = variant.enable_ii;
      config.enable_sa = variant.enable_sa;
      TwoPhaseOptimizer optimizer(model, config);
      Rng rng(seed);
      OptimizeResult result = optimizer.Optimize(w.query, rng);
      cost.Add(result.cost / 1000.0);
      evals.Add(result.plans_evaluated);
    }
    table.AddRow({variant.name,
                  FmtCi(cost.mean(), cost.ConfidenceHalfWidth90()),
                  Fmt(evals.mean(), 0)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected ordering: random >> SA-only, II-only > 2PO; the "
               "combination earns\nits extra evaluations with the best "
               "plans (cf. [IK90]).\n";
  return 0;
}

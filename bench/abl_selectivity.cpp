// Sensitivity: join selectivity. Section 4.2.1: "the specific cross-over
// point shown in Figure 2 results from the use of functional joins whose
// results are the same size as a base relation. This cross-over point would
// move to the right if the join result size was smaller than a base
// relation, and would move to the left if it was larger." This sweep
// regenerates Figure 2's DS/QS communication crossover for several join
// selectivities and reports where the crossover falls.

#include <iostream>

#include "core/report.h"
#include "harness.h"

using namespace dimsum;
using namespace dimsum::bench;

namespace {

int64_t Pages(double cached, double selectivity, ShippingPolicy policy) {
  WorkloadSpec spec;
  spec.num_relations = 2;
  spec.num_servers = 1;
  spec.cached_fraction = cached;
  spec.selectivity = selectivity;
  return static_cast<int64_t>(
      RunTrial(spec, policy, Measure::kPagesSent, /*seed=*/3,
               /*server_load_per_sec=*/0.0, BufAlloc::kMaximum,
               /*random_placement=*/false));
}

}  // namespace

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  std::cout << "==== Sensitivity: join selectivity (Figure 2 crossover "
               "movement) ====\n"
            << "2-way join, 1 server; pages sent; QS ships the result, DS "
               "ships the inputs\n\n";
  ReportTable table({"selectivity", "result pages", "QS (flat)",
                     "DS @ 0%", "DS @ 50%", "crossover (cached %)"});
  for (double selectivity : {2.0, 1.0, 0.5, 0.2}) {
    const int64_t qs = Pages(0.0, selectivity, ShippingPolicy::kQueryShipping);
    const int64_t ds0 =
        Pages(0.0, selectivity, ShippingPolicy::kDataShipping);
    const int64_t ds50 =
        Pages(0.5, selectivity, ShippingPolicy::kDataShipping);
    // DS(c) = 500 * (1 - c); crossover where DS(c) = QS.
    const double crossover =
        100.0 * (1.0 - static_cast<double>(qs) / static_cast<double>(ds0));
    table.AddRow({Fmt(selectivity, 1), std::to_string(qs),
                  std::to_string(qs), std::to_string(ds0),
                  std::to_string(ds50), Fmt(crossover, 0)});
  }
  table.Print(std::cout);
  std::cout << "\npaper: smaller join results push the crossover right "
               "(DS needs more caching\nto beat QS); larger results pull it "
               "left.\n";
  return 0;
}

// Ablation: shrink the write-behind quota to 1 (near-synchronous temp
// writes). The paper's Figure 3 story for DS at 0% caching depends on the
// client overlapping its join partition writes with the server's scan
// reads; synchronous writes serialize that overlap and DS loses much of
// its advantage.

#include <iostream>

#include "core/report.h"
#include "harness.h"
#include "plan/binding.h"

using namespace dimsum;
using namespace dimsum::bench;

namespace {

double Run2Way(SiteAnnotation scan, SiteAnnotation join, int quota) {
  WorkloadSpec spec;
  spec.num_relations = 2;
  spec.num_servers = 1;
  BenchmarkWorkload w = MakeChainWorkloadRoundRobin(spec);
  SystemConfig config;
  config.num_servers = 1;
  config.params.buf_alloc = BufAlloc::kMinimum;
  config.disk_params.max_pending_writes = quota;
  Plan plan(
      MakeDisplay(MakeJoin(MakeScan(0, scan), MakeScan(1, scan), join)));
  BindSites(plan, w.catalog);
  return ExecutePlan(plan, w.catalog, w.query, config).response_ms / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  std::cout << "==== Ablation: write-behind quota ====\n"
            << "2-way join, 1 server, no caching, minimum allocation [s]\n\n";
  ReportTable table({"plan", "quota 16 (default)", "quota 1 (near-sync)"});
  table.AddRow({"DS (join at client)",
                Fmt(Run2Way(SiteAnnotation::kClient,
                            SiteAnnotation::kConsumer, 16)),
                Fmt(Run2Way(SiteAnnotation::kClient,
                            SiteAnnotation::kConsumer, 1))});
  table.AddRow({"QS (join at server)",
                Fmt(Run2Way(SiteAnnotation::kPrimaryCopy,
                            SiteAnnotation::kInnerRel, 16)),
                Fmt(Run2Way(SiteAnnotation::kPrimaryCopy,
                            SiteAnnotation::kInnerRel, 1))});
  table.Print(std::cout);
  std::cout << "\nThe DS advantage turns out to be robust to the "
               "write-behind depth: even\nnear-synchronous writes cost only "
               "a few percent, because the client disk\n(temp only) is not "
               "the bottleneck -- the fault round trips are. QS is\n"
               "unaffected: its bottleneck is the interference on the server "
               "disk.\n";
  return 0;
}

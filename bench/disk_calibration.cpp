// Disk calibration (Section 3.2.2 / 4.1 in-text): the paper calibrates its
// Fujitsu-M2266-style disk model by separate simulation runs to roughly
// 3.5 ms per page sequential and 11.8 ms per page random. This harness
// performs the same calibration runs against our disk model.

#include <iostream>

#include "common/rng.h"
#include "core/report.h"
#include "sim/disk.h"
#include "sim/simulator.h"
#include "sim/task.h"

using namespace dimsum;

namespace {

sim::Process SequentialReader(sim::Simulator& s, sim::Disk& disk, int count,
                              double* per_page) {
  const double begin = s.now();
  for (int i = 0; i < count; ++i) co_await disk.Read(i);
  *per_page = (s.now() - begin) / count;
}

sim::Process RandomReader(sim::Simulator& s, sim::Disk& disk, int count,
                          double* per_page) {
  Rng rng(4242);
  const double begin = s.now();
  for (int i = 0; i < count; ++i) {
    co_await disk.Read(rng.UniformInt(0, disk.params().total_pages() - 1));
  }
  *per_page = (s.now() - begin) / count;
}

}  // namespace

int main() {
  std::cout << "==== Disk calibration (paper Section 3.2.2) ====\n\n";
  double seq = 0.0;
  double rnd = 0.0;
  {
    sim::Simulator s;
    sim::Disk disk(s, "calib", sim::DiskParams{});
    s.Spawn(SequentialReader(s, disk, 5000, &seq));
    s.Run();
  }
  {
    sim::Simulator s;
    sim::Disk disk(s, "calib", sim::DiskParams{});
    s.Spawn(RandomReader(s, disk, 8000, &rnd));
    s.Run();
  }
  ReportTable table({"pattern", "measured [ms/page]", "paper target"});
  table.AddRow({"sequential", Fmt(seq), "3.5"});
  table.AddRow({"random", Fmt(rnd), "11.8"});
  table.Print(std::cout);
  return 0;
}

// Extension: cost-model calibration harness. For every configuration of a
// (query size x shipping policy x cache state) sweep, optimize a chain
// join, cost the chosen plan with per-operator estimate capture, execute
// it with per-operator actual collection, and join the two sides into an
// EXPLAIN ANALYZE report (core/report.h). The recorded series quantifies
// how far the GHK92-style analytic model strays from the detailed
// simulator -- per configuration (response-time and total-cost relative
// error) and within each plan (mean/max per-operator error), so model
// regressions show up as calibration drift rather than silent plan-quality
// loss.
//
// Deterministic: round-robin placement, fixed seed, results bit-identical
// for any DIMSUM_THREADS.
//
// Writes BENCH_calibration.json; pass --smoke for the reduced CI
// configuration. CI gates on the mean response-time relative error (see
// tools/check_bench.py and the workflow's calibration step).

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "cost/response_time.h"

using namespace dimsum;
using namespace dimsum::bench;

namespace {

constexpr int kServers = 2;

struct Point {
  std::string policy;
  int relations = 0;
  double cached = 0.0;
  double est_response_ms = 0.0;
  double sim_response_ms = 0.0;
  double response_rel_err = 0.0;  // |est - sim| / sim
  double est_total_ms = 0.0;
  double sim_total_ms = 0.0;
  double total_rel_err = 0.0;
  double mean_op_rel_err = 0.0;  // mean |symmetric err| over active ops
  double max_op_rel_err = 0.0;
};

const char* PolicyName(ShippingPolicy policy) {
  switch (policy) {
    case ShippingPolicy::kDataShipping:
      return "ds";
    case ShippingPolicy::kQueryShipping:
      return "qs";
    case ShippingPolicy::kHybridShipping:
      return "hy";
  }
  return "?";
}

double RelErr(double est, double sim) {
  return sim > 0.0 ? std::abs(est - sim) / sim : 0.0;
}

Point RunConfig(int relations, ShippingPolicy policy, double cached) {
  WorkloadSpec spec;
  spec.num_relations = relations;
  spec.num_servers = kServers;
  spec.cached_fraction = cached;
  BenchmarkWorkload workload = MakeChainWorkloadRoundRobin(spec);

  SystemConfig config;
  config.num_servers = kServers;
  config.params.buf_alloc = BufAlloc::kMinimum;
  // Pure observation (clock reads + accumulation): execution results are
  // bit-identical with or without collection.
  config.collect_operator_actuals = true;
  config.collect_histograms = MetricsRegistry::Global().enabled();

  ClientServerSystem system(std::move(workload.catalog), config);
  const OptimizerConfig opt = HarnessOptimizer();
  auto result = system.Run(workload.query, policy,
                           OptimizeMetric::kResponseTime, /*seed=*/1, &opt);

  // Re-cost the chosen plan with estimate capture; the returned numbers
  // are identical to what the optimizer saw (collection is side-band).
  PlanEstimate est;
  EstimateTime(result.optimize.plan, system.catalog(), workload.query,
               system.config().params, system.ServerDiskUtilization(), &est);
  const ExplainReport report = BuildExplainReport(est, result.execute);

  Point point;
  point.policy = PolicyName(policy);
  point.relations = relations;
  point.cached = cached;
  point.est_response_ms = report.est_response_ms;
  point.sim_response_ms = report.act_response_ms;
  point.response_rel_err =
      RelErr(report.est_response_ms, report.act_response_ms);
  point.est_total_ms = report.est_total_ms;
  point.sim_total_ms = report.act_total_ms;
  point.total_rel_err = RelErr(report.est_total_ms, report.act_total_ms);
  point.mean_op_rel_err = report.mean_op_err;
  point.max_op_rel_err = report.max_op_err;
  return point;
}

void WriteJson(const std::string& path, const BenchMeta& meta,
               const std::vector<Point>& points) {
  std::ofstream out(path);
  out << "{\"meta\": " << BenchMetaJson(meta) << ",\n \"records\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    out << "  {\"policy\": \"" << p.policy
        << "\", \"relations\": " << p.relations << ", \"cached\": " << p.cached
        << ", \"est_response_ms\": " << p.est_response_ms
        << ", \"sim_response_ms\": " << p.sim_response_ms
        << ", \"response_rel_err\": " << p.response_rel_err
        << ", \"est_total_ms\": " << p.est_total_ms
        << ", \"sim_total_ms\": " << p.sim_total_ms
        << ", \"total_rel_err\": " << p.total_rel_err
        << ", \"mean_op_rel_err\": " << p.mean_op_rel_err
        << ", \"max_op_rel_err\": " << p.max_op_rel_err << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  if (MetricsRegistry::Global().enabled()) {
    MetricsRegistry::Global().WriteJsonFile("BENCH_calibration.metrics.json");
  }
}

}  // namespace

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<int> sizes =
      smoke ? std::vector<int>{2, 6} : std::vector<int>{2, 6, 10};
  const std::vector<double> cache_states{0.0, 1.0};

  std::cout << "==== Extension: cost-model calibration ====\n"
            << "chain joins on " << kServers
            << " servers, round-robin placement, minimum allocation;\n"
               "estimated vs simulated response time / total cost, with\n"
               "per-operator attribution error from EXPLAIN ANALYZE\n\n";

  std::vector<Point> points;
  ReportTable table({"policy", "rels", "cached", "est resp [s]",
                     "sim resp [s]", "resp err", "total err", "op err mean",
                     "op err max"});
  double err_sum = 0.0;
  double err_max = 0.0;
  for (const int relations : sizes) {
    for (const double cached : cache_states) {
      for (const ShippingPolicy policy :
           {ShippingPolicy::kDataShipping, ShippingPolicy::kQueryShipping,
            ShippingPolicy::kHybridShipping}) {
        const Point p = RunConfig(relations, policy, cached);
        points.push_back(p);
        err_sum += p.response_rel_err;
        err_max = std::max(err_max, p.response_rel_err);
        table.AddRow({p.policy, std::to_string(p.relations), Fmt(p.cached, 1),
                      Fmt(p.est_response_ms / 1000.0),
                      Fmt(p.sim_response_ms / 1000.0),
                      Fmt(p.response_rel_err * 100.0, 1) + " %",
                      Fmt(p.total_rel_err * 100.0, 1) + " %",
                      Fmt(p.mean_op_rel_err * 100.0, 1) + " %",
                      Fmt(p.max_op_rel_err * 100.0, 1) + " %"});
      }
    }
  }
  table.Print(std::cout);
  const double mean_err = err_sum / static_cast<double>(points.size());
  std::cout << "\nmean response-time relative error "
            << Fmt(mean_err * 100.0, 1) << " %, max "
            << Fmt(err_max * 100.0, 1)
            << " % (the model is deliberately optimistic: full overlap "
               "within a\nphase, no cross-operator disk queueing)\n";
  WriteJson("BENCH_calibration.json",
            MakeBenchMeta("dimsum.bench.calibration.v1",
                          std::string("chain est-vs-sim, servers=2, ") +
                              (smoke ? "smoke" : "full")),
            points);
  std::cout << "\nWrote BENCH_calibration.json\n";
  return 0;
}

// Extension: fault injection and recovery under the three shipping
// policies. A renewal crash process (exponential MTBF/MTTR) takes the one
// server down repeatedly while M closed-loop clients run their query
// streams; the sweep varies MTBF and the recovery policy:
//
//   qs       -- cold caches, server-side joins, no re-optimization. Every
//               submission needs the server, so clients back off and stall
//               through each outage; operators caught mid-outage stall at
//               their next disk request.
//   ds_warm  -- fully cached relations, client-side joins. The plan
//               depends on no server site at all, so crashes are
//               invisible: availability comes from data shipping's
//               client-resident resources.
//   hy_reopt -- compiled server-side plan over cached relations, with
//               2-step site selection re-run around crashed sites. The
//               first outage flips the plan to the clients, after which
//               the stream is immune like ds_warm -- graceful degradation
//               through re-optimization rather than placement luck.
//
// Everything is deterministic for a fixed seed (crash windows, think
// times, and the re-optimizer all draw from seeded streams; results are
// bit-identical for any DIMSUM_THREADS).
//
// Writes BENCH_faults.json; pass --smoke for the reduced CI configuration.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "core/report.h"
#include "cost/cost_model.h"
#include "exec/runtime.h"
#include "opt/optimizer.h"
#include "plan/binding.h"
#include "plan/plan.h"
#include "plan/query.h"
#include "sim/fault.h"
#include "workload/driver.h"

using namespace dimsum;

namespace {

constexpr int kNumClients = 2;
constexpr double kMttrMs = 5000.0;

struct Point {
  std::string policy;
  double mtbf_ms = 0.0;
  double mttr_ms = 0.0;
  double throughput_qps = 0.0;
  double mean_response_ms = 0.0;
  double response_ci90_ms = 0.0;
  double healthy_mean_ms = 0.0;
  double degraded_mean_ms = 0.0;
  int64_t retries = 0;
  int64_t reopts = 0;
  double abort_rate = 0.0;
  double stall_ms = 0.0;
  int64_t retransmits = 0;
  int64_t crashes = 0;
  double downtime_ms = 0.0;
};

enum class Policy { kQs, kDsWarm, kHyReopt };

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kQs:
      return "qs";
    case Policy::kDsWarm:
      return "ds_warm";
    case Policy::kHyReopt:
      return "hy_reopt";
  }
  return "?";
}

/// Runs M closed-loop clients re-issuing a 2-way join under `spec` faults.
/// `policy` picks the plan shape and recovery behavior (see file header).
Point RunConfig(Policy policy, const std::string& spec, double mtbf_ms,
                int queries_per_client) {
  const bool warm_cache = policy != Policy::kQs;
  const SiteAnnotation scan = policy == Policy::kDsWarm
                                  ? SiteAnnotation::kClient
                                  : SiteAnnotation::kPrimaryCopy;
  const SiteAnnotation join = policy == Policy::kDsWarm
                                  ? SiteAnnotation::kConsumer
                                  : SiteAnnotation::kInnerRel;

  Catalog catalog(kNumClients);
  for (int i = 0; i < 2; ++i) {
    catalog.AddRelation("R" + std::to_string(i), 10000, 100);
    catalog.PlaceRelation(i, ServerSite(0, kNumClients));
    for (int c = 0; c < kNumClients; ++c) {
      catalog.SetCachedFraction(i, ClientSite(c), warm_cache ? 1.0 : 0.0);
    }
  }
  SystemConfig config;
  config.num_clients = kNumClients;
  config.num_servers = 1;
  config.params.buf_alloc = BufAlloc::kMaximum;
  config.collect_histograms = MetricsRegistry::Global().enabled();
  const sim::FaultSchedule faults = sim::ParseFaultSpec(spec);
  config.faults = &faults;

  // Recovery hooks for hy_reopt: site selection against the true catalog
  // in the hybrid space, so a crashed primary copy flips scans/joins to
  // the (fully cached) clients.
  const CostModel model(catalog, config.params);
  OptimizerConfig reopt;
  reopt.policy = ShippingPolicy::kHybridShipping;
  reopt.metric = OptimizeMetric::kResponseTime;
  reopt.ii_starts = 4;

  std::vector<Plan> plans;
  std::vector<QueryGraph> queries;
  plans.reserve(kNumClients);
  queries.reserve(kNumClients);
  for (int c = 0; c < kNumClients; ++c) {
    queries.push_back(QueryGraph::Chain({0, 1}));
    queries.back().home_client = ClientSite(c);
    plans.emplace_back(
        MakeDisplay(MakeJoin(MakeScan(0, scan), MakeScan(1, scan), join)));
    BindSites(plans.back(), catalog, ClientSite(c));
  }
  std::vector<ClientWorkload> clients;
  for (int c = 0; c < kNumClients; ++c) {
    ClientWorkload work{&plans[c], &queries[c]};
    if (policy == Policy::kHyReopt) {
      work.reopt_model = &model;
      work.reopt_config = &reopt;
    }
    clients.push_back(work);
  }

  DriverConfig driver;
  driver.queries_per_client = queries_per_client;
  driver.think_time_mean_ms = 2000.0;
  driver.warmup_queries = kNumClients;
  driver.num_batches = 6;
  driver.seed = 42;
  driver.retry.reoptimize = policy == Policy::kHyReopt;
  DriverResult result = RunClosedLoop(clients, catalog, config, driver);

  Point point;
  point.policy = PolicyName(policy);
  point.mtbf_ms = mtbf_ms;
  point.mttr_ms = kMttrMs;
  point.throughput_qps = result.throughput_qps;
  point.mean_response_ms = result.mean_response_ms;
  point.response_ci90_ms = result.response_ci90_ms;
  point.healthy_mean_ms = result.healthy_response_ms.count() > 0
                              ? result.healthy_response_ms.mean()
                              : 0.0;
  point.degraded_mean_ms = result.degraded_response_ms.count() > 0
                               ? result.degraded_response_ms.mean()
                               : 0.0;
  point.retries = result.total_retries;
  point.reopts = result.total_reopts;
  point.abort_rate = result.abort_rate;
  point.stall_ms = result.fault_stall_ms;
  point.retransmits = result.retransmits;
  point.crashes = result.totals.crashes;
  point.downtime_ms = result.totals.crash_downtime_ms;
  return point;
}

/// One extra row (full mode): query shipping under a lossy link rather
/// than a crashing server, to exercise the retransmission path.
Point RunLinkDrop(int queries_per_client) {
  Point point = RunConfig(
      Policy::kQs, "link:drop,mtbf=20000,mttr=300,seed=11", 20000.0,
      queries_per_client);
  point.policy = "qs_linkdrop";
  point.mttr_ms = 300.0;
  return point;
}

std::string CrashSpec(double mtbf_ms) {
  // A deterministic outage at t=0 on top of the renewal process: the
  // closed loop tends to resynchronize with repairs (stalled queries
  // complete right after a restart and resubmit while the server is up),
  // so a scheduled outage at the first submission instant guarantees the
  // detection / retry / re-optimization path is exercised.
  const std::string site = std::to_string(ServerSite(0, kNumClients));
  return "crash:site=" + site + ",at=0,for=3000;" +
         "crash:site=" + site +
         ",mtbf=" + std::to_string(static_cast<int64_t>(mtbf_ms)) +
         ",mttr=" + std::to_string(static_cast<int64_t>(kMttrMs)) +
         ",seed=7";
}

void WriteJson(const std::string& path, const bench::BenchMeta& meta,
               const std::vector<Point>& points) {
  std::ofstream out(path);
  out << "{\"meta\": " << bench::BenchMetaJson(meta) << ",\n \"records\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    out << "  {\"policy\": \"" << p.policy << "\", \"mtbf_ms\": " << p.mtbf_ms
        << ", \"mttr_ms\": " << p.mttr_ms
        << ", \"throughput_qps\": " << p.throughput_qps
        << ", \"mean_response_ms\": " << p.mean_response_ms
        << ", \"response_ci90_ms\": " << p.response_ci90_ms
        << ", \"healthy_mean_ms\": " << p.healthy_mean_ms
        << ", \"degraded_mean_ms\": " << p.degraded_mean_ms
        << ", \"retries\": " << p.retries << ", \"reopts\": " << p.reopts
        << ", \"abort_rate\": " << p.abort_rate
        << ", \"stall_ms\": " << p.stall_ms
        << ", \"retransmits\": " << p.retransmits
        << ", \"crashes\": " << p.crashes
        << ", \"downtime_ms\": " << p.downtime_ms << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  if (MetricsRegistry::Global().enabled()) {
    MetricsRegistry::Global().WriteJsonFile("BENCH_faults.metrics.json");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::ApplyThreadFlag(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<double> mtbfs =
      smoke ? std::vector<double>{10000.0} : std::vector<double>{30000.0, 10000.0};
  const int queries_per_client = smoke ? 4 : 10;

  std::cout << "==== Extension: fault injection & recovery ====\n"
            << kNumClients
            << " clients x closed-loop 2-way joins, one server; server "
               "crashes with\nexponential MTBF/MTTR (seeded renewal "
               "process), 5 s mean repair;\nthroughput [queries/s], mean "
               "response [ms], and recovery counters\n\n";

  std::vector<Point> points;
  ReportTable table({"policy", "MTBF [s]", "qps", "resp [ms]", "retries",
                     "reopts", "abort rate", "stall [ms]"});
  for (const double mtbf : mtbfs) {
    for (const Policy policy :
         {Policy::kQs, Policy::kDsWarm, Policy::kHyReopt}) {
      const Point p =
          RunConfig(policy, CrashSpec(mtbf), mtbf, queries_per_client);
      points.push_back(p);
      table.AddRow({p.policy, Fmt(p.mtbf_ms / 1000.0, 0),
                    Fmt(p.throughput_qps), Fmt(p.mean_response_ms, 0),
                    std::to_string(p.retries), std::to_string(p.reopts),
                    Fmt(p.abort_rate), Fmt(p.stall_ms, 0)});
    }
  }
  if (!smoke) {
    const Point p = RunLinkDrop(queries_per_client);
    points.push_back(p);
    table.AddRow({p.policy, Fmt(p.mtbf_ms / 1000.0, 0),
                  Fmt(p.throughput_qps), Fmt(p.mean_response_ms, 0),
                  std::to_string(p.retries), std::to_string(p.reopts),
                  Fmt(p.abort_rate), Fmt(p.stall_ms, 0)});
  }
  table.Print(std::cout);
  WriteJson("BENCH_faults.json",
            bench::MakeBenchMeta("dimsum.bench.faults.v1",
                                 std::string("crash-recovery matrix, ") +
                                     (smoke ? "smoke" : "full")),
            points);

  std::cout << "\nQuery shipping funnels every query through the crashing "
               "server: clients\nretry, back off, and stall until restart. "
               "Data shipping with warm caches\nnever touches the server, "
               "and hybrid shipping with run-time\nre-optimization flips "
               "to the clients after the first outage -- the\naggregate-"
               "resource argument for client-side processing, extended "
               "to\navailability.\n\nWrote BENCH_faults.json\n";
  return 0;
}

// Extension (the paper's stated future work, Section 7): multiple *fully
// simulated* clients running closed-loop query streams against a shared
// server. The paper modeled additional clients only as synthetic load on
// the server disk (Figure 9); here each client is a site of its own --
// CPU, disks, cache, buffer pool -- issuing queries with exponential think
// times.
//
// The tradeoff this makes concrete: under query shipping every query's
// joins and scans run at the server, so its disk saturates as clients are
// added and response times grow with M while throughput flattens. Under
// data shipping with warm client caches each query runs on its own
// client's resources, so throughput scales near-linearly with M -- each
// new client brings its own disk and memory.
//
// Writes BENCH_multiclient.json (throughput + mean response time per
// configuration); pass --smoke for the reduced CI configuration.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "core/report.h"
#include "exec/runtime.h"
#include "plan/binding.h"
#include "plan/plan.h"
#include "plan/query.h"
#include "workload/driver.h"

using namespace dimsum;

namespace {

struct Point {
  std::string policy;
  int clients = 0;
  double throughput_qps = 0.0;
  double mean_response_ms = 0.0;
  double ci90_ms = 0.0;
};

/// Runs M closed-loop clients, each re-issuing the same 2-way join over
/// the two server-resident relations. `warm_cache` flips between the two
/// shipping extremes: cold caches + server-side joins (query shipping) vs
/// fully cached relations + client-side joins (data shipping).
Point RunConfig(int num_clients, bool warm_cache, int queries_per_client) {
  const SiteAnnotation scan =
      warm_cache ? SiteAnnotation::kClient : SiteAnnotation::kPrimaryCopy;
  const SiteAnnotation join =
      warm_cache ? SiteAnnotation::kConsumer : SiteAnnotation::kInnerRel;

  Catalog catalog(num_clients);
  for (int i = 0; i < 2; ++i) {
    catalog.AddRelation("R" + std::to_string(i), 10000, 100);
    catalog.PlaceRelation(i, ServerSite(0, num_clients));
    for (int c = 0; c < num_clients; ++c) {
      catalog.SetCachedFraction(i, ClientSite(c), warm_cache ? 1.0 : 0.0);
    }
  }
  SystemConfig config;
  config.num_clients = num_clients;
  config.num_servers = 1;
  config.params.buf_alloc = BufAlloc::kMaximum;
  config.collect_histograms = MetricsRegistry::Global().enabled();

  // Per-client plan/query pairs, each bound to its home client.
  std::vector<Plan> plans;
  std::vector<QueryGraph> queries;
  plans.reserve(num_clients);
  queries.reserve(num_clients);
  for (int c = 0; c < num_clients; ++c) {
    queries.push_back(QueryGraph::Chain({0, 1}));
    queries.back().home_client = ClientSite(c);
    plans.emplace_back(
        MakeDisplay(MakeJoin(MakeScan(0, scan), MakeScan(1, scan), join)));
    BindSites(plans.back(), catalog, ClientSite(c));
  }
  std::vector<ClientWorkload> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.push_back(ClientWorkload{&plans[c], &queries[c]});
  }

  DriverConfig driver;
  driver.queries_per_client = queries_per_client;
  driver.think_time_mean_ms = 2000.0;
  driver.warmup_queries = num_clients;  // first wave: cold buffer effects
  driver.num_batches = 8;
  driver.seed = 42;
  DriverResult result = RunClosedLoop(clients, catalog, config, driver);

  Point point;
  point.policy = warm_cache ? "ds_warm" : "qs";
  point.clients = num_clients;
  point.throughput_qps = result.throughput_qps;
  point.mean_response_ms = result.mean_response_ms;
  point.ci90_ms = result.response_ci90_ms;
  return point;
}

/// BENCH_multiclient.json: one record per (policy, clients) point, plus
/// the sibling metrics snapshot when DIMSUM_METRICS is armed (same
/// convention as bench::WriteBenchJson).
void WriteJson(const std::string& path, const bench::BenchMeta& meta,
               const std::vector<Point>& points) {
  std::ofstream out(path);
  out << "{\"meta\": " << bench::BenchMetaJson(meta) << ",\n \"records\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    out << "  {\"policy\": \"" << p.policy << "\", \"clients\": " << p.clients
        << ", \"throughput_qps\": " << p.throughput_qps
        << ", \"mean_response_ms\": " << p.mean_response_ms
        << ", \"response_ci90_ms\": " << p.ci90_ms << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  if (MetricsRegistry::Global().enabled()) {
    MetricsRegistry::Global().WriteJsonFile("BENCH_multiclient.metrics.json");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::ApplyThreadFlag(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<int> client_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const int queries_per_client = smoke ? 3 : 6;

  std::cout << "==== Extension: multi-client closed-loop workloads "
               "(future work, Section 7) ====\n"
            << "M clients x closed-loop 2-way joins, one server, "
               "2 s mean think time, max allocation;\n"
            << "throughput [queries/s] and mean response time [ms] "
               "(90% CI from batch means)\n\n";

  std::vector<Point> points;
  ReportTable table({"clients", "QS qps", "QS resp [ms]", "DS-warm qps",
                     "DS-warm resp [ms]"});
  for (int m : client_counts) {
    const Point qs = RunConfig(m, /*warm_cache=*/false, queries_per_client);
    const Point ds = RunConfig(m, /*warm_cache=*/true, queries_per_client);
    points.push_back(qs);
    points.push_back(ds);
    table.AddRow({std::to_string(m), Fmt(qs.throughput_qps),
                  FmtCi(qs.mean_response_ms, qs.ci90_ms, 0),
                  Fmt(ds.throughput_qps),
                  FmtCi(ds.mean_response_ms, ds.ci90_ms, 0)});
  }
  table.Print(std::cout);
  WriteJson("BENCH_multiclient.json",
            bench::MakeBenchMeta("dimsum.bench.multiclient.v1",
                                 std::string("closed-loop QS-vs-DS, ") +
                                     (smoke ? "smoke" : "full")),
            points);

  std::cout << "\nQuery shipping funnels every join through the one server "
               "disk: response\ntimes stretch as M grows and throughput "
               "flattens at the disk's service\nrate. Data shipping with "
               "warm caches runs each stream on its own client's\ndisk and "
               "memory, so throughput scales with M -- the aggregate-"
               "resource\nargument for data shipping, now measured rather "
               "than asserted.\n\nWrote BENCH_multiclient.json\n";
  return 0;
}

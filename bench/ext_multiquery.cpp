// Extension (the paper's stated future work, Section 7): multi-query
// workloads sharing the system's aggregate resources. N identical 2-way
// joins run concurrently; under query-shipping they pile onto the server
// disk, while under data-shipping with warm client caches they scale
// independently -- the aggregate-memory argument for data-shipping made
// concrete. (The paper modeled multiple clients only as synthetic server
// load; here the queries are simulated in full.)

#include <iostream>
#include <vector>

#include "core/report.h"
#include "exec/executor.h"
#include "plan/binding.h"
#include "workload/benchmark.h"

using namespace dimsum;

namespace {

struct BatchMeasurement {
  double makespan_s = 0.0;
  /// Sum of the queries' own pages; equals the batch's network total now
  /// that per-query metrics are query-attributed (not N copies of the
  /// system-wide counters).
  int64_t pages_sent = 0;
};

BatchMeasurement Measure(int n_queries, SiteAnnotation scan,
                         SiteAnnotation join, double cached, BufAlloc alloc,
                         int num_servers = 1) {
  Catalog catalog;
  for (int i = 0; i < 2 * n_queries; ++i) {
    catalog.AddRelation("R" + std::to_string(i), 10000, 100);
    catalog.PlaceRelation(i, ServerSite(i % num_servers));
    catalog.SetCachedFraction(i, cached);
  }
  SystemConfig config;
  config.num_servers = num_servers;
  config.params.buf_alloc = alloc;
  std::vector<Plan> plans;
  std::vector<QueryGraph> queries;
  plans.reserve(n_queries);
  queries.reserve(n_queries);
  for (int q = 0; q < n_queries; ++q) {
    queries.push_back(QueryGraph::Chain({2 * q, 2 * q + 1}));
    plans.emplace_back(MakeDisplay(MakeJoin(MakeScan(2 * q, scan),
                                            MakeScan(2 * q + 1, scan), join)));
    BindSites(plans.back(), catalog);
  }
  std::vector<WorkloadQuery> batch;
  for (int q = 0; q < n_queries; ++q) {
    batch.push_back(WorkloadQuery{&plans[q], &queries[q]});
  }
  ConcurrentResult result = ExecuteConcurrent(batch, catalog, config);
  BatchMeasurement m;
  m.makespan_s = result.makespan_ms / 1000.0;
  for (const ExecMetrics& metrics : result.per_query) {
    m.pages_sent += metrics.data_pages_sent;
  }
  return m;
}

}  // namespace

int main() {
  std::cout << "==== Extension: multi-query workloads (future work, "
               "Section 7) ====\n"
            << "N concurrent 2-way joins over disjoint relations, one "
               "server, max allocation;\nmakespan [s]\n\n";
  ReportTable table({"queries", "QS, 1 server", "QS, 4 servers",
                     "DS warm cache (1 client)", "QS pages (batch)"});
  for (int n : {1, 2, 4, 8}) {
    const BatchMeasurement qs1 =
        Measure(n, SiteAnnotation::kPrimaryCopy, SiteAnnotation::kInnerRel,
                0.0, BufAlloc::kMaximum);
    const BatchMeasurement qs4 =
        Measure(n, SiteAnnotation::kPrimaryCopy, SiteAnnotation::kInnerRel,
                0.0, BufAlloc::kMaximum, /*num_servers=*/4);
    const BatchMeasurement ds =
        Measure(n, SiteAnnotation::kClient, SiteAnnotation::kConsumer, 1.0,
                BufAlloc::kMaximum);
    table.AddRow({std::to_string(n), Fmt(qs1.makespan_s), Fmt(qs4.makespan_s),
                  Fmt(ds.makespan_s), std::to_string(qs1.pages_sent)});
  }
  table.Print(std::cout);
  std::cout << "\nConcurrent scans interleaving on one disk destroy each "
               "other's sequential\nread-ahead (the Figure 3 interference, "
               "now *between* queries), so a single\nsite -- server or "
               "client -- saturates super-linearly. Spreading the batch "
               "over\nfour server disks restores scaling; a single cached "
               "client cannot, which is\nwhy the paper's data-shipping "
               "scalability argument rests on *each new client\nbringing "
               "its own resources*.\n";
  return 0;
}

// Extension (the paper's stated future work, Section 7): navigational
// data access. Sweeps the pointer-chasing locality and compares
// data-shipping (fault pages, navigate in the client buffer) against
// query-shipping (one RPC per dereference). This quantifies the
// introduction's claim that data-shipping enables "light-weight
// interaction ... needed to support navigational data access".

#include <iostream>

#include "core/report.h"
#include "exec/navigation.h"
#include "workload/benchmark.h"

using namespace dimsum;

int main() {
  std::cout << "==== Extension: navigational access (future work, "
               "Section 7) ====\n"
            << "10,000 objects (250 pages) on one server; 4000 pointer "
               "dereferences;\nclient buffer 64 pages, server buffer 512 "
               "pages\n\n";

  Catalog catalog;
  catalog.AddRelation("Objects", 10000, 100);
  catalog.PlaceRelation(0, ServerSite(0));
  SystemConfig config;
  config.num_servers = 1;

  ReportTable table({"locality %", "DS time [s]", "QS time [s]",
                     "DS faults", "DS wire [KB]", "QS wire [KB]"});
  for (double locality : {0.0, 0.5, 0.8, 0.9, 0.95, 0.99}) {
    NavigationSpec spec;
    spec.locality = locality;
    spec.num_steps = 4000;
    spec.seed = 11;
    NavigationResult ds =
        RunNavigation(spec, catalog, config, NavigationPolicy::kDataShipping);
    NavigationResult qs =
        RunNavigation(spec, catalog, config, NavigationPolicy::kQueryShipping);
    table.AddRow({Fmt(locality * 100.0, 0), Fmt(ds.elapsed_ms / 1000.0),
                  Fmt(qs.elapsed_ms / 1000.0), std::to_string(ds.page_faults),
                  Fmt(ds.bytes_on_wire / 1024.0, 0),
                  Fmt(qs.bytes_on_wire / 1024.0, 0)});
  }
  table.Print(std::cout);

  std::cout << "\nSame sweep with a tiny (8-page) client buffer -- the "
               "thrashing case where\nper-object RPCs win:\n\n";
  ReportTable thrash({"locality %", "DS time [s]", "QS time [s]"});
  for (double locality : {0.0, 0.5, 0.9}) {
    NavigationSpec spec;
    spec.locality = locality;
    spec.num_steps = 4000;
    spec.client_buffer_pages = 8;
    spec.seed = 11;
    NavigationResult ds =
        RunNavigation(spec, catalog, config, NavigationPolicy::kDataShipping);
    NavigationResult qs =
        RunNavigation(spec, catalog, config, NavigationPolicy::kQueryShipping);
    thrash.AddRow({Fmt(locality * 100.0, 0), Fmt(ds.elapsed_ms / 1000.0),
                   Fmt(qs.elapsed_ms / 1000.0)});
  }
  thrash.Print(std::cout);
  std::cout << "\nWith locality, faulted pages are amortized over many "
               "dereferences and DS wins;\nwith scattered access and little "
               "client memory the object-at-a-time RPC wins.\n";
  return 0;
}

// Extension: open-loop arrivals at 1000-client scale. The paper (and the
// closed-loop driver in workload/driver.h) paces each client by think
// time, so offered load self-throttles as the system saturates. Here the
// arrival process is *open*: queries arrive at rate lambda regardless of
// completions (web-front-end traffic), are assigned round-robin to 1000
// fully simulated client sites, and pass admission control -- a bounded
// in-flight window plus a bounded pending queue that sheds overflow --
// before executing.
//
// The sweep crosses arrival rate with the shipping policy of every
// client's 2-way join:
//   qs  cold caches, join at the server (query shipping): the single
//       server disk is the bottleneck; past its service rate the pending
//       queue fills and arrivals are shed.
//   ds  warm caches, join at the client (data shipping): each query runs
//       on its own client's resources, so capacity scales with the client
//       population and the same lambda stays uncongested.
//   hy  hybrid: outer relation cached at the client, inner scanned at the
//       server, join at the client.
//
// Writes BENCH_openloop.json; pass --smoke for the reduced CI sweep.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "core/report.h"
#include "exec/runtime.h"
#include "plan/binding.h"
#include "plan/plan.h"
#include "plan/query.h"
#include "workload/driver.h"

using namespace dimsum;

namespace {

constexpr int kNumClients = 1000;

struct Point {
  std::string policy;
  double rate_qps = 0.0;
  OpenLoopResult result;
};

/// Runs one (policy, lambda) cell: Poisson arrivals at `rate_qps` for
/// `duration_ms`, round-robin over kNumClients clients, each issuing the
/// same 2-way join under the given shipping policy.
Point RunConfig(const std::string& policy, double rate_qps,
                double duration_ms, int warmup) {
  SiteAnnotation scan0 = SiteAnnotation::kPrimaryCopy;
  SiteAnnotation scan1 = SiteAnnotation::kPrimaryCopy;
  SiteAnnotation join = SiteAnnotation::kInnerRel;
  double cached0 = 0.0;
  double cached1 = 0.0;
  if (policy == "ds") {
    scan0 = scan1 = SiteAnnotation::kClient;
    join = SiteAnnotation::kConsumer;
    cached0 = cached1 = 1.0;
  } else if (policy == "hy") {
    scan0 = SiteAnnotation::kClient;  // outer: client cache
    join = SiteAnnotation::kConsumer;
    cached0 = 1.0;
  } else {
    DIMSUM_CHECK(policy == "qs");
  }

  Catalog catalog(kNumClients);
  catalog.AddRelation("R0", 4000, 100);
  catalog.AddRelation("R1", 4000, 100);
  for (int i = 0; i < 2; ++i) {
    catalog.PlaceRelation(i, ServerSite(0, kNumClients));
  }
  for (int c = 0; c < kNumClients; ++c) {
    catalog.SetCachedFraction(0, ClientSite(c), cached0);
    catalog.SetCachedFraction(1, ClientSite(c), cached1);
  }
  SystemConfig config;
  config.num_clients = kNumClients;
  config.num_servers = 1;
  config.params.buf_alloc = BufAlloc::kMaximum;
  config.collect_histograms = MetricsRegistry::Global().enabled();
  // Per-operator actuals feed the run-level bottleneck attribution
  // (OpenLoopResult::bottleneck) that explains each cell's knee.
  config.collect_operator_actuals = true;

  std::vector<Plan> plans;
  std::vector<QueryGraph> queries;
  plans.reserve(kNumClients);
  queries.reserve(kNumClients);
  for (int c = 0; c < kNumClients; ++c) {
    queries.push_back(QueryGraph::Chain({0, 1}));
    queries.back().home_client = ClientSite(c);
    plans.emplace_back(
        MakeDisplay(MakeJoin(MakeScan(0, scan0), MakeScan(1, scan1), join)));
    BindSites(plans.back(), catalog, ClientSite(c));
  }
  std::vector<ClientWorkload> clients;
  clients.reserve(kNumClients);
  for (int c = 0; c < kNumClients; ++c) {
    clients.push_back(ClientWorkload{&plans[c], &queries[c]});
  }

  OpenLoopConfig openloop;
  openloop.arrival.kind = ArrivalKind::kPoisson;
  openloop.arrival.rate_per_sec = rate_qps;
  openloop.admission.max_in_flight = 128;
  openloop.admission.max_pending = 512;
  openloop.duration_ms = duration_ms;
  openloop.warmup_completions = warmup;
  openloop.num_batches = 8;
  openloop.seed = 42;

  Point point;
  point.policy = policy;
  point.rate_qps = rate_qps;
  point.result = RunOpenLoop(clients, catalog, config, openloop);
  return point;
}

/// BENCH_openloop.json: one record per (policy, lambda) cell, plus the
/// sibling metrics snapshot when DIMSUM_METRICS is armed.
void WriteJson(const std::string& path, const bench::BenchMeta& meta,
               const std::vector<Point>& points) {
  std::ofstream out(path);
  out << "{\"meta\": " << bench::BenchMetaJson(meta) << ",\n \"records\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const OpenLoopResult& r = p.result;
    out << "  {\"policy\": \"" << p.policy << "\", \"arrival\": \"poisson\""
        << ", \"rate_qps\": " << p.rate_qps << ", \"clients\": " << kNumClients
        << ", \"offered_qps\": " << r.offered_qps
        << ", \"throughput_qps\": " << r.throughput_qps
        << ", \"mean_response_ms\": " << r.mean_response_ms
        << ", \"response_ci90_ms\": " << r.response_ci90_ms
        << ", \"mean_queue_wait_ms\": " << r.mean_queue_wait_ms
        << ", \"arrivals\": " << r.arrivals
        << ", \"dispatched\": " << r.dispatched << ", \"shed\": " << r.shed
        << ", \"aborted\": " << r.aborted
        << ", \"peak_in_flight\": " << r.peak_in_flight
        << ", \"peak_pending\": " << r.peak_pending
        << ", \"processed_events\": " << r.processed_events
        << ", \"peak_event_queue_depth\": " << r.peak_event_queue_depth
        << ", \"bottleneck\": \"" << r.bottleneck.Summary(kNumClients)
        << "\"}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  if (MetricsRegistry::Global().enabled()) {
    MetricsRegistry::Global().WriteJsonFile("BENCH_openloop.metrics.json");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::ApplyThreadFlag(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<double> rates =
      smoke ? std::vector<double>{20.0, 100.0}
            : std::vector<double>{20.0, 50.0, 100.0, 200.0};
  const double duration_ms = smoke ? 5'000.0 : 30'000.0;
  const int warmup = smoke ? 20 : 50;

  std::cout << "==== Extension: open-loop arrivals, " << kNumClients
            << " clients ====\n"
            << "Poisson arrivals at lambda q/s round-robin over "
            << kNumClients << " clients, 2-way join per query;\n"
            << "admission: 128 in flight, 512 pending, overflow shed. "
               "Response measured from arrival.\n\n";

  std::vector<Point> points;
  ReportTable table({"policy", "lambda", "offered", "done qps", "resp [ms]",
                     "wait [ms]", "shed", "peak pend"});
  for (double rate : rates) {
    for (const std::string policy : {"qs", "hy", "ds"}) {
      Point p = RunConfig(policy, rate, duration_ms, warmup);
      const OpenLoopResult& r = p.result;
      table.AddRow({policy, Fmt(rate), Fmt(r.offered_qps),
                    Fmt(r.throughput_qps),
                    FmtCi(r.mean_response_ms, r.response_ci90_ms, 0),
                    Fmt(r.mean_queue_wait_ms),
                    std::to_string(r.shed),
                    std::to_string(r.peak_pending)});
      points.push_back(std::move(p));
    }
  }
  table.Print(std::cout);

  std::cout << "\nbottleneck attribution (dominant resource, site, queueing "
               "vs service per cell):\n";
  for (const Point& p : points) {
    std::cout << "  " << p.policy << " @ " << Fmt(p.rate_qps, 0)
              << " q/s: " << p.result.bottleneck.Summary(kNumClients) << "\n";
  }

  WriteJson("BENCH_openloop.json",
            bench::MakeBenchMeta("dimsum.bench.openloop.v1",
                                 std::string("poisson sweep, 1000 clients, ") +
                                     (smoke ? "smoke" : "full")),
            points);

  std::cout << "\nAn open loop does not self-throttle: when lambda exceeds "
               "the service rate the\npending queue fills and admission "
               "control sheds the excess -- visible above as\nqs shedding "
               "at high lambda while ds, whose capacity scales with the "
               "client\npopulation, absorbs the same offered load.\n";
  // Attribute the qs saturation knee with numbers: at the highest offered
  // rate, every query funnels through the one server disk, so the
  // attribution should name server-disk queueing as dominant.
  const Point* qs_knee = nullptr;
  for (const Point& p : points) {
    if (p.policy == "qs" &&
        (qs_knee == nullptr || p.rate_qps > qs_knee->rate_qps)) {
      qs_knee = &p;
    }
  }
  if (qs_knee != nullptr && !qs_knee->result.bottleneck.empty()) {
    std::cout << "\nThe qs knee, attributed: at lambda="
              << Fmt(qs_knee->rate_qps, 0) << " q/s the run was "
              << qs_knee->result.bottleneck.Summary(kNumClients) << ".\n";
  }
  std::cout << "\nWrote BENCH_openloop.json\n";
  return 0;
}

// Extension (paper Section 6 related work): ADMS-style client result
// caching on top of query shipping. A stream of 2-way join queries with a
// varying repetition rate runs through a CachingSession; repeated queries
// are answered from the client's cached results.

#include <iostream>

#include "common/rng.h"
#include "core/report.h"
#include "core/result_cache.h"
#include "workload/benchmark.h"

using namespace dimsum;

int main() {
  std::cout << "==== Extension: ADMS-style client result caching ====\n"
            << "Stream of 40 2-way join queries over 40 relations, one "
               "server, max allocation;\nquery repeated from history with "
               "probability p\n\n";

  WorkloadSpec spec;
  spec.num_relations = 40;
  spec.num_servers = 1;
  BenchmarkWorkload base = MakeChainWorkloadRoundRobin(spec);

  ReportTable table({"repeat %", "hits/40", "mean response [s]",
                     "pages sent total"});
  for (double repeat : {0.0, 0.3, 0.6, 0.9}) {
    SystemConfig config;
    config.num_servers = 1;
    config.params.buf_alloc = BufAlloc::kMaximum;
    Catalog catalog = base.catalog;
    ClientServerSystem system(std::move(catalog), config);
    CachingSession session(system, /*cache_pages=*/2000);
    OptimizerConfig opt;
    opt.ii_starts = 4;
    opt.ii_patience = 24;

    Rng rng(77);
    std::vector<QueryGraph> history;
    int hits = 0;
    double total_response = 0.0;
    int64_t total_pages = 0;
    for (int q = 0; q < 40; ++q) {
      QueryGraph query;
      if (!history.empty() && rng.Bernoulli(repeat)) {
        query = history[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(history.size()) - 1))];
      } else {
        const int a = static_cast<int>(rng.UniformInt(0, 38));
        query = QueryGraph::Chain({a, a + 1});
        history.push_back(query);
      }
      auto outcome = session.Run(query, ShippingPolicy::kQueryShipping,
                                 OptimizeMetric::kResponseTime,
                                 static_cast<uint64_t>(q), &opt);
      hits += outcome.cache_hit ? 1 : 0;
      total_response += outcome.response_ms;
      total_pages += outcome.data_pages_sent;
    }
    table.AddRow({Fmt(repeat * 100.0, 0), std::to_string(hits),
                  Fmt(total_response / 40.0 / 1000.0),
                  std::to_string(total_pages)});
  }
  table.Print(std::cout);
  std::cout << "\nWith repetition in the workload, the extended "
               "query-shipping architecture\nanswers queries at the client "
               "and communication falls accordingly (cf. ADMS\n[R+95] in "
               "the paper's related work).\n";
  return 0;
}

// Extension: replica-aware scale-out of the query-shipping saturation
// knee. ext_openloop showed that under open-loop arrivals the QS policy
// saturates at the single server's disk service rate: past the knee the
// pending queue fills, admission control sheds, and bottleneck
// attribution names server-disk queueing as dominant. This harness asks
// the capacity question that follows: does adding servers *with
// replicated relations and submission-time load balancing* actually move
// that knee?
//
// The sweep crosses arrival rate lambda with cluster shape:
//   servers x degree    placement
//   1 x 1               baseline: both relations on the one server
//   2 x 1               partitioned: R0@S0, R1@S1 (no copies; the join
//                       site still serializes most of the work)
//   2 x 2, 4 x 4        fully replicated: every relation on every server,
//                       least-outstanding replica selection spreads whole
//                       queries across the copies
//   4 x 1               partitioned over 4 (only 2 relations: 2 idle)
//
// Every query is the same cold-cache QS 2-way join issued round-robin
// over 1000 fully simulated client sites. Expected shape: at the former
// knee the replicated configurations complete what arrives; saturation
// throughput rises monotonically 1 -> 2 -> 4 servers, and the server-disk
// queueing share of attributed time collapses.
//
// Writes BENCH_scaleout.json; pass --smoke for the reduced CI sweep.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "core/bottleneck.h"
#include "core/report.h"
#include "exec/runtime.h"
#include "plan/binding.h"
#include "plan/plan.h"
#include "plan/query.h"
#include "workload/driver.h"

using namespace dimsum;

namespace {

constexpr int kNumClients = 1000;

struct Shape {
  int servers = 1;
  int degree = 1;  // copies per relation, round-robin from the primary
};

struct Point {
  Shape shape;
  double rate_qps = 0.0;
  double server_disk_queueing_share = 0.0;
  OpenLoopResult result;
};

/// Share of run-attributed time spent *queueing* for disks at server
/// sites: the numeric fingerprint of the QS knee (ext_openloop's dominant
/// bucket), comparable across cluster shapes.
double ServerDiskQueueingShare(const BottleneckReport& report) {
  if (report.attributed_ms <= 0.0) return 0.0;
  double queueing = 0.0;
  for (const BottleneckBucket& b : report.buckets) {
    if (b.resource == BottleneckResource::kDisk && b.site >= kNumClients) {
      queueing += b.queueing_ms;
    }
  }
  return queueing / report.attributed_ms;
}

/// Runs one (shape, lambda) cell: Poisson arrivals at `rate_qps` for
/// `duration_ms`, round-robin over kNumClients clients, each issuing the
/// same cold-cache QS 2-way join; least-outstanding replica selection at
/// submission (a no-op when degree == 1).
Point RunConfig(const Shape& shape, double rate_qps, double duration_ms,
                int warmup) {
  Catalog catalog(kNumClients);
  catalog.AddRelation("R0", 4000, 100);
  catalog.AddRelation("R1", 4000, 100);
  for (int i = 0; i < 2; ++i) {
    for (int copy = 0; copy < shape.degree; ++copy) {
      catalog.PlaceRelation(
          i, ServerSite((i + copy) % shape.servers, kNumClients));
    }
  }
  SystemConfig config;
  config.num_clients = kNumClients;
  config.num_servers = shape.servers;
  // Two disks per site: each server holds at most one relation extent per
  // disk, so a co-located (fully replicated) join still scans both
  // relations sequentially instead of seeking between extents.
  config.params.num_disks = 2;
  config.params.buf_alloc = BufAlloc::kMaximum;
  config.collect_histograms = MetricsRegistry::Global().enabled();
  // Per-operator actuals feed the run-level bottleneck attribution that
  // quantifies the knee (server-disk queueing share).
  config.collect_operator_actuals = true;

  std::vector<Plan> plans;
  std::vector<QueryGraph> queries;
  plans.reserve(kNumClients);
  queries.reserve(kNumClients);
  for (int c = 0; c < kNumClients; ++c) {
    queries.push_back(QueryGraph::Chain({0, 1}));
    queries.back().home_client = ClientSite(c);
    plans.emplace_back(MakeDisplay(
        MakeJoin(MakeScan(0, SiteAnnotation::kPrimaryCopy),
                 MakeScan(1, SiteAnnotation::kPrimaryCopy),
                 SiteAnnotation::kInnerRel)));
    BindSites(plans.back(), catalog, ClientSite(c));
  }
  std::vector<ClientWorkload> clients;
  clients.reserve(kNumClients);
  for (int c = 0; c < kNumClients; ++c) {
    clients.push_back(ClientWorkload{&plans[c], &queries[c]});
  }

  OpenLoopConfig openloop;
  openloop.arrival.kind = ArrivalKind::kPoisson;
  openloop.arrival.rate_per_sec = rate_qps;
  openloop.admission.max_in_flight = 128;
  openloop.admission.max_pending = 512;
  openloop.duration_ms = duration_ms;
  openloop.warmup_completions = warmup;
  openloop.num_batches = 8;
  openloop.seed = 42;
  openloop.replica_policy = ReplicaPolicy::kLeastOutstanding;

  Point point;
  point.shape = shape;
  point.rate_qps = rate_qps;
  point.result = RunOpenLoop(clients, catalog, config, openloop);
  point.server_disk_queueing_share =
      ServerDiskQueueingShare(point.result.bottleneck);
  return point;
}

/// BENCH_scaleout.json: one record per (servers, degree, lambda) cell,
/// plus the sibling metrics snapshot when DIMSUM_METRICS is armed.
void WriteJson(const std::string& path, const bench::BenchMeta& meta,
               const std::vector<Point>& points) {
  std::ofstream out(path);
  out << "{\"meta\": " << bench::BenchMetaJson(meta) << ",\n \"records\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const OpenLoopResult& r = p.result;
    out << "  {\"servers\": " << p.shape.servers
        << ", \"replicas\": " << p.shape.degree
        << ", \"policy\": \"lo\", \"arrival\": \"poisson\""
        << ", \"rate_qps\": " << p.rate_qps << ", \"clients\": " << kNumClients
        << ", \"offered_qps\": " << r.offered_qps
        << ", \"throughput_qps\": " << r.throughput_qps
        << ", \"mean_response_ms\": " << r.mean_response_ms
        << ", \"response_ci90_ms\": " << r.response_ci90_ms
        << ", \"mean_queue_wait_ms\": " << r.mean_queue_wait_ms
        << ", \"arrivals\": " << r.arrivals
        << ", \"dispatched\": " << r.dispatched << ", \"shed\": " << r.shed
        << ", \"aborted\": " << r.aborted
        << ", \"peak_in_flight\": " << r.peak_in_flight
        << ", \"peak_pending\": " << r.peak_pending
        << ", \"server_disk_queueing_share\": "
        << p.server_disk_queueing_share
        << ", \"bottleneck\": \"" << r.bottleneck.Summary(kNumClients)
        << "\"}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  if (MetricsRegistry::Global().enabled()) {
    MetricsRegistry::Global().WriteJsonFile("BENCH_scaleout.metrics.json");
  }
}

const Point* Find(const std::vector<Point>& points, int servers, int degree,
                  double rate) {
  for (const Point& p : points) {
    if (p.shape.servers == servers && p.shape.degree == degree &&
        p.rate_qps == rate) {
      return &p;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ApplyThreadFlag(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<double> rates =
      smoke ? std::vector<double>{4.0, 100.0}
            : std::vector<double>{4.0, 20.0, 100.0, 200.0};
  const double duration_ms = smoke ? 5'000.0 : 30'000.0;
  const int warmup = smoke ? 5 : 20;
  const std::vector<Shape> shapes = {
      {1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 4},
  };

  std::cout << "==== Extension: replica-aware scale-out, " << kNumClients
            << " clients ====\n"
            << "Cold-cache QS 2-way join under Poisson arrivals; servers x "
               "replication degree\nsweep with least-outstanding replica "
               "selection at submission. Degree 1 keeps\nthe pre-replication "
               "submission path bit for bit.\n\n";

  std::vector<Point> points;
  ReportTable table({"servers", "deg", "lambda", "offered", "done qps",
                     "resp [ms]", "shed", "srv disk q"});
  for (const Shape& shape : shapes) {
    for (double rate : rates) {
      Point p = RunConfig(shape, rate, duration_ms, warmup);
      const OpenLoopResult& r = p.result;
      table.AddRow({std::to_string(shape.servers),
                    std::to_string(shape.degree), Fmt(rate, 0),
                    Fmt(r.offered_qps), Fmt(r.throughput_qps),
                    FmtCi(r.mean_response_ms, r.response_ci90_ms, 0),
                    std::to_string(r.shed),
                    Fmt(p.server_disk_queueing_share)});
      points.push_back(std::move(p));
    }
  }
  table.Print(std::cout);

  // The knee, quantified: saturation throughput of the replicated
  // configurations at the top offered rate must rise with server count,
  // and the server-disk queueing share at the former knee must fall.
  const double top = rates.back();
  const Point* base = Find(points, 1, 1, top);
  const Point* two = Find(points, 2, 2, top);
  const Point* four = Find(points, 4, 4, top);
  std::cout << "\nSaturation throughput at lambda=" << Fmt(top, 0)
            << " q/s (replicated shapes):\n";
  for (const Point* p : {base, two, four}) {
    if (p == nullptr) continue;
    std::cout << "  " << p->shape.servers << " server(s) x degree "
              << p->shape.degree << ": " << Fmt(p->result.throughput_qps)
              << " q/s done, " << p->result.shed << " shed, server disk "
              << "queueing share " << Fmt(p->server_disk_queueing_share)
              << "\n";
  }
  if (base != nullptr && two != nullptr && four != nullptr) {
    const bool monotone =
        base->result.throughput_qps < two->result.throughput_qps &&
        two->result.throughput_qps < four->result.throughput_qps;
    std::cout << (monotone
                      ? "\nThe knee moves: adding replicated servers raises "
                        "saturation throughput\nmonotonically 1 -> 2 -> 4.\n"
                      : "\nWARNING: saturation throughput is NOT monotone in "
                        "server count; the knee\ndid not move as expected.\n");
  }
  const double former_knee = smoke ? 100.0 : 100.0;
  const Point* knee_base = Find(points, 1, 1, former_knee);
  const Point* knee_four = Find(points, 4, 4, former_knee);
  if (knee_base != nullptr && knee_four != nullptr) {
    std::cout << "\nAt the former knee (lambda=" << Fmt(former_knee, 0)
              << "): server disk queueing share "
              << Fmt(knee_base->server_disk_queueing_share) << " (1x1) -> "
              << Fmt(knee_four->server_disk_queueing_share) << " (4x4); "
              << (knee_four->server_disk_queueing_share <
                          knee_base->server_disk_queueing_share
                      ? "the disk queue drains."
                      : "WARNING: share did not drop.")
              << "\n";
  }

  std::string config_text = std::string("scaleout, 1000 clients, ") +
                            (smoke ? "smoke" : "full") + ", shapes 1x1 2x1 "
                            "2x2 4x1 4x4, lo policy";
  WriteJson("BENCH_scaleout.json",
            bench::MakeBenchMeta("dimsum.bench.scaleout.v1", config_text),
            points);
  std::cout << "\nWrote BENCH_scaleout.json\n";
  return 0;
}

// Extension: horizontal sharding versus whole-relation replication for
// scan-heavy workloads. ext_scaleout showed that replicating relations
// and balancing submissions moves the query-shipping saturation knee --
// but every replica still scans the *whole* relation, so per-query disk
// work is unchanged. Range sharding attacks the work itself: a relation
// split into K shards dealt to K servers lets a key-restricted scan prune
// to the shards that intersect its interval, reading 1/K of the pages
// from one arm instead of all pages from one copy.
//
// The sweep crosses arrival rate lambda with placement mode at matched
// hardware (K servers either way):
//   sharded-range Kx1    K range shards, one copy each; scans prune to
//                        the single intersecting shard
//   replicated   1xK     K whole copies, least-outstanding balancing;
//                        every scan reads the full relation
//   sharded-hash Kx1     K hash shards: no pruning (every shard scanned),
//                        but the fragments read K arms in parallel
//
// Every query is a cold-cache single-relation scan restricted to a width-
// 1/K key interval, rotated per client so intervals (and pruned shards)
// spread uniformly over the key space. Expected shape: at the same
// offered lambda the sharded configuration completes strictly more
// queries AND its server-disk queueing share of attributed time is
// strictly lower than degree-K replication's -- pruning removes (K-1)/K
// of the disk demand rather than spreading it.
//
// Writes BENCH_sharding.json; pass --smoke for the reduced CI sweep.
// Exits non-zero if sharding fails to beat replication on either axis
// (the acceptance comparison CI relies on).

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "core/bottleneck.h"
#include "core/report.h"
#include "exec/runtime.h"
#include "plan/binding.h"
#include "plan/plan.h"
#include "plan/query.h"
#include "plan/shard.h"
#include "workload/driver.h"

using namespace dimsum;

namespace {

constexpr int kNumClients = 1000;

enum class Mode { kShardedRange, kReplicated, kShardedHash };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kShardedRange: return "sharded-range";
    case Mode::kReplicated: return "replicated";
    case Mode::kShardedHash: return "sharded-hash";
  }
  return "?";
}

struct Shape {
  Mode mode = Mode::kShardedRange;
  int servers = 1;  // K: shard count (sharded) or replica count (replicated)
};

struct Point {
  Shape shape;
  double rate_qps = 0.0;
  double server_disk_queueing_share = 0.0;
  OpenLoopResult result;
};

/// Share of run-attributed time spent *queueing* for disks at server
/// sites (ext_scaleout's knee fingerprint, comparable across modes).
double ServerDiskQueueingShare(const BottleneckReport& report) {
  if (report.attributed_ms <= 0.0) return 0.0;
  double queueing = 0.0;
  for (const BottleneckBucket& b : report.buckets) {
    if (b.resource == BottleneckResource::kDisk && b.site >= kNumClients) {
      queueing += b.queueing_ms;
    }
  }
  return queueing / report.attributed_ms;
}

/// Runs one (shape, lambda) cell: Poisson arrivals at `rate_qps`,
/// round-robin over kNumClients clients. Client c scans the width-1/K key
/// interval starting at (c mod K)/K, so under range sharding each query
/// prunes to exactly one shard while intervals cover the key space
/// uniformly. Replicated cells balance with least-outstanding selection
/// (a no-op for the single-copy sharded cells).
Point RunConfig(const Shape& shape, double rate_qps, double duration_ms,
                int warmup) {
  const int k = shape.servers;
  Catalog catalog(kNumClients);
  catalog.AddRelation("R0", 4000, 100);
  if (shape.mode == Mode::kReplicated) {
    for (int copy = 0; copy < k; ++copy) {
      catalog.PlaceRelation(0, ServerSite(copy, kNumClients));
    }
  } else {
    std::vector<SiteId> sites;
    for (int s = 0; s < k; ++s) sites.push_back(ServerSite(s, kNumClients));
    catalog.ShardRelation(0, std::move(sites),
                          shape.mode == Mode::kShardedRange
                              ? ShardScheme::kRange
                              : ShardScheme::kHash);
  }
  SystemConfig config;
  config.num_clients = kNumClients;
  config.num_servers = k;
  config.params.num_disks = 2;
  config.params.buf_alloc = BufAlloc::kMaximum;
  config.collect_histograms = MetricsRegistry::Global().enabled();
  // Per-operator actuals feed the run-level bottleneck attribution that
  // quantifies where queueing lands (the acceptance comparison).
  config.collect_operator_actuals = true;

  std::vector<Plan> plans;
  std::vector<QueryGraph> queries;
  plans.reserve(kNumClients);
  queries.reserve(kNumClients);
  for (int c = 0; c < kNumClients; ++c) {
    queries.push_back(QueryGraph::Chain({0}));
    queries.back().home_client = ClientSite(c);
    Plan logical(MakeDisplay(MakeScan(0, SiteAnnotation::kPrimaryCopy)));
    const double lo = static_cast<double>(c % k) / k;
    logical.ForEachMutable([&](PlanNode& node) {
      if (node.type == OpType::kScan) {
        node.key_lo = lo;
        node.key_hi = lo + 1.0 / k;
      }
    });
    // Drivers submit plans as-is, so sharded cells pre-expand scans into
    // their pruned per-shard fragments here (the same pass system.Run
    // applies after optimization).
    plans.emplace_back(NeedsShardExpansion(logical, catalog)
                           ? ExpandShards(logical, catalog)
                           : std::move(logical));
    BindSites(plans.back(), catalog, ClientSite(c));
  }
  std::vector<ClientWorkload> clients;
  clients.reserve(kNumClients);
  for (int c = 0; c < kNumClients; ++c) {
    clients.push_back(ClientWorkload{&plans[c], &queries[c]});
  }

  OpenLoopConfig openloop;
  openloop.arrival.kind = ArrivalKind::kPoisson;
  openloop.arrival.rate_per_sec = rate_qps;
  openloop.admission.max_in_flight = 128;
  openloop.admission.max_pending = 512;
  openloop.duration_ms = duration_ms;
  openloop.warmup_completions = warmup;
  openloop.num_batches = 8;
  openloop.seed = 42;
  openloop.replica_policy = ReplicaPolicy::kLeastOutstanding;

  Point point;
  point.shape = shape;
  point.rate_qps = rate_qps;
  point.result = RunOpenLoop(clients, catalog, config, openloop);
  point.server_disk_queueing_share =
      ServerDiskQueueingShare(point.result.bottleneck);
  return point;
}

/// BENCH_sharding.json: one record per (mode, K, lambda) cell, plus the
/// sibling metrics snapshot when DIMSUM_METRICS is armed.
void WriteJson(const std::string& path, const bench::BenchMeta& meta,
               const std::vector<Point>& points) {
  std::ofstream out(path);
  out << "{\"meta\": " << bench::BenchMetaJson(meta) << ",\n \"records\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const OpenLoopResult& r = p.result;
    out << "  {\"mode\": \"" << ModeName(p.shape.mode)
        << "\", \"servers\": " << p.shape.servers
        << ", \"shards\": "
        << (p.shape.mode == Mode::kReplicated ? 1 : p.shape.servers)
        << ", \"replicas\": "
        << (p.shape.mode == Mode::kReplicated ? p.shape.servers : 1)
        << ", \"policy\": \"lo\", \"arrival\": \"poisson\""
        << ", \"rate_qps\": " << p.rate_qps << ", \"clients\": " << kNumClients
        << ", \"offered_qps\": " << r.offered_qps
        << ", \"throughput_qps\": " << r.throughput_qps
        << ", \"mean_response_ms\": " << r.mean_response_ms
        << ", \"response_ci90_ms\": " << r.response_ci90_ms
        << ", \"mean_queue_wait_ms\": " << r.mean_queue_wait_ms
        << ", \"arrivals\": " << r.arrivals
        << ", \"dispatched\": " << r.dispatched << ", \"shed\": " << r.shed
        << ", \"aborted\": " << r.aborted
        << ", \"peak_in_flight\": " << r.peak_in_flight
        << ", \"peak_pending\": " << r.peak_pending
        << ", \"server_disk_queueing_share\": "
        << p.server_disk_queueing_share
        << ", \"bottleneck\": \"" << r.bottleneck.Summary(kNumClients)
        << "\"}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  if (MetricsRegistry::Global().enabled()) {
    MetricsRegistry::Global().WriteJsonFile("BENCH_sharding.metrics.json");
  }
}

const Point* Find(const std::vector<Point>& points, Mode mode, int servers,
                  double rate) {
  for (const Point& p : points) {
    if (p.shape.mode == mode && p.shape.servers == servers &&
        p.rate_qps == rate) {
      return &p;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ApplyThreadFlag(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<double> rates =
      smoke ? std::vector<double>{20.0, 120.0}
            : std::vector<double>{20.0, 60.0, 120.0, 240.0};
  const double duration_ms = smoke ? 5'000.0 : 30'000.0;
  const int warmup = smoke ? 5 : 20;
  const std::vector<Shape> shapes = {
      {Mode::kShardedRange, 2}, {Mode::kReplicated, 2},
      {Mode::kShardedRange, 4}, {Mode::kReplicated, 4},
      {Mode::kShardedHash, 4},
  };

  std::cout << "==== Extension: sharding vs replication, " << kNumClients
            << " clients ====\n"
            << "Cold-cache width-1/K key-restricted scans under Poisson "
               "arrivals, K servers\neither way: K range shards (pruned to "
               "one shard per query) against K whole\ncopies balanced "
               "least-outstanding; K hash shards as the no-pruning "
               "contrast.\n\n";

  std::vector<Point> points;
  ReportTable table({"mode", "K", "lambda", "offered", "done qps",
                     "resp [ms]", "shed", "srv disk q"});
  for (const Shape& shape : shapes) {
    for (double rate : rates) {
      Point p = RunConfig(shape, rate, duration_ms, warmup);
      const OpenLoopResult& r = p.result;
      table.AddRow({ModeName(shape.mode), std::to_string(shape.servers),
                    Fmt(rate, 0), Fmt(r.offered_qps), Fmt(r.throughput_qps),
                    FmtCi(r.mean_response_ms, r.response_ci90_ms, 0),
                    std::to_string(r.shed),
                    Fmt(p.server_disk_queueing_share)});
      points.push_back(std::move(p));
    }
  }
  table.Print(std::cout);

  // Acceptance comparison: at lambda=120 -- well past replication's
  // saturation knee but within sharded capacity -- K-way range sharding
  // must complete strictly more queries AND carry a strictly lower
  // server-disk queueing share than degree-K whole-relation replication,
  // for every K in the sweep. Deeper in overload (the full sweep's
  // lambda=240 cells) BOTH placements shed most arrivals and the
  // queueing share measures admission shape rather than capacity, so
  // the comparison is pinned at the knee where the capacity gap is the
  // signal.
  const double top = 120.0;
  bool pass = true;
  std::cout << "\nSharding vs replication at lambda=" << Fmt(top, 0)
            << " q/s:\n";
  for (const int k : {2, 4}) {
    const Point* sharded = Find(points, Mode::kShardedRange, k, top);
    const Point* replicated = Find(points, Mode::kReplicated, k, top);
    if (sharded == nullptr || replicated == nullptr) continue;
    const bool tput = sharded->result.throughput_qps >
                      replicated->result.throughput_qps;
    const bool diskq = sharded->server_disk_queueing_share <
                       replicated->server_disk_queueing_share;
    std::cout << "  K=" << k << ": " << Fmt(sharded->result.throughput_qps)
              << " vs " << Fmt(replicated->result.throughput_qps)
              << " q/s done, disk queueing share "
              << Fmt(sharded->server_disk_queueing_share) << " vs "
              << Fmt(replicated->server_disk_queueing_share) << " -- "
              << (tput && diskq ? "sharding wins both axes."
                                : "FAIL: sharding does not win both axes.")
              << "\n";
    pass = pass && tput && diskq;
  }
  const Point* range4 = Find(points, Mode::kShardedRange, 4, top);
  const Point* hash4 = Find(points, Mode::kShardedHash, 4, top);
  if (range4 != nullptr && hash4 != nullptr) {
    std::cout << "\nHash contrast at K=4: "
              << Fmt(hash4->result.throughput_qps)
              << " q/s done without pruning vs "
              << Fmt(range4->result.throughput_qps)
              << " with -- pruning, not parallelism, carries the win.\n";
  }

  std::string config_text = std::string("sharding, 1000 clients, ") +
                            (smoke ? "smoke" : "full") +
                            ", modes range/replicated K=2,4 + hash K=4, "
                            "lo policy";
  WriteJson("BENCH_sharding.json",
            bench::MakeBenchMeta("dimsum.bench.sharding.v1", config_text),
            points);
  std::cout << "\nWrote BENCH_sharding.json\n";
  if (!pass) {
    std::cout << "\nFAIL: acceptance comparison did not hold.\n";
    return 1;
  }
  return 0;
}

// Extension: tail-latency observatory. Mean response time hides what the
// tail is made of: at the open-loop knee the p99 query and the p50 query
// run the *same plan* on the same cluster, so the entire gap between them
// must live in queueing somewhere -- admission, a server disk, the CPU, or
// the wire. The per-query critical-path decomposition (core/critical_path)
// makes that checkable: every completed query carries named segments that
// tile its response time exactly, so differencing the mean segment profile
// of the p99 band against the p50 band attributes the gap to named causes.
//
// The sweep crosses arrival rate lambda with the submission-time replica
// policy on a fixed sharded+replicated cluster (4 range shards, 2 chained
// copies per shard, 4 servers): first-copy (no balancing), round-robin,
// and least-outstanding. Every query is a cold-cache width-1/4 key-
// restricted scan, rotated per client. Expected shape: the p99-p50 gap is
// small at low lambda and explodes at the knee, where the composition diff
// names the culprit (admission wait and server disk queueing, not service).
//
// Writes BENCH_taillat.json (per-cell percentile bands + explained share)
// and BENCH_taillat.querylog.jsonl (the per-query wide events of each
// policy's top-lambda cell, for tools/tail_report.py). Pass --smoke for
// the reduced CI sweep. Exits non-zero if, at the top lambda of any
// policy, named (non-untracked) critical-path segments fail to explain at
// least 80% of the p99-band vs p50-band response gap -- the acceptance
// gate that the decomposition actually accounts for the tail.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness.h"
#include "core/report.h"
#include "exec/runtime.h"
#include "plan/binding.h"
#include "plan/plan.h"
#include "plan/query.h"
#include "plan/shard.h"
#include "workload/driver.h"
#include "workload/querylog.h"

using namespace dimsum;

namespace {

constexpr int kNumClients = 1000;
constexpr int kServers = 4;    // range shards (one per server)
constexpr int kCopies = 2;     // chained-declustered copies per shard
constexpr double kMinGapMs = 1.0;
constexpr double kRequiredShare = 0.8;

struct PolicyChoice {
  ReplicaPolicy policy;
  const char* label;  // short label used in records and the bench JSON
};

const PolicyChoice kPolicies[] = {
    {ReplicaPolicy::kFirstCopy, "first"},
    {ReplicaPolicy::kRoundRobin, "rr"},
    {ReplicaPolicy::kLeastOutstanding, "lo"},
};

/// Band statistics of one cell's completed queries: the p50 band is the
/// middle decile of the response distribution, the p99 band the top 1%
/// (at least one query). The gap between band means is then attributed by
/// differencing the mean per-segment-label profile of the two bands;
/// `explained_ms` sums the positive deltas of named (non-untracked)
/// labels. Because segments tile response time exactly, the full signed
/// delta sum equals the gap, so the share only falls short of 1 by
/// whatever the tail spends in untracked time (or shifts between labels).
struct TailStats {
  int completed = 0;
  double p50_ms = 0.0;       // mean of the p50 band
  double p99_ms = 0.0;       // mean of the p99 band
  double gap_ms = 0.0;       // p99_ms - p50_ms
  double explained_ms = 0.0; // sum of positive named-label deltas
  double explained_share = 0.0;
  std::string top_label;     // largest named contributor
  double top_delta_ms = 0.0;
};

/// Mean per-label segment milliseconds over records[first, last).
std::map<std::string, double> MeanSegmentProfile(
    const std::vector<const QueryLogRecord*>& records, std::size_t first,
    std::size_t last) {
  std::map<std::string, double> profile;
  for (std::size_t i = first; i < last; ++i) {
    for (const PathSegment& segment : records[i]->path.segments) {
      profile[segment.Label()] += segment.ms;
    }
  }
  const double n = static_cast<double>(last - first);
  for (auto& [label, ms] : profile) ms /= n;
  return profile;
}

TailStats ComputeTailStats(const std::vector<QueryLogRecord>& log) {
  TailStats stats;
  std::vector<const QueryLogRecord*> ok;
  for (const QueryLogRecord& record : log) {
    if (record.outcome == "ok") ok.push_back(&record);
  }
  stats.completed = static_cast<int>(ok.size());
  if (ok.size() < 20) return stats;
  std::sort(ok.begin(), ok.end(),
            [](const QueryLogRecord* a, const QueryLogRecord* b) {
              return a->response_ms < b->response_ms;
            });
  const std::size_t n = ok.size();
  const std::size_t p50_lo = static_cast<std::size_t>(0.45 * n);
  const std::size_t p50_hi = std::max(p50_lo + 1,
                                      static_cast<std::size_t>(0.55 * n));
  const std::size_t p99_lo =
      std::min(n - 1, static_cast<std::size_t>(0.99 * n));
  auto band_mean = [&](std::size_t lo, std::size_t hi) {
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += ok[i]->response_ms;
    return sum / static_cast<double>(hi - lo);
  };
  stats.p50_ms = band_mean(p50_lo, p50_hi);
  stats.p99_ms = band_mean(p99_lo, n);
  stats.gap_ms = stats.p99_ms - stats.p50_ms;
  const std::map<std::string, double> base =
      MeanSegmentProfile(ok, p50_lo, p50_hi);
  const std::map<std::string, double> tail = MeanSegmentProfile(ok, p99_lo, n);
  for (const auto& [label, tail_ms] : tail) {
    if (label == "untracked") continue;
    const auto it = base.find(label);
    const double delta = tail_ms - (it != base.end() ? it->second : 0.0);
    if (delta <= 0.0) continue;
    stats.explained_ms += delta;
    if (delta > stats.top_delta_ms) {
      stats.top_delta_ms = delta;
      stats.top_label = label;
    }
  }
  if (stats.gap_ms > 0.0) {
    stats.explained_share = stats.explained_ms / stats.gap_ms;
  }
  return stats;
}

struct Point {
  std::string policy;
  double rate_qps = 0.0;
  OpenLoopResult result;
  TailStats tail;
};

/// Runs one (policy, lambda) cell on the fixed cluster: Poisson arrivals
/// round-robin over kNumClients clients, each a cold width-1/4 range scan
/// pruned to one shard, with the policy balancing across the 2 chained
/// copies of that shard. Query-log collection is on, so every arrival
/// yields a wide event with its critical-path decomposition.
Point RunConfig(const PolicyChoice& choice, double rate_qps,
                double duration_ms, int warmup) {
  Catalog catalog(kNumClients);
  catalog.AddRelation("R0", 4000, 100);
  std::vector<SiteId> sites;
  for (int s = 0; s < kServers; ++s) {
    sites.push_back(ServerSite(s, kNumClients));
  }
  catalog.ShardRelation(0, std::move(sites), ShardScheme::kRange, kCopies);
  SystemConfig config;
  config.num_clients = kNumClients;
  config.num_servers = kServers;
  config.params.num_disks = 2;
  config.params.buf_alloc = BufAlloc::kMaximum;
  config.collect_histograms = MetricsRegistry::Global().enabled();

  std::vector<Plan> plans;
  std::vector<QueryGraph> queries;
  plans.reserve(kNumClients);
  queries.reserve(kNumClients);
  for (int c = 0; c < kNumClients; ++c) {
    queries.push_back(QueryGraph::Chain({0}));
    queries.back().home_client = ClientSite(c);
    Plan logical(MakeDisplay(MakeScan(0, SiteAnnotation::kPrimaryCopy)));
    const double lo = static_cast<double>(c % kServers) / kServers;
    logical.ForEachMutable([&](PlanNode& node) {
      if (node.type == OpType::kScan) {
        node.key_lo = lo;
        node.key_hi = lo + 1.0 / kServers;
      }
    });
    plans.emplace_back(NeedsShardExpansion(logical, catalog)
                           ? ExpandShards(logical, catalog)
                           : std::move(logical));
    BindSites(plans.back(), catalog, ClientSite(c));
  }
  std::vector<ClientWorkload> clients;
  clients.reserve(kNumClients);
  for (int c = 0; c < kNumClients; ++c) {
    clients.push_back(ClientWorkload{&plans[c], &queries[c]});
  }

  OpenLoopConfig openloop;
  openloop.arrival.kind = ArrivalKind::kPoisson;
  openloop.arrival.rate_per_sec = rate_qps;
  openloop.admission.max_in_flight = 128;
  openloop.admission.max_pending = 512;
  openloop.duration_ms = duration_ms;
  openloop.warmup_completions = warmup;
  openloop.num_batches = 8;
  openloop.seed = 42;
  openloop.replica_policy = choice.policy;
  openloop.collect_query_log = true;
  openloop.policy_label = choice.label;

  Point point;
  point.policy = choice.label;
  point.rate_qps = rate_qps;
  point.result = RunOpenLoop(clients, catalog, config, openloop);
  point.tail = ComputeTailStats(point.result.query_log);
  return point;
}

/// BENCH_taillat.json: one record per (policy, lambda) cell with the band
/// means and the explained share of the tail gap.
void WriteJson(const std::string& path, const bench::BenchMeta& meta,
               const std::vector<Point>& points) {
  std::ofstream out(path);
  out << "{\"meta\": " << bench::BenchMetaJson(meta) << ",\n \"records\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const OpenLoopResult& r = p.result;
    out << "  {\"policy\": \"" << p.policy
        << "\", \"rate_qps\": " << p.rate_qps
        << ", \"clients\": " << kNumClients << ", \"shards\": " << kServers
        << ", \"replicas\": " << kCopies << ", \"arrival\": \"poisson\""
        << ", \"offered_qps\": " << r.offered_qps
        << ", \"throughput_qps\": " << r.throughput_qps
        << ", \"mean_response_ms\": " << r.mean_response_ms
        << ", \"completed\": " << p.tail.completed
        << ", \"shed\": " << r.shed << ", \"aborted\": " << r.aborted
        << ", \"p50_band_ms\": " << p.tail.p50_ms
        << ", \"p99_band_ms\": " << p.tail.p99_ms
        << ", \"gap_ms\": " << p.tail.gap_ms
        << ", \"explained_ms\": " << p.tail.explained_ms
        << ", \"explained_share\": " << p.tail.explained_share
        << ", \"top_label\": \"" << p.tail.top_label
        << "\", \"top_delta_ms\": " << p.tail.top_delta_ms << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  if (MetricsRegistry::Global().enabled()) {
    MetricsRegistry::Global().WriteJsonFile("BENCH_taillat.metrics.json");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::ApplyThreadFlag(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<double> rates =
      smoke ? std::vector<double>{40.0, 200.0}
            : std::vector<double>{40.0, 120.0, 200.0};
  const double duration_ms = smoke ? 5'000.0 : 30'000.0;
  const int warmup = smoke ? 5 : 20;
  const double top = rates.back();

  std::cout << "==== Extension: tail-latency observatory, " << kNumClients
            << " clients ====\n"
            << kServers << " range shards x " << kCopies
            << " chained copies; cold width-1/" << kServers
            << " key-restricted scans under\nPoisson arrivals; per-query "
               "critical paths decompose the p99-p50 gap into\nnamed "
               "segments (admission, disk/cpu/net queueing vs service).\n\n";

  std::vector<Point> points;
  std::vector<QueryLogRecord> top_log;
  ReportTable table({"policy", "lambda", "offered", "done qps", "p50 [ms]",
                     "p99 [ms]", "gap", "explained", "top segment"});
  for (const PolicyChoice& choice : kPolicies) {
    for (double rate : rates) {
      Point p = RunConfig(choice, rate, duration_ms, warmup);
      const OpenLoopResult& r = p.result;
      table.AddRow({p.policy, Fmt(rate, 0), Fmt(r.offered_qps),
                    Fmt(r.throughput_qps), Fmt(p.tail.p50_ms, 0),
                    Fmt(p.tail.p99_ms, 0), Fmt(p.tail.gap_ms, 0),
                    p.tail.gap_ms > 0.0
                        ? Fmt(p.tail.explained_share * 100.0, 1) + " %"
                        : "-",
                    p.tail.top_label.empty() ? "-" : p.tail.top_label});
      if (rate == top) {
        top_log.insert(top_log.end(), r.query_log.begin(),
                       r.query_log.end());
      }
      points.push_back(std::move(p));
    }
  }
  table.Print(std::cout);

  // Acceptance gate: at each policy's top-lambda cell -- past the knee,
  // where the tail is queueing-dominated -- the named segment deltas must
  // explain at least 80% of the p99-band vs p50-band gap. Cells whose gap
  // is under 1 ms carry no tail signal and are skipped (the decomposition
  // still tiles response time; there is just nothing to attribute).
  bool pass = true;
  std::cout << "\nTail attribution at lambda=" << Fmt(top, 0) << " q/s:\n";
  for (const Point& p : points) {
    if (p.rate_qps != top) continue;
    if (p.tail.completed < 20 || p.tail.gap_ms < kMinGapMs) {
      std::cout << "  " << p.policy << ": gap " << Fmt(p.tail.gap_ms)
                << " ms -- too small to attribute, skipped.\n";
      continue;
    }
    const bool ok = p.tail.explained_share >= kRequiredShare;
    std::cout << "  " << p.policy << ": gap " << Fmt(p.tail.gap_ms, 0)
              << " ms, named segments explain "
              << Fmt(p.tail.explained_share * 100.0, 1) << " % (top: "
              << p.tail.top_label << " +" << Fmt(p.tail.top_delta_ms, 0)
              << " ms) -- " << (ok ? "explained." : "FAIL: below 80%.")
              << "\n";
    pass = pass && ok;
  }

  std::string config_text = std::string("taillat, 1000 clients, ") +
                            (smoke ? "smoke" : "full") +
                            ", 4 range shards x2 copies, policies "
                            "first/rr/lo";
  WriteJson("BENCH_taillat.json",
            bench::MakeBenchMeta("dimsum.bench.taillat.v1", config_text),
            points);
  WriteQueryLogFile("BENCH_taillat.querylog.jsonl", top_log);
  std::cout << "\nWrote BENCH_taillat.json and BENCH_taillat.querylog.jsonl ("
            << top_log.size() << " records)\n";
  if (!pass) {
    std::cout << "\nFAIL: the critical-path decomposition left more than "
                 "20% of the tail gap unexplained.\n";
    return 1;
  }
  return 0;
}

// Figure 2: Pages Sent, 2-Way Join -- 1 server, varying the cached portion
// of the base relations at the client. The optimizer minimizes
// communication. Paper shape: DS falls linearly from 500 to 0; QS is flat
// at the 250-page result; HY matches the better policy everywhere, with the
// crossover at 50% for the functional join.

#include "harness.h"

using namespace dimsum;
using namespace dimsum::bench;

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  PrintHeader("Figure 2: Pages Sent, 2-Way Join",
              "1 server, vary client caching; optimizer minimizes pages "
              "sent");
  ReportTable table({"cached %", "DS", "QS", "HY"});
  for (double cached : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    WorkloadSpec spec;
    spec.num_relations = 2;
    spec.num_servers = 1;
    spec.cached_fraction = cached;
    std::vector<std::string> row{Fmt(cached * 100.0, 0)};
    for (ShippingPolicy policy :
         {ShippingPolicy::kDataShipping, ShippingPolicy::kQueryShipping,
          ShippingPolicy::kHybridShipping}) {
      row.push_back(MeasurePoint(spec, policy, Measure::kPagesSent,
                                 /*server_load_per_sec=*/0.0,
                                 BufAlloc::kMaximum,
                                 /*random_placement=*/false,
                                 /*precision=*/0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\npaper: DS 500->0 linear, QS flat 250, HY = min(DS, QS), "
               "crossover at 50%\n";
  return 0;
}

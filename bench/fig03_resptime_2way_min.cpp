// Figure 3: Response Time, 2-Way Join -- 1 server, vary caching, no
// external load, minimum join-memory allocation. Paper shape: QS worst
// (scan and join temp I/O interfere on the single server disk); DS is best
// with an empty cache (disk parallelism between server scans and client
// temp I/O) and degrades as caching grows; HY finds the best plan at every
// point.

#include "harness.h"

using namespace dimsum;
using namespace dimsum::bench;

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  PrintHeader("Figure 3: Response Time, 2-Way Join",
              "1 server, vary caching, no load, minimum allocation [s]");
  ReportTable table({"cached %", "DS", "QS", "HY"});
  for (double cached : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    WorkloadSpec spec;
    spec.num_relations = 2;
    spec.num_servers = 1;
    spec.cached_fraction = cached;
    std::vector<std::string> row{Fmt(cached * 100.0, 0)};
    for (ShippingPolicy policy :
         {ShippingPolicy::kDataShipping, ShippingPolicy::kQueryShipping,
          ShippingPolicy::kHybridShipping}) {
      row.push_back(MeasurePoint(spec, policy, Measure::kResponseSeconds,
                                 /*server_load_per_sec=*/0.0,
                                 BufAlloc::kMinimum,
                                 /*random_placement=*/false));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\npaper: QS flat and worst (~12 s); DS best at 0% (~6 s), "
               "degrading toward QS\nat 100%; HY best everywhere\n";
  return 0;
}

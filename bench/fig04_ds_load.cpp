// Figure 4: Response Time of Data-Shipping, 2-Way Join -- 1 server, vary
// external server-disk load and client caching, minimum allocation. Paper
// shape: with an idle server, caching hurts DS (temp/scan contention on the
// client disk); at ~90% server-disk utilization the benefit of off-loading
// the server outweighs it and caching helps. Also reports the in-text QS
// numbers (19 s at 40 req/s, 36 s at 60 req/s in the paper).

#include "harness.h"

using namespace dimsum;
using namespace dimsum::bench;

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  PrintHeader("Figure 4: Response Time, DS, 2-Way Join",
              "1 server, vary external disk load and caching, minimum "
              "allocation [s]");
  ReportTable table(
      {"cached %", "0 req/s", "40 req/s", "60 req/s", "70 req/s"});
  for (double cached : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    WorkloadSpec spec;
    spec.num_relations = 2;
    spec.num_servers = 1;
    spec.cached_fraction = cached;
    std::vector<std::string> row{Fmt(cached * 100.0, 0)};
    for (double load : {0.0, 40.0, 60.0, 70.0}) {
      row.push_back(MeasurePoint(spec, ShippingPolicy::kDataShipping,
                                 Measure::kResponseSeconds, load,
                                 BufAlloc::kMinimum,
                                 /*random_placement=*/false));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\nIn-text QS reference (paper: 19 s at 40 req/s, 36 s at "
               "60 req/s):\n";
  ReportTable qs({"load [req/s]", "QS response [s]"});
  for (double load : {40.0, 60.0}) {
    WorkloadSpec spec;
    spec.num_relations = 2;
    spec.num_servers = 1;
    qs.AddRow({Fmt(load, 0),
               MeasurePoint(spec, ShippingPolicy::kQueryShipping,
                            Measure::kResponseSeconds, load,
                            BufAlloc::kMinimum,
                            /*random_placement=*/false)});
  }
  qs.Print(std::cout);
  std::cout << "\npaper: caching hurts DS when the server is idle; at 70 "
               "req/s (~90% util)\ncaching clearly helps\n";
  return 0;
}

// Figure 5: Response Time, 2-Way Join -- 1 server, vary caching, no load,
// MAXIMUM join-memory allocation (no temp I/O, so no disk interference).
// Paper shape: QS flat; DS improves linearly with caching; the crossover
// sits beyond 50% because DS faults pages in one synchronous round trip at
// a time while QS overlaps communication with join processing; HY tracks
// the minimum (modulo the cost model's optimistic overlap assumption).

#include "harness.h"

using namespace dimsum;
using namespace dimsum::bench;

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  PrintHeader("Figure 5: Response Time, 2-Way Join",
              "1 server, vary caching, no load, maximum allocation [s]");
  ReportTable table({"cached %", "DS", "QS", "HY"});
  for (double cached : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    WorkloadSpec spec;
    spec.num_relations = 2;
    spec.num_servers = 1;
    spec.cached_fraction = cached;
    std::vector<std::string> row{Fmt(cached * 100.0, 0)};
    for (ShippingPolicy policy :
         {ShippingPolicy::kDataShipping, ShippingPolicy::kQueryShipping,
          ShippingPolicy::kHybridShipping}) {
      row.push_back(MeasurePoint(spec, policy, Measure::kResponseSeconds,
                                 /*server_load_per_sec=*/0.0,
                                 BufAlloc::kMaximum,
                                 /*random_placement=*/false));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\npaper: QS flat (~1.9 s); DS from ~3.3 s at 0% down past "
               "QS at full caching;\ncrossover beyond 50%\n";
  return 0;
}

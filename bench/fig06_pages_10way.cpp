// Figure 6: Pages Sent, 10-Way Join -- vary the number of servers, no
// client caching; relations placed randomly (every server holds at least
// one); optimizer minimizes communication. Paper shape: DS flat at 2500
// (all ten relations cross); QS grows from 250 (one server: result only)
// to 2500 at ten servers (co-location vanishes); HY equals the minimum.

#include "harness.h"

using namespace dimsum;
using namespace dimsum::bench;

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  PrintHeader("Figure 6: Pages Sent, 10-Way Join",
              "vary servers, no caching; optimizer minimizes pages sent; "
              "random placements (mean +- 90% CI)");
  ReportTable table({"servers", "DS", "QS", "HY"});
  for (int servers : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) {
    WorkloadSpec spec;
    spec.num_relations = 10;
    spec.num_servers = servers;
    std::vector<std::string> row{std::to_string(servers)};
    for (ShippingPolicy policy :
         {ShippingPolicy::kDataShipping, ShippingPolicy::kQueryShipping,
          ShippingPolicy::kHybridShipping}) {
      row.push_back(MeasurePoint(spec, policy, Measure::kPagesSent,
                                 /*server_load_per_sec=*/0.0,
                                 BufAlloc::kMaximum,
                                 /*random_placement=*/true,
                                 /*precision=*/0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\npaper: DS flat 2500; QS 250 -> 2500 (non-linear, driven "
               "by lost co-location);\nHY = min(DS, QS)\n";
  return 0;
}

// Figure 7: Pages Sent, 10-Way Join with 5 of the 10 relations cached at
// the client -- vary the number of servers; optimizer minimizes
// communication. Paper shape: DS halves to 1250; QS unchanged (it cannot
// use the cache); HY can beat BOTH for mid-size server populations by
// joining co-located relations wherever they are (server or client cache).

#include "harness.h"

using namespace dimsum;
using namespace dimsum::bench;

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  PrintHeader("Figure 7: Pages Sent, 10-Way Join, 5 Relations Cached",
              "vary servers; optimizer minimizes pages sent; random "
              "placements (mean +- 90% CI)");
  ReportTable table({"servers", "DS", "QS", "HY"});
  for (int servers : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) {
    WorkloadSpec spec;
    spec.num_relations = 10;
    spec.num_servers = servers;
    spec.fully_cached_relations = 5;
    std::vector<std::string> row{std::to_string(servers)};
    for (ShippingPolicy policy :
         {ShippingPolicy::kDataShipping, ShippingPolicy::kQueryShipping,
          ShippingPolicy::kHybridShipping}) {
      row.push_back(MeasurePoint(spec, policy, Measure::kPagesSent,
                                 /*server_load_per_sec=*/0.0,
                                 BufAlloc::kMaximum,
                                 /*random_placement=*/true,
                                 /*precision=*/0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\npaper: DS flat 1250; QS as in Figure 6; beyond ~3 servers "
               "QS sends more than DS;\nHY below both for many server "
               "populations\n";
  return 0;
}

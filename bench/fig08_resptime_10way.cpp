// Figure 8: Response Time, 10-Way Join -- vary the number of servers, no
// caching, minimum allocation; optimizer minimizes response time. Paper
// shape: DS roughly flat (all joins on the one client disk); QS improves
// sharply with added servers (parallel disks); HY beats both for small
// server populations by using client AND servers, converging to QS beyond
// ~3 servers.

#include "harness.h"

using namespace dimsum;
using namespace dimsum::bench;

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  PrintHeader("Figure 8: Response Time, 10-Way Join",
              "vary servers, no caching, minimum allocation [s]; random "
              "placements (mean +- 90% CI)");
  ReportTable table({"servers", "DS", "QS", "HY"});
  for (int servers : {1, 2, 3, 4, 5, 6, 8, 10}) {
    WorkloadSpec spec;
    spec.num_relations = 10;
    spec.num_servers = servers;
    std::vector<std::string> row{std::to_string(servers)};
    for (ShippingPolicy policy :
         {ShippingPolicy::kDataShipping, ShippingPolicy::kQueryShipping,
          ShippingPolicy::kHybridShipping}) {
      row.push_back(MeasurePoint(spec, policy, Measure::kResponseSeconds,
                                 /*server_load_per_sec=*/0.0,
                                 BufAlloc::kMinimum,
                                 /*random_placement=*/true,
                                 /*precision=*/1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\npaper: DS ~flat; QS falls steeply to ~4 servers; HY best "
               "at 1-3 servers, then ~QS\n";
  return 0;
}

// Figure 9 (worked example of Section 5.1): communication of static vs
// 2-step plans under data migration. A 4-way join is compiled when A,B are
// co-located on server 1 and C,D on server 2; at run time B,C and A,D are
// co-located instead. Paper result: the static plan ships twice as much as
// an optimal plan, the 2-step plan 50% more (1000 vs 750 vs 500 pages with
// relation-sized join results).

#include <iostream>

#include "core/report.h"
#include "harness.h"
#include "opt/two_step.h"
#include "plan/printer.h"

using namespace dimsum;
using namespace dimsum::bench;

int main(int argc, char** argv) {
  ApplyThreadFlag(argc, argv);
  PrintHeader("Figure 9: Static vs 2-Step Communication under Migration",
              "4-way join, all relations joinable, results = base-relation "
              "size");

  Catalog compile_time;
  for (int i = 0; i < 4; ++i) {
    compile_time.AddRelation(std::string(1, static_cast<char>('A' + i)),
                             10000, 100);
  }
  compile_time.PlaceRelation(0, ServerSite(0));  // A @ S1
  compile_time.PlaceRelation(1, ServerSite(0));  // B @ S1
  compile_time.PlaceRelation(2, ServerSite(1));  // C @ S2
  compile_time.PlaceRelation(3, ServerSite(1));  // D @ S2
  QueryGraph query = QueryGraph::Complete({0, 1, 2, 3});

  // The paper's compiled plan: (A |><| B) at S1, (C |><| D) at S2, final
  // join at the client.
  Plan compiled(MakeDisplay(MakeJoin(
      MakeJoin(MakeScan(0, SiteAnnotation::kPrimaryCopy),
               MakeScan(1, SiteAnnotation::kPrimaryCopy),
               SiteAnnotation::kInnerRel),
      MakeJoin(MakeScan(2, SiteAnnotation::kPrimaryCopy),
               MakeScan(3, SiteAnnotation::kPrimaryCopy),
               SiteAnnotation::kInnerRel),
      SiteAnnotation::kConsumer)));

  CostParams params;
  CostModel compile_model(compile_time, params);
  {
    Plan check = compiled.Clone();
    std::cout << "compile-time communication of the compiled plan: "
              << compile_model.PlanCost(check, query,
                                        OptimizeMetric::kPagesSent)
              << " pages (paper: 500)\n\n";
  }

  // Data migration: B,C @ S1; A,D @ S2.
  Catalog run_time = compile_time;
  run_time.PlaceRelation(0, ServerSite(1));
  run_time.PlaceRelation(1, ServerSite(0));
  run_time.PlaceRelation(2, ServerSite(0));
  run_time.PlaceRelation(3, ServerSite(1));
  CostModel run_model(run_time, params);

  OptimizerConfig config = HarnessOptimizer();
  config.metric = OptimizeMetric::kPagesSent;
  Rng rng(17);

  OptimizeResult static_result =
      EvaluateStatic(run_model, compiled, query, OptimizeMetric::kPagesSent);
  OptimizeResult two_step =
      TwoStepSiteSelection(run_model, compiled, query, config, rng);
  OptimizeResult optimal =
      TwoPhaseOptimizer(run_model, config).Optimize(query, rng);

  ReportTable table({"strategy", "pages sent", "paper"});
  table.AddRow({"static (compile-time plan)", Fmt(static_result.cost, 0),
                "1000 (2.0x optimal)"});
  table.AddRow({"2-step (run-time site selection)", Fmt(two_step.cost, 0),
                "750 (1.5x optimal)"});
  table.AddRow({"fresh optimization", Fmt(optimal.cost, 0), "500"});
  table.Print(std::cout);

  std::cout << "\n2-step plan after site selection:\n"
            << PlanToString(two_step.plan);
  return 0;
}

#ifndef DIMSUM_BENCH_FIG10_COMMON_H_
#define DIMSUM_BENCH_FIG10_COMMON_H_

// Shared harness for Figures 10 and 11: relative response time of
// pre-compiled {deep, bushy} x {static, 2-step} plans versus an ideal plan
// optimized with full knowledge of the run-time state.
//
// As in the paper (Section 5.2): the number of servers storing the base
// relations is unknown at compile time. Deep plans are obtained by telling
// the compile-time optimizer the database is centralized on one server
// (with the left-deep shape constraint); bushy plans by telling it the
// database is fully distributed, one relation per server. At run time the
// relations are in fact spread randomly over k servers. Static plans are
// re-bound only; 2-step plans redo site selection. The 2-step overhead
// itself is not charged (as in the paper).

#include <algorithm>
#include <functional>
#include <iostream>
#include <vector>

#include "harness.h"
#include "opt/two_step.h"

namespace dimsum::bench {

/// Canonicalizes a compiled left-deep plan to the paper's deep convention:
/// the accumulated intermediate result is the build (left/inner) input of
/// every join, joins are annotated `inner relation`, and scans read their
/// primary copies. Under the centralized compile-time assumption every
/// annotation choice ties (all data on one site), so the compiled
/// annotations are arbitrary; this canonical form reproduces the paper's
/// observed behaviour that a static deep plan executes all joins on a
/// single site at run time, and that deep plans cannot exploit independent
/// parallelism among the joins (the builds chain serially).
inline void CanonicalizeDeep(Plan& plan) {
  plan.ForEachMutable([](PlanNode& node) {
    switch (node.type) {
      case OpType::kJoin: {
        const bool left_has_join = [&] {
          bool found = false;
          const std::function<void(const PlanNode&)> visit =
              [&](const PlanNode& n) {
                if (n.type == OpType::kJoin) found = true;
                if (n.left) visit(*n.left);
                if (n.right) visit(*n.right);
              };
          visit(*node.left);
          return found;
        }();
        const bool right_has_join = [&] {
          bool found = false;
          const std::function<void(const PlanNode&)> visit =
              [&](const PlanNode& n) {
                if (n.type == OpType::kJoin) found = true;
                if (n.left) visit(*n.left);
                if (n.right) visit(*n.right);
              };
          visit(*node.right);
          return found;
        }();
        if (right_has_join && !left_has_join) {
          std::swap(node.left, node.right);
        }
        node.annotation = SiteAnnotation::kInnerRel;
        break;
      }
      case OpType::kScan:
        node.annotation = SiteAnnotation::kPrimaryCopy;
        break;
      case OpType::kSelect:
        node.annotation = SiteAnnotation::kProducer;
        break;
      case OpType::kDisplay:
        break;
    }
  });
}

struct Fig10Point {
  RunningStat deep_static;
  RunningStat deep_two_step;
  RunningStat bushy_static;
  RunningStat bushy_two_step;
};

inline Fig10Point RunFig10Point(int servers, double selectivity,
                                const ReplicationOptions& reps) {
  Fig10Point point;
  for (int rep = 0; rep < reps.max_replications; ++rep) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(rep);
    Rng rng(seed);
    WorkloadSpec spec;
    spec.num_relations = 10;
    spec.num_servers = servers;
    spec.selectivity = selectivity;
    BenchmarkWorkload workload = MakeChainWorkload(spec, rng);
    SystemConfig config;
    config.num_servers = servers;
    config.params.buf_alloc = BufAlloc::kMinimum;
    ClientServerSystem system(std::move(workload.catalog), config);
    const CostModel true_model = system.MakeCostModel();

    OptimizerConfig opt = HarnessOptimizer();
    opt.metric = OptimizeMetric::kResponseTime;

    // Ideal candidate: full optimization with run-time knowledge.
    OptimizeResult ideal =
        TwoPhaseOptimizer(true_model, opt).Optimize(workload.query, rng);

    // Compile-time plans under the two placement assumptions.
    OptimizerConfig deep_opt = opt;
    deep_opt.require_linear = true;
    Catalog centralized =
        AssumedCatalog(system.catalog(), workload.query,
                       PlacementAssumption::kCentralized, servers);
    CostModel central_model(centralized, config.params);
    OptimizeResult deep =
        CompilePlan(central_model, workload.query, deep_opt, rng);
    CanonicalizeDeep(deep.plan);

    Catalog distributed =
        AssumedCatalog(system.catalog(), workload.query,
                       PlacementAssumption::kFullyDistributed, servers);
    CostModel dist_model(distributed, config.params);
    OptimizeResult bushy =
        CompilePlan(dist_model, workload.query, opt, rng);

    OptimizeResult deep_static = EvaluateStatic(
        true_model, deep.plan, workload.query, OptimizeMetric::kResponseTime);
    OptimizeResult deep_two =
        TwoStepSiteSelection(true_model, deep.plan, workload.query, deep_opt,
                             rng);
    OptimizeResult bushy_static =
        EvaluateStatic(true_model, bushy.plan, workload.query,
                       OptimizeMetric::kResponseTime);
    OptimizeResult bushy_two = TwoStepSiteSelection(
        true_model, bushy.plan, workload.query, opt, rng);

    const double t_deep_static =
        system.Execute(deep_static.plan, workload.query, seed).response_ms;
    const double t_deep_two =
        system.Execute(deep_two.plan, workload.query, seed).response_ms;
    const double t_bushy_static =
        system.Execute(bushy_static.plan, workload.query, seed).response_ms;
    const double t_bushy_two =
        system.Execute(bushy_two.plan, workload.query, seed).response_ms;
    // The ideal is the best *measured* plan known for this instance (the
    // randomized optimizer's estimate-vs-simulator gap would otherwise let
    // pre-compiled plans "beat the ideal").
    const double t_ideal = std::min(
        {system.Execute(ideal.plan, workload.query, seed).response_ms,
         t_deep_static, t_deep_two, t_bushy_static, t_bushy_two});

    point.deep_static.Add(t_deep_static / t_ideal);
    point.deep_two_step.Add(t_deep_two / t_ideal);
    point.bushy_static.Add(t_bushy_static / t_ideal);
    point.bushy_two_step.Add(t_bushy_two / t_ideal);

    if (rep + 1 >= reps.min_replications &&
        point.deep_static.WithinRelativeError(reps.relative_error) &&
        point.deep_two_step.WithinRelativeError(reps.relative_error) &&
        point.bushy_static.WithinRelativeError(reps.relative_error) &&
        point.bushy_two_step.WithinRelativeError(reps.relative_error)) {
      break;
    }
  }
  return point;
}

inline void RunFig10Sweep(const char* title, double selectivity,
                          const char* paper_note) {
  PrintHeader(title,
              "10-way join, vary servers, no caching, minimum allocation; "
              "response time relative to an ideal (full-knowledge) plan");
  ReportTable table({"servers", "deep static", "deep 2-step", "bushy static",
                     "bushy 2-step"});
  ReplicationOptions reps;
  reps.min_replications = 3;
  reps.max_replications = 6;
  for (int servers : {1, 2, 3, 4, 6, 8, 10}) {
    Fig10Point point = RunFig10Point(servers, selectivity, reps);
    table.AddRow(
        {std::to_string(servers),
         FmtCi(point.deep_static.mean(),
               point.deep_static.ConfidenceHalfWidth90()),
         FmtCi(point.deep_two_step.mean(),
               point.deep_two_step.ConfidenceHalfWidth90()),
         FmtCi(point.bushy_static.mean(),
               point.bushy_static.ConfidenceHalfWidth90()),
         FmtCi(point.bushy_two_step.mean(),
               point.bushy_two_step.ConfidenceHalfWidth90())});
  }
  table.Print(std::cout);
  std::cout << "\n" << paper_note << "\n";
}

}  // namespace dimsum::bench

#endif  // DIMSUM_BENCH_FIG10_COMMON_H_

// Figure 10: Relative Response Time, 10-Way Join -- static and 2-step
// plans, deep and bushy shapes, versus an ideal full-knowledge plan, as the
// number of servers varies. Paper shape: deep static pays a large penalty
// (all joins on one site under the centralized assumption); deep 2-step
// recovers some but cannot exploit independent parallelism; bushy static
// suffers at both ends; bushy 2-step stays near the ideal everywhere.

#include "fig10_common.h"

int main() {
  dimsum::bench::RunFig10Sweep(
      "Figure 10: Relative Response Time, 10-Way Join (moderate selectivity)",
      /*selectivity=*/1.0,
      "paper: deep static worst (up to ~3x); deep 2-step better but above "
      "bushy with\nmany servers; bushy 2-step ~1.0 throughout");
  return 0;
}

// Figure 11: Relative Response Time, HiSel 10-Way Join (only 20% of each
// input participates in a join result). Paper shape: bushy plans do the
// extra work of larger intermediate results and perform poorly with few
// servers, but the bushy 2-step plan recovers as servers are added because
// its extra work is spread across many sites in parallel.

#include "fig10_common.h"

int main() {
  dimsum::bench::RunFig10Sweep(
      "Figure 11: Relative Response Time, HiSel 10-Way Join",
      /*selectivity=*/0.2,
      "paper: bushy plans poor at few servers; bushy 2-step approaches the "
      "ideal as\nservers are added");
  return 0;
}

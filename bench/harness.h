#ifndef DIMSUM_BENCH_HARNESS_H_
#define DIMSUM_BENCH_HARNESS_H_

// Shared plumbing for the experiment harnesses that regenerate the paper's
// tables and figures. Each fig*/table* binary prints the same rows or
// series the paper reports (means with 90% confidence intervals where the
// experiment is randomized). Absolute values depend on the calibrated
// simulator; the *shape* -- who wins, by what factor, where crossovers
// fall -- is the reproduction target (see EXPERIMENTS.md).

#include <iostream>
#include <string>

#include "core/experiment.h"
#include "core/report.h"
#include "core/system.h"
#include "workload/benchmark.h"

namespace dimsum::bench {

/// Optimizer effort used throughout the harnesses: enough to find
/// "reasonable rather than truly optimal" plans (the paper's own bar)
/// while keeping full sweeps fast.
inline OptimizerConfig HarnessOptimizer() {
  OptimizerConfig config;
  config.ii_starts = 12;
  config.ii_patience = 48;
  config.sa_stage_moves_per_join = 8;
  return config;
}

/// One optimize+execute trial; returns the requested measurement.
enum class Measure { kPagesSent, kResponseSeconds };

inline double RunTrial(const WorkloadSpec& spec, ShippingPolicy policy,
                       Measure measure, uint64_t seed,
                       double server_load_per_sec = 0.0,
                       BufAlloc alloc = BufAlloc::kMinimum,
                       bool random_placement = true) {
  Rng rng(seed);
  BenchmarkWorkload workload = random_placement
                                   ? MakeChainWorkload(spec, rng)
                                   : MakeChainWorkloadRoundRobin(spec);
  SystemConfig config;
  config.num_servers = spec.num_servers;
  config.params.buf_alloc = alloc;
  if (server_load_per_sec > 0.0) {
    for (int s = 0; s < spec.num_servers; ++s) {
      config.server_disk_load_per_sec[ServerSite(s)] = server_load_per_sec;
    }
  }
  ClientServerSystem system(std::move(workload.catalog), config);
  const OptimizerConfig opt = HarnessOptimizer();
  const OptimizeMetric metric = (measure == Measure::kPagesSent)
                                    ? OptimizeMetric::kPagesSent
                                    : OptimizeMetric::kResponseTime;
  auto result = system.Run(workload.query, policy, metric, seed, &opt);
  return measure == Measure::kPagesSent
             ? static_cast<double>(result.execute.data_pages_sent)
             : result.execute.response_ms / 1000.0;
}

/// Replicated measurement over seeds (different random placements and
/// optimizer streams), reported as mean with its 90% CI half-width.
inline std::string MeasurePoint(const WorkloadSpec& spec,
                                ShippingPolicy policy, Measure measure,
                                double server_load_per_sec = 0.0,
                                BufAlloc alloc = BufAlloc::kMinimum,
                                bool random_placement = true,
                                int precision = 2,
                                const ReplicationOptions& reps = {}) {
  RunningStat stat = Replicate(
      [&](uint64_t seed) {
        return RunTrial(spec, policy, measure, seed, server_load_per_sec,
                        alloc, random_placement);
      },
      reps);
  return FmtCi(stat.mean(), stat.ConfidenceHalfWidth90(), precision);
}

inline void PrintHeader(const std::string& title, const std::string& setup) {
  std::cout << "==== " << title << " ====\n" << setup << "\n\n";
}

}  // namespace dimsum::bench

#endif  // DIMSUM_BENCH_HARNESS_H_

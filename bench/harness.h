#ifndef DIMSUM_BENCH_HARNESS_H_
#define DIMSUM_BENCH_HARNESS_H_

// Shared plumbing for the experiment harnesses that regenerate the paper's
// tables and figures. Each fig*/table* binary prints the same rows or
// series the paper reports (means with 90% confidence intervals where the
// experiment is randomized). Absolute values depend on the calibrated
// simulator; the *shape* -- who wins, by what factor, where crossovers
// fall -- is the reproduction target (see EXPERIMENTS.md).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/system.h"
#include "exec/metrics.h"
#include "workload/benchmark.h"

// Provenance stamps injected by bench/CMakeLists.txt at configure time;
// the fallbacks keep out-of-tree compiles working.
#ifndef DIMSUM_GIT_REV
#define DIMSUM_GIT_REV "unknown"
#endif
#ifndef DIMSUM_BUILD_TYPE
#define DIMSUM_BUILD_TYPE "unspecified"
#endif

namespace dimsum::bench {

/// FNV-1a, for hashing a harness's sweep parameters into a short stable
/// configuration fingerprint.
inline uint64_t Fnv1a64(const std::string& text) {
  uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Common header every BENCH_*.json document carries, so the longitudinal
/// perf observatory (tools/perf_report.py) can refuse to compare runs of
/// different shapes: schema identifies the record layout, config_hash the
/// sweep parameters, git_rev/build_type the build. tools/check_bench.py
/// requires all fields.
struct BenchMeta {
  std::string schema;       ///< e.g. "dimsum.bench.openloop.v1"
  int schema_version = 1;
  std::string git_rev = DIMSUM_GIT_REV;
  std::string build_type = DIMSUM_BUILD_TYPE;
  std::string config_hash;  ///< hex FNV-1a of the sweep parameters
  int threads = 0;
};

/// Builds the header. `config_text` should enumerate every knob that
/// changes what the harness measures (sweep ranges, durations, --smoke),
/// so equal hashes mean comparable records.
inline BenchMeta MakeBenchMeta(const std::string& schema,
                               const std::string& config_text) {
  BenchMeta meta;
  meta.schema = schema;
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(config_text)));
  meta.config_hash = hex;
  meta.threads = GlobalThreadPool().thread_count();
  return meta;
}

/// Serializes the meta header as one JSON object (no surrounding braces
/// of the document).
inline std::string BenchMetaJson(const BenchMeta& meta) {
  std::string out = "{\"schema\": \"" + meta.schema +
                    "\", \"schema_version\": " +
                    std::to_string(meta.schema_version) + ", \"git_rev\": \"" +
                    meta.git_rev + "\", \"build_type\": \"" + meta.build_type +
                    "\", \"config_hash\": \"" + meta.config_hash +
                    "\", \"threads\": " + std::to_string(meta.threads) + "}";
  return out;
}

/// When DIMSUM_METRICS names a .json path, writes the global registry
/// snapshot there at process exit, so any harness run can capture its
/// aggregate counters/histograms without per-binary wiring. (A bare "1"
/// just enables the registry; see MetricsRegistry::Global().)
inline void WriteMetricsSnapshotAtExit() {
  if (!MetricsRegistry::Global().enabled()) return;
  const char* env = std::getenv("DIMSUM_METRICS");
  if (env == nullptr) return;
  static std::string path;
  const std::string value = env;
  if (value.size() > 5 && value.rfind(".json") == value.size() - 5) {
    path = value;
    std::atexit([] { MetricsRegistry::Global().WriteJsonFile(path); });
  }
}

/// Applies a `--threads=N` flag if one was passed to the harness binary;
/// otherwise the global pool keeps its `DIMSUM_THREADS` / hardware-default
/// size. Replication and optimizer starts parallelize automatically; all
/// printed results are bit-identical at any thread count. Also arms the
/// DIMSUM_METRICS exit snapshot (every harness calls this first).
inline void ApplyThreadFlag(int argc, char** argv) {
  const std::string prefix = "--threads=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      SetGlobalThreadCount(std::atoi(arg.c_str() + prefix.size()));
    }
  }
  WriteMetricsSnapshotAtExit();
}

/// One measured configuration of a machine-readable benchmark series.
struct BenchRecord {
  std::string name;
  int threads = 1;
  double wall_ms = 0.0;
  double plans_per_sec = 0.0;
  double cache_hit_rate = 0.0;
  double speedup_vs_1 = 1.0;
};

/// Writes a BENCH_*.json document -- {"meta": {...}, "records": [...]} --
/// so future sessions can diff performance against this baseline. When the
/// global metrics registry is enabled (DIMSUM_METRICS), a sibling
/// `<path minus .json>.metrics.json` snapshot is written next to it, so
/// every BENCH_*.json harness can also capture its run's counters.
inline void WriteBenchJson(const std::string& path, const BenchMeta& meta,
                           const std::vector<BenchRecord>& records) {
  std::ofstream out(path);
  out << "{\"meta\": " << BenchMetaJson(meta) << ",\n \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out << "  {\"name\": \"" << r.name << "\", \"threads\": " << r.threads
        << ", \"wall_ms\": " << r.wall_ms
        << ", \"plans_per_sec\": " << r.plans_per_sec
        << ", \"cache_hit_rate\": " << r.cache_hit_rate
        << ", \"speedup_vs_1\": " << r.speedup_vs_1 << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  if (MetricsRegistry::Global().enabled()) {
    const std::string suffix = ".json";
    std::string metrics_path = path;
    if (metrics_path.size() >= suffix.size() &&
        metrics_path.compare(metrics_path.size() - suffix.size(),
                             suffix.size(), suffix) == 0) {
      metrics_path.resize(metrics_path.size() - suffix.size());
    }
    metrics_path += ".metrics.json";
    MetricsRegistry::Global().WriteJsonFile(metrics_path);
  }
}

/// Optimizer effort used throughout the harnesses: enough to find
/// "reasonable rather than truly optimal" plans (the paper's own bar)
/// while keeping full sweeps fast.
inline OptimizerConfig HarnessOptimizer() {
  OptimizerConfig config;
  config.ii_starts = 12;
  config.ii_patience = 48;
  config.sa_stage_moves_per_join = 8;
  return config;
}

/// One optimize+execute trial; returns the requested measurement.
enum class Measure { kPagesSent, kResponseSeconds };

inline double RunTrial(const WorkloadSpec& spec, ShippingPolicy policy,
                       Measure measure, uint64_t seed,
                       double server_load_per_sec = 0.0,
                       BufAlloc alloc = BufAlloc::kMinimum,
                       bool random_placement = true) {
  Rng rng(seed);
  BenchmarkWorkload workload = random_placement
                                   ? MakeChainWorkload(spec, rng)
                                   : MakeChainWorkloadRoundRobin(spec);
  SystemConfig config;
  config.num_servers = spec.num_servers;
  config.params.buf_alloc = alloc;
  // Only when a metrics snapshot was requested: per-op histogram samples
  // are not free, and trials must stay lean by default.
  config.collect_histograms = MetricsRegistry::Global().enabled();
  if (server_load_per_sec > 0.0) {
    for (int s = 0; s < spec.num_servers; ++s) {
      config.server_disk_load_per_sec[ServerSite(s)] = server_load_per_sec;
    }
  }
  ClientServerSystem system(std::move(workload.catalog), config);
  const OptimizerConfig opt = HarnessOptimizer();
  const OptimizeMetric metric = (measure == Measure::kPagesSent)
                                    ? OptimizeMetric::kPagesSent
                                    : OptimizeMetric::kResponseTime;
  auto result = system.Run(workload.query, policy, metric, seed, &opt);
  // Fold into the global registry only when snapshots were requested; the
  // fold is off the trial's hot path either way.
  if (MetricsRegistry::Global().enabled()) {
    FoldOptimizeResult(result.optimize, MetricsRegistry::Global());
    FoldExecMetrics(result.execute, MetricsRegistry::Global());
  }
  return measure == Measure::kPagesSent
             ? static_cast<double>(result.execute.data_pages_sent)
             : result.execute.response_ms / 1000.0;
}

/// Replicated measurement over seeds (different random placements and
/// optimizer streams), reported as mean with its 90% CI half-width.
inline std::string MeasurePoint(const WorkloadSpec& spec,
                                ShippingPolicy policy, Measure measure,
                                double server_load_per_sec = 0.0,
                                BufAlloc alloc = BufAlloc::kMinimum,
                                bool random_placement = true,
                                int precision = 2,
                                const ReplicationOptions& reps = {}) {
  RunningStat stat = Replicate(
      [&](uint64_t seed) {
        return RunTrial(spec, policy, measure, seed, server_load_per_sec,
                        alloc, random_placement);
      },
      reps);
  return FmtCi(stat.mean(), stat.ConfidenceHalfWidth90(), precision);
}

inline void PrintHeader(const std::string& title, const std::string& setup) {
  std::cout << "==== " << title << " ====\n" << setup << "\n"
            << "(threads: " << GlobalThreadPool().thread_count()
            << "; results independent of thread count)\n\n";
}

}  // namespace dimsum::bench

#endif  // DIMSUM_BENCH_HARNESS_H_

// Observability micro-benchmarks (google-benchmark). The tracing/metrics
// layer must be zero-cost when disabled and must never perturb the
// simulation when enabled -- observation is read-only with respect to the
// virtual clock and every RNG stream.
//
// Before the google-benchmark suite runs, an identity check executes the
// same optimized 10-way plan (a) plain, (b) with a TraceSink attached, and
// (c) with histograms + TraceSink, and verifies the simulation results are
// bit-identical in all three modes. It then times repeated plain vs fully
// instrumented executions and writes the overhead series to
// BENCH_observability.json. Skip it with --no-check.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness.h"
#include "common/metrics.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "opt/optimizer.h"
#include "sim/trace.h"
#include "workload/benchmark.h"

namespace dimsum {
namespace {

BenchmarkWorkload TenWayWorkload() {
  WorkloadSpec spec;
  spec.num_relations = 10;
  spec.num_servers = 5;
  return MakeChainWorkloadRoundRobin(spec);
}

/// One optimized plan + config shared by every benchmark below, so all
/// modes execute the identical simulation.
struct Fixture {
  BenchmarkWorkload workload = TenWayWorkload();
  SystemConfig config;
  Plan plan;

  Fixture() {
    config.num_servers = 5;
    CostModel model(workload.catalog, config.params);
    OptimizerConfig opt = bench::HarnessOptimizer();
    TwoPhaseOptimizer optimizer(model, opt);
    Rng rng(1);
    plan = optimizer.Optimize(workload.query, rng).plan;
  }
};

Fixture& SharedFixture() {
  static Fixture fixture;
  return fixture;
}

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// The simulation-visible fingerprint of one execution; anything the
/// observability layer could perturb if it ever touched the virtual clock.
bool SameResults(const ExecMetrics& a, const ExecMetrics& b) {
  return BitEqual(a.response_ms, b.response_ms) &&
         a.data_pages_sent == b.data_pages_sent &&
         a.messages == b.messages && a.bytes_sent == b.bytes_sent &&
         BitEqual(a.network_busy_ms, b.network_busy_ms) &&
         a.cpu_busy_ms == b.cpu_busy_ms && a.disk_busy_ms == b.disk_busy_ms;
}

// ---------------------------------------------------------------------------
// Identity + overhead check: the acceptance experiment for the tentpole.

int RunObservabilityCheck() {
  Fixture& f = SharedFixture();
  std::cout << "==== observability: identity + overhead, 10-way join, "
               "5 servers ====\n\n";

  const ExecMetrics plain =
      ExecutePlan(f.plan, f.workload.catalog, f.workload.query, f.config);

  sim::TraceSink trace;
  SystemConfig traced_config = f.config;
  traced_config.trace = &trace;
  const ExecMetrics traced = ExecutePlan(f.plan, f.workload.catalog,
                                         f.workload.query, traced_config);

  sim::TraceSink trace2;
  SystemConfig full_config = f.config;
  full_config.trace = &trace2;
  full_config.collect_histograms = true;
  const ExecMetrics full = ExecutePlan(f.plan, f.workload.catalog,
                                       f.workload.query, full_config);

  const bool identical =
      SameResults(plain, traced) && SameResults(plain, full);
  std::cout << "trace events captured: " << trace.num_events() << "\n"
            << "histogram samples: " << full.disk_service_ms.count()
            << " disk, " << full.net_queue_delay_ms.count() << " network\n"
            << "results plain vs traced vs traced+histograms: "
            << (identical ? "bit-identical" : "MISMATCH") << "\n\n";
  if (!identical) return 1;

  // Overhead series: repeated executions, plain vs fully instrumented
  // (fresh sink per run, as the CLI does).
  constexpr int kReps = 40;
  const auto time_reps = [&](bool instrumented) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
      sim::TraceSink sink;
      SystemConfig config = f.config;
      if (instrumented) {
        config.trace = &sink;
        config.collect_histograms = true;
      }
      ExecMetrics m = ExecutePlan(f.plan, f.workload.catalog,
                                  f.workload.query, config);
      benchmark::DoNotOptimize(m.response_ms);
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
  };

  std::vector<bench::BenchRecord> records;
  const double plain_ms = time_reps(false);
  const double full_ms = time_reps(true);
  bench::BenchRecord base;
  base.name = "execute_10way_plain";
  base.wall_ms = plain_ms;
  records.push_back(base);
  bench::BenchRecord instrumented;
  instrumented.name = "execute_10way_trace_and_histograms";
  instrumented.wall_ms = full_ms;
  instrumented.speedup_vs_1 = plain_ms / full_ms;
  records.push_back(instrumented);
  std::cout << "plain:        " << plain_ms / kReps << " ms/run\n"
            << "instrumented: " << full_ms / kReps << " ms/run ("
            << (full_ms / plain_ms - 1.0) * 100.0 << "% overhead)\n";
  bench::WriteBenchJson(
      "BENCH_observability.json",
      bench::MakeBenchMeta("dimsum.bench.observability.v1",
                           "execute_10way plain-vs-instrumented reps=40"),
      records);
  std::cout << "wrote BENCH_observability.json\n\n";
  return 0;
}

// ---------------------------------------------------------------------------
// google-benchmark microbenchmarks.

void BM_ExecutePlain(benchmark::State& state) {
  Fixture& f = SharedFixture();
  for (auto _ : state) {
    ExecMetrics m = ExecutePlan(f.plan, f.workload.catalog, f.workload.query,
                                f.config);
    benchmark::DoNotOptimize(m.response_ms);
  }
}
BENCHMARK(BM_ExecutePlain)->Unit(benchmark::kMillisecond);

void BM_ExecuteTraced(benchmark::State& state) {
  Fixture& f = SharedFixture();
  SystemConfig config = f.config;
  int64_t events = 0;
  for (auto _ : state) {
    sim::TraceSink trace;
    config.trace = &trace;
    ExecMetrics m = ExecutePlan(f.plan, f.workload.catalog, f.workload.query,
                                config);
    benchmark::DoNotOptimize(m.response_ms);
    events += trace.num_events();
  }
  state.counters["events_per_run"] =
      state.iterations() > 0
          ? static_cast<double>(events) /
                static_cast<double>(state.iterations())
          : 0.0;
}
BENCHMARK(BM_ExecuteTraced)->Unit(benchmark::kMillisecond);

void BM_ExecuteHistograms(benchmark::State& state) {
  Fixture& f = SharedFixture();
  SystemConfig config = f.config;
  config.collect_histograms = true;
  for (auto _ : state) {
    ExecMetrics m = ExecutePlan(f.plan, f.workload.catalog, f.workload.query,
                                config);
    benchmark::DoNotOptimize(m.response_ms);
  }
}
BENCHMARK(BM_ExecuteHistograms)->Unit(benchmark::kMillisecond);

void BM_TraceWriteJson(benchmark::State& state) {
  Fixture& f = SharedFixture();
  sim::TraceSink trace;
  SystemConfig config = f.config;
  config.trace = &trace;
  ExecutePlan(f.plan, f.workload.catalog, f.workload.query, config);
  for (auto _ : state) {
    std::ostringstream json;
    trace.WriteJson(json);
    benchmark::DoNotOptimize(json);
  }
  state.counters["events"] = static_cast<double>(trace.num_events());
}
BENCHMARK(BM_TraceWriteJson)->Unit(benchmark::kMillisecond);

void BM_CounterAdd(benchmark::State& state) {
  Counter counter;
  for (auto _ : state) {
    counter.Add(1);
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram hist(Histogram::DefaultTimeBoundsMs());
  double x = 0.013;
  for (auto _ : state) {
    hist.Add(x);
    x = x * 1.7 + 0.001;
    if (x > 9000.0) x = 0.013;
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramAdd);

}  // namespace
}  // namespace dimsum

int main(int argc, char** argv) {
  bool run_check = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-check") == 0) {
      run_check = false;
      // Hide the flag from google-benchmark's parser.
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (run_check && dimsum::RunObservabilityCheck() != 0) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Optimizer micro-benchmarks (google-benchmark). Section 3.1.1 of the
// paper reports ~40 s on a 1995 SPARCstation 5 for join ordering + site
// selection of a 10-way join over 10 servers; this measures the same
// operation on modern hardware, plus the building blocks (plan evaluation,
// random moves, site selection, and a full simulated execution).

#include <benchmark/benchmark.h>

#include "core/system.h"
#include "opt/optimizer.h"
#include "plan/binding.h"
#include "workload/benchmark.h"

namespace dimsum {
namespace {

BenchmarkWorkload TenWayWorkload() {
  WorkloadSpec spec;
  spec.num_relations = 10;
  spec.num_servers = 10;
  return MakeChainWorkloadRoundRobin(spec);
}

void BM_Optimize10Way10Servers(benchmark::State& state) {
  const ShippingPolicy policy = static_cast<ShippingPolicy>(state.range(0));
  BenchmarkWorkload w = TenWayWorkload();
  CostModel model(w.catalog, CostParams{});
  OptimizerConfig config;
  config.policy = policy;
  config.metric = OptimizeMetric::kResponseTime;
  TwoPhaseOptimizer optimizer(model, config);
  Rng rng(1);
  for (auto _ : state) {
    OptimizeResult result = optimizer.Optimize(w.query, rng);
    benchmark::DoNotOptimize(result.cost);
  }
}
BENCHMARK(BM_Optimize10Way10Servers)
    ->Arg(static_cast<int>(ShippingPolicy::kDataShipping))
    ->Arg(static_cast<int>(ShippingPolicy::kQueryShipping))
    ->Arg(static_cast<int>(ShippingPolicy::kHybridShipping))
    ->Unit(benchmark::kMillisecond);

void BM_SiteSelect10Way(benchmark::State& state) {
  BenchmarkWorkload w = TenWayWorkload();
  CostModel model(w.catalog, CostParams{});
  OptimizerConfig config;
  config.metric = OptimizeMetric::kResponseTime;
  TwoPhaseOptimizer optimizer(model, config);
  Rng rng(2);
  OptimizeResult full = optimizer.Optimize(w.query, rng);
  for (auto _ : state) {
    OptimizeResult result = optimizer.SiteSelect(full.plan, w.query, rng);
    benchmark::DoNotOptimize(result.cost);
  }
}
BENCHMARK(BM_SiteSelect10Way)->Unit(benchmark::kMillisecond);

void BM_PlanCostEvaluation(benchmark::State& state) {
  BenchmarkWorkload w = TenWayWorkload();
  CostModel model(w.catalog, CostParams{});
  TransformConfig transform;
  Rng rng(3);
  Plan plan = RandomPlan(w.query, transform, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.PlanCost(plan, w.query, OptimizeMetric::kResponseTime));
  }
}
BENCHMARK(BM_PlanCostEvaluation);

void BM_RandomMove(benchmark::State& state) {
  BenchmarkWorkload w = TenWayWorkload();
  TransformConfig transform;
  Rng rng(4);
  Plan plan = RandomPlan(w.query, transform, rng);
  for (auto _ : state) {
    auto next = TryRandomMove(plan, w.query, transform, rng);
    if (next.has_value()) plan = std::move(*next);
  }
}
BENCHMARK(BM_RandomMove);

void BM_Simulate2WayJoin(benchmark::State& state) {
  WorkloadSpec spec;
  spec.num_relations = 2;
  spec.num_servers = 1;
  BenchmarkWorkload w = MakeChainWorkloadRoundRobin(spec);
  SystemConfig config;
  config.num_servers = 1;
  auto join = MakeJoin(MakeScan(0, SiteAnnotation::kPrimaryCopy),
                       MakeScan(1, SiteAnnotation::kPrimaryCopy),
                       SiteAnnotation::kInnerRel);
  Plan plan(MakeDisplay(std::move(join)));
  BindSites(plan, w.catalog);
  for (auto _ : state) {
    ExecMetrics metrics = ExecutePlan(plan, w.catalog, w.query, config);
    benchmark::DoNotOptimize(metrics.response_ms);
  }
}
BENCHMARK(BM_Simulate2WayJoin)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dimsum

BENCHMARK_MAIN();

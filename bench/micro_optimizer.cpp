// Optimizer micro-benchmarks (google-benchmark). Section 3.1.1 of the
// paper reports ~40 s on a 1995 SPARCstation 5 for join ordering + site
// selection of a 10-way join over 10 servers; this measures the same
// operation on modern hardware, plus the building blocks (plan evaluation,
// random moves, site selection, and a full simulated execution).
//
// Before the google-benchmark suite runs, a thread sweep times the 10-way
// optimization + replication apparatus at 1, 2, 4, and N threads, checks
// that the best plan / cost / replication statistics are bit-identical at
// every thread count, and writes machine-readable results (plans/sec, wall
// time, cache hit rate per thread count) to BENCH_optimizer.json. Skip it
// with --no-sweep.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "core/system.h"
#include "opt/optimizer.h"
#include "plan/binding.h"
#include "plan/printer.h"
#include "workload/benchmark.h"

namespace dimsum {
namespace {

BenchmarkWorkload TenWayWorkload() {
  WorkloadSpec spec;
  spec.num_relations = 10;
  spec.num_servers = 10;
  return MakeChainWorkloadRoundRobin(spec);
}

// ---------------------------------------------------------------------------
// Thread sweep: the acceptance experiment for the parallel engine.

struct SweepOutcome {
  double wall_ms = 0.0;
  int64_t plans_evaluated = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  // Identity fingerprints, compared bitwise across thread counts.
  std::vector<double> best_costs;
  std::vector<std::string> best_plans;
  int64_t stat_count = 0;
  double stat_mean = 0.0;
  double stat_variance = 0.0;
};

SweepOutcome RunSweepOnce(int optimize_runs) {
  BenchmarkWorkload w = TenWayWorkload();
  CostModel model(w.catalog, CostParams{});
  OptimizerConfig config;
  config.policy = ShippingPolicy::kHybridShipping;
  config.metric = OptimizeMetric::kResponseTime;
  TwoPhaseOptimizer optimizer(model, config);

  SweepOutcome out;
  const auto t0 = std::chrono::steady_clock::now();
  for (int run = 0; run < optimize_runs; ++run) {
    Rng rng(static_cast<uint64_t>(run) + 1);
    OptimizeResult result = optimizer.Optimize(w.query, rng);
    out.plans_evaluated += result.plans_evaluated;
    out.cache_hits += result.cache_hits;
    out.cache_misses += result.cache_misses;
    out.best_costs.push_back(result.cost);
    out.best_plans.push_back(PlanToString(result.plan));
  }
  // Replicated trial through the full optimize+execute path, exercising
  // the speculative-batch Replicate.
  WorkloadSpec spec;
  spec.num_relations = 10;
  spec.num_servers = 10;
  RunningStat stat = Replicate(
      [&](uint64_t seed) {
        return bench::RunTrial(spec, ShippingPolicy::kHybridShipping,
                               bench::Measure::kResponseSeconds, seed);
      },
      ReplicationOptions{});
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.stat_count = stat.count();
  out.stat_mean = stat.mean();
  out.stat_variance = stat.variance();
  return out;
}

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

int RunThreadSweep() {
  const int hardware = ThreadCountFromEnv(nullptr);
  std::vector<int> thread_counts{1, 2, 4};
  if (std::find(thread_counts.begin(), thread_counts.end(), hardware) ==
      thread_counts.end()) {
    thread_counts.push_back(hardware);
  }
  std::sort(thread_counts.begin(), thread_counts.end());

  constexpr int kOptimizeRuns = 6;
  std::cout << "==== thread sweep: 10-way join optimization + replication "
               "====\n"
            << kOptimizeRuns
            << " full 2PO runs + one replicated optimize+execute trial per "
               "thread count\n\n";

  std::vector<bench::BenchRecord> records;
  SweepOutcome baseline;
  bool identical = true;
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const int threads = thread_counts[i];
    SetGlobalThreadCount(threads);
    const SweepOutcome outcome = RunSweepOnce(kOptimizeRuns);
    if (i == 0) {
      baseline = outcome;
    } else {
      identical = identical &&
                  outcome.best_plans == baseline.best_plans &&
                  outcome.plans_evaluated == baseline.plans_evaluated &&
                  outcome.stat_count == baseline.stat_count &&
                  BitEqual(outcome.stat_mean, baseline.stat_mean) &&
                  BitEqual(outcome.stat_variance, baseline.stat_variance);
      for (std::size_t r = 0; r < outcome.best_costs.size(); ++r) {
        identical =
            identical && BitEqual(outcome.best_costs[r],
                                  baseline.best_costs[r]);
      }
    }
    bench::BenchRecord record;
    record.name = "optimize_10way_sweep";
    record.threads = threads;
    record.wall_ms = outcome.wall_ms;
    record.plans_per_sec = static_cast<double>(outcome.plans_evaluated) /
                           (outcome.wall_ms / 1000.0);
    const int64_t lookups = outcome.cache_hits + outcome.cache_misses;
    record.cache_hit_rate =
        lookups > 0 ? static_cast<double>(outcome.cache_hits) /
                          static_cast<double>(lookups)
                    : 0.0;
    record.speedup_vs_1 = records.empty()
                              ? 1.0
                              : records.front().wall_ms / outcome.wall_ms;
    records.push_back(record);
    std::cout << "threads=" << threads << "  wall=" << record.wall_ms
              << " ms  plans/sec=" << record.plans_per_sec
              << "  cache-hit-rate=" << record.cache_hit_rate
              << "  speedup=" << record.speedup_vs_1 << "x\n";
  }
  std::cout << "\ndeterminism across thread counts: "
            << (identical ? "bit-identical" : "MISMATCH") << "\n";
  bench::WriteBenchJson(
      "BENCH_optimizer.json",
      bench::MakeBenchMeta("dimsum.bench.optimizer.v1",
                           "optimize_10way_sweep threads=1,2,4,hw"),
      records);
  std::cout << "wrote BENCH_optimizer.json\n\n";
  SetGlobalThreadCount(1);
  return identical ? 0 : 1;
}

// ---------------------------------------------------------------------------
// google-benchmark microbenchmarks.

void BM_Optimize10Way10Servers(benchmark::State& state) {
  const ShippingPolicy policy = static_cast<ShippingPolicy>(state.range(0));
  BenchmarkWorkload w = TenWayWorkload();
  CostModel model(w.catalog, CostParams{});
  OptimizerConfig config;
  config.policy = policy;
  config.metric = OptimizeMetric::kResponseTime;
  TwoPhaseOptimizer optimizer(model, config);
  Rng rng(1);
  int64_t plans = 0;
  int64_t hits = 0;
  int64_t lookups = 0;
  for (auto _ : state) {
    OptimizeResult result = optimizer.Optimize(w.query, rng);
    benchmark::DoNotOptimize(result.cost);
    plans += result.plans_evaluated;
    hits += result.cache_hits;
    lookups += result.cache_hits + result.cache_misses;
  }
  state.counters["plans_per_sec"] = benchmark::Counter(
      static_cast<double>(plans), benchmark::Counter::kIsRate);
  state.counters["cache_hit_rate"] =
      lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups)
                  : 0.0;
}
BENCHMARK(BM_Optimize10Way10Servers)
    ->Arg(static_cast<int>(ShippingPolicy::kDataShipping))
    ->Arg(static_cast<int>(ShippingPolicy::kQueryShipping))
    ->Arg(static_cast<int>(ShippingPolicy::kHybridShipping))
    ->Unit(benchmark::kMillisecond);

/// The same full optimization at 1, 2, 4, and N pool threads; the argument
/// is the pool size. Counters report search throughput and memoization.
void BM_Optimize10WayThreads(benchmark::State& state) {
  SetGlobalThreadCount(static_cast<int>(state.range(0)));
  BenchmarkWorkload w = TenWayWorkload();
  CostModel model(w.catalog, CostParams{});
  OptimizerConfig config;
  config.metric = OptimizeMetric::kResponseTime;
  TwoPhaseOptimizer optimizer(model, config);
  Rng rng(1);
  int64_t plans = 0;
  int64_t hits = 0;
  int64_t lookups = 0;
  for (auto _ : state) {
    OptimizeResult result = optimizer.Optimize(w.query, rng);
    benchmark::DoNotOptimize(result.cost);
    plans += result.plans_evaluated;
    hits += result.cache_hits;
    lookups += result.cache_hits + result.cache_misses;
  }
  state.counters["plans_per_sec"] = benchmark::Counter(
      static_cast<double>(plans), benchmark::Counter::kIsRate);
  state.counters["cache_hit_rate"] =
      lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups)
                  : 0.0;
  SetGlobalThreadCount(1);
}
BENCHMARK(BM_Optimize10WayThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)  // 0 = all hardware threads (resolved by the pool)
    ->Unit(benchmark::kMillisecond);

void BM_SiteSelect10Way(benchmark::State& state) {
  BenchmarkWorkload w = TenWayWorkload();
  CostModel model(w.catalog, CostParams{});
  OptimizerConfig config;
  config.metric = OptimizeMetric::kResponseTime;
  TwoPhaseOptimizer optimizer(model, config);
  Rng rng(2);
  OptimizeResult full = optimizer.Optimize(w.query, rng);
  for (auto _ : state) {
    OptimizeResult result = optimizer.SiteSelect(full.plan, w.query, rng);
    benchmark::DoNotOptimize(result.cost);
  }
}
BENCHMARK(BM_SiteSelect10Way)->Unit(benchmark::kMillisecond);

void BM_PlanCostEvaluation(benchmark::State& state) {
  BenchmarkWorkload w = TenWayWorkload();
  CostModel model(w.catalog, CostParams{});
  TransformConfig transform;
  Rng rng(3);
  Plan plan = RandomPlan(w.query, transform, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.PlanCost(plan, w.query, OptimizeMetric::kResponseTime));
  }
}
BENCHMARK(BM_PlanCostEvaluation);

void BM_RandomMove(benchmark::State& state) {
  BenchmarkWorkload w = TenWayWorkload();
  TransformConfig transform;
  Rng rng(4);
  Plan plan = RandomPlan(w.query, transform, rng);
  for (auto _ : state) {
    auto next = TryRandomMove(plan, w.query, transform, rng);
    if (next.has_value()) plan = std::move(*next);
  }
}
BENCHMARK(BM_RandomMove);

void BM_Simulate2WayJoin(benchmark::State& state) {
  WorkloadSpec spec;
  spec.num_relations = 2;
  spec.num_servers = 1;
  BenchmarkWorkload w = MakeChainWorkloadRoundRobin(spec);
  SystemConfig config;
  config.num_servers = 1;
  auto join = MakeJoin(MakeScan(0, SiteAnnotation::kPrimaryCopy),
                       MakeScan(1, SiteAnnotation::kPrimaryCopy),
                       SiteAnnotation::kInnerRel);
  Plan plan(MakeDisplay(std::move(join)));
  BindSites(plan, w.catalog);
  for (auto _ : state) {
    ExecMetrics metrics = ExecutePlan(plan, w.catalog, w.query, config);
    benchmark::DoNotOptimize(metrics.response_ms);
  }
}
BENCHMARK(BM_Simulate2WayJoin)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dimsum

int main(int argc, char** argv) {
  bool run_sweep = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-sweep") == 0) {
      run_sweep = false;
      // Hide the flag from google-benchmark's parser.
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (run_sweep && dimsum::RunThreadSweep() != 0) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

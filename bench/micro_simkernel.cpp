/// \file
/// DES kernel microbenchmark: the redesigned kernel (calendar-queue or
/// binary-heap event queue, inline 64-byte events, pooled coroutine
/// frames) against a faithful replica of the pre-redesign kernel embedded
/// below (std::priority_queue of entries carrying a std::function,
/// global-new coroutine frames, capture-heavy completion lambdas).
///
/// Every scenario is a template instantiated over all three kernels, so
/// the workload code -- and the Rng stream it consumes -- is identical;
/// per-scenario event counts are asserted equal across kernels. Scenarios:
///
///   hold         classic hold model: a bank of self-rescheduling inline
///                callbacks with exponential holds (pure queue churn).
///   delay1000    1000 processes looping over sim.Delay (frame-free timer
///                churn through coroutine resumption).
///   resource1000 1000 processes contending for 16 FIFO resources
///                (completion-callback path: fat lambda captures on the
///                legacy kernel, [this]-only on the new one).
///   channel1000  500 producer/consumer pairs over bounded channels.
///   nested1000   1000 processes awaiting depth-8 Task chains (frame
///                allocation churn: pooled vs global new).
///   timers1000   1000 processes spawning detached one-shot timers with
///                long lifetimes, holding ~100k events pending (the
///                large-population regime where bucket order beats a
///                d-ary heap's log n sifts).
///
/// Writes BENCH_kernel.json: one record per (scenario, kernel) with
/// events/sec and speedup_vs_legacy, plus the new kernel's counters
/// (peak queue depth, calendar resizes, frame-pool hit rate).
///
/// Flags: --smoke (CI sizes), --reps=N (best-of-N timing, default 2),
/// --out=PATH.

#include <chrono>
#include <cmath>
#include <coroutine>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "harness.h"
#include "sim/channel.h"
#include "sim/event_queue.h"
#include "sim/frame_pool.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace legacy {

// ---------------------------------------------------------------------------
// Pre-redesign kernel, reproduced verbatim-in-spirit from the repository
// history: a binary-heap priority queue whose entries carry an owning
// std::function (one allocation per out-of-line callback event, one copy
// per pop), coroutine frames on global new/delete, and resource completion
// lambdas capturing the full request by value. Kept in the benchmark
// binary so the comparison baseline cannot drift as src/sim evolves.
// ---------------------------------------------------------------------------

class Process;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  double now() const { return now_; }

  void Resume(double delay, std::coroutine_handle<> handle) {
    DIMSUM_CHECK_GE(delay, 0.0);
    DIMSUM_CHECK(handle);
    queue_.push(Entry{now_ + delay, next_seq_++, handle, nullptr});
  }

  void Call(double delay, std::function<void()> fn) {
    DIMSUM_CHECK_GE(delay, 0.0);
    DIMSUM_CHECK(fn);
    queue_.push(Entry{now_ + delay, next_seq_++, nullptr, std::move(fn)});
  }

  void Spawn(Process process);

  bool Step() {
    if (queue_.empty()) return false;
    Entry entry = queue_.top();
    queue_.pop();
    DIMSUM_CHECK_GE(entry.time, now_);
    now_ = entry.time;
    ++processed_;
    if (entry.handle) {
      entry.handle.resume();
    } else {
      entry.fn();
    }
    return true;
  }

  void Run() {
    while (Step()) {
    }
  }

  uint64_t processed_events() const { return processed_; }

  auto Delay(double delay) {
    struct Awaiter {
      Simulator& sim;
      double delay;
      bool await_ready() const noexcept { return delay <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) { sim.Resume(delay, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, delay};
  }

 private:
  struct Entry {
    double time;
    uint64_t seq;
    std::coroutine_handle<> handle;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) const noexcept {
      auto continuation = h.promise().continuation;
      return continuation ? continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  struct promise_type {  // global new/delete: no PooledFrame base
    std::coroutine_handle<> continuation;
    std::optional<T> value;

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void return_value(T v) { value.emplace(std::move(v)); }
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
    handle_.promise().continuation = caller;
    return handle_;
  }
  T await_resume() {
    DIMSUM_CHECK(handle_.promise().value.has_value());
    return std::move(*handle_.promise().value);
  }

 private:
  explicit Task(Handle handle) : handle_(handle) {}
  Handle handle_;
};

class Process {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    promise_type* promise;
    bool await_ready() const noexcept {
      if (promise->on_done) promise->on_done();
      return true;  // never suspend: frame is destroyed on return
    }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };

  struct promise_type {
    std::function<void()> on_done;

    Process get_return_object() { return Process(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return FinalAwaiter{this}; }
    void return_void() const noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  Process(Process&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() {
    if (handle_) handle_.destroy();
  }

  Handle Release() { return std::exchange(handle_, {}); }

 private:
  explicit Process(Handle handle) : handle_(handle) {}
  Handle handle_;
};

inline void Simulator::Spawn(Process process) {
  Process::Handle handle = process.Release();
  DIMSUM_CHECK(handle);
  Resume(0.0, handle);
}

class Resource {
 public:
  Resource(Simulator& sim, std::string name) : sim_(sim), name_(std::move(name)) {}
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  auto Use(double service_ms) {
    struct Awaiter {
      Resource& resource;
      double service_ms;
      bool await_ready() const noexcept { return service_ms <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) {
        resource.Enqueue(h, service_ms);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, service_ms};
  }

 private:
  struct Request {
    std::coroutine_handle<> handle;
    double service_ms;
    double enqueue_time;
  };

  void Enqueue(std::coroutine_handle<> handle, double service_ms) {
    queue_.push_back(Request{handle, service_ms, sim_.now()});
    Dispatch();
  }

  void Dispatch() {
    if (busy_ || queue_.empty()) return;
    busy_ = true;
    Request request = queue_.front();
    queue_.pop_front();
    const double wait = sim_.now() - request.enqueue_time;
    wait_ms_ += wait;
    busy_ms_ += request.service_ms;
    const double start = sim_.now();
    // The pre-redesign completion lambda: 48 bytes of captures, which
    // overflows std::function's inline buffer and heap-allocates per
    // dispatch.
    sim_.Call(request.service_ms, [this, request, wait, start] {
      busy_ = false;
      (void)wait;
      (void)start;
      sim_.Resume(0.0, request.handle);
      Dispatch();
    });
  }

  Simulator& sim_;
  std::string name_;
  bool busy_ = false;
  std::deque<Request> queue_;
  double busy_ms_ = 0.0;
  double wait_ms_ = 0.0;
};

template <typename T>
class Channel {
 public:
  Channel(Simulator& sim, size_t capacity) : sim_(sim), capacity_(capacity) {
    DIMSUM_CHECK_GE(capacity, size_t{1});
  }
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  struct PutAwaiter {
    Channel& channel;
    T value;
    bool await_ready() {
      if (channel.buffer_.size() < channel.capacity_) {
        channel.PushAndWakeGetter(std::move(value));
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      channel.putters_.push_back(Putter{h, std::move(value)});
    }
    void await_resume() const noexcept {}
  };

  struct GetAwaiter {
    Channel& channel;
    std::optional<T> result;
    bool await_ready() {
      if (!channel.buffer_.empty()) {
        result = std::move(channel.buffer_.front());
        channel.buffer_.pop_front();
        channel.AdmitPutter();
        return true;
      }
      if (channel.closed_) {
        result = std::nullopt;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      channel.getters_.push_back(Getter{h, this});
    }
    std::optional<T> await_resume() { return std::move(result); }
  };

  PutAwaiter Put(T value) {
    DIMSUM_CHECK(!closed_);
    return PutAwaiter{*this, std::move(value)};
  }
  GetAwaiter Get() { return GetAwaiter{*this, std::nullopt}; }

  void Close() {
    if (closed_) return;
    closed_ = true;
    while (!getters_.empty()) {
      Getter getter = getters_.front();
      getters_.pop_front();
      getter.awaiter->result = std::nullopt;
      sim_.Resume(0.0, getter.handle);
    }
  }

 private:
  struct Putter {
    std::coroutine_handle<> handle;
    T value;
  };
  struct Getter {
    std::coroutine_handle<> handle;
    GetAwaiter* awaiter;
  };

  void PushAndWakeGetter(T value) {
    if (!getters_.empty()) {
      DIMSUM_CHECK(buffer_.empty());
      Getter getter = getters_.front();
      getters_.pop_front();
      getter.awaiter->result = std::move(value);
      sim_.Resume(0.0, getter.handle);
      return;
    }
    buffer_.push_back(std::move(value));
  }

  void AdmitPutter() {
    if (putters_.empty()) return;
    Putter putter = std::move(putters_.front());
    putters_.pop_front();
    PushAndWakeGetter(std::move(putter.value));
    sim_.Resume(0.0, putter.handle);
  }

  Simulator& sim_;
  size_t capacity_;
  bool closed_ = false;
  std::deque<T> buffer_;
  std::deque<Putter> putters_;
  std::deque<Getter> getters_;
};

}  // namespace legacy

namespace {

// ---------------------------------------------------------------------------
// Kernel bindings: one scenario template instantiates against each.
// ---------------------------------------------------------------------------

struct ScenarioResult {
  uint64_t events = 0;
  double wall_ms = 0.0;
  uint64_t peak_queue_depth = 0;
  uint64_t calendar_resizes = 0;
  double frame_pool_hit_rate = -1.0;  // -1 = not instrumented (legacy)
};

struct LegacyKernel {
  static const char* Name() { return "legacy"; }
  using Simulator = legacy::Simulator;
  using Process = legacy::Process;
  template <typename T>
  using Task = legacy::Task<T>;
  using Resource = legacy::Resource;
  template <typename T>
  using Channel = legacy::Channel<T>;

  static std::unique_ptr<Simulator> NewSimulator() {
    return std::make_unique<Simulator>();
  }
  static void FillCounters(const Simulator&,
                           const dimsum::sim::FramePool::Stats&,
                           ScenarioResult&) {}
};

template <dimsum::sim::EventQueueKind Kind>
struct NewKernel {
  static const char* Name() {
    return Kind == dimsum::sim::EventQueueKind::kCalendar ? "calendar"
                                                          : "heap";
  }
  using Simulator = dimsum::sim::Simulator;
  using Process = dimsum::sim::Process;
  template <typename T>
  using Task = dimsum::sim::Task<T>;
  using Resource = dimsum::sim::Resource;
  template <typename T>
  using Channel = dimsum::sim::Channel<T>;

  static std::unique_ptr<Simulator> NewSimulator() {
    return std::make_unique<Simulator>(Kind);
  }
  static void FillCounters(const Simulator& sim,
                           const dimsum::sim::FramePool::Stats& before,
                           ScenarioResult& r) {
    r.peak_queue_depth = sim.peak_queue_depth();
    r.calendar_resizes = sim.calendar_resizes();
    const dimsum::sim::FramePool::Stats now =
        dimsum::sim::FramePool::ThisThread().stats();
    const uint64_t hits = now.hits - before.hits;
    const uint64_t misses = now.misses - before.misses;
    r.frame_pool_hit_rate =
        hits + misses > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + misses)
            : -1.0;
  }
};

using HeapKernel = NewKernel<dimsum::sim::EventQueueKind::kHeap>;
using CalendarKernel = NewKernel<dimsum::sim::EventQueueKind::kCalendar>;

/// Times sim.Run() (setup excluded) and collects kernel counters. Called
/// with the scenario's locals still in scope, so workload state outlives
/// the run.
template <typename K>
ScenarioResult FinishRun(typename K::Simulator& sim) {
  const dimsum::sim::FramePool::Stats pool_before =
      dimsum::sim::FramePool::ThisThread().stats();
  const auto t0 = std::chrono::steady_clock::now();
  sim.Run();
  const auto t1 = std::chrono::steady_clock::now();
  ScenarioResult r;
  r.events = sim.processed_events();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  K::FillCounters(sim, pool_before, r);
  return r;
}

// ---------------------------------------------------------------------------
// Scenario sizes
// ---------------------------------------------------------------------------

struct Sizes {
  long hold_events;
  int hold_population;
  int procs;
  int delay_rounds;
  int resource_rounds;
  int channel_pairs;
  int channel_items;
  int nested_rounds;
  int timer_rounds;
};

constexpr Sizes kFull = {1'500'000, 8192, 1000, 1500, 400, 500, 600, 600, 120};
constexpr Sizes kSmoke = {150'000, 4096, 1000, 150, 40, 500, 60, 60, 12};

// ---------------------------------------------------------------------------
// hold: self-rescheduling callbacks. 24 bytes of state: inline in the new
// kernel's events, a heap-allocated std::function on the legacy kernel.
// ---------------------------------------------------------------------------

template <typename K>
struct HoldCtx {
  typename K::Simulator* sim;
  dimsum::Rng* rng;
  long remaining;
};

template <typename K>
struct HoldFn {
  HoldCtx<K>* ctx;
  double payload[2];
  void operator()() const {
    if (ctx->remaining-- <= 0) return;
    ctx->sim->Call(ctx->rng->Exponential(10.0),
                   HoldFn<K>{ctx, {payload[0] + 1.0, payload[1]}});
  }
};

template <typename K>
ScenarioResult ScenarioHold(const Sizes& s) {
  auto sim = K::NewSimulator();
  dimsum::Rng rng(42);
  HoldCtx<K> ctx{sim.get(), &rng, s.hold_events};
  for (int i = 0; i < s.hold_population; ++i) {
    sim->Call(rng.Exponential(10.0),
              HoldFn<K>{&ctx, {static_cast<double>(i), 0.0}});
  }
  return FinishRun<K>(*sim);
}

// ---------------------------------------------------------------------------
// delay1000: coroutine timer churn.
// ---------------------------------------------------------------------------

template <typename K>
typename K::Process DelayChurn(typename K::Simulator& sim, dimsum::Rng rng,
                               int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await sim.Delay(rng.Exponential(10.0));
  }
}

template <typename K>
ScenarioResult ScenarioDelay(const Sizes& s) {
  auto sim = K::NewSimulator();
  dimsum::Rng root(7);
  for (int p = 0; p < s.procs; ++p) {
    sim->Spawn(DelayChurn<K>(*sim, root.Fork(), s.delay_rounds));
  }
  return FinishRun<K>(*sim);
}

// ---------------------------------------------------------------------------
// resource1000: FIFO-server contention (completion-callback path).
// ---------------------------------------------------------------------------

template <typename K>
typename K::Process ResourceUser(
    typename K::Simulator& sim,
    std::vector<std::unique_ptr<typename K::Resource>>& resources,
    dimsum::Rng rng, int rounds) {
  const int64_t n = static_cast<int64_t>(resources.size());
  for (int i = 0; i < rounds; ++i) {
    typename K::Resource& r = *resources[rng.UniformInt(0, n - 1)];
    co_await r.Use(rng.Exponential(5.0));
    co_await sim.Delay(rng.Exponential(20.0));
  }
}

template <typename K>
ScenarioResult ScenarioResource(const Sizes& s) {
  auto sim = K::NewSimulator();
  std::vector<std::unique_ptr<typename K::Resource>> resources;
  for (int i = 0; i < 16; ++i) {
    resources.push_back(std::make_unique<typename K::Resource>(
        *sim, "r" + std::to_string(i)));
  }
  dimsum::Rng root(11);
  for (int p = 0; p < s.procs; ++p) {
    sim->Spawn(ResourceUser<K>(*sim, resources, root.Fork(),
                               s.resource_rounds));
  }
  return FinishRun<K>(*sim);
}

// ---------------------------------------------------------------------------
// channel1000: bounded producer/consumer hand-offs.
// ---------------------------------------------------------------------------

template <typename K>
typename K::Process Producer(typename K::Simulator& sim,
                             typename K::template Channel<int>& channel,
                             dimsum::Rng rng, int items) {
  for (int i = 0; i < items; ++i) {
    co_await sim.Delay(rng.Exponential(2.0));
    co_await channel.Put(i);
  }
  channel.Close();
}

template <typename K>
typename K::Process Consumer(typename K::template Channel<int>& channel,
                             long* sum) {
  for (;;) {
    std::optional<int> value = co_await channel.Get();
    if (!value.has_value()) break;
    *sum += *value;
  }
}

template <typename K>
ScenarioResult ScenarioChannel(const Sizes& s) {
  auto sim = K::NewSimulator();
  std::vector<std::unique_ptr<typename K::template Channel<int>>> channels;
  long sum = 0;
  dimsum::Rng root(13);
  for (int p = 0; p < s.channel_pairs; ++p) {
    channels.push_back(
        std::make_unique<typename K::template Channel<int>>(*sim, 2));
    sim->Spawn(Producer<K>(*sim, *channels.back(), root.Fork(),
                           s.channel_items));
    sim->Spawn(Consumer<K>(*channels.back(), &sum));
  }
  ScenarioResult r = FinishRun<K>(*sim);
  const long expected = static_cast<long>(s.channel_pairs) *
                        (static_cast<long>(s.channel_items) *
                         (s.channel_items - 1) / 2);
  DIMSUM_CHECK_EQ(sum, expected);
  return r;
}

// ---------------------------------------------------------------------------
// nested1000: Task-chain frame churn.
// ---------------------------------------------------------------------------

template <typename K>
typename K::template Task<int> Leaf(typename K::Simulator& sim) {
  co_await sim.Delay(1.0);
  co_return 1;
}

template <typename K>
typename K::template Task<int> Chain(typename K::Simulator& sim, int depth) {
  if (depth == 0) co_return co_await Leaf<K>(sim);
  co_return 1 + co_await Chain<K>(sim, depth - 1);
}

template <typename K>
typename K::Process NestedChurn(typename K::Simulator& sim, int rounds,
                                long* sum) {
  for (int i = 0; i < rounds; ++i) {
    *sum += co_await Chain<K>(sim, 8);
  }
}

template <typename K>
ScenarioResult ScenarioNested(const Sizes& s) {
  auto sim = K::NewSimulator();
  long sum = 0;
  for (int p = 0; p < s.procs; ++p) {
    sim->Spawn(NestedChurn<K>(*sim, s.nested_rounds, &sum));
  }
  ScenarioResult r = FinishRun<K>(*sim);
  DIMSUM_CHECK_EQ(sum, static_cast<long>(s.procs) * s.nested_rounds * 9);
  return r;
}

// ---------------------------------------------------------------------------
// timers1000: large pending population. Each process spawns detached
// one-shot timers with Exp(500) lifetimes every Exp(5) ms, so ~100x more
// timers are pending than firing -- the regime calendar queues are for.
// ---------------------------------------------------------------------------

template <typename K>
typename K::Process OneShot(typename K::Simulator& sim, double delay_ms) {
  co_await sim.Delay(delay_ms);
}

template <typename K>
typename K::Process TimerChurn(typename K::Simulator& sim, dimsum::Rng rng,
                               int rounds) {
  for (int i = 0; i < rounds; ++i) {
    sim.Spawn(OneShot<K>(sim, rng.Exponential(500.0)));
    co_await sim.Delay(rng.Exponential(5.0));
  }
}

template <typename K>
ScenarioResult ScenarioTimers(const Sizes& s) {
  auto sim = K::NewSimulator();
  dimsum::Rng root(17);
  for (int p = 0; p < s.procs; ++p) {
    sim->Spawn(TimerChurn<K>(*sim, root.Fork(), s.timer_rounds));
  }
  return FinishRun<K>(*sim);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

template <typename K>
ScenarioResult RunScenario(const std::string& name, const Sizes& s) {
  if (name == "hold") return ScenarioHold<K>(s);
  if (name == "delay1000") return ScenarioDelay<K>(s);
  if (name == "resource1000") return ScenarioResource<K>(s);
  if (name == "channel1000") return ScenarioChannel<K>(s);
  if (name == "nested1000") return ScenarioNested<K>(s);
  if (name == "timers1000") return ScenarioTimers<K>(s);
  DIMSUM_CHECK(false) << "unknown scenario " << name;
  return {};
}

struct Record {
  std::string scenario;
  std::string kernel;
  ScenarioResult result;
  double events_per_sec = 0.0;
  double speedup_vs_legacy = 1.0;
};

void WriteJson(const char* path, const dimsum::bench::BenchMeta& meta,
               const std::vector<Record>& records) {
  FILE* f = std::fopen(path, "w");
  DIMSUM_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\"meta\": %s,\n \"records\": [\n",
               dimsum::bench::BenchMetaJson(meta).c_str());
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(
        f,
        "  {\"scenario\": \"%s\", \"kernel\": \"%s\", \"events\": %llu, "
        "\"wall_ms\": %.3f, \"events_per_sec\": %.0f, "
        "\"speedup_vs_legacy\": %.3f, \"peak_queue_depth\": %llu, "
        "\"calendar_resizes\": %llu, \"frame_pool_hit_rate\": %.4f}%s\n",
        r.scenario.c_str(), r.kernel.c_str(),
        static_cast<unsigned long long>(r.result.events), r.result.wall_ms,
        r.events_per_sec, r.speedup_vs_legacy,
        static_cast<unsigned long long>(r.result.peak_queue_depth),
        static_cast<unsigned long long>(r.result.calendar_resizes),
        r.result.frame_pool_hit_rate, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int reps = 2;
  const char* out = "BENCH_kernel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
      DIMSUM_CHECK_GE(reps, 1);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--reps=N] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }
  const Sizes& sizes = smoke ? kSmoke : kFull;

  const std::vector<std::string> scenarios = {
      "hold",      "delay1000", "resource1000",
      "channel1000", "nested1000", "timers1000"};

  std::printf("# micro_simkernel%s: best of %d rep(s) per kernel\n",
              smoke ? " (smoke)" : "", reps);
  std::printf("%-13s %-9s %12s %10s %14s %9s\n", "scenario", "kernel",
              "events", "wall_ms", "events/sec", "speedup");

  std::vector<Record> records;
  double speedup_product = 1.0;
  int speedup_count = 0;
  for (const std::string& name : scenarios) {
    ScenarioResult best[3];
    // Interleave kernels within each rep so machine-load noise hits all
    // three alike; keep the fastest rep per kernel.
    for (int rep = 0; rep < reps; ++rep) {
      const ScenarioResult l = RunScenario<LegacyKernel>(name, sizes);
      const ScenarioResult h = RunScenario<HeapKernel>(name, sizes);
      const ScenarioResult c = RunScenario<CalendarKernel>(name, sizes);
      DIMSUM_CHECK_EQ(l.events, h.events);
      DIMSUM_CHECK_EQ(h.events, c.events);
      const ScenarioResult reps3[3] = {l, h, c};
      for (int k = 0; k < 3; ++k) {
        if (rep == 0 || reps3[k].wall_ms < best[k].wall_ms) {
          best[k] = reps3[k];
        }
      }
    }
    const char* kernel_names[3] = {"legacy", "heap", "calendar"};
    const double legacy_eps =
        static_cast<double>(best[0].events) / (best[0].wall_ms / 1000.0);
    for (int k = 0; k < 3; ++k) {
      Record record;
      record.scenario = name;
      record.kernel = kernel_names[k];
      record.result = best[k];
      record.events_per_sec =
          static_cast<double>(best[k].events) / (best[k].wall_ms / 1000.0);
      record.speedup_vs_legacy = record.events_per_sec / legacy_eps;
      std::printf("%-13s %-9s %12llu %10.2f %14.0f %8.2fx\n", name.c_str(),
                  record.kernel.c_str(),
                  static_cast<unsigned long long>(record.result.events),
                  record.result.wall_ms, record.events_per_sec,
                  record.speedup_vs_legacy);
      if (k == 2) {
        speedup_product *= record.speedup_vs_legacy;
        ++speedup_count;
      }
      records.push_back(std::move(record));
    }
  }
  const double geomean =
      speedup_count > 0
          ? std::exp(std::log(speedup_product) / speedup_count)
          : 1.0;
  std::printf("# calendar vs legacy geomean speedup: %.2fx\n", geomean);
  WriteJson(out,
            dimsum::bench::MakeBenchMeta(
                "dimsum.bench.kernel.v1",
                std::string("3-kernel scenario matrix, ") +
                    (smoke ? "smoke" : "full") + ", reps=" +
                    std::to_string(reps)),
            records);
  std::printf("# wrote %s\n", out);
  return 0;
}

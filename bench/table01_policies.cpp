// Table 1: Site Selection for Operators -- the annotations each policy
// allows, printed from the same PolicySpace definitions that drive the
// optimizer's move restrictions (so this output is the implementation's
// ground truth, asserted additionally by tests/plan/plan_test.cc).

#include <iostream>
#include <sstream>

#include "core/report.h"
#include "plan/policy.h"

using namespace dimsum;

namespace {

std::string Allowed(ShippingPolicy policy, OpType type) {
  const PolicySpace space = PolicySpace::For(policy);
  std::ostringstream out;
  bool first = true;
  for (SiteAnnotation annotation : space.AllowedFor(type)) {
    if (!first) out << ", ";
    out << ToString(annotation);
    first = false;
  }
  return out.str();
}

}  // namespace

int main() {
  std::cout << "==== Table 1: Site Selection for Operators ====\n\n";
  ReportTable table(
      {"operator", "data shipping", "query shipping", "hybrid shipping"});
  for (OpType type :
       {OpType::kDisplay, OpType::kJoin, OpType::kSelect, OpType::kScan}) {
    table.AddRow({std::string(ToString(type)),
                  Allowed(ShippingPolicy::kDataShipping, type),
                  Allowed(ShippingPolicy::kQueryShipping, type),
                  Allowed(ShippingPolicy::kHybridShipping, type)});
  }
  table.Print(std::cout);
  return 0;
}

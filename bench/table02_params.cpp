// Table 2: Simulator Parameters and Default Settings -- printed from the
// live defaults, plus the derived disk-model calibration values.

#include <iostream>

#include "core/report.h"
#include "cost/params.h"
#include "sim/disk.h"

using namespace dimsum;

int main() {
  std::cout << "==== Table 2: Simulator Parameters and Default Settings "
               "====\n\n";
  const CostParams p;
  ReportTable table({"parameter", "value", "description"});
  table.AddRow({"Mips", Fmt(p.mips, 0), "CPU speed (10^6 instr/sec)"});
  table.AddRow({"NumDisks", std::to_string(p.num_disks),
                "number of disks on a site"});
  table.AddRow({"DiskInst", Fmt(p.disk_inst, 0),
                "instr. to read a page from disk"});
  table.AddRow({"PageSize", std::to_string(p.page_bytes),
                "size of one data page (bytes)"});
  table.AddRow({"NetBw", Fmt(p.net_bandwidth_mbps, 0),
                "network bandwidth (Mbit/sec)"});
  table.AddRow({"MsgInst", Fmt(p.msg_inst, 0),
                "instr. to send/receive a message"});
  table.AddRow({"PerSizeMI", Fmt(p.per_size_mi, 0),
                "instr. to send/receive 4096 bytes"});
  table.AddRow({"Display", Fmt(p.display_inst, 0),
                "instr. to display a tuple"});
  table.AddRow({"Compare", Fmt(p.compare_inst, 0),
                "instr. to apply a predicate"});
  table.AddRow({"HashInst", Fmt(p.hash_inst, 0), "instr. to hash a tuple"});
  table.AddRow({"MoveInst", Fmt(p.move_inst, 0), "instr. to copy 4 bytes"});
  table.AddRow({"BufAlloc", ToString(p.buf_alloc),
                "buffer allocated to a join (min or max)"});
  table.Print(std::cout);

  const sim::DiskParams d;
  std::cout << "\ndisk model (calibrated to ~3.5 ms/page sequential, "
               "~11.8 ms/page random):\n";
  ReportTable disk({"parameter", "value"});
  disk.AddRow({"rotation", Fmt(d.rotation_ms) + " ms"});
  disk.AddRow({"pages/track", std::to_string(d.pages_per_track)});
  disk.AddRow({"pages/cylinder", std::to_string(d.pages_per_cylinder)});
  disk.AddRow({"cylinders", std::to_string(d.num_cylinders)});
  disk.AddRow({"settle", Fmt(d.settle_ms) + " ms"});
  disk.AddRow({"seek factor", Fmt(d.seek_factor_ms, 4) + " ms/sqrt(cyl)"});
  disk.AddRow({"controller overhead", Fmt(d.controller_overhead_ms) + " ms"});
  disk.AddRow({"read-ahead", std::to_string(d.readahead_pages) + " pages"});
  disk.AddRow({"controller cache", std::to_string(d.cache_pages) + " pages"});
  disk.Print(std::cout);
  return 0;
}

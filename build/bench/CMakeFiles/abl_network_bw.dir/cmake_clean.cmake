file(REMOVE_RECURSE
  "CMakeFiles/abl_network_bw.dir/abl_network_bw.cpp.o"
  "CMakeFiles/abl_network_bw.dir/abl_network_bw.cpp.o.d"
  "abl_network_bw"
  "abl_network_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_network_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_network_bw.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_no_readahead.dir/abl_no_readahead.cpp.o"
  "CMakeFiles/abl_no_readahead.dir/abl_no_readahead.cpp.o.d"
  "abl_no_readahead"
  "abl_no_readahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_no_readahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

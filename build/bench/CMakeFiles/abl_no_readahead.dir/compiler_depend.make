# Empty compiler generated dependencies file for abl_no_readahead.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_num_disks.dir/abl_num_disks.cpp.o"
  "CMakeFiles/abl_num_disks.dir/abl_num_disks.cpp.o.d"
  "abl_num_disks"
  "abl_num_disks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_num_disks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_num_disks.
# This may be replaced when dependencies are built.

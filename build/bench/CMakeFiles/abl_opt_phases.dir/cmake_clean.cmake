file(REMOVE_RECURSE
  "CMakeFiles/abl_opt_phases.dir/abl_opt_phases.cpp.o"
  "CMakeFiles/abl_opt_phases.dir/abl_opt_phases.cpp.o.d"
  "abl_opt_phases"
  "abl_opt_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_opt_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

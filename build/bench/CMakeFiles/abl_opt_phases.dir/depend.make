# Empty dependencies file for abl_opt_phases.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_selectivity.dir/abl_selectivity.cpp.o"
  "CMakeFiles/abl_selectivity.dir/abl_selectivity.cpp.o.d"
  "abl_selectivity"
  "abl_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_selectivity.
# This may be replaced when dependencies are built.

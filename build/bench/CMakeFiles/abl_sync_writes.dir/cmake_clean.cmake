file(REMOVE_RECURSE
  "CMakeFiles/abl_sync_writes.dir/abl_sync_writes.cpp.o"
  "CMakeFiles/abl_sync_writes.dir/abl_sync_writes.cpp.o.d"
  "abl_sync_writes"
  "abl_sync_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sync_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

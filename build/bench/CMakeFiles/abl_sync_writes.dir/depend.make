# Empty dependencies file for abl_sync_writes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/disk_calibration.dir/disk_calibration.cpp.o"
  "CMakeFiles/disk_calibration.dir/disk_calibration.cpp.o.d"
  "disk_calibration"
  "disk_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

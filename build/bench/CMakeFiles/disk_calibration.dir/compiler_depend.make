# Empty compiler generated dependencies file for disk_calibration.
# This may be replaced when dependencies are built.

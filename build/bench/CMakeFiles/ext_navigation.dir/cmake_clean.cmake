file(REMOVE_RECURSE
  "CMakeFiles/ext_navigation.dir/ext_navigation.cpp.o"
  "CMakeFiles/ext_navigation.dir/ext_navigation.cpp.o.d"
  "ext_navigation"
  "ext_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ext_navigation.
# This may be replaced when dependencies are built.

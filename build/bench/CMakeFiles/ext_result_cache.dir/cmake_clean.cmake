file(REMOVE_RECURSE
  "CMakeFiles/ext_result_cache.dir/ext_result_cache.cpp.o"
  "CMakeFiles/ext_result_cache.dir/ext_result_cache.cpp.o.d"
  "ext_result_cache"
  "ext_result_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_result_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

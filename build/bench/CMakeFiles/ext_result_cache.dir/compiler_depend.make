# Empty compiler generated dependencies file for ext_result_cache.
# This may be replaced when dependencies are built.

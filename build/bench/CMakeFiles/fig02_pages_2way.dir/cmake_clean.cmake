file(REMOVE_RECURSE
  "CMakeFiles/fig02_pages_2way.dir/fig02_pages_2way.cpp.o"
  "CMakeFiles/fig02_pages_2way.dir/fig02_pages_2way.cpp.o.d"
  "fig02_pages_2way"
  "fig02_pages_2way.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_pages_2way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

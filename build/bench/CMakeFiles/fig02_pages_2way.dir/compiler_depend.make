# Empty compiler generated dependencies file for fig02_pages_2way.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig03_resptime_2way_min.dir/fig03_resptime_2way_min.cpp.o"
  "CMakeFiles/fig03_resptime_2way_min.dir/fig03_resptime_2way_min.cpp.o.d"
  "fig03_resptime_2way_min"
  "fig03_resptime_2way_min.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_resptime_2way_min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig03_resptime_2way_min.
# This may be replaced when dependencies are built.

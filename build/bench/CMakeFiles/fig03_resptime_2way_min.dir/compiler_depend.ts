# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig03_resptime_2way_min.

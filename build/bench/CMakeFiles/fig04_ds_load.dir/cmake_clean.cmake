file(REMOVE_RECURSE
  "CMakeFiles/fig04_ds_load.dir/fig04_ds_load.cpp.o"
  "CMakeFiles/fig04_ds_load.dir/fig04_ds_load.cpp.o.d"
  "fig04_ds_load"
  "fig04_ds_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_ds_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

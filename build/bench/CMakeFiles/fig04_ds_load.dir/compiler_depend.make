# Empty compiler generated dependencies file for fig04_ds_load.
# This may be replaced when dependencies are built.

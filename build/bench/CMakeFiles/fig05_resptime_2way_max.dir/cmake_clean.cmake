file(REMOVE_RECURSE
  "CMakeFiles/fig05_resptime_2way_max.dir/fig05_resptime_2way_max.cpp.o"
  "CMakeFiles/fig05_resptime_2way_max.dir/fig05_resptime_2way_max.cpp.o.d"
  "fig05_resptime_2way_max"
  "fig05_resptime_2way_max.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_resptime_2way_max.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

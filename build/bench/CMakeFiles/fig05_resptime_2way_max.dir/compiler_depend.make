# Empty compiler generated dependencies file for fig05_resptime_2way_max.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig06_pages_10way.dir/fig06_pages_10way.cpp.o"
  "CMakeFiles/fig06_pages_10way.dir/fig06_pages_10way.cpp.o.d"
  "fig06_pages_10way"
  "fig06_pages_10way.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_pages_10way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

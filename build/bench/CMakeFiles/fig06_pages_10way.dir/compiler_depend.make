# Empty compiler generated dependencies file for fig06_pages_10way.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig07_pages_10way_cached.dir/fig07_pages_10way_cached.cpp.o"
  "CMakeFiles/fig07_pages_10way_cached.dir/fig07_pages_10way_cached.cpp.o.d"
  "fig07_pages_10way_cached"
  "fig07_pages_10way_cached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_pages_10way_cached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

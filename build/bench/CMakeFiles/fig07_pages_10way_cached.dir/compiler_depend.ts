# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig07_pages_10way_cached.

# Empty dependencies file for fig07_pages_10way_cached.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig08_resptime_10way.dir/fig08_resptime_10way.cpp.o"
  "CMakeFiles/fig08_resptime_10way.dir/fig08_resptime_10way.cpp.o.d"
  "fig08_resptime_10way"
  "fig08_resptime_10way.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_resptime_10way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

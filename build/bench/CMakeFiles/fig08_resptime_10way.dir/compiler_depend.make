# Empty compiler generated dependencies file for fig08_resptime_10way.
# This may be replaced when dependencies are built.

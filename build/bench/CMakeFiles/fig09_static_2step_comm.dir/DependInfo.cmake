
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_static_2step_comm.cpp" "bench/CMakeFiles/fig09_static_2step_comm.dir/fig09_static_2step_comm.cpp.o" "gcc" "bench/CMakeFiles/fig09_static_2step_comm.dir/fig09_static_2step_comm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/dimsum_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dimsum_core.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/dimsum_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dimsum_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dimsum_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/dimsum_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/dimsum_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dimsum_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fig09_static_2step_comm.dir/fig09_static_2step_comm.cpp.o"
  "CMakeFiles/fig09_static_2step_comm.dir/fig09_static_2step_comm.cpp.o.d"
  "fig09_static_2step_comm"
  "fig09_static_2step_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_static_2step_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

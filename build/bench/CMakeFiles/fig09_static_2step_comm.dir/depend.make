# Empty dependencies file for fig09_static_2step_comm.
# This may be replaced when dependencies are built.

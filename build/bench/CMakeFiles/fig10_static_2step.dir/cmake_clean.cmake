file(REMOVE_RECURSE
  "CMakeFiles/fig10_static_2step.dir/fig10_static_2step.cpp.o"
  "CMakeFiles/fig10_static_2step.dir/fig10_static_2step.cpp.o.d"
  "fig10_static_2step"
  "fig10_static_2step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_static_2step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

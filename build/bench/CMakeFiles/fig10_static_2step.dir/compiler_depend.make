# Empty compiler generated dependencies file for fig10_static_2step.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig11_static_2step_hisel.dir/fig11_static_2step_hisel.cpp.o"
  "CMakeFiles/fig11_static_2step_hisel.dir/fig11_static_2step_hisel.cpp.o.d"
  "fig11_static_2step_hisel"
  "fig11_static_2step_hisel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_static_2step_hisel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

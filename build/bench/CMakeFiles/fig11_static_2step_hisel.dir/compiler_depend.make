# Empty compiler generated dependencies file for fig11_static_2step_hisel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table01_policies.dir/table01_policies.cpp.o"
  "CMakeFiles/table01_policies.dir/table01_policies.cpp.o.d"
  "table01_policies"
  "table01_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

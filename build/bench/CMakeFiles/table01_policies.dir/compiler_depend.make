# Empty compiler generated dependencies file for table01_policies.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table02_params.dir/table02_params.cpp.o"
  "CMakeFiles/table02_params.dir/table02_params.cpp.o.d"
  "table02_params"
  "table02_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table02_params.
# This may be replaced when dependencies are built.

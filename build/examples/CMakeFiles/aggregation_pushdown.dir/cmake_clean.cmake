file(REMOVE_RECURSE
  "CMakeFiles/aggregation_pushdown.dir/aggregation_pushdown.cpp.o"
  "CMakeFiles/aggregation_pushdown.dir/aggregation_pushdown.cpp.o.d"
  "aggregation_pushdown"
  "aggregation_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregation_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for aggregation_pushdown.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/caching_crossover.dir/caching_crossover.cpp.o"
  "CMakeFiles/caching_crossover.dir/caching_crossover.cpp.o.d"
  "caching_crossover"
  "caching_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caching_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for caching_crossover.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/loaded_server.dir/loaded_server.cpp.o"
  "CMakeFiles/loaded_server.dir/loaded_server.cpp.o.d"
  "loaded_server"
  "loaded_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loaded_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for loaded_server.
# This may be replaced when dependencies are built.

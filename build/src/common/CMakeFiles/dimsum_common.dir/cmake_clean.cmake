file(REMOVE_RECURSE
  "CMakeFiles/dimsum_common.dir/check.cc.o"
  "CMakeFiles/dimsum_common.dir/check.cc.o.d"
  "CMakeFiles/dimsum_common.dir/rng.cc.o"
  "CMakeFiles/dimsum_common.dir/rng.cc.o.d"
  "CMakeFiles/dimsum_common.dir/stats.cc.o"
  "CMakeFiles/dimsum_common.dir/stats.cc.o.d"
  "libdimsum_common.a"
  "libdimsum_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimsum_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

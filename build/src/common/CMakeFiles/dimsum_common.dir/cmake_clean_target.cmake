file(REMOVE_RECURSE
  "libdimsum_common.a"
)

# Empty dependencies file for dimsum_common.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/dimsum_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/dimsum_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/dimsum_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/dimsum_core.dir/report.cc.o.d"
  "/root/repo/src/core/result_cache.cc" "src/core/CMakeFiles/dimsum_core.dir/result_cache.cc.o" "gcc" "src/core/CMakeFiles/dimsum_core.dir/result_cache.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/dimsum_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/dimsum_core.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dimsum_common.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/dimsum_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/dimsum_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/dimsum_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dimsum_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dimsum_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

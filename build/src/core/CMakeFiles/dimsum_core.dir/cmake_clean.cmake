file(REMOVE_RECURSE
  "CMakeFiles/dimsum_core.dir/experiment.cc.o"
  "CMakeFiles/dimsum_core.dir/experiment.cc.o.d"
  "CMakeFiles/dimsum_core.dir/report.cc.o"
  "CMakeFiles/dimsum_core.dir/report.cc.o.d"
  "CMakeFiles/dimsum_core.dir/result_cache.cc.o"
  "CMakeFiles/dimsum_core.dir/result_cache.cc.o.d"
  "CMakeFiles/dimsum_core.dir/system.cc.o"
  "CMakeFiles/dimsum_core.dir/system.cc.o.d"
  "libdimsum_core.a"
  "libdimsum_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimsum_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdimsum_core.a"
)

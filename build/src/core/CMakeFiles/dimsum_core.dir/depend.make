# Empty dependencies file for dimsum_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/cardinality.cc" "src/cost/CMakeFiles/dimsum_cost.dir/cardinality.cc.o" "gcc" "src/cost/CMakeFiles/dimsum_cost.dir/cardinality.cc.o.d"
  "/root/repo/src/cost/comm_cost.cc" "src/cost/CMakeFiles/dimsum_cost.dir/comm_cost.cc.o" "gcc" "src/cost/CMakeFiles/dimsum_cost.dir/comm_cost.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/cost/CMakeFiles/dimsum_cost.dir/cost_model.cc.o" "gcc" "src/cost/CMakeFiles/dimsum_cost.dir/cost_model.cc.o.d"
  "/root/repo/src/cost/hash_join_model.cc" "src/cost/CMakeFiles/dimsum_cost.dir/hash_join_model.cc.o" "gcc" "src/cost/CMakeFiles/dimsum_cost.dir/hash_join_model.cc.o.d"
  "/root/repo/src/cost/response_time.cc" "src/cost/CMakeFiles/dimsum_cost.dir/response_time.cc.o" "gcc" "src/cost/CMakeFiles/dimsum_cost.dir/response_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dimsum_common.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/dimsum_plan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/dimsum_cost.dir/cardinality.cc.o"
  "CMakeFiles/dimsum_cost.dir/cardinality.cc.o.d"
  "CMakeFiles/dimsum_cost.dir/comm_cost.cc.o"
  "CMakeFiles/dimsum_cost.dir/comm_cost.cc.o.d"
  "CMakeFiles/dimsum_cost.dir/cost_model.cc.o"
  "CMakeFiles/dimsum_cost.dir/cost_model.cc.o.d"
  "CMakeFiles/dimsum_cost.dir/hash_join_model.cc.o"
  "CMakeFiles/dimsum_cost.dir/hash_join_model.cc.o.d"
  "CMakeFiles/dimsum_cost.dir/response_time.cc.o"
  "CMakeFiles/dimsum_cost.dir/response_time.cc.o.d"
  "libdimsum_cost.a"
  "libdimsum_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimsum_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

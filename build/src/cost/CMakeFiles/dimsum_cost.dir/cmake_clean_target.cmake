file(REMOVE_RECURSE
  "libdimsum_cost.a"
)

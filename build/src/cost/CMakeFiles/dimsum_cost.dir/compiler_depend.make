# Empty compiler generated dependencies file for dimsum_cost.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/dimsum_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/dimsum_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/navigation.cc" "src/exec/CMakeFiles/dimsum_exec.dir/navigation.cc.o" "gcc" "src/exec/CMakeFiles/dimsum_exec.dir/navigation.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/exec/CMakeFiles/dimsum_exec.dir/operators.cc.o" "gcc" "src/exec/CMakeFiles/dimsum_exec.dir/operators.cc.o.d"
  "/root/repo/src/exec/runtime.cc" "src/exec/CMakeFiles/dimsum_exec.dir/runtime.cc.o" "gcc" "src/exec/CMakeFiles/dimsum_exec.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dimsum_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dimsum_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/dimsum_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/dimsum_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

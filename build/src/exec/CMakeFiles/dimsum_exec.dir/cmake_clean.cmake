file(REMOVE_RECURSE
  "CMakeFiles/dimsum_exec.dir/executor.cc.o"
  "CMakeFiles/dimsum_exec.dir/executor.cc.o.d"
  "CMakeFiles/dimsum_exec.dir/navigation.cc.o"
  "CMakeFiles/dimsum_exec.dir/navigation.cc.o.d"
  "CMakeFiles/dimsum_exec.dir/operators.cc.o"
  "CMakeFiles/dimsum_exec.dir/operators.cc.o.d"
  "CMakeFiles/dimsum_exec.dir/runtime.cc.o"
  "CMakeFiles/dimsum_exec.dir/runtime.cc.o.d"
  "libdimsum_exec.a"
  "libdimsum_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimsum_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdimsum_exec.a"
)

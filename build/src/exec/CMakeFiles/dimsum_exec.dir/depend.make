# Empty dependencies file for dimsum_exec.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/optimizer.cc" "src/opt/CMakeFiles/dimsum_opt.dir/optimizer.cc.o" "gcc" "src/opt/CMakeFiles/dimsum_opt.dir/optimizer.cc.o.d"
  "/root/repo/src/opt/two_step.cc" "src/opt/CMakeFiles/dimsum_opt.dir/two_step.cc.o" "gcc" "src/opt/CMakeFiles/dimsum_opt.dir/two_step.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dimsum_common.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/dimsum_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/dimsum_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/dimsum_opt.dir/optimizer.cc.o"
  "CMakeFiles/dimsum_opt.dir/optimizer.cc.o.d"
  "CMakeFiles/dimsum_opt.dir/two_step.cc.o"
  "CMakeFiles/dimsum_opt.dir/two_step.cc.o.d"
  "libdimsum_opt.a"
  "libdimsum_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimsum_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdimsum_opt.a"
)

# Empty dependencies file for dimsum_opt.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/binding.cc" "src/plan/CMakeFiles/dimsum_plan.dir/binding.cc.o" "gcc" "src/plan/CMakeFiles/dimsum_plan.dir/binding.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/plan/CMakeFiles/dimsum_plan.dir/plan.cc.o" "gcc" "src/plan/CMakeFiles/dimsum_plan.dir/plan.cc.o.d"
  "/root/repo/src/plan/printer.cc" "src/plan/CMakeFiles/dimsum_plan.dir/printer.cc.o" "gcc" "src/plan/CMakeFiles/dimsum_plan.dir/printer.cc.o.d"
  "/root/repo/src/plan/transforms.cc" "src/plan/CMakeFiles/dimsum_plan.dir/transforms.cc.o" "gcc" "src/plan/CMakeFiles/dimsum_plan.dir/transforms.cc.o.d"
  "/root/repo/src/plan/validate.cc" "src/plan/CMakeFiles/dimsum_plan.dir/validate.cc.o" "gcc" "src/plan/CMakeFiles/dimsum_plan.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dimsum_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/dimsum_plan.dir/binding.cc.o"
  "CMakeFiles/dimsum_plan.dir/binding.cc.o.d"
  "CMakeFiles/dimsum_plan.dir/plan.cc.o"
  "CMakeFiles/dimsum_plan.dir/plan.cc.o.d"
  "CMakeFiles/dimsum_plan.dir/printer.cc.o"
  "CMakeFiles/dimsum_plan.dir/printer.cc.o.d"
  "CMakeFiles/dimsum_plan.dir/transforms.cc.o"
  "CMakeFiles/dimsum_plan.dir/transforms.cc.o.d"
  "CMakeFiles/dimsum_plan.dir/validate.cc.o"
  "CMakeFiles/dimsum_plan.dir/validate.cc.o.d"
  "libdimsum_plan.a"
  "libdimsum_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimsum_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdimsum_plan.a"
)

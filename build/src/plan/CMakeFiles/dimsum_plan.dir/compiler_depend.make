# Empty compiler generated dependencies file for dimsum_plan.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dimsum_sim.dir/disk.cc.o"
  "CMakeFiles/dimsum_sim.dir/disk.cc.o.d"
  "CMakeFiles/dimsum_sim.dir/resource.cc.o"
  "CMakeFiles/dimsum_sim.dir/resource.cc.o.d"
  "CMakeFiles/dimsum_sim.dir/simulator.cc.o"
  "CMakeFiles/dimsum_sim.dir/simulator.cc.o.d"
  "libdimsum_sim.a"
  "libdimsum_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimsum_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

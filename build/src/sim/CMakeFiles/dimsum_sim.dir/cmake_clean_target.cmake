file(REMOVE_RECURSE
  "libdimsum_sim.a"
)

# Empty dependencies file for dimsum_sim.
# This may be replaced when dependencies are built.

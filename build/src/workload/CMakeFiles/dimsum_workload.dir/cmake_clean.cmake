file(REMOVE_RECURSE
  "CMakeFiles/dimsum_workload.dir/benchmark.cc.o"
  "CMakeFiles/dimsum_workload.dir/benchmark.cc.o.d"
  "libdimsum_workload.a"
  "libdimsum_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimsum_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

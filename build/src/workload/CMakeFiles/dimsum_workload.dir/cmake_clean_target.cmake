file(REMOVE_RECURSE
  "libdimsum_workload.a"
)

# Empty compiler generated dependencies file for dimsum_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cost_test.dir/cost/cardinality_test.cc.o"
  "CMakeFiles/cost_test.dir/cost/cardinality_test.cc.o.d"
  "CMakeFiles/cost_test.dir/cost/comm_cost_test.cc.o"
  "CMakeFiles/cost_test.dir/cost/comm_cost_test.cc.o.d"
  "CMakeFiles/cost_test.dir/cost/hash_join_model_test.cc.o"
  "CMakeFiles/cost_test.dir/cost/hash_join_model_test.cc.o.d"
  "CMakeFiles/cost_test.dir/cost/response_time_model_test.cc.o"
  "CMakeFiles/cost_test.dir/cost/response_time_model_test.cc.o.d"
  "CMakeFiles/cost_test.dir/cost/response_time_test.cc.o"
  "CMakeFiles/cost_test.dir/cost/response_time_test.cc.o.d"
  "cost_test"
  "cost_test.pdb"
  "cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exec/buffer_pool_test.cc" "tests/CMakeFiles/exec_test.dir/exec/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/buffer_pool_test.cc.o.d"
  "/root/repo/tests/exec/concurrent_test.cc" "tests/CMakeFiles/exec_test.dir/exec/concurrent_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/concurrent_test.cc.o.d"
  "/root/repo/tests/exec/executor_test.cc" "tests/CMakeFiles/exec_test.dir/exec/executor_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/executor_test.cc.o.d"
  "/root/repo/tests/exec/extended_ops_exec_test.cc" "tests/CMakeFiles/exec_test.dir/exec/extended_ops_exec_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/extended_ops_exec_test.cc.o.d"
  "/root/repo/tests/exec/heterogeneous_test.cc" "tests/CMakeFiles/exec_test.dir/exec/heterogeneous_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/heterogeneous_test.cc.o.d"
  "/root/repo/tests/exec/layout_test.cc" "tests/CMakeFiles/exec_test.dir/exec/layout_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/layout_test.cc.o.d"
  "/root/repo/tests/exec/multidisk_test.cc" "tests/CMakeFiles/exec_test.dir/exec/multidisk_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/multidisk_test.cc.o.d"
  "/root/repo/tests/exec/navigation_test.cc" "tests/CMakeFiles/exec_test.dir/exec/navigation_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/navigation_test.cc.o.d"
  "/root/repo/tests/exec/operator_timing_test.cc" "tests/CMakeFiles/exec_test.dir/exec/operator_timing_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/operator_timing_test.cc.o.d"
  "/root/repo/tests/exec/page_test.cc" "tests/CMakeFiles/exec_test.dir/exec/page_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/page_test.cc.o.d"
  "/root/repo/tests/exec/sort_test.cc" "tests/CMakeFiles/exec_test.dir/exec/sort_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/sort_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/dimsum_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dimsum_core.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/dimsum_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dimsum_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dimsum_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/dimsum_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/dimsum_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dimsum_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/exec_test.dir/exec/buffer_pool_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/buffer_pool_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/concurrent_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/concurrent_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/executor_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/executor_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/extended_ops_exec_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/extended_ops_exec_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/heterogeneous_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/heterogeneous_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/layout_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/layout_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/multidisk_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/multidisk_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/navigation_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/navigation_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/operator_timing_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/operator_timing_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/page_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/page_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/sort_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/sort_test.cc.o.d"
  "exec_test"
  "exec_test.pdb"
  "exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

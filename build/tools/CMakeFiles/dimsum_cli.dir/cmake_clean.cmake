file(REMOVE_RECURSE
  "CMakeFiles/dimsum_cli.dir/dimsum_cli.cc.o"
  "CMakeFiles/dimsum_cli.dir/dimsum_cli.cc.o.d"
  "dimsum_cli"
  "dimsum_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimsum_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

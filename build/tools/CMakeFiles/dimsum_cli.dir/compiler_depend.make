# Empty compiler generated dependencies file for dimsum_cli.
# This may be replaced when dependencies are built.

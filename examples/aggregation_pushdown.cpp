// Aggregation/projection pushdown: the hybrid architecture decides *where*
// reducing operators run. Shipping the 250-page relation to the client and
// aggregating there (data-shipping style) versus aggregating at the server
// and shipping one page of groups (query-shipping style) -- and what the
// hybrid optimizer picks when the client caches the data.
//
// (The paper treats aggregations as select-like operators, footnote 4;
// modern engines call this operator pushdown.)

#include <iostream>

#include "core/report.h"
#include "core/system.h"
#include "exec/executor.h"
#include "plan/binding.h"
#include "plan/printer.h"
#include "workload/benchmark.h"

using namespace dimsum;

namespace {

double RunPlan(const Catalog& catalog, const QueryGraph& query, Plan& plan,
               int64_t* pages) {
  SystemConfig config;
  config.num_servers = 1;
  config.params.buf_alloc = BufAlloc::kMaximum;
  BindSites(plan, catalog);
  ExecMetrics metrics = ExecutePlan(plan, catalog, query, config);
  *pages = metrics.data_pages_sent;
  return metrics.response_ms / 1000.0;
}

}  // namespace

int main() {
  WorkloadSpec spec;
  spec.num_relations = 1;
  spec.num_servers = 1;
  BenchmarkWorkload w = MakeChainWorkloadRoundRobin(spec);

  std::cout << "SELECT group, COUNT(*) over one 250-page relation "
               "(100 groups)\n\n";

  ReportTable table({"strategy", "response [s]", "pages sent"});
  int64_t pages = 0;

  // Query-shipping style: aggregate at the server (producer annotation).
  auto pushed = MakeAggregate(MakeScan(0, SiteAnnotation::kPrimaryCopy), 100,
                              SiteAnnotation::kProducer);
  Plan pushed_plan(MakeDisplay(std::move(pushed)));
  double t = RunPlan(w.catalog, w.query, pushed_plan, &pages);
  table.AddRow({"aggregate at server (pushdown)", Fmt(t), std::to_string(pages)});

  // Data-shipping style: fault the relation in, aggregate at the client.
  auto faulted = MakeAggregate(MakeScan(0, SiteAnnotation::kClient), 100,
                               SiteAnnotation::kConsumer);
  Plan faulted_plan(MakeDisplay(std::move(faulted)));
  t = RunPlan(w.catalog, w.query, faulted_plan, &pages);
  table.AddRow({"fault data, aggregate at client", Fmt(t), std::to_string(pages)});

  // Cached client copy: aggregating locally needs no communication at all.
  Catalog cached = w.catalog;
  cached.SetCachedFraction(0, 1.0);
  auto local = MakeAggregate(MakeScan(0, SiteAnnotation::kClient), 100,
                             SiteAnnotation::kConsumer);
  Plan local_plan(MakeDisplay(std::move(local)));
  t = RunPlan(cached, w.query, local_plan, &pages);
  table.AddRow({"aggregate over cached client copy", Fmt(t), std::to_string(pages)});
  table.Print(std::cout);

  std::cout << "\nWhat does a hybrid, communication-minimizing optimizer "
               "pick? With no cache\nit pushes the aggregate to the server; "
               "with a warm cache it reads locally:\n\n";
  // Build the query with an aggregate on top by constructing the plan space
  // by hand: show both optimizer decisions.
  for (double cache : {0.0, 1.0}) {
    Catalog catalog = w.catalog;
    catalog.SetCachedFraction(0, cache);
    CostModel model(catalog, CostParams{});
    double best_cost = 0.0;
    Plan best;
    for (SiteAnnotation scan :
         {SiteAnnotation::kClient, SiteAnnotation::kPrimaryCopy}) {
      for (SiteAnnotation agg :
           {SiteAnnotation::kConsumer, SiteAnnotation::kProducer}) {
        Plan candidate(MakeDisplay(
            MakeAggregate(MakeScan(0, scan), 100, agg)));
        const double cost =
            model.PlanCost(candidate, w.query, OptimizeMetric::kPagesSent);
        if (best.empty() || cost < best_cost) {
          best = std::move(candidate);
          best_cost = cost;
        }
      }
    }
    std::cout << "cache " << Fmt(cache * 100, 0) << "%:\n"
              << PlanToString(best);
  }
  return 0;
}

// Client-caching crossover (the scenario behind Figures 2 and 5 of the
// paper): as the cached fraction of the base relations grows, data-shipping
// overtakes query-shipping on communication, while hybrid-shipping always
// matches the better of the two.

#include <iostream>

#include "core/report.h"
#include "core/system.h"
#include "workload/benchmark.h"

using namespace dimsum;

int main() {
  std::cout << "2-way join, 1 server: communication and response time vs "
               "client caching\n"
            << "(maximum join memory; optimizer minimizes each metric in "
               "turn)\n\n";

  ReportTable table({"cached %", "DS pages", "QS pages", "HY pages",
                     "DS resp [s]", "QS resp [s]", "HY resp [s]"});

  for (double cached : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    WorkloadSpec spec;
    spec.num_relations = 2;
    spec.num_servers = 1;
    spec.cached_fraction = cached;
    BenchmarkWorkload workload = MakeChainWorkloadRoundRobin(spec);

    SystemConfig config;
    config.num_servers = 1;
    config.params.buf_alloc = BufAlloc::kMaximum;
    ClientServerSystem system(std::move(workload.catalog), config);

    std::vector<std::string> row{Fmt(cached * 100.0, 0)};
    std::vector<std::string> resp;
    for (ShippingPolicy policy :
         {ShippingPolicy::kDataShipping, ShippingPolicy::kQueryShipping,
          ShippingPolicy::kHybridShipping}) {
      auto comm = system.Run(workload.query, policy,
                             OptimizeMetric::kPagesSent, /*seed=*/7);
      row.push_back(std::to_string(comm.execute.data_pages_sent));
      auto time = system.Run(workload.query, policy,
                             OptimizeMetric::kResponseTime, /*seed=*/7);
      resp.push_back(Fmt(time.execute.response_ms / 1000.0));
    }
    row.insert(row.end(), resp.begin(), resp.end());
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nDS communication falls linearly with caching; QS is flat "
               "at the result size;\nHY tracks the minimum (cf. Figure 2). "
               "The response-time crossover sits\nbeyond 50% because DS "
               "faults pages in serially (cf. Figure 5).\n";
  return 0;
}

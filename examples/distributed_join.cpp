// Distributed 10-way join (the paper's Section 4.3 / Section 5 setting):
// relations spread over several servers, policies compared, and the effect
// of pre-compiled plans when data has migrated since compile time.

#include <iostream>

#include "core/report.h"
#include "core/system.h"
#include "opt/two_step.h"
#include "workload/benchmark.h"

using namespace dimsum;

int main() {
  WorkloadSpec spec;
  spec.num_relations = 10;
  spec.num_servers = 5;
  Rng rng(2026);
  BenchmarkWorkload workload = MakeChainWorkload(spec, rng);

  SystemConfig config;
  config.num_servers = spec.num_servers;
  config.params.buf_alloc = BufAlloc::kMinimum;
  ClientServerSystem system(std::move(workload.catalog), config);

  std::cout << "10-way chain join over 5 servers (random placement), "
               "minimum join memory\n\n";

  ReportTable policies({"policy", "measured response [s]", "pages sent"});
  for (ShippingPolicy policy :
       {ShippingPolicy::kDataShipping, ShippingPolicy::kQueryShipping,
        ShippingPolicy::kHybridShipping}) {
    auto result = system.Run(workload.query, policy,
                             OptimizeMetric::kResponseTime, /*seed=*/5);
    policies.AddRow({std::string(ToString(policy)),
                     Fmt(result.execute.response_ms / 1000.0),
                     std::to_string(result.execute.data_pages_sent)});
  }
  policies.Print(std::cout);

  // --- pre-compiled plans vs data migration ------------------------------
  std::cout << "\nPre-compiled plans, then every relation migrates to "
               "another server:\n\n";
  const CostModel true_model = system.MakeCostModel();
  OptimizerConfig opt_config;
  opt_config.metric = OptimizeMetric::kResponseTime;

  // Compile against a fully-distributed assumption (bushy tendency).
  Catalog assumed =
      AssumedCatalog(system.catalog(), workload.query,
                     PlacementAssumption::kFullyDistributed, spec.num_servers);
  CostModel assumed_model(assumed, config.params);
  Rng opt_rng(99);
  OptimizeResult compiled =
      CompilePlan(assumed_model, workload.query, opt_config, opt_rng);

  // Migrate: rotate every relation to the next server.
  for (RelationId id = 0; id < system.catalog().num_relations(); ++id) {
    const SiteId old_site = system.catalog().PrimarySite(id);
    const SiteId new_site = ServerSite(old_site % spec.num_servers);
    system.mutable_catalog().MoveRelation(id, new_site);
  }
  const CostModel migrated_model = system.MakeCostModel();

  OptimizeResult static_plan = EvaluateStatic(
      migrated_model, compiled.plan, workload.query, opt_config.metric);
  OptimizeResult two_step = TwoStepSiteSelection(
      migrated_model, compiled.plan, workload.query, opt_config, opt_rng);
  OptimizeResult ideal =
      TwoPhaseOptimizer(migrated_model, opt_config).Optimize(workload.query,
                                                             opt_rng);

  ReportTable precompiled({"strategy", "measured response [s]"});
  precompiled.AddRow(
      {"static (compile-time plan, re-bound)",
       Fmt(system.Execute(static_plan.plan, workload.query, 5).response_ms /
           1000.0)});
  precompiled.AddRow(
      {"2-step (run-time site selection)",
       Fmt(system.Execute(two_step.plan, workload.query, 5).response_ms /
           1000.0)});
  precompiled.AddRow(
      {"ideal (full re-optimization)",
       Fmt(system.Execute(ideal.plan, workload.query, 5).response_ms /
           1000.0)});
  precompiled.Print(std::cout);
  std::cout << "\n2-step recovers most of the migration penalty by redoing "
               "site selection\nat run time (cf. Section 5).\n";
  return 0;
}

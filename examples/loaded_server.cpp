// Loaded-server scenario (the paper's Figure 4 setting): other clients keep
// the server disk busy with random reads. Hybrid-shipping reacts by moving
// operators -- and, when the client cache holds data, scans -- to the
// client, while query-shipping has no escape hatch.

#include <iostream>

#include "core/report.h"
#include "core/system.h"
#include "workload/benchmark.h"

using namespace dimsum;

namespace {

/// Counts plan operators (excluding display) bound to the client.
int OperatorsAtClient(const Plan& plan) {
  int count = 0;
  plan.ForEach([&](const PlanNode& node) {
    if (node.type != OpType::kDisplay && node.bound_site == kClientSite) {
      ++count;
    }
  });
  return count;
}

}  // namespace

int main() {
  std::cout << "2-way join, 1 server, 50% client caching, minimum join "
               "memory:\nresponse time vs external server-disk load\n\n";

  ReportTable table({"load [req/s]", "DS resp [s]", "QS resp [s]",
                     "HY resp [s]", "HY ops at client"});

  for (double load : {0.0, 40.0, 60.0, 70.0}) {
    WorkloadSpec spec;
    spec.num_relations = 2;
    spec.num_servers = 1;
    spec.cached_fraction = 0.5;
    BenchmarkWorkload workload = MakeChainWorkloadRoundRobin(spec);

    SystemConfig config;
    config.num_servers = 1;
    config.params.buf_alloc = BufAlloc::kMinimum;
    if (load > 0.0) config.server_disk_load_per_sec[ServerSite(0)] = load;
    ClientServerSystem system(std::move(workload.catalog), config);

    std::vector<std::string> row{Fmt(load, 0)};
    int hybrid_client_ops = 0;
    for (ShippingPolicy policy :
         {ShippingPolicy::kDataShipping, ShippingPolicy::kQueryShipping,
          ShippingPolicy::kHybridShipping}) {
      auto result = system.Run(workload.query, policy,
                               OptimizeMetric::kResponseTime, /*seed=*/11);
      row.push_back(Fmt(result.execute.response_ms / 1000.0));
      if (policy == ShippingPolicy::kHybridShipping) {
        hybrid_client_ops = OperatorsAtClient(result.optimize.plan);
      }
    }
    row.push_back(std::to_string(hybrid_client_ops));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nAs the server disk saturates, QS degrades sharply while "
               "HY shifts work to\nthe client (cf. Figure 4 and the in-text "
               "QS numbers of Section 4.2.2).\n";
  return 0;
}

// Quickstart: optimize and execute one 2-way join under each of the three
// shipping policies (data, query, hybrid) and compare the results.
//
// This exercises the whole public API surface: workload construction,
// ClientServerSystem, the randomized 2PO optimizer, and the detailed
// execution simulator.

#include <cstdio>
#include <iostream>

#include "core/report.h"
#include "core/system.h"
#include "plan/printer.h"
#include "workload/benchmark.h"

using namespace dimsum;

int main() {
  // The paper's benchmark: two relations of 10,000 x 100-byte tuples
  // (250 pages each) on one server; 25% of each relation cached at the
  // client.
  WorkloadSpec spec;
  spec.num_relations = 2;
  spec.num_servers = 1;
  spec.cached_fraction = 0.25;
  BenchmarkWorkload workload = MakeChainWorkloadRoundRobin(spec);

  SystemConfig config;
  config.num_servers = spec.num_servers;
  config.params.buf_alloc = BufAlloc::kMinimum;

  ClientServerSystem system(std::move(workload.catalog), config);

  std::cout << "2-way functional join, 1 server, 25% client caching, "
            << "minimum join memory\n\n";

  ReportTable table({"policy", "est. response [s]", "measured response [s]",
                     "pages sent"});
  for (ShippingPolicy policy :
       {ShippingPolicy::kDataShipping, ShippingPolicy::kQueryShipping,
        ShippingPolicy::kHybridShipping}) {
    auto result = system.Run(workload.query, policy,
                             OptimizeMetric::kResponseTime, /*seed=*/42);
    table.AddRow({std::string(ToString(policy)),
                  Fmt(result.optimize.cost / 1000.0),
                  Fmt(result.execute.response_ms / 1000.0),
                  std::to_string(result.execute.data_pages_sent)});
    if (policy == ShippingPolicy::kHybridShipping) {
      std::cout << "hybrid-shipping plan chosen by the optimizer:\n"
                << PlanToString(result.optimize.plan) << "\n";
    }
  }
  table.Print(std::cout);
  std::cout << "\n(sites: @0 is the client, @1.. are servers)\n";
  return 0;
}

// Thin-client scenario: the paper's introduction argues that query-shipping
// "tolerates resource-poor (i.e., low cost) client machines" while
// data-shipping "exploits the resources of powerful client machines". This
// example runs the same 2-way join against client CPUs from 5 to 200 MIPS
// and shows the hybrid optimizer switching sides.

#include <iostream>

#include "core/report.h"
#include "core/system.h"
#include "workload/benchmark.h"

using namespace dimsum;

int main() {
  std::cout << "2-way join, 1 server (50 MIPS), 100% client caching, "
               "maximum join memory\n(no temp I/O, so CPU and communication matter):\nresponse time vs client CPU speed\n\n";

  ReportTable table({"client MIPS", "DS resp [s]", "QS resp [s]",
                     "HY resp [s]", "HY join site"});
  for (double client_mips : {5.0, 12.5, 50.0, 200.0}) {
    WorkloadSpec spec;
    spec.num_relations = 2;
    spec.num_servers = 1;
    spec.cached_fraction = 1.0;  // give DS its best case
    BenchmarkWorkload workload = MakeChainWorkloadRoundRobin(spec);

    SystemConfig config;
    config.num_servers = 1;
    config.params.buf_alloc = BufAlloc::kMaximum;
    config.params.site_mips[kClientSite] = client_mips;
    ClientServerSystem system(std::move(workload.catalog), config);

    std::vector<std::string> row{Fmt(client_mips, 1)};
    std::string join_site = "?";
    for (ShippingPolicy policy :
         {ShippingPolicy::kDataShipping, ShippingPolicy::kQueryShipping,
          ShippingPolicy::kHybridShipping}) {
      auto result = system.Run(workload.query, policy,
                               OptimizeMetric::kResponseTime, /*seed=*/13);
      row.push_back(Fmt(result.execute.response_ms / 1000.0));
      if (policy == ShippingPolicy::kHybridShipping) {
        result.optimize.plan.ForEach([&](const PlanNode& node) {
          if (node.type == OpType::kJoin) {
            join_site = node.bound_site == kClientSite ? "client" : "server";
          }
        });
      }
    }
    row.push_back(join_site);
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nA slow client drags DS down while QS barely notices; the "
               "hybrid optimizer\nmoves the join to whichever side is "
               "faster.\n";
  return 0;
}

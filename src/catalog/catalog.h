#ifndef DIMSUM_CATALOG_CATALOG_H_
#define DIMSUM_CATALOG_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/relation.h"
#include "common/check.h"
#include "common/ids.h"

namespace dimsum {

/// System catalog: relations, their placement on servers, and the client's
/// disk-cache state.
///
/// Per the paper: the primary copy of each relation resides on a single
/// server (no declustering, no replication); the client stores no primary
/// copies; client caching holds a contiguous prefix of each relation on the
/// client's local disk.
class Catalog {
 public:
  /// Registers a relation; returns its id.
  RelationId AddRelation(std::string name, int64_t num_tuples,
                         int tuple_bytes) {
    const RelationId id = static_cast<RelationId>(relations_.size());
    relations_.push_back(
        Relation{id, std::move(name), num_tuples, tuple_bytes});
    primary_sites_.push_back(kUnboundSite);
    cached_fractions_.push_back(0.0);
    return id;
  }

  int64_t num_relations() const {
    return static_cast<int64_t>(relations_.size());
  }

  const Relation& relation(RelationId id) const {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
    return relations_[id];
  }

  /// Sets the server holding the primary copy. Must be a server site.
  void PlaceRelation(RelationId id, SiteId server) {
    DIMSUM_CHECK_NE(server, kClientSite);
    DIMSUM_CHECK_GT(server, 0);
    MutableEntry(id);
    primary_sites_[id] = server;
  }

  SiteId PrimarySite(RelationId id) const {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
    DIMSUM_CHECK_NE(primary_sites_[id], kUnboundSite)
        << "relation " << id << " has not been placed";
    return primary_sites_[id];
  }

  /// Sets the fraction [0,1] of the relation cached (contiguous prefix) on
  /// the client's disk.
  void SetCachedFraction(RelationId id, double fraction) {
    DIMSUM_CHECK_GE(fraction, 0.0);
    DIMSUM_CHECK_LE(fraction, 1.0);
    MutableEntry(id);
    cached_fractions_[id] = fraction;
  }

  double CachedFraction(RelationId id) const {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
    return cached_fractions_[id];
  }

  /// Number of pages of the relation resident in the client cache
  /// (the first `floor(fraction * pages)` pages).
  int64_t CachedPages(RelationId id, int page_bytes) const {
    const int64_t pages = relation(id).Pages(page_bytes);
    return static_cast<int64_t>(cached_fractions_[id] *
                                static_cast<double>(pages));
  }

 private:
  void MutableEntry(RelationId id) {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
  }

  std::vector<Relation> relations_;
  std::vector<SiteId> primary_sites_;
  std::vector<double> cached_fractions_;
};

}  // namespace dimsum

#endif  // DIMSUM_CATALOG_CATALOG_H_

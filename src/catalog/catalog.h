#ifndef DIMSUM_CATALOG_CATALOG_H_
#define DIMSUM_CATALOG_CATALOG_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "catalog/relation.h"
#include "common/check.h"
#include "common/ids.h"

namespace dimsum {

/// System catalog: relations, their placement on servers, and the clients'
/// disk-cache state.
///
/// Per the paper: the primary copy of each relation resides on a single
/// server (no declustering); clients store no primary copies; client
/// caching holds a contiguous prefix of each relation on a client's local
/// disk. The paper models one client site; the catalog generalizes to
/// `num_clients` client sites (sites 0..num_clients-1), each with its own
/// per-relation cached fraction, and to multi-copy placement: a relation
/// holds an ordered replica set of server sites. The first copy placed is
/// the *primary* (the paper's single-copy behaviour falls out at
/// replication degree 1); further PlaceRelation calls add replicas.
class Catalog {
 public:
  explicit Catalog(int num_clients = 1) : num_clients_(num_clients) {
    DIMSUM_CHECK_GE(num_clients, 1);
  }

  int num_clients() const { return num_clients_; }

  /// True for sites holding a client role under this catalog's layout.
  bool IsClientSite(SiteId site) const {
    return site >= 0 && site < num_clients_;
  }

  /// Registers a relation; returns its id.
  RelationId AddRelation(std::string name, int64_t num_tuples,
                         int tuple_bytes) {
    const RelationId id = static_cast<RelationId>(relations_.size());
    relations_.push_back(
        Relation{id, std::move(name), num_tuples, tuple_bytes});
    replica_sites_.emplace_back();
    cached_fractions_.emplace_back(num_clients_, 0.0);
    return id;
  }

  int64_t num_relations() const {
    return static_cast<int64_t>(relations_.size());
  }

  const Relation& relation(RelationId id) const {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
    return relations_[id];
  }

  /// Places a copy of the relation on `server`. The first placement sets
  /// the primary copy; subsequent placements add replicas (placing on a
  /// site already holding a copy is a no-op). Must be a server site.
  void PlaceRelation(RelationId id, SiteId server) {
    DIMSUM_CHECK_GE(server, num_clients_)
        << "site " << server << " is a client; copies live on servers";
    MutableEntry(id);
    for (const SiteId site : replica_sites_[id]) {
      if (site == server) return;
    }
    replica_sites_[id].push_back(server);
  }

  /// Migrates the relation: drops every existing copy and leaves a single
  /// primary copy on `server`.
  void MoveRelation(RelationId id, SiteId server) {
    DIMSUM_CHECK_GE(server, num_clients_)
        << "site " << server << " is a client; copies live on servers";
    MutableEntry(id);
    replica_sites_[id].clear();
    replica_sites_[id].push_back(server);
  }

  SiteId PrimarySite(RelationId id) const {
    return ReplicaSites(id).front();
  }

  /// All server sites holding a copy, in placement order (primary first).
  const std::vector<SiteId>& ReplicaSites(RelationId id) const {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
    DIMSUM_CHECK(!replica_sites_[id].empty())
        << "relation " << id << " has not been placed";
    return replica_sites_[id];
  }

  int NumReplicas(RelationId id) const {
    return static_cast<int>(ReplicaSites(id).size());
  }

  /// Site of the `index`-th copy. Indexes wrap modulo the replica count,
  /// so a plan annotated under one replication degree stays bindable under
  /// another (degree-1 catalogs always resolve to the primary).
  SiteId ReplicaSite(RelationId id, int index) const {
    const std::vector<SiteId>& copies = ReplicaSites(id);
    DIMSUM_CHECK_GE(index, 0);
    return copies[static_cast<std::size_t>(index) % copies.size()];
  }

  /// True when any relation holds more than one copy.
  bool replicated() const {
    for (const std::vector<SiteId>& copies : replica_sites_) {
      if (copies.size() > 1) return true;
    }
    return false;
  }

  /// Sets the fraction [0,1] of the relation cached (contiguous prefix) on
  /// `client`'s disk.
  void SetCachedFraction(RelationId id, SiteId client, double fraction) {
    DIMSUM_CHECK_GE(fraction, 0.0);
    DIMSUM_CHECK_LE(fraction, 1.0);
    CheckClient(client);
    MutableEntry(id);
    cached_fractions_[id][client] = fraction;
  }
  /// Single-client convenience: sets the fraction at client site 0.
  void SetCachedFraction(RelationId id, double fraction) {
    SetCachedFraction(id, kClientSite, fraction);
  }

  double CachedFraction(RelationId id, SiteId client = kClientSite) const {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
    CheckClient(client);
    return cached_fractions_[id][client];
  }

  /// Number of pages of the relation resident in `client`'s cache (the
  /// first `round(fraction * pages)` pages). Rounded to the nearest page,
  /// half up: the intent of "fraction f cached" is the closest whole page
  /// count, and naive truncation loses a page to floating-point error
  /// (0.7 * 10 pages must be 7, not 6).
  int64_t CachedPages(RelationId id, SiteId client, int page_bytes) const {
    const int64_t pages = relation(id).Pages(page_bytes);
    CheckClient(client);
    return std::llround(cached_fractions_[id][client] *
                        static_cast<double>(pages));
  }
  /// Single-client convenience: cached pages at client site 0.
  int64_t CachedPages(RelationId id, int page_bytes) const {
    return CachedPages(id, kClientSite, page_bytes);
  }

 private:
  void MutableEntry(RelationId id) {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
  }
  void CheckClient(SiteId client) const {
    DIMSUM_CHECK_GE(client, 0);
    DIMSUM_CHECK_LT(client, num_clients_);
  }

  int num_clients_;
  std::vector<Relation> relations_;
  /// replica_sites_[relation]: server sites holding a copy, placement
  /// order; front() is the primary. Empty until placed.
  std::vector<std::vector<SiteId>> replica_sites_;
  /// cached_fractions_[relation][client].
  std::vector<std::vector<double>> cached_fractions_;
};

}  // namespace dimsum

#endif  // DIMSUM_CATALOG_CATALOG_H_

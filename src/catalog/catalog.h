#ifndef DIMSUM_CATALOG_CATALOG_H_
#define DIMSUM_CATALOG_CATALOG_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "catalog/relation.h"
#include "common/check.h"
#include "common/ids.h"

namespace dimsum {

/// How a relation's tuples are partitioned across its shard sites.
/// kRange splits the key domain into contiguous intervals (shard k holds
/// tuples [floor(kN/K), floor((k+1)N/K))), so a selection predicate that
/// bounds the shard key prunes whole shards. kHash spreads tuples by key
/// hash: perfectly balanced, but every shard may hold matches, so range
/// predicates never prune.
enum class ShardScheme { kNone, kRange, kHash };

/// What a (possibly sharded, possibly key-restricted) scan fragment
/// touches: the pages it must read and the tuples it emits after the
/// key-range restriction. Computed by Catalog::ScanExtent and used
/// identically by the executor, the cost model, and cardinality
/// estimation so the three never disagree about fragment sizes.
struct ScanSlice {
  int64_t pages = 0;
  int64_t tuples = 0;
};

/// System catalog: relations, their placement on servers, and the clients'
/// disk-cache state.
///
/// Per the paper: the primary copy of each relation resides on a single
/// server (no declustering); clients store no primary copies; client
/// caching holds a contiguous prefix of each relation on a client's local
/// disk. The paper models one client site; the catalog generalizes to
/// `num_clients` client sites (sites 0..num_clients-1), each with its own
/// per-relation cached fraction, and to multi-copy placement: a relation
/// holds an ordered replica set of server sites. The first copy placed is
/// the *primary* (the paper's single-copy behaviour falls out at
/// replication degree 1); further PlaceRelation calls add replicas.
class Catalog {
 public:
  explicit Catalog(int num_clients = 1) : num_clients_(num_clients) {
    DIMSUM_CHECK_GE(num_clients, 1);
  }

  int num_clients() const { return num_clients_; }

  /// True for sites holding a client role under this catalog's layout.
  bool IsClientSite(SiteId site) const {
    return site >= 0 && site < num_clients_;
  }

  /// Registers a relation; returns its id.
  RelationId AddRelation(std::string name, int64_t num_tuples,
                         int tuple_bytes) {
    const RelationId id = static_cast<RelationId>(relations_.size());
    relations_.push_back(
        Relation{id, std::move(name), num_tuples, tuple_bytes});
    replica_sites_.emplace_back();
    cached_fractions_.emplace_back(num_clients_, 0.0);
    shard_schemes_.push_back(ShardScheme::kNone);
    shard_sites_.emplace_back();
    shard_replication_.push_back(1);
    return id;
  }

  int64_t num_relations() const {
    return static_cast<int64_t>(relations_.size());
  }

  const Relation& relation(RelationId id) const {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
    return relations_[id];
  }

  /// Places a copy of the relation on `server`. The first placement sets
  /// the primary copy; subsequent placements add replicas (placing on a
  /// site already holding a copy is a no-op). Must be a server site.
  void PlaceRelation(RelationId id, SiteId server) {
    DIMSUM_CHECK_GE(server, num_clients_)
        << "site " << server << " is a client; copies live on servers";
    MutableEntry(id);
    DIMSUM_CHECK(!sharded(id))
        << "relation " << id << " is sharded; whole-relation placement and "
        << "sharding are mutually exclusive";
    for (const SiteId site : replica_sites_[id]) {
      if (site == server) return;
    }
    replica_sites_[id].push_back(server);
  }

  /// Migrates the relation: drops every existing copy and leaves a single
  /// primary copy on `server`.
  void MoveRelation(RelationId id, SiteId server) {
    DIMSUM_CHECK_GE(server, num_clients_)
        << "site " << server << " is a client; copies live on servers";
    MutableEntry(id);
    DIMSUM_CHECK(!sharded(id))
        << "relation " << id << " is sharded; MoveRelation applies to "
        << "whole-relation copies only";
    replica_sites_[id].clear();
    replica_sites_[id].push_back(server);
  }

  SiteId PrimarySite(RelationId id) const {
    return ReplicaSites(id).front();
  }

  /// All server sites holding a copy, in placement order (primary first).
  const std::vector<SiteId>& ReplicaSites(RelationId id) const {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
    DIMSUM_CHECK(!replica_sites_[id].empty())
        << "relation " << id << " has not been placed";
    return replica_sites_[id];
  }

  int NumReplicas(RelationId id) const {
    return static_cast<int>(ReplicaSites(id).size());
  }

  /// Site of the `index`-th copy. Indexes wrap modulo the replica count,
  /// so a plan annotated under one replication degree stays bindable under
  /// another (degree-1 catalogs always resolve to the primary).
  SiteId ReplicaSite(RelationId id, int index) const {
    const std::vector<SiteId>& copies = ReplicaSites(id);
    DIMSUM_CHECK_GE(index, 0);
    return copies[static_cast<std::size_t>(index) % copies.size()];
  }

  /// True when any relation holds more than one copy.
  bool replicated() const {
    for (const std::vector<SiteId>& copies : replica_sites_) {
      if (copies.size() > 1) return true;
    }
    return false;
  }

  /// Horizontally shards the relation across `sites`: shard k's primary
  /// copy lives at sites[k], and copy r of shard k at
  /// sites[(k + r) % K] (chained declustering), so `replication` > 1
  /// survives single-site loss without doubling any one site's load.
  /// Range scheme: shard k holds tuples [floor(kN/K), floor((k+1)N/K)).
  /// Hash scheme: same tuple counts, but key ranges do not prune.
  /// Sharding excludes whole-relation placement and client caching: the
  /// relation must be unplaced with all cached fractions 0, and stays
  /// that way (client scans of a sharded relation fault every page in
  /// from the shard owners).
  void ShardRelation(RelationId id, std::vector<SiteId> sites,
                     ShardScheme scheme, int replication = 1) {
    MutableEntry(id);
    DIMSUM_CHECK(scheme != ShardScheme::kNone);
    DIMSUM_CHECK(!sharded(id)) << "relation " << id << " is already sharded";
    DIMSUM_CHECK(replica_sites_[id].empty())
        << "relation " << id << " already has whole-relation copies";
    DIMSUM_CHECK(!sites.empty());
    for (const SiteId site : sites) {
      DIMSUM_CHECK_GE(site, num_clients_)
          << "site " << site << " is a client; shards live on servers";
    }
    for (const double fraction : cached_fractions_[id]) {
      DIMSUM_CHECK_EQ(fraction, 0.0)
          << "relation " << id << " is client-cached; sharded relations "
          << "cannot be cached";
    }
    DIMSUM_CHECK_GE(replication, 1);
    DIMSUM_CHECK_LE(replication, static_cast<int>(sites.size()));
    shard_schemes_[id] = scheme;
    shard_sites_[id] = std::move(sites);
    shard_replication_[id] = replication;
  }

  bool sharded(RelationId id) const {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
    return shard_schemes_[id] != ShardScheme::kNone;
  }

  /// True when any relation is sharded.
  bool sharded() const {
    for (const ShardScheme scheme : shard_schemes_) {
      if (scheme != ShardScheme::kNone) return true;
    }
    return false;
  }

  ShardScheme Scheme(RelationId id) const {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
    return shard_schemes_[id];
  }

  /// Shard count; 1 for unsharded relations (the whole relation is one
  /// logical "shard" as far as fragment math goes).
  int NumShards(RelationId id) const {
    return sharded(id) ? static_cast<int>(shard_sites_[id].size()) : 1;
  }

  /// Copies held of each shard (chained onto the next sites). 1 for
  /// unsharded relations.
  int ShardReplication(RelationId id) const {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
    return shard_replication_[id];
  }

  /// Site of copy `replica` of shard `shard`. The replica index wraps
  /// modulo the replication degree (mirroring ReplicaSite), so plans
  /// annotated under one degree stay bindable under another.
  SiteId ShardSite(RelationId id, int shard, int replica = 0) const {
    DIMSUM_CHECK(sharded(id)) << "relation " << id << " is not sharded";
    const std::vector<SiteId>& sites = shard_sites_[id];
    DIMSUM_CHECK_GE(shard, 0);
    DIMSUM_CHECK_LT(shard, static_cast<int>(sites.size()));
    DIMSUM_CHECK_GE(replica, 0);
    const int wrapped = replica % shard_replication_[id];
    return sites[(static_cast<std::size_t>(shard) + wrapped) % sites.size()];
  }

  /// Sites holding shards of the relation, declaration order.
  const std::vector<SiteId>& ShardSites(RelationId id) const {
    DIMSUM_CHECK(sharded(id)) << "relation " << id << " is not sharded";
    return shard_sites_[id];
  }

  /// How many distinct copies a scan of this relation can choose from:
  /// the shard replication degree when sharded, otherwise the replica
  /// count. This is the value the optimizer's replica moves and the
  /// submission-time balancer enumerate.
  int ScanCopies(RelationId id) const {
    return sharded(id) ? shard_replication_[id] : NumReplicas(id);
  }

  /// First tuple index of shard `shard` (range scheme order; the hash
  /// scheme reuses the same counts for balance).
  int64_t ShardFirstTuple(RelationId id, int shard) const {
    DIMSUM_CHECK_GE(shard, 0);
    const int shards = NumShards(id);
    DIMSUM_CHECK_LE(shard, shards);
    return static_cast<int64_t>(shard) * relation(id).num_tuples / shards;
  }

  /// Tuples held by shard `shard`.
  int64_t ShardNumTuples(RelationId id, int shard) const {
    return ShardFirstTuple(id, shard + 1) - ShardFirstTuple(id, shard);
  }

  /// Pages held by shard `shard` (ceiling over its tuple count).
  int64_t ShardPages(RelationId id, int shard, int page_bytes) const {
    const int64_t per_page = relation(id).TuplesPerPage(page_bytes);
    return (ShardNumTuples(id, shard) + per_page - 1) / per_page;
  }

  /// Pages read and tuples emitted by a scan fragment of the relation.
  /// `shard` < 0 means the whole (unsharded view of the) relation;
  /// [key_lo, key_hi) is the pushed-down shard-key restriction as a
  /// fraction of the key domain (0..1 = unrestricted). Reads are
  /// shard-granular: a fragment reads ALL of its shard's pages (or all
  /// relation pages when shard < 0) unless the key range is empty —
  /// pruning happens by dropping whole shards at plan expansion, never by
  /// sub-extent reads. Range fragments emit the tuples whose index falls
  /// in the restriction; hash fragments hold a uniform sample of every
  /// key, so they emit the restricted *fraction* of their tuples.
  ScanSlice ScanExtent(RelationId id, int shard, double key_lo, double key_hi,
                       int page_bytes) const {
    const Relation& rel = relation(id);
    ScanSlice slice;
    if (key_hi <= key_lo) return slice;  // empty fragment: reads nothing
    const int64_t lo = std::llround(key_lo * static_cast<double>(rel.num_tuples));
    const int64_t hi = std::llround(key_hi * static_cast<double>(rel.num_tuples));
    if (shard < 0) {
      slice.pages = rel.Pages(page_bytes);
      slice.tuples = hi > lo ? hi - lo : 0;
      return slice;
    }
    DIMSUM_CHECK(sharded(id)) << "relation " << id << " is not sharded";
    slice.pages = ShardPages(id, shard, page_bytes);
    if (Scheme(id) == ShardScheme::kHash) {
      slice.tuples = std::llround(
          (key_hi - key_lo) * static_cast<double>(ShardNumTuples(id, shard)));
    } else {
      const int64_t first = ShardFirstTuple(id, shard);
      const int64_t last = ShardFirstTuple(id, shard + 1);
      const int64_t from = lo > first ? lo : first;
      const int64_t to = hi < last ? hi : last;
      slice.tuples = to > from ? to - from : 0;
    }
    return slice;
  }

  /// Sets the fraction [0,1] of the relation cached (contiguous prefix) on
  /// `client`'s disk.
  void SetCachedFraction(RelationId id, SiteId client, double fraction) {
    DIMSUM_CHECK_GE(fraction, 0.0);
    DIMSUM_CHECK_LE(fraction, 1.0);
    CheckClient(client);
    MutableEntry(id);
    DIMSUM_CHECK(!sharded(id) || fraction == 0.0)
        << "relation " << id << " is sharded; sharded relations cannot be "
        << "client-cached";
    cached_fractions_[id][client] = fraction;
  }
  /// Single-client convenience: sets the fraction at client site 0.
  void SetCachedFraction(RelationId id, double fraction) {
    SetCachedFraction(id, kClientSite, fraction);
  }

  double CachedFraction(RelationId id, SiteId client = kClientSite) const {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
    CheckClient(client);
    return cached_fractions_[id][client];
  }

  /// Number of pages of the relation resident in `client`'s cache (the
  /// first `round(fraction * pages)` pages). Rounded to the nearest page,
  /// half up: the intent of "fraction f cached" is the closest whole page
  /// count, and naive truncation loses a page to floating-point error
  /// (0.7 * 10 pages must be 7, not 6).
  int64_t CachedPages(RelationId id, SiteId client, int page_bytes) const {
    const int64_t pages = relation(id).Pages(page_bytes);
    CheckClient(client);
    return std::llround(cached_fractions_[id][client] *
                        static_cast<double>(pages));
  }
  /// Single-client convenience: cached pages at client site 0.
  int64_t CachedPages(RelationId id, int page_bytes) const {
    return CachedPages(id, kClientSite, page_bytes);
  }

 private:
  void MutableEntry(RelationId id) {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, num_relations());
  }
  void CheckClient(SiteId client) const {
    DIMSUM_CHECK_GE(client, 0);
    DIMSUM_CHECK_LT(client, num_clients_);
  }

  int num_clients_;
  std::vector<Relation> relations_;
  /// replica_sites_[relation]: server sites holding a copy, placement
  /// order; front() is the primary. Empty until placed.
  std::vector<std::vector<SiteId>> replica_sites_;
  /// cached_fractions_[relation][client].
  std::vector<std::vector<double>> cached_fractions_;
  /// shard_schemes_[relation]: kNone unless ShardRelation was called.
  std::vector<ShardScheme> shard_schemes_;
  /// shard_sites_[relation]: server site of shard k's primary at index k;
  /// copy r of shard k chains to index (k + r) % K. Empty when unsharded.
  std::vector<std::vector<SiteId>> shard_sites_;
  /// shard_replication_[relation]: copies per shard (1 when unsharded).
  std::vector<int> shard_replication_;
};

}  // namespace dimsum

#endif  // DIMSUM_CATALOG_CATALOG_H_

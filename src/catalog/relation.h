#ifndef DIMSUM_CATALOG_RELATION_H_
#define DIMSUM_CATALOG_RELATION_H_

#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/ids.h"

namespace dimsum {

/// Schema-level description of a base relation. The paper's benchmark
/// relations have 10,000 tuples of 100 bytes (250 pages of 4 KB).
struct Relation {
  RelationId id = kInvalidRelation;
  std::string name;
  int64_t num_tuples = 0;
  int tuple_bytes = 0;

  /// Tuples that fit on one page of `page_bytes`.
  int64_t TuplesPerPage(int page_bytes) const {
    DIMSUM_CHECK_GT(tuple_bytes, 0);
    const int64_t per_page = page_bytes / tuple_bytes;
    DIMSUM_CHECK_GT(per_page, 0);
    return per_page;
  }

  /// Size of the relation in pages (ceiling).
  int64_t Pages(int page_bytes) const {
    const int64_t per_page = TuplesPerPage(page_bytes);
    return (num_tuples + per_page - 1) / per_page;
  }
};

}  // namespace dimsum

#endif  // DIMSUM_CATALOG_RELATION_H_

#ifndef DIMSUM_COMMON_CHECK_H_
#define DIMSUM_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace dimsum {
namespace internal {

/// Prints a fatal-error message with source location and aborts.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

/// Stream-style message collector used by the CHECK macros.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dimsum

/// Aborts with a diagnostic if `condition` is false. Usable in any build
/// mode; the simulator relies on these invariants holding.
#define DIMSUM_CHECK(condition)                                         \
  if (condition) {                                                      \
  } else /* NOLINT */                                                   \
    ::dimsum::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define DIMSUM_CHECK_EQ(a, b) \
  DIMSUM_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define DIMSUM_CHECK_NE(a, b) \
  DIMSUM_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define DIMSUM_CHECK_LT(a, b) \
  DIMSUM_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define DIMSUM_CHECK_LE(a, b) \
  DIMSUM_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define DIMSUM_CHECK_GT(a, b) \
  DIMSUM_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define DIMSUM_CHECK_GE(a, b) \
  DIMSUM_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

/// Marks an unreachable code path.
#define DIMSUM_UNREACHABLE() \
  ::dimsum::internal::CheckMessageBuilder(__FILE__, __LINE__, "unreachable")

#endif  // DIMSUM_COMMON_CHECK_H_

#ifndef DIMSUM_COMMON_FLAT_MAP_H_
#define DIMSUM_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"

namespace dimsum {

/// Sorted-vector map for small key sets (a handful of sites, disks, ...).
/// One contiguous allocation instead of a node per entry, which matters on
/// the simulation hot path where an ExecMetrics is built per query. The
/// interface is the subset of std::map the codebase uses: operator[], at,
/// find, ranged-for over (key, value) pairs.
template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  FlatMap() = default;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  iterator find(const K& key) {
    auto it = LowerBound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  const_iterator find(const K& key) const {
    auto it = LowerBound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  bool contains(const K& key) const { return find(key) != end(); }

  /// Inserts a default-constructed value when absent.
  V& operator[](const K& key) {
    auto it = LowerBound(key);
    if (it == entries_.end() || it->first != key) {
      it = entries_.insert(it, value_type(key, V()));
    }
    return it->second;
  }

  V& at(const K& key) {
    auto it = find(key);
    DIMSUM_CHECK(it != end()) << "FlatMap::at: key not found";
    return it->second;
  }
  const V& at(const K& key) const {
    auto it = find(key);
    DIMSUM_CHECK(it != end()) << "FlatMap::at: key not found";
    return it->second;
  }

  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    return a.entries_ == b.entries_;
  }

 private:
  iterator LowerBound(const K& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& entry, const K& k) { return entry.first < k; });
  }
  const_iterator LowerBound(const K& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& entry, const K& k) { return entry.first < k; });
  }

  std::vector<value_type> entries_;
};

}  // namespace dimsum

#endif  // DIMSUM_COMMON_FLAT_MAP_H_

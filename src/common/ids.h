#ifndef DIMSUM_COMMON_IDS_H_
#define DIMSUM_COMMON_IDS_H_

#include <cstdint>

namespace dimsum {

/// Identifies a machine in the client-server system. By convention the
/// clients are sites 0..num_clients-1 and servers are sites
/// num_clients..num_clients+num_servers-1. The historical single-client
/// configuration (num_clients == 1) therefore keeps its numbering: client
/// at site 0, servers at sites 1..num_servers.
using SiteId = int32_t;

/// The first (and, in single-client configurations, only) client site.
/// Queries default to this home client.
inline constexpr SiteId kClientSite = 0;

/// Sentinel for "site not yet bound".
inline constexpr SiteId kUnboundSite = -1;

/// Identifies a base relation in the catalog.
using RelationId = int32_t;

inline constexpr RelationId kInvalidRelation = -1;

/// Returns the client site id for the i-th client (0-based index).
inline constexpr SiteId ClientSite(int index) { return index; }

/// Returns the server site id for the i-th server (0-based index) in a
/// system with `num_clients` client sites. The default preserves the
/// single-client convention used throughout the paper reproduction.
inline constexpr SiteId ServerSite(int index, int num_clients = 1) {
  return num_clients + index;
}

}  // namespace dimsum

#endif  // DIMSUM_COMMON_IDS_H_

#ifndef DIMSUM_COMMON_IDS_H_
#define DIMSUM_COMMON_IDS_H_

#include <cstdint>

namespace dimsum {

/// Identifies a machine in the client-server system. By convention the
/// client is site 0 and servers are sites 1..num_servers.
using SiteId = int32_t;

/// The (single) client site. Queries are always submitted and displayed here.
inline constexpr SiteId kClientSite = 0;

/// Sentinel for "site not yet bound".
inline constexpr SiteId kUnboundSite = -1;

/// Identifies a base relation in the catalog.
using RelationId = int32_t;

inline constexpr RelationId kInvalidRelation = -1;

/// Returns the server site id for the i-th server (0-based index).
inline constexpr SiteId ServerSite(int index) { return index + 1; }

}  // namespace dimsum

#endif  // DIMSUM_COMMON_IDS_H_

#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dimsum {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriteNumber(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << "null";
    return;
  }
  // Integers (the common case for counters and microsecond timestamps)
  // print without an exponent or trailing zeros.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    out << static_cast<int64_t>(value);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

// Named (rather than anonymous-namespace) so JsonValue can befriend it.
class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> Run() {
    JsonValue value;
    if (!ParseValue(&value)) return std::nullopt;
    SkipSpace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after document");
      return std::nullopt;
    }
    return value;
  }

 private:
  void Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t n = std::string(literal).size();
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    Fail(std::string("expected '") + literal + "'");
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      Fail("expected string");
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              Fail("truncated \\u escape");
              return false;
            }
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            // Sufficient for the escapes this codebase emits (< 0x20).
            *out += static_cast<char>(code < 0x80 ? code : '?');
            break;
          }
          default:
            Fail("bad escape");
            return false;
        }
      } else {
        *out += c;
      }
    }
    Fail("unterminated string");
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind_ = JsonValue::Kind::kString;
      return ParseString(&out->string_);
    }
    if (c == 't') {
      if (!ConsumeLiteral("true")) return false;
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = true;
      return true;
    }
    if (c == 'f') {
      if (!ConsumeLiteral("false")) return false;
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = false;
      return true;
    }
    if (c == 'n') {
      if (!ConsumeLiteral("null")) return false;
      out->kind_ = JsonValue::Kind::kNull;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected value");
      return false;
    }
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      Fail("bad number '" + token + "'");
      return false;
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return true;
  }

  bool ParseArray(JsonValue* out) {
    Consume('[');
    out->kind_ = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue item;
      if (!ParseValue(&item)) return false;
      out->array_.push_back(std::move(item));
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      Fail("expected ',' or ']'");
      return false;
    }
  }

  bool ParseObject(JsonValue* out) {
    Consume('{');
    out->kind_ = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) {
        Fail("expected ':'");
        return false;
      }
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object_.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      Fail("expected ',' or '}'");
      return false;
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

std::optional<JsonValue> JsonValue::Parse(const std::string& text,
                                          std::string* error) {
  return JsonParser(text, error).Run();
}

}  // namespace dimsum

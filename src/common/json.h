#ifndef DIMSUM_COMMON_JSON_H_
#define DIMSUM_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace dimsum {

/// Escapes `s` for inclusion in a JSON string literal (quotes not added).
std::string JsonEscape(const std::string& s);

/// Writes a double as JSON: finite values print round-trippably; NaN and
/// infinities (not representable in JSON) are written as null.
void JsonWriteNumber(std::ostream& out, double value);

/// Minimal JSON document model, used by the exporters' tests to
/// schema-check emitted files (Chrome trace-event output, metrics
/// snapshots). Not a general-purpose library: no comments, no trailing
/// commas, numbers parsed as double.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::map<std::string, JsonValue>& object_items() const {
    return object_;
  }

  /// Object member access; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Parses `text`; returns nullopt (with a message in `*error` when
  /// non-null) on malformed input or trailing garbage.
  static std::optional<JsonValue> Parse(const std::string& text,
                                        std::string* error = nullptr);

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace dimsum

#endif  // DIMSUM_COMMON_JSON_H_

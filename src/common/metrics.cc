#include "common/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "common/check.h"
#include "common/json.h"

namespace dimsum {

int Counter::ShardIndex() {
  static std::atomic<int> next{0};
  thread_local const int index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  DIMSUM_CHECK(!bounds_.empty());
  DIMSUM_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::DefaultTimeBoundsMs() {
  return {0.01, 0.03, 0.1, 0.3, 1.0,    3.0,    10.0,
          30.0, 100.0, 300.0, 1000.0, 3000.0, 10000.0};
}

void Histogram::Add(double value) {
  DIMSUM_CHECK(has_buckets()) << "histogram has no bucket bounds";
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (!has_buckets()) {
    *this = other;
    return;
  }
  DIMSUM_CHECK(bounds_ == other.bounds_)
      << "merging histograms with different bucket bounds";
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count_);
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const int64_t next = seen + counts_[i];
    if (static_cast<double>(next) >= rank) {
      // The overflow bucket has no finite upper bound; min/max clamping
      // below caps it at the observed maximum.
      const double lo = (i == 0) ? min_ : bounds_[i - 1];
      const double hi = (i < bounds_.size()) ? bounds_[i] : max_;
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(counts_[i]);
      const double value = lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
      return std::min(max_, std::max(min_, value));
    }
    seen = next;
  }
  return max_;
}

void Histogram::WriteJson(std::ostream& out) const {
  out << "{\"count\": " << count_ << ", \"sum\": ";
  JsonWriteNumber(out, sum_);
  out << ", \"mean\": ";
  JsonWriteNumber(out, mean());
  out << ", \"min\": ";
  JsonWriteNumber(out, min());
  out << ", \"max\": ";
  JsonWriteNumber(out, max());
  out << ", \"p50\": ";
  JsonWriteNumber(out, Quantile(0.5));
  out << ", \"p90\": ";
  JsonWriteNumber(out, Quantile(0.9));
  out << ", \"p99\": ";
  JsonWriteNumber(out, Quantile(0.99));
  out << ", \"buckets\": [";
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"le\": ";
    if (i < bounds_.size()) {
      JsonWriteNumber(out, bounds_[i]);
    } else {
      out << "\"inf\"";
    }
    out << ", \"count\": " << counts_[i] << "}";
  }
  out << "]}";
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    const char* env = std::getenv("DIMSUM_METRICS");
    if (env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0')) {
      r->set_enabled(true);
    }
    return r;
  }();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (upper_bounds.empty()) upper_bounds = Histogram::DefaultTimeBoundsMs();
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

void MetricsRegistry::MergeHistogram(const std::string& name,
                                     const Histogram& sample) {
  if (sample.count() == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(
        sample.has_buckets() ? sample.bounds()
                             : Histogram::DefaultTimeBoundsMs());
  }
  slot->Merge(sample);
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << counter->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": ";
    JsonWriteNumber(out, gauge->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": ";
    histogram->WriteJson(out);
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  WriteJson(out);
  return true;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace dimsum

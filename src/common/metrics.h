#ifndef DIMSUM_COMMON_METRICS_H_
#define DIMSUM_COMMON_METRICS_H_

// Process-wide metrics: counters, gauges, and fixed-bucket histograms with
// a JSON snapshot exporter. Counters are thread-sharded so optimizer
// starts and replication trials running on the global thread pool (see
// common/thread_pool.h) can increment them without contending on one
// cache line. Instrumented layers accumulate into plain local structs on
// their hot paths and *fold* into the registry at run boundaries, so the
// registry itself is never on a simulation or search hot path.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace dimsum {

/// Monotonically increasing counter. Add() is safe from any thread:
/// increments go to one of a fixed number of cache-line-padded shards
/// selected by the calling thread, and value() sums the shards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t value() const {
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr int kShards = 16;
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };

  /// Stable per-thread shard assignment (round-robin over first use).
  static int ShardIndex();

  std::array<Shard, kShards> shards_{};
};

/// Last-written-value gauge; Set/value are atomic.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (value type). Buckets are defined by ascending
/// upper bounds; one implicit overflow bucket catches everything above the
/// last bound. Not internally synchronized: record into a local instance
/// (or behind MetricsRegistry::MergeHistogram) and merge at fold points.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> upper_bounds);

  /// Log-spaced millisecond bounds, 0.01 ms .. 10 s: suits both per-page
  /// service times (~0.1-15 ms) and whole-phase waits.
  static std::vector<double> DefaultTimeBoundsMs();

  bool has_buckets() const { return !bounds_.empty(); }
  void Add(double value);
  void Merge(const Histogram& other);
  void Reset();

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<int64_t>& bucket_counts() const { return counts_; }

  /// Quantile estimate by linear interpolation within the owning bucket,
  /// clamped to the observed [min, max]. Depends only on the merged bucket
  /// counts (plus exact min/max), so the result is independent of the
  /// order samples were added or shards were merged. q in [0, 1]; returns
  /// 0 for an empty histogram.
  double Quantile(double q) const;

  /// {"count":n,"sum":s,"mean":..,"min":..,"max":..,"p50":..,"p90":..,
  /// "p99":..,"buckets":[{"le":b,"count":c},..,{"le":"inf","count":c}]}
  void WriteJson(std::ostream& out) const;

 private:
  std::vector<double> bounds_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named registry of counters, gauges, and histograms. Lookup is mutex
/// protected and returns stable references (instruments are never removed
/// except by Reset); instrument updates follow each type's own thread
/// safety rules.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide instance. `enabled()` is initialized from the
  /// DIMSUM_METRICS environment variable (any non-empty value other than
  /// "0"); the CLI and bench harnesses also enable it explicitly when a
  /// metrics file was requested.
  static MetricsRegistry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First call for `name` fixes its bounds (default: time buckets).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds = {});

  /// Thread-safe fold of `sample` into histogram `name`.
  void MergeHistogram(const std::string& name, const Histogram& sample);

  /// Snapshot as one JSON object:
  /// {"counters":{..},"gauges":{..},"histograms":{..}}.
  void WriteJson(std::ostream& out) const;
  /// Writes the snapshot to `path`; returns false if the file cannot be
  /// opened.
  bool WriteJsonFile(const std::string& path) const;

  /// Drops every instrument (tests only; references become dangling).
  void Reset();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dimsum

#endif  // DIMSUM_COMMON_METRICS_H_

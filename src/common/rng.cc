#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace dimsum {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DIMSUM_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return lo + static_cast<int64_t>(v % range);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  DIMSUM_CHECK_GT(mean, 0.0);
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace dimsum

#ifndef DIMSUM_COMMON_RNG_H_
#define DIMSUM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dimsum {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). All randomness in the library flows through this class so
/// experiments are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Returns a uniformly distributed 64-bit value.
  uint64_t NextU64();

  /// Returns a double uniformly distributed in [0, 1).
  double NextDouble();

  /// Returns an integer uniformly distributed in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns true with probability `p`.
  bool Bernoulli(double p);

  /// Returns an exponentially distributed value with the given mean.
  double Exponential(double mean);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each
  /// replication of an experiment its own stream.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace dimsum

#endif  // DIMSUM_COMMON_RNG_H_

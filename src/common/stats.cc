#include "common/stats.h"

#include <cmath>

namespace dimsum {

void RunningStat::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStat::mean() const { return count_ > 0 ? mean_ : 0.0; }

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ConfidenceHalfWidth90() const {
  if (count_ < 2) return 0.0;
  const double se = stddev() / std::sqrt(static_cast<double>(count_));
  return StudentT90(count_ - 1) * se;
}

bool RunningStat::WithinRelativeError(double fraction,
                                      int64_t min_samples) const {
  if (count_ < min_samples) return false;
  const double m = std::fabs(mean());
  if (m == 0.0) return variance() == 0.0;
  return ConfidenceHalfWidth90() <= fraction * m;
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          total;
  count_ += other.count_;
}

double StudentT90(int64_t df) {
  // Two-sided 90% critical values (alpha/2 = 0.05 per tail).
  static constexpr double kTable[] = {
      6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
      1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
      1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
  if (df < 1) return kTable[0];
  if (df <= 30) return kTable[df - 1];
  if (df <= 40) return 1.684;
  if (df <= 60) return 1.671;
  if (df <= 120) return 1.658;
  return 1.645;
}

}  // namespace dimsum

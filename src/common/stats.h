#ifndef DIMSUM_COMMON_STATS_H_
#define DIMSUM_COMMON_STATS_H_

#include <cstdint>

namespace dimsum {

/// Online mean/variance accumulator (Welford's algorithm) with a
/// Student-t 90% confidence-interval helper, mirroring the paper's
/// methodology ("90% confidence intervals ... within 5%").
class RunningStat {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Half-width of the 90% confidence interval for the mean.
  double ConfidenceHalfWidth90() const;

  /// True once the 90% CI half-width is within `fraction` of the mean
  /// (and at least `min_samples` samples have been collected).
  bool WithinRelativeError(double fraction, int64_t min_samples = 3) const;

  void Merge(const RunningStat& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Two-sided Student-t critical value for 90% confidence with `df` degrees
/// of freedom (df >= 1); falls back to the normal value for large df.
double StudentT90(int64_t df);

}  // namespace dimsum

#endif  // DIMSUM_COMMON_STATS_H_

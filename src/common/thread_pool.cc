#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>

#include "common/check.h"

namespace dimsum {
namespace {

/// Set while a thread is executing tasks for a pool; used to detect nested
/// ParallelFor calls (which must run inline to avoid deadlocking a pool
/// whose workers are all waiting on each other's subtasks).
thread_local const ThreadPool* g_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  // Size 1 means inline execution; no workers needed.
  if (num_threads_ == 1) return;
  workers_.reserve(static_cast<std::size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InWorkerThread() const { return g_current_pool == this; }

void ThreadPool::Enqueue(std::function<void()> task) {
  if (num_threads_ == 1 || InWorkerThread()) {
    // Inline fallback: sequential pool, or a worker scheduling sub-work
    // (running it here keeps the pool deadlock-free).
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DIMSUM_CHECK(!stop_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  g_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& body) {
  if (n <= 0) return;
  if (num_threads_ == 1 || n == 1 || InWorkerThread()) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }

  struct SharedState {
    std::atomic<int> next{0};
    std::atomic<int> active{0};
    std::mutex mutex;                 // guards error fields + done signal
    std::condition_variable done_cv;
    std::exception_ptr error;
    int error_index = std::numeric_limits<int>::max();
  };
  auto state = std::make_shared<SharedState>();

  auto run_iterations = [n, &body, state] {
    for (;;) {
      const int i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        // Keep the exception from the lowest-numbered iteration so the
        // reported failure does not depend on scheduling.
        if (i < state->error_index) {
          state->error_index = i;
          state->error = std::current_exception();
        }
      }
    }
  };

  const int helpers = std::min(num_threads_ - 1, n - 1);
  state->active.store(helpers, std::memory_order_relaxed);
  for (int h = 0; h < helpers; ++h) {
    Enqueue([state, run_iterations] {
      run_iterations();
      if (state->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->done_cv.notify_all();
      }
    });
  }

  // The calling thread works too; then wait for the helpers to drain.
  run_iterations();
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock, [&state] {
      return state->active.load(std::memory_order_acquire) == 0;
    });
    if (state->error) std::rethrow_exception(state->error);
  }
}

int ThreadCountFromEnv(const char* value) {
  const int hardware =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  if (value == nullptr || *value == '\0') return hardware;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1) return hardware;
  return static_cast<int>(parsed);
}

namespace {

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& GlobalThreadPool() {
  auto& slot = GlobalPoolSlot();
  if (!slot) {
    slot = std::make_unique<ThreadPool>(
        ThreadCountFromEnv(std::getenv("DIMSUM_THREADS")));
  }
  return *slot;
}

void SetGlobalThreadCount(int num_threads) {
  if (num_threads < 1) num_threads = ThreadCountFromEnv(nullptr);
  auto& slot = GlobalPoolSlot();
  slot.reset();  // join the old pool before replacing it
  slot = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace dimsum

#ifndef DIMSUM_COMMON_THREAD_POOL_H_
#define DIMSUM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dimsum {

/// Fixed-size worker pool used by the embarrassingly parallel loops of the
/// experiment apparatus (optimizer starts, replication trials). A pool of
/// size 1 runs everything inline on the calling thread, so sequential
/// execution is always available as a fallback (`DIMSUM_THREADS=1`).
///
/// Determinism contract: the pool never introduces nondeterminism by
/// itself — callers must make each task a pure function of its inputs
/// (e.g. a pre-derived RNG seed) and combine results in a fixed order.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; values < 1 are clamped to 1. A pool of
  /// size 1 spawns no threads at all.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return num_threads_; }

  /// Schedules `fn` and returns a future for its result. With one thread
  /// the task runs inline before Submit returns. Exceptions thrown by the
  /// task surface from future::get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs `body(0) .. body(n-1)`, blocking until all iterations complete.
  /// Iterations may run in any order and concurrently; the caller's thread
  /// participates. If any iteration throws, the exception from the
  /// lowest-numbered throwing iteration is rethrown (after all iterations
  /// finished) so failures are deterministic.
  ///
  /// Nested calls (an iteration itself calling ParallelFor on the same
  /// pool) run inline on the worker to avoid deadlock.
  void ParallelFor(int n, const std::function<void(int)>& body);

  /// True when the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Parses a `DIMSUM_THREADS`-style value: a positive integer is taken
/// verbatim; null, empty, zero, or garbage mean "use all hardware threads".
/// Exposed for testing.
int ThreadCountFromEnv(const char* value);

/// Process-wide pool shared by the optimizer and replication loops. Sized
/// by the `DIMSUM_THREADS` environment variable on first use (default:
/// hardware concurrency; `1` = fully sequential).
ThreadPool& GlobalThreadPool();

/// Replaces the global pool with one of `num_threads` threads (values < 1
/// mean "all hardware threads"). Used by `--threads=N` flags and the
/// thread-sweep benchmarks. Not safe to call while work is in flight on
/// the pool.
void SetGlobalThreadCount(int num_threads);

}  // namespace dimsum

#endif  // DIMSUM_COMMON_THREAD_POOL_H_

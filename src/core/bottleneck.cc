#include "core/bottleneck.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "core/report.h"

namespace dimsum {
namespace {

/// Stable bucket ordering for ties: resource class, then site.
bool BucketBefore(const BottleneckBucket& a, const BottleneckBucket& b) {
  if (a.elapsed_ms != b.elapsed_ms) return a.elapsed_ms > b.elapsed_ms;
  if (a.resource != b.resource) return a.resource < b.resource;
  return a.site < b.site;
}

/// Looks up a bucket's busy-time bound; negative means "unknown".
double BusyBound(BottleneckResource resource, SiteId site,
                 const FlatMap<SiteId, double>& cpu_busy,
                 const FlatMap<SiteId, double>& disk_busy,
                 double network_busy_ms) {
  switch (resource) {
    case BottleneckResource::kCpu: {
      auto it = cpu_busy.find(site);
      return it != cpu_busy.end() ? it->second : -1.0;
    }
    case BottleneckResource::kDisk: {
      auto it = disk_busy.find(site);
      return it != disk_busy.end() ? it->second : -1.0;
    }
    case BottleneckResource::kNet:
      return network_busy_ms;
    case BottleneckResource::kStall:
      return 0.0;  // stalls are pure waiting
  }
  return -1.0;
}

/// Builds the sorted report from per-bucket elapsed sums and busy bounds.
BottleneckReport FinishReport(
    std::vector<std::pair<std::pair<BottleneckResource, SiteId>, double>>
        elapsed,
    const FlatMap<SiteId, double>& cpu_busy,
    const FlatMap<SiteId, double>& disk_busy, double network_busy_ms,
    double response_ms, int queries) {
  BottleneckReport report;
  report.response_ms = response_ms;
  report.queries = queries;
  for (const auto& [key, ms] : elapsed) {
    if (ms <= 0.0) continue;
    BottleneckBucket bucket;
    bucket.resource = key.first;
    bucket.site = key.second;
    bucket.elapsed_ms = ms;
    const double busy =
        BusyBound(key.first, key.second, cpu_busy, disk_busy, network_busy_ms);
    // Unknown busy bound (per-query metrics of a shared run): report the
    // whole elapsed time as service rather than inventing queueing.
    bucket.service_ms = busy < 0.0 ? ms : std::min(ms, busy);
    bucket.queueing_ms = ms - bucket.service_ms;
    report.attributed_ms += ms;
    report.buckets.push_back(bucket);
  }
  for (BottleneckBucket& bucket : report.buckets) {
    bucket.share =
        report.attributed_ms > 0.0 ? bucket.elapsed_ms / report.attributed_ms
                                   : 0.0;
  }
  std::sort(report.buckets.begin(), report.buckets.end(), BucketBefore);
  return report;
}

void AccumulateActuals(
    const std::vector<SiteId>& op_sites,
    const std::vector<OperatorActual>& actuals,
    std::vector<std::pair<std::pair<BottleneckResource, SiteId>, double>>*
        elapsed) {
  auto add = [elapsed](BottleneckResource resource, SiteId site, double ms) {
    if (ms <= 0.0) return;
    const std::pair<BottleneckResource, SiteId> key{resource, site};
    for (auto& [k, v] : *elapsed) {
      if (k == key) {
        v += ms;
        return;
      }
    }
    elapsed->emplace_back(key, ms);
  };
  for (std::size_t i = 0; i < actuals.size(); ++i) {
    const SiteId site = op_sites[i];
    const OperatorActual& a = actuals[i];
    add(BottleneckResource::kCpu, site, a.cpu_ms);
    add(BottleneckResource::kDisk, site, a.disk_ms);
    add(BottleneckResource::kNet, kUnboundSite, a.net_ms);
    add(BottleneckResource::kStall, kUnboundSite, a.stall_ms);
  }
}

}  // namespace

const char* ToString(BottleneckResource resource) {
  switch (resource) {
    case BottleneckResource::kCpu:
      return "cpu";
    case BottleneckResource::kDisk:
      return "disk";
    case BottleneckResource::kNet:
      return "net";
    case BottleneckResource::kStall:
      return "stall";
  }
  return "?";
}

std::string BottleneckReport::Summary(int num_clients) const {
  const BottleneckBucket* d = dominant();
  if (d == nullptr || attributed_ms <= 0.0) return "no attributed time";
  const bool queueing = dominant_is_queueing();
  const double mode_ms = queueing ? d->queueing_ms : d->service_ms;
  const double pct = 100.0 * mode_ms / attributed_ms;
  std::ostringstream out;
  out << Fmt(pct, 0) << "% ";
  if (d->resource == BottleneckResource::kNet) {
    out << "network";
  } else if (d->resource == BottleneckResource::kStall) {
    out << "fault-stall";
  } else {
    if (num_clients >= 0 && d->site != kUnboundSite) {
      out << (d->site < num_clients ? "client " : "server ");
    }
    out << ToString(d->resource);
  }
  out << (queueing ? " queueing" : " service");
  if (d->site != kUnboundSite) out << " at site " << d->site;
  out << " (" << Fmt(mode_ms, 0) << " of " << Fmt(attributed_ms, 0)
      << " ms attributed)";
  return out.str();
}

std::vector<SiteId> OperatorSites(const Plan& plan) {
  std::vector<SiteId> sites;
  plan.ForEach([&](const PlanNode& node) { sites.push_back(node.bound_site); });
  return sites;
}

BottleneckReport BuildBottleneck(const std::vector<SiteId>& op_sites,
                                 const ExecMetrics& metrics) {
  DIMSUM_CHECK_EQ(op_sites.size(), metrics.operator_actuals.size())
      << "op_sites must align with operator_actuals (same bound plan, "
         "collect_operator_actuals set)";
  std::vector<std::pair<std::pair<BottleneckResource, SiteId>, double>>
      elapsed;
  AccumulateActuals(op_sites, metrics.operator_actuals, &elapsed);
  return FinishReport(std::move(elapsed), metrics.cpu_busy_ms,
                      metrics.disk_busy_ms, metrics.network_busy_ms,
                      metrics.response_ms, /*queries=*/1);
}

void BottleneckAccumulator::Accumulate(Key key, double ms) {
  if (ms <= 0.0) return;
  auto it = std::lower_bound(
      elapsed_.begin(), elapsed_.end(), key,
      [](const std::pair<Key, double>& entry, const Key& k) {
        return entry.first < k;
      });
  if (it != elapsed_.end() && !(key < it->first)) {
    it->second += ms;
    return;
  }
  elapsed_.insert(it, {key, ms});
}

void BottleneckAccumulator::Add(const std::vector<SiteId>& op_sites,
                                const ExecMetrics& metrics) {
  // Misaligned actuals (e.g. the query ran a recovery re-planned tree, or
  // actuals were not collected) cannot be attributed; skip the query.
  if (metrics.operator_actuals.empty() ||
      metrics.operator_actuals.size() != op_sites.size()) {
    return;
  }
  for (std::size_t i = 0; i < op_sites.size(); ++i) {
    const OperatorActual& a = metrics.operator_actuals[i];
    Accumulate({BottleneckResource::kCpu, op_sites[i]}, a.cpu_ms);
    Accumulate({BottleneckResource::kDisk, op_sites[i]}, a.disk_ms);
    Accumulate({BottleneckResource::kNet, kUnboundSite}, a.net_ms);
    Accumulate({BottleneckResource::kStall, kUnboundSite}, a.stall_ms);
  }
  ++queries_;
}

BottleneckReport BottleneckAccumulator::Finish(const BatchTotals& totals,
                                               double window_ms) const {
  std::vector<std::pair<std::pair<BottleneckResource, SiteId>, double>>
      elapsed;
  elapsed.reserve(elapsed_.size());
  for (const auto& [key, ms] : elapsed_) {
    elapsed.emplace_back(std::make_pair(key.resource, key.site), ms);
  }
  BottleneckReport report =
      FinishReport(std::move(elapsed), totals.cpu_busy_ms,
                   totals.disk_busy_ms, totals.network_busy_ms, window_ms,
                   queries_);
  return report;
}

}  // namespace dimsum

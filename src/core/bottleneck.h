#ifndef DIMSUM_CORE_BOTTLENECK_H_
#define DIMSUM_CORE_BOTTLENECK_H_

// Per-query bottleneck attribution: decomposes where a query's response
// time went, by (resource class, site), split into queueing vs service.
//
// The inputs are the per-operator actuals EXPLAIN ANALYZE already collects
// (exec/metrics.h): each operator's elapsed virtual time awaiting the CPU,
// disks, and network *includes* queueing behind other users of the
// resource. Summing those elapsed times per (resource, site) bucket gives
// the demand placed on each bucket; the resource's independently-reported
// busy time bounds the service share, and the excess is queueing. Elapsed
// times of concurrent operators overlap, so bucket sums can exceed the
// wall response time -- shares are reported against the attributed total,
// not the wall clock.

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "exec/executor.h"
#include "exec/metrics.h"
#include "plan/plan.h"

namespace dimsum {

enum class BottleneckResource { kCpu, kDisk, kNet, kStall };

/// "cpu", "disk", "net", or "stall".
const char* ToString(BottleneckResource resource);

/// One (resource, site) attribution bucket. `site` is kUnboundSite for the
/// shared network link and for fault stalls.
struct BottleneckBucket {
  BottleneckResource resource = BottleneckResource::kCpu;
  SiteId site = kUnboundSite;
  /// Summed operator elapsed time awaiting this bucket, ms.
  double elapsed_ms = 0.0;
  /// Share of elapsed covered by the resource's busy time (service).
  double service_ms = 0.0;
  /// elapsed - service: time spent queued behind other users (or, within
  /// one query, behind its own concurrent operators).
  double queueing_ms = 0.0;
  /// elapsed / the report's attributed total.
  double share = 0.0;
};

/// Bottleneck decomposition of one query (or one run, via the
/// accumulator). Buckets are sorted by decreasing elapsed time; the first
/// is the dominant (resource, site, queueing-vs-service) triple.
struct BottleneckReport {
  /// Wall response of the query (or window of the run), ms.
  double response_ms = 0.0;
  /// Sum of all buckets' elapsed time, ms.
  double attributed_ms = 0.0;
  /// Queries folded in (1 for a per-query report).
  int queries = 0;
  std::vector<BottleneckBucket> buckets;

  bool empty() const { return buckets.empty(); }
  /// Largest bucket (null when empty).
  const BottleneckBucket* dominant() const {
    return buckets.empty() ? nullptr : &buckets.front();
  }
  /// Whether the dominant bucket is mostly queueing.
  bool dominant_is_queueing() const {
    const BottleneckBucket* d = dominant();
    return d != nullptr && d->queueing_ms > d->service_ms;
  }
  /// One line naming the dominant triple with numbers, e.g.
  ///   "71% server disk queueing at site 1 (8123 of 11432 ms attributed)".
  /// `num_clients` >= 0 labels sites client/server; negative omits the
  /// role. Empty reports yield "no attributed time".
  std::string Summary(int num_clients = -1) const;
};

/// Per-operator bound sites of `plan` in pre-order (index == op_id), the
/// order operator_actuals uses.
std::vector<SiteId> OperatorSites(const Plan& plan);

/// Builds the per-query report. `op_sites` must align with
/// `metrics.operator_actuals` (run with collect_operator_actuals on the
/// same bound plan). The queueing/service split uses the per-site busy
/// maps in `metrics` when present (single-query runs populate them); when
/// absent the full elapsed time is conservatively reported as service.
BottleneckReport BuildBottleneck(const std::vector<SiteId>& op_sites,
                                 const ExecMetrics& metrics);

/// Folds many queries of one shared run into a run-level report, splitting
/// queueing vs service against the run's BatchTotals. Queries whose
/// actuals are missing or misaligned with their op_sites (e.g. recovery
/// re-planned them) are skipped.
class BottleneckAccumulator {
 public:
  void Add(const std::vector<SiteId>& op_sites, const ExecMetrics& metrics);
  int queries() const { return queries_; }
  /// `totals` are the run's shared resource totals; `window_ms` the run's
  /// makespan (becomes response_ms of the report).
  BottleneckReport Finish(const BatchTotals& totals, double window_ms) const;

 private:
  struct Key {
    BottleneckResource resource;
    SiteId site;
    bool operator<(const Key& o) const {
      return resource != o.resource ? resource < o.resource : site < o.site;
    }
  };
  std::vector<std::pair<Key, double>> elapsed_;  // sorted by Key
  int queries_ = 0;

  void Accumulate(Key key, double ms);
};

}  // namespace dimsum

#endif  // DIMSUM_CORE_BOTTLENECK_H_

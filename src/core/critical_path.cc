#include "core/critical_path.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/check.h"

namespace dimsum {
namespace {

/// Time comparisons tolerate double accumulation noise well below any
/// simulated duration (instruction times are ~1e-5 ms).
constexpr double kEps = 1e-9;

PathKind ToPathKind(sim::SpanKind kind) {
  switch (kind) {
    case sim::SpanKind::kCpu:
      return PathKind::kCpu;
    case sim::SpanKind::kDisk:
      return PathKind::kDisk;
    case sim::SpanKind::kNet:
      return PathKind::kNet;
    case sim::SpanKind::kMemory:
      return PathKind::kMemory;
    case sim::SpanKind::kFaultStall:
      return PathKind::kFaultStall;
    case sim::SpanKind::kChannel:
      break;  // causal edge, never a segment kind
  }
  DIMSUM_UNREACHABLE() << "channel spans are hops, not segments";
}

/// Accumulates folded segments keyed by (kind, queueing, site).
class SegmentFold {
 public:
  void Add(PathKind kind, bool queueing, SiteId site, double ms) {
    if (ms <= 0.0) return;
    folded_[std::make_tuple(static_cast<int>(kind), queueing, site)] += ms;
  }

  std::vector<PathSegment> Finish() const {
    std::vector<PathSegment> segments;
    segments.reserve(folded_.size());
    for (const auto& [key, ms] : folded_) {
      segments.push_back(PathSegment{static_cast<PathKind>(std::get<0>(key)),
                                     std::get<1>(key), std::get<2>(key), ms});
    }
    return segments;
  }

 private:
  // Ordered map: segment output order is deterministic by construction.
  std::map<std::tuple<int, bool, SiteId>, double> folded_;
};

}  // namespace

const char* PathKindName(PathKind kind) {
  switch (kind) {
    case PathKind::kCpu:
      return "cpu";
    case PathKind::kDisk:
      return "disk";
    case PathKind::kNet:
      return "net";
    case PathKind::kMemory:
      return "memory";
    case PathKind::kFaultStall:
      return "fault";
    case PathKind::kAdmission:
      return "admission";
    case PathKind::kUntracked:
      return "untracked";
  }
  DIMSUM_UNREACHABLE();
}

std::string PathSegment::Label() const {
  std::string label = PathKindName(kind);
  if (kind == PathKind::kCpu || kind == PathKind::kDisk ||
      kind == PathKind::kNet) {
    label += queueing ? ".queueing" : ".service";
  }
  if (site != kUnboundSite) label += "@" + std::to_string(site);
  return label;
}

double CriticalPath::SumMs() const {
  double sum = 0.0;
  for (const PathSegment& segment : segments) sum += segment.ms;
  return sum;
}

CriticalPath ExtractCriticalPath(const sim::QuerySpans& spans) {
  CriticalPath path;
  path.total_ms = spans.complete_ms - spans.start_ms;
  SegmentFold fold;

  const std::vector<std::vector<const sim::Span*>> by_op = SpansByOp(spans);
  // Backward cursor per timeline: the walk's time never increases, so a
  // span skipped once (begin >= cursor) can never become a candidate.
  std::vector<size_t> next(by_op.size());
  for (size_t op = 0; op < by_op.size(); ++op) next[op] = by_op[op].size();

  auto untracked = [&](double from, double to) {
    fold.Add(PathKind::kUntracked, false, kUnboundSite, to - from);
    path.untracked_ms += std::max(0.0, to - from);
  };

  double t = spans.complete_ms;
  int op = spans.root_op;
  // Zero-progress hop backstop: the wait-for graph at a fixed instant is
  // acyclic, so consecutive channel hops are bounded by the timeline
  // count; anything past that indicates corrupt peer edges.
  const int max_hops = static_cast<int>(by_op.size()) + 1;
  int hops = 0;
  while (t > spans.start_ms + kEps) {
    if (op < 0 || op >= static_cast<int>(by_op.size())) {
      untracked(spans.start_ms, t);
      break;
    }
    const std::vector<const sim::Span*>& timeline = by_op[op];
    size_t j = next[op];
    while (j > 0 && timeline[j - 1]->begin_ms >= t - kEps) --j;
    next[op] = j;
    if (j == 0) {
      // Nothing recorded on this timeline before t.
      untracked(spans.start_ms, t);
      break;
    }
    const sim::Span& span = *timeline[j - 1];
    if (span.end_ms < t - kEps) {
      // Gap between the cursor and the last recorded activity.
      untracked(span.end_ms, t);
      t = span.end_ms;
      continue;
    }
    if (span.kind == sim::SpanKind::kChannel) {
      if (span.peer_op < 0 || ++hops > max_hops) {
        untracked(span.begin_ms, t);
        t = span.begin_ms;
        hops = 0;
        continue;
      }
      op = span.peer_op;  // blocked on the peer: continue on its timeline
      continue;
    }
    hops = 0;
    const double begin = std::max(span.begin_ms, spans.start_ms);
    const double window = t - begin;
    const double service = std::min(span.service_ms, window);
    const PathKind kind = ToPathKind(span.kind);
    if (kind == PathKind::kCpu || kind == PathKind::kDisk ||
        kind == PathKind::kNet) {
      fold.Add(kind, /*queueing=*/false, span.site, service);
      fold.Add(kind, /*queueing=*/true, span.site, window - service);
    } else {
      // Memory waits are queueing by definition; fault stalls are their
      // own class.
      fold.Add(kind, kind == PathKind::kMemory, span.site, window);
    }
    t = begin;
  }

  path.segments = fold.Finish();
  return path;
}

bool ReconcilesWithActuals(const CriticalPath& path, const ExecMetrics& metrics,
                           double tol_ms) {
  if (metrics.operator_actuals.empty()) return true;
  double cpu = 0.0, disk = 0.0, net = 0.0, fault = 0.0;
  for (const PathSegment& segment : path.segments) {
    switch (segment.kind) {
      case PathKind::kCpu:
        cpu += segment.ms;
        break;
      case PathKind::kDisk:
        disk += segment.ms;
        break;
      case PathKind::kNet:
        net += segment.ms;
        break;
      case PathKind::kFaultStall:
        fault += segment.ms;
        break;
      case PathKind::kMemory:
      case PathKind::kAdmission:
      case PathKind::kUntracked:
        break;  // no aggregate counterpart
    }
  }
  double cpu_elapsed = 0.0, disk_elapsed = 0.0, net_elapsed = 0.0;
  for (const OperatorActual& actual : metrics.operator_actuals) {
    cpu_elapsed += actual.cpu_ms;
    disk_elapsed += actual.disk_ms;
    net_elapsed += actual.net_ms;
  }
  return cpu <= cpu_elapsed + tol_ms && disk <= disk_elapsed + tol_ms &&
         net <= net_elapsed + tol_ms && fault <= metrics.fault_stall_ms + tol_ms;
}

}  // namespace dimsum

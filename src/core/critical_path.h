#ifndef DIMSUM_CORE_CRITICAL_PATH_H_
#define DIMSUM_CORE_CRITICAL_PATH_H_

// Per-query critical-path extraction over the causal span sets captured by
// the executor (SystemConfig::collect_spans; sim/span.h).
//
// The walk starts at the query's completion instant on the display
// timeline and moves backward in virtual time. At each step the span
// covering the cursor explains the interval back to its begin: resource
// spans split into a service tail (the request occupied the resource) and
// a queueing head (it waited behind other users); memory-acquisition and
// fault-stall spans count whole; channel-wait spans are causal edges -- the
// blocked operator was waiting for its peer, so the walk hops to the
// peer's timeline at the same instant and continues there (the wait-for
// graph at any fixed instant is acyclic: an operator blocks on at most one
// channel end, Put-waits point downstream and Get-waits upstream). Gaps no
// span covers become "untracked" (expected ~0).
//
// By construction the emitted segments tile [start_ms, complete_ms]
// exactly, so their sum equals the response time to floating-point
// accumulation error (tests assert 1e-6). Unlike the aggregate bottleneck
// attribution (core/bottleneck.h), which sums overlapping per-operator
// elapsed times, these segments are disjoint wall-clock intervals -- the
// one chain of waits that determined the response time.

#include <string>
#include <vector>

#include "common/ids.h"
#include "exec/metrics.h"
#include "sim/span.h"

namespace dimsum {

/// Segment classification on the critical path. kAdmission is emitted by
/// the workload layer for open-loop arrival -> submission delay (admission
/// queueing happens before the executor sees the query, so the span walk
/// itself never produces it); kUntracked covers gaps.
enum class PathKind : uint8_t {
  kCpu = 0,
  kDisk,
  kNet,
  kMemory,
  kFaultStall,
  kAdmission,
  kUntracked,
};

/// "cpu", "disk", "net", "memory", "fault", "admission", or "untracked".
const char* PathKindName(PathKind kind);

/// One folded (kind, queueing-vs-service, site) bucket of critical-path
/// time. `site` is kUnboundSite for the shared link, untracked gaps, and
/// admission delay. Memory, fault, admission, and untracked segments are
/// never split, so they carry queueing = true, true, true, false
/// respectively.
struct PathSegment {
  PathKind kind = PathKind::kUntracked;
  bool queueing = false;
  SiteId site = kUnboundSite;
  double ms = 0.0;

  /// Stable label, e.g. "disk.queueing@1", "net.service", "untracked".
  std::string Label() const;
};

/// Critical path of one query: disjoint wall-clock segments folded by
/// (kind, queueing, site), sorted by that key (deterministic).
struct CriticalPath {
  /// complete_ms - start_ms of the walked span set.
  double total_ms = 0.0;
  /// Sum of untracked segments (gaps), ms.
  double untracked_ms = 0.0;
  std::vector<PathSegment> segments;

  /// Sum of all segments, ms (== total_ms up to accumulation error).
  double SumMs() const;
};

/// Walks the span set backward from completion and returns the folded
/// critical path. Requires a completed query's spans (complete_ms set).
CriticalPath ExtractCriticalPath(const sim::QuerySpans& spans);

/// Checks the critical path against the same run's aggregate attribution:
/// the path's cpu/disk/net time is a chain of disjoint sub-intervals of
/// operator resource-await windows, so per resource class it can never
/// exceed the summed per-operator elapsed time EXPLAIN ANALYZE collects
/// (exec/metrics.h), and its fault segments can never exceed the query's
/// fault_stall_ms. `tol_ms` absorbs accumulation error. Vacuously true
/// when the metrics carry no operator actuals.
bool ReconcilesWithActuals(const CriticalPath& path, const ExecMetrics& metrics,
                           double tol_ms = 1e-6);

}  // namespace dimsum

#endif  // DIMSUM_CORE_CRITICAL_PATH_H_

#include "core/experiment.h"

namespace dimsum {

RunningStat Replicate(const std::function<double(uint64_t)>& trial,
                      const ReplicationOptions& options, uint64_t base_seed) {
  RunningStat stat;
  for (int i = 0; i < options.max_replications; ++i) {
    stat.Add(trial(base_seed + static_cast<uint64_t>(i)));
    if (i + 1 >= options.min_replications &&
        stat.WithinRelativeError(options.relative_error)) {
      break;
    }
  }
  return stat;
}

}  // namespace dimsum

#include "core/experiment.h"

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"

namespace dimsum {

RunningStat Replicate(const std::function<double(uint64_t)>& trial,
                      const ReplicationOptions& options, uint64_t base_seed) {
  RunningStat stat;
  ThreadPool& pool = GlobalThreadPool();
  int completed = 0;  // trials folded into `stat`, in seed order
  while (completed < options.max_replications) {
    // The sequential rule cannot stop before min_replications, so the
    // first batch runs them all; later batches speculate one seed per
    // worker. Batch sizing affects only wasted speculation, never the
    // result: folds happen in seed order and stop exactly where the
    // sequential loop would.
    const int want = completed == 0 ? std::max(1, options.min_replications)
                                    : std::max(1, pool.thread_count());
    const int batch = std::min(want, options.max_replications - completed);
    std::vector<double> values(static_cast<std::size_t>(batch));
    pool.ParallelFor(batch, [&](int j) {
      values[static_cast<std::size_t>(j)] =
          trial(base_seed + static_cast<uint64_t>(completed + j));
    });
    for (int j = 0; j < batch; ++j) {
      stat.Add(values[static_cast<std::size_t>(j)]);
      ++completed;
      if (completed >= options.min_replications &&
          stat.WithinRelativeError(options.relative_error)) {
        return stat;  // remaining speculative trials in `values` discarded
      }
    }
  }
  return stat;
}

}  // namespace dimsum

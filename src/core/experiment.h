#ifndef DIMSUM_CORE_EXPERIMENT_H_
#define DIMSUM_CORE_EXPERIMENT_H_

#include <cstdint>
#include <functional>

#include "common/stats.h"

namespace dimsum {

/// Replication control, mirroring the paper's methodology: "experiments
/// were executed repeatedly so that the 90% confidence intervals for all
/// results were within 5%".
struct ReplicationOptions {
  int min_replications = 3;
  int max_replications = 24;
  double relative_error = 0.05;  // CI half-width / mean
};

/// Runs `trial(seed)` with seeds base_seed, base_seed+1, ... until the 90%
/// confidence interval is within the requested relative error (or the
/// replication cap is reached) and returns the accumulated statistics.
///
/// Trials run concurrently on the global thread pool (DIMSUM_THREADS) in
/// deterministic speculative batches: a batch of consecutive seeds runs in
/// parallel, results are folded into the statistics in seed order, and the
/// stopping rule is re-checked after each fold — so the returned stats are
/// bit-identical to a strictly sequential run at any thread count. A trial
/// launched speculatively but past the sequential stopping point is
/// discarded. `trial` must therefore be a pure, thread-safe function of
/// its seed.
RunningStat Replicate(const std::function<double(uint64_t)>& trial,
                      const ReplicationOptions& options = {},
                      uint64_t base_seed = 1);

}  // namespace dimsum

#endif  // DIMSUM_CORE_EXPERIMENT_H_

#ifndef DIMSUM_CORE_EXPERIMENT_H_
#define DIMSUM_CORE_EXPERIMENT_H_

#include <cstdint>
#include <functional>

#include "common/stats.h"

namespace dimsum {

/// Replication control, mirroring the paper's methodology: "experiments
/// were executed repeatedly so that the 90% confidence intervals for all
/// results were within 5%".
struct ReplicationOptions {
  int min_replications = 3;
  int max_replications = 24;
  double relative_error = 0.05;  // CI half-width / mean
};

/// Runs `trial(seed)` with seeds base_seed, base_seed+1, ... until the 90%
/// confidence interval is within the requested relative error (or the
/// replication cap is reached) and returns the accumulated statistics.
RunningStat Replicate(const std::function<double(uint64_t)>& trial,
                      const ReplicationOptions& options = {},
                      uint64_t base_seed = 1);

}  // namespace dimsum

#endif  // DIMSUM_CORE_EXPERIMENT_H_

#include "core/report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace dimsum {

void ReportTable::AddRow(std::vector<std::string> cells) {
  DIMSUM_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void ReportTable::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string FmtCi(double mean, double ci, int precision) {
  std::ostringstream out;
  out << Fmt(mean, precision) << " +-" << Fmt(ci, precision);
  return out.str();
}

}  // namespace dimsum

#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/check.h"
#include "common/json.h"
#include "plan/annotation.h"
#include "plan/printer.h"

namespace dimsum {

void ReportTable::AddRow(std::vector<std::string> cells) {
  DIMSUM_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void ReportTable::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string FmtCi(double mean, double ci, int precision) {
  std::ostringstream out;
  out << Fmt(mean, precision) << " +-" << Fmt(ci, precision);
  return out.str();
}

// --- EXPLAIN ANALYZE ------------------------------------------------------

namespace {

constexpr double kErrEps = 1e-6;  // ms below which a resource counts as idle

std::string OpLabel(const OperatorEstimate& est) {
  std::ostringstream out;
  out << ToString(est.type);
  if (est.relation != kInvalidRelation) out << " R" << est.relation;
  if (est.site != kUnboundSite) out << " @" << est.site;
  return out.str();
}

std::string Pct(double err) { return Fmt(err * 100.0, 1) + "%"; }

ExplainQuantiles Quantiles(const Histogram& hist) {
  ExplainQuantiles q;
  q.count = hist.count();
  q.p50 = hist.Quantile(0.50);
  q.p90 = hist.Quantile(0.90);
  q.p99 = hist.Quantile(0.99);
  return q;
}

void WriteQuantilesJson(const ExplainQuantiles& q, std::ostream& out) {
  out << "{\"count\":" << q.count << ",\"p50\":";
  JsonWriteNumber(out, q.p50);
  out << ",\"p90\":";
  JsonWriteNumber(out, q.p90);
  out << ",\"p99\":";
  JsonWriteNumber(out, q.p99);
  out << "}";
}

}  // namespace

std::optional<ExplainMode> ParseExplainMode(const std::string& value) {
  if (value.empty() || value == "1" || value == "text") {
    return ExplainMode::kText;
  }
  if (value == "json") return ExplainMode::kJson;
  if (value == "0" || value == "off") return ExplainMode::kOff;
  return std::nullopt;
}

double ExplainRelErr(double est, double act) {
  const double denom = std::max({est, act, kErrEps});
  if (est < kErrEps && act < kErrEps) return 0.0;
  return (est - act) / denom;
}

ExplainReport BuildExplainReport(const PlanEstimate& est,
                                 const ExecMetrics& actual) {
  DIMSUM_CHECK_EQ(actual.operator_actuals.size(), est.ops.size())
      << "explain: run with SystemConfig::collect_operator_actuals on the "
         "same bound plan that was costed";
  ExplainReport report;
  report.est_response_ms = est.response_ms;
  report.act_response_ms = actual.response_ms;
  report.response_err =
      ExplainRelErr(report.est_response_ms, report.act_response_ms);

  double act_total = actual.network_busy_ms;
  for (const auto& [site, ms] : actual.cpu_busy_ms) act_total += ms;
  for (const auto& [site, ms] : actual.disk_busy_ms) act_total += ms;
  report.est_total_ms = est.total_ms;
  report.act_total_ms = act_total;
  report.total_err = ExplainRelErr(report.est_total_ms, report.act_total_ms);
  report.est_net_ms = est.net_ms;
  report.act_net_ms = actual.network_busy_ms;

  report.ops.reserve(est.ops.size());
  double err_sum = 0.0;
  int err_count = 0;
  for (size_t i = 0; i < est.ops.size(); ++i) {
    ExplainOp op;
    op.est = est.ops[i];
    op.act = actual.operator_actuals[i];
    op.label = OpLabel(op.est);
    op.act_total_ms = op.act.cpu_ms + op.act.disk_ms + op.act.net_ms;
    op.err_cpu = ExplainRelErr(op.est.cpu_ms, op.act.cpu_ms);
    op.err_disk = ExplainRelErr(op.est.disk_ms, op.act.disk_ms);
    op.err_net = ExplainRelErr(op.est.net_ms, op.act.net_ms);
    op.err_total = ExplainRelErr(op.est.total_ms(), op.act_total_ms);
    if (op.est.total_ms() >= kErrEps || op.act_total_ms >= kErrEps) {
      err_sum += std::abs(op.err_total);
      report.max_op_err = std::max(report.max_op_err, std::abs(op.err_total));
      ++err_count;
    }
    report.ops.push_back(std::move(op));
  }
  if (err_count > 0) report.mean_op_err = err_sum / err_count;

  report.phases.reserve(est.phases.size());
  for (const PhaseEstimate& phase : est.phases) {
    ExplainPhaseRow row;
    row.id = phase.id;
    row.est_duration_ms = phase.duration_ms;
    row.est_start_ms = phase.start_ms;
    row.est_finish_ms = phase.finish_ms;
    bool any = false;
    double first = 0.0;
    double last = 0.0;
    for (const ExplainOp& op : report.ops) {
      if (op.est.phase != phase.id) continue;
      row.ops.push_back(op.est.op_id);
      if (!any) {
        first = op.act.start_ms;
        last = op.act.end_ms;
        any = true;
      } else {
        first = std::min(first, op.act.start_ms);
        last = std::max(last, op.act.end_ms);
      }
    }
    if (any) row.act_span_ms = std::max(0.0, last - first);
    report.phases.push_back(std::move(row));
  }

  std::map<SiteId, ExplainSiteRow> sites;
  auto site_row = [&sites](SiteId site) -> ExplainSiteRow& {
    ExplainSiteRow& row = sites[site];
    row.site = site;
    return row;
  };
  for (const auto& [site, ms] : est.cpu_ms_by_site) {
    site_row(site).est_cpu_ms = ms;
  }
  for (const auto& [site, ms] : est.disk_ms_by_site) {
    site_row(site).est_disk_ms = ms;
  }
  for (const auto& [site, ms] : actual.cpu_busy_ms) {
    site_row(site).act_cpu_ms = ms;
  }
  for (const auto& [site, ms] : actual.disk_busy_ms) {
    site_row(site).act_disk_ms = ms;
  }
  report.sites.reserve(sites.size());
  for (auto& [site, row] : sites) report.sites.push_back(row);

  report.worst.resize(report.ops.size());
  for (size_t i = 0; i < report.worst.size(); ++i) {
    report.worst[i] = static_cast<int>(i);
  }
  std::sort(report.worst.begin(), report.worst.end(), [&](int a, int b) {
    const double da =
        std::abs(report.ops[a].est.total_ms() - report.ops[a].act_total_ms);
    const double db =
        std::abs(report.ops[b].est.total_ms() - report.ops[b].act_total_ms);
    if (da != db) return da > db;
    return a < b;
  });

  if (actual.disk_service_ms.count() > 0) {
    report.disk_service = Quantiles(actual.disk_service_ms);
  }
  if (actual.net_queue_delay_ms.count() > 0) {
    report.net_queue = Quantiles(actual.net_queue_delay_ms);
  }

  std::vector<SiteId> op_sites;
  op_sites.reserve(est.ops.size());
  for (const OperatorEstimate& op : est.ops) op_sites.push_back(op.site);
  report.bottleneck = BuildBottleneck(op_sites, actual);
  return report;
}

std::string ExplainToText(const ExplainReport& report, const Plan& plan) {
  std::ostringstream out;
  out << "EXPLAIN ANALYZE (virtual ms; err = (est-sim)/max(est,sim))\n";
  out << "  response: est " << Fmt(report.est_response_ms) << "  sim "
      << Fmt(report.act_response_ms) << "  err " << Pct(report.response_err)
      << "\n";
  out << "  total:    est " << Fmt(report.est_total_ms) << "  sim "
      << Fmt(report.act_total_ms) << "  err " << Pct(report.total_err)
      << "\n";
  out << "  per-op |err|: mean " << Pct(report.mean_op_err) << "  max "
      << Pct(report.max_op_err) << "\n";
  out << "  bottleneck: " << report.bottleneck.Summary() << "\n\n";

  out << PlanToString(plan, [&report](const PlanNode&, int id) {
    std::vector<std::string> lines;
    if (id < 0 || static_cast<size_t>(id) >= report.ops.size()) return lines;
    const ExplainOp& op = report.ops[id];
    {
      std::ostringstream line;
      line << "est " << Fmt(op.est.total_ms()) << " ms = cpu "
           << Fmt(op.est.cpu_ms) << " + disk " << Fmt(op.est.disk_ms)
           << " + net " << Fmt(op.est.net_ms) << " | " << op.est.est_pages
           << " pages | phase " << op.est.phase;
      lines.push_back(line.str());
    }
    {
      std::ostringstream line;
      line << "sim " << Fmt(op.act_total_ms) << " ms = cpu "
           << Fmt(op.act.cpu_ms) << " + disk " << Fmt(op.act.disk_ms)
           << " + net " << Fmt(op.act.net_ms) << " | " << op.act.pages_out
           << " pages | err " << Pct(op.err_total);
      if (op.act.stall_ms > 0.0) {
        line << " | stall " << Fmt(op.act.stall_ms) << " ms";
      }
      lines.push_back(line.str());
    }
    return lines;
  });

  out << "\nphases (pipelined):\n";
  for (const ExplainPhaseRow& phase : report.phases) {
    out << "  phase " << phase.id << ": est " << Fmt(phase.est_duration_ms)
        << " ms [" << Fmt(phase.est_start_ms) << " .. "
        << Fmt(phase.est_finish_ms) << "]  sim span "
        << Fmt(phase.act_span_ms) << " ms  ops";
    for (size_t i = 0; i < phase.ops.size(); ++i) {
      out << (i == 0 ? " " : ",") << phase.ops[i];
    }
    out << "\n";
  }

  out << "sites:\n";
  for (const ExplainSiteRow& site : report.sites) {
    out << "  site " << site.site << ": cpu est " << Fmt(site.est_cpu_ms)
        << " sim " << Fmt(site.act_cpu_ms) << " | disk est "
        << Fmt(site.est_disk_ms) << " sim " << Fmt(site.act_disk_ms) << "\n";
  }

  if (!report.bottleneck.empty()) {
    out << "bottleneck (operator elapsed time by resource; service = covered "
           "by busy time, rest queueing):\n";
    for (const BottleneckBucket& bucket : report.bottleneck.buckets) {
      out << "  " << ToString(bucket.resource);
      if (bucket.site != kUnboundSite) out << " @ site " << bucket.site;
      out << ": " << Fmt(bucket.elapsed_ms) << " ms ("
          << Pct(bucket.share) << ") = service " << Fmt(bucket.service_ms)
          << " + queueing " << Fmt(bucket.queueing_ms) << "\n";
    }
  }

  const size_t top = std::min<size_t>(5, report.worst.size());
  if (top > 0) {
    out << "worst-attributed operators:\n";
    for (size_t i = 0; i < top; ++i) {
      const ExplainOp& op = report.ops[report.worst[i]];
      out << "  op " << op.est.op_id << " (" << op.label << "): |est-sim| "
          << Fmt(std::abs(op.est.total_ms() - op.act_total_ms))
          << " ms, err " << Pct(op.err_total) << "\n";
    }
  }

  if (report.disk_service.has_value() || report.net_queue.has_value()) {
    out << "distributions (sim):";
    if (report.disk_service.has_value()) {
      const ExplainQuantiles& q = *report.disk_service;
      out << " disk service p50/p90/p99 = " << Fmt(q.p50) << "/"
          << Fmt(q.p90) << "/" << Fmt(q.p99) << " ms";
    }
    if (report.net_queue.has_value()) {
      const ExplainQuantiles& q = *report.net_queue;
      out << (report.disk_service.has_value() ? ";" : "")
          << " net queue p50/p90/p99 = " << Fmt(q.p50) << "/" << Fmt(q.p90)
          << "/" << Fmt(q.p99) << " ms";
    }
    out << "\n";
  }
  return out.str();
}

void WriteExplainJson(const ExplainReport& report, std::ostream& out) {
  out << "{\"schema\":\"dimsum.explain.v1\"";
  out << ",\"estimated\":{\"response_ms\":";
  JsonWriteNumber(out, report.est_response_ms);
  out << ",\"total_ms\":";
  JsonWriteNumber(out, report.est_total_ms);
  out << ",\"net_ms\":";
  JsonWriteNumber(out, report.est_net_ms);
  out << "}";
  out << ",\"simulated\":{\"response_ms\":";
  JsonWriteNumber(out, report.act_response_ms);
  out << ",\"total_ms\":";
  JsonWriteNumber(out, report.act_total_ms);
  out << ",\"net_ms\":";
  JsonWriteNumber(out, report.act_net_ms);
  out << "}";
  out << ",\"errors\":{\"response\":";
  JsonWriteNumber(out, report.response_err);
  out << ",\"total\":";
  JsonWriteNumber(out, report.total_err);
  out << ",\"mean_op\":";
  JsonWriteNumber(out, report.mean_op_err);
  out << ",\"max_op\":";
  JsonWriteNumber(out, report.max_op_err);
  out << "}";

  out << ",\"operators\":[";
  for (size_t i = 0; i < report.ops.size(); ++i) {
    const ExplainOp& op = report.ops[i];
    if (i > 0) out << ",";
    out << "{\"op_id\":" << op.est.op_id << ",\"label\":\""
        << JsonEscape(op.label) << "\",\"type\":\""
        << JsonEscape(std::string(ToString(op.est.type))) << "\",\"site\":"
        << op.est.site << ",\"phase\":" << op.est.phase;
    out << ",\"est\":{\"tuples\":" << op.est.est_tuples
        << ",\"pages\":" << op.est.est_pages << ",\"cpu_ms\":";
    JsonWriteNumber(out, op.est.cpu_ms);
    out << ",\"disk_ms\":";
    JsonWriteNumber(out, op.est.disk_ms);
    out << ",\"net_ms\":";
    JsonWriteNumber(out, op.est.net_ms);
    out << ",\"chain_ms\":";
    JsonWriteNumber(out, op.est.chain_ms);
    out << ",\"total_ms\":";
    JsonWriteNumber(out, op.est.total_ms());
    out << "}";
    out << ",\"sim\":{\"cpu_ms\":";
    JsonWriteNumber(out, op.act.cpu_ms);
    out << ",\"disk_ms\":";
    JsonWriteNumber(out, op.act.disk_ms);
    out << ",\"net_ms\":";
    JsonWriteNumber(out, op.act.net_ms);
    out << ",\"stall_ms\":";
    JsonWriteNumber(out, op.act.stall_ms);
    out << ",\"start_ms\":";
    JsonWriteNumber(out, op.act.start_ms);
    out << ",\"end_ms\":";
    JsonWriteNumber(out, op.act.end_ms);
    out << ",\"pages_in\":" << op.act.pages_in
        << ",\"pages_out\":" << op.act.pages_out << ",\"total_ms\":";
    JsonWriteNumber(out, op.act_total_ms);
    out << "}";
    out << ",\"err\":{\"cpu\":";
    JsonWriteNumber(out, op.err_cpu);
    out << ",\"disk\":";
    JsonWriteNumber(out, op.err_disk);
    out << ",\"net\":";
    JsonWriteNumber(out, op.err_net);
    out << ",\"total\":";
    JsonWriteNumber(out, op.err_total);
    out << "}}";
  }
  out << "]";

  out << ",\"phases\":[";
  for (size_t i = 0; i < report.phases.size(); ++i) {
    const ExplainPhaseRow& phase = report.phases[i];
    if (i > 0) out << ",";
    out << "{\"id\":" << phase.id << ",\"est_duration_ms\":";
    JsonWriteNumber(out, phase.est_duration_ms);
    out << ",\"est_start_ms\":";
    JsonWriteNumber(out, phase.est_start_ms);
    out << ",\"est_finish_ms\":";
    JsonWriteNumber(out, phase.est_finish_ms);
    out << ",\"sim_span_ms\":";
    JsonWriteNumber(out, phase.act_span_ms);
    out << ",\"ops\":[";
    for (size_t j = 0; j < phase.ops.size(); ++j) {
      if (j > 0) out << ",";
      out << phase.ops[j];
    }
    out << "]}";
  }
  out << "]";

  out << ",\"sites\":[";
  for (size_t i = 0; i < report.sites.size(); ++i) {
    const ExplainSiteRow& site = report.sites[i];
    if (i > 0) out << ",";
    out << "{\"site\":" << site.site << ",\"est_cpu_ms\":";
    JsonWriteNumber(out, site.est_cpu_ms);
    out << ",\"sim_cpu_ms\":";
    JsonWriteNumber(out, site.act_cpu_ms);
    out << ",\"est_disk_ms\":";
    JsonWriteNumber(out, site.est_disk_ms);
    out << ",\"sim_disk_ms\":";
    JsonWriteNumber(out, site.act_disk_ms);
    out << "}";
  }
  out << "]";

  out << ",\"worst\":[";
  const size_t top = std::min<size_t>(5, report.worst.size());
  for (size_t i = 0; i < top; ++i) {
    const ExplainOp& op = report.ops[report.worst[i]];
    if (i > 0) out << ",";
    out << "{\"op_id\":" << op.est.op_id << ",\"label\":\""
        << JsonEscape(op.label) << "\",\"abs_err_ms\":";
    JsonWriteNumber(out, std::abs(op.est.total_ms() - op.act_total_ms));
    out << ",\"err_total\":";
    JsonWriteNumber(out, op.err_total);
    out << "}";
  }
  out << "]";

  out << ",\"bottleneck\":{\"summary\":\""
      << JsonEscape(report.bottleneck.Summary()) << "\",\"response_ms\":";
  JsonWriteNumber(out, report.bottleneck.response_ms);
  out << ",\"attributed_ms\":";
  JsonWriteNumber(out, report.bottleneck.attributed_ms);
  out << ",\"buckets\":[";
  for (size_t i = 0; i < report.bottleneck.buckets.size(); ++i) {
    const BottleneckBucket& bucket = report.bottleneck.buckets[i];
    if (i > 0) out << ",";
    out << "{\"resource\":\"" << ToString(bucket.resource)
        << "\",\"site\":" << bucket.site << ",\"elapsed_ms\":";
    JsonWriteNumber(out, bucket.elapsed_ms);
    out << ",\"service_ms\":";
    JsonWriteNumber(out, bucket.service_ms);
    out << ",\"queueing_ms\":";
    JsonWriteNumber(out, bucket.queueing_ms);
    out << ",\"share\":";
    JsonWriteNumber(out, bucket.share);
    out << "}";
  }
  out << "]}";

  if (report.disk_service.has_value() || report.net_queue.has_value()) {
    out << ",\"distributions\":{";
    bool first = true;
    if (report.disk_service.has_value()) {
      out << "\"disk_service_ms\":";
      WriteQuantilesJson(*report.disk_service, out);
      first = false;
    }
    if (report.net_queue.has_value()) {
      if (!first) out << ",";
      out << "\"net_queue_delay_ms\":";
      WriteQuantilesJson(*report.net_queue, out);
    }
    out << "}";
  }
  out << "}\n";
}

}  // namespace dimsum

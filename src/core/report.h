#ifndef DIMSUM_CORE_REPORT_H_
#define DIMSUM_CORE_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

namespace dimsum {

/// Minimal aligned-column table writer for the benchmark harnesses that
/// regenerate the paper's figures as text series.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string Fmt(double value, int precision = 2);

/// Formats "mean +- ci" for a measurement.
std::string FmtCi(double mean, double ci, int precision = 2);

}  // namespace dimsum

#endif  // DIMSUM_CORE_REPORT_H_

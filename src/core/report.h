#ifndef DIMSUM_CORE_REPORT_H_
#define DIMSUM_CORE_REPORT_H_

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/bottleneck.h"
#include "cost/explain.h"
#include "exec/metrics.h"
#include "plan/plan.h"

namespace dimsum {

/// Minimal aligned-column table writer for the benchmark harnesses that
/// regenerate the paper's figures as text series.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string Fmt(double value, int precision = 2);

/// Formats "mean +- ci" for a measurement.
std::string FmtCi(double mean, double ci, int precision = 2);

// --- EXPLAIN ANALYZE ------------------------------------------------------
//
// Joins the estimate-side records the GHK92 cost model captures while
// costing a plan (cost/explain.h) with the per-operator actuals the
// executor measures while simulating it (exec/metrics.h) into one
// estimated-vs-simulated attribution report, rendered as an annotated plan
// tree or a stable JSON document ("dimsum.explain.v1").

enum class ExplainMode { kOff, kText, kJson };

/// Parses an --explain / DIMSUM_EXPLAIN value: "", "1", and "text" select
/// text; "json" selects JSON; "0" and "off" disable. Anything else returns
/// nullopt so callers can reject it.
std::optional<ExplainMode> ParseExplainMode(const std::string& value);

/// Symmetric bounded relative error: (est - act) / max(est, act, eps).
/// Always finite and in [-1, 1]; positive means the model over-estimated.
/// Returns 0 when both sides are negligible, so idle resources do not
/// register as 100% error.
double ExplainRelErr(double est, double act);

/// One operator's joined estimate-vs-simulation row.
struct ExplainOp {
  OperatorEstimate est;
  OperatorActual act;
  std::string label;          ///< e.g. "join @2", "scan R3 @1"
  double act_total_ms = 0.0;  ///< act.cpu_ms + act.disk_ms + act.net_ms
  double err_cpu = 0.0;       ///< ExplainRelErr per resource class
  double err_disk = 0.0;
  double err_net = 0.0;
  double err_total = 0.0;
};

/// One pipelined phase with its predicted schedule and the measured span
/// of its member operators (first process start to last finish).
struct ExplainPhaseRow {
  int id = -1;
  double est_duration_ms = 0.0;
  double est_start_ms = 0.0;
  double est_finish_ms = 0.0;
  double act_span_ms = 0.0;
  std::vector<int> ops;  ///< member op ids, ascending
};

/// Per-site roll-up: estimated demand vs simulated busy time.
struct ExplainSiteRow {
  SiteId site = kUnboundSite;
  double est_cpu_ms = 0.0;
  double act_cpu_ms = 0.0;
  double est_disk_ms = 0.0;  ///< pre-interference demand
  double act_disk_ms = 0.0;
};

/// Simulated service-time quantiles (from the optional histograms).
struct ExplainQuantiles {
  int64_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Full estimate-vs-simulation report for one executed plan.
struct ExplainReport {
  double est_response_ms = 0.0;
  double act_response_ms = 0.0;
  double response_err = 0.0;
  double est_total_ms = 0.0;  ///< ML86-style total cost estimate
  double act_total_ms = 0.0;  ///< sum of simulated cpu + disk + net busy
  double total_err = 0.0;
  double est_net_ms = 0.0;  ///< estimated total wire time
  double act_net_ms = 0.0;  ///< simulated network busy time
  /// Mean / max |err_total| over operators where either side is non-zero.
  double mean_op_err = 0.0;
  double max_op_err = 0.0;
  std::vector<ExplainOp> ops;  ///< pre-order, index == op_id
  std::vector<ExplainPhaseRow> phases;
  std::vector<ExplainSiteRow> sites;
  /// Every op id ordered by decreasing |est - act| total ms; renderers
  /// show the top few.
  std::vector<int> worst;
  /// Present when the run collected histograms.
  std::optional<ExplainQuantiles> disk_service;
  std::optional<ExplainQuantiles> net_queue;
  /// Where the response time went: per-(resource, site) critical-path
  /// decomposition with a queueing-vs-service split (core/bottleneck.h).
  BottleneckReport bottleneck;
};

/// Joins the two sides. `actual.operator_actuals` must have one record per
/// estimate op (run with SystemConfig::collect_operator_actuals set on the
/// same bound plan that was costed).
ExplainReport BuildExplainReport(const PlanEstimate& est,
                                 const ExecMetrics& actual);

/// Renders the report as an annotated plan tree (est/sim line pair under
/// each operator) followed by phase, site, and worst-operator roll-ups.
/// `plan` must be the plan the report was built from.
std::string ExplainToText(const ExplainReport& report, const Plan& plan);

/// Writes the report as one JSON object with schema "dimsum.explain.v1".
/// Layout:
///   {"schema":"dimsum.explain.v1",
///    "estimated":{"response_ms","total_ms","net_ms"},
///    "simulated":{"response_ms","total_ms"},
///    "errors":{"response","total","mean_op","max_op"},
///    "operators":[{"op_id","label","type","site","phase",
///                  "est":{"tuples","pages","cpu_ms","disk_ms","net_ms",
///                         "chain_ms","total_ms"},
///                  "sim":{"cpu_ms","disk_ms","net_ms","stall_ms",
///                         "start_ms","end_ms","pages_in","pages_out",
///                         "total_ms"},
///                  "err":{"cpu","disk","net","total"}}, ...],
///    "phases":[{"id","est_duration_ms","est_start_ms","est_finish_ms",
///               "sim_span_ms","ops":[..]}, ...],
///    "sites":[{"site","est_cpu_ms","sim_cpu_ms","est_disk_ms",
///              "sim_disk_ms"}, ...],
///    "worst":[{"op_id","label","abs_err_ms","err_total"}, ...],
///    "bottleneck":{"summary","attributed_ms","response_ms",
///                  "buckets":[{"resource","site","elapsed_ms",
///                              "service_ms","queueing_ms","share"},...]},
///    "distributions":{...}}   // only when histograms were collected
/// All errors are finite (ExplainRelErr); numbers NaN/inf-safe via
/// JsonWriteNumber.
void WriteExplainJson(const ExplainReport& report, std::ostream& out);

}  // namespace dimsum

#endif  // DIMSUM_CORE_REPORT_H_

#include "core/result_cache.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "cost/cardinality.h"
#include "plan/binding.h"
#include "sim/disk.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace dimsum {

std::string ResultCache::Signature(const QueryGraph& query) {
  std::ostringstream out;
  std::vector<RelationId> relations = query.relations;
  std::sort(relations.begin(), relations.end());
  out << "R:";
  for (RelationId id : relations) out << id << ",";
  std::vector<std::pair<RelationId, RelationId>> edges = query.edges;
  for (auto& [a, b] : edges) {
    if (a > b) std::swap(a, b);
  }
  std::sort(edges.begin(), edges.end());
  out << "E:";
  for (const auto& [a, b] : edges) out << a << "-" << b << ",";
  out << "S:" << query.selectivity_factor << ";";
  for (double s : query.scan_selectivities) out << s << ",";
  return out.str();
}

bool ResultCache::Lookup(const QueryGraph& query) {
  auto it = index_.find(Signature(query));
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void ResultCache::Insert(const QueryGraph& query, int64_t pages) {
  DIMSUM_CHECK_GE(pages, 0);
  if (pages > capacity_pages_) return;  // not admitted
  const std::string signature = Signature(query);
  auto it = index_.find(signature);
  if (it != index_.end()) {
    used_pages_ -= it->second->pages;
    lru_.erase(it->second);
    index_.erase(it);
  }
  used_pages_ += pages;
  lru_.push_front(Entry{signature, pages});
  index_[signature] = lru_.begin();
  Evict();
}

void ResultCache::Evict() {
  while (used_pages_ > capacity_pages_) {
    DIMSUM_CHECK(!lru_.empty());
    used_pages_ -= lru_.back().pages;
    index_.erase(lru_.back().signature);
    lru_.pop_back();
  }
}

namespace {

sim::Process ReadResult(sim::Disk& disk, sim::Resource& cpu, int64_t pages,
                        double cpu_per_page, double display_per_page) {
  for (int64_t i = 0; i < pages; ++i) {
    co_await cpu.Use(cpu_per_page);
    co_await disk.Read(i);
    co_await cpu.Use(display_per_page);
  }
}

}  // namespace

double CachingSession::ServeFromCache(int64_t pages, int64_t tuples) const {
  const CostParams& params = system_.config().params;
  sim::Simulator sim;
  sim::Disk disk(sim, "client-cache", system_.config().disk_params);
  sim::Resource cpu(sim, "client-cpu", params.CpuTimeFactor(kClientSite));
  const double display_per_page =
      pages > 0 ? params.InstrMs(params.display_inst) *
                      static_cast<double>(tuples) / static_cast<double>(pages)
                : 0.0;
  sim.Spawn(
      ReadResult(disk, cpu, pages, params.DiskCpuMs(), display_per_page));
  sim.Run();
  return sim.now();
}

CachingSession::Outcome CachingSession::Run(const QueryGraph& query,
                                            ShippingPolicy policy,
                                            OptimizeMetric metric,
                                            uint64_t seed,
                                            const OptimizerConfig* opt) {
  Outcome outcome;
  if (cache_.Lookup(query)) {
    // Answer from the client's cached result: no optimization, no servers,
    // no communication ("light-weight interaction"). Size the result from
    // a trivial left-deep plan (cardinalities are plan-shape independent
    // for connected orders).
    std::unique_ptr<PlanNode> tree =
        MakeScan(query.relations.front(), SiteAnnotation::kClient);
    for (size_t i = 1; i < query.relations.size(); ++i) {
      tree = MakeJoin(std::move(tree),
                      MakeScan(query.relations[i], SiteAnnotation::kClient),
                      SiteAnnotation::kConsumer);
    }
    Plan sizing(MakeDisplay(std::move(tree)));
    PlanStats stats = ComputeStats(sizing, system_.catalog(), query,
                                   system_.config().params);
    const StreamStats& result = stats.at(sizing.root());
    outcome.cache_hit = true;
    outcome.response_ms = ServeFromCache(result.pages, result.tuples);
    outcome.data_pages_sent = 0;
    return outcome;
  }
  auto run = system_.Run(query, policy, metric, seed, opt);
  outcome.cache_hit = false;
  outcome.response_ms = run.execute.response_ms;
  outcome.data_pages_sent = run.execute.data_pages_sent;
  // Cache the result for future matching queries.
  PlanStats stats = ComputeStats(run.optimize.plan, system_.catalog(), query,
                                 system_.config().params);
  cache_.Insert(query, stats.at(run.optimize.plan.root()).pages);
  return outcome;
}

}  // namespace dimsum

#ifndef DIMSUM_CORE_RESULT_CACHE_H_
#define DIMSUM_CORE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "core/system.h"
#include "plan/query.h"

namespace dimsum {

/// ADMS-style client-side query-result cache (paper Section 6: "ADMS is an
/// example of a system that uses an extended query-shipping architecture:
/// query results are cached at clients, and a query can be answered at the
/// client if it matches the cached results of a previous query; if it does
/// not match, the query is executed at the servers").
///
/// Results are identified by a canonical signature of the query graph and
/// evicted LRU by page count.
class ResultCache {
 public:
  explicit ResultCache(int64_t capacity_pages)
      : capacity_pages_(capacity_pages) {}

  /// Canonical signature of a query (relations, predicates, selectivities).
  static std::string Signature(const QueryGraph& query);

  /// True if the query's result is cached (refreshes LRU position).
  bool Lookup(const QueryGraph& query);

  /// Caches a result of `pages` pages, evicting LRU entries as needed.
  /// Results larger than the whole cache are not admitted.
  void Insert(const QueryGraph& query, int64_t pages);

  int64_t used_pages() const { return used_pages_; }
  int64_t capacity_pages() const { return capacity_pages_; }
  int64_t entries() const { return static_cast<int64_t>(index_.size()); }

 private:
  struct Entry {
    std::string signature;
    int64_t pages;
  };

  void Evict();

  int64_t capacity_pages_;
  int64_t used_pages_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

/// A query session against a ClientServerSystem with an ADMS-style result
/// cache in front of it: repeated queries are answered from the client's
/// disk without optimizer or server involvement.
class CachingSession {
 public:
  struct Outcome {
    bool cache_hit = false;
    double response_ms = 0.0;
    int64_t data_pages_sent = 0;
  };

  CachingSession(const ClientServerSystem& system, int64_t cache_pages)
      : system_(system), cache_(cache_pages) {}

  /// Runs (or answers from cache) one query.
  Outcome Run(const QueryGraph& query, ShippingPolicy policy,
              OptimizeMetric metric, uint64_t seed,
              const OptimizerConfig* opt = nullptr);

  const ResultCache& cache() const { return cache_; }

 private:
  /// Simulated time to deliver a cached result: a sequential scan of the
  /// result pages from the client disk plus per-tuple display cost.
  double ServeFromCache(int64_t pages, int64_t tuples) const;

  const ClientServerSystem& system_;
  ResultCache cache_;
};

}  // namespace dimsum

#endif  // DIMSUM_CORE_RESULT_CACHE_H_

#include "core/system.h"

#include <algorithm>

#include "plan/binding.h"
#include "plan/shard.h"

namespace dimsum {

std::map<SiteId, double> ClientServerSystem::ServerDiskUtilization() const {
  std::map<SiteId, double> utilization;
  for (const auto& [site, rate] : config_.server_disk_load_per_sec) {
    // Each external request is a random single-page read.
    const double service_ms = config_.params.rand_page_ms;
    utilization[site] = std::min(0.95, rate * service_ms / 1000.0);
  }
  return utilization;
}

OptimizeResult ClientServerSystem::Optimize(const QueryGraph& query,
                                            ShippingPolicy policy,
                                            OptimizeMetric metric, Rng& rng,
                                            const OptimizerConfig* base) const {
  OptimizerConfig config = (base != nullptr) ? *base : OptimizerConfig{};
  config.policy = policy;
  config.metric = metric;
  const CostModel model = MakeCostModel();
  TwoPhaseOptimizer optimizer(model, config);
  return optimizer.Optimize(query, rng);
}

ClientServerSystem::RunResult ClientServerSystem::Run(
    const QueryGraph& query, ShippingPolicy policy, OptimizeMetric metric,
    uint64_t seed, const OptimizerConfig* base) const {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  RunResult result;
  result.optimize = Optimize(query, policy, metric, rng, base);
  // The optimizer searches logical plans; scans of sharded relations are
  // expanded into bound per-shard fragments before execution, so the plan
  // the caller sees (and the one executed) is the physical one. Unsharded
  // catalogs skip this branch entirely.
  if (NeedsShardExpansion(result.optimize.plan, catalog_)) {
    Plan expanded = ExpandShards(result.optimize.plan, catalog_);
    BindSites(expanded, catalog_, query.home_client);
    result.optimize.plan = std::move(expanded);
  }
  result.execute = Execute(result.optimize.plan, query, seed,
                           config_.collect_spans ? &result.spans : nullptr);
  return result;
}

}  // namespace dimsum

#include "core/system.h"

#include <algorithm>

namespace dimsum {

std::map<SiteId, double> ClientServerSystem::ServerDiskUtilization() const {
  std::map<SiteId, double> utilization;
  for (const auto& [site, rate] : config_.server_disk_load_per_sec) {
    // Each external request is a random single-page read.
    const double service_ms = config_.params.rand_page_ms;
    utilization[site] = std::min(0.95, rate * service_ms / 1000.0);
  }
  return utilization;
}

OptimizeResult ClientServerSystem::Optimize(const QueryGraph& query,
                                            ShippingPolicy policy,
                                            OptimizeMetric metric, Rng& rng,
                                            const OptimizerConfig* base) const {
  OptimizerConfig config = (base != nullptr) ? *base : OptimizerConfig{};
  config.policy = policy;
  config.metric = metric;
  const CostModel model = MakeCostModel();
  TwoPhaseOptimizer optimizer(model, config);
  return optimizer.Optimize(query, rng);
}

ClientServerSystem::RunResult ClientServerSystem::Run(
    const QueryGraph& query, ShippingPolicy policy, OptimizeMetric metric,
    uint64_t seed, const OptimizerConfig* base) const {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  RunResult result;
  result.optimize = Optimize(query, policy, metric, rng, base);
  result.execute = Execute(result.optimize.plan, query, seed);
  return result;
}

}  // namespace dimsum

#ifndef DIMSUM_CORE_SYSTEM_H_
#define DIMSUM_CORE_SYSTEM_H_

#include <cstdint>
#include <map>

#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "opt/optimizer.h"
#include "plan/policy.h"

namespace dimsum {

/// Top-level facade: a client-server database system consisting of a
/// catalog (placement + caching state), a system configuration (Table 2
/// parameters, disks, external load), a randomized query optimizer, and the
/// detailed execution simulator.
///
/// Typical use:
///   ClientServerSystem system(workload.catalog, config);
///   auto result = system.Run(workload.query,
///                            ShippingPolicy::kHybridShipping,
///                            OptimizeMetric::kResponseTime, seed);
///   result.optimize.cost;         // the optimizer's estimate
///   result.execute.response_ms;   // the simulator's measurement
class ClientServerSystem {
 public:
  ClientServerSystem(Catalog catalog, SystemConfig config)
      : catalog_(std::move(catalog)), config_(std::move(config)) {
    DIMSUM_CHECK_EQ(catalog_.num_clients(), config_.num_clients)
        << "catalog and system config disagree on the number of clients";
  }

  const Catalog& catalog() const { return catalog_; }
  Catalog& mutable_catalog() { return catalog_; }
  const SystemConfig& config() const { return config_; }
  SystemConfig& mutable_config() { return config_; }

  /// Per-site external disk utilization implied by the configured load
  /// rates (used by the optimizer's cost model to anticipate contention).
  std::map<SiteId, double> ServerDiskUtilization() const;

  /// Cost model reflecting the current catalog and load state.
  CostModel MakeCostModel() const {
    return CostModel(catalog_, config_.params, ServerDiskUtilization());
  }

  /// Optimizes `query` in the given policy's plan space, minimizing
  /// `metric`. `base` overrides the default optimizer knobs.
  OptimizeResult Optimize(const QueryGraph& query, ShippingPolicy policy,
                          OptimizeMetric metric, Rng& rng,
                          const OptimizerConfig* base = nullptr) const;

  /// Executes a bound plan on the detailed simulator. When the config has
  /// collect_spans set and `spans_out` is non-null, the query's causal span
  /// tree is copied there.
  ExecMetrics Execute(const Plan& plan, const QueryGraph& query,
                      uint64_t seed = 0,
                      sim::QuerySpans* spans_out = nullptr) const {
    return ExecutePlan(plan, catalog_, query, config_, seed, spans_out);
  }

  struct RunResult {
    OptimizeResult optimize;
    ExecMetrics execute;
    /// Causal span tree of the execution; populated only when the system
    /// config has collect_spans set (empty otherwise).
    sim::QuerySpans spans;
  };

  /// Optimizes and then executes the query.
  RunResult Run(const QueryGraph& query, ShippingPolicy policy,
                OptimizeMetric metric, uint64_t seed = 0,
                const OptimizerConfig* base = nullptr) const;

 private:
  Catalog catalog_;
  SystemConfig config_;
};

}  // namespace dimsum

#endif  // DIMSUM_CORE_SYSTEM_H_

#include "cost/cardinality.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dimsum {
namespace {

int64_t PagesFor(int64_t tuples, int tuple_bytes, int page_bytes) {
  if (tuples == 0) return 0;
  const int64_t per_page = std::max<int64_t>(1, page_bytes / tuple_bytes);
  return (tuples + per_page - 1) / per_page;
}

StreamStats Annotate(const PlanNode& node, const Catalog& catalog,
                     const QueryGraph& query, const CostParams& params,
                     PlanStats* stats) {
  StreamStats out;
  switch (node.type) {
    case OpType::kScan: {
      const Relation& rel = catalog.relation(node.relation);
      // Shard fragments and key-restricted scans emit the slice the
      // catalog computes; a default scan (shard -1, key [0,1)) emits the
      // whole relation.
      out.tuples = catalog
                       .ScanExtent(node.relation, node.shard, node.key_lo,
                                   node.key_hi, params.page_bytes)
                       .tuples;
      out.tuple_bytes = rel.tuple_bytes;
      break;
    }
    case OpType::kSelect: {
      StreamStats in = Annotate(*node.left, catalog, query, params, stats);
      // llround, not truncation: 0.7 * 10000 tuples must estimate 7000,
      // not lose a tuple to floating-point representation error.
      out.tuples = std::llround(node.selectivity *
                                static_cast<double>(in.tuples));
      out.tuple_bytes = in.tuple_bytes;
      break;
    }
    case OpType::kProject: {
      StreamStats in = Annotate(*node.left, catalog, query, params, stats);
      out.tuples = in.tuples;
      out.tuple_bytes = std::max(
          1, static_cast<int>(std::llround(
                 node.width_factor * static_cast<double>(in.tuple_bytes))));
      break;
    }
    case OpType::kAggregate: {
      StreamStats in = Annotate(*node.left, catalog, query, params, stats);
      out.tuples = std::min(node.num_groups, in.tuples);
      out.tuple_bytes = in.tuple_bytes;
      break;
    }
    case OpType::kSort: {
      out = Annotate(*node.left, catalog, query, params, stats);
      break;
    }
    case OpType::kUnion: {
      StreamStats l = Annotate(*node.left, catalog, query, params, stats);
      StreamStats r = Annotate(*node.right, catalog, query, params, stats);
      out.tuples = l.tuples + r.tuples;
      out.tuple_bytes = std::max(l.tuple_bytes, r.tuple_bytes);
      break;
    }
    case OpType::kJoin: {
      StreamStats l = Annotate(*node.left, catalog, query, params, stats);
      StreamStats r = Annotate(*node.right, catalog, query, params, stats);
      const auto left_rels = Plan::RelationsBelow(*node.left);
      const auto right_rels = Plan::RelationsBelow(*node.right);
      if (query.Connects(left_rels, right_rels)) {
        out.tuples = std::llround(
            query.selectivity_factor *
            static_cast<double>(std::min(l.tuples, r.tuples)));
      } else {
        out.tuples = l.tuples * r.tuples;  // Cartesian product
      }
      out.tuple_bytes = std::max(l.tuple_bytes, r.tuple_bytes);
      break;
    }
    case OpType::kDisplay: {
      out = Annotate(*node.left, catalog, query, params, stats);
      break;
    }
  }
  DIMSUM_CHECK_GT(out.tuple_bytes, 0);
  out.pages = PagesFor(out.tuples, out.tuple_bytes, params.page_bytes);
  (*stats)[&node] = out;
  return out;
}

}  // namespace

PlanStats ComputeStats(const Plan& plan, const Catalog& catalog,
                       const QueryGraph& query, const CostParams& params) {
  DIMSUM_CHECK(!plan.empty());
  PlanStats stats;
  Annotate(*plan.root(), catalog, query, params, &stats);
  return stats;
}

}  // namespace dimsum

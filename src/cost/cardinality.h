#ifndef DIMSUM_COST_CARDINALITY_H_
#define DIMSUM_COST_CARDINALITY_H_

#include <cstdint>
#include <unordered_map>

#include "catalog/catalog.h"
#include "cost/params.h"
#include "plan/plan.h"
#include "plan/query.h"

namespace dimsum {

/// Size statistics of an operator's output stream.
struct StreamStats {
  int64_t tuples = 0;
  int tuple_bytes = 0;
  int64_t pages = 0;
};

/// Per-node output statistics keyed by node pointer.
using PlanStats = std::unordered_map<const PlanNode*, StreamStats>;

/// Derives output cardinalities bottom-up:
///  - scan: the relation's tuples;
///  - select: selectivity * input;
///  - join: query.selectivity_factor * min(left, right) tuples (the paper's
///    functional-join model; 1.0 keeps intermediate results at base-relation
///    size, 0.2 is the HiSel query), or left * right for Cartesian products;
///  - project: tuples unchanged, width scaled by width_factor;
///  - aggregate: min(num_groups, input tuples);
///  - union: sum of the inputs (bag union);
///  - display: passes through.
/// Join results are projected to the max input tuple width (the paper
/// projects all temporaries back to 100 bytes).
PlanStats ComputeStats(const Plan& plan, const Catalog& catalog,
                       const QueryGraph& query, const CostParams& params);

}  // namespace dimsum

#endif  // DIMSUM_COST_CARDINALITY_H_

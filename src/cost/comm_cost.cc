#include "cost/comm_cost.h"

#include "common/check.h"
#include "plan/binding.h"

namespace dimsum {
namespace {

void Visit(const PlanNode& node, const PlanNode* parent,
           const Catalog& catalog, const CostParams& params,
           const PlanStats& stats, CommCost* cost) {
  DIMSUM_CHECK_NE(node.bound_site, kUnboundSite);
  if (parent != nullptr && parent->bound_site != node.bound_site) {
    const StreamStats& out = stats.at(&node);
    cost->pages += out.pages;
    cost->bytes += out.pages * params.page_bytes;
    cost->messages += out.pages;
  }
  if (node.type == OpType::kScan &&
      node.annotation == SiteAnnotation::kClient) {
    // Pages not in the home client's cache are faulted in from the
    // relation's server, one request/response per page. The scan's bound
    // site names the client whose cache applies.
    const int64_t total = catalog.relation(node.relation).Pages(params.page_bytes);
    const int64_t cached =
        catalog.CachedPages(node.relation, node.bound_site, params.page_bytes);
    const int64_t faulted = total - cached;
    DIMSUM_CHECK_GE(faulted, 0);
    cost->pages += faulted;
    cost->bytes += faulted * (params.page_bytes + params.fault_request_bytes);
    cost->messages += 2 * faulted;
  }
  if (node.left) Visit(*node.left, &node, catalog, params, stats, cost);
  if (node.right) Visit(*node.right, &node, catalog, params, stats, cost);
}

}  // namespace

CommCost ComputeCommCost(const Plan& plan, const Catalog& catalog,
                         const QueryGraph& query, const CostParams& params) {
  DIMSUM_CHECK(IsFullyBound(plan));
  const PlanStats stats = ComputeStats(plan, catalog, query, params);
  CommCost cost;
  Visit(*plan.root(), nullptr, catalog, params, stats, &cost);
  return cost;
}

}  // namespace dimsum

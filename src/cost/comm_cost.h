#ifndef DIMSUM_COST_COMM_COST_H_
#define DIMSUM_COST_COMM_COST_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "cost/cardinality.h"
#include "cost/params.h"
#include "plan/plan.h"
#include "plan/query.h"

namespace dimsum {

/// Analytic communication cost of a *bound* plan.
struct CommCost {
  /// Data pages shipped over the network: operator streams crossing sites
  /// plus pages faulted in by client scans. This is the paper's
  /// "pages sent" metric.
  int64_t pages = 0;
  /// Total bytes on the wire including fault request messages.
  int64_t bytes = 0;
  /// Number of messages (page transfers + fault requests).
  int64_t messages = 0;
};

/// Computes communication requirements of `plan` (must be bound; see
/// BindSites). Client scans fault in only the uncached suffix of their
/// relation.
CommCost ComputeCommCost(const Plan& plan, const Catalog& catalog,
                         const QueryGraph& query, const CostParams& params);

}  // namespace dimsum

#endif  // DIMSUM_COST_COMM_COST_H_

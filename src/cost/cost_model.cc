#include "cost/cost_model.h"

#include "plan/binding.h"
#include "plan/shard.h"

namespace dimsum {

double CostModel::PlanCost(Plan& plan, const QueryGraph& query,
                           OptimizeMetric metric) const {
  // The optimizer searches over logical plans (one scan per relation), so
  // a plan touching sharded relations is costed through its physical
  // expansion: per-shard fragments whose disk demands land on distinct
  // sites, letting the phase graph's max-over-resources credit the
  // parallelism. The logical plan is what gets bound and returned to the
  // caller (and what the cost cache keys on).
  if (NeedsShardExpansion(plan, catalog_)) {
    Plan expanded = ExpandShards(plan, catalog_);
    BindSites(expanded, catalog_, query.home_client);
    BindSites(plan, catalog_, query.home_client);
    return CostBound(expanded, query, metric);
  }
  BindSites(plan, catalog_, query.home_client);
  return CostBound(plan, query, metric);
}

double CostModel::CostBound(Plan& plan, const QueryGraph& query,
                            OptimizeMetric metric) const {
  switch (metric) {
    case OptimizeMetric::kPagesSent:
      return static_cast<double>(
          ComputeCommCost(plan, catalog_, query, params_).pages);
    case OptimizeMetric::kResponseTime:
      return EstimateTime(plan, catalog_, query, params_, server_disk_load_)
          .response_ms;
    case OptimizeMetric::kTotalCost:
      return EstimateTime(plan, catalog_, query, params_, server_disk_load_)
          .total_ms;
  }
  DIMSUM_UNREACHABLE();
}

}  // namespace dimsum

#include "cost/cost_model.h"

#include "plan/binding.h"

namespace dimsum {

double CostModel::PlanCost(Plan& plan, const QueryGraph& query,
                           OptimizeMetric metric) const {
  BindSites(plan, catalog_, query.home_client);
  switch (metric) {
    case OptimizeMetric::kPagesSent:
      return static_cast<double>(
          ComputeCommCost(plan, catalog_, query, params_).pages);
    case OptimizeMetric::kResponseTime:
      return EstimateTime(plan, catalog_, query, params_, server_disk_load_)
          .response_ms;
    case OptimizeMetric::kTotalCost:
      return EstimateTime(plan, catalog_, query, params_, server_disk_load_)
          .total_ms;
  }
  DIMSUM_UNREACHABLE();
}

}  // namespace dimsum

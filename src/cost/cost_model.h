#ifndef DIMSUM_COST_COST_MODEL_H_
#define DIMSUM_COST_COST_MODEL_H_

#include <map>
#include <string_view>

#include "catalog/catalog.h"
#include "cost/comm_cost.h"
#include "cost/params.h"
#include "cost/response_time.h"
#include "plan/plan.h"
#include "plan/query.h"

namespace dimsum {

/// What the optimizer minimizes (Section 3.2.2 / 4.1 of the paper uses two
/// metrics: pages sent for communication-bound environments, and response
/// time for local-area networks; total cost is also supported).
enum class OptimizeMetric { kPagesSent, kResponseTime, kTotalCost };

inline std::string_view ToString(OptimizeMetric metric) {
  switch (metric) {
    case OptimizeMetric::kPagesSent:
      return "pages sent";
    case OptimizeMetric::kResponseTime:
      return "response time";
    case OptimizeMetric::kTotalCost:
      return "total cost";
  }
  return "?";
}

/// Facade evaluating plans under a (possibly assumed) catalog and system
/// state. Binds the plan's logical annotations before evaluating.
class CostModel {
 public:
  CostModel(const Catalog& catalog, const CostParams& params,
            std::map<SiteId, double> server_disk_load = {})
      : catalog_(catalog),
        params_(params),
        server_disk_load_(std::move(server_disk_load)) {}

  /// Cost of `plan` for `query` under `metric`. Binds sites in place.
  /// Plans with logical scans of sharded relations are costed through
  /// their physical shard expansion (the plan itself stays logical).
  double PlanCost(Plan& plan, const QueryGraph& query,
                  OptimizeMetric metric) const;

  const Catalog& catalog() const { return catalog_; }
  const CostParams& params() const { return params_; }
  const std::map<SiteId, double>& server_disk_load() const {
    return server_disk_load_;
  }

 private:
  /// Evaluates an already-bound (or bindable-as-is) plan.
  double CostBound(Plan& plan, const QueryGraph& query,
                   OptimizeMetric metric) const;

  const Catalog& catalog_;
  CostParams params_;
  std::map<SiteId, double> server_disk_load_;
};

}  // namespace dimsum

#endif  // DIMSUM_COST_COST_MODEL_H_

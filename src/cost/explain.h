#ifndef DIMSUM_COST_EXPLAIN_H_
#define DIMSUM_COST_EXPLAIN_H_

// Per-operator estimate records captured while the GHK92 response-time
// estimator costs a plan (see cost/response_time.h). These are the
// "estimated" half of the EXPLAIN / EXPLAIN ANALYZE report in
// core/report.h; the "actual" half is exec::OperatorActual collected by
// the executor. Operators are identified by their pre-order index in the
// plan tree (the display root is op 0), which both sides derive from the
// same Plan object so the join is by index.

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"
#include "plan/annotation.h"

namespace dimsum {

/// Estimated demand one operator places on each resource class. Disk
/// demand is the pre-interference figure: the seq-to-rand inflation the
/// phase model applies when scans share a disk with temp I/O is a
/// phase-level surcharge and is not attributed back to operators, so the
/// per-op sums can be slightly below PlanEstimate::total_ms.
struct OperatorEstimate {
  int op_id = -1;  ///< pre-order index in the plan tree
  OpType type = OpType::kScan;
  SiteId site = kUnboundSite;
  RelationId relation = kInvalidRelation;  ///< scans only
  int64_t est_tuples = 0;                  ///< output cardinality
  int64_t est_pages = 0;                   ///< output pages
  double cpu_ms = 0.0;   ///< summed over every site this op touches
  double disk_ms = 0.0;  ///< pre-interference disk demand
  double net_ms = 0.0;   ///< wire time (CPU message costs are in cpu_ms)
  /// Serial page-fault chain of client scans: the summed round-trip time
  /// that cannot overlap anything. Components are also charged to the
  /// real resources above, so this is excluded from totals.
  double chain_ms = 0.0;
  /// Dense index into PlanEstimate::phases of the pipelined phase that
  /// carries this operator's *output* stream.
  int phase = -1;

  double total_ms() const { return cpu_ms + disk_ms + net_ms; }
};

/// One merged pipelined phase of the GHK92 model, after union-find
/// resolution, with its critical-path schedule.
struct PhaseEstimate {
  int id = -1;  ///< dense index; ordering follows phase creation order
  double duration_ms = 0.0;  ///< max per-resource demand (full overlap)
  double start_ms = 0.0;     ///< critical-path start (finish - duration)
  double finish_ms = 0.0;    ///< critical-path finish
};

/// Full estimate-side explain record for one bound plan.
struct PlanEstimate {
  /// One record per plan node, in pre-order (index == op_id).
  std::vector<OperatorEstimate> ops;
  std::vector<PhaseEstimate> phases;
  std::map<SiteId, double> cpu_ms_by_site;
  std::map<SiteId, double> disk_ms_by_site;  ///< pre-interference
  double net_ms = 0.0;                       ///< total wire time
  double response_ms = 0.0;  ///< critical path over phases
  double total_ms = 0.0;     ///< ML86-style total cost (with interference)
};

}  // namespace dimsum

#endif  // DIMSUM_COST_EXPLAIN_H_

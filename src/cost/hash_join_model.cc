#include "cost/hash_join_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dimsum {

HashJoinModel ComputeHashJoinModel(int64_t inner_pages, BufAlloc alloc,
                                   double fudge_factor) {
  DIMSUM_CHECK_GE(inner_pages, 0);
  DIMSUM_CHECK_GE(fudge_factor, 1.0);
  HashJoinModel model;
  const double needed =
      fudge_factor * static_cast<double>(std::max<int64_t>(inner_pages, 1));
  if (alloc == BufAlloc::kMaximum) {
    model.memory_frames = static_cast<int64_t>(std::ceil(needed));
    model.num_partitions = 0;
    model.spill_fraction = 0.0;
    return model;
  }
  // Minimum allocation: sqrt(F * M) frames.
  model.memory_frames =
      std::max<int64_t>(2, static_cast<int64_t>(std::ceil(std::sqrt(needed))));
  if (static_cast<double>(model.memory_frames) >= needed) {
    // Tiny inner relation: fits anyway.
    model.num_partitions = 0;
    model.spill_fraction = 0.0;
    return model;
  }
  const double m = static_cast<double>(model.memory_frames);
  // B partitions, one output frame each; the rest of memory holds the
  // memory-resident part of the hash table (partition 0).
  int64_t partitions =
      static_cast<int64_t>(std::ceil((needed - m) / (m - 1.0)));
  partitions = std::max<int64_t>(1, partitions);
  const double resident_frames =
      std::max(0.0, m - static_cast<double>(partitions));
  model.num_partitions = static_cast<int>(partitions);
  model.spill_fraction =
      std::clamp(1.0 - resident_frames / needed, 0.0, 1.0);
  return model;
}

}  // namespace dimsum

#ifndef DIMSUM_COST_HASH_JOIN_MODEL_H_
#define DIMSUM_COST_HASH_JOIN_MODEL_H_

#include <cstdint>

#include "cost/params.h"

namespace dimsum {

/// Memory/partitioning plan for a hybrid-hash join [Sha86]. Shared by the
/// analytic cost model and the execution engine so their I/O counts agree.
struct HashJoinModel {
  /// Buffer frames allocated to the join at its site.
  int64_t memory_frames = 0;
  /// Number of spilled partitions (0 = inner fits fully in memory).
  int num_partitions = 0;
  /// Fraction of each input written to and re-read from temporary storage.
  double spill_fraction = 0.0;

  bool in_memory() const { return num_partitions == 0; }

  /// Temp pages written (and later read back) for an input of `pages`.
  int64_t SpillPages(int64_t pages) const {
    return static_cast<int64_t>(spill_fraction * static_cast<double>(pages) +
                                0.5);
  }
};

/// Computes the hybrid-hash configuration for an inner (build) input of
/// `inner_pages` under the given allocation policy:
///  - maximum: F * inner_pages frames, no spilling;
///  - minimum: ceil(sqrt(F * inner_pages)) frames; B partitions such that
///    each spilled partition later fits in memory; partition 0 keeps the
///    leftover frames resident.
HashJoinModel ComputeHashJoinModel(int64_t inner_pages, BufAlloc alloc,
                                   double fudge_factor);

}  // namespace dimsum

#endif  // DIMSUM_COST_HASH_JOIN_MODEL_H_

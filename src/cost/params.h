#ifndef DIMSUM_COST_PARAMS_H_
#define DIMSUM_COST_PARAMS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/ids.h"

namespace dimsum {

/// Join memory allocation policy (Shapiro [Sha86], Section 4.1 of the
/// paper): maximum allocation lets the inner relation's hash table reside
/// fully in memory; minimum allocation reserves sqrt(F * M) buffer frames
/// and partitions both inputs to temporary storage.
enum class BufAlloc { kMinimum, kMaximum };

inline const char* ToString(BufAlloc alloc) {
  return alloc == BufAlloc::kMinimum ? "min" : "max";
}

/// Simulation / cost parameters (Table 2 of the paper) plus the calibrated
/// per-page disk costs used by the analytic optimizer cost model.
struct CostParams {
  double mips = 50.0;             // CPU speed, 10^6 instructions/sec
  int num_disks = 1;              // disks per site
  double disk_inst = 5000.0;      // instructions per disk I/O request
  int page_bytes = 4096;          // data page size
  double net_bandwidth_mbps = 100.0;  // network bandwidth, Mbit/sec
  double msg_inst = 20000.0;      // instructions to send/receive a message
  double per_size_mi = 12000.0;   // instructions per 4096 bytes sent/recv'd
  double display_inst = 0.0;      // instructions to display a tuple
  double compare_inst = 2.0;      // instructions to apply a predicate
  double hash_inst = 9.0;         // instructions to hash a tuple
  double move_inst = 1.0;         // instructions to copy 4 bytes
  BufAlloc buf_alloc = BufAlloc::kMinimum;  // join memory allocation
  double hash_fudge = 1.2;        // Shapiro's fudge factor F

  /// Calibrated disk costs (obtained by separate simulation runs, exactly
  /// as the paper calibrated its optimizer against its simulator).
  double seq_page_ms = 3.5;
  double rand_page_ms = 11.8;

  /// Size of a page-fault request message (client-cache misses).
  int fault_request_bytes = 128;

  /// Per-site CPU speed overrides (10^6 instr/sec). Sites absent from the
  /// map run at `mips`. The paper's system is "heterogeneous,
  /// peer-to-peer"; this models e.g. resource-poor client machines.
  std::map<SiteId, double> site_mips;

  // --- derived helpers ---------------------------------------------------
  /// CPU speed of `site`, honoring overrides.
  double MipsOf(SiteId site) const {
    auto it = site_mips.find(site);
    return it != site_mips.end() ? it->second : mips;
  }
  /// Multiplier turning default-speed CPU milliseconds into `site`'s
  /// milliseconds (2.0 for a half-speed site).
  double CpuTimeFactor(SiteId site) const { return mips / MipsOf(site); }
  /// Milliseconds to execute `instructions` CPU instructions (at the
  /// default speed; scale by CpuTimeFactor for a specific site).
  double InstrMs(double instructions) const {
    return instructions / (mips * 1000.0);
  }
  /// CPU milliseconds to send or receive one message of `bytes`.
  double MsgCpuMs(int64_t bytes) const {
    return InstrMs(msg_inst +
                   per_size_mi * static_cast<double>(bytes) / 4096.0);
  }
  /// Time on the wire for `bytes`, ms.
  double WireMs(int64_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / (net_bandwidth_mbps * 1000.0);
  }
  /// CPU milliseconds to copy one tuple of `tuple_bytes`.
  double MoveTupleMs(int tuple_bytes) const {
    return InstrMs(move_inst * static_cast<double>(tuple_bytes) / 4.0);
  }
  /// CPU milliseconds charged per disk I/O request.
  double DiskCpuMs() const { return InstrMs(disk_inst); }
};

}  // namespace dimsum

#endif  // DIMSUM_COST_PARAMS_H_

#include "cost/response_time.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "cost/cardinality.h"
#include "cost/hash_join_model.h"
#include "plan/binding.h"

namespace dimsum {
namespace {

/// Resource identity for phase demand accounting.
struct ResKey {
  enum Kind { kCpu, kDisk, kNet, kChain } kind;
  SiteId site;   // cpu/disk owner; 0 for net
  int chain_id;  // unique id for kChain

  bool operator<(const ResKey& other) const {
    return std::tie(kind, site, chain_id) <
           std::tie(other.kind, other.site, other.chain_id);
  }
};

ResKey Cpu(SiteId s) { return ResKey{ResKey::kCpu, s, 0}; }
/// A site's disks are distinguished by a sub-index so that the model can
/// credit multi-disk sites (Table 2's NumDisks) with intra-site I/O
/// parallelism: base relations hash to one arm, temp I/O stripes over all.
ResKey DiskOf(SiteId s, int sub = 0) { return ResKey{ResKey::kDisk, s, sub}; }
ResKey Net() { return ResKey{ResKey::kNet, 0, 0}; }
ResKey Chain(int id) { return ResKey{ResKey::kChain, 0, id}; }

/// DAG of pipelined phases with union-find merging. A phase's duration is
/// the maximum of its per-resource demands (full-overlap assumption); its
/// finish time is its duration plus the latest finish of its predecessors.
///
/// Interference: sequential scan I/O in a phase whose disk also serves
/// temporary (join partition) I/O loses its sequentiality (the simulator's
/// read-ahead is destroyed by interleaved requests), so such scan demand is
/// inflated to the random-I/O rate via `seq_to_rand_factor`.
class PhaseGraph {
 public:
  explicit PhaseGraph(double seq_to_rand_factor)
      : seq_to_rand_factor_(seq_to_rand_factor) {}
  int NewPhase() {
    phases_.emplace_back();
    parent_.push_back(static_cast<int>(parent_.size()));
    return static_cast<int>(phases_.size()) - 1;
  }

  void AddUsage(int phase, ResKey key, double ms) {
    if (ms <= 0.0) return;
    phases_[Find(phase)].usage[key] += ms;
  }

  /// Adds sequential-scan disk demand, eligible for the interference
  /// inflation when the same phase also has temp I/O on that disk.
  void AddScanDisk(int phase, ResKey key, double ms) {
    if (ms <= 0.0) return;
    Phase& p = phases_[Find(phase)];
    p.usage[key] += ms;
    p.scan_seq_ms[key] += ms;
  }

  /// Marks temp (partition) I/O on a disk within the phase.
  void AddTempDisk(int phase, ResKey key, double ms) {
    if (ms <= 0.0) return;
    Phase& p = phases_[Find(phase)];
    p.usage[key] += ms;
    p.temp_disks.insert(key);
  }

  void AddDep(int phase, int before) {
    phases_[Find(phase)].deps.push_back(Find(before));
  }

  /// Folds `b` into `a`; both ids remain usable and resolve to the merged
  /// phase. Returns the representative.
  int Merge(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return a;
    for (const auto& [key, ms] : phases_[b].usage) phases_[a].usage[key] += ms;
    for (const auto& [key, ms] : phases_[b].scan_seq_ms) {
      phases_[a].scan_seq_ms[key] += ms;
    }
    phases_[a].temp_disks.insert(phases_[b].temp_disks.begin(),
                                 phases_[b].temp_disks.end());
    for (int dep : phases_[b].deps) phases_[a].deps.push_back(dep);
    phases_[b].usage.clear();
    phases_[b].scan_seq_ms.clear();
    phases_[b].temp_disks.clear();
    phases_[b].deps.clear();
    parent_[b] = a;
    return a;
  }

  double PhaseDuration(int phase) const {
    const Phase& p = phases_[phase];
    double duration = 0.0;
    for (const auto& [key, ms] : p.usage) {
      double effective = ms;
      if (key.kind == ResKey::kDisk && p.temp_disks.count(key) > 0) {
        auto it = p.scan_seq_ms.find(key);
        if (it != p.scan_seq_ms.end()) {
          effective += it->second * (seq_to_rand_factor_ - 1.0);
        }
      }
      duration = std::max(duration, effective);
    }
    return duration;
  }

  /// Critical-path finish time over all phases.
  double CriticalPath() {
    finish_.assign(phases_.size(), -1.0);
    double result = 0.0;
    for (int i = 0; i < static_cast<int>(phases_.size()); ++i) {
      if (Find(i) == i) result = std::max(result, Finish(i));
    }
    return result;
  }

  /// Resolves a phase id to its merged representative.
  int Resolve(int phase) { return Find(phase); }

  /// Representative (un-merged) phase ids, in creation order.
  std::vector<int> Representatives() {
    std::vector<int> roots;
    for (int i = 0; i < static_cast<int>(phases_.size()); ++i) {
      if (Find(i) == i) roots.push_back(i);
    }
    return roots;
  }

  /// Critical-path finish of a phase; valid only after CriticalPath().
  double FinishTime(int phase) { return finish_[Find(phase)]; }

  /// Sum of all resource demands, excluding chain pseudo-resources (their
  /// components are also charged to the real resources) but including the
  /// interference surcharge, which represents real extra disk time.
  double TotalUsage() const {
    double total = 0.0;
    for (const auto& phase : phases_) {
      for (const auto& [key, ms] : phase.usage) {
        if (key.kind == ResKey::kChain) continue;
        double effective = ms;
        if (key.kind == ResKey::kDisk && phase.temp_disks.count(key) > 0) {
          auto it = phase.scan_seq_ms.find(key);
          if (it != phase.scan_seq_ms.end()) {
            effective += it->second * (seq_to_rand_factor_ - 1.0);
          }
        }
        total += effective;
      }
    }
    return total;
  }

 private:
  struct Phase {
    std::map<ResKey, double> usage;
    std::map<ResKey, double> scan_seq_ms;  // interference-eligible demand
    std::set<ResKey> temp_disks;           // disks with temp I/O this phase
    std::vector<int> deps;
  };

  int Find(int i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }

  double Finish(int i) {
    i = Find(i);
    if (finish_[i] >= 0.0) return finish_[i];
    finish_[i] = 0.0;  // guards against (impossible) cycles
    double start = 0.0;
    for (int dep : phases_[i].deps) {
      const int d = Find(dep);
      if (d != i) start = std::max(start, Finish(d));
    }
    finish_[i] = start + PhaseDuration(i);
    return finish_[i];
  }

  double seq_to_rand_factor_;
  std::vector<Phase> phases_;
  std::vector<int> parent_;
  std::vector<double> finish_;
};

class Builder {
 public:
  /// `explain` (optional) receives per-operator demand tallies; its `ops`
  /// vector must already hold one record per plan node, and `ids` must map
  /// each node to its index in that vector.
  Builder(const Catalog& catalog, const QueryGraph& query,
          const CostParams& params,
          const std::map<SiteId, double>& server_disk_load,
          const PlanStats& stats, PlanEstimate* explain = nullptr,
          const std::unordered_map<const PlanNode*, int>* ids = nullptr)
      : catalog_(catalog),
        query_(query),
        params_(params),
        load_(server_disk_load),
        stats_(stats),
        graph_(params.rand_page_ms / params.seq_page_ms),
        out_(explain),
        ids_(ids) {
    if (out_ != nullptr) raw_phase_.assign(out_->ops.size(), -1);
  }

  PhaseGraph& graph() { return graph_; }

  /// Raw (unresolved) output-phase id per op_id; valid after Build.
  const std::vector<int>& raw_phases() const { return raw_phase_; }

  /// Builds the phases of the subtree rooted at `node`; returns the id of
  /// the phase producing the node's output stream. Demand added while
  /// `node` itself is being costed (not its children) is tallied into its
  /// explain record, if one was requested.
  int Build(const PlanNode& node) {
    OperatorEstimate* saved = cur_;
    if (out_ != nullptr) cur_ = &out_->ops[ids_->at(&node)];
    const int phase = Dispatch(node);
    if (cur_ != nullptr) raw_phase_[cur_->op_id] = phase;
    cur_ = saved;
    return phase;
  }

 private:
  int Dispatch(const PlanNode& node) {
    switch (node.type) {
      case OpType::kScan:
        return BuildScan(node);
      case OpType::kSelect:
        return BuildSelect(node);
      case OpType::kProject:
        return BuildProject(node);
      case OpType::kAggregate:
        return BuildAggregate(node);
      case OpType::kSort:
        return BuildSort(node);
      case OpType::kJoin:
        return BuildJoin(node);
      case OpType::kUnion:
        return BuildUnion(node);
      case OpType::kDisplay:
        return BuildDisplay(node);
    }
    DIMSUM_UNREACHABLE();
  }

  /// Wrappers over PhaseGraph that additionally attribute the demand to
  /// the operator currently being built and to the per-site roll-ups.
  /// Pure bookkeeping: the phase graph sees exactly the same calls.
  void Use(int phase, ResKey key, double ms) {
    graph_.AddUsage(phase, key, ms);
    Tally(key, ms);
  }
  void UseScanDisk(int phase, ResKey key, double ms) {
    graph_.AddScanDisk(phase, key, ms);
    Tally(key, ms);
  }
  void UseTempDisk(int phase, ResKey key, double ms) {
    graph_.AddTempDisk(phase, key, ms);
    Tally(key, ms);
  }
  void Tally(ResKey key, double ms) {
    if (out_ == nullptr || ms <= 0.0) return;
    switch (key.kind) {
      case ResKey::kCpu:
        if (cur_ != nullptr) cur_->cpu_ms += ms;
        out_->cpu_ms_by_site[key.site] += ms;
        break;
      case ResKey::kDisk:
        if (cur_ != nullptr) cur_->disk_ms += ms;
        out_->disk_ms_by_site[key.site] += ms;
        break;
      case ResKey::kNet:
        if (cur_ != nullptr) cur_->net_ms += ms;
        out_->net_ms += ms;
        break;
      case ResKey::kChain:
        if (cur_ != nullptr) cur_->chain_ms += ms;
        break;
    }
  }
  /// Disk-demand inflation under external load at `site`.
  double LoadFactor(SiteId site) const {
    auto it = load_.find(site);
    if (it == load_.end()) return 1.0;
    DIMSUM_CHECK_LT(it->second, 1.0);
    return 1.0 / (1.0 - it->second);
  }

  const StreamStats& Out(const PlanNode& node) const {
    return stats_.at(&node);
  }

  int NumDisks() const { return std::max(1, params_.num_disks); }

  /// Adds CPU demand at `site`, honoring per-site speed overrides.
  void AddCpu(int phase, SiteId site, double default_speed_ms) {
    Use(phase, Cpu(site), default_speed_ms * params_.CpuTimeFactor(site));
  }

  /// Disk sub-index a relation's extent maps to (round-robin placement).
  int DiskSub(RelationId relation) const {
    return static_cast<int>(relation % NumDisks());
  }

  /// Disk sub-index of a shard's extent: shards round-robin over a site's
  /// arms starting at the relation's arm, matching ExecSystem::LoadData.
  int ShardDiskSub(RelationId relation, int shard) const {
    return static_cast<int>((relation + (shard > 0 ? shard : 0)) %
                            NumDisks());
  }

  /// Spreads temp (partition) I/O demand evenly over a site's disks.
  void AddTempSpread(int phase, SiteId site, double total_ms) {
    const int n = NumDisks();
    for (int d = 0; d < n; ++d) {
      UseTempDisk(phase, DiskOf(site, d), total_ms / n);
    }
  }

  int BuildScan(const PlanNode& node) {
    const int phase = graph_.NewPhase();
    // Pages this fragment reads: its shard's extent (or the whole
    // relation when logical); zero when the key restriction is empty.
    const int64_t pages =
        catalog_
            .ScanExtent(node.relation, node.shard, node.key_lo, node.key_hi,
                        params_.page_bytes)
            .pages;
    if (node.annotation == SiteAnnotation::kPrimaryCopy) {
      const SiteId server = node.bound_site;
      UseScanDisk(phase, DiskOf(server, ShardDiskSub(node.relation, node.shard)),
                  static_cast<double>(pages) * params_.seq_page_ms *
                      LoadFactor(server));
      AddCpu(phase, server,
                      static_cast<double>(pages) * params_.DiskCpuMs());
      return phase;
    }
    if (catalog_.sharded(node.relation)) return BuildClientShardedScan(node, phase);
    // Client scan: cached prefix from the client disk, the rest faulted in
    // from the scan's serving replica one page at a time, synchronously.
    const SiteId client = node.bound_site;
    const SiteId server = catalog_.ReplicaSite(node.relation, node.replica);
    const int64_t cached = std::min(
        catalog_.CachedPages(node.relation, client, params_.page_bytes),
        pages);
    const int64_t faulted = pages - cached;
    UseScanDisk(phase, DiskOf(client, DiskSub(node.relation)),
                static_cast<double>(cached) * params_.seq_page_ms *
                    LoadFactor(client));
    AddCpu(phase, client,
                    static_cast<double>(cached) * params_.DiskCpuMs());
    if (faulted > 0) {
      const double request_cpu = params_.MsgCpuMs(params_.fault_request_bytes);
      const double page_cpu = params_.MsgCpuMs(params_.page_bytes);
      const double server_disk = params_.seq_page_ms * LoadFactor(server);
      const double round_trip =
          request_cpu +                            // client sends request
          params_.WireMs(params_.fault_request_bytes) +
          request_cpu +                            // server receives request
          params_.DiskCpuMs() + server_disk +      // server reads the page
          page_cpu +                               // server sends the page
          params_.WireMs(params_.page_bytes) +     //
          page_cpu;                                // client receives the page
      const double f = static_cast<double>(faulted);
      Use(phase, Chain(next_chain_id_++), f * round_trip);
      AddCpu(phase, client, f * (request_cpu + page_cpu));
      AddCpu(phase, server,
                      f * (request_cpu + page_cpu + params_.DiskCpuMs()));
      Use(phase, DiskOf(server, DiskSub(node.relation)), f * server_disk);
      Use(phase, Net(),
          f * (params_.WireMs(params_.fault_request_bytes) +
               params_.WireMs(params_.page_bytes)));
    }
    return phase;
  }

  /// Client scan of a sharded relation: nothing is cached (the catalog
  /// forbids caching sharded relations), so every shard's pages fault in
  /// from that shard's serving copy one page at a time. The round trips
  /// all serialize on one chain (the client blocks per page), but each
  /// shard's disk demand lands on its own site, so the cost mirrors what
  /// the executor simulates.
  int BuildClientShardedScan(const PlanNode& node, int phase) {
    const SiteId client = node.bound_site;
    const double request_cpu = params_.MsgCpuMs(params_.fault_request_bytes);
    const double page_cpu = params_.MsgCpuMs(params_.page_bytes);
    const double wire_ms = params_.WireMs(params_.fault_request_bytes) +
                           params_.WireMs(params_.page_bytes);
    double chain_ms = 0.0;
    for (int k = 0; k < catalog_.NumShards(node.relation); ++k) {
      const double f = static_cast<double>(
          catalog_.ShardPages(node.relation, k, params_.page_bytes));
      if (f <= 0.0) continue;
      const SiteId server = catalog_.ShardSite(node.relation, k, node.replica);
      const double server_disk = params_.seq_page_ms * LoadFactor(server);
      chain_ms += f * (request_cpu + request_cpu + params_.DiskCpuMs() +
                       server_disk + page_cpu + page_cpu + wire_ms);
      AddCpu(phase, client, f * (request_cpu + page_cpu));
      AddCpu(phase, server,
             f * (request_cpu + page_cpu + params_.DiskCpuMs()));
      Use(phase, DiskOf(server, ShardDiskSub(node.relation, k)),
          f * server_disk);
      Use(phase, Net(), f * wire_ms);
    }
    Use(phase, Chain(next_chain_id_++), chain_ms);
    return phase;
  }

  /// Adds pipelined network-transfer demand for a stream of `pages` flowing
  /// from `from` to `to` into `phase`.
  void AddNetEdge(int phase, SiteId from, SiteId to, int64_t pages) {
    if (from == to || pages == 0) return;
    const double page_cpu = params_.MsgCpuMs(params_.page_bytes);
    const double p = static_cast<double>(pages);
    AddCpu(phase, from, p * page_cpu);
    AddCpu(phase, to, p * page_cpu);
    Use(phase, Net(), p * params_.WireMs(params_.page_bytes));
  }

  int BuildSelect(const PlanNode& node) {
    const int phase = Build(*node.left);
    AddNetEdge(phase, node.left->bound_site, node.bound_site,
               Out(*node.left).pages);
    const StreamStats& in = Out(*node.left);
    AddCpu(phase, node.bound_site,
                    static_cast<double>(in.tuples) *
                        params_.InstrMs(params_.compare_inst));
    return phase;
  }

  int BuildProject(const PlanNode& node) {
    const int phase = Build(*node.left);
    AddNetEdge(phase, node.left->bound_site, node.bound_site,
               Out(*node.left).pages);
    // Copy every input tuple at the (narrower) output width.
    AddCpu(phase, node.bound_site,
                    static_cast<double>(Out(*node.left).tuples) *
                        params_.MoveTupleMs(Out(node).tuple_bytes));
    return phase;
  }

  int BuildAggregate(const PlanNode& node) {
    // Hash aggregation is blocking: the input pipeline completes before any
    // group is emitted, so the output starts a new phase.
    const int input = Build(*node.left);
    AddNetEdge(input, node.left->bound_site, node.bound_site,
               Out(*node.left).pages);
    AddCpu(input, node.bound_site,
                    static_cast<double>(Out(*node.left).tuples) *
                        (params_.InstrMs(params_.hash_inst) +
                         params_.InstrMs(params_.compare_inst)));
    const int output = graph_.NewPhase();
    graph_.AddDep(output, input);
    AddCpu(output, node.bound_site,
                    static_cast<double>(Out(node).tuples) *
                        params_.MoveTupleMs(Out(node).tuple_bytes));
    return output;
  }

  int BuildSort(const PlanNode& node) {
    // External merge sort: blocking. With maximum allocation the input is
    // sorted in memory; with minimum allocation sorted runs are written to
    // temp storage and merged back in one pass (the sqrt-sized allocation
    // guarantees a single merge level, as with hybrid hash).
    const StreamStats& in = Out(*node.left);
    const SiteId site = node.bound_site;
    const int input = Build(*node.left);
    AddNetEdge(input, node.left->bound_site, site, in.pages);
    const double log_n =
        in.tuples > 1 ? std::log2(static_cast<double>(in.tuples)) : 1.0;
    AddCpu(input, site,
           static_cast<double>(in.tuples) *
               params_.InstrMs(params_.compare_inst) * log_n);
    const bool spills = params_.buf_alloc == BufAlloc::kMinimum;
    if (spills) {
      UseTempDisk(input, DiskOf(site, 0),
                  static_cast<double>(in.pages) * params_.rand_page_ms *
                      LoadFactor(site));
      AddCpu(input, site, static_cast<double>(in.pages) * params_.DiskCpuMs());
    }
    const int output = graph_.NewPhase();
    graph_.AddDep(output, input);
    if (spills) {
      // Merge pass: read the runs back.
      AddTempSpread(output, site,
                    static_cast<double>(in.pages) * params_.seq_page_ms *
                        LoadFactor(site));
      AddCpu(output, site, static_cast<double>(in.pages) * params_.DiskCpuMs());
    }
    AddCpu(output, site,
           static_cast<double>(in.tuples) *
               params_.MoveTupleMs(in.tuple_bytes));
    return output;
  }

  int BuildUnion(const PlanNode& node) {
    // Bag union streams both inputs through; no blocking boundary.
    const int left = Build(*node.left);
    AddNetEdge(left, node.left->bound_site, node.bound_site,
               Out(*node.left).pages);
    const int right = Build(*node.right);
    AddNetEdge(right, node.right->bound_site, node.bound_site,
               Out(*node.right).pages);
    const int phase = graph_.Merge(left, right);
    AddCpu(phase, node.bound_site,
                    static_cast<double>(Out(node).tuples) *
                        params_.MoveTupleMs(Out(node).tuple_bytes));
    return phase;
  }

  int BuildJoin(const PlanNode& node) {
    const SiteId site = node.bound_site;
    const StreamStats& inner = Out(*node.left);
    const StreamStats& outer = Out(*node.right);
    const StreamStats& out = Out(node);
    const HashJoinModel hj = ComputeHashJoinModel(
        inner.pages, params_.buf_alloc, params_.hash_fudge);

    // Build phase: consume the inner stream, hash it, spill partitions.
    const int build = Build(*node.left);
    AddNetEdge(build, node.left->bound_site, site, inner.pages);
    AddCpu(build, site,
                    static_cast<double>(inner.tuples) *
                        (params_.InstrMs(params_.hash_inst) +
                         params_.MoveTupleMs(inner.tuple_bytes)));
    const int64_t inner_spill = hj.SpillPages(inner.pages);
    AddTempSpread(build, site,
                  static_cast<double>(inner_spill) * params_.rand_page_ms *
                      LoadFactor(site));
    AddCpu(build, site,
                    static_cast<double>(inner_spill) * params_.DiskCpuMs());

    // Probe phase: consume the outer stream; spill its partitions; then
    // re-read both spilled sides and join them. Output flows downstream
    // within this phase.
    int probe = graph_.NewPhase();
    graph_.AddDep(probe, build);
    const int outer_phase = Build(*node.right);
    probe = graph_.Merge(probe, outer_phase);
    AddNetEdge(probe, node.right->bound_site, site, outer.pages);
    AddCpu(probe, site,
                    static_cast<double>(outer.tuples) *
                        (params_.InstrMs(params_.hash_inst) +
                         params_.InstrMs(params_.compare_inst)));
    const int64_t outer_spill = hj.SpillPages(outer.pages);
    // Writes of outer partitions (random-ish) plus re-reads of both sides
    // (sequential per partition).
    AddTempSpread(probe, site,
                  (static_cast<double>(outer_spill) * params_.rand_page_ms +
                   static_cast<double>(inner_spill + outer_spill) *
                       params_.seq_page_ms) *
                      LoadFactor(site));
    AddCpu(probe, site,
                    static_cast<double>(inner_spill + 2 * outer_spill) *
                        params_.DiskCpuMs());
    // Spilled inner tuples are re-hashed when their partition is joined.
    AddCpu(probe, site,
                    hj.spill_fraction * static_cast<double>(inner.tuples) *
                        params_.InstrMs(params_.hash_inst));
    // Result construction.
    AddCpu(probe, site,
                    static_cast<double>(out.tuples) *
                        params_.MoveTupleMs(out.tuple_bytes));
    return probe;
  }

  int BuildDisplay(const PlanNode& node) {
    const int phase = Build(*node.left);
    AddNetEdge(phase, node.left->bound_site, node.bound_site,
               Out(*node.left).pages);
    AddCpu(phase, node.bound_site,
                    static_cast<double>(Out(node).tuples) *
                        params_.InstrMs(params_.display_inst));
    return phase;
  }

  const Catalog& catalog_;
  const QueryGraph& query_;
  const CostParams& params_;
  const std::map<SiteId, double>& load_;
  const PlanStats& stats_;
  PhaseGraph graph_;
  int next_chain_id_ = 0;
  PlanEstimate* out_;
  const std::unordered_map<const PlanNode*, int>* ids_;
  OperatorEstimate* cur_ = nullptr;  // record of the op being built
  std::vector<int> raw_phase_;       // op_id -> unresolved output phase
};

}  // namespace

TimeEstimate EstimateTime(const Plan& plan, const Catalog& catalog,
                          const QueryGraph& query, const CostParams& params,
                          const std::map<SiteId, double>& server_disk_load,
                          PlanEstimate* explain) {
  DIMSUM_CHECK(IsFullyBound(plan));
  const PlanStats stats = ComputeStats(plan, catalog, query, params);
  std::unordered_map<const PlanNode*, int> ids;
  if (explain != nullptr) {
    *explain = PlanEstimate{};
    plan.ForEach([&](const PlanNode& node) {
      OperatorEstimate rec;
      rec.op_id = static_cast<int>(explain->ops.size());
      rec.type = node.type;
      rec.site = node.bound_site;
      rec.relation = node.is_leaf() ? node.relation : kInvalidRelation;
      const StreamStats& out = stats.at(&node);
      rec.est_tuples = out.tuples;
      rec.est_pages = out.pages;
      ids.emplace(&node, rec.op_id);
      explain->ops.push_back(rec);
    });
  }
  Builder builder(catalog, query, params, server_disk_load, stats,
                  explain, explain != nullptr ? &ids : nullptr);
  builder.Build(*plan.root());
  TimeEstimate estimate;
  estimate.response_ms = builder.graph().CriticalPath();
  estimate.total_ms = builder.graph().TotalUsage();
  if (explain != nullptr) {
    explain->response_ms = estimate.response_ms;
    explain->total_ms = estimate.total_ms;
    PhaseGraph& graph = builder.graph();
    std::unordered_map<int, int> dense;
    for (int root : graph.Representatives()) {
      PhaseEstimate phase;
      phase.id = static_cast<int>(explain->phases.size());
      phase.duration_ms = graph.PhaseDuration(root);
      phase.finish_ms = graph.FinishTime(root);
      phase.start_ms = phase.finish_ms - phase.duration_ms;
      dense.emplace(root, phase.id);
      explain->phases.push_back(phase);
    }
    const std::vector<int>& raw = builder.raw_phases();
    for (OperatorEstimate& op : explain->ops) {
      op.phase = dense.at(graph.Resolve(raw[op.op_id]));
    }
  }
  return estimate;
}

}  // namespace dimsum

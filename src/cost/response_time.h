#ifndef DIMSUM_COST_RESPONSE_TIME_H_
#define DIMSUM_COST_RESPONSE_TIME_H_

#include <map>

#include "catalog/catalog.h"
#include "cost/explain.h"
#include "cost/params.h"
#include "plan/plan.h"
#include "plan/query.h"

namespace dimsum {

/// Analytic time estimates for a bound plan.
struct TimeEstimate {
  /// Estimated response time (ms): elapsed time until the last result tuple
  /// is displayed, assuming full overlap of resource usage within a
  /// pipelined phase (the optimistic GHK92-style model; the paper notes the
  /// simulator rarely achieves complete overlap).
  double response_ms = 0.0;
  /// Total cost (ms of resource usage summed over all resources), in the
  /// spirit of Mackert & Lohman's total-cost models.
  double total_ms = 0.0;
};

/// Estimates response time and total cost of `plan` (must be bound).
///
/// The plan is decomposed into pipelined phases separated by the blocking
/// boundaries of hybrid-hash joins (build before probe). Within a phase all
/// resource usage is assumed to overlap perfectly, so the phase takes the
/// maximum of its per-resource demands; phases are ordered by a precedence
/// DAG and the estimate is the critical path. Pipelined parallelism arises
/// by merging producer and consumer work into one phase; independent
/// parallelism by the absence of precedence edges between sibling subtrees.
///
/// Client scans of uncached data fault pages in synchronously one page at a
/// time (no overlap); this is modeled with a per-scan serial "chain"
/// pseudo-resource whose demand is the summed round-trip time.
///
/// `server_disk_load` gives external disk utilization per site (from the
/// paper's multi-client load generator); disk demands at a site are
/// inflated by 1/(1 - utilization).
///
/// When `explain` is non-null it is overwritten with per-operator /
/// per-phase / per-site estimate records (see cost/explain.h). Collection
/// only tallies side records; the returned estimate is identical with and
/// without it.
TimeEstimate EstimateTime(const Plan& plan, const Catalog& catalog,
                          const QueryGraph& query, const CostParams& params,
                          const std::map<SiteId, double>& server_disk_load = {},
                          PlanEstimate* explain = nullptr);

}  // namespace dimsum

#endif  // DIMSUM_COST_RESPONSE_TIME_H_

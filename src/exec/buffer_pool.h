#ifndef DIMSUM_EXEC_BUFFER_POOL_H_
#define DIMSUM_EXEC_BUFFER_POOL_H_

#include <coroutine>
#include <cstdint>
#include <deque>

#include "common/check.h"
#include "sim/simulator.h"

namespace dimsum {

/// Per-site main-memory buffer pool. Joins acquire their allocation
/// (minimum or maximum, per Shapiro) at open and release it at close;
/// acquisition suspends when memory is exhausted, modeling the paper's
/// "restricting the memory available for join processing" knob.
class BufferPool {
 public:
  BufferPool(sim::Simulator& sim, int64_t total_frames)
      : sim_(sim), total_frames_(total_frames), free_frames_(total_frames) {
    DIMSUM_CHECK_GT(total_frames, 0);
  }
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  int64_t total_frames() const { return total_frames_; }
  int64_t free_frames() const { return free_frames_; }
  /// Frames currently acquired (pool occupancy).
  int64_t used_frames() const { return total_frames_ - free_frames_; }

  /// Acquires `frames` buffer frames, suspending until available (FIFO).
  auto Acquire(int64_t frames) {
    struct Awaiter {
      BufferPool& pool;
      int64_t frames;
      bool await_ready() {
        DIMSUM_CHECK_GT(frames, 0) << "empty buffer acquisition";
        DIMSUM_CHECK_LE(frames, pool.total_frames_)
            << "request exceeds physical memory";
        if (pool.waiters_.empty() && pool.free_frames_ >= frames) {
          pool.free_frames_ -= frames;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        pool.waiters_.push_back({h, frames});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, frames};
  }

  /// Returns `frames` frames to the pool and admits waiting requests.
  void Release(int64_t frames) {
    DIMSUM_CHECK_GT(frames, 0) << "empty buffer release";
    free_frames_ += frames;
    DIMSUM_CHECK_LE(free_frames_, total_frames_);
    while (!waiters_.empty() && waiters_.front().frames <= free_frames_) {
      Waiter waiter = waiters_.front();
      waiters_.pop_front();
      free_frames_ -= waiter.frames;
      sim_.Resume(0.0, waiter.handle);
    }
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    int64_t frames;
  };

  sim::Simulator& sim_;
  int64_t total_frames_;
  int64_t free_frames_;
  std::deque<Waiter> waiters_;
};

}  // namespace dimsum

#endif  // DIMSUM_EXEC_BUFFER_POOL_H_

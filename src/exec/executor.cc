#include "exec/executor.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "cost/cardinality.h"
#include "exec/operators.h"
#include "plan/binding.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace dimsum {
namespace {

/// Channel capacity on operator edges: the producer side of an edge can run
/// one page ahead of its consumer (Section 3.2.1 of the paper).
constexpr size_t kPipelineDepth = 1;

/// Submits a query at its configured start time (for ExecuteConcurrent
/// entries with start_ms > 0). The ticket lands in *ticket once submitted.
sim::Process DelayedSubmit(ExecSession& session, const Plan& plan,
                           const QueryGraph& query, double start_ms,
                           int* ticket) {
  co_await session.sim().Delay(start_ms);
  *ticket = session.Submit(plan, query);
}

}  // namespace

struct ExecSession::QueryState {
  PlanStats stats;
  ExecMetrics metrics;
  std::unique_ptr<ExecContext> ctx;
  /// Pre-order plan-node ids for EXPLAIN actuals; populated when the
  /// session collects operator actuals or spans (spans reuse the numbering
  /// as their timeline ids).
  std::unordered_map<const PlanNode*, int> op_ids;
  /// Causal span set (SystemConfig::collect_spans only). Owned here, not
  /// by ExecMetrics, so metrics stay bit-identical with capture on or off.
  std::unique_ptr<sim::QuerySpans> spans;
  /// Channel endpoint registry for span capture: channel address ->
  /// (producer timeline, consumer timeline). Net operator pairs get
  /// synthetic timelines past the plan-node ids.
  std::unordered_map<const void*, std::pair<int, int>> channel_ends;
  int next_span_op = 0;
  double start_ms = 0.0;
  bool done = false;
  std::vector<std::coroutine_handle<>> waiters;
};

ExecSession::ExecSession(const Catalog& catalog, const SystemConfig& config,
                         uint64_t seed)
    : catalog_(catalog),
      config_(config),
      seed_(seed),
      system_(sim_, config),
      pool_stats_start_(sim::FramePool::ThisThread().stats()) {
  if (config_.faults != nullptr && !config_.faults->empty()) {
    fault_state_ = std::make_unique<sim::FaultState>(*config_.faults);
  }
  if (config_.trace != nullptr) AttachTrace(*config_.trace);
  if (config_.collect_histograms) AttachHistograms();
  if (config_.telemetry != nullptr) AttachTelemetry(*config_.telemetry);
  system_.LoadData(catalog_);
}

ExecSession::~ExecSession() = default;

void ExecSession::ExpectQueries(int count) {
  DIMSUM_CHECK_GE(count, submitted());
  expected_ = count;
  expect_set_ = true;
  all_done_ = completed_ >= expected_;
}

int ExecSession::Submit(const Plan& plan, const QueryGraph& query) {
  DIMSUM_CHECK(IsFullyBound(plan));
  const SiteId home = plan.root()->bound_site;
  DIMSUM_CHECK(system_.IsClientSite(home))
      << "display must be bound to a client site, got site " << home;
  DIMSUM_CHECK(query.home_client == home)
      << "query home_client " << query.home_client
      << " disagrees with the plan's display site " << home;
  const int ticket = static_cast<int>(queries_.size());
  if (expect_set_) {
    DIMSUM_CHECK_LT(ticket, expected_)
        << "more queries submitted than declared via ExpectQueries";
  } else {
    expected_ = ticket + 1;
    // A dynamic submission (open-loop arrivals) reopens the session even
    // if every earlier query already finished.
    all_done_ = false;
  }
  auto state = std::make_unique<QueryState>();
  state->start_ms = sim_.now();
  state->stats = ComputeStats(plan, catalog_, query, config_.params);
  state->ctx = std::make_unique<ExecContext>(
      ExecContext{sim_, system_, catalog_, config_.params, state->stats,
                  state->metrics});
  state->ctx->start_ms = state->start_ms;
  state->ctx->faults = fault_state_.get();
  state->ctx->fault_tolerance = &config_.fault_tolerance;
  if (config_.collect_operator_actuals || config_.collect_spans) {
    int next_id = 0;
    plan.ForEach(
        [&](const PlanNode& node) { state->op_ids.emplace(&node, next_id++); });
    state->metrics.operator_actuals.resize(next_id);
    state->ctx->op_ids = &state->op_ids;
    if (config_.collect_spans) {
      state->spans = std::make_unique<sim::QuerySpans>();
      state->spans->start_ms = state->start_ms;
      state->spans->root_op = 0;  // pre-order: the display root
      state->next_span_op = next_id;
      state->ctx->spans = state->spans.get();
      state->ctx->channel_ends = &state->channel_ends;
    }
  }
  QueryState* raw = state.get();
  state->ctx->on_done = [this, raw] {
    raw->done = true;
    if (raw->spans != nullptr) raw->spans->complete_ms = sim_.now();
    ++completed_;
    if (completed_ >= expected_) all_done_ = true;
    // Waiters resume at the completion time, after the display process
    // finishes, in registration order (deterministic seq tie-breaking).
    for (std::coroutine_handle<> h : raw->waiters) sim_.Resume(0.0, h);
    raw->waiters.clear();
  };
  queries_.push_back(std::move(state));
  PageChannel& result = BuildNode(*raw, *plan.root()->left, *plan.root());
  if (raw->spans != nullptr) raw->spans->num_ops = raw->next_span_op;
  sim_.Spawn(DisplayProcess(*raw->ctx, *plan.root(), result));
  return ticket;
}

bool ExecSession::IsDone(int ticket) const {
  DIMSUM_CHECK_GE(ticket, 0);
  DIMSUM_CHECK_LT(ticket, submitted());
  return queries_[ticket]->done;
}

const ExecMetrics& ExecSession::Metrics(int ticket) const {
  DIMSUM_CHECK(IsDone(ticket));
  return queries_[ticket]->metrics;
}

double ExecSession::StartMs(int ticket) const {
  DIMSUM_CHECK_GE(ticket, 0);
  DIMSUM_CHECK_LT(ticket, submitted());
  return queries_[ticket]->start_ms;
}

const sim::QuerySpans* ExecSession::Spans(int ticket) const {
  DIMSUM_CHECK_GE(ticket, 0);
  DIMSUM_CHECK_LT(ticket, submitted());
  return queries_[ticket]->spans.get();
}

void ExecSession::AddWaiter(int ticket, std::coroutine_handle<> handle) {
  DIMSUM_CHECK(!IsDone(ticket));
  queries_[ticket]->waiters.push_back(handle);
}

void ExecSession::StartLoadGenerators() {
  DIMSUM_CHECK(!load_generators_started_);
  load_generators_started_ = true;
  uint64_t load_seed = seed_ * 7919 + 17;
  for (const auto& [site, rate] : config_.server_disk_load_per_sec) {
    if (rate > 0.0) {
      sim_.Spawn(LoadGeneratorProcess(sim_, system_.site(site), config_.params,
                                      rate, load_seed++, &all_done_,
                                      fault_state_.get()));
    }
  }
}

void ExecSession::Run() {
  if (!load_generators_started_) StartLoadGenerators();
  sim_.Run();
  DIMSUM_CHECK_EQ(completed_, expected_) << "some query did not complete";
  // all_done_ is set by the last completion; a run that never saw a query
  // (e.g. an open-loop window with zero arrivals) is vacuously done.
  DIMSUM_CHECK(all_done_ || expected_ == 0);
  FoldKernelMetrics();
  // Fault spans per site: purely observational, emitted after the run so
  // tracing never perturbs the simulation. Windows still open at the end
  // of the run are clamped to it.
  if (config_.trace != nullptr && fault_state_ != nullptr) {
    std::map<SiteId, int> fault_tracks;
    for (const auto& w : fault_state_->SiteWindowsUpTo(sim_.now())) {
      auto [it, inserted] = fault_tracks.emplace(w.site, 0);
      if (inserted) it->second = config_.trace->NewTrack(w.site, "faults");
      config_.trace->Complete(w.site, it->second, "down", "fault",
                              w.window.start_ms,
                              std::min(w.window.end_ms, sim_.now()), {});
    }
  }
  // Telemetry finalization is equally offline: close the final partial
  // interval at the drain time and, when a trace is also attached, re-emit
  // the series as Perfetto counter tracks.
  if (config_.telemetry != nullptr && !config_.telemetry->finalized()) {
    config_.telemetry->Finalize(sim_.now());
    if (config_.trace != nullptr) {
      config_.telemetry->ExportCounterTracks(*config_.trace);
    }
  }
}

/// Folds this session's DES-kernel counters into the global registry:
/// events processed, event-queue high-water mark, calendar rebuilds, and
/// the coroutine-frame pool's hit/miss deltas since the session was built
/// (the pool is thread-local and the session runs on one thread, so the
/// delta is exactly this session's traffic).
void ExecSession::FoldKernelMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (!registry.enabled()) return;
  registry.counter("kernel.processed_events")
      .Add(static_cast<int64_t>(sim_.processed_events()));
  registry.counter("kernel.calendar_resizes")
      .Add(static_cast<int64_t>(sim_.calendar_resizes()));
  Gauge& peak = registry.gauge("kernel.peak_event_queue_depth");
  if (static_cast<double>(sim_.peak_queue_depth()) > peak.value()) {
    peak.Set(static_cast<double>(sim_.peak_queue_depth()));
  }
  const sim::FramePool::Stats now = sim::FramePool::ThisThread().stats();
  const int64_t hits =
      static_cast<int64_t>(now.hits - pool_stats_start_.hits);
  const int64_t misses =
      static_cast<int64_t>(now.misses - pool_stats_start_.misses);
  const int64_t oversized =
      static_cast<int64_t>(now.oversized - pool_stats_start_.oversized);
  registry.counter("kernel.frame_pool.hits").Add(hits);
  registry.counter("kernel.frame_pool.misses").Add(misses);
  registry.counter("kernel.frame_pool.oversized").Add(oversized);
  if (hits + misses > 0) {
    registry.gauge("kernel.frame_pool.hit_rate")
        .Set(static_cast<double>(hits) /
             static_cast<double>(hits + misses));
  }
}

BatchTotals ExecSession::Totals() {
  BatchTotals totals;
  totals.bytes_sent = system_.network().bytes_sent();
  totals.network_busy_ms = system_.network().busy_ms();
  totals.network_wait_ms = system_.network().wait_ms();
  for (int s = 0; s < system_.num_sites(); ++s) {
    SiteRuntime& site = system_.site(s);
    totals.cpu_busy_ms[s] = site.cpu.busy_ms();
    totals.cpu_wait_ms[s] = site.cpu.wait_ms();
    totals.disk_busy_ms[s] = site.TotalDiskBusyMs();
    for (int d = 0; d < site.num_disks(); ++d) {
      const sim::Disk& disk = site.disk(d);
      totals.disk.seek_ms += disk.seek_ms();
      totals.disk.rotate_ms += disk.rotate_ms();
      totals.disk.transfer_ms += disk.transfer_ms();
      totals.disk.overhead_ms += disk.overhead_ms();
      totals.disk.reads += disk.reads();
      totals.disk.writes += disk.writes();
      totals.disk.cache_hits += disk.cache_hits();
      totals.disk.readahead_pages += disk.readahead_pages();
      totals.disk.readahead_aborts += disk.readahead_aborts();
      totals.disk.max_queue_depth =
          std::max(totals.disk.max_queue_depth, disk.max_queue_depth());
    }
  }
  if (config_.collect_histograms) {
    totals.disk_service_ms = disk_service_hist_;
    totals.net_queue_delay_ms = net_queue_hist_;
  }
  if (fault_state_ != nullptr) {
    if (config_.collect_histograms) {
      totals.downtime_ms = Histogram(Histogram::DefaultTimeBoundsMs());
    }
    for (const auto& w : fault_state_->SiteWindowsUpTo(sim_.now())) {
      ++totals.crashes;
      const double down =
          std::min(w.window.end_ms, sim_.now()) - w.window.start_ms;
      totals.crash_downtime_ms += down;
      if (config_.collect_histograms) totals.downtime_ms.Add(down);
    }
  }
  return totals;
}

/// Registers the trace layout -- one trace process per site plus one for
/// the shared network, one thread per CPU/disk/link -- and attaches the
/// sink to the simulator. Operators allocate their own tracks at spawn
/// time (see OpSpan in operators.cc).
void ExecSession::AttachTrace(sim::TraceSink& trace) {
  sim_.set_trace(&trace);
  for (int s = 0; s < system_.num_sites(); ++s) {
    SiteRuntime& site = system_.site(s);
    trace.SetProcessName(s, system_.IsClientSite(s)
                                ? "site " + std::to_string(s) + " (client)"
                                : "site " + std::to_string(s) + " (server)");
    site.cpu.SetTraceTrack(s, trace.NewTrack(s, "cpu"));
    for (int d = 0; d < site.num_disks(); ++d) {
      site.disk(d).SetTraceTrack(s, trace.NewTrack(s, site.disk(d).name()));
    }
  }
  const int net_pid = system_.num_sites();
  trace.SetProcessName(net_pid, "network");
  system_.network().SetTraceTrack(net_pid, trace.NewTrack(net_pid, "link"));
}

/// Routes disk service times and network queueing delays into the
/// session-wide histograms reported via Totals().
void ExecSession::AttachHistograms() {
  disk_service_hist_ = Histogram(Histogram::DefaultTimeBoundsMs());
  net_queue_hist_ = Histogram(Histogram::DefaultTimeBoundsMs());
  for (int s = 0; s < system_.num_sites(); ++s) {
    SiteRuntime& site = system_.site(s);
    for (int d = 0; d < site.num_disks(); ++d) {
      site.disk(d).set_service_histogram(&disk_service_hist_);
    }
  }
  system_.network().set_queue_histogram(&net_queue_hist_);
}

/// Registers the utilization-sampler probes: per site, the CPU and each
/// disk contribute cumulative busy/wait probes (differenced into
/// utilization and queueing intensity per interval) plus queue-depth and
/// in-service gauges, and the buffer pool an occupancy gauge; the shared
/// link does the same under the network pid (num_sites, matching the
/// trace layout). Readers are pure state reads -- attaching the sampler
/// never changes simulation results.
void ExecSession::AttachTelemetry(sim::TelemetrySampler& telemetry) {
  sim_.set_telemetry(&telemetry);
  for (int s = 0; s < system_.num_sites(); ++s) {
    SiteRuntime& site = system_.site(s);
    sim::Resource& cpu = site.cpu;
    telemetry.AddCumulative(s, s, "cpu", "utilization",
                            [&cpu] { return cpu.busy_ms(); });
    telemetry.AddCumulative(s, s, "cpu", "queueing",
                            [&cpu] { return cpu.wait_ms(); });
    telemetry.AddGauge(s, s, "cpu", "queue_depth", [&cpu] {
      return static_cast<double>(cpu.queue_depth());
    });
    telemetry.AddGauge(s, s, "cpu", "in_service",
                       [&cpu] { return cpu.in_service() ? 1.0 : 0.0; });
    for (int d = 0; d < site.num_disks(); ++d) {
      sim::Disk& disk = site.disk(d);
      telemetry.AddCumulative(s, s, disk.name(), "utilization",
                              [&disk] { return disk.busy_ms(); });
      telemetry.AddCumulative(s, s, disk.name(), "queueing",
                              [&disk] { return disk.wait_ms(); });
      telemetry.AddGauge(s, s, disk.name(), "queue_depth", [&disk] {
        return static_cast<double>(disk.queue_depth());
      });
      telemetry.AddGauge(s, s, disk.name(), "in_service",
                         [&disk] { return disk.in_service() ? 1.0 : 0.0; });
    }
    BufferPool& pool = site.memory;
    telemetry.AddGauge(s, s, "buffer_pool", "used_frames", [&pool] {
      return static_cast<double>(pool.used_frames());
    });
  }
  const int net_pid = system_.num_sites();
  sim::Network& net = system_.network();
  telemetry.AddCumulative(net_pid, -1, "link", "utilization",
                          [&net] { return net.busy_ms(); });
  telemetry.AddCumulative(net_pid, -1, "link", "queueing",
                          [&net] { return net.wait_ms(); });
  telemetry.AddGauge(net_pid, -1, "link", "queue_depth", [&net] {
    return static_cast<double>(net.queue_depth());
  });
  telemetry.AddGauge(net_pid, -1, "link", "in_service",
                     [&net] { return net.in_service() ? 1.0 : 0.0; });
}

PageChannel& ExecSession::NewChannel() {
  channels_.push_back(std::make_unique<PageChannel>(sim_, kPipelineDepth));
  return *channels_.back();
}

/// Spawns the processes computing `node`; returns the channel delivering
/// its output at `consumer`'s site.
PageChannel& ExecSession::BuildNode(QueryState& state, const PlanNode& node,
                                    const PlanNode& consumer) {
  ExecContext& ctx = *state.ctx;
  PageChannel& out = NewChannel();
  switch (node.type) {
    case OpType::kScan:
      sim_.Spawn(ScanProcess(ctx, node, out));
      break;
    case OpType::kSelect: {
      PageChannel& in = BuildNode(state, *node.left, node);
      sim_.Spawn(SelectProcess(ctx, node, in, out));
      break;
    }
    case OpType::kProject: {
      PageChannel& in = BuildNode(state, *node.left, node);
      sim_.Spawn(ProjectProcess(ctx, node, in, out));
      break;
    }
    case OpType::kAggregate: {
      PageChannel& in = BuildNode(state, *node.left, node);
      sim_.Spawn(AggregateProcess(ctx, node, in, out));
      break;
    }
    case OpType::kSort: {
      PageChannel& in = BuildNode(state, *node.left, node);
      sim_.Spawn(SortProcess(ctx, node, in, out));
      break;
    }
    case OpType::kUnion: {
      PageChannel& l = BuildNode(state, *node.left, node);
      PageChannel& r = BuildNode(state, *node.right, node);
      sim_.Spawn(UnionProcess(ctx, node, l, r, out));
      break;
    }
    case OpType::kJoin: {
      PageChannel& inner = BuildNode(state, *node.left, node);
      PageChannel& outer = BuildNode(state, *node.right, node);
      sim_.Spawn(HashJoinProcess(ctx, node, inner, outer, out));
      break;
    }
    case OpType::kDisplay:
      DIMSUM_UNREACHABLE() << "display is handled by Submit()";
  }
  const bool spans_on = state.spans != nullptr;
  if (node.bound_site == consumer.bound_site) {
    if (spans_on) {
      state.channel_ends.emplace(
          &out, std::make_pair(state.op_ids.at(&node),
                               state.op_ids.at(&consumer)));
    }
    return out;
  }
  // Crossing edge: insert the network operator pair. Its time is
  // attributed to the consuming operator's EXPLAIN record, matching the
  // estimator's accounting of shipped edges. For span capture, each half
  // gets its own synthetic timeline past the plan-node ids, so the
  // producer -> send -> recv -> consumer chain carries causal edges.
  PageChannel& wire = NewChannel();
  PageChannel& delivered = NewChannel();
  OperatorActual* actual = ctx.Actual(consumer);
  int send_op = -1, recv_op = -1;
  // One flow-id block per crossing edge (4096 pages before ids recycle);
  // ids are session counters, never pointers, so traces are deterministic.
  const uint64_t flow_base = ++next_flow_base_ << 12;
  if (spans_on) {
    send_op = state.next_span_op++;
    recv_op = state.next_span_op++;
    state.channel_ends.emplace(
        &out, std::make_pair(state.op_ids.at(&node), send_op));
    state.channel_ends.emplace(&wire, std::make_pair(send_op, recv_op));
    state.channel_ends.emplace(
        &delivered, std::make_pair(recv_op, state.op_ids.at(&consumer)));
  }
  sim_.Spawn(NetSendProcess(ctx, node.bound_site, out, wire, actual, send_op,
                            flow_base));
  sim_.Spawn(NetRecvProcess(ctx, consumer.bound_site, wire, delivered, actual,
                            recv_op, flow_base));
  return delivered;
}

namespace {

/// Derives the effective home client of a workload entry and validates it
/// against the plan's display binding.
SiteId ResolveHomeClient(const WorkloadQuery& wq) {
  DIMSUM_CHECK(wq.plan != nullptr);
  DIMSUM_CHECK(wq.query != nullptr);
  DIMSUM_CHECK(!wq.plan->empty());
  const SiteId plan_home = wq.plan->root()->bound_site;
  if (wq.home_client != kUnboundSite) {
    DIMSUM_CHECK_EQ(wq.home_client, plan_home)
        << "WorkloadQuery home_client disagrees with the plan's display site";
  }
  return plan_home;
}

}  // namespace

ExecMetrics ExecutePlan(const Plan& plan, const Catalog& catalog,
                        const QueryGraph& query, const SystemConfig& config,
                        uint64_t seed, sim::QuerySpans* spans_out) {
  std::vector<WorkloadQuery> batch{WorkloadQuery{&plan, &query}};
  ConcurrentResult result = ExecuteConcurrent(batch, catalog, config, seed);
  if (spans_out != nullptr && !result.spans.empty()) {
    *spans_out = std::move(result.spans.front());
  }
  // Single-query compatibility: fold the run's system-wide totals back into
  // the one query's metrics, so callers see the complete resource picture in
  // one ExecMetrics (as they did when only one query could run).
  ExecMetrics metrics = std::move(result.per_query.front());
  metrics.bytes_sent = result.totals.bytes_sent;
  metrics.network_busy_ms = result.totals.network_busy_ms;
  metrics.network_wait_ms = result.totals.network_wait_ms;
  metrics.cpu_busy_ms = result.totals.cpu_busy_ms;
  metrics.cpu_wait_ms = result.totals.cpu_wait_ms;
  metrics.disk_busy_ms = result.totals.disk_busy_ms;
  metrics.disk = result.totals.disk;
  metrics.disk_service_ms = result.totals.disk_service_ms;
  metrics.net_queue_delay_ms = result.totals.net_queue_delay_ms;
  return metrics;
}

ConcurrentResult ExecuteConcurrent(const std::vector<WorkloadQuery>& batch,
                                   const Catalog& catalog,
                                   const SystemConfig& config, uint64_t seed) {
  DIMSUM_CHECK(!batch.empty());
  ExecSession session(catalog, config, seed);
  session.ExpectQueries(static_cast<int>(batch.size()));
  // Queries with start_ms == 0 are submitted up front, in batch order (this
  // preserves the event ordering of the historical all-start-at-zero batch);
  // later starts are submitted by small starter processes at their times.
  std::vector<int> tickets(batch.size(), -1);
  for (size_t q = 0; q < batch.size(); ++q) {
    const WorkloadQuery& wq = batch[q];
    ResolveHomeClient(wq);
    DIMSUM_CHECK_GE(wq.start_ms, 0.0);
    if (wq.start_ms == 0.0) {
      tickets[q] = session.Submit(*wq.plan, *wq.query);
    }
  }
  session.StartLoadGenerators();
  for (size_t q = 0; q < batch.size(); ++q) {
    const WorkloadQuery& wq = batch[q];
    if (wq.start_ms > 0.0) {
      session.sim().Spawn(DelayedSubmit(session, *wq.plan, *wq.query,
                                        wq.start_ms, &tickets[q]));
    }
  }
  session.Run();

  ConcurrentResult result;
  result.totals = session.Totals();
  for (size_t q = 0; q < batch.size(); ++q) {
    DIMSUM_CHECK_GE(tickets[q], 0);
    const ExecMetrics& metrics = session.Metrics(tickets[q]);
    result.makespan_ms = std::max(
        result.makespan_ms, session.StartMs(tickets[q]) + metrics.response_ms);
    result.per_query.push_back(metrics);
    if (config.collect_spans) {
      const sim::QuerySpans* spans = session.Spans(tickets[q]);
      DIMSUM_CHECK(spans != nullptr);
      result.spans.push_back(*spans);
    }
  }
  return result;
}

}  // namespace dimsum

#include "exec/executor.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "cost/cardinality.h"
#include "exec/operators.h"
#include "plan/binding.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace dimsum {
namespace {

/// Channel capacity on operator edges: the producer side of an edge can run
/// one page ahead of its consumer (Section 3.2.1 of the paper).
constexpr size_t kPipelineDepth = 1;

/// Executes a batch of (one or more) bound plans concurrently on a fresh
/// simulated cluster. All queries start at time zero and share the sites'
/// CPUs, disks, buffer pools, and the network.
class BatchExecution {
 public:
  BatchExecution(const std::vector<WorkloadQuery>& batch,
                 const Catalog& catalog, const SystemConfig& config,
                 uint64_t seed)
      : batch_(batch),
        catalog_(catalog),
        config_(config),
        seed_(seed),
        system_(sim_, config),
        remaining_(static_cast<int>(batch.size())) {
    if (config_.trace != nullptr) AttachTrace(*config_.trace);
    if (config_.collect_histograms) AttachHistograms();
  }

  ConcurrentResult Run() {
    system_.LoadData(catalog_);
    for (const WorkloadQuery& wq : batch_) {
      DIMSUM_CHECK(wq.plan != nullptr);
      DIMSUM_CHECK(wq.query != nullptr);
      DIMSUM_CHECK(IsFullyBound(*wq.plan));
      auto state = std::make_unique<QueryState>();
      state->stats =
          ComputeStats(*wq.plan, catalog_, *wq.query, config_.params);
      state->ctx = std::make_unique<ExecContext>(
          ExecContext{sim_, system_, catalog_, config_.params, state->stats,
                      state->metrics});
      state->ctx->batch_remaining = &remaining_;
      state->ctx->batch_done = &all_done_;
      per_query_.push_back(std::move(state));
    }
    // Spawn every query's operator tree.
    for (size_t q = 0; q < batch_.size(); ++q) {
      QueryState& state = *per_query_[q];
      const Plan& plan = *batch_[q].plan;
      PageChannel& result = BuildNode(state, *plan.root()->left, kClientSite);
      sim_.Spawn(DisplayProcess(*state.ctx, *plan.root(), result));
    }
    // External load generators run until the whole batch completes.
    uint64_t load_seed = seed_ * 7919 + 17;
    for (const auto& [site, rate] : config_.server_disk_load_per_sec) {
      if (rate > 0.0) {
        sim_.Spawn(LoadGeneratorProcess(sim_, system_.site(site),
                                        config_.params, rate, load_seed++,
                                        &all_done_));
      }
    }

    sim_.Run();
    DIMSUM_CHECK(all_done_) << "some query did not complete";

    ConcurrentResult result;
    const DiskDetail disk_detail = AggregateDiskDetail();
    for (auto& state : per_query_) {
      // System-wide resource usage is attached to every entry.
      state->metrics.bytes_sent = system_.network().bytes_sent();
      state->metrics.network_busy_ms = system_.network().busy_ms();
      state->metrics.network_wait_ms = system_.network().wait_ms();
      for (int s = 0; s < system_.num_sites(); ++s) {
        state->metrics.cpu_busy_ms[s] = system_.site(s).cpu.busy_ms();
        state->metrics.cpu_wait_ms[s] = system_.site(s).cpu.wait_ms();
        state->metrics.disk_busy_ms[s] = system_.site(s).TotalDiskBusyMs();
      }
      state->metrics.disk = disk_detail;
      if (config_.collect_histograms) {
        state->metrics.disk_service_ms = disk_service_hist_;
        state->metrics.net_queue_delay_ms = net_queue_hist_;
      }
      result.makespan_ms =
          std::max(result.makespan_ms, state->metrics.response_ms);
      result.per_query.push_back(state->metrics);
    }
    return result;
  }

 private:
  struct QueryState {
    PlanStats stats;
    ExecMetrics metrics;
    std::unique_ptr<ExecContext> ctx;
  };

  /// Registers the trace layout -- one trace process per site plus one for
  /// the shared network, one thread per CPU/disk/link -- and attaches the
  /// sink to the simulator. Operators allocate their own tracks at spawn
  /// time (see OpSpan in operators.cc).
  void AttachTrace(sim::TraceSink& trace) {
    sim_.set_trace(&trace);
    for (int s = 0; s < system_.num_sites(); ++s) {
      SiteRuntime& site = system_.site(s);
      trace.SetProcessName(
          s, s == kClientSite ? "site " + std::to_string(s) + " (client)"
                              : "site " + std::to_string(s) + " (server)");
      site.cpu.SetTraceTrack(s, trace.NewTrack(s, "cpu"));
      for (int d = 0; d < site.num_disks(); ++d) {
        site.disk(d).SetTraceTrack(s, trace.NewTrack(s, site.disk(d).name()));
      }
    }
    const int net_pid = system_.num_sites();
    trace.SetProcessName(net_pid, "network");
    system_.network().SetTraceTrack(net_pid, trace.NewTrack(net_pid, "link"));
  }

  /// Routes disk service times and network queueing delays into the
  /// batch-wide histograms copied into every query's ExecMetrics.
  void AttachHistograms() {
    disk_service_hist_ = Histogram(Histogram::DefaultTimeBoundsMs());
    net_queue_hist_ = Histogram(Histogram::DefaultTimeBoundsMs());
    for (int s = 0; s < system_.num_sites(); ++s) {
      SiteRuntime& site = system_.site(s);
      for (int d = 0; d < site.num_disks(); ++d) {
        site.disk(d).set_service_histogram(&disk_service_hist_);
      }
    }
    system_.network().set_queue_histogram(&net_queue_hist_);
  }

  DiskDetail AggregateDiskDetail() {
    DiskDetail detail;
    for (int s = 0; s < system_.num_sites(); ++s) {
      SiteRuntime& site = system_.site(s);
      for (int d = 0; d < site.num_disks(); ++d) {
        const sim::Disk& disk = site.disk(d);
        detail.seek_ms += disk.seek_ms();
        detail.rotate_ms += disk.rotate_ms();
        detail.transfer_ms += disk.transfer_ms();
        detail.overhead_ms += disk.overhead_ms();
        detail.reads += disk.reads();
        detail.writes += disk.writes();
        detail.cache_hits += disk.cache_hits();
        detail.readahead_pages += disk.readahead_pages();
        detail.readahead_aborts += disk.readahead_aborts();
        detail.max_queue_depth =
            std::max(detail.max_queue_depth, disk.max_queue_depth());
      }
    }
    return detail;
  }

  PageChannel& NewChannel() {
    channels_.push_back(std::make_unique<PageChannel>(sim_, kPipelineDepth));
    return *channels_.back();
  }

  /// Spawns the processes computing `node`; returns the channel delivering
  /// its output at `consumer_site`.
  PageChannel& BuildNode(QueryState& state, const PlanNode& node,
                         SiteId consumer_site) {
    ExecContext& ctx = *state.ctx;
    PageChannel& out = NewChannel();
    switch (node.type) {
      case OpType::kScan:
        sim_.Spawn(ScanProcess(ctx, node, out));
        break;
      case OpType::kSelect: {
        PageChannel& in = BuildNode(state, *node.left, node.bound_site);
        sim_.Spawn(SelectProcess(ctx, node, in, out));
        break;
      }
      case OpType::kProject: {
        PageChannel& in = BuildNode(state, *node.left, node.bound_site);
        sim_.Spawn(ProjectProcess(ctx, node, in, out));
        break;
      }
      case OpType::kAggregate: {
        PageChannel& in = BuildNode(state, *node.left, node.bound_site);
        sim_.Spawn(AggregateProcess(ctx, node, in, out));
        break;
      }
      case OpType::kSort: {
        PageChannel& in = BuildNode(state, *node.left, node.bound_site);
        sim_.Spawn(SortProcess(ctx, node, in, out));
        break;
      }
      case OpType::kUnion: {
        PageChannel& l = BuildNode(state, *node.left, node.bound_site);
        PageChannel& r = BuildNode(state, *node.right, node.bound_site);
        sim_.Spawn(UnionProcess(ctx, node, l, r, out));
        break;
      }
      case OpType::kJoin: {
        PageChannel& inner = BuildNode(state, *node.left, node.bound_site);
        PageChannel& outer = BuildNode(state, *node.right, node.bound_site);
        sim_.Spawn(HashJoinProcess(ctx, node, inner, outer, out));
        break;
      }
      case OpType::kDisplay:
        DIMSUM_UNREACHABLE() << "display is handled by Run()";
    }
    if (node.bound_site == consumer_site) return out;
    // Crossing edge: insert the network operator pair.
    PageChannel& wire = NewChannel();
    PageChannel& delivered = NewChannel();
    sim_.Spawn(NetSendProcess(ctx, node.bound_site, out, wire));
    sim_.Spawn(NetRecvProcess(ctx, consumer_site, wire, delivered));
    return delivered;
  }

  const std::vector<WorkloadQuery>& batch_;
  const Catalog& catalog_;
  SystemConfig config_;
  uint64_t seed_;
  sim::Simulator sim_;
  ExecSystem system_;
  Histogram disk_service_hist_;
  Histogram net_queue_hist_;
  int remaining_;
  bool all_done_ = false;
  std::vector<std::unique_ptr<QueryState>> per_query_;
  std::vector<std::unique_ptr<PageChannel>> channels_;
};

}  // namespace

ExecMetrics ExecutePlan(const Plan& plan, const Catalog& catalog,
                        const QueryGraph& query, const SystemConfig& config,
                        uint64_t seed) {
  std::vector<WorkloadQuery> batch{WorkloadQuery{&plan, &query}};
  BatchExecution execution(batch, catalog, config, seed);
  ConcurrentResult result = execution.Run();
  return result.per_query.front();
}

ConcurrentResult ExecuteConcurrent(const std::vector<WorkloadQuery>& batch,
                                   const Catalog& catalog,
                                   const SystemConfig& config, uint64_t seed) {
  DIMSUM_CHECK(!batch.empty());
  BatchExecution execution(batch, catalog, config, seed);
  return execution.Run();
}

}  // namespace dimsum

#ifndef DIMSUM_EXEC_EXECUTOR_H_
#define DIMSUM_EXEC_EXECUTOR_H_

#include <coroutine>
#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "exec/metrics.h"
#include "exec/operators.h"
#include "exec/runtime.h"
#include "plan/plan.h"
#include "plan/query.h"
#include "sim/frame_pool.h"
#include "sim/simulator.h"

namespace dimsum {

/// Executes a bound plan on the detailed simulator and returns the measured
/// metrics. Builds a fresh simulated cluster (per `config`), loads the
/// catalog's data layout, instantiates one coroutine process per operator
/// (with network operator pairs on site-crossing edges, so producers stay a
/// page ahead of their consumers), runs external disk load generators if
/// configured, and drives the simulation to completion.
///
/// `seed` controls the load generators' randomness; query execution itself
/// is deterministic.
///
/// With SystemConfig::collect_spans set, `spans_out` (optional) receives
/// the query's causal span set for critical-path extraction.
ExecMetrics ExecutePlan(const Plan& plan, const Catalog& catalog,
                        const QueryGraph& query, const SystemConfig& config,
                        uint64_t seed = 0,
                        sim::QuerySpans* spans_out = nullptr);

/// One query of a concurrent batch.
struct WorkloadQuery {
  const Plan* plan = nullptr;        // bound plan
  const QueryGraph* query = nullptr;
  /// Home client of the query (the site its display is bound to). When
  /// left unbound it is derived from the plan; when set it must agree with
  /// the plan's binding (checked).
  SiteId home_client = kUnboundSite;
  /// Virtual time at which the query is submitted. Response time is
  /// measured from here.
  double start_ms = 0.0;
};

/// System-wide resource totals of one simulated run (a batch or a whole
/// workload session). These are properties of the shared cluster, not of
/// any one query: summing per-query ExecMetrics never double-counts them
/// because they live only here.
struct BatchTotals {
  /// Total bytes on the wire (all queries plus any retransmissions the
  /// model adds later).
  int64_t bytes_sent = 0;
  double network_busy_ms = 0.0;
  double network_wait_ms = 0.0;
  /// Per-site resource usage over the whole run, ms.
  FlatMap<SiteId, double> cpu_busy_ms;
  FlatMap<SiteId, double> cpu_wait_ms;
  FlatMap<SiteId, double> disk_busy_ms;
  /// System-wide disk-model detail.
  DiskDetail disk;
  /// Distributions, populated only when SystemConfig::collect_histograms
  /// is set.
  Histogram disk_service_ms;
  Histogram net_queue_delay_ms;

  /// Fault-injection outcome over the run (zero without a schedule):
  /// site crash windows that began by the end of the run, their total
  /// downtime, and (with collect_histograms) the downtime distribution.
  int64_t crashes = 0;
  double crash_downtime_ms = 0.0;
  Histogram downtime_ms;
};

/// Result of executing a batch of queries concurrently on one system.
struct ConcurrentResult {
  /// Per-query metrics, in batch order. Every field is attributed to that
  /// query alone (response_ms from its own start time; pages, messages,
  /// and bytes it put on the wire). System-wide usage lives in `totals`.
  std::vector<ExecMetrics> per_query;
  /// Whole-run resource totals (shared cluster state).
  BatchTotals totals;
  /// Per-query causal span sets, parallel to `per_query`; filled only when
  /// SystemConfig::collect_spans is set.
  std::vector<sim::QuerySpans> spans;
  /// Time until the last query completes (submission-relative starts
  /// included).
  double makespan_ms = 0.0;
};

/// Multi-query execution (the paper's Section 7 future work: "the impact
/// of caching and the use of the aggregate main memory of the system in
/// multi-query workloads"). Queries start at their configured start_ms
/// (default: all at time 0) on their home clients and share the simulated
/// sites -- CPUs, disks, the network, and each site's buffer pool
/// (maximum-allocation joins queue for memory when it runs short).
ConcurrentResult ExecuteConcurrent(const std::vector<WorkloadQuery>& batch,
                                   const Catalog& catalog,
                                   const SystemConfig& config,
                                   uint64_t seed = 0);

/// Incremental execution session: one simulated cluster on which bound
/// plans can be submitted at any virtual time -- up front (before Run) or
/// dynamically from coroutine processes running inside the simulation.
/// This is the engine under ExecuteConcurrent and the closed-loop workload
/// driver (src/workload/driver.h).
///
/// Usage:
///   ExecSession session(catalog, config, seed);
///   session.ExpectQueries(n);            // completion target for load gens
///   int t = session.Submit(plan, query); // at current virtual time
///   session.Run();                       // drive to completion
///   session.Metrics(t).response_ms;
class ExecSession {
 public:
  ExecSession(const Catalog& catalog, const SystemConfig& config,
              uint64_t seed);
  ~ExecSession();
  ExecSession(const ExecSession&) = delete;
  ExecSession& operator=(const ExecSession&) = delete;

  sim::Simulator& sim() { return sim_; }
  ExecSystem& system() { return system_; }
  /// Fault oracle of this session (null when the config has no schedule or
  /// an empty one). The workload driver uses it for crash detection, retry
  /// decisions, and availability-windowed statistics.
  sim::FaultState* faults() { return fault_state_.get(); }

  /// Declares how many query completions this session will see in total;
  /// external load generators (and the all-done flag) wind down only once
  /// that many queries have finished. Must be called before Run() when
  /// queries are submitted dynamically; Submit() past the declared count
  /// check-fails.
  void ExpectQueries(int count);

  /// Submits a fully bound plan at the current virtual time; returns a
  /// ticket for querying completion and metrics. The plan's display must
  /// be bound to a client site.
  int Submit(const Plan& plan, const QueryGraph& query);

  bool IsDone(int ticket) const;
  /// Metrics of a completed query (valid once IsDone(ticket)).
  const ExecMetrics& Metrics(int ticket) const;
  /// Submission time of the query, ms.
  double StartMs(int ticket) const;
  /// Causal span set of a completed query, or null when the session does
  /// not collect spans (SystemConfig::collect_spans).
  const sim::QuerySpans* Spans(int ticket) const;

  /// Awaitable completion of a submitted query, for coroutine processes
  /// running inside this session's simulation.
  auto UntilDone(int ticket) {
    struct Awaiter {
      ExecSession& session;
      int ticket;
      bool await_ready() const { return session.IsDone(ticket); }
      void await_suspend(std::coroutine_handle<> h) {
        session.AddWaiter(ticket, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, ticket};
  }

  /// Spawns the configured external load generators (no-ops when the
  /// config has none). They run until the expected queries complete.
  void StartLoadGenerators();

  /// Runs the simulation until no events remain, then checks that every
  /// expected query completed.
  void Run();

  int completed() const { return completed_; }
  int submitted() const { return static_cast<int>(queries_.size()); }

  /// Whole-run resource totals; call after Run().
  BatchTotals Totals();

 private:
  struct QueryState;

  void AddWaiter(int ticket, std::coroutine_handle<> handle);
  PageChannel& NewChannel();
  PageChannel& BuildNode(QueryState& state, const PlanNode& node,
                         const PlanNode& consumer);
  void AttachTrace(sim::TraceSink& trace);
  void AttachHistograms();
  void AttachTelemetry(sim::TelemetrySampler& telemetry);
  void FoldKernelMetrics();

  const Catalog& catalog_;
  SystemConfig config_;
  uint64_t seed_;
  sim::Simulator sim_;
  ExecSystem system_;
  /// Present only when the config carries a non-empty fault schedule, so
  /// healthy sessions keep their pre-fault code paths bit-identical.
  std::unique_ptr<sim::FaultState> fault_state_;
  /// Frame-pool counters at construction; Run() folds the delta (this
  /// session's own allocation traffic) into the metrics registry.
  sim::FramePool::Stats pool_stats_start_;
  Histogram disk_service_hist_;
  Histogram net_queue_hist_;
  int expected_ = 0;
  bool expect_set_ = false;
  int completed_ = 0;
  bool all_done_ = false;
  bool load_generators_started_ = false;
  std::vector<std::unique_ptr<QueryState>> queries_;
  std::vector<std::unique_ptr<PageChannel>> channels_;
  /// Session-wide counter seeding the Perfetto flow ids of each network
  /// operator pair (one id block per crossing edge; deterministic).
  uint64_t next_flow_base_ = 0;
};

}  // namespace dimsum

#endif  // DIMSUM_EXEC_EXECUTOR_H_

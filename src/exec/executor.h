#ifndef DIMSUM_EXEC_EXECUTOR_H_
#define DIMSUM_EXEC_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "exec/metrics.h"
#include "exec/runtime.h"
#include "plan/plan.h"
#include "plan/query.h"

namespace dimsum {

/// Executes a bound plan on the detailed simulator and returns the measured
/// metrics. Builds a fresh simulated cluster (per `config`), loads the
/// catalog's data layout, instantiates one coroutine process per operator
/// (with network operator pairs on site-crossing edges, so producers stay a
/// page ahead of their consumers), runs external disk load generators if
/// configured, and drives the simulation to completion.
///
/// `seed` controls the load generators' randomness; query execution itself
/// is deterministic.
ExecMetrics ExecutePlan(const Plan& plan, const Catalog& catalog,
                        const QueryGraph& query, const SystemConfig& config,
                        uint64_t seed = 0);

/// One query of a concurrent batch.
struct WorkloadQuery {
  const Plan* plan = nullptr;        // bound plan
  const QueryGraph* query = nullptr;
};

/// Result of executing a batch of queries concurrently on one system.
struct ConcurrentResult {
  /// Per-query metrics; response_ms is each query's own completion time
  /// (all queries start at time 0).
  std::vector<ExecMetrics> per_query;
  /// Time until the last query completes.
  double makespan_ms = 0.0;
};

/// Multi-query execution (the paper's Section 7 future work: "the impact
/// of caching and the use of the aggregate main memory of the system in
/// multi-query workloads"). All queries start together and share the
/// simulated sites -- CPUs, disks, the network, and each site's buffer
/// pool (maximum-allocation joins queue for memory when it runs short).
ConcurrentResult ExecuteConcurrent(const std::vector<WorkloadQuery>& batch,
                                   const Catalog& catalog,
                                   const SystemConfig& config,
                                   uint64_t seed = 0);

}  // namespace dimsum

#endif  // DIMSUM_EXEC_EXECUTOR_H_

#ifndef DIMSUM_EXEC_LAYOUT_H_
#define DIMSUM_EXEC_LAYOUT_H_

#include <cstdint>

#include "common/check.h"
#include "sim/disk.h"

namespace dimsum {

/// Block allocator for one disk. Base data (relations, client-cache copies)
/// grows contiguously from block 0; temporary extents (join partitions)
/// grow from the middle of the disk, so base scans and temp I/O live in
/// different disk regions and interleaving them costs seeks -- the
/// contention/interference effect central to the paper's Section 4.2.2.
class DiskSpace {
 public:
  explicit DiskSpace(const sim::DiskParams& params)
      : capacity_(params.total_pages()),
        temp_start_(capacity_ / 2),
        next_base_(0),
        next_temp_(capacity_ / 2) {}

  /// Allocates a contiguous base-data extent; returns its first block.
  int64_t AllocateBase(int64_t pages) {
    DIMSUM_CHECK_GT(pages, 0);
    const int64_t start = next_base_;
    next_base_ += pages;
    DIMSUM_CHECK_LE(next_base_, temp_start_) << "disk full (base region)";
    return start;
  }

  /// Allocates a contiguous temporary extent; returns its first block.
  int64_t AllocateTemp(int64_t pages) {
    DIMSUM_CHECK_GT(pages, 0);
    const int64_t start = next_temp_;
    next_temp_ += pages;
    DIMSUM_CHECK_LE(next_temp_, capacity_) << "disk full (temp region)";
    return start;
  }

  /// Releases all temporary extents (end of query).
  void ResetTemp() { next_temp_ = temp_start_; }

  int64_t base_pages_used() const { return next_base_; }
  int64_t temp_pages_used() const { return next_temp_ - temp_start_; }

 private:
  int64_t capacity_;
  int64_t temp_start_;
  int64_t next_base_;
  int64_t next_temp_;
};

}  // namespace dimsum

#endif  // DIMSUM_EXEC_LAYOUT_H_

#include "exec/metrics.h"

#include <string>

namespace dimsum {

void FoldExecMetrics(const ExecMetrics& metrics, MetricsRegistry& registry) {
  registry.counter("exec.queries").Add(1);
  registry.counter("exec.data_pages_sent").Add(metrics.data_pages_sent);
  registry.counter("exec.messages").Add(metrics.messages);
  registry.counter("exec.bytes_sent").Add(metrics.bytes_sent);
  registry.gauge("exec.response_ms").Add(metrics.response_ms);
  registry.gauge("exec.network.busy_ms").Add(metrics.network_busy_ms);
  registry.gauge("exec.network.wait_ms").Add(metrics.network_wait_ms);
  for (const auto& [site, ms] : metrics.cpu_busy_ms) {
    registry.gauge("exec.cpu.busy_ms.site" + std::to_string(site)).Add(ms);
  }
  for (const auto& [site, ms] : metrics.cpu_wait_ms) {
    registry.gauge("exec.cpu.wait_ms.site" + std::to_string(site)).Add(ms);
  }
  for (const auto& [site, ms] : metrics.disk_busy_ms) {
    registry.gauge("exec.disk.busy_ms.site" + std::to_string(site)).Add(ms);
  }
  registry.gauge("exec.disk.seek_ms").Add(metrics.disk.seek_ms);
  registry.gauge("exec.disk.rotate_ms").Add(metrics.disk.rotate_ms);
  registry.gauge("exec.disk.transfer_ms").Add(metrics.disk.transfer_ms);
  registry.gauge("exec.disk.overhead_ms").Add(metrics.disk.overhead_ms);
  registry.counter("exec.disk.reads").Add(static_cast<int64_t>(metrics.disk.reads));
  registry.counter("exec.disk.writes").Add(static_cast<int64_t>(metrics.disk.writes));
  registry.counter("exec.disk.cache_hits")
      .Add(static_cast<int64_t>(metrics.disk.cache_hits));
  registry.counter("exec.disk.readahead_pages")
      .Add(static_cast<int64_t>(metrics.disk.readahead_pages));
  registry.counter("exec.disk.readahead_aborts")
      .Add(static_cast<int64_t>(metrics.disk.readahead_aborts));
  Gauge& depth = registry.gauge("exec.disk.max_queue_depth");
  if (static_cast<double>(metrics.disk.max_queue_depth) > depth.value()) {
    depth.Set(static_cast<double>(metrics.disk.max_queue_depth));
  }
  if (metrics.fault_stall_ms > 0.0 || metrics.retransmits > 0) {
    registry.gauge("exec.fault.stall_ms").Add(metrics.fault_stall_ms);
    registry.counter("exec.fault.retransmits").Add(metrics.retransmits);
    registry.counter("exec.fault.retransmitted_bytes")
        .Add(metrics.retransmitted_bytes);
  }
  if (metrics.disk_service_ms.count() > 0) {
    registry.MergeHistogram("exec.disk.service_ms", metrics.disk_service_ms);
  }
  if (metrics.net_queue_delay_ms.count() > 0) {
    registry.MergeHistogram("exec.network.queue_delay_ms",
                            metrics.net_queue_delay_ms);
  }
}

}  // namespace dimsum

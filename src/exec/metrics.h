#ifndef DIMSUM_EXEC_METRICS_H_
#define DIMSUM_EXEC_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "common/ids.h"
#include "common/metrics.h"

namespace dimsum {

/// Aggregate disk-model detail across all disks of the simulated system:
/// the arm's busy time split into its mechanical components plus the
/// controller-cache and read-ahead behavior that the detailed disk model
/// (sim/disk.h) exists to capture.
struct DiskDetail {
  double seek_ms = 0.0;      // settle + sqrt-curve seek
  double rotate_ms = 0.0;    // rotational latency
  double transfer_ms = 0.0;  // page transfer
  double overhead_ms = 0.0;  // controller/command overhead
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t cache_hits = 0;
  uint64_t readahead_pages = 0;
  uint64_t readahead_aborts = 0;
  int max_queue_depth = 0;
};

/// Per-operator measured attribution for EXPLAIN ANALYZE, collected when
/// SystemConfig::collect_operator_actuals is set. The times are elapsed
/// virtual time the operator spent awaiting each resource class, so they
/// include queueing behind other users of that resource -- they attribute
/// where the operator's lifetime went, the measured counterpart of the
/// estimate's per-resource demand (cost/explain.h). Channel waits
/// (pipeline backpressure) are excluded. Collection is pure observation:
/// clock reads and double accumulation only, never a simulation event, so
/// results are bit-identical with it on or off.
struct OperatorActual {
  double cpu_ms = 0.0;
  double disk_ms = 0.0;
  /// Wire occupancy awaited: network operator transfers and client-scan
  /// page-fault round trips (includes retransmission backoff under link
  /// faults).
  double net_ms = 0.0;
  /// Crash-window stalls (fault injection), also in fault_stall_ms.
  double stall_ms = 0.0;
  double start_ms = 0.0;  ///< virtual time the operator process started
  double end_ms = 0.0;    ///< virtual time it finished
  int64_t pages_in = 0;
  int64_t pages_out = 0;
};

/// Measured results of one simulated query execution.
struct ExecMetrics {
  /// Elapsed virtual time from query initiation until the last result tuple
  /// is displayed at the client (the paper's response-time metric), ms.
  double response_ms = 0.0;
  /// Data pages shipped over the network, including pages faulted in by
  /// client scans (the paper's "pages sent" metric).
  int64_t data_pages_sent = 0;
  /// All network messages (data pages + fault requests).
  int64_t messages = 0;
  /// Total bytes on the wire.
  int64_t bytes_sent = 0;
  /// Network busy time, ms.
  double network_busy_ms = 0.0;
  /// Total time messages spent queued behind the shared link, ms.
  double network_wait_ms = 0.0;
  /// Per-site resource usage, ms. Small sorted-vector maps: site counts
  /// are tiny and an ExecMetrics is built per simulated query.
  FlatMap<SiteId, double> cpu_busy_ms;
  FlatMap<SiteId, double> disk_busy_ms;
  /// Per-site CPU queueing time (wait excludes service), ms.
  FlatMap<SiteId, double> cpu_wait_ms;
  /// System-wide disk-model detail.
  DiskDetail disk;
  /// Distributions, populated only when SystemConfig::collect_histograms
  /// is set: per-arm-operation disk service time and per-message network
  /// queueing delay.
  Histogram disk_service_ms;
  Histogram net_queue_delay_ms;

  // --- fault injection (all zero on healthy runs) -----------------------
  /// Virtual time this query's operators spent stalled on crashed sites
  /// (summed per stalled request; concurrent operators can overlap, so
  /// this can exceed the wall-clock stretch), ms.
  double fault_stall_ms = 0.0;
  /// Link-fault retransmissions attributed to this query, and their bytes
  /// (already included in messages/bytes on the wire).
  int64_t retransmits = 0;
  int64_t retransmitted_bytes = 0;

  /// Per-operator actuals indexed by the plan node's pre-order id (display
  /// root is 0). Empty unless SystemConfig::collect_operator_actuals; the
  /// net operator pairs inserted on site-crossing edges attribute into the
  /// consuming operator's record, mirroring the estimator's accounting.
  std::vector<OperatorActual> operator_actuals;
};

/// Folds one execution's metrics into `registry` under "exec."-prefixed
/// instrument names (counters for page/message totals, gauges for times,
/// histogram merges for the distributions). No-op histogram merges when
/// the histograms were not collected.
void FoldExecMetrics(const ExecMetrics& metrics, MetricsRegistry& registry);

}  // namespace dimsum

#endif  // DIMSUM_EXEC_METRICS_H_

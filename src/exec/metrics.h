#ifndef DIMSUM_EXEC_METRICS_H_
#define DIMSUM_EXEC_METRICS_H_

#include <cstdint>
#include <map>

#include "common/ids.h"

namespace dimsum {

/// Measured results of one simulated query execution.
struct ExecMetrics {
  /// Elapsed virtual time from query initiation until the last result tuple
  /// is displayed at the client (the paper's response-time metric), ms.
  double response_ms = 0.0;
  /// Data pages shipped over the network, including pages faulted in by
  /// client scans (the paper's "pages sent" metric).
  int64_t data_pages_sent = 0;
  /// All network messages (data pages + fault requests).
  int64_t messages = 0;
  /// Total bytes on the wire.
  int64_t bytes_sent = 0;
  /// Network busy time, ms.
  double network_busy_ms = 0.0;
  /// Per-site resource usage, ms.
  std::map<SiteId, double> cpu_busy_ms;
  std::map<SiteId, double> disk_busy_ms;
};

}  // namespace dimsum

#endif  // DIMSUM_EXEC_METRICS_H_

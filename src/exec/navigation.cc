#include "exec/navigation.h"

#include <list>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace dimsum {
namespace {

/// Simple LRU set of page numbers.
class LruBuffer {
 public:
  explicit LruBuffer(int64_t capacity) : capacity_(capacity) {}

  bool Contains(int64_t page) const { return index_.count(page) > 0; }

  /// Marks `page` most-recently-used, inserting (and possibly evicting) as
  /// needed. Returns true if the page was already resident.
  bool Touch(int64_t page) {
    auto it = index_.find(page);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return true;
    }
    if (capacity_ <= 0) return false;
    order_.push_front(page);
    index_[page] = order_.begin();
    if (static_cast<int64_t>(order_.size()) > capacity_) {
      index_.erase(order_.back());
      order_.pop_back();
    }
    return false;
  }

 private:
  int64_t capacity_;
  std::list<int64_t> order_;
  std::unordered_map<int64_t, std::list<int64_t>::iterator> index_;
};

struct Session {
  const NavigationSpec& spec;
  const SystemConfig& config;
  NavigationPolicy policy;
  ExecSystem& system;
  SiteRuntime& client;
  SiteRuntime& server;
  DiskExtent extent;
  int64_t pages;
  int object_bytes;
  NavigationResult* result;
};

/// Reads `page` of the navigated relation at the server, honoring the
/// server's session buffer.
sim::Task<void> ServerReadPage(Session& s, LruBuffer& server_buffer,
                               int64_t page) {
  if (server_buffer.Touch(page)) co_return;  // buffer hit: no I/O
  co_await s.server.cpu.Use(s.config.params.DiskCpuMs());
  co_await s.server.disk(s.extent.disk).Read(s.extent.start + page);
  ++s.result->server_disk_reads;
}

sim::Process Navigate(Session& s, bool* done) {
  Rng rng(s.spec.seed);
  LruBuffer client_buffer(s.spec.client_buffer_pages);
  LruBuffer server_buffer(s.spec.server_buffer_pages);
  const CostParams& p = s.config.params;
  const int object_bytes = s.object_bytes;
  const double request_cpu = p.MsgCpuMs(p.fault_request_bytes);
  const double page_cpu = p.MsgCpuMs(p.page_bytes);
  const double object_cpu = p.MsgCpuMs(object_bytes);
  // CPU cost of dereferencing an object in a resident page.
  const double deref_cpu = p.InstrMs(p.hash_inst + p.compare_inst);

  int64_t current_page = 0;
  for (int step = 0; step < s.spec.num_steps; ++step) {
    // Choose the next object's page.
    if (!rng.Bernoulli(s.spec.locality)) {
      current_page = rng.UniformInt(0, s.pages - 1);
    }
    if (s.policy == NavigationPolicy::kDataShipping) {
      if (client_buffer.Touch(current_page)) {
        ++s.result->client_buffer_hits;
        co_await s.client.cpu.Use(deref_cpu);
        continue;
      }
      // Page fault: synchronous round trip shipping the whole page.
      co_await s.client.cpu.Use(request_cpu);
      co_await s.system.network().Transfer(p.fault_request_bytes);
      co_await s.server.cpu.Use(request_cpu);
      co_await ServerReadPage(s, server_buffer, current_page);
      co_await s.server.cpu.Use(page_cpu);
      co_await s.system.network().Transfer(p.page_bytes);
      co_await s.client.cpu.Use(page_cpu);
      co_await s.client.cpu.Use(deref_cpu);
      ++s.result->page_faults;
      s.result->bytes_on_wire += p.fault_request_bytes + p.page_bytes;
    } else {
      // Query-shipping: RPC per dereference; only the object returns.
      co_await s.client.cpu.Use(request_cpu);
      co_await s.system.network().Transfer(p.fault_request_bytes);
      co_await s.server.cpu.Use(request_cpu);
      co_await ServerReadPage(s, server_buffer, current_page);
      co_await s.server.cpu.Use(deref_cpu);
      co_await s.server.cpu.Use(object_cpu);
      co_await s.system.network().Transfer(object_bytes);
      co_await s.client.cpu.Use(object_cpu);
      ++s.result->object_rpcs;
      s.result->bytes_on_wire += p.fault_request_bytes + object_bytes;
    }
  }
  *done = true;
}

}  // namespace

NavigationResult RunNavigation(const NavigationSpec& spec,
                               const Catalog& catalog,
                               const SystemConfig& config,
                               NavigationPolicy policy) {
  DIMSUM_CHECK_GE(spec.locality, 0.0);
  DIMSUM_CHECK_LT(spec.locality, 1.0 + 1e-9);
  sim::Simulator sim;
  ExecSystem system(sim, config);
  system.LoadData(catalog);
  NavigationResult result;
  Session session{
      spec,
      config,
      policy,
      system,
      system.site(kClientSite),
      system.site(catalog.PrimarySite(spec.relation)),
      system.RelationExtent(spec.relation),
      catalog.relation(spec.relation).Pages(config.params.page_bytes),
      catalog.relation(spec.relation).tuple_bytes,
      &result};
  bool done = false;
  sim.Spawn(Navigate(session, &done));
  sim.Run();
  DIMSUM_CHECK(done);
  result.elapsed_ms = sim.now();
  return result;
}

}  // namespace dimsum

#ifndef DIMSUM_EXEC_NAVIGATION_H_
#define DIMSUM_EXEC_NAVIGATION_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "exec/runtime.h"

namespace dimsum {

/// Navigational (pointer-chasing) data access -- the workload class the
/// paper's introduction uses to motivate data-shipping and names as future
/// work ("we intend to analyze the effects of navigation-based access").
///
/// An application at the client dereferences a chain of object references
/// into one relation. With probability `locality` the next object lives on
/// the same page as the current one; otherwise it is drawn uniformly from
/// the relation. Both sides keep an LRU page buffer for the session.
struct NavigationSpec {
  RelationId relation = 0;
  int num_steps = 1000;
  /// Probability that the next object is on the current page.
  double locality = 0.9;
  /// Client page-buffer capacity (pages) for faulted-in pages.
  int64_t client_buffer_pages = 64;
  /// Server page-buffer capacity (pages) for the session.
  int64_t server_buffer_pages = 512;
  uint64_t seed = 1;
};

/// How object references are resolved.
enum class NavigationPolicy {
  /// Data-shipping: the client faults whole pages in (one synchronous
  /// round trip per miss) and navigates within its buffer; the paper's
  /// "light-weight interaction ... needed to support navigational access".
  kDataShipping,
  /// Query-shipping: every dereference is an RPC to the server, which
  /// returns just the object.
  kQueryShipping,
};

struct NavigationResult {
  double elapsed_ms = 0.0;
  int64_t client_buffer_hits = 0;
  int64_t page_faults = 0;   // DS: pages shipped to the client
  int64_t object_rpcs = 0;   // QS: per-object round trips
  int64_t server_disk_reads = 0;
  int64_t bytes_on_wire = 0;
};

/// Runs a navigation session against a fresh simulated system.
/// Deterministic given spec.seed.
NavigationResult RunNavigation(const NavigationSpec& spec,
                               const Catalog& catalog,
                               const SystemConfig& config,
                               NavigationPolicy policy);

}  // namespace dimsum

#endif  // DIMSUM_EXEC_NAVIGATION_H_

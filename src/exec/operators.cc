#include "exec/operators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "cost/hash_join_model.h"
#include "sim/trace.h"

namespace dimsum {
namespace {

/// Per-operator trace span. At process start it allocates the operator its
/// own track within its site's trace process; End() records one complete
/// span over the operator's lifetime, and Phase() records sub-spans (hash
/// join build/probe/partition). Every method is a no-op while no TraceSink
/// is attached to the simulator, so untraced runs pay one null check per
/// operator, not per page.
class OpSpan {
 public:
  OpSpan(ExecContext& ctx, SiteId site, std::string name)
      : sim_(ctx.sim), trace_(ctx.sim.trace()), pid_(site),
        name_(std::move(name)) {
    if (trace_ != nullptr) {
      tid_ = trace_->NewTrack(pid_, name_);
      t0_ = sim_.now();
    }
  }

  double now() const { return sim_.now(); }

  /// A sub-span [begin_ms, now] nested inside the operator's span.
  void Phase(std::string label, double begin_ms,
             std::vector<sim::TraceSink::Arg> args = {}) {
    if (trace_ != nullptr) {
      trace_->Complete(pid_, tid_, std::move(label), "phase", begin_ms,
                       sim_.now(), std::move(args));
    }
  }

  /// The operator's whole-lifetime span; call once, when the operator is
  /// done (coroutines have no reliable RAII point after final suspend).
  void End(std::vector<sim::TraceSink::Arg> args = {}) {
    if (trace_ != nullptr) {
      trace_->Complete(pid_, tid_, name_, "operator", t0_, sim_.now(),
                       std::move(args));
    }
  }

  /// One end of a Perfetto flow arrow on this operator's track; used by the
  /// net pair to link a page's send to its receipt across sites.
  void Flow(bool start, uint64_t id) {
    if (trace_ == nullptr) return;
    if (start) {
      trace_->FlowStart(pid_, tid_, "page", "channel", sim_.now(), id);
    } else {
      trace_->FlowEnd(pid_, tid_, "page", "channel", sim_.now(), id);
    }
  }

 private:
  sim::Simulator& sim_;
  sim::TraceSink* trace_;
  int pid_;
  int tid_ = 0;
  double t0_ = 0.0;
  std::string name_;
};

/// Accumulates one operator's elapsed virtual time at each resource class
/// into its EXPLAIN record, and (when span capture is on) records each
/// Mark()..accumulate window as a causal span on the operator's timeline
/// (sim/span.h). Every method is a pure read of the simulation clock plus
/// memory writes -- never a simulation event -- and a no-op when neither
/// record is attached, so collection cannot perturb event ordering
/// (results are bit-identical with it on or off). The elapsed time between
/// Mark() and the accumulate call includes queueing behind the awaited
/// resource; that is intentional (see OperatorActual). The queueing vs
/// service split inside a window comes from the ReqStats out-pointer
/// (Req()) threaded into the awaited resource call(s): service accumulates
/// across the window's requests and the remainder is queueing.
class ActualProbe {
 public:
  /// `owns_span` is false for the net operator pair, which accumulates
  /// into its consumer's record without claiming its start/end times.
  /// `site` is the default site spans are attributed to (the remote-read
  /// paths override it per call); `span_op` the process's span timeline id
  /// (-1 disables span capture for this probe).
  ActualProbe(ExecContext& ctx, OperatorActual* act, SiteId site, int span_op,
              bool owns_span = true)
      : sim_(ctx.sim),
        act_(act),
        spans_(span_op >= 0 ? ctx.spans : nullptr),
        ends_(ctx.channel_ends),
        site_(site),
        op_(span_op) {
    if (act_ != nullptr && owns_span) act_->start_ms = sim_.now();
  }

  double Mark() {
    if (act_ == nullptr && spans_ == nullptr) return 0.0;
    req_ = {};
    return sim_.now();
  }
  /// Request-stats out-pointer for the resource request(s) awaited inside
  /// the current Mark() window; null when span capture is off.
  sim::ReqStats* Req() { return spans_ != nullptr ? &req_ : nullptr; }

  void Cpu(double t0) { CpuAt(t0, site_); }
  void CpuAt(double t0, SiteId site) {
    const double now = sim_.now();
    if (act_ != nullptr) act_->cpu_ms += now - t0;
    Record(sim::SpanKind::kCpu, t0, now, site);
  }
  void Disk(double t0) { DiskAt(t0, site_); }
  void DiskAt(double t0, SiteId site) {
    const double now = sim_.now();
    if (act_ != nullptr) act_->disk_ms += now - t0;
    Record(sim::SpanKind::kDisk, t0, now, site);
  }
  void Net(double t0) {
    const double now = sim_.now();
    if (act_ != nullptr) act_->net_ms += now - t0;
    Record(sim::SpanKind::kNet, t0, now, /*site=*/-1);
  }
  void Stall(double ms) {
    if (act_ != nullptr) act_->stall_ms += ms;
    if (spans_ != nullptr && ms > 0.0) {
      const double now = sim_.now();
      spans_->spans.push_back(
          {op_, now - ms, now, sim::SpanKind::kFaultStall, 0.0, site_, -1});
    }
  }
  /// Records the wait for buffer-pool frames acquired over [t0, now].
  void MemoryWait(double t0) {
    if (spans_ == nullptr) return;
    const double now = sim_.now();
    if (now > t0) {
      spans_->spans.push_back(
          {op_, t0, now, sim::SpanKind::kMemory, 0.0, site_, -1});
    }
  }
  /// Records the time blocked on a channel Put since `t0` (causal edge to
  /// the channel's consumer) / Get (edge to the producer).
  void PutWait(double t0, const PageChannel& ch) { Chan(t0, ch, true); }
  void GetWait(double t0, const PageChannel& ch) { Chan(t0, ch, false); }

  void Finish(int64_t pages_in, int64_t pages_out) {
    if (act_ == nullptr) return;
    act_->pages_in = pages_in;
    act_->pages_out = pages_out;
    act_->end_ms = sim_.now();
  }

 private:
  void Record(sim::SpanKind kind, double t0, double now, SiteId site) {
    if (spans_ == nullptr || now <= t0) return;
    spans_->spans.push_back(
        {op_, t0, now, kind, req_.service_ms, site, -1});
  }
  void Chan(double t0, const PageChannel& ch, bool put) {
    if (spans_ == nullptr) return;
    const double now = sim_.now();
    if (now <= t0) return;
    int peer = -1;
    if (ends_ != nullptr) {
      auto it = ends_->find(static_cast<const void*>(&ch));
      if (it != ends_->end()) {
        peer = put ? it->second.second : it->second.first;
      }
    }
    spans_->spans.push_back(
        {op_, t0, now, sim::SpanKind::kChannel, 0.0, /*site=*/-1, peer});
  }

  sim::Simulator& sim_;
  OperatorActual* act_;
  sim::QuerySpans* spans_;
  const std::unordered_map<const void*, std::pair<int, int>>* ends_;
  SiteId site_;
  int op_;
  sim::ReqStats req_{};
};

/// Emits all complete pages accumulated in `acc`, charging the move cost of
/// result construction at `site`; returns the number of pages emitted.
sim::Task<int64_t> EmitFullPages(SiteRuntime& site, OutputAccumulator& acc,
                                 double move_ms_per_tuple, PageChannel& out,
                                 ActualProbe& probe) {
  int64_t pages = 0;
  while (acc.HasFullPage()) {
    Page page = acc.PopFullPage();
    double t0 = probe.Mark();
    co_await site.cpu.Use(move_ms_per_tuple * page.tuples, probe.Req());
    probe.Cpu(t0);
    t0 = probe.Mark();
    co_await out.Put(page);
    probe.PutWait(t0, out);
    ++pages;
  }
  co_return pages;
}

sim::Task<int64_t> EmitRemainder(SiteRuntime& site, OutputAccumulator& acc,
                                 double move_ms_per_tuple, PageChannel& out,
                                 ActualProbe& probe) {
  int64_t pages =
      co_await EmitFullPages(site, acc, move_ms_per_tuple, out, probe);
  if (acc.HasRemainder()) {
    Page page = acc.PopRemainder();
    double t0 = probe.Mark();
    co_await site.cpu.Use(move_ms_per_tuple * page.tuples, probe.Req());
    probe.Cpu(t0);
    t0 = probe.Mark();
    co_await out.Put(page);
    probe.PutWait(t0, out);
    ++pages;
  }
  co_return pages;
}

/// Stalls while `site` is crashed: fail-stop at request boundaries, so work
/// already in service finishes but new disk/network requests wait for the
/// restart (chained crash windows included). Returns the stalled time, ms.
/// Callers guard on ctx.faults != nullptr, so healthy runs pay only that
/// branch (no coroutine frame).
sim::Task<double> AwaitSiteUp(ExecContext& ctx, SiteId site) {
  double stall_ms = 0.0;
  while (ctx.faults->SiteDown(site, ctx.sim.now())) {
    const double wait_ms =
        ctx.faults->SiteUpAt(site, ctx.sim.now()) - ctx.sim.now();
    stall_ms += wait_ms;
    co_await ctx.sim.Delay(wait_ms);
  }
  co_return stall_ms;
}

/// One transfer under the fault model: a message started inside a drop
/// window occupies the wire but is lost; the sender times out (virtual
/// time) and retransmits with exponential backoff until a transfer starts
/// outside a drop window. Delay windows stretch the time on the wire.
/// Retransmissions are counted into the query's metrics; the network's own
/// message/byte totals include them too (they really crossed the wire).
sim::Task<void> FaultyTransfer(ExecContext& ctx, int64_t bytes,
                               sim::ReqStats* stats = nullptr) {
  const FaultTolerance& tolerance = *ctx.fault_tolerance;
  double timeout_ms = tolerance.retransmit_timeout_ms;
  while (true) {
    const bool dropped = ctx.faults->LinkDropping(ctx.sim.now());
    const double factor = ctx.faults->LinkDelayFactor(ctx.sim.now());
    co_await ctx.system.network().Transfer(bytes, factor, stats);
    if (!dropped) co_return;
    ++ctx.metrics.retransmits;
    ctx.metrics.retransmitted_bytes += bytes;
    ++ctx.metrics.messages;
    ctx.metrics.bytes_sent += bytes;
    co_await ctx.sim.Delay(timeout_ms);
    timeout_ms = std::min(timeout_ms * tolerance.retransmit_backoff_mult,
                          tolerance.retransmit_backoff_cap_ms);
  }
}

}  // namespace

sim::Process ScanProcess(ExecContext& ctx, const PlanNode& node,
                         PageChannel& out) {
  const Relation& rel = ctx.catalog.relation(node.relation);
  const int64_t tuples_per_page = rel.TuplesPerPage(ctx.params.page_bytes);
  const double disk_cpu = ctx.params.DiskCpuMs();

  auto tuples_on_page = [&](int64_t index) {
    const int64_t before = index * tuples_per_page;
    return static_cast<double>(
        std::min(tuples_per_page, rel.num_tuples - before));
  };

  // What this scan reads and emits. Unrestricted logical scans (shard -1,
  // key [0,1)) read every page and emit per-page exact tuple counts, bit
  // for bit as before sharding existed. Shard fragments read their
  // shard's extent; key-restricted scans emit the restriction's tuples
  // spread uniformly over the pages they read (reads stay page- and
  // shard-granular, so a restriction never shrinks I/O by itself).
  const bool fragment = node.shard >= 0 && ctx.catalog.sharded(node.relation);
  const bool restricted =
      fragment || node.key_lo != 0.0 || node.key_hi != 1.0;
  const ScanSlice slice =
      ctx.catalog.ScanExtent(node.relation, node.shard, node.key_lo,
                             node.key_hi, ctx.params.page_bytes);
  const int64_t total_pages = slice.pages;
  const double uniform_tuples =
      slice.pages > 0 ? static_cast<double>(slice.tuples) /
                            static_cast<double>(slice.pages)
                      : 0.0;
  auto emit_on_page = [&](int64_t index) {
    return restricted ? uniform_tuples : tuples_on_page(index);
  };

  OpSpan span(ctx, node.bound_site, "scan " + rel.name);
  ActualProbe probe(ctx, ctx.Actual(node), node.bound_site, ctx.SpanOp(node));

  if (node.annotation == SiteAnnotation::kPrimaryCopy) {
    SiteRuntime& server = ctx.system.site(node.bound_site);
    const DiskExtent extent =
        fragment
            ? ctx.system.ShardExtent(node.bound_site, node.relation,
                                     node.shard)
            : ctx.system.RelationExtent(node.bound_site, node.relation);
    for (int64_t i = 0; i < total_pages; ++i) {
      if (ctx.faults != nullptr) {
        const double stalled = co_await AwaitSiteUp(ctx, node.bound_site);
        ctx.metrics.fault_stall_ms += stalled;
        probe.Stall(stalled);
      }
      double t0 = probe.Mark();
      co_await server.cpu.Use(disk_cpu, probe.Req());
      probe.Cpu(t0);
      t0 = probe.Mark();
      co_await server.disk(extent.disk).Read(extent.start + i, probe.Req());
      probe.Disk(t0);
      t0 = probe.Mark();
      co_await out.Put(Page{emit_on_page(i)});
      probe.PutWait(t0, out);
    }
    out.Close();
    probe.Finish(0, total_pages);
    span.End({{"pages_out", static_cast<double>(total_pages)}});
    co_return;
  }

  // Client scan: cached prefix from the home client's disk, remainder
  // faulted in synchronously, one page per round trip.
  DIMSUM_CHECK(ctx.system.IsClientSite(node.bound_site))
      << "client-annotated scan bound to server site " << node.bound_site;
  const SiteId home = node.bound_site;
  SiteRuntime& client = ctx.system.site(home);

  if (ctx.catalog.sharded(node.relation)) {
    // Sharded relations are never client-cached: every shard's pages
    // fault in from that shard's serving copy, shard by shard.
    const double request_cpu =
        ctx.params.MsgCpuMs(ctx.params.fault_request_bytes);
    const double page_cpu = ctx.params.MsgCpuMs(ctx.params.page_bytes);
    int64_t read_pages = 0;
    for (int k = 0; k < ctx.catalog.NumShards(node.relation); ++k) {
      read_pages +=
          ctx.catalog.ShardPages(node.relation, k, ctx.params.page_bytes);
    }
    const double shard_uniform =
        read_pages > 0 ? static_cast<double>(slice.tuples) /
                             static_cast<double>(read_pages)
                       : 0.0;
    int64_t faulted = 0;
    for (int k = 0; k < ctx.catalog.NumShards(node.relation); ++k) {
      SiteRuntime& server = ctx.system.site(
          ctx.catalog.ShardSite(node.relation, k, node.replica));
      const int64_t shard_pages =
          ctx.catalog.ShardPages(node.relation, k, ctx.params.page_bytes);
      if (shard_pages == 0) continue;
      const DiskExtent extent =
          ctx.system.ShardExtent(server.id, node.relation, k);
      for (int64_t i = 0; i < shard_pages; ++i) {
        ++faulted;
        if (ctx.faults != nullptr) {
          const double stalled = co_await AwaitSiteUp(ctx, server.id);
          ctx.metrics.fault_stall_ms += stalled;
          probe.Stall(stalled);
        }
        double t0 = probe.Mark();
        co_await client.cpu.Use(request_cpu, probe.Req());
        probe.Cpu(t0);
        t0 = probe.Mark();
        if (ctx.faults == nullptr) {
          co_await ctx.system.network().Transfer(
              ctx.params.fault_request_bytes, 1.0, probe.Req());
        } else {
          co_await FaultyTransfer(ctx, ctx.params.fault_request_bytes,
                                  probe.Req());
        }
        probe.Net(t0);
        t0 = probe.Mark();
        co_await server.cpu.Use(request_cpu, probe.Req());
        co_await server.cpu.Use(disk_cpu, probe.Req());
        probe.CpuAt(t0, server.id);
        t0 = probe.Mark();
        co_await server.disk(extent.disk).Read(extent.start + i, probe.Req());
        probe.DiskAt(t0, server.id);
        t0 = probe.Mark();
        co_await server.cpu.Use(page_cpu, probe.Req());
        probe.CpuAt(t0, server.id);
        t0 = probe.Mark();
        if (ctx.faults == nullptr) {
          co_await ctx.system.network().Transfer(ctx.params.page_bytes, 1.0,
                                                 probe.Req());
        } else {
          co_await FaultyTransfer(ctx, ctx.params.page_bytes, probe.Req());
        }
        probe.Net(t0);
        t0 = probe.Mark();
        co_await client.cpu.Use(page_cpu, probe.Req());
        probe.Cpu(t0);
        ++ctx.metrics.data_pages_sent;
        ctx.metrics.messages += 2;
        ctx.metrics.bytes_sent +=
            ctx.params.fault_request_bytes + ctx.params.page_bytes;
        t0 = probe.Mark();
        co_await out.Put(Page{shard_uniform});
        probe.PutWait(t0, out);
      }
    }
    out.Close();
    probe.Finish(0, read_pages);
    span.End({{"pages_out", static_cast<double>(read_pages)},
              {"pages_faulted", static_cast<double>(faulted)}});
    co_return;
  }

  SiteRuntime& server =
      ctx.system.site(ctx.catalog.ReplicaSite(node.relation, node.replica));
  const int64_t cached = std::min(
      ctx.catalog.CachedPages(node.relation, home, ctx.params.page_bytes),
      total_pages);
  const DiskExtent server_extent =
      ctx.system.RelationExtent(server.id, node.relation);
  const double request_cpu = ctx.params.MsgCpuMs(ctx.params.fault_request_bytes);
  const double page_cpu = ctx.params.MsgCpuMs(ctx.params.page_bytes);

  int64_t faulted = 0;
  for (int64_t i = 0; i < total_pages; ++i) {
    if (i < cached) {
      const DiskExtent cache_extent =
          ctx.system.CacheExtent(home, node.relation);
      double t0 = probe.Mark();
      co_await client.cpu.Use(disk_cpu, probe.Req());
      probe.Cpu(t0);
      t0 = probe.Mark();
      co_await client.disk(cache_extent.disk)
          .Read(cache_extent.start + i, probe.Req());
      probe.Disk(t0);
    } else {
      ++faulted;
      // Page fault: request to the server, server disk read, page back.
      // A crashed server stalls the fault-in until its restart.
      if (ctx.faults != nullptr) {
        const double stalled = co_await AwaitSiteUp(ctx, server.id);
        ctx.metrics.fault_stall_ms += stalled;
        probe.Stall(stalled);
      }
      double t0 = probe.Mark();
      co_await client.cpu.Use(request_cpu, probe.Req());
      probe.Cpu(t0);
      t0 = probe.Mark();
      if (ctx.faults == nullptr) {
        co_await ctx.system.network().Transfer(ctx.params.fault_request_bytes,
                                               1.0, probe.Req());
      } else {
        co_await FaultyTransfer(ctx, ctx.params.fault_request_bytes,
                                probe.Req());
      }
      probe.Net(t0);
      t0 = probe.Mark();
      co_await server.cpu.Use(request_cpu, probe.Req());
      co_await server.cpu.Use(disk_cpu, probe.Req());
      probe.CpuAt(t0, server.id);
      t0 = probe.Mark();
      co_await server.disk(server_extent.disk)
          .Read(server_extent.start + i, probe.Req());
      probe.DiskAt(t0, server.id);
      t0 = probe.Mark();
      co_await server.cpu.Use(page_cpu, probe.Req());
      probe.CpuAt(t0, server.id);
      t0 = probe.Mark();
      if (ctx.faults == nullptr) {
        co_await ctx.system.network().Transfer(ctx.params.page_bytes, 1.0,
                                               probe.Req());
      } else {
        co_await FaultyTransfer(ctx, ctx.params.page_bytes, probe.Req());
      }
      probe.Net(t0);
      t0 = probe.Mark();
      co_await client.cpu.Use(page_cpu, probe.Req());
      probe.Cpu(t0);
      ++ctx.metrics.data_pages_sent;
      ctx.metrics.messages += 2;
      ctx.metrics.bytes_sent +=
          ctx.params.fault_request_bytes + ctx.params.page_bytes;
    }
    const double tq = probe.Mark();
    co_await out.Put(Page{emit_on_page(i)});
    probe.PutWait(tq, out);
  }
  out.Close();
  probe.Finish(0, total_pages);
  span.End({{"pages_out", static_cast<double>(total_pages)},
            {"pages_faulted", static_cast<double>(faulted)}});
}

sim::Process SelectProcess(ExecContext& ctx, const PlanNode& node,
                           PageChannel& in, PageChannel& out) {
  SiteRuntime& site = ctx.system.site(node.bound_site);
  const StreamStats& out_stats = ctx.stats.at(&node);
  const int64_t tuples_per_page =
      std::max<int64_t>(1, ctx.params.page_bytes / out_stats.tuple_bytes);
  OutputAccumulator acc(tuples_per_page);
  const double compare = ctx.params.InstrMs(ctx.params.compare_inst);
  const double move = ctx.params.MoveTupleMs(out_stats.tuple_bytes);
  OpSpan span(ctx, node.bound_site, "select");
  ActualProbe probe(ctx, ctx.Actual(node), node.bound_site, ctx.SpanOp(node));
  int64_t pages_in = 0, pages_out = 0;
  while (true) {
    double t0 = probe.Mark();
    std::optional<Page> page = co_await in.Get();
    probe.GetWait(t0, in);
    if (!page.has_value()) break;
    ++pages_in;
    t0 = probe.Mark();
    co_await site.cpu.Use(compare * page->tuples, probe.Req());
    probe.Cpu(t0);
    acc.Add(page->tuples * node.selectivity);
    pages_out += co_await EmitFullPages(site, acc, move, out, probe);
  }
  pages_out += co_await EmitRemainder(site, acc, move, out, probe);
  out.Close();
  probe.Finish(pages_in, pages_out);
  span.End({{"pages_in", static_cast<double>(pages_in)},
            {"pages_out", static_cast<double>(pages_out)}});
}

sim::Process ProjectProcess(ExecContext& ctx, const PlanNode& node,
                            PageChannel& in, PageChannel& out) {
  SiteRuntime& site = ctx.system.site(node.bound_site);
  const StreamStats& out_stats = ctx.stats.at(&node);
  const int64_t tuples_per_page =
      std::max<int64_t>(1, ctx.params.page_bytes / out_stats.tuple_bytes);
  OutputAccumulator acc(tuples_per_page);
  const double move = ctx.params.MoveTupleMs(out_stats.tuple_bytes);
  OpSpan span(ctx, node.bound_site, "project");
  ActualProbe probe(ctx, ctx.Actual(node), node.bound_site, ctx.SpanOp(node));
  int64_t pages_in = 0, pages_out = 0;
  while (true) {
    const double t0 = probe.Mark();
    std::optional<Page> page = co_await in.Get();
    probe.GetWait(t0, in);
    if (!page.has_value()) break;
    ++pages_in;
    acc.Add(page->tuples);
    pages_out += co_await EmitFullPages(site, acc, move, out, probe);
  }
  pages_out += co_await EmitRemainder(site, acc, move, out, probe);
  out.Close();
  probe.Finish(pages_in, pages_out);
  span.End({{"pages_in", static_cast<double>(pages_in)},
            {"pages_out", static_cast<double>(pages_out)}});
}

sim::Process AggregateProcess(ExecContext& ctx, const PlanNode& node,
                              PageChannel& in, PageChannel& out) {
  SiteRuntime& site = ctx.system.site(node.bound_site);
  const StreamStats& out_stats = ctx.stats.at(&node);
  const double hash = ctx.params.InstrMs(ctx.params.hash_inst);
  const double compare = ctx.params.InstrMs(ctx.params.compare_inst);
  OpSpan span(ctx, node.bound_site, "aggregate");
  ActualProbe probe(ctx, ctx.Actual(node), node.bound_site, ctx.SpanOp(node));
  int64_t pages_in = 0;
  // Blocking phase: hash every input tuple into the group table.
  while (true) {
    double t0 = probe.Mark();
    std::optional<Page> page = co_await in.Get();
    probe.GetWait(t0, in);
    if (!page.has_value()) break;
    ++pages_in;
    t0 = probe.Mark();
    co_await site.cpu.Use((hash + compare) * page->tuples, probe.Req());
    probe.Cpu(t0);
  }
  // Emit the groups.
  const int64_t tuples_per_page =
      std::max<int64_t>(1, ctx.params.page_bytes / out_stats.tuple_bytes);
  OutputAccumulator acc(tuples_per_page);
  const double move = ctx.params.MoveTupleMs(out_stats.tuple_bytes);
  acc.Add(static_cast<double>(out_stats.tuples));
  const int64_t pages_out = co_await EmitRemainder(site, acc, move, out, probe);
  out.Close();
  probe.Finish(pages_in, pages_out);
  span.End({{"pages_in", static_cast<double>(pages_in)},
            {"pages_out", static_cast<double>(pages_out)}});
}

sim::Process SortProcess(ExecContext& ctx, const PlanNode& node,
                         PageChannel& in, PageChannel& out) {
  SiteRuntime& site = ctx.system.site(node.bound_site);
  const StreamStats& in_stats = ctx.stats.at(node.left.get());
  const StreamStats& out_stats = ctx.stats.at(&node);
  const double compare = ctx.params.InstrMs(ctx.params.compare_inst);
  const double disk_cpu = ctx.params.DiskCpuMs();
  const double log_n =
      in_stats.tuples > 1 ? std::log2(static_cast<double>(in_stats.tuples))
                          : 1.0;
  const bool spills = ctx.params.buf_alloc == BufAlloc::kMinimum;

  // Memory: in-memory sort needs the whole input; run generation needs the
  // sqrt-sized allocation that guarantees a one-pass merge.
  const int64_t frames =
      spills ? std::max<int64_t>(
                   2, static_cast<int64_t>(std::ceil(std::sqrt(
                          ctx.params.hash_fudge *
                          static_cast<double>(std::max<int64_t>(
                              in_stats.pages, 1))))))
             : std::max<int64_t>(1, in_stats.pages);
  const double mem_t0 = ctx.sim.now();
  co_await site.memory.Acquire(frames);
  OpSpan span(ctx, node.bound_site, "sort");
  ActualProbe probe(ctx, ctx.Actual(node), node.bound_site, ctx.SpanOp(node));
  probe.MemoryWait(mem_t0);
  int64_t pages_in = 0, pages_out = 0;

  DiskExtent runs{};
  int64_t run_pages = 0;
  if (spills && in_stats.pages > 0) {
    runs = site.AllocateTempOn(0, in_stats.pages + 2);
  }
  // Run-generation phase: consume the input, sort, spill runs.
  const double run_start = span.now();
  while (true) {
    double t0 = probe.Mark();
    std::optional<Page> page = co_await in.Get();
    probe.GetWait(t0, in);
    if (!page.has_value()) break;
    ++pages_in;
    t0 = probe.Mark();
    co_await site.cpu.Use(compare * log_n * page->tuples, probe.Req());
    probe.Cpu(t0);
    if (spills) {
      if (ctx.faults != nullptr) {
        const double stalled = co_await AwaitSiteUp(ctx, node.bound_site);
        ctx.metrics.fault_stall_ms += stalled;
        probe.Stall(stalled);
      }
      t0 = probe.Mark();
      co_await site.cpu.Use(disk_cpu, probe.Req());
      probe.Cpu(t0);
      t0 = probe.Mark();
      co_await site.disk(runs.disk).Write(runs.start + run_pages++);
      probe.Disk(t0);
    }
  }
  if (spills) {
    const double t0 = probe.Mark();
    co_await site.disk(runs.disk).Flush();
    probe.Disk(t0);
  }
  span.Phase("run-generation", run_start,
             {{"run_pages", static_cast<double>(run_pages)}});
  // Merge/output phase: read the runs back and emit sorted pages.
  const double merge_start = span.now();
  const int64_t tuples_per_page =
      std::max<int64_t>(1, ctx.params.page_bytes / out_stats.tuple_bytes);
  OutputAccumulator acc(tuples_per_page);
  const double move = ctx.params.MoveTupleMs(out_stats.tuple_bytes);
  if (spills) {
    for (int64_t i = 0; i < run_pages; ++i) {
      if (ctx.faults != nullptr) {
        const double stalled = co_await AwaitSiteUp(ctx, node.bound_site);
        ctx.metrics.fault_stall_ms += stalled;
        probe.Stall(stalled);
      }
      double t0 = probe.Mark();
      co_await site.cpu.Use(disk_cpu, probe.Req());
      probe.Cpu(t0);
      t0 = probe.Mark();
      co_await site.disk(runs.disk).Read(runs.start + i, probe.Req());
      probe.Disk(t0);
      acc.Add(static_cast<double>(out_stats.tuples) /
              std::max<int64_t>(run_pages, 1));
      pages_out += co_await EmitFullPages(site, acc, move, out, probe);
    }
  } else {
    acc.Add(static_cast<double>(out_stats.tuples));
  }
  pages_out += co_await EmitRemainder(site, acc, move, out, probe);
  out.Close();
  probe.Finish(pages_in, pages_out);
  span.Phase("merge", merge_start);
  span.End({{"pages_in", static_cast<double>(pages_in)},
            {"pages_out", static_cast<double>(pages_out)}});
  site.memory.Release(frames);
}

sim::Process UnionProcess(ExecContext& ctx, const PlanNode& node,
                          PageChannel& left, PageChannel& right,
                          PageChannel& out) {
  SiteRuntime& site = ctx.system.site(node.bound_site);
  const StreamStats& out_stats = ctx.stats.at(&node);
  const double move = ctx.params.MoveTupleMs(out_stats.tuple_bytes);
  OpSpan span(ctx, node.bound_site, "union");
  ActualProbe probe(ctx, ctx.Actual(node), node.bound_site, ctx.SpanOp(node));
  int64_t pages = 0;
  for (PageChannel* input : {&left, &right}) {
    while (true) {
      double t0 = probe.Mark();
      std::optional<Page> page = co_await input->Get();
      probe.GetWait(t0, *input);
      if (!page.has_value()) break;
      ++pages;
      t0 = probe.Mark();
      co_await site.cpu.Use(move * page->tuples, probe.Req());
      probe.Cpu(t0);
      t0 = probe.Mark();
      co_await out.Put(*page);
      probe.PutWait(t0, out);
    }
  }
  out.Close();
  probe.Finish(pages, pages);
  span.End({{"pages_in", static_cast<double>(pages)},
            {"pages_out", static_cast<double>(pages)}});
}

sim::Process HashJoinProcess(ExecContext& ctx, const PlanNode& node,
                             PageChannel& inner, PageChannel& outer,
                             PageChannel& out) {
  SiteRuntime& site = ctx.system.site(node.bound_site);
  const StreamStats& inner_stats = ctx.stats.at(node.left.get());
  const StreamStats& outer_stats = ctx.stats.at(node.right.get());
  const StreamStats& out_stats = ctx.stats.at(&node);
  const HashJoinModel hj = ComputeHashJoinModel(
      inner_stats.pages, ctx.params.buf_alloc, ctx.params.hash_fudge);

  const double hash = ctx.params.InstrMs(ctx.params.hash_inst);
  const double compare = ctx.params.InstrMs(ctx.params.compare_inst);
  const double move_in = ctx.params.MoveTupleMs(inner_stats.tuple_bytes);
  const double move_out = ctx.params.MoveTupleMs(out_stats.tuple_bytes);
  const double disk_cpu = ctx.params.DiskCpuMs();

  const double mem_t0 = ctx.sim.now();
  co_await site.memory.Acquire(hj.memory_frames);
  OpSpan span(ctx, node.bound_site, "join");
  ActualProbe probe(ctx, ctx.Actual(node), node.bound_site, ctx.SpanOp(node));
  probe.MemoryWait(mem_t0);
  int64_t pages_in = 0, pages_out = 0;

  // Temp extents: one per partition and side, so partition writes hop
  // between extents (seeks) while partition reads are sequential runs.
  const int partitions = std::max(1, hj.num_partitions);
  const int64_t inner_spill_total = hj.SpillPages(inner_stats.pages);
  const int64_t outer_spill_total = hj.SpillPages(outer_stats.pages);
  std::vector<DiskExtent> inner_extent(partitions), outer_extent(partitions);
  std::vector<int64_t> inner_written(partitions, 0), outer_written(partitions, 0);
  if (!hj.in_memory()) {
    const int64_t inner_cap = inner_spill_total / partitions + 2;
    const int64_t outer_cap = outer_spill_total / partitions + 2;
    for (int p = 0; p < partitions; ++p) {
      // Stripe partitions over the site's disks; a partition's inner and
      // outer halves share an arm (they are read back to back anyway).
      inner_extent[p] = site.AllocateTempOn(p, inner_cap);
      outer_extent[p] = site.AllocateTempOn(p, outer_cap);
    }
  }

  // --- build phase: consume the inner input -----------------------------
  const double build_start = span.now();
  double spill_acc = 0.0;  // fractional pages destined for temp storage
  int next_partition = 0;
  while (true) {
    double t0 = probe.Mark();
    std::optional<Page> page = co_await inner.Get();
    probe.GetWait(t0, inner);
    if (!page.has_value()) break;
    ++pages_in;
    t0 = probe.Mark();
    co_await site.cpu.Use((hash + move_in) * page->tuples, probe.Req());
    probe.Cpu(t0);
    if (!hj.in_memory()) {
      spill_acc += hj.spill_fraction;
      while (spill_acc >= 1.0) {
        spill_acc -= 1.0;
        const int p = next_partition;
        next_partition = (next_partition + 1) % partitions;
        if (ctx.faults != nullptr) {
          const double stalled = co_await AwaitSiteUp(ctx, node.bound_site);
          ctx.metrics.fault_stall_ms += stalled;
          probe.Stall(stalled);
        }
        t0 = probe.Mark();
        co_await site.cpu.Use(disk_cpu, probe.Req());
        probe.Cpu(t0);
        t0 = probe.Mark();
        co_await site.disk(inner_extent[p].disk)
            .Write(inner_extent[p].start + inner_written[p]++);
        probe.Disk(t0);
      }
    }
  }
  if (!hj.in_memory()) {
    const double t0 = probe.Mark();
    for (int d = 0; d < site.num_disks(); ++d) {
      co_await site.disk(d).Flush();
    }
    probe.Disk(t0);
  }
  span.Phase("build", build_start,
             {{"spilled_pages", static_cast<double>(inner_spill_total)}});

  // --- probe phase: stream the outer input ------------------------------
  const double probe_start = span.now();
  const int64_t out_tuples_per_page =
      std::max<int64_t>(1, ctx.params.page_bytes / out_stats.tuple_bytes);
  OutputAccumulator acc(out_tuples_per_page);
  const double resident_fraction = 1.0 - hj.spill_fraction;
  const double resident_out_per_outer_tuple =
      outer_stats.tuples > 0
          ? static_cast<double>(out_stats.tuples) * resident_fraction /
                static_cast<double>(outer_stats.tuples)
          : 0.0;
  spill_acc = 0.0;
  next_partition = 0;
  while (true) {
    double t0 = probe.Mark();
    std::optional<Page> page = co_await outer.Get();
    probe.GetWait(t0, outer);
    if (!page.has_value()) break;
    ++pages_in;
    t0 = probe.Mark();
    co_await site.cpu.Use((hash + compare) * page->tuples, probe.Req());
    probe.Cpu(t0);
    acc.Add(page->tuples * resident_out_per_outer_tuple);
    pages_out += co_await EmitFullPages(site, acc, move_out, out, probe);
    if (!hj.in_memory()) {
      spill_acc += hj.spill_fraction;
      while (spill_acc >= 1.0) {
        spill_acc -= 1.0;
        const int p = next_partition;
        next_partition = (next_partition + 1) % partitions;
        if (ctx.faults != nullptr) {
          const double stalled = co_await AwaitSiteUp(ctx, node.bound_site);
          ctx.metrics.fault_stall_ms += stalled;
          probe.Stall(stalled);
        }
        t0 = probe.Mark();
        co_await site.cpu.Use(disk_cpu, probe.Req());
        probe.Cpu(t0);
        t0 = probe.Mark();
        co_await site.disk(outer_extent[p].disk)
            .Write(outer_extent[p].start + outer_written[p]++);
        probe.Disk(t0);
      }
    }
  }

  span.Phase("probe", probe_start,
             {{"spilled_pages", static_cast<double>(outer_spill_total)}});

  // --- partition phase: join the spilled partition pairs ----------------
  if (!hj.in_memory()) {
    const double partition_start = span.now();
    double t0 = probe.Mark();
    for (int d = 0; d < site.num_disks(); ++d) {
      co_await site.disk(d).Flush();
    }
    probe.Disk(t0);
    const int64_t inner_tpp =
        std::max<int64_t>(1, ctx.params.page_bytes / inner_stats.tuple_bytes);
    const int64_t outer_tpp =
        std::max<int64_t>(1, ctx.params.page_bytes / outer_stats.tuple_bytes);
    const double spilled_out_total =
        static_cast<double>(out_stats.tuples) * hj.spill_fraction;
    for (int p = 0; p < partitions; ++p) {
      // Rebuild the hash table from the spilled inner partition.
      for (int64_t i = 0; i < inner_written[p]; ++i) {
        if (ctx.faults != nullptr) {
          const double stalled = co_await AwaitSiteUp(ctx, node.bound_site);
          ctx.metrics.fault_stall_ms += stalled;
          probe.Stall(stalled);
        }
        t0 = probe.Mark();
        co_await site.cpu.Use(disk_cpu, probe.Req());
        probe.Cpu(t0);
        t0 = probe.Mark();
        co_await site.disk(inner_extent[p].disk)
            .Read(inner_extent[p].start + i, probe.Req());
        probe.Disk(t0);
        t0 = probe.Mark();
        co_await site.cpu.Use((hash + move_in) *
                                  static_cast<double>(inner_tpp),
                              probe.Req());
        probe.Cpu(t0);
      }
      // Probe with the spilled outer partition.
      for (int64_t i = 0; i < outer_written[p]; ++i) {
        if (ctx.faults != nullptr) {
          const double stalled = co_await AwaitSiteUp(ctx, node.bound_site);
          ctx.metrics.fault_stall_ms += stalled;
          probe.Stall(stalled);
        }
        t0 = probe.Mark();
        co_await site.cpu.Use(disk_cpu, probe.Req());
        probe.Cpu(t0);
        t0 = probe.Mark();
        co_await site.disk(outer_extent[p].disk)
            .Read(outer_extent[p].start + i, probe.Req());
        probe.Disk(t0);
        t0 = probe.Mark();
        co_await site.cpu.Use((hash + compare) *
                                  static_cast<double>(outer_tpp),
                              probe.Req());
        probe.Cpu(t0);
      }
      acc.Add(spilled_out_total / partitions);
      pages_out += co_await EmitFullPages(site, acc, move_out, out, probe);
    }
    span.Phase("partition", partition_start,
               {{"partitions", static_cast<double>(partitions)}});
  }

  pages_out += co_await EmitRemainder(site, acc, move_out, out, probe);
  out.Close();
  probe.Finish(pages_in, pages_out);
  span.End({{"pages_in", static_cast<double>(pages_in)},
            {"pages_out", static_cast<double>(pages_out)}});
  site.memory.Release(hj.memory_frames);
}

sim::Process DisplayProcess(ExecContext& ctx, const PlanNode& node,
                            PageChannel& in) {
  SiteRuntime& client = ctx.system.site(node.bound_site);
  const double display = ctx.params.InstrMs(ctx.params.display_inst);
  OpSpan span(ctx, node.bound_site, "display");
  ActualProbe probe(ctx, ctx.Actual(node), node.bound_site, ctx.SpanOp(node));
  int64_t pages = 0;
  while (true) {
    double t0 = probe.Mark();
    std::optional<Page> page = co_await in.Get();
    probe.GetWait(t0, in);
    if (!page.has_value()) break;
    ++pages;
    t0 = probe.Mark();
    co_await client.cpu.Use(display * page->tuples, probe.Req());
    probe.Cpu(t0);
  }
  probe.Finish(pages, 0);
  span.End({{"pages_in", static_cast<double>(pages)}});
  ctx.metrics.response_ms = ctx.sim.now() - ctx.start_ms;
  ctx.query_done = true;
  if (ctx.batch_remaining != nullptr && --*ctx.batch_remaining == 0 &&
      ctx.batch_done != nullptr) {
    *ctx.batch_done = true;
  }
  if (ctx.on_done) ctx.on_done();
}

sim::Process NetSendProcess(ExecContext& ctx, SiteId from, PageChannel& in,
                            PageChannel& wire, OperatorActual* actual,
                            int span_op, uint64_t flow_base) {
  SiteRuntime& site = ctx.system.site(from);
  const double page_cpu = ctx.params.MsgCpuMs(ctx.params.page_bytes);
  OpSpan span(ctx, from, "ship-send");
  ActualProbe probe(ctx, actual, from, span_op, /*owns_span=*/false);
  int64_t pages = 0;
  uint64_t flow_seq = 0;
  while (true) {
    double t0 = probe.Mark();
    std::optional<Page> page = co_await in.Get();
    probe.GetWait(t0, in);
    if (!page.has_value()) break;
    ++pages;
    if (ctx.faults != nullptr) {
      const double stalled = co_await AwaitSiteUp(ctx, from);
      ctx.metrics.fault_stall_ms += stalled;
      probe.Stall(stalled);
    }
    t0 = probe.Mark();
    co_await site.cpu.Use(page_cpu, probe.Req());
    probe.Cpu(t0);
    t0 = probe.Mark();
    if (ctx.faults == nullptr) {
      co_await ctx.system.network().Transfer(ctx.params.page_bytes, 1.0,
                                             probe.Req());
    } else {
      co_await FaultyTransfer(ctx, ctx.params.page_bytes, probe.Req());
    }
    probe.Net(t0);
    ++ctx.metrics.data_pages_sent;
    ++ctx.metrics.messages;
    ctx.metrics.bytes_sent += ctx.params.page_bytes;
    span.Flow(true, flow_base + flow_seq++);
    t0 = probe.Mark();
    co_await wire.Put(*page);
    probe.PutWait(t0, wire);
  }
  wire.Close();
  span.End({{"pages_out", static_cast<double>(pages)}});
}

sim::Process NetRecvProcess(ExecContext& ctx, SiteId to, PageChannel& wire,
                            PageChannel& out, OperatorActual* actual,
                            int span_op, uint64_t flow_base) {
  SiteRuntime& site = ctx.system.site(to);
  const double page_cpu = ctx.params.MsgCpuMs(ctx.params.page_bytes);
  OpSpan span(ctx, to, "ship-recv");
  ActualProbe probe(ctx, actual, to, span_op, /*owns_span=*/false);
  int64_t pages = 0;
  uint64_t flow_seq = 0;
  while (true) {
    double t0 = probe.Mark();
    std::optional<Page> page = co_await wire.Get();
    probe.GetWait(t0, wire);
    if (!page.has_value()) break;
    ++pages;
    // Pages cross the wire in FIFO order, so the n-th receipt pairs with
    // the n-th send on this channel.
    span.Flow(false, flow_base + flow_seq++);
    if (ctx.faults != nullptr) {
      const double stalled = co_await AwaitSiteUp(ctx, to);
      ctx.metrics.fault_stall_ms += stalled;
      probe.Stall(stalled);
    }
    t0 = probe.Mark();
    co_await site.cpu.Use(page_cpu, probe.Req());
    probe.Cpu(t0);
    t0 = probe.Mark();
    co_await out.Put(*page);
    probe.PutWait(t0, out);
  }
  out.Close();
  span.End({{"pages_in", static_cast<double>(pages)}});
}

sim::Process LoadGeneratorProcess(sim::Simulator& sim, SiteRuntime& site,
                                  const CostParams& params,
                                  double requests_per_sec, uint64_t seed,
                                  const bool* stop, sim::FaultState* faults) {
  DIMSUM_CHECK_GT(requests_per_sec, 0.0);
  Rng rng(seed);
  const double mean_gap_ms = 1000.0 / requests_per_sec;
  const int64_t pages = site.disk(0).params().total_pages();
  struct OneRead {
    static sim::Process Run(SiteRuntime& site, int disk, int64_t block,
                            double disk_cpu) {
      co_await site.cpu.Use(disk_cpu);
      co_await site.disk(disk).Read(block);
    }
  };
  while (!*stop) {
    co_await sim.Delay(rng.Exponential(mean_gap_ms));
    if (*stop) break;
    const int disk =
        static_cast<int>(rng.UniformInt(0, site.num_disks() - 1));
    const int64_t block = rng.UniformInt(0, pages - 1);
    // External requests against a crashed server are lost, not queued.
    if (faults != nullptr && faults->SiteDown(site.id, sim.now())) continue;
    sim.Spawn(OneRead::Run(site, disk, block, params.DiskCpuMs()));
  }
}

}  // namespace dimsum

#ifndef DIMSUM_EXEC_OPERATORS_H_
#define DIMSUM_EXEC_OPERATORS_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "cost/cardinality.h"
#include "cost/params.h"
#include "exec/metrics.h"
#include "exec/page.h"
#include "exec/runtime.h"
#include "plan/plan.h"
#include "sim/channel.h"
#include "sim/span.h"
#include "sim/task.h"

namespace dimsum {

using PageChannel = sim::Channel<Page>;

/// Shared state of one query execution, referenced by all operator
/// processes. Owned by the executor; must outlive the simulation run.
struct ExecContext {
  sim::Simulator& sim;
  ExecSystem& system;
  const Catalog& catalog;
  const CostParams& params;
  const PlanStats& stats;
  ExecMetrics& metrics;
  /// Virtual time at which the query was submitted; response_ms is measured
  /// from here (0 for queries that start with the simulation).
  double start_ms = 0.0;
  /// Set when the display operator has consumed the last result tuple;
  /// read by the external load generator to wind down.
  bool query_done = false;
  /// Invoked (if set) when the display operator finishes, at the query's
  /// completion time; used to resume closed-loop client processes.
  std::function<void()> on_done;

  /// Multi-query batches: countdown of still-running queries and the flag
  /// to raise when the whole batch is done (both may be null).
  int* batch_remaining = nullptr;
  bool* batch_done = nullptr;

  /// Fault oracle of the session (null on healthy runs; operators then take
  /// exactly their pre-fault code paths). Crashed sites stall new disk and
  /// network requests at request boundaries (fail-stop; in-service work
  /// finishes); drop windows force retransmissions per `fault_tolerance`.
  sim::FaultState* faults = nullptr;
  /// Retransmission policy (points into the session config; read only when
  /// `faults` is non-null).
  const FaultTolerance* fault_tolerance = nullptr;

  /// Pre-order plan-node ids, set (with metrics.operator_actuals sized to
  /// match) only when the session collects per-operator actuals for
  /// EXPLAIN ANALYZE.
  const std::unordered_map<const PlanNode*, int>* op_ids = nullptr;

  /// The operator's actuals record, or null when collection is off.
  OperatorActual* Actual(const PlanNode& node) const {
    return op_ids != nullptr ? &metrics.operator_actuals[op_ids->at(&node)]
                             : nullptr;
  }

  /// Per-query causal span set (null = capture off; see sim/span.h). Owned
  /// by the session's per-query state, never by ExecMetrics, so metrics
  /// stay bit-identical with capture on or off.
  sim::QuerySpans* spans = nullptr;
  /// Channel endpoint registry for span capture: channel address ->
  /// (producer timeline id, consumer timeline id). Built by the executor
  /// alongside the operator pipeline; null when capture is off.
  const std::unordered_map<const void*, std::pair<int, int>>* channel_ends =
      nullptr;

  /// The operator's span-timeline id, or -1 when capture is off.
  int SpanOp(const PlanNode& node) const {
    return spans != nullptr && op_ids != nullptr ? op_ids->at(&node) : -1;
  }
};

/// Scan of a base relation (Volcano-style, page at a time).
///
/// Annotated `primary copy`: sequential reads from the server's disk.
/// Annotated `client`: the cached prefix is read from the client disk; the
/// remaining pages are faulted in from the relation's server with one
/// synchronous request/response round trip per page (the paper's
/// non-overlapped page faulting).
sim::Process ScanProcess(ExecContext& ctx, const PlanNode& node,
                         PageChannel& out);

/// Applies the node's predicate; charges Compare per input tuple.
sim::Process SelectProcess(ExecContext& ctx, const PlanNode& node,
                           PageChannel& in, PageChannel& out);

/// Projects tuples to a narrower width; charges a move per output tuple.
sim::Process ProjectProcess(ExecContext& ctx, const PlanNode& node,
                            PageChannel& in, PageChannel& out);

/// Hash aggregation: consumes its whole input (blocking), then emits the
/// groups. Charges Hash + Compare per input tuple and a move per group.
sim::Process AggregateProcess(ExecContext& ctx, const PlanNode& node,
                              PageChannel& in, PageChannel& out);

/// External merge sort: consumes its whole input (blocking). Under
/// minimum allocation, sorted runs are written to the site's temp region
/// and merged back in a single pass; under maximum allocation the sort
/// happens in memory. Charges Compare * log2(n) per tuple plus a move per
/// output tuple.
sim::Process SortProcess(ExecContext& ctx, const PlanNode& node,
                         PageChannel& in, PageChannel& out);

/// Bag union: forwards the left input, then the right.
sim::Process UnionProcess(ExecContext& ctx, const PlanNode& node,
                          PageChannel& left, PageChannel& right,
                          PageChannel& out);

/// Hybrid-hash join [Sha86]. Consumes the inner (left) input to build,
/// spilling partitions to the site's temp disk region under minimum
/// allocation (write-behind, flushed at phase end); then streams the outer
/// input, probing the memory-resident part and spilling the rest; finally
/// joins the spilled partition pairs. Memory is acquired from the site's
/// buffer pool for the duration.
sim::Process HashJoinProcess(ExecContext& ctx, const PlanNode& node,
                             PageChannel& inner, PageChannel& outer,
                             PageChannel& out);

/// Root operator: consumes the result at the client, charges Display per
/// tuple, records the response time, and flags query completion.
sim::Process DisplayProcess(ExecContext& ctx, const PlanNode& node,
                            PageChannel& in);

/// Sending half of the network operator pair: charges send CPU at `from`,
/// occupies the wire, counts the page, and forwards it. With capacity-1
/// channels the producer stays about one page ahead of its consumer.
/// `actual` (optional) is the consuming operator's EXPLAIN record; ship
/// CPU and wire time accumulate there, mirroring the estimator.
/// `span_op` is the send process's own span timeline (synthetic id past the
/// plan operators; -1 when capture is off) and `flow_base` seeds the ids of
/// the Perfetto flow arrows linking this sender's pages to the receiver.
sim::Process NetSendProcess(ExecContext& ctx, SiteId from, PageChannel& in,
                            PageChannel& wire,
                            OperatorActual* actual = nullptr,
                            int span_op = -1, uint64_t flow_base = 0);

/// Receiving half: charges receive CPU at `to` and forwards the page.
sim::Process NetRecvProcess(ExecContext& ctx, SiteId to, PageChannel& wire,
                            PageChannel& out,
                            OperatorActual* actual = nullptr,
                            int span_op = -1, uint64_t flow_base = 0);

/// External load: open-loop Poisson random single-page reads against a
/// server's disks (the paper's model of additional clients), winding down
/// once `*stop` becomes true (the query or batch completed). Requests that
/// fire while the site is crashed (`faults` non-null) are lost rather than
/// queued, so a restart does not replay a storm of stale reads.
sim::Process LoadGeneratorProcess(sim::Simulator& sim, SiteRuntime& site,
                                  const CostParams& params,
                                  double requests_per_sec, uint64_t seed,
                                  const bool* stop,
                                  sim::FaultState* faults = nullptr);

}  // namespace dimsum

#endif  // DIMSUM_EXEC_OPERATORS_H_

#ifndef DIMSUM_EXEC_PAGE_H_
#define DIMSUM_EXEC_PAGE_H_

#include <algorithm>
#include <cstdint>

#include "common/check.h"

namespace dimsum {

/// Unit of data flow in the execution engine: one page's worth of tuples.
/// The engine simulates costs at page granularity; tuple counts drive the
/// per-tuple CPU charges.
struct Page {
  double tuples = 0.0;
};

/// Accumulates (possibly fractional) result tuples and packages them into
/// pages of `tuples_per_page`. Operators that reduce or expand cardinality
/// (selects, joins) use this so their output page counts agree with the
/// analytic cardinality model.
class OutputAccumulator {
 public:
  explicit OutputAccumulator(int64_t tuples_per_page)
      : tuples_per_page_(static_cast<double>(tuples_per_page)) {
    DIMSUM_CHECK_GT(tuples_per_page, 0);
  }

  void Add(double tuples) {
    DIMSUM_CHECK_GE(tuples, 0.0);
    pending_ += tuples;
  }

  /// True if a full page is ready to emit (with a small tolerance so that
  /// accumulated fractions like 100 x 0.4 still fill a 40-tuple page).
  bool HasFullPage() const { return pending_ >= tuples_per_page_ - 1e-9; }

  /// Removes and returns one full page.
  Page PopFullPage() {
    DIMSUM_CHECK(HasFullPage());
    pending_ = std::max(0.0, pending_ - tuples_per_page_);
    return Page{tuples_per_page_};
  }

  /// Removes and returns the final partial page (empty optional if none).
  bool HasRemainder() const { return pending_ > 1e-9; }
  Page PopRemainder() {
    DIMSUM_CHECK(HasRemainder());
    Page page{pending_};
    pending_ = 0.0;
    return page;
  }

  double pending() const { return pending_; }

 private:
  double tuples_per_page_;
  double pending_ = 0.0;
};

}  // namespace dimsum

#endif  // DIMSUM_EXEC_PAGE_H_

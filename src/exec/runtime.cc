#include "exec/runtime.h"

namespace dimsum {

ExecSystem::ExecSystem(sim::Simulator& sim, const SystemConfig& config)
    : network_(sim, config.params.net_bandwidth_mbps),
      num_clients_(config.num_clients),
      page_bytes_(config.params.page_bytes) {
  DIMSUM_CHECK_GE(config.num_clients, 1);
  DIMSUM_CHECK_GE(config.num_servers, 1);
  for (SiteId id = 0; id < config.num_sites(); ++id) {
    sites_.push_back(std::make_unique<SiteRuntime>(sim, id, config));
  }
}

void ExecSystem::LoadData(const Catalog& catalog) {
  DIMSUM_CHECK_EQ(catalog.num_clients(), num_clients_)
      << "catalog and system configuration disagree on the client count";
  // Relations are assigned round-robin to their server's disks; each
  // client's cache likewise spreads over that client's disks.
  std::map<SiteId, int> next_disk;
  std::map<SiteId, int> next_cache_disk;
  for (RelationId id = 0; id < catalog.num_relations(); ++id) {
    const int64_t pages = catalog.relation(id).Pages(page_bytes_);
    if (catalog.sharded(id)) {
      // Sharded relations store per-shard extents (every copy of every
      // shard) on a fixed disk arm, (relation + shard) % num_disks, and
      // never touch the whole-copy round-robin counters -- so adding a
      // sharded relation leaves unsharded relations' allocation sequence
      // bit-identical.
      for (int k = 0; k < catalog.NumShards(id); ++k) {
        const int64_t shard_pages = catalog.ShardPages(id, k, page_bytes_);
        for (int r = 0; r < catalog.ShardReplication(id); ++r) {
          const SiteId server = catalog.ShardSite(id, k, r);
          DIMSUM_CHECK_LT(server, num_sites());
          SiteRuntime& site_runtime = site(server);
          const int disk =
              static_cast<int>((id + k) % site_runtime.num_disks());
          auto [it, inserted] = shard_extents_.emplace(
              std::make_tuple(server, id, k),
              DiskExtent{});
          if (inserted) {
            it->second = site_runtime.AllocateBase(disk, shard_pages);
          }
        }
      }
      continue;
    }
    // Every replica site stores a full copy; placement order keeps the
    // degree-1 allocation sequence identical to the single-copy layout.
    for (const SiteId server : catalog.ReplicaSites(id)) {
      DIMSUM_CHECK_LT(server, num_sites());
      SiteRuntime& site_runtime = site(server);
      const int disk = next_disk[server]++ % site_runtime.num_disks();
      const DiskExtent extent = site_runtime.AllocateBase(disk, pages);
      relation_extents_[{server, id}] = extent;
      if (server == catalog.PrimarySite(id)) primary_extents_[id] = extent;
    }
    for (SiteId c = 0; c < num_clients_; ++c) {
      const int64_t cached = catalog.CachedPages(id, c, page_bytes_);
      if (cached > 0) {
        SiteRuntime& client = site(c);
        const int cache_disk = next_cache_disk[c]++ % client.num_disks();
        cache_extents_[{c, id}] = client.AllocateBase(cache_disk, cached);
      }
    }
  }
}

}  // namespace dimsum

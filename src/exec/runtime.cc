#include "exec/runtime.h"

namespace dimsum {

ExecSystem::ExecSystem(sim::Simulator& sim, const SystemConfig& config)
    : network_(sim, config.params.net_bandwidth_mbps),
      page_bytes_(config.params.page_bytes) {
  DIMSUM_CHECK_GE(config.num_servers, 1);
  for (SiteId id = 0; id <= config.num_servers; ++id) {
    sites_.push_back(std::make_unique<SiteRuntime>(sim, id, config));
  }
}

void ExecSystem::LoadData(const Catalog& catalog) {
  // Relations are assigned round-robin to their server's disks; the client
  // cache likewise spreads over the client's disks.
  std::map<SiteId, int> next_disk;
  int next_cache_disk = 0;
  for (RelationId id = 0; id < catalog.num_relations(); ++id) {
    const SiteId server = catalog.PrimarySite(id);
    SiteRuntime& site_runtime = site(server);
    const int64_t pages = catalog.relation(id).Pages(page_bytes_);
    const int disk = next_disk[server]++ % site_runtime.num_disks();
    relation_extents_[id] = site_runtime.AllocateBase(disk, pages);
    const int64_t cached = catalog.CachedPages(id, page_bytes_);
    if (cached > 0) {
      SiteRuntime& client = site(kClientSite);
      const int cache_disk = next_cache_disk++ % client.num_disks();
      cache_extents_[id] = client.AllocateBase(cache_disk, cached);
    }
  }
}

}  // namespace dimsum

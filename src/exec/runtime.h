#ifndef DIMSUM_EXEC_RUNTIME_H_
#define DIMSUM_EXEC_RUNTIME_H_

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/ids.h"
#include "cost/params.h"
#include "exec/buffer_pool.h"
#include "exec/layout.h"
#include "sim/disk.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/telemetry.h"

namespace dimsum {

/// Executor-side handling of injected link faults: a transfer lost to a
/// drop window is detected by a virtual-time timeout and retransmitted
/// with exponential backoff. Only consulted when a fault schedule is
/// attached; healthy runs never read these knobs.
struct FaultTolerance {
  /// Timeout before the first retransmission of a dropped message, ms.
  double retransmit_timeout_ms = 50.0;
  /// Backoff multiplier and cap for consecutive drops of one message.
  double retransmit_backoff_mult = 2.0;
  double retransmit_backoff_cap_ms = 1000.0;
};

/// Runtime configuration of the simulated client-server system.
struct SystemConfig {
  CostParams params;                  // Table 2 settings (incl. NumDisks)
  sim::DiskParams disk_params;        // calibrated disk model
  int num_servers = 1;
  /// Client sites (sites 0..num_clients-1); servers follow at
  /// num_clients..num_clients+num_servers-1. The paper's configuration is
  /// one client; multi-client workloads give every query a home client.
  int num_clients = 1;
  /// Buffer frames per site. The default comfortably fits maximum-
  /// allocation joins on the benchmark relations; restrict it to model
  /// memory pressure from other clients.
  int64_t site_memory_frames = 4096;
  /// External random-read load per server, requests/second (the paper's
  /// multi-client load model; 40/60/70 in Figure 4). Requests are spread
  /// over the server's disks.
  std::map<SiteId, double> server_disk_load_per_sec;

  // --- derived site-numbering helpers -----------------------------------
  int num_sites() const { return num_clients + num_servers; }
  bool IsClientSite(SiteId site) const {
    return site >= 0 && site < num_clients;
  }
  /// Site id of the i-th server under this configuration's numbering.
  SiteId ServerSiteAt(int index) const {
    return ServerSite(index, num_clients);
  }

  // --- observability (never changes simulation results) -----------------
  /// When non-null, the executor attaches this sink to its simulator and
  /// records virtual-time spans for disks, CPUs, the network link, and
  /// every operator (not owned; must outlive the execution).
  sim::TraceSink* trace = nullptr;
  /// Collect disk service-time and network queueing-delay histograms into
  /// ExecMetrics (off by default: one Histogram::Add per arm op/message).
  bool collect_histograms = false;
  /// Collect per-operator actuals (ExecMetrics::operator_actuals, indexed
  /// by pre-order plan-node id) for EXPLAIN ANALYZE. Pure observation --
  /// clock reads and accumulation only -- so results are bit-identical
  /// with this on or off (asserted by tests).
  bool collect_operator_actuals = false;
  /// Collect per-query causal spans (resource queueing/service splits,
  /// channel waits, fault stalls) into ExecSession per-ticket span sets for
  /// critical-path extraction (core/critical_path.h). Implies the pre-order
  /// operator numbering of collect_operator_actuals. Pure observation --
  /// clock reads and memory writes at existing handoff points -- so
  /// results are bit-identical with this on or off (asserted by tests; see
  /// DESIGN.md §9).
  bool collect_spans = false;
  /// When non-null, the executor attaches this virtual-time utilization
  /// sampler to its simulator and registers per-site CPU/disk/link and
  /// buffer-pool probes (not owned; must outlive the execution). Sampling
  /// reads state at clock-interval boundaries and never schedules an
  /// event, so results are bit-identical with it on or off (see
  /// sim/telemetry.h and DESIGN.md §8).
  sim::TelemetrySampler* telemetry = nullptr;

  // --- fault injection --------------------------------------------------
  /// Deterministic fault schedule (not owned; must outlive the execution).
  /// Null or empty means a healthy run: the executor then takes exactly
  /// its pre-fault code paths, so all existing experiments stay
  /// bit-identical. Crash clauses should target server sites; queries on
  /// a crashed site's resources stall until the restart unless the
  /// workload layer re-optimizes around it (see workload/driver.h).
  const sim::FaultSchedule* faults = nullptr;
  /// Link-fault retransmission policy (read only when `faults` is set).
  FaultTolerance fault_tolerance;
};

/// Location of a contiguous on-disk extent within a site.
struct DiskExtent {
  int disk = 0;        // disk index within the site
  int64_t start = 0;   // first block
};

/// One machine: CPU, NumDisks disks, space management, and a buffer pool.
struct SiteRuntime {
  SiteRuntime(sim::Simulator& sim, SiteId id, const SystemConfig& config)
      : id(id),
        cpu(sim, "cpu" + std::to_string(id),
            config.params.CpuTimeFactor(id)),
        memory(sim, config.site_memory_frames) {
    const int num_disks = std::max(1, config.params.num_disks);
    for (int d = 0; d < num_disks; ++d) {
      disks.push_back(std::make_unique<sim::Disk>(
          sim, "disk" + std::to_string(id) + "." + std::to_string(d),
          config.disk_params));
      spaces.emplace_back(config.disk_params);
    }
  }

  int num_disks() const { return static_cast<int>(disks.size()); }
  sim::Disk& disk(int index) {
    DIMSUM_CHECK_GE(index, 0);
    DIMSUM_CHECK_LT(index, num_disks());
    return *disks[index];
  }

  /// Allocates a base-data extent on a specific disk.
  DiskExtent AllocateBase(int disk_index, int64_t pages) {
    DIMSUM_CHECK_LT(disk_index, num_disks());
    return DiskExtent{disk_index, spaces[disk_index].AllocateBase(pages)};
  }

  /// Allocates a temp extent, striping across the site's disks.
  DiskExtent AllocateTemp(int64_t pages) {
    const int d = next_temp_disk_;
    next_temp_disk_ = (next_temp_disk_ + 1) % num_disks();
    return AllocateTempOn(d, pages);
  }

  /// Allocates a temp extent on a specific disk (modulo the disk count);
  /// used to stripe join partitions so that a partition's build and probe
  /// halves share an arm while different partitions use different arms.
  DiskExtent AllocateTempOn(int disk_index, int64_t pages) {
    const int d = disk_index % num_disks();
    return DiskExtent{d, spaces[d].AllocateTemp(pages)};
  }

  double TotalDiskBusyMs() const {
    double total = 0.0;
    for (const auto& disk : disks) total += disk->busy_ms();
    return total;
  }

  SiteId id;
  sim::Resource cpu;
  std::vector<std::unique_ptr<sim::Disk>> disks;
  std::vector<DiskSpace> spaces;
  BufferPool memory;

 private:
  int next_temp_disk_ = 0;
};

/// The simulated cluster: `num_clients` clients (sites 0..num_clients-1),
/// `num_servers` servers, and a shared network. Loads base relations onto
/// server disks (round-robin across a site's disks) and cached prefixes
/// onto each client's disk(s) per the catalog.
class ExecSystem {
 public:
  ExecSystem(sim::Simulator& sim, const SystemConfig& config);

  /// Places base extents and per-client cache extents per `catalog`. The
  /// catalog's client count must match the configured one.
  void LoadData(const Catalog& catalog);

  SiteRuntime& site(SiteId id) {
    DIMSUM_CHECK_GE(id, 0);
    DIMSUM_CHECK_LT(id, static_cast<SiteId>(sites_.size()));
    return *sites_[id];
  }
  sim::Network& network() { return network_; }
  int num_sites() const { return static_cast<int>(sites_.size()); }
  int num_clients() const { return num_clients_; }
  bool IsClientSite(SiteId site) const {
    return site >= 0 && site < num_clients_;
  }

  /// Extent of the relation's copy stored at `site` (must be one of the
  /// loaded catalog's replica sites for the relation).
  DiskExtent RelationExtent(SiteId site, RelationId id) const {
    return relation_extents_.at({site, id});
  }
  /// Extent of the relation's primary copy (on its first replica site).
  DiskExtent RelationExtent(RelationId id) const {
    return primary_extents_.at(id);
  }
  /// Extent of the copy of shard `shard` of a sharded relation stored at
  /// `site` (must hold one per the loaded catalog's shard map).
  DiskExtent ShardExtent(SiteId site, RelationId id, int shard) const {
    return shard_extents_.at(std::make_tuple(site, id, shard));
  }
  /// Extent of the relation's cached prefix on `client` (only valid when
  /// the catalog caches a non-zero prefix there).
  DiskExtent CacheExtent(SiteId client, RelationId id) const {
    return cache_extents_.at({client, id});
  }
  /// Single-client convenience: the cached prefix at client site 0.
  DiskExtent CacheExtent(RelationId id) const {
    return CacheExtent(kClientSite, id);
  }

 private:
  std::vector<std::unique_ptr<SiteRuntime>> sites_;
  sim::Network network_;
  int num_clients_;
  /// One base extent per (replica site, relation) copy.
  std::map<std::pair<SiteId, RelationId>, DiskExtent> relation_extents_;
  /// One base extent per (site, relation, shard) copy of sharded
  /// relations.
  std::map<std::tuple<SiteId, RelationId, int>, DiskExtent> shard_extents_;
  std::map<RelationId, DiskExtent> primary_extents_;
  std::map<std::pair<SiteId, RelationId>, DiskExtent> cache_extents_;
  int page_bytes_;
};

}  // namespace dimsum

#endif  // DIMSUM_EXEC_RUNTIME_H_

#include "opt/cost_cache.h"

#include <cstring>

namespace dimsum {
namespace {

template <typename T>
void AppendRaw(std::string* out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

void AppendNode(std::string* out, const PlanNode* node) {
  if (node == nullptr) {
    out->push_back('.');
    return;
  }
  out->push_back('(');
  out->push_back(static_cast<char>(node->type));
  out->push_back(static_cast<char>(node->annotation));
  AppendRaw(out, node->relation);
  // The serving replica decides which server's disk a scan loads, so it is
  // part of the cost-relevant identity.
  AppendRaw(out, node->replica);
  // Shard fragment identity and the pushed-down key range decide which
  // pages a scan reads and how many tuples it emits.
  AppendRaw(out, node->shard);
  AppendRaw(out, node->key_lo);
  AppendRaw(out, node->key_hi);
  // Operator parameters participate in cardinality estimates, so they are
  // part of the cost-relevant identity (encoded bitwise: the search only
  // ever copies these values, never recomputes them).
  AppendRaw(out, node->selectivity);
  AppendRaw(out, node->width_factor);
  AppendRaw(out, node->num_groups);
  AppendNode(out, node->left.get());
  AppendNode(out, node->right.get());
  out->push_back(')');
}

}  // namespace

std::string PlanSignature(const Plan& plan) {
  std::string signature;
  signature.reserve(static_cast<std::size_t>(plan.Size()) * 32 + 8);
  AppendNode(&signature, plan.root());
  return signature;
}

namespace {

std::string MakeKey(const Plan& plan, OptimizeMetric metric) {
  std::string key = PlanSignature(plan);
  key.push_back(static_cast<char>(metric));
  return key;
}

}  // namespace

double CostCache::Cost(const CostModel& model, Plan& plan,
                       const QueryGraph& query, OptimizeMetric metric) {
  std::string signature = MakeKey(plan, metric);
  if (auto cached = Lookup(signature); cached.has_value()) return *cached;
  const double cost = model.PlanCost(plan, query, metric);
  Insert(std::move(signature), cost);
  return cost;
}

void CostCache::InsertPlan(const Plan& plan, OptimizeMetric metric,
                           double cost) {
  Insert(MakeKey(plan, metric), cost);
}

std::optional<double> CostCache::Lookup(const std::string& signature) {
  auto it = cache_.find(signature);
  if (it == cache_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void CostCache::Insert(std::string signature, double cost) {
  if (cache_.size() >= max_entries_) return;
  cache_.emplace(std::move(signature), cost);
}

}  // namespace dimsum

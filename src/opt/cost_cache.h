#ifndef DIMSUM_OPT_COST_CACHE_H_
#define DIMSUM_OPT_COST_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "cost/cost_model.h"
#include "plan/plan.h"
#include "plan/query.h"

namespace dimsum {

/// Canonical signature of an (unbound) plan: a pre-order byte encoding of
/// the tree shape, operator types, site annotations, and operator
/// parameters. Two plans have equal signatures iff the analytic cost model
/// assigns them equal cost under a fixed catalog/metric, so the signature
/// is an exact memoization key (no hash-collision risk: the full encoding
/// is the key).
std::string PlanSignature(const Plan& plan);

/// Memoizes plan-signature -> metric value for one optimization run. The
/// II/SA search revisits neighbors constantly (undoing a move, oscillating
/// between two annotations); a lookup here replaces a full analytic-model
/// evaluation. One instance serves one (cost model, metric) pair and one
/// search thread — it is intentionally not synchronized; parallel searches
/// each own a private cache so results stay bit-identical regardless of
/// thread count.
class CostCache {
 public:
  /// `max_entries` bounds memory; once full, new signatures are evaluated
  /// but not stored (deterministic, since insertion order is the search
  /// order of the owning thread).
  explicit CostCache(std::size_t max_entries = 1 << 20)
      : max_entries_(max_entries) {}

  /// Cost of `plan` under `metric`, served from the cache when this
  /// signature was evaluated before. On a miss the model is consulted
  /// (which binds the plan's sites); on a hit the plan is *not* re-bound —
  /// callers that need bound sites on the final plan must bind explicitly.
  double Cost(const CostModel& model, Plan& plan, const QueryGraph& query,
              OptimizeMetric metric);

  std::optional<double> Lookup(const std::string& signature);
  void Insert(std::string signature, double cost);

  /// Pre-seeds the cache with a cost that is already known exactly (e.g.
  /// the SA start plan, costed during II) without touching the hit/miss
  /// counters — the evaluation was counted where it happened.
  void InsertPlan(const Plan& plan, OptimizeMetric metric, double cost);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  std::size_t size() const { return cache_.size(); }

 private:
  std::unordered_map<std::string, double> cache_;
  std::size_t max_entries_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace dimsum

#endif  // DIMSUM_OPT_COST_CACHE_H_

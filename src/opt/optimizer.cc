#include "opt/optimizer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "plan/binding.h"

namespace dimsum {
namespace {

/// Additive cost for plans touching an unavailable site. Far beyond any
/// model cost, so available plans always win, yet finite so the search
/// still ranks plans when no available one exists.
constexpr double kUnavailableSitePenalty = 1e15;

}  // namespace

double TwoPhaseOptimizer::UnavailablePenalty(const Plan& plan,
                                             const QueryGraph& query) const {
  Plan bound = plan.Clone();
  BindSites(bound, model_.catalog(), query.home_client);
  const std::vector<SiteId> needed =
      BoundServerSites(bound, model_.catalog(), model_.params().page_bytes);
  for (const SiteId site : needed) {
    if (std::find(config_.unavailable_sites.begin(),
                  config_.unavailable_sites.end(),
                  site) != config_.unavailable_sites.end()) {
      return kUnavailableSitePenalty;
    }
  }
  return 0.0;
}

double TwoPhaseOptimizer::EvalCost(Plan& plan, const QueryGraph& query,
                                   CostCache* cache, int* evaluations) const {
  ++*evaluations;
  double cost = cache != nullptr
                    ? cache->Cost(model_, plan, query, config_.metric)
                    : model_.PlanCost(plan, query, config_.metric);
  // Outside the cache on purpose: the cache memoizes the fault-agnostic
  // model cost, so schedules with different crashed sites share entries.
  if (!config_.unavailable_sites.empty()) {
    cost += UnavailablePenalty(plan, query);
  }
  return cost;
}

OptimizeResult TwoPhaseOptimizer::FinishResult(Plan plan, double cost,
                                               int evaluations,
                                               int64_t cache_hits,
                                               int64_t cache_misses) const {
  // The winning plan may have last been costed through the cache (no site
  // binding) or cloned mid-search; bind it under the model's catalog so the
  // returned plan is always executable. Binding is deterministic and is
  // not a cost evaluation.
  BindSites(plan, model_.catalog());
  OptimizeResult result;
  result.plan = std::move(plan);
  result.cost = cost;
  result.plans_evaluated = evaluations;
  result.cache_hits = cache_hits;
  result.cache_misses = cache_misses;
  return result;
}

std::pair<Plan, double> TwoPhaseOptimizer::ImproveToLocalMin(
    Plan start, const QueryGraph& query, const TransformConfig& transform,
    Rng& rng, int* evaluations, CostCache* cache,
    MoveTypeCounters* moves) const {
  double cost = EvalCost(start, query, cache, evaluations);
  int failures = 0;
  while (failures < config_.ii_patience) {
    std::optional<MoveType> type;
    auto neighbor = TryRandomMove(start, query, transform, rng, &type);
    if (type.has_value()) {
      ++moves->proposed[static_cast<std::size_t>(*type)];
    }
    if (!neighbor.has_value()) {
      ++failures;
      continue;
    }
    const double neighbor_cost = EvalCost(*neighbor, query, cache, evaluations);
    if (neighbor_cost < cost) {
      ++moves->accepted[static_cast<std::size_t>(*type)];
      start = std::move(*neighbor);
      cost = neighbor_cost;
      failures = 0;
    } else {
      ++failures;
    }
  }
  return {std::move(start), cost};
}

OptimizeResult TwoPhaseOptimizer::Anneal(Plan start, double start_cost,
                                         const QueryGraph& query,
                                         const TransformConfig& transform,
                                         Rng& rng, int evaluations,
                                         int64_t cache_hits,
                                         int64_t cache_misses,
                                         MoveTypeCounters ii_moves) const {
  MoveTypeCounters sa_moves;
  CostCache sa_cache;
  CostCache* cache = config_.enable_cost_cache ? &sa_cache : nullptr;
  // The start plan's exact cost is known from II; seed the cache so
  // revisiting it is a hit rather than a model re-run.
  if (cache != nullptr) cache->InsertPlan(start, config_.metric, start_cost);

  Plan best = start.Clone();
  double best_cost = start_cost;
  Plan current = std::move(start);
  double current_cost = start_cost;

  const int joins = std::max(1, query.num_relations() - 1);
  const int stage_moves = config_.sa_stage_moves_per_join * joins;
  double temperature =
      std::max(config_.sa_initial_temp_factor * start_cost, 1e-9);
  const double freeze_temp = temperature * config_.sa_freeze_temp_ratio;
  int stages_without_improvement = 0;

  while (true) {
    bool improved = false;
    for (int i = 0; i < stage_moves; ++i) {
      std::optional<MoveType> type;
      auto neighbor = TryRandomMove(current, query, transform, rng, &type);
      if (type.has_value()) {
        ++sa_moves.proposed[static_cast<std::size_t>(*type)];
      }
      if (!neighbor.has_value()) continue;
      const double neighbor_cost =
          EvalCost(*neighbor, query, cache, &evaluations);
      const double delta = neighbor_cost - current_cost;
      if (delta <= 0.0 ||
          rng.NextDouble() < std::exp(-delta / temperature)) {
        ++sa_moves.accepted[static_cast<std::size_t>(*type)];
        if (delta > 0.0) ++sa_moves.uphill_accepted;
        current = std::move(*neighbor);
        current_cost = neighbor_cost;
        if (current_cost < best_cost) {
          best = current.Clone();
          best_cost = current_cost;
          improved = true;
        }
      }
    }
    temperature *= config_.sa_temp_decay;
    stages_without_improvement = improved ? 0 : stages_without_improvement + 1;
    if (temperature < freeze_temp &&
        stages_without_improvement >= config_.sa_freeze_stages) {
      break;
    }
  }
  // `best_cost` is exact (every accepted plan was costed when visited), so
  // the epilogue does not re-cost — re-costing would either skew the
  // evaluation count or go uncounted.
  OptimizeResult result =
      FinishResult(std::move(best), best_cost, evaluations,
                   cache_hits + (cache ? cache->hits() : 0),
                   cache_misses + (cache ? cache->misses() : 0));
  result.ii_moves = ii_moves;
  result.sa_moves = sa_moves;
  return result;
}

OptimizeResult TwoPhaseOptimizer::Optimize(const QueryGraph& query,
                                           Rng& rng) const {
  TransformConfig transform = config_.MakeTransformConfig();
  transform.catalog = &model_.catalog();
  const int starts = config_.enable_ii ? config_.ii_starts : 1;

  // Derive every random stream from the caller's generator *before*
  // dispatch: each II start searches on its own child stream and the SA
  // phase on another, so thread scheduling cannot perturb any sequence.
  std::vector<uint64_t> start_seeds(static_cast<std::size_t>(starts));
  for (uint64_t& seed : start_seeds) seed = rng.NextU64();
  const uint64_t sa_seed = rng.NextU64();

  struct StartOutcome {
    Plan plan;
    double cost = 0.0;
    MoveTypeCounters moves;
  };
  std::vector<StartOutcome> outcomes(static_cast<std::size_t>(starts));
  std::atomic<int> evaluations{0};
  std::atomic<int64_t> cache_hits{0};
  std::atomic<int64_t> cache_misses{0};

  GlobalThreadPool().ParallelFor(starts, [&](int i) {
    Rng local(start_seeds[static_cast<std::size_t>(i)]);
    CostCache start_cache;
    CostCache* cache = config_.enable_cost_cache ? &start_cache : nullptr;
    int local_evals = 0;
    Plan initial = RandomPlan(query, transform, local);
    auto& out = outcomes[static_cast<std::size_t>(i)];
    if (config_.enable_ii) {
      auto [local_min, local_cost] =
          ImproveToLocalMin(std::move(initial), query, transform, local,
                            &local_evals, cache, &out.moves);
      out.plan = std::move(local_min);
      out.cost = local_cost;
    } else {
      out.cost = EvalCost(initial, query, cache, &local_evals);
      out.plan = std::move(initial);
    }
    evaluations.fetch_add(local_evals, std::memory_order_relaxed);
    if (cache != nullptr) {
      cache_hits.fetch_add(cache->hits(), std::memory_order_relaxed);
      cache_misses.fetch_add(cache->misses(), std::memory_order_relaxed);
    }
  });

  // Fold each start's counters in start-index order (sums are commutative,
  // but the fixed order keeps any future extension deterministic too).
  MoveTypeCounters ii_moves;
  for (const StartOutcome& out : outcomes) ii_moves.Merge(out.moves);

  // Winner by (cost, start-index): strict `<` keeps the lowest index on
  // ties, independent of which thread finished first.
  int best_index = 0;
  for (int i = 1; i < starts; ++i) {
    if (outcomes[static_cast<std::size_t>(i)].cost <
        outcomes[static_cast<std::size_t>(best_index)].cost) {
      best_index = i;
    }
  }
  Plan best = std::move(outcomes[static_cast<std::size_t>(best_index)].plan);
  const double best_cost = outcomes[static_cast<std::size_t>(best_index)].cost;

  if (!config_.enable_sa) {
    OptimizeResult result =
        FinishResult(std::move(best), best_cost, evaluations.load(),
                     cache_hits.load(), cache_misses.load());
    result.ii_moves = ii_moves;
    return result;
  }
  Rng sa_rng(sa_seed);
  return Anneal(std::move(best), best_cost, query, transform, sa_rng,
                evaluations.load(), cache_hits.load(), cache_misses.load(),
                ii_moves);
}

OptimizeResult TwoPhaseOptimizer::SiteSelect(const Plan& start,
                                             const QueryGraph& query,
                                             Rng& rng) const {
  DIMSUM_CHECK(!start.empty());
  TransformConfig transform = config_.MakeTransformConfig();
  transform.catalog = &model_.catalog();
  transform.join_order_moves = false;
  transform.allow_commute = false;
  const int attempts = config_.ii_starts;

  std::vector<uint64_t> attempt_seeds(static_cast<std::size_t>(attempts));
  for (uint64_t& seed : attempt_seeds) seed = rng.NextU64();
  const uint64_t sa_seed = rng.NextU64();

  struct AttemptOutcome {
    Plan plan;
    double cost = 0.0;
    MoveTypeCounters moves;
  };
  std::vector<AttemptOutcome> outcomes(static_cast<std::size_t>(attempts));
  std::atomic<int> evaluations{0};
  std::atomic<int64_t> cache_hits{0};
  std::atomic<int64_t> cache_misses{0};

  GlobalThreadPool().ParallelFor(attempts, [&](int i) {
    Rng local(attempt_seeds[static_cast<std::size_t>(i)]);
    CostCache attempt_cache;
    CostCache* cache = config_.enable_cost_cache ? &attempt_cache : nullptr;
    int local_evals = 0;
    Plan initial = start.Clone();
    // Attempt 0 refines the caller's annotations; later attempts restart
    // from random annotation assignments.
    if (i > 0) RandomizeAnnotations(initial, transform, local);
    auto& out = outcomes[static_cast<std::size_t>(i)];
    auto [local_min, local_cost] =
        ImproveToLocalMin(std::move(initial), query, transform, local,
                          &local_evals, cache, &out.moves);
    out.plan = std::move(local_min);
    out.cost = local_cost;
    evaluations.fetch_add(local_evals, std::memory_order_relaxed);
    if (cache != nullptr) {
      cache_hits.fetch_add(cache->hits(), std::memory_order_relaxed);
      cache_misses.fetch_add(cache->misses(), std::memory_order_relaxed);
    }
  });

  MoveTypeCounters ii_moves;
  for (const AttemptOutcome& out : outcomes) ii_moves.Merge(out.moves);

  int best_index = 0;
  for (int i = 1; i < attempts; ++i) {
    if (outcomes[static_cast<std::size_t>(i)].cost <
        outcomes[static_cast<std::size_t>(best_index)].cost) {
      best_index = i;
    }
  }
  Plan best = std::move(outcomes[static_cast<std::size_t>(best_index)].plan);
  const double best_cost = outcomes[static_cast<std::size_t>(best_index)].cost;

  Rng sa_rng(sa_seed);
  return Anneal(std::move(best), best_cost, query, transform, sa_rng,
                evaluations.load(), cache_hits.load(), cache_misses.load(),
                ii_moves);
}

void FoldOptimizeResult(const OptimizeResult& result,
                        MetricsRegistry& registry) {
  registry.counter("opt.runs").Add(1);
  registry.counter("opt.plans_evaluated").Add(result.plans_evaluated);
  registry.counter("opt.cache_hits").Add(result.cache_hits);
  registry.counter("opt.cache_misses").Add(result.cache_misses);
  registry.gauge("opt.cache_hit_rate").Add(result.CacheHitRate());
  const auto fold_phase = [&registry](const std::string& phase,
                                      const MoveTypeCounters& moves) {
    for (int i = 0; i < kNumMoveTypes; ++i) {
      const std::string name = MoveTypeName(static_cast<MoveType>(i));
      registry.counter("opt." + phase + ".proposed." + name)
          .Add(moves.proposed[static_cast<std::size_t>(i)]);
      registry.counter("opt." + phase + ".accepted." + name)
          .Add(moves.accepted[static_cast<std::size_t>(i)]);
    }
    registry.gauge("opt." + phase + ".acceptance_ratio")
        .Add(moves.AcceptanceRatio());
  };
  fold_phase("ii", result.ii_moves);
  fold_phase("sa", result.sa_moves);
  registry.counter("opt.sa.uphill_accepted").Add(result.sa_moves.uphill_accepted);
}

}  // namespace dimsum

#include "opt/optimizer.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace dimsum {

std::pair<Plan, double> TwoPhaseOptimizer::ImproveToLocalMin(
    Plan start, const QueryGraph& query, const TransformConfig& transform,
    Rng& rng, int* evaluations) const {
  double cost = model_.PlanCost(start, query, config_.metric);
  ++*evaluations;
  int failures = 0;
  while (failures < config_.ii_patience) {
    auto neighbor = TryRandomMove(start, query, transform, rng);
    if (!neighbor.has_value()) {
      ++failures;
      continue;
    }
    const double neighbor_cost =
        model_.PlanCost(*neighbor, query, config_.metric);
    ++*evaluations;
    if (neighbor_cost < cost) {
      start = std::move(*neighbor);
      cost = neighbor_cost;
      failures = 0;
    } else {
      ++failures;
    }
  }
  return {std::move(start), cost};
}

OptimizeResult TwoPhaseOptimizer::Anneal(Plan start, double start_cost,
                                         const QueryGraph& query,
                                         const TransformConfig& transform,
                                         Rng& rng, int* evaluations) const {
  Plan best = start.Clone();
  double best_cost = start_cost;
  Plan current = std::move(start);
  double current_cost = start_cost;

  const int joins = std::max(1, query.num_relations() - 1);
  const int stage_moves = config_.sa_stage_moves_per_join * joins;
  double temperature =
      std::max(config_.sa_initial_temp_factor * start_cost, 1e-9);
  const double freeze_temp = temperature * config_.sa_freeze_temp_ratio;
  int stages_without_improvement = 0;

  while (true) {
    bool improved = false;
    for (int i = 0; i < stage_moves; ++i) {
      auto neighbor = TryRandomMove(current, query, transform, rng);
      if (!neighbor.has_value()) continue;
      const double neighbor_cost =
          model_.PlanCost(*neighbor, query, config_.metric);
      ++*evaluations;
      const double delta = neighbor_cost - current_cost;
      if (delta <= 0.0 ||
          rng.NextDouble() < std::exp(-delta / temperature)) {
        current = std::move(*neighbor);
        current_cost = neighbor_cost;
        if (current_cost < best_cost) {
          best = current.Clone();
          best_cost = current_cost;
          improved = true;
        }
      }
    }
    temperature *= config_.sa_temp_decay;
    stages_without_improvement = improved ? 0 : stages_without_improvement + 1;
    if (temperature < freeze_temp &&
        stages_without_improvement >= config_.sa_freeze_stages) {
      break;
    }
  }
  OptimizeResult result;
  // Re-bind under the model's catalog (the plan may have been cloned from
  // an intermediate state).
  result.cost = model_.PlanCost(best, query, config_.metric);
  result.plan = std::move(best);
  result.plans_evaluated = *evaluations;
  return result;
}

OptimizeResult TwoPhaseOptimizer::Optimize(const QueryGraph& query,
                                           Rng& rng) const {
  const TransformConfig transform = config_.MakeTransformConfig();
  int evaluations = 0;
  Plan best;
  double best_cost = 0.0;
  const int starts = config_.enable_ii ? config_.ii_starts : 1;
  for (int start = 0; start < starts; ++start) {
    Plan initial = RandomPlan(query, transform, rng);
    if (config_.enable_ii) {
      auto [local, local_cost] = ImproveToLocalMin(
          std::move(initial), query, transform, rng, &evaluations);
      if (best.empty() || local_cost < best_cost) {
        best = std::move(local);
        best_cost = local_cost;
      }
    } else {
      best_cost = model_.PlanCost(initial, query, config_.metric);
      ++evaluations;
      best = std::move(initial);
    }
  }
  if (!config_.enable_sa) {
    OptimizeResult result;
    result.cost = model_.PlanCost(best, query, config_.metric);
    result.plan = std::move(best);
    result.plans_evaluated = evaluations;
    return result;
  }
  return Anneal(std::move(best), best_cost, query, transform, rng,
                &evaluations);
}

OptimizeResult TwoPhaseOptimizer::SiteSelect(const Plan& start,
                                             const QueryGraph& query,
                                             Rng& rng) const {
  DIMSUM_CHECK(!start.empty());
  TransformConfig transform = config_.MakeTransformConfig();
  transform.join_order_moves = false;
  transform.allow_commute = false;
  int evaluations = 0;
  Plan best;
  double best_cost = 0.0;
  for (int attempt = 0; attempt < config_.ii_starts; ++attempt) {
    Plan initial = start.Clone();
    if (attempt > 0) RandomizeAnnotations(initial, transform.space, rng);
    auto [local, local_cost] = ImproveToLocalMin(
        std::move(initial), query, transform, rng, &evaluations);
    if (best.empty() || local_cost < best_cost) {
      best = std::move(local);
      best_cost = local_cost;
    }
  }
  return Anneal(std::move(best), best_cost, query, transform, rng,
                &evaluations);
}

}  // namespace dimsum

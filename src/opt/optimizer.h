#ifndef DIMSUM_OPT_OPTIMIZER_H_
#define DIMSUM_OPT_OPTIMIZER_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "opt/cost_cache.h"
#include "plan/plan.h"
#include "plan/policy.h"
#include "plan/query.h"
#include "plan/transforms.h"

namespace dimsum {

/// Configuration of the randomized two-phase optimizer (2PO) [IK90]:
/// iterative improvement over random starting plans, followed by simulated
/// annealing from the best plan found.
struct OptimizerConfig {
  ShippingPolicy policy = ShippingPolicy::kHybridShipping;
  OptimizeMetric metric = OptimizeMetric::kResponseTime;

  /// Enables join-order moves 1-4 (disable for site-selection-only
  /// optimization, the run-time phase of 2-step optimization).
  bool join_order_moves = true;
  /// Extra commutativity move (see TransformConfig).
  bool allow_commute = true;
  /// Constrain the search to linear (left-deep) join trees.
  bool require_linear = false;

  /// Phase toggles (both on = 2PO; used by the optimizer-phase ablation,
  /// mirroring [IK90]'s comparison of II, SA, and 2PO).
  bool enable_ii = true;
  bool enable_sa = true;

  /// Memoize plan cost by canonical plan signature, so revisited neighbors
  /// (the II/SA search oscillates constantly) skip the analytic model.
  /// Purely an evaluation-speed knob: results are identical either way.
  bool enable_cost_cache = true;

  /// Server sites the search should avoid (crashed sites, during fault
  /// recovery). Plans depending on any of them take a large additive
  /// penalty -- applied outside the cost cache, so cached model costs stay
  /// fault-agnostic. A plan that cannot avoid these sites (e.g. QS with a
  /// single primary copy) still optimizes normally among penalized plans.
  std::vector<SiteId> unavailable_sites;

  // --- iterative improvement (II) ---------------------------------------
  /// Number of random starting plans. Starts are independent searches and
  /// run concurrently on the global thread pool (see DIMSUM_THREADS).
  int ii_starts = 10;
  /// A plan is declared a local minimum after this many consecutive
  /// non-improving random neighbors.
  int ii_patience = 48;

  // --- simulated annealing (SA) -----------------------------------------
  /// Initial temperature as a fraction of the II result's cost ([IK90]
  /// found a low starting temperature best for 2PO).
  double sa_initial_temp_factor = 0.1;
  /// Multiplicative temperature decay per stage.
  double sa_temp_decay = 0.9;
  /// Moves attempted per temperature stage, per join in the query.
  int sa_stage_moves_per_join = 8;
  /// The system is frozen once the temperature falls below this fraction
  /// of its initial value and the best plan stopped improving.
  double sa_freeze_temp_ratio = 0.01;
  /// ... for this many consecutive stages.
  int sa_freeze_stages = 4;

  TransformConfig MakeTransformConfig() const {
    TransformConfig config;
    config.space = PolicySpace::For(policy);
    config.join_order_moves = join_order_moves;
    config.allow_commute = allow_commute && join_order_moves;
    config.require_linear = require_linear;
    return config;
  }
};

/// Per-move-type search counters for one optimizer phase. A move is
/// *proposed* when TryRandomMove draws a candidate (whether or not the
/// transformed plan is legal) and *accepted* when the search adopts the
/// neighbor (II: strict improvement; SA: the Metropolis criterion).
struct MoveTypeCounters {
  std::array<int64_t, kNumMoveTypes> proposed{};
  std::array<int64_t, kNumMoveTypes> accepted{};
  /// SA only: accepted moves that increased cost.
  int64_t uphill_accepted = 0;

  void Merge(const MoveTypeCounters& other) {
    for (int i = 0; i < kNumMoveTypes; ++i) {
      proposed[static_cast<std::size_t>(i)] +=
          other.proposed[static_cast<std::size_t>(i)];
      accepted[static_cast<std::size_t>(i)] +=
          other.accepted[static_cast<std::size_t>(i)];
    }
    uphill_accepted += other.uphill_accepted;
  }
  int64_t total_proposed() const {
    int64_t total = 0;
    for (const int64_t p : proposed) total += p;
    return total;
  }
  int64_t total_accepted() const {
    int64_t total = 0;
    for (const int64_t a : accepted) total += a;
    return total;
  }
  double AcceptanceRatio() const {
    const int64_t p = total_proposed();
    return p > 0 ? static_cast<double>(total_accepted()) /
                       static_cast<double>(p)
                 : 0.0;
  }
};

/// Result of an optimization run.
struct OptimizeResult {
  Plan plan;             // bound under the cost model's catalog
  double cost = 0.0;     // in the units of the configured metric
  /// Plan-cost evaluations *requested* by the search, cache hits included
  /// (so the figure means the same thing with and without the cache).
  int plans_evaluated = 0;
  /// Cost-cache counters: `cache_misses` analytic-model runs were actually
  /// performed; hits + misses == plans_evaluated when the cache is on.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// Per-phase move counters (II starts merged in start-index order; SA
  /// over its single stream). Deterministic for any thread count.
  MoveTypeCounters ii_moves;
  MoveTypeCounters sa_moves;

  double CacheHitRate() const {
    const int64_t total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// Randomized two-phase query optimizer. Search space and cost metric are
/// set by the config; the policy restricts annotations per Table 1 so the
/// same machinery optimizes DS, QS, and HY plans.
///
/// Parallelism & determinism: the II starts (and SiteSelect restarts) run
/// concurrently on the global thread pool. Each start draws a child seed
/// from the caller's `Rng` *before* dispatch and searches with its own
/// stream; the winner is the (cost, start-index) minimum and the SA phase
/// runs on its own pre-derived stream, so the result — plan, cost, and
/// all counters — is bit-identical for any thread count.
class TwoPhaseOptimizer {
 public:
  TwoPhaseOptimizer(const CostModel& model, const OptimizerConfig& config)
      : model_(model), config_(config) {}

  /// Full optimization: join ordering and site selection.
  OptimizeResult Optimize(const QueryGraph& query, Rng& rng) const;

  /// Improves only the site annotations of `start` (join order kept),
  /// restarting from random annotation assignments. Used for the run-time
  /// phase of 2-step optimization, and for evaluating statically compiled
  /// join orders.
  OptimizeResult SiteSelect(const Plan& start, const QueryGraph& query,
                            Rng& rng) const;

 private:
  /// Cost of `plan`, through `cache` when non-null; counts the request.
  double EvalCost(Plan& plan, const QueryGraph& query, CostCache* cache,
                  int* evaluations) const;
  /// Large additive penalty when the plan (bound for the query's home
  /// client) depends on any configured unavailable site, else 0.
  double UnavailablePenalty(const Plan& plan, const QueryGraph& query) const;
  /// SA phase over a pre-derived stream; folds the accumulated II counters
  /// into the returned result.
  OptimizeResult Anneal(Plan start, double start_cost,
                        const QueryGraph& query,
                        const TransformConfig& transform, Rng& rng,
                        int evaluations, int64_t cache_hits,
                        int64_t cache_misses,
                        MoveTypeCounters ii_moves) const;
  /// Runs II from `start`; returns the local minimum reached. Move
  /// proposals/acceptances are accumulated into `*moves`.
  std::pair<Plan, double> ImproveToLocalMin(Plan start,
                                            const QueryGraph& query,
                                            const TransformConfig& transform,
                                            Rng& rng, int* evaluations,
                                            CostCache* cache,
                                            MoveTypeCounters* moves) const;
  /// Binds the final plan's sites and assembles the result struct.
  OptimizeResult FinishResult(Plan plan, double cost, int evaluations,
                              int64_t cache_hits, int64_t cache_misses) const;

  const CostModel& model_;
  OptimizerConfig config_;
};

/// Folds one optimization run's counters into `registry` under
/// "opt."-prefixed names: evaluation/cache totals, per-move-type
/// proposed/accepted counts for each phase, SA uphill acceptances, and
/// acceptance-ratio / cache-hit-rate gauges (averaged via Add; divide by
/// opt.runs for the mean).
void FoldOptimizeResult(const OptimizeResult& result,
                        MetricsRegistry& registry);

}  // namespace dimsum

#endif  // DIMSUM_OPT_OPTIMIZER_H_

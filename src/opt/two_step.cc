#include "opt/two_step.h"

#include "common/check.h"
#include "plan/binding.h"

namespace dimsum {

Catalog AssumedCatalog(const Catalog& real, const QueryGraph& query,
                       PlacementAssumption assumption, int num_servers) {
  DIMSUM_CHECK_GE(num_servers, 1);
  Catalog assumed(real.num_clients());
  // Recreate all relations with their real schemas (ids must match).
  for (RelationId id = 0; id < real.num_relations(); ++id) {
    const Relation& rel = real.relation(id);
    const RelationId copy =
        assumed.AddRelation(rel.name, rel.num_tuples, rel.tuple_bytes);
    DIMSUM_CHECK_EQ(copy, id);
  }
  int server_index = 0;
  for (RelationId id : query.relations) {
    switch (assumption) {
      case PlacementAssumption::kCentralized:
        assumed.PlaceRelation(id, ServerSite(0, real.num_clients()));
        break;
      case PlacementAssumption::kFullyDistributed:
        // Round-robin over the *real* server count: with fewer servers
        // than relations the assumption degrades to "as spread out as the
        // system allows" instead of fabricating nonexistent sites.
        assumed.PlaceRelation(
            id, ServerSite(server_index++ % num_servers, real.num_clients()));
        break;
    }
  }
  return assumed;
}

OptimizeResult CompilePlan(const CostModel& assumed_model,
                           const QueryGraph& query,
                           const OptimizerConfig& config, Rng& rng) {
  TwoPhaseOptimizer optimizer(assumed_model, config);
  return optimizer.Optimize(query, rng);
}

OptimizeResult EvaluateStatic(const CostModel& true_model,
                              const Plan& compiled, const QueryGraph& query,
                              OptimizeMetric metric) {
  OptimizeResult result;
  result.plan = compiled.Clone();
  result.cost = true_model.PlanCost(result.plan, query, metric);
  result.plans_evaluated = 1;
  return result;
}

OptimizeResult TwoStepSiteSelection(const CostModel& true_model,
                                    const Plan& compiled,
                                    const QueryGraph& query,
                                    const OptimizerConfig& config, Rng& rng) {
  TwoPhaseOptimizer optimizer(true_model, config);
  return optimizer.SiteSelect(compiled, query, rng);
}

}  // namespace dimsum

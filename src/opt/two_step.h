#ifndef DIMSUM_OPT_TWO_STEP_H_
#define DIMSUM_OPT_TWO_STEP_H_

#include "catalog/catalog.h"
#include "opt/optimizer.h"

namespace dimsum {

/// Static and 2-step query optimization (Section 5 of the paper).
///
/// Both strategies pre-compile a plan under *assumed* knowledge of the
/// system state (data placement, caching). A *static* plan is used as-is at
/// run time: its logical annotations re-bind to wherever the data actually
/// lives, but neither the join order nor the annotations change. A *2-step*
/// plan keeps the compiled join ordering but re-runs site selection
/// (annotation-only optimization) against the true run-time state.

/// Compile-time placement assumptions used in the paper's Section 5.2
/// experiments.
enum class PlacementAssumption {
  kCentralized,       // the whole database on a single server
  kFullyDistributed,  // every relation on its own server
};

/// Builds a fictitious catalog realizing `assumption` for the relations of
/// `query` (same schemas as in `real`, no client caching assumed).
/// `num_servers` is the real system's server count: the fully-distributed
/// assumption spreads relations round-robin over exactly those servers and
/// never fabricates sites the run-time system does not have.
Catalog AssumedCatalog(const Catalog& real, const QueryGraph& query,
                       PlacementAssumption assumption, int num_servers);

/// Compiles a plan for `query` under the assumed system state described by
/// `assumed_model` (join ordering and site selection both happen at compile
/// time, as a static optimizer would).
OptimizeResult CompilePlan(const CostModel& assumed_model,
                           const QueryGraph& query,
                           const OptimizerConfig& config, Rng& rng);

/// Evaluates a statically compiled plan under the true system state: the
/// plan is re-bound (logical annotations follow migrated data) and costed.
/// Returns the bound plan and its true cost.
OptimizeResult EvaluateStatic(const CostModel& true_model, const Plan& compiled,
                              const QueryGraph& query, OptimizeMetric metric);

/// Runs the 2-step optimizer's execution-time phase: site selection on the
/// compiled join order under the true system state.
OptimizeResult TwoStepSiteSelection(const CostModel& true_model,
                                    const Plan& compiled,
                                    const QueryGraph& query,
                                    const OptimizerConfig& config, Rng& rng);

}  // namespace dimsum

#endif  // DIMSUM_OPT_TWO_STEP_H_

#ifndef DIMSUM_PLAN_ANNOTATION_H_
#define DIMSUM_PLAN_ANNOTATION_H_

#include <string_view>

namespace dimsum {

/// Kind of query operator in an execution plan.
///
/// Per the paper's footnotes 3 and 4: binary operators other than join
/// (set operations such as union) are annotated like joins, and unary
/// operators other than select (projections, aggregations) are annotated
/// like selections.
enum class OpType {
  kDisplay,    // root; presents results at the client
  kJoin,       // binary equijoin (hybrid hash)
  kUnion,      // binary bag union (concatenation of two compatible inputs)
  kSelect,     // unary predicate filter
  kProject,    // unary column projection (shrinks tuples)
  kAggregate,  // unary hash aggregation (shrinks cardinality; blocking)
  kSort,       // unary external merge sort (blocking; spills runs)
  kScan,       // leaf; produces all tuples of a relation
};

/// True for operators with two inputs (annotated like joins).
inline bool IsBinaryOp(OpType type) {
  return type == OpType::kJoin || type == OpType::kUnion;
}

/// True for non-root operators with one input (annotated like selects).
inline bool IsUnaryOp(OpType type) {
  return type == OpType::kSelect || type == OpType::kProject ||
         type == OpType::kAggregate || type == OpType::kSort;
}

/// Logical site annotation of an operator (Section 2.1 of the paper).
/// Annotations name logical sites and are bound to physical machines only
/// at execution time.
enum class SiteAnnotation {
  kClient,       // display (always), or a scan run at the client cache
  kPrimaryCopy,  // scan at the server holding the relation's primary copy
  kConsumer,     // run at the site of the consuming (parent) operator
  kProducer,     // select: run at the site of its child
  kInnerRel,     // join: run at the site producing its left-hand input
  kOuterRel,     // join: run at the site producing its right-hand input
};

inline std::string_view ToString(OpType type) {
  switch (type) {
    case OpType::kDisplay:
      return "display";
    case OpType::kJoin:
      return "join";
    case OpType::kUnion:
      return "union";
    case OpType::kSelect:
      return "select";
    case OpType::kProject:
      return "project";
    case OpType::kAggregate:
      return "aggregate";
    case OpType::kSort:
      return "sort";
    case OpType::kScan:
      return "scan";
  }
  return "?";
}

inline std::string_view ToString(SiteAnnotation annotation) {
  switch (annotation) {
    case SiteAnnotation::kClient:
      return "client";
    case SiteAnnotation::kPrimaryCopy:
      return "primary copy";
    case SiteAnnotation::kConsumer:
      return "consumer";
    case SiteAnnotation::kProducer:
      return "producer";
    case SiteAnnotation::kInnerRel:
      return "inner relation";
    case SiteAnnotation::kOuterRel:
      return "outer relation";
  }
  return "?";
}

}  // namespace dimsum

#endif  // DIMSUM_PLAN_ANNOTATION_H_

#include "plan/binding.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "plan/validate.h"

namespace dimsum {
namespace {

/// One resolution pass; returns the number of nodes newly bound.
/// `parent_site` is the (possibly still unbound) site of the parent.
int ResolvePass(PlanNode& node, SiteId parent_site, const Catalog& catalog,
                SiteId client) {
  int bound = 0;
  if (node.bound_site == kUnboundSite) {
    if (node.type == OpType::kDisplay) {
      node.bound_site = client;
      ++bound;
    } else if (node.type == OpType::kScan) {
      if (node.annotation == SiteAnnotation::kClient) {
        node.bound_site = client;
      } else if (catalog.sharded(node.relation)) {
        // Shard fragments bind to their shard's serving copy. A logical
        // (shard < 0) scan binds to shard 0's site as a representative so
        // the optimizer can bind-and-cost unexpanded plans; ExpandShards
        // assigns the real per-shard sites before execution.
        node.bound_site = catalog.ShardSite(
            node.relation, node.shard >= 0 ? node.shard : 0, node.replica);
      } else {
        node.bound_site = catalog.ReplicaSite(node.relation, node.replica);
      }
      ++bound;
    } else if (IsUnaryOp(node.type)) {
      if (node.annotation == SiteAnnotation::kConsumer) {
        if (parent_site != kUnboundSite) {
          node.bound_site = parent_site;
          ++bound;
        }
      } else {  // producer
        if (node.left->bound_site != kUnboundSite) {
          node.bound_site = node.left->bound_site;
          ++bound;
        }
      }
    } else {  // binary operators (join, union)
      if (node.annotation == SiteAnnotation::kConsumer) {
        if (parent_site != kUnboundSite) {
          node.bound_site = parent_site;
          ++bound;
        }
      } else if (node.annotation == SiteAnnotation::kInnerRel) {
        if (node.left->bound_site != kUnboundSite) {
          node.bound_site = node.left->bound_site;
          ++bound;
        }
      } else {  // outer relation
        if (node.right->bound_site != kUnboundSite) {
          node.bound_site = node.right->bound_site;
          ++bound;
        }
      }
    }
  }
  if (node.left) bound += ResolvePass(*node.left, node.bound_site, catalog, client);
  if (node.right) {
    bound += ResolvePass(*node.right, node.bound_site, catalog, client);
  }
  return bound;
}

}  // namespace

void BindSites(Plan& plan, const Catalog& catalog, SiteId client) {
  DIMSUM_CHECK(IsStructurallyValid(plan));
  DIMSUM_CHECK(IsWellFormed(plan));
  DIMSUM_CHECK(catalog.IsClientSite(client))
      << "home client " << client << " is not a client site (catalog has "
      << catalog.num_clients() << " clients)";
  ClearBinding(plan);
  // Each pass binds at least one node of any unresolved chain (the chains
  // are acyclic by well-formedness), so at most Size() passes are needed.
  const int size = plan.Size();
  for (int pass = 0; pass < size; ++pass) {
    if (ResolvePass(*plan.root(), kUnboundSite, catalog, client) == 0) break;
  }
  DIMSUM_CHECK(IsFullyBound(plan)) << "binding did not reach a fixpoint";
}

bool IsFullyBound(const Plan& plan) {
  bool all = true;
  plan.ForEach([&](const PlanNode& node) {
    if (node.bound_site == kUnboundSite) all = false;
  });
  return all;
}

void ClearBinding(Plan& plan) {
  plan.ForEachMutable(
      [](PlanNode& node) { node.bound_site = kUnboundSite; });
}

std::vector<SiteId> BoundServerSites(const Plan& plan, const Catalog& catalog,
                                     int page_bytes) {
  DIMSUM_CHECK(IsFullyBound(plan));
  std::vector<SiteId> sites;
  plan.ForEach([&](const PlanNode& node) {
    if (!catalog.IsClientSite(node.bound_site)) {
      sites.push_back(node.bound_site);
    }
    // A logical (unexpanded) server scan of a sharded relation stands for
    // fragments on every shard's serving copy.
    if (node.type == OpType::kScan &&
        node.annotation == SiteAnnotation::kPrimaryCopy && node.shard < 0 &&
        catalog.sharded(node.relation)) {
      for (int k = 0; k < catalog.NumShards(node.relation); ++k) {
        sites.push_back(catalog.ShardSite(node.relation, k, node.replica));
      }
    }
    // A client-cached scan with a partial cache still faults the remaining
    // pages in from the scan's serving replica — or, for a sharded
    // relation (never client-cached), from every shard's serving copy.
    if (node.type == OpType::kScan && catalog.IsClientSite(node.bound_site)) {
      if (catalog.sharded(node.relation)) {
        for (int k = 0; k < catalog.NumShards(node.relation); ++k) {
          sites.push_back(
              catalog.ShardSite(node.relation, k, node.replica));
        }
      } else if (catalog.CachedPages(node.relation, node.bound_site,
                                     page_bytes) <
                 catalog.relation(node.relation).Pages(page_bytes)) {
        sites.push_back(catalog.ReplicaSite(node.relation, node.replica));
      }
    }
  });
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  return sites;
}

}  // namespace dimsum

#include "plan/binding.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "plan/validate.h"

namespace dimsum {
namespace {

/// One resolution pass; returns the number of nodes newly bound.
/// `parent_site` is the (possibly still unbound) site of the parent.
int ResolvePass(PlanNode& node, SiteId parent_site, const Catalog& catalog,
                SiteId client) {
  int bound = 0;
  if (node.bound_site == kUnboundSite) {
    if (node.type == OpType::kDisplay) {
      node.bound_site = client;
      ++bound;
    } else if (node.type == OpType::kScan) {
      node.bound_site = (node.annotation == SiteAnnotation::kClient)
                            ? client
                            : catalog.ReplicaSite(node.relation, node.replica);
      ++bound;
    } else if (IsUnaryOp(node.type)) {
      if (node.annotation == SiteAnnotation::kConsumer) {
        if (parent_site != kUnboundSite) {
          node.bound_site = parent_site;
          ++bound;
        }
      } else {  // producer
        if (node.left->bound_site != kUnboundSite) {
          node.bound_site = node.left->bound_site;
          ++bound;
        }
      }
    } else {  // binary operators (join, union)
      if (node.annotation == SiteAnnotation::kConsumer) {
        if (parent_site != kUnboundSite) {
          node.bound_site = parent_site;
          ++bound;
        }
      } else if (node.annotation == SiteAnnotation::kInnerRel) {
        if (node.left->bound_site != kUnboundSite) {
          node.bound_site = node.left->bound_site;
          ++bound;
        }
      } else {  // outer relation
        if (node.right->bound_site != kUnboundSite) {
          node.bound_site = node.right->bound_site;
          ++bound;
        }
      }
    }
  }
  if (node.left) bound += ResolvePass(*node.left, node.bound_site, catalog, client);
  if (node.right) {
    bound += ResolvePass(*node.right, node.bound_site, catalog, client);
  }
  return bound;
}

}  // namespace

void BindSites(Plan& plan, const Catalog& catalog, SiteId client) {
  DIMSUM_CHECK(IsStructurallyValid(plan));
  DIMSUM_CHECK(IsWellFormed(plan));
  DIMSUM_CHECK(catalog.IsClientSite(client))
      << "home client " << client << " is not a client site (catalog has "
      << catalog.num_clients() << " clients)";
  ClearBinding(plan);
  // Each pass binds at least one node of any unresolved chain (the chains
  // are acyclic by well-formedness), so at most Size() passes are needed.
  const int size = plan.Size();
  for (int pass = 0; pass < size; ++pass) {
    if (ResolvePass(*plan.root(), kUnboundSite, catalog, client) == 0) break;
  }
  DIMSUM_CHECK(IsFullyBound(plan)) << "binding did not reach a fixpoint";
}

bool IsFullyBound(const Plan& plan) {
  bool all = true;
  plan.ForEach([&](const PlanNode& node) {
    if (node.bound_site == kUnboundSite) all = false;
  });
  return all;
}

void ClearBinding(Plan& plan) {
  plan.ForEachMutable(
      [](PlanNode& node) { node.bound_site = kUnboundSite; });
}

std::vector<SiteId> BoundServerSites(const Plan& plan, const Catalog& catalog,
                                     int page_bytes) {
  DIMSUM_CHECK(IsFullyBound(plan));
  std::vector<SiteId> sites;
  plan.ForEach([&](const PlanNode& node) {
    if (!catalog.IsClientSite(node.bound_site)) {
      sites.push_back(node.bound_site);
    }
    // A client-cached scan with a partial cache still faults the remaining
    // pages in from the scan's serving replica.
    if (node.type == OpType::kScan &&
        catalog.IsClientSite(node.bound_site) &&
        catalog.CachedPages(node.relation, node.bound_site, page_bytes) <
            catalog.relation(node.relation).Pages(page_bytes)) {
      sites.push_back(catalog.ReplicaSite(node.relation, node.replica));
    }
  });
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  return sites;
}

}  // namespace dimsum

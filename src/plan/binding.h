#ifndef DIMSUM_PLAN_BINDING_H_
#define DIMSUM_PLAN_BINDING_H_

#include "catalog/catalog.h"
#include "plan/plan.h"

namespace dimsum {

/// Binds the logical site annotations of `plan` to physical sites
/// (Section 2.1): the display and scan locations are resolved first
/// (client / primary copy / client cache), then consumer, inner-relation,
/// outer-relation and producer annotations are propagated to a fixpoint.
///
/// Requires a structurally valid, well-formed plan; checks-fails otherwise.
/// Sets PlanNode::bound_site on every node.
void BindSites(Plan& plan, const Catalog& catalog,
               SiteId client = kClientSite);

/// Returns true if every node of the plan has a bound site.
bool IsFullyBound(const Plan& plan);

/// Clears bound sites (useful before re-binding under a new placement).
void ClearBinding(Plan& plan);

}  // namespace dimsum

#endif  // DIMSUM_PLAN_BINDING_H_

#ifndef DIMSUM_PLAN_BINDING_H_
#define DIMSUM_PLAN_BINDING_H_

#include <vector>

#include "catalog/catalog.h"
#include "plan/plan.h"

namespace dimsum {

/// Binds the logical site annotations of `plan` to physical sites
/// (Section 2.1): the display and scan locations are resolved first
/// (client / primary copy / client cache), then consumer, inner-relation,
/// outer-relation and producer annotations are propagated to a fixpoint.
///
/// Requires a structurally valid, well-formed plan; checks-fails otherwise.
/// Sets PlanNode::bound_site on every node.
void BindSites(Plan& plan, const Catalog& catalog,
               SiteId client = kClientSite);

/// Returns true if every node of the plan has a bound site.
bool IsFullyBound(const Plan& plan);

/// Clears bound sites (useful before re-binding under a new placement).
void ClearBinding(Plan& plan);

/// Server sites a fully bound plan depends on: every server a node is
/// bound to, plus the primary-copy site of any client-cached scan whose
/// cache holds less than the full relation (the remainder faults in from
/// the server). Sorted, deduplicated. Check-fails unless fully bound.
///
/// The fault-injection recovery path uses this to decide whether a plan
/// touches a crashed site before (re)submitting it.
std::vector<SiteId> BoundServerSites(const Plan& plan, const Catalog& catalog,
                                     int page_bytes);

}  // namespace dimsum

#endif  // DIMSUM_PLAN_BINDING_H_

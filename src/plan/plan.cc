#include "plan/plan.h"

#include "common/check.h"

namespace dimsum {
namespace {

void ForEachImpl(const PlanNode* node,
                 const std::function<void(const PlanNode&)>& fn) {
  if (node == nullptr) return;
  fn(*node);
  ForEachImpl(node->left.get(), fn);
  ForEachImpl(node->right.get(), fn);
}

void ForEachMutableImpl(PlanNode* node,
                        const std::function<void(PlanNode&)>& fn) {
  if (node == nullptr) return;
  fn(*node);
  ForEachMutableImpl(node->left.get(), fn);
  ForEachMutableImpl(node->right.get(), fn);
}

void CollectRelations(const PlanNode& node, std::vector<RelationId>* out) {
  if (node.type == OpType::kScan) out->push_back(node.relation);
  if (node.left) CollectRelations(*node.left, out);
  if (node.right) CollectRelations(*node.right, out);
}

}  // namespace

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->type = type;
  copy->annotation = annotation;
  copy->relation = relation;
  copy->replica = replica;
  copy->shard = shard;
  copy->key_lo = key_lo;
  copy->key_hi = key_hi;
  copy->selectivity = selectivity;
  copy->width_factor = width_factor;
  copy->num_groups = num_groups;
  copy->bound_site = bound_site;
  if (left) copy->left = left->Clone();
  if (right) copy->right = right->Clone();
  return copy;
}

void Plan::ForEach(const std::function<void(const PlanNode&)>& fn) const {
  ForEachImpl(root_.get(), fn);
}

void Plan::ForEachMutable(const std::function<void(PlanNode&)>& fn) {
  ForEachMutableImpl(root_.get(), fn);
}

int Plan::Size() const {
  int count = 0;
  ForEach([&count](const PlanNode&) { ++count; });
  return count;
}

std::vector<RelationId> Plan::RelationsBelow(const PlanNode& node) {
  std::vector<RelationId> out;
  CollectRelations(node, &out);
  return out;
}

std::unique_ptr<PlanNode> MakeScan(RelationId relation,
                                   SiteAnnotation annotation) {
  DIMSUM_CHECK(annotation == SiteAnnotation::kClient ||
               annotation == SiteAnnotation::kPrimaryCopy);
  auto node = std::make_unique<PlanNode>();
  node->type = OpType::kScan;
  node->relation = relation;
  node->annotation = annotation;
  return node;
}

std::unique_ptr<PlanNode> MakeSelect(std::unique_ptr<PlanNode> child,
                                     double selectivity,
                                     SiteAnnotation annotation) {
  DIMSUM_CHECK(annotation == SiteAnnotation::kConsumer ||
               annotation == SiteAnnotation::kProducer);
  DIMSUM_CHECK(child != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->type = OpType::kSelect;
  node->selectivity = selectivity;
  node->annotation = annotation;
  node->left = std::move(child);
  return node;
}

std::unique_ptr<PlanNode> MakeProject(std::unique_ptr<PlanNode> child,
                                      double width_factor,
                                      SiteAnnotation annotation) {
  DIMSUM_CHECK(annotation == SiteAnnotation::kConsumer ||
               annotation == SiteAnnotation::kProducer);
  DIMSUM_CHECK(child != nullptr);
  DIMSUM_CHECK_GT(width_factor, 0.0);
  DIMSUM_CHECK_LE(width_factor, 1.0);
  auto node = std::make_unique<PlanNode>();
  node->type = OpType::kProject;
  node->width_factor = width_factor;
  node->annotation = annotation;
  node->left = std::move(child);
  return node;
}

std::unique_ptr<PlanNode> MakeAggregate(std::unique_ptr<PlanNode> child,
                                        int64_t num_groups,
                                        SiteAnnotation annotation) {
  DIMSUM_CHECK(annotation == SiteAnnotation::kConsumer ||
               annotation == SiteAnnotation::kProducer);
  DIMSUM_CHECK(child != nullptr);
  DIMSUM_CHECK_GT(num_groups, 0);
  auto node = std::make_unique<PlanNode>();
  node->type = OpType::kAggregate;
  node->num_groups = num_groups;
  node->annotation = annotation;
  node->left = std::move(child);
  return node;
}

std::unique_ptr<PlanNode> MakeSort(std::unique_ptr<PlanNode> child,
                                   SiteAnnotation annotation) {
  DIMSUM_CHECK(annotation == SiteAnnotation::kConsumer ||
               annotation == SiteAnnotation::kProducer);
  DIMSUM_CHECK(child != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->type = OpType::kSort;
  node->annotation = annotation;
  node->left = std::move(child);
  return node;
}

std::unique_ptr<PlanNode> MakeUnion(std::unique_ptr<PlanNode> left,
                                    std::unique_ptr<PlanNode> right,
                                    SiteAnnotation annotation) {
  DIMSUM_CHECK(annotation == SiteAnnotation::kConsumer ||
               annotation == SiteAnnotation::kInnerRel ||
               annotation == SiteAnnotation::kOuterRel);
  DIMSUM_CHECK(left != nullptr);
  DIMSUM_CHECK(right != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->type = OpType::kUnion;
  node->annotation = annotation;
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

std::unique_ptr<PlanNode> MakeJoin(std::unique_ptr<PlanNode> inner,
                                   std::unique_ptr<PlanNode> outer,
                                   SiteAnnotation annotation) {
  DIMSUM_CHECK(annotation == SiteAnnotation::kConsumer ||
               annotation == SiteAnnotation::kInnerRel ||
               annotation == SiteAnnotation::kOuterRel);
  DIMSUM_CHECK(inner != nullptr);
  DIMSUM_CHECK(outer != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->type = OpType::kJoin;
  node->annotation = annotation;
  node->left = std::move(inner);
  node->right = std::move(outer);
  return node;
}

std::unique_ptr<PlanNode> MakeDisplay(std::unique_ptr<PlanNode> child) {
  DIMSUM_CHECK(child != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->type = OpType::kDisplay;
  node->annotation = SiteAnnotation::kClient;
  node->left = std::move(child);
  return node;
}

}  // namespace dimsum

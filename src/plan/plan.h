#ifndef DIMSUM_PLAN_PLAN_H_
#define DIMSUM_PLAN_PLAN_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "plan/annotation.h"

namespace dimsum {

/// Node of a query execution plan. Plans are binary trees whose root is a
/// display operator; joins have two children (left = inner/build input,
/// right = outer/probe input), selects and display have one, scans none.
struct PlanNode {
  OpType type = OpType::kScan;
  SiteAnnotation annotation = SiteAnnotation::kClient;

  /// For scans: the relation produced.
  RelationId relation = kInvalidRelation;
  /// For scans: which copy of the relation serves this scan — an index
  /// into Catalog::ReplicaSites (wrapping; 0 = primary). Selects the bound
  /// site of primary-copy scans and the fault-in source of partially
  /// cached client scans. Part of the optimizer's annotation space.
  int32_t replica = 0;
  /// For scans of sharded relations: which shard this fragment reads
  /// (index into Catalog::ShardSites). -1 = logical whole-relation scan;
  /// ExpandShards rewrites those into per-shard fragments post-optimize.
  int32_t shard = -1;
  /// For scans: pushed-down shard-key restriction as a fraction of the
  /// key domain, half-open [key_lo, key_hi). [0, 1) scans everything;
  /// key_lo == key_hi is an empty scan. Drives partition pruning and the
  /// tuples a fragment emits (reads stay shard-granular).
  double key_lo = 0.0;
  double key_hi = 1.0;
  /// For selects: fraction of input tuples surviving the predicate.
  double selectivity = 1.0;
  /// For projects: fraction of the input tuple width kept.
  double width_factor = 1.0;
  /// For aggregates: number of output groups.
  int64_t num_groups = 1;

  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;

  /// Physical site; set by BindSites, kUnboundSite before.
  SiteId bound_site = kUnboundSite;

  bool is_leaf() const { return type == OpType::kScan; }

  std::unique_ptr<PlanNode> Clone() const;
};

/// A complete plan: owns the display root.
class Plan {
 public:
  Plan() = default;
  explicit Plan(std::unique_ptr<PlanNode> root) : root_(std::move(root)) {}
  Plan(Plan&&) = default;
  Plan& operator=(Plan&&) = default;

  bool empty() const { return root_ == nullptr; }
  PlanNode* root() { return root_.get(); }
  const PlanNode* root() const { return root_.get(); }

  Plan Clone() const { return root_ ? Plan(root_->Clone()) : Plan(); }

  /// Pre-order traversal.
  void ForEach(const std::function<void(const PlanNode&)>& fn) const;
  void ForEachMutable(const std::function<void(PlanNode&)>& fn);

  /// Number of nodes.
  int Size() const;

  /// Relations scanned in the subtree rooted at `node` (pre-order).
  static std::vector<RelationId> RelationsBelow(const PlanNode& node);

 private:
  std::unique_ptr<PlanNode> root_;
};

/// Convenience constructors for building plans by hand (tests, examples).
std::unique_ptr<PlanNode> MakeScan(RelationId relation,
                                   SiteAnnotation annotation);
std::unique_ptr<PlanNode> MakeSelect(std::unique_ptr<PlanNode> child,
                                     double selectivity,
                                     SiteAnnotation annotation);
std::unique_ptr<PlanNode> MakeProject(std::unique_ptr<PlanNode> child,
                                      double width_factor,
                                      SiteAnnotation annotation);
std::unique_ptr<PlanNode> MakeAggregate(std::unique_ptr<PlanNode> child,
                                        int64_t num_groups,
                                        SiteAnnotation annotation);
std::unique_ptr<PlanNode> MakeSort(std::unique_ptr<PlanNode> child,
                                   SiteAnnotation annotation);
std::unique_ptr<PlanNode> MakeUnion(std::unique_ptr<PlanNode> left,
                                    std::unique_ptr<PlanNode> right,
                                    SiteAnnotation annotation);
std::unique_ptr<PlanNode> MakeJoin(std::unique_ptr<PlanNode> inner,
                                   std::unique_ptr<PlanNode> outer,
                                   SiteAnnotation annotation);
std::unique_ptr<PlanNode> MakeDisplay(std::unique_ptr<PlanNode> child);

}  // namespace dimsum

#endif  // DIMSUM_PLAN_PLAN_H_

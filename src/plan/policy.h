#ifndef DIMSUM_PLAN_POLICY_H_
#define DIMSUM_PLAN_POLICY_H_

#include <string_view>
#include <vector>

#include "common/check.h"
#include "plan/annotation.h"

namespace dimsum {

/// The three execution policies of the paper. Each is defined by the
/// restrictions it places on operator site annotations (Table 1).
enum class ShippingPolicy {
  kDataShipping,   // everything at the client
  kQueryShipping,  // scans at primary copies, operators at producers
  kHybridShipping, // any annotation allowed by DS or QS, per operator
};

inline std::string_view ToString(ShippingPolicy policy) {
  switch (policy) {
    case ShippingPolicy::kDataShipping:
      return "DS";
    case ShippingPolicy::kQueryShipping:
      return "QS";
    case ShippingPolicy::kHybridShipping:
      return "HY";
  }
  return "?";
}

/// Allowed annotations per operator kind for a policy (Table 1).
struct PolicySpace {
  std::vector<SiteAnnotation> scan;
  std::vector<SiteAnnotation> select;
  std::vector<SiteAnnotation> join;

  static PolicySpace For(ShippingPolicy policy) {
    using SA = SiteAnnotation;
    switch (policy) {
      case ShippingPolicy::kDataShipping:
        return PolicySpace{{SA::kClient}, {SA::kConsumer}, {SA::kConsumer}};
      case ShippingPolicy::kQueryShipping:
        return PolicySpace{{SA::kPrimaryCopy},
                           {SA::kProducer},
                           {SA::kInnerRel, SA::kOuterRel}};
      case ShippingPolicy::kHybridShipping:
        return PolicySpace{{SA::kClient, SA::kPrimaryCopy},
                           {SA::kConsumer, SA::kProducer},
                           {SA::kConsumer, SA::kInnerRel, SA::kOuterRel}};
    }
    DIMSUM_UNREACHABLE();
  }

  const std::vector<SiteAnnotation>& AllowedFor(OpType type) const {
    static const std::vector<SiteAnnotation> kDisplayOnly = {
        SiteAnnotation::kClient};
    if (type == OpType::kDisplay) return kDisplayOnly;
    if (type == OpType::kScan) return scan;
    if (IsUnaryOp(type)) return select;     // footnote 4: like selections
    if (IsBinaryOp(type)) return join;      // footnote 3: like joins
    DIMSUM_UNREACHABLE();
  }

  bool Allows(OpType type, SiteAnnotation annotation) const {
    for (SiteAnnotation allowed : AllowedFor(type)) {
      if (allowed == annotation) return true;
    }
    return false;
  }
};

}  // namespace dimsum

#endif  // DIMSUM_PLAN_POLICY_H_

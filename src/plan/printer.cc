#include "plan/printer.h"

#include <sstream>

namespace dimsum {
namespace {

void RenderNodeLine(const PlanNode& node, int depth, std::ostringstream& out) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << ToString(node.type);
  if (node.type == OpType::kScan) {
    out << " R" << node.relation;
    if (node.replica != 0) out << " copy=" << node.replica;
    if (node.shard >= 0) out << " shard=" << node.shard;
    if (node.key_lo != 0.0 || node.key_hi != 1.0) {
      out << " key=[" << node.key_lo << "," << node.key_hi << ")";
    }
  }
  if (node.type == OpType::kSelect) out << " sel=" << node.selectivity;
  if (node.type == OpType::kProject) out << " width=" << node.width_factor;
  if (node.type == OpType::kAggregate) out << " groups=" << node.num_groups;
  out << " [" << ToString(node.annotation) << "]";
  if (node.bound_site != kUnboundSite) out << " @" << node.bound_site;
  out << "\n";
}

void Render(const PlanNode& node, int depth, std::ostringstream& out) {
  RenderNodeLine(node, depth, out);
  if (node.left) Render(*node.left, depth + 1, out);
  if (node.right) Render(*node.right, depth + 1, out);
}

void RenderAnnotated(const PlanNode& node, int depth, int* next_id,
                     const PlanAnnotator& annotate, std::ostringstream& out) {
  const int id = (*next_id)++;
  RenderNodeLine(node, depth, out);
  for (const std::string& line : annotate(node, id)) {
    for (int i = 0; i < depth + 1; ++i) out << "  ";
    out << line << "\n";
  }
  if (node.left) RenderAnnotated(*node.left, depth + 1, next_id, annotate, out);
  if (node.right) {
    RenderAnnotated(*node.right, depth + 1, next_id, annotate, out);
  }
}

}  // namespace

std::string PlanToString(const Plan& plan) {
  if (plan.empty()) return "(empty plan)\n";
  std::ostringstream out;
  Render(*plan.root(), 0, out);
  return out.str();
}

std::string PlanToString(const Plan& plan, const PlanAnnotator& annotate) {
  if (plan.empty()) return "(empty plan)\n";
  std::ostringstream out;
  int next_id = 0;
  RenderAnnotated(*plan.root(), 0, &next_id, annotate, out);
  return out.str();
}

}  // namespace dimsum

#include "plan/printer.h"

#include <sstream>

namespace dimsum {
namespace {

void Render(const PlanNode& node, int depth, std::ostringstream& out) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << ToString(node.type);
  if (node.type == OpType::kScan) out << " R" << node.relation;
  if (node.type == OpType::kSelect) out << " sel=" << node.selectivity;
  if (node.type == OpType::kProject) out << " width=" << node.width_factor;
  if (node.type == OpType::kAggregate) out << " groups=" << node.num_groups;
  out << " [" << ToString(node.annotation) << "]";
  if (node.bound_site != kUnboundSite) out << " @" << node.bound_site;
  out << "\n";
  if (node.left) Render(*node.left, depth + 1, out);
  if (node.right) Render(*node.right, depth + 1, out);
}

}  // namespace

std::string PlanToString(const Plan& plan) {
  if (plan.empty()) return "(empty plan)\n";
  std::ostringstream out;
  Render(*plan.root(), 0, out);
  return out.str();
}

}  // namespace dimsum

#ifndef DIMSUM_PLAN_PRINTER_H_
#define DIMSUM_PLAN_PRINTER_H_

#include <functional>
#include <string>
#include <vector>

#include "plan/plan.h"

namespace dimsum {

/// Renders the plan as an indented tree, e.g.
///   display [client] @0
///     join [consumer] @0
///       scan R0 [client] @0
///       scan R1 [primary copy] @1
/// Bound sites are printed when present.
std::string PlanToString(const Plan& plan);

/// Per-node annotation hook for EXPLAIN-style output: called with each
/// node and its pre-order id (display root = 0); every returned line is
/// rendered indented one level beneath the node. Keeping the hook a plain
/// callback lets report layers annotate plans without this library
/// depending on them.
using PlanAnnotator =
    std::function<std::vector<std::string>(const PlanNode&, int)>;

/// Renders the plan as an indented tree with annotation lines.
std::string PlanToString(const Plan& plan, const PlanAnnotator& annotate);

}  // namespace dimsum

#endif  // DIMSUM_PLAN_PRINTER_H_

#ifndef DIMSUM_PLAN_PRINTER_H_
#define DIMSUM_PLAN_PRINTER_H_

#include <string>

#include "plan/plan.h"

namespace dimsum {

/// Renders the plan as an indented tree, e.g.
///   display [client] @0
///     join [consumer] @0
///       scan R0 [client] @0
///       scan R1 [primary copy] @1
/// Bound sites are printed when present.
std::string PlanToString(const Plan& plan);

}  // namespace dimsum

#endif  // DIMSUM_PLAN_PRINTER_H_

#ifndef DIMSUM_PLAN_QUERY_H_
#define DIMSUM_PLAN_QUERY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace dimsum {

/// Join-graph description of a select-project-join query. Relations are
/// vertices; an edge between two relations means they share a join
/// attribute (an equijoin predicate). The paper's benchmark uses chain
/// ("functional") joins; the Section 5 example uses a complete graph.
struct QueryGraph {
  std::vector<RelationId> relations;
  std::vector<std::pair<RelationId, RelationId>> edges;

  /// The client site this query belongs to: its display runs here, its
  /// client-annotated scans read this client's cache, and binding, cost
  /// estimation, and optimization all resolve "client" to this site. The
  /// default is the single-client convention (site 0).
  SiteId home_client = kClientSite;

  /// Join selectivity model: joining inputs of L and R tuples produces
  /// selectivity_factor * min(L, R) tuples. 1.0 is the paper's "moderate"
  /// functional join (result has the size and cardinality of one base
  /// relation); 0.2 is the paper's HiSel query.
  double selectivity_factor = 1.0;

  /// Optional per-relation selection predicates (same order as
  /// `relations`); 1.0 means no selection. Empty means no selections.
  std::vector<double> scan_selectivities;

  int num_relations() const { return static_cast<int>(relations.size()); }

  bool HasEdge(RelationId a, RelationId b) const {
    for (const auto& [x, y] : edges) {
      if ((x == a && y == b) || (x == b && y == a)) return true;
    }
    return false;
  }

  /// True if some join predicate connects a relation in `left` with a
  /// relation in `right` (i.e., joining them is not a Cartesian product).
  bool Connects(const std::vector<RelationId>& left,
                const std::vector<RelationId>& right) const {
    for (RelationId a : left) {
      for (RelationId b : right) {
        if (HasEdge(a, b)) return true;
      }
    }
    return false;
  }

  double ScanSelectivity(RelationId id) const {
    if (scan_selectivities.empty()) return 1.0;
    for (int i = 0; i < num_relations(); ++i) {
      if (relations[i] == id) return scan_selectivities[i];
    }
    DIMSUM_UNREACHABLE() << "relation " << id << " not in query";
  }

  /// Builds a chain query: relations[0] - relations[1] - ... - relations[n-1].
  static QueryGraph Chain(std::vector<RelationId> relations,
                          double selectivity_factor = 1.0) {
    QueryGraph graph;
    graph.selectivity_factor = selectivity_factor;
    for (size_t i = 0; i + 1 < relations.size(); ++i) {
      graph.edges.emplace_back(relations[i], relations[i + 1]);
    }
    graph.relations = std::move(relations);
    return graph;
  }

  /// Builds a complete ("clique") query: every pair joinable.
  static QueryGraph Complete(std::vector<RelationId> relations,
                             double selectivity_factor = 1.0) {
    QueryGraph graph;
    graph.selectivity_factor = selectivity_factor;
    for (size_t i = 0; i < relations.size(); ++i) {
      for (size_t j = i + 1; j < relations.size(); ++j) {
        graph.edges.emplace_back(relations[i], relations[j]);
      }
    }
    graph.relations = std::move(relations);
    return graph;
  }
};

}  // namespace dimsum

#endif  // DIMSUM_PLAN_QUERY_H_

#include "plan/shard.h"

#include <cmath>
#include <memory>
#include <vector>

#include "common/check.h"
#include "plan/binding.h"

namespace dimsum {
namespace {

bool IsLogicalShardedScan(const PlanNode& node, const Catalog& catalog) {
  return node.type == OpType::kScan &&
         node.annotation == SiteAnnotation::kPrimaryCopy && node.shard < 0 &&
         catalog.sharded(node.relation);
}

/// True for operators ExpandShards may replicate into each fragment: a
/// producer-annotated filter/projection runs at its child's site, so a
/// per-fragment copy computes the same bag as one copy above the union.
bool IsPushableChainOp(const PlanNode& node) {
  return (node.type == OpType::kSelect || node.type == OpType::kProject) &&
         node.annotation == SiteAnnotation::kProducer;
}

/// Shards of `rel` a scan restricted to [key_lo, key_hi) must read, in
/// shard order. Range shards prune on tuple-extent intersection (exact
/// integer math, matching Catalog::ScanExtent's rounding); hash shards
/// hold a sample of every key, so a non-empty restriction keeps them all.
std::vector<int> KeptShards(const Catalog& catalog, RelationId rel,
                            double key_lo, double key_hi) {
  std::vector<int> kept;
  if (key_hi <= key_lo) return kept;  // empty restriction prunes everything
  const int shards = catalog.NumShards(rel);
  if (catalog.Scheme(rel) == ShardScheme::kHash) {
    for (int k = 0; k < shards; ++k) kept.push_back(k);
    return kept;
  }
  const double tuples =
      static_cast<double>(catalog.relation(rel).num_tuples);
  const int64_t lo = std::llround(key_lo * tuples);
  const int64_t hi = std::llround(key_hi * tuples);
  for (int k = 0; k < shards; ++k) {
    const int64_t first = catalog.ShardFirstTuple(rel, k);
    const int64_t last = catalog.ShardFirstTuple(rel, k + 1);
    if (lo < last && first < hi) kept.push_back(k);
  }
  return kept;
}

/// One fragment: a clone of `scan` pinned to shard `k`, rewrapped in
/// clones of the pushed-down chain ops (outermost first).
std::unique_ptr<PlanNode> MakeFragment(
    const PlanNode& scan, int shard,
    const std::vector<const PlanNode*>& chain) {
  std::unique_ptr<PlanNode> fragment = scan.Clone();
  fragment->shard = shard;
  fragment->bound_site = kUnboundSite;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    std::unique_ptr<PlanNode> op = (*it)->Clone();
    op->left = std::move(fragment);
    op->right = nullptr;
    op->bound_site = kUnboundSite;
    fragment = std::move(op);
  }
  return fragment;
}

/// Expands the pushdown chain `chain` (outermost first, possibly empty)
/// over the logical sharded scan `scan` into a union chain of per-shard
/// fragments.
std::unique_ptr<PlanNode> ExpandScan(
    const PlanNode& scan, const std::vector<const PlanNode*>& chain,
    const Catalog& catalog) {
  const std::vector<int> kept =
      KeptShards(catalog, scan.relation, scan.key_lo, scan.key_hi);
  if (kept.empty()) {
    // Everything pruned: one empty fragment keeps the relation scanned
    // exactly once (plan shape invariants) while reading zero pages.
    std::unique_ptr<PlanNode> fragment = MakeFragment(scan, 0, chain);
    PlanNode* leaf = fragment.get();
    while (leaf->type != OpType::kScan) leaf = leaf->left.get();
    leaf->key_lo = 0.0;
    leaf->key_hi = 0.0;
    return fragment;
  }
  std::unique_ptr<PlanNode> merged = MakeFragment(scan, kept[0], chain);
  for (std::size_t i = 1; i < kept.size(); ++i) {
    merged = MakeUnion(std::move(merged), MakeFragment(scan, kept[i], chain),
                       SiteAnnotation::kInnerRel);
  }
  return merged;
}

std::unique_ptr<PlanNode> Rewrite(const PlanNode& node,
                                  const Catalog& catalog) {
  // Gather the maximal pushable chain below `node` (inclusive) and see
  // whether it terminates in a logical sharded scan.
  if (IsPushableChainOp(node) || IsLogicalShardedScan(node, catalog)) {
    std::vector<const PlanNode*> chain;
    const PlanNode* cursor = &node;
    while (IsPushableChainOp(*cursor)) {
      chain.push_back(cursor);
      cursor = cursor->left.get();
    }
    if (IsLogicalShardedScan(*cursor, catalog)) {
      return ExpandScan(*cursor, chain, catalog);
    }
  }
  std::unique_ptr<PlanNode> copy = node.Clone();
  if (node.left) copy->left = Rewrite(*node.left, catalog);
  if (node.right) copy->right = Rewrite(*node.right, catalog);
  return copy;
}

}  // namespace

bool NeedsShardExpansion(const Plan& plan, const Catalog& catalog) {
  bool needs = false;
  plan.ForEach([&](const PlanNode& node) {
    if (IsLogicalShardedScan(node, catalog)) needs = true;
  });
  return needs;
}

Plan ExpandShards(const Plan& plan, const Catalog& catalog) {
  if (plan.empty()) return Plan();
  Plan expanded(Rewrite(*plan.root(), catalog));
  ClearBinding(expanded);
  return expanded;
}

}  // namespace dimsum

#ifndef DIMSUM_PLAN_SHARD_H_
#define DIMSUM_PLAN_SHARD_H_

#include "catalog/catalog.h"
#include "plan/plan.h"

namespace dimsum {

/// True when `plan` still contains a logical (shard < 0) primary-copy
/// scan of a sharded relation — i.e. ExpandShards would change it.
/// Client-annotated scans of sharded relations are not expanded: they
/// run at the client and fault pages in shard by shard from the owners.
bool NeedsShardExpansion(const Plan& plan, const Catalog& catalog);

/// Rewrites every logical primary-copy scan of a sharded relation into a
/// left-deep chain of unions over per-shard scan fragments (shard = k,
/// same replica index, the scan's key range carried through), and pushes
/// any producer-annotated select/project chain sitting directly above the
/// scan into each fragment so per-partition filters run where the pages
/// live. The unions are annotated kInnerRel: each binds to the site of
/// its left (first-fragment) input, so the merge is pure dataflow and
/// never creates an annotation cycle with a consumer parent.
///
/// Partition pruning: under the range scheme a shard is kept only when
/// its tuple extent intersects the scan's key restriction; hash shards
/// never prune (every shard may hold matches). When every shard is
/// pruned the scan collapses to a single empty fragment on shard 0
/// (key_lo == key_hi), which reads nothing and emits nothing.
///
/// This runs strictly AFTER optimization: plan legality (MatchesQuery)
/// requires each relation scanned exactly once, so the optimizer only
/// ever sees logical plans, and expansion is a pure post-pass. Returns
/// an unbound plan (callers re-run BindSites); a plan with no sharded
/// logical scans comes back as an unbound clone, byte-identical in
/// structure.
Plan ExpandShards(const Plan& plan, const Catalog& catalog);

}  // namespace dimsum

#endif  // DIMSUM_PLAN_SHARD_H_

#include "plan/transforms.h"

#include <vector>

#include "common/check.h"
#include "plan/validate.h"

namespace dimsum {
namespace {

enum class MoveKind {
  kAssocLL,     // (A B) C -> A (B C)     [move 1]
  kAssocLR,     // (A B) C -> B (A C)     [move 2]
  kAssocRL,     // A (B C) -> (A B) C     [move 3]
  kAssocRR,     // A (B C) -> (A C) B     [move 4]
  kCommute,     // A B -> B A             [extra, see TransformConfig]
  kAnnotation,  // change a node's site annotation [moves 5-7]
  kReplica,     // re-point a scan at another copy [counted as move 7]
};

struct Candidate {
  int node_index;  // pre-order index
  MoveKind kind;
  SiteAnnotation annotation;  // for kAnnotation
  int32_t replica = 0;        // for kReplica
};

/// Pre-order enumeration of owning slots (skips the display root, which is
/// never transformed).
void CollectSlots(std::unique_ptr<PlanNode>& slot,
                  std::vector<std::unique_ptr<PlanNode>*>* slots) {
  if (slot == nullptr) return;
  slots->push_back(&slot);
  CollectSlots(slot->left, slots);
  CollectSlots(slot->right, slots);
}

std::vector<std::unique_ptr<PlanNode>*> Slots(Plan& plan) {
  std::vector<std::unique_ptr<PlanNode>*> slots;
  DIMSUM_CHECK(!plan.empty());
  // Index 0 is the display's child (the real plan root).
  CollectSlots(plan.root()->left, &slots);
  return slots;
}

std::vector<Candidate> EnumerateCandidates(Plan& plan,
                                           const TransformConfig& config) {
  std::vector<Candidate> candidates;
  auto slots = Slots(plan);
  for (int i = 0; i < static_cast<int>(slots.size()); ++i) {
    PlanNode& node = **slots[i];
    if (node.type == OpType::kJoin && config.join_order_moves) {
      if (node.left->type == OpType::kJoin) {
        candidates.push_back({i, MoveKind::kAssocLL, {}});
        candidates.push_back({i, MoveKind::kAssocLR, {}});
      }
      if (node.right->type == OpType::kJoin) {
        candidates.push_back({i, MoveKind::kAssocRL, {}});
        candidates.push_back({i, MoveKind::kAssocRR, {}});
      }
      if (config.allow_commute) {
        candidates.push_back({i, MoveKind::kCommute, {}});
      }
    }
    for (SiteAnnotation annotation : config.space.AllowedFor(node.type)) {
      if (annotation != node.annotation) {
        candidates.push_back({i, MoveKind::kAnnotation, annotation});
      }
    }
    if (node.type == OpType::kScan && config.catalog != nullptr) {
      // Copies a scan can be re-pointed at: whole-relation replicas, or
      // the per-shard replication degree of a sharded relation (the
      // shard-placement move; same move-7 gating).
      const int copies = config.catalog->ScanCopies(node.relation);
      for (int32_t r = 0; r < copies; ++r) {
        if (r != node.replica) {
          candidates.push_back({i, MoveKind::kReplica, {}, r});
        }
      }
    }
  }
  return candidates;
}

void ApplyMove(Plan& plan, const Candidate& candidate) {
  auto slots = Slots(plan);
  DIMSUM_CHECK_LT(candidate.node_index, static_cast<int>(slots.size()));
  std::unique_ptr<PlanNode>& slot = *slots[candidate.node_index];
  PlanNode& node = *slot;
  switch (candidate.kind) {
    case MoveKind::kAnnotation:
      node.annotation = candidate.annotation;
      return;
    case MoveKind::kReplica:
      node.replica = candidate.replica;
      return;
    case MoveKind::kCommute:
      std::swap(node.left, node.right);
      return;
    case MoveKind::kAssocLL: {
      // (A JOIN_Y B) JOIN_X C -> A JOIN_X (B JOIN_Y C)
      auto y = std::move(node.left);
      auto c = std::move(node.right);
      auto a = std::move(y->left);
      auto b = std::move(y->right);
      y->left = std::move(b);
      y->right = std::move(c);
      node.left = std::move(a);
      node.right = std::move(y);
      return;
    }
    case MoveKind::kAssocLR: {
      // (A JOIN_Y B) JOIN_X C -> B JOIN_X (A JOIN_Y C)
      auto y = std::move(node.left);
      auto c = std::move(node.right);
      auto a = std::move(y->left);
      auto b = std::move(y->right);
      y->left = std::move(a);
      y->right = std::move(c);
      node.left = std::move(b);
      node.right = std::move(y);
      return;
    }
    case MoveKind::kAssocRL: {
      // A JOIN_X (B JOIN_Y C) -> (A JOIN_Y B) JOIN_X C
      auto a = std::move(node.left);
      auto y = std::move(node.right);
      auto b = std::move(y->left);
      auto c = std::move(y->right);
      y->left = std::move(a);
      y->right = std::move(b);
      node.left = std::move(y);
      node.right = std::move(c);
      return;
    }
    case MoveKind::kAssocRR: {
      // A JOIN_X (B JOIN_Y C) -> (A JOIN_Y C) JOIN_X B
      auto a = std::move(node.left);
      auto y = std::move(node.right);
      auto b = std::move(y->left);
      auto c = std::move(y->right);
      y->left = std::move(a);
      y->right = std::move(c);
      node.left = std::move(y);
      node.right = std::move(b);
      return;
    }
  }
  DIMSUM_UNREACHABLE();
}

bool PlanIsLegal(const Plan& plan, const QueryGraph& query,
                 const TransformConfig& config) {
  if (!IsStructurallyValid(plan)) return false;
  if (!IsWellFormed(plan)) return false;
  if (!InPolicySpace(plan, config.space)) return false;
  if (!MatchesQuery(plan, query, config.allow_cartesian)) return false;
  if (config.require_linear && !IsLinear(plan)) return false;
  return true;
}

/// Repairs two-node annotation cycles by re-drawing the child's annotation
/// to one that does not point at the parent.
void RepairWellFormedness(Plan& plan, const PolicySpace& space, Rng& rng) {
  for (int guard = 0; guard < plan.Size() + 8; ++guard) {
    if (IsWellFormed(plan)) return;
    // Find one violating edge and fix the child.
    bool fixed = false;
    const std::function<void(PlanNode&)> visit = [&](PlanNode& parent) {
      if (fixed) return;
      for (int side = 0; side < 2; ++side) {
        PlanNode* child =
            (side == 0) ? parent.left.get() : parent.right.get();
        if (child == nullptr) continue;
        const bool parent_points =
            (IsBinaryOp(parent.type) &&
             ((parent.annotation == SiteAnnotation::kInnerRel && side == 0) ||
              (parent.annotation == SiteAnnotation::kOuterRel &&
               side == 1))) ||
            (IsUnaryOp(parent.type) &&
             parent.annotation == SiteAnnotation::kProducer);
        const bool child_points =
            (IsBinaryOp(child->type) || IsUnaryOp(child->type)) &&
            child->annotation == SiteAnnotation::kConsumer;
        if (parent_points && child_points) {
          std::vector<SiteAnnotation> options;
          for (SiteAnnotation a : space.AllowedFor(child->type)) {
            if (a != SiteAnnotation::kConsumer) options.push_back(a);
          }
          DIMSUM_CHECK(!options.empty())
              << "cannot repair annotation cycle within policy space";
          child->annotation = options[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(options.size()) - 1))];
          fixed = true;
          return;
        }
      }
      if (parent.left) visit(*parent.left);
      if (parent.right) visit(*parent.right);
    };
    visit(*plan.root());
    DIMSUM_CHECK(fixed);
  }
  DIMSUM_CHECK(IsWellFormed(plan));
}

/// Draws a serving replica for a scan. Relations with a single copy never
/// consume an RNG draw, so unreplicated catalogs leave every seed stream
/// exactly as it was before replica choice existed.
int32_t PickReplica(const Catalog* catalog, RelationId rel, Rng& rng) {
  if (catalog == nullptr) return 0;
  const int copies = catalog->ScanCopies(rel);
  if (copies <= 1) return 0;
  return static_cast<int32_t>(rng.UniformInt(0, copies - 1));
}

SiteAnnotation PickAnnotation(const PolicySpace& space, OpType type,
                              Rng& rng) {
  const auto& allowed = space.AllowedFor(type);
  DIMSUM_CHECK(!allowed.empty());
  return allowed[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(allowed.size()) - 1))];
}

/// Maps an internal candidate to the paper-facing move numbering; `node`
/// is the candidate's target (needed to split moves 5-7 by operator type).
MoveType CandidateMoveType(const Candidate& candidate, const PlanNode& node) {
  switch (candidate.kind) {
    case MoveKind::kAssocLL: return MoveType::kAssocLL;
    case MoveKind::kAssocLR: return MoveType::kAssocLR;
    case MoveKind::kAssocRL: return MoveType::kAssocRL;
    case MoveKind::kAssocRR: return MoveType::kAssocRR;
    case MoveKind::kCommute: return MoveType::kCommute;
    case MoveKind::kAnnotation:
      if (node.type == OpType::kJoin) return MoveType::kJoinSite;
      if (node.type == OpType::kScan) return MoveType::kScanSite;
      return MoveType::kSelectSite;
    case MoveKind::kReplica:
      return MoveType::kScanSite;
  }
  DIMSUM_UNREACHABLE();
}

}  // namespace

const char* MoveTypeName(MoveType type) {
  switch (type) {
    case MoveType::kAssocLL: return "assoc_ll";
    case MoveType::kAssocLR: return "assoc_lr";
    case MoveType::kAssocRL: return "assoc_rl";
    case MoveType::kAssocRR: return "assoc_rr";
    case MoveType::kJoinSite: return "join_site";
    case MoveType::kSelectSite: return "select_site";
    case MoveType::kScanSite: return "scan_site";
    case MoveType::kCommute: return "commute";
  }
  DIMSUM_UNREACHABLE();
}

std::optional<Plan> TryRandomMove(const Plan& plan, const QueryGraph& query,
                                  const TransformConfig& config, Rng& rng,
                                  std::optional<MoveType>* chosen_type) {
  if (chosen_type != nullptr) chosen_type->reset();
  Plan working = plan.Clone();
  auto candidates = EnumerateCandidates(working, config);
  if (candidates.empty()) return std::nullopt;
  const Candidate& chosen = candidates[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
  if (chosen_type != nullptr) {
    *chosen_type =
        CandidateMoveType(chosen, **Slots(working)[chosen.node_index]);
  }
  ApplyMove(working, chosen);
  if (!PlanIsLegal(working, query, config)) return std::nullopt;
  return working;
}

Plan RandomPlan(const QueryGraph& query, const TransformConfig& config,
                Rng& rng) {
  DIMSUM_CHECK_GT(query.num_relations(), 0);
  // Build leaves (scan, optionally wrapped in a select).
  struct Component {
    std::unique_ptr<PlanNode> tree;
    std::vector<RelationId> relations;
  };
  std::vector<Component> forest;
  for (RelationId rel : query.relations) {
    auto leaf = MakeScan(rel, PickAnnotation(config.space, OpType::kScan, rng));
    leaf->replica = PickReplica(config.catalog, rel, rng);
    const double selectivity = query.ScanSelectivity(rel);
    std::unique_ptr<PlanNode> tree = std::move(leaf);
    if (selectivity < 1.0) {
      tree = MakeSelect(std::move(tree), selectivity,
                        PickAnnotation(config.space, OpType::kSelect, rng));
    }
    forest.push_back(Component{std::move(tree), {rel}});
  }
  // Randomly combine joinable components into one tree. Under the linear
  // constraint, grow a single tree by always merging the current largest
  // component with a single-relation component (otherwise disjoint
  // multi-relation components could strand the construction).
  while (forest.size() > 1) {
    // Enumerate joinable pairs.
    std::vector<std::pair<int, int>> pairs;
    int largest = 0;
    for (int i = 1; i < static_cast<int>(forest.size()); ++i) {
      if (forest[i].relations.size() > forest[largest].relations.size()) {
        largest = i;
      }
    }
    for (int i = 0; i < static_cast<int>(forest.size()); ++i) {
      for (int j = i + 1; j < static_cast<int>(forest.size()); ++j) {
        if (!config.allow_cartesian &&
            !query.Connects(forest[i].relations, forest[j].relations)) {
          continue;
        }
        if (config.require_linear) {
          const bool i_multi = forest[i].relations.size() > 1;
          const bool j_multi = forest[j].relations.size() > 1;
          if (i_multi && j_multi) continue;
          // Once a multi-relation tree exists, it must take part in every
          // merge so exactly one tree grows.
          if ((i_multi || j_multi) && i != largest && j != largest) continue;
          if (!i_multi && !j_multi &&
              forest[largest].relations.size() > 1) {
            continue;
          }
        }
        pairs.emplace_back(i, j);
      }
    }
    DIMSUM_CHECK(!pairs.empty()) << "query graph is disconnected";
    auto [i, j] = pairs[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pairs.size()) - 1))];
    // Random orientation.
    if (rng.Bernoulli(0.5)) std::swap(i, j);
    Component merged;
    merged.tree =
        MakeJoin(std::move(forest[i].tree), std::move(forest[j].tree),
                 PickAnnotation(config.space, OpType::kJoin, rng));
    merged.relations = forest[i].relations;
    merged.relations.insert(merged.relations.end(),
                            forest[j].relations.begin(),
                            forest[j].relations.end());
    // Remove the two inputs (erase larger index first) and add the merge.
    if (i < j) std::swap(i, j);
    forest.erase(forest.begin() + i);
    forest.erase(forest.begin() + j);
    forest.push_back(std::move(merged));
  }
  Plan plan(MakeDisplay(std::move(forest.front().tree)));
  RepairWellFormedness(plan, config.space, rng);
  DIMSUM_CHECK(PlanIsLegal(plan, query, config));
  return plan;
}

void RandomizeAnnotations(Plan& plan, const PolicySpace& space, Rng& rng) {
  plan.ForEachMutable([&](PlanNode& node) {
    if (node.type == OpType::kDisplay) return;
    node.annotation = PickAnnotation(space, node.type, rng);
  });
  RepairWellFormedness(plan, space, rng);
}

void RandomizeAnnotations(Plan& plan, const TransformConfig& config,
                          Rng& rng) {
  plan.ForEachMutable([&](PlanNode& node) {
    if (node.type == OpType::kDisplay) return;
    node.annotation = PickAnnotation(config.space, node.type, rng);
    if (node.type == OpType::kScan) {
      node.replica = PickReplica(config.catalog, node.relation, rng);
    }
  });
  RepairWellFormedness(plan, config.space, rng);
}

int CountMoveCandidates(const Plan& plan, const TransformConfig& config) {
  Plan working = plan.Clone();
  return static_cast<int>(EnumerateCandidates(working, config).size());
}

}  // namespace dimsum

#ifndef DIMSUM_PLAN_TRANSFORMS_H_
#define DIMSUM_PLAN_TRANSFORMS_H_

#include <optional>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "plan/plan.h"
#include "plan/policy.h"
#include "plan/query.h"

namespace dimsum {

/// Configuration of the plan-transformation space (Section 3.1.1). The
/// paper's moves are:
///   1. (A  B)  C -> A  (B  C)
///   2. (A  B)  C -> B  (A  C)
///   3. A  (B  C) -> (A  B)  C
///   4. A  (B  C) -> (A  C)  B
///   5. change a join's site annotation
///   6. change a select's site annotation
///   7. change a scan's site annotation
/// Restricting `space` to a policy's allowed annotations implements the
/// paper's per-policy enabling/disabling of moves 5-7 (Table 1).
struct TransformConfig {
  PolicySpace space = PolicySpace::For(ShippingPolicy::kHybridShipping);
  /// Enables moves 1-4. Disabled in the 2-step optimizer's run-time phase,
  /// which performs site selection only.
  bool join_order_moves = true;
  /// Extra join-commutativity move (swap build/probe inputs). The paper
  /// lists only moves 1-4; commutativity is standard in [IK90] and is kept
  /// behind this flag (see DESIGN.md).
  bool allow_commute = true;
  /// Permit Cartesian-product joins in the search space. The paper's
  /// optimizer never joins unconnected subtrees.
  bool allow_cartesian = false;
  /// Constrain the search to linear (left-deep) join trees; used to obtain
  /// the "deep" compile-time plans of Section 5.2.
  bool require_linear = false;
  /// When set, scans over relations with more than one copy gain replica-
  /// choice moves (re-pointing a scan at another copy; counted as move 7,
  /// the scan-site move) and random plans draw a random serving replica.
  /// Null -- or an unreplicated catalog -- leaves the move set and every
  /// RNG stream exactly as before (not owned; must outlive optimization).
  const Catalog* catalog = nullptr;
};

/// The paper's numbered transformation moves (1-7) plus the extra
/// commutativity move, for the optimizer's per-move-type counters. All
/// annotation changes on unary operators other than scan are counted as
/// move 6 (the paper's plans only carry select above its scans; wider
/// queries reuse the slot rather than invent unnumbered moves).
enum class MoveType {
  kAssocLL = 0,  // move 1: (A B) C -> A (B C)
  kAssocLR,      // move 2: (A B) C -> B (A C)
  kAssocRL,      // move 3: A (B C) -> (A B) C
  kAssocRR,      // move 4: A (B C) -> (A C) B
  kJoinSite,     // move 5: change a join's site annotation
  kSelectSite,   // move 6: change a unary operator's site annotation
  kScanSite,     // move 7: change a scan's site annotation
  kCommute,      // extra: A B -> B A (see TransformConfig::allow_commute)
};
inline constexpr int kNumMoveTypes = 8;

/// Short stable name ("assoc_ll", "join_site", ...) for metrics keys.
const char* MoveTypeName(MoveType type);

/// Applies one uniformly-chosen legal transformation. Returns the
/// transformed plan, or nullopt if the chosen candidate produced an invalid
/// plan (Cartesian product / ill-formed / shape violation) or no candidate
/// exists. The input plan is unchanged.
///
/// When `chosen_type` is non-null it is assigned the type of the candidate
/// that was drawn -- including when the move then proved illegal and
/// nullopt is returned -- and left empty when no candidate exists, so
/// callers can count *proposed* moves per type.
std::optional<Plan> TryRandomMove(const Plan& plan, const QueryGraph& query,
                                  const TransformConfig& config, Rng& rng,
                                  std::optional<MoveType>* chosen_type =
                                      nullptr);

/// Generates a random plan for `query` within the configured space:
/// a random (connected) join tree with random allowed annotations,
/// repaired to be well-formed.
Plan RandomPlan(const QueryGraph& query, const TransformConfig& config,
                Rng& rng);

/// Re-draws every operator's annotation uniformly from the allowed sets and
/// repairs two-node cycles. Join order is preserved.
void RandomizeAnnotations(Plan& plan, const PolicySpace& space, Rng& rng);

/// As above, and -- when `config.catalog` names a replicated catalog --
/// also re-draws each scan's serving replica. Replica draws happen only
/// for relations with more than one copy, so unreplicated runs consume
/// exactly the same RNG stream as the PolicySpace overload.
void RandomizeAnnotations(Plan& plan, const TransformConfig& config, Rng& rng);

/// Number of distinct single-move neighbors of `plan` (used by tests and
/// by the annealing schedule).
int CountMoveCandidates(const Plan& plan, const TransformConfig& config);

}  // namespace dimsum

#endif  // DIMSUM_PLAN_TRANSFORMS_H_

#ifndef DIMSUM_PLAN_TRANSFORMS_H_
#define DIMSUM_PLAN_TRANSFORMS_H_

#include <optional>

#include "common/rng.h"
#include "plan/plan.h"
#include "plan/policy.h"
#include "plan/query.h"

namespace dimsum {

/// Configuration of the plan-transformation space (Section 3.1.1). The
/// paper's moves are:
///   1. (A  B)  C -> A  (B  C)
///   2. (A  B)  C -> B  (A  C)
///   3. A  (B  C) -> (A  B)  C
///   4. A  (B  C) -> (A  C)  B
///   5. change a join's site annotation
///   6. change a select's site annotation
///   7. change a scan's site annotation
/// Restricting `space` to a policy's allowed annotations implements the
/// paper's per-policy enabling/disabling of moves 5-7 (Table 1).
struct TransformConfig {
  PolicySpace space = PolicySpace::For(ShippingPolicy::kHybridShipping);
  /// Enables moves 1-4. Disabled in the 2-step optimizer's run-time phase,
  /// which performs site selection only.
  bool join_order_moves = true;
  /// Extra join-commutativity move (swap build/probe inputs). The paper
  /// lists only moves 1-4; commutativity is standard in [IK90] and is kept
  /// behind this flag (see DESIGN.md).
  bool allow_commute = true;
  /// Permit Cartesian-product joins in the search space. The paper's
  /// optimizer never joins unconnected subtrees.
  bool allow_cartesian = false;
  /// Constrain the search to linear (left-deep) join trees; used to obtain
  /// the "deep" compile-time plans of Section 5.2.
  bool require_linear = false;
};

/// Applies one uniformly-chosen legal transformation. Returns the
/// transformed plan, or nullopt if the chosen candidate produced an invalid
/// plan (Cartesian product / ill-formed / shape violation) or no candidate
/// exists. The input plan is unchanged.
std::optional<Plan> TryRandomMove(const Plan& plan, const QueryGraph& query,
                                  const TransformConfig& config, Rng& rng);

/// Generates a random plan for `query` within the configured space:
/// a random (connected) join tree with random allowed annotations,
/// repaired to be well-formed.
Plan RandomPlan(const QueryGraph& query, const TransformConfig& config,
                Rng& rng);

/// Re-draws every operator's annotation uniformly from the allowed sets and
/// repairs two-node cycles. Join order is preserved.
void RandomizeAnnotations(Plan& plan, const PolicySpace& space, Rng& rng);

/// Number of distinct single-move neighbors of `plan` (used by tests and
/// by the annealing schedule).
int CountMoveCandidates(const Plan& plan, const TransformConfig& config);

}  // namespace dimsum

#endif  // DIMSUM_PLAN_TRANSFORMS_H_

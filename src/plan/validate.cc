#include "plan/validate.h"

#include <algorithm>

#include "common/check.h"

namespace dimsum {
namespace {

bool StructurallyValidNode(const PlanNode& node, bool is_root) {
  if (node.type == OpType::kDisplay) {
    if (!is_root) return false;
    if (node.annotation != SiteAnnotation::kClient) return false;
    if (node.left == nullptr || node.right != nullptr) return false;
  } else if (IsBinaryOp(node.type)) {
    if (node.left == nullptr || node.right == nullptr) return false;
    if (node.annotation != SiteAnnotation::kConsumer &&
        node.annotation != SiteAnnotation::kInnerRel &&
        node.annotation != SiteAnnotation::kOuterRel) {
      return false;
    }
  } else if (IsUnaryOp(node.type)) {
    if (node.left == nullptr || node.right != nullptr) return false;
    if (node.annotation != SiteAnnotation::kConsumer &&
        node.annotation != SiteAnnotation::kProducer) {
      return false;
    }
  } else {  // scan
    if (node.left != nullptr || node.right != nullptr) return false;
    if (node.relation == kInvalidRelation) return false;
    if (node.annotation != SiteAnnotation::kClient &&
        node.annotation != SiteAnnotation::kPrimaryCopy) {
      return false;
    }
  }
  bool valid = true;
  if (node.left) valid &= StructurallyValidNode(*node.left, false);
  if (node.right) valid &= StructurallyValidNode(*node.right, false);
  return valid;
}

/// True if the parent's annotation points at this particular child.
bool ParentPointsAtChild(const PlanNode& parent, bool child_is_left) {
  if (IsBinaryOp(parent.type)) {
    return (parent.annotation == SiteAnnotation::kInnerRel &&
            child_is_left) ||
           (parent.annotation == SiteAnnotation::kOuterRel && !child_is_left);
  }
  if (IsUnaryOp(parent.type)) {
    return parent.annotation == SiteAnnotation::kProducer;
  }
  return false;
}

/// True if the child's annotation points at its parent.
bool ChildPointsAtParent(const PlanNode& child) {
  return (IsBinaryOp(child.type) || IsUnaryOp(child.type)) &&
         child.annotation == SiteAnnotation::kConsumer;
}

bool WellFormedNode(const PlanNode& node) {
  for (int side = 0; side < 2; ++side) {
    const PlanNode* child = (side == 0) ? node.left.get() : node.right.get();
    if (child == nullptr) continue;
    if (ChildPointsAtParent(*child) && ParentPointsAtChild(node, side == 0)) {
      return false;  // two-node annotation cycle
    }
    if (!WellFormedNode(*child)) return false;
  }
  return true;
}

bool NoCartesianProducts(const PlanNode& node, const QueryGraph& query) {
  if (node.type == OpType::kJoin) {
    const auto left = Plan::RelationsBelow(*node.left);
    const auto right = Plan::RelationsBelow(*node.right);
    if (!query.Connects(left, right)) return false;
  }
  bool ok = true;
  if (node.left) ok &= NoCartesianProducts(*node.left, query);
  if (node.right) ok &= NoCartesianProducts(*node.right, query);
  return ok;
}

bool LinearNode(const PlanNode& node) {
  if (node.type == OpType::kJoin) {
    const auto has_join = [](const PlanNode& sub) {
      bool found = false;
      const std::function<void(const PlanNode&)> visit =
          [&](const PlanNode& n) {
            if (n.type == OpType::kJoin) found = true;
            if (n.left) visit(*n.left);
            if (n.right) visit(*n.right);
          };
      visit(sub);
      return found;
    };
    if (has_join(*node.left) && has_join(*node.right)) return false;
  }
  bool ok = true;
  if (node.left) ok &= LinearNode(*node.left);
  if (node.right) ok &= LinearNode(*node.right);
  return ok;
}

}  // namespace

bool IsStructurallyValid(const Plan& plan) {
  if (plan.empty()) return false;
  if (plan.root()->type != OpType::kDisplay) return false;
  return StructurallyValidNode(*plan.root(), true);
}

bool IsWellFormed(const Plan& plan) {
  if (plan.empty()) return false;
  return WellFormedNode(*plan.root());
}

bool InPolicySpace(const Plan& plan, const PolicySpace& space) {
  bool ok = true;
  plan.ForEach([&](const PlanNode& node) {
    if (!space.Allows(node.type, node.annotation)) ok = false;
  });
  return ok;
}

bool MatchesQuery(const Plan& plan, const QueryGraph& query,
                  bool allow_cartesian) {
  if (plan.empty()) return false;
  // The plan must scan each query relation exactly once.
  std::vector<RelationId> scanned = Plan::RelationsBelow(*plan.root());
  std::vector<RelationId> expected = query.relations;
  std::sort(scanned.begin(), scanned.end());
  std::sort(expected.begin(), expected.end());
  if (scanned != expected) return false;
  if (!allow_cartesian && !NoCartesianProducts(*plan.root(), query)) {
    return false;
  }
  return true;
}

bool IsLinear(const Plan& plan) {
  DIMSUM_CHECK(!plan.empty());
  return LinearNode(*plan.root());
}

}  // namespace dimsum

#ifndef DIMSUM_PLAN_VALIDATE_H_
#define DIMSUM_PLAN_VALIDATE_H_

#include "plan/plan.h"
#include "plan/policy.h"
#include "plan/query.h"

namespace dimsum {

/// Structural checks on plans.
///
/// A plan is *well-formed* (Section 2.2.3) when no two adjacent operators
/// point their site annotations at each other: a child annotated
/// `consumer` while its parent is annotated with the child's side
/// (`inner relation` / `outer relation` for joins, `producer` for selects)
/// forms a two-node cycle that cannot be bound to physical sites. Because
/// plans are trees, only two-node cycles can occur.

/// True if the plan is a structurally valid operator tree (display root at
/// the client, joins binary, selects/display unary, scans leaves).
bool IsStructurallyValid(const Plan& plan);

/// True if no annotation cycle exists (see above). Assumes structural
/// validity.
bool IsWellFormed(const Plan& plan);

/// True if every operator's annotation is allowed by `space` (Table 1).
bool InPolicySpace(const Plan& plan, const PolicySpace& space);

/// True if every join in the plan joins subtrees connected by a join
/// predicate of `query` (i.e., the plan contains no Cartesian products),
/// and the plan scans exactly the relations of `query` once each.
bool MatchesQuery(const Plan& plan, const QueryGraph& query,
                  bool allow_cartesian = false);

/// True if no join has joins in both subtrees (left-deep / linear shape).
bool IsLinear(const Plan& plan);

/// True if some join has joins in both subtrees.
inline bool IsBushy(const Plan& plan) { return !IsLinear(plan); }

}  // namespace dimsum

#endif  // DIMSUM_PLAN_VALIDATE_H_

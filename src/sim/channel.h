#ifndef DIMSUM_SIM_CHANNEL_H_
#define DIMSUM_SIM_CHANNEL_H_

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "common/check.h"
#include "sim/simulator.h"

namespace dimsum::sim {

/// Bounded producer/consumer channel. `Put` suspends while the buffer is
/// full; `Get` suspends while it is empty and returns std::nullopt once the
/// channel is closed and drained. A capacity-1 channel between a network
/// producer process and its consumer gives exactly the paper's
/// "producer stays one page ahead of its consumer" pipelining.
template <typename T>
class Channel {
 public:
  Channel(Simulator& sim, size_t capacity) : sim_(sim), capacity_(capacity) {
    DIMSUM_CHECK_GE(capacity, size_t{1});
  }
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  struct PutAwaiter {
    Channel& channel;
    T value;
    bool await_ready() {
      if (channel.buffer_.size() < channel.capacity_) {
        channel.PushAndWakeGetter(std::move(value));
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      channel.putters_.push_back(Putter{h, std::move(value)});
    }
    void await_resume() const noexcept {}
  };

  struct GetAwaiter {
    Channel& channel;
    std::optional<T> result;
    bool await_ready() {
      if (!channel.buffer_.empty()) {
        result = std::move(channel.buffer_.front());
        channel.buffer_.pop_front();
        channel.AdmitPutter();
        return true;
      }
      if (channel.closed_) {
        result = std::nullopt;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      channel.getters_.push_back(Getter{h, this});
    }
    std::optional<T> await_resume() { return std::move(result); }
  };

  /// Inserts a value, suspending while the channel is full.
  PutAwaiter Put(T value) {
    DIMSUM_CHECK(!closed_);
    return PutAwaiter{*this, std::move(value)};
  }

  /// Removes a value, suspending while the channel is empty; nullopt on a
  /// closed, drained channel.
  GetAwaiter Get() { return GetAwaiter{*this, std::nullopt}; }

  /// Marks the end of the stream and wakes blocked getters.
  void Close() {
    if (closed_) return;
    closed_ = true;
    // No putters can be waiting when Close is called by the producer.
    while (!getters_.empty()) {
      Getter getter = getters_.front();
      getters_.pop_front();
      getter.awaiter->result = std::nullopt;
      sim_.Resume(0.0, getter.handle);
    }
  }

  bool closed() const { return closed_; }
  size_t size() const { return buffer_.size(); }

 private:
  struct Putter {
    std::coroutine_handle<> handle;
    T value;
  };
  struct Getter {
    std::coroutine_handle<> handle;
    GetAwaiter* awaiter;
  };

  /// Adds a value to the buffer; if a getter is blocked, hands it over and
  /// schedules the getter's resumption.
  void PushAndWakeGetter(T value) {
    if (!getters_.empty()) {
      DIMSUM_CHECK(buffer_.empty());
      Getter getter = getters_.front();
      getters_.pop_front();
      getter.awaiter->result = std::move(value);
      sim_.Resume(0.0, getter.handle);
      return;
    }
    buffer_.push_back(std::move(value));
  }

  /// After a slot frees up, admits one blocked putter.
  void AdmitPutter() {
    if (putters_.empty()) return;
    Putter putter = std::move(putters_.front());
    putters_.pop_front();
    PushAndWakeGetter(std::move(putter.value));
    sim_.Resume(0.0, putter.handle);
  }

  Simulator& sim_;
  size_t capacity_;
  bool closed_ = false;
  std::deque<T> buffer_;
  std::deque<Putter> putters_;
  std::deque<Getter> getters_;
};

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_CHANNEL_H_

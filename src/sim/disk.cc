#include "sim/disk.h"

#include <cmath>

#include "common/check.h"
#include "sim/trace.h"

namespace dimsum::sim {

Disk::Disk(Simulator& sim, std::string name, const DiskParams& params)
    : sim_(sim), name_(std::move(name)), params_(params) {
  DIMSUM_CHECK_GT(params_.pages_per_track, 0);
  DIMSUM_CHECK_GE(params_.pages_per_cylinder, params_.pages_per_track);
  DIMSUM_CHECK_GT(params_.num_cylinders, 0);
  DIMSUM_CHECK_GT(params_.rotation_ms, 0.0);
}

void Disk::ResetStats() {
  reads_ = 0;
  writes_ = 0;
  cache_hits_ = 0;
  busy_ms_ = 0.0;
  wait_ms_ = 0.0;
  seek_ms_ = 0.0;
  rotate_ms_ = 0.0;
  transfer_ms_ = 0.0;
  overhead_ms_ = 0.0;
  readahead_pages_ = 0;
  readahead_aborts_ = 0;
  max_queue_depth_ = 0;
}

void Disk::SubmitRead(int64_t block, std::coroutine_handle<> handle,
                      ReqStats* stats) {
  DIMSUM_CHECK_GE(block, 0);
  DIMSUM_CHECK_LT(block, params_.total_pages());
  ++reads_;
  auto it = cache_.find(block);
  if (it != cache_.end()) {
    // Controller cache hit: served without the arm.
    ++cache_hits_;
    const double wait = std::max(0.0, it->second - sim_.now());
    if (stats != nullptr) {
      stats->wait_ms += wait;
      stats->service_ms +=
          params_.transfer_ms() + params_.controller_overhead_ms;
    }
    if (TraceSink* trace = sim_.trace()) {
      trace->Instant(trace_pid_, trace_tid_, "cache-hit", "disk", sim_.now(),
                     {{"block", static_cast<double>(block)},
                      {"wait_ms", wait}});
    }
    ExtendReadAhead(block, std::max(it->second, sim_.now()));
    sim_.Resume(
        wait + params_.transfer_ms() + params_.controller_overhead_ms,
        handle);
    return;
  }
  EnqueueArm(ArmRequest{block, /*is_write=*/false, handle, sim_.now(), stats});
}

void Disk::SubmitWrite(int64_t block) {
  DIMSUM_CHECK_GE(block, 0);
  DIMSUM_CHECK_LT(block, params_.total_pages());
  ++writes_;
  ++pending_writes_;
  // A write makes any cached copy of this page stale.
  if (cache_.erase(block) > 0) {
    for (auto it = cache_fifo_.begin(); it != cache_fifo_.end(); ++it) {
      if (*it == block) {
        cache_fifo_.erase(it);
        break;
      }
    }
  }
  EnqueueArm(ArmRequest{block, /*is_write=*/true, {}, sim_.now()});
}

void Disk::EnqueueArm(ArmRequest request) {
  arm_queue_.emplace(Cylinder(request.block), std::move(request));
  const int depth = static_cast<int>(arm_queue_.size());
  if (depth > max_queue_depth_) max_queue_depth_ = depth;
  if (TraceSink* trace = sim_.trace()) {
    trace->CounterSample(trace_pid_, name_ + " queue", sim_.now(),
                         "queue_depth", static_cast<double>(depth));
  }
  DispatchArm();
}

void Disk::DispatchArm() {
  if (arm_busy_ || arm_queue_.empty()) return;
  // Elevator (SCAN): continue in the sweep direction; reverse at the end.
  auto it = arm_queue_.end();
  if (sweep_up_) {
    it = arm_queue_.lower_bound(head_cylinder_);
    if (it == arm_queue_.end()) {
      sweep_up_ = false;
      it = std::prev(arm_queue_.end());
    }
  } else {
    it = arm_queue_.upper_bound(head_cylinder_);
    if (it == arm_queue_.begin()) {
      sweep_up_ = true;
      it = arm_queue_.begin();
    } else {
      it = std::prev(it);
    }
  }
  ArmRequest request = std::move(it->second);
  arm_queue_.erase(it);
  arm_busy_ = true;

  // A non-contiguous arm operation aborts read-ahead in progress: pages the
  // controller has not finished prefetching never arrive.
  if (request.block != stream_next_) AbortPendingReadAhead();

  // The arm is single-service: the in-flight operation lives in members
  // so the completion callback captures only `this` and stays inline in
  // its event (see sim/event.h).
  arm_current_ = std::move(request);
  wait_ms_ += sim_.now() - arm_current_.enqueue_time;
  arm_service_ = ArmServiceTime(arm_current_.block);
  const double total = arm_service_.total();
  if (arm_current_.stats != nullptr) {
    arm_current_.stats->wait_ms += sim_.now() - arm_current_.enqueue_time;
    arm_current_.stats->service_ms += total;
  }
  busy_ms_ += total;
  seek_ms_ += arm_service_.seek;
  rotate_ms_ += arm_service_.rotate;
  transfer_ms_ += arm_service_.transfer;
  overhead_ms_ += arm_service_.overhead;
  if (service_hist_ != nullptr) service_hist_->Add(total);
  head_cylinder_ = Cylinder(arm_current_.block);
  arm_start_ = sim_.now();
  sim_.Call(total, [this] {
    arm_busy_ = false;
    if (TraceSink* trace = sim_.trace()) {
      trace->Complete(trace_pid_, trace_tid_,
                      arm_current_.is_write ? "write" : "read", "disk",
                      arm_start_, sim_.now(),
                      {{"block", static_cast<double>(arm_current_.block)},
                       {"queue_wait_ms", arm_start_ - arm_current_.enqueue_time},
                       {"seek_ms", arm_service_.seek},
                       {"rotate_ms", arm_service_.rotate},
                       {"transfer_ms", arm_service_.transfer}});
      trace->CounterSample(trace_pid_, name_ + " queue", sim_.now(),
                           "queue_depth",
                           static_cast<double>(arm_queue_.size()));
    }
    // Copy out: CompleteArm can re-enter DispatchArm (write-waiter
    // admission), which repopulates arm_current_.
    const ArmRequest finished = arm_current_;
    CompleteArm(finished);
    DispatchArm();
  });
}

Disk::ArmService Disk::ArmServiceTime(int64_t block) const {
  ArmService service;
  const int cylinder = Cylinder(block);
  const int distance = std::abs(cylinder - head_cylinder_);
  if (distance > 0) {
    service.seek =
        params_.settle_ms +
        params_.seek_factor_ms * std::sqrt(static_cast<double>(distance));
  }
  // Rotational latency from the platter's angular position when the head
  // arrives, to the start angle of the target page on its track.
  const double arrive = sim_.now() + service.seek;
  const double angle_now =
      std::fmod(arrive, params_.rotation_ms) / params_.rotation_ms;
  const double target =
      static_cast<double>(block % params_.pages_per_track) /
      static_cast<double>(params_.pages_per_track);
  double rotation_frac = target - angle_now;
  if (rotation_frac < 0.0) rotation_frac += 1.0;
  service.rotate = rotation_frac * params_.rotation_ms;
  service.transfer = params_.transfer_ms();
  service.overhead = params_.controller_overhead_ms;
  return service;
}

void Disk::CompleteArm(const ArmRequest& request) {
  if (request.is_write) {
    DIMSUM_CHECK_GT(pending_writes_, 0);
    --pending_writes_;
    // Admit one blocked writer, if any.
    if (!write_waiters_.empty()) {
      WriteWaiter waiter = write_waiters_.front();
      write_waiters_.pop_front();
      SubmitWrite(waiter.block);
      sim_.Resume(0.0, waiter.handle);
    }
    if (pending_writes_ == 0) {
      for (auto handle : flush_waiters_) sim_.Resume(0.0, handle);
      flush_waiters_.clear();
    }
    return;
  }
  // Read miss completed: start a fresh read-ahead stream behind it.
  CacheInsert(request.block, sim_.now());
  stream_next_ = request.block + 1;
  stream_time_ = sim_.now() + params_.transfer_ms();
  ExtendReadAhead(request.block, sim_.now());
  sim_.Resume(0.0, request.handle);
}

void Disk::ExtendReadAhead(int64_t block, double from_time) {
  if (stream_next_ < 0 || params_.readahead_pages <= 0) return;
  // Only extend when `block` belongs to the active stream's recent window.
  if (stream_next_ <= block || stream_next_ - block > params_.readahead_pages + 1) {
    return;
  }
  if (stream_time_ < from_time) stream_time_ = from_time;
  const int64_t limit =
      std::min(block + params_.readahead_pages, params_.total_pages() - 1);
  const int64_t first = stream_next_;
  while (stream_next_ <= limit) {
    CacheInsert(stream_next_, stream_time_);
    ++stream_next_;
    stream_time_ += params_.transfer_ms();
  }
  const int64_t added = stream_next_ - first;
  if (added > 0) {
    readahead_pages_ += static_cast<uint64_t>(added);
    if (TraceSink* trace = sim_.trace()) {
      trace->Instant(trace_pid_, trace_tid_, "readahead", "disk", sim_.now(),
                     {{"pages", static_cast<double>(added)},
                      {"next_block", static_cast<double>(stream_next_)}});
    }
  }
}

void Disk::AbortPendingReadAhead() {
  if (stream_next_ >= 0) ++readahead_aborts_;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second > sim_.now()) {
      const int64_t block = it->first;
      it = cache_.erase(it);
      for (auto fifo = cache_fifo_.begin(); fifo != cache_fifo_.end(); ++fifo) {
        if (*fifo == block) {
          cache_fifo_.erase(fifo);
          break;
        }
      }
    } else {
      ++it;
    }
  }
  stream_next_ = -1;
}

void Disk::CacheInsert(int64_t block, double available_at) {
  auto [it, inserted] = cache_.emplace(block, available_at);
  if (!inserted) {
    it->second = std::min(it->second, available_at);
    return;
  }
  cache_fifo_.push_back(block);
  while (static_cast<int>(cache_fifo_.size()) > params_.cache_pages) {
    cache_.erase(cache_fifo_.front());
    cache_fifo_.pop_front();
  }
}

}  // namespace dimsum::sim

#ifndef DIMSUM_SIM_DISK_H_
#define DIMSUM_SIM_DISK_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "sim/simulator.h"
#include "sim/span.h"

namespace dimsum::sim {

/// Disk geometry and timing parameters. The defaults are calibrated (see
/// tests/sim/disk_test.cc and bench/disk_calibration.cc) so that, as in the
/// paper's Fujitsu M2266 configuration [PCV94], a page read costs roughly
/// 3.5 ms sequential and 11.8 ms random.
struct DiskParams {
  /// Pages on one track; the transfer time of a page is
  /// rotation_ms / pages_per_track.
  int pages_per_track = 4;
  /// Pages per cylinder (pages_per_track x tracks per cylinder).
  int pages_per_cylinder = 60;
  int num_cylinders = 5000;
  /// One full platter rotation, ms (~5000 rpm).
  double rotation_ms = 12.0;
  /// Head settle time charged on any seek, ms.
  double settle_ms = 1.0;
  /// Seek time is settle_ms + seek_factor_ms * sqrt(cylinder distance).
  double seek_factor_ms = 0.0345;
  /// Fixed controller/command overhead per request, ms.
  double controller_overhead_ms = 0.5;
  /// Number of pages the controller reads ahead of a sequential stream.
  int readahead_pages = 8;
  /// Controller cache capacity in pages.
  int cache_pages = 64;
  /// Host-side write-behind quota: Write() suspends once this many writes
  /// are outstanding.
  int max_pending_writes = 16;

  int64_t total_pages() const {
    return static_cast<int64_t>(num_cylinders) * pages_per_cylinder;
  }
  double transfer_ms() const { return rotation_ms / pages_per_track; }
};

/// Detailed single-arm disk. Models elevator (SCAN) scheduling, seek as a
/// settle + sqrt(distance) curve, rotational latency derived from the
/// platter's angular position, a controller cache with streaming
/// read-ahead, and host-side write-behind with a flush barrier.
///
/// Reads that hit the controller cache are served without moving the arm
/// but still pay the page transfer serially (so a synchronous sequential
/// reader sees the calibrated per-request cost, ~3.5 ms/page, even when a
/// think-time gap separates its requests). An intervening non-contiguous
/// arm operation aborts not-yet-complete read-ahead (this is what destroys
/// a scan's sequential pattern when join temp I/O interleaves with it --
/// the paper's interference effect).
class Disk {
 public:
  Disk(Simulator& sim, std::string name, const DiskParams& params);
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  const std::string& name() const { return name_; }
  const DiskParams& params() const { return params_; }

  /// Reads one page; resumes the caller when the data is available.
  /// `stats`, when non-null, receives the request's queueing/service split
  /// (cache hits count the residual prefetch wait as queueing and the
  /// transfer + controller overhead as service); written with plain memory
  /// stores at the existing submit/dispatch points, never perturbing event
  /// timing.
  auto Read(int64_t block, ReqStats* stats = nullptr) {
    struct Awaiter {
      Disk& disk;
      int64_t block;
      ReqStats* stats;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        disk.SubmitRead(block, h, stats);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, block, stats};
  }

  /// Write-behind page write: completes as soon as the request is accepted
  /// (suspends only when the pending-write quota is exhausted). Use Flush()
  /// to wait for durability.
  auto Write(int64_t block) {
    struct Awaiter {
      Disk& disk;
      int64_t block;
      bool await_ready() {
        if (disk.pending_writes_ < disk.params_.max_pending_writes) {
          disk.SubmitWrite(block);
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        disk.write_waiters_.push_back({h, block});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, block};
  }

  /// Waits until all accepted writes have reached the platter.
  auto Flush() {
    struct Awaiter {
      Disk& disk;
      bool await_ready() const noexcept { return disk.pending_writes_ == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        disk.flush_waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  // --- statistics -------------------------------------------------------
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t cache_hits() const { return cache_hits_; }
  /// Time the arm was busy (excludes cache-hit service).
  double busy_ms() const { return busy_ms_; }
  /// Total time requests spent queued for the arm before their operation
  /// started (excludes service and cache-hit waits).
  double wait_ms() const { return wait_ms_; }
  /// Requests currently queued for the arm (excludes the one in service).
  std::size_t queue_depth() const { return arm_queue_.size(); }
  /// Whether the arm is executing an operation.
  bool in_service() const { return arm_busy_; }
  /// Split of the arm's busy time into its mechanical components
  /// (seek + settle, rotational latency, page transfer, controller
  /// overhead); the four sum to busy_ms().
  double seek_ms() const { return seek_ms_; }
  double rotate_ms() const { return rotate_ms_; }
  double transfer_ms() const { return transfer_ms_; }
  double overhead_ms() const { return overhead_ms_; }
  /// Pages the controller's streaming read-ahead prefetched into its cache.
  uint64_t readahead_pages() const { return readahead_pages_; }
  /// Read-ahead streams aborted by an intervening non-contiguous arm op.
  uint64_t readahead_aborts() const { return readahead_aborts_; }
  /// Deepest the elevator queue ever got.
  int max_queue_depth() const { return max_queue_depth_; }
  double Utilization(double horizon_ms) const {
    return horizon_ms > 0.0 ? busy_ms_ / horizon_ms : 0.0;
  }
  void ResetStats();

  // --- observability ----------------------------------------------------
  /// Routes each arm operation's total service time into `histogram` (not
  /// owned; null disables).
  void set_service_histogram(Histogram* histogram) {
    service_hist_ = histogram;
  }
  /// Assigns this disk's trace track; events are recorded only while the
  /// simulator has a TraceSink attached.
  void SetTraceTrack(int pid, int tid) {
    trace_pid_ = pid;
    trace_tid_ = tid;
  }

 private:
  struct ArmRequest {
    int64_t block;
    bool is_write;
    std::coroutine_handle<> handle;  // null for writes
    double enqueue_time;
    ReqStats* stats = nullptr;  // optional caller-owned split out-param
  };
  struct WriteWaiter {
    std::coroutine_handle<> handle;
    int64_t block;
  };

  /// Mechanical breakdown of one arm operation.
  struct ArmService {
    double seek = 0.0;      // settle + sqrt-curve seek
    double rotate = 0.0;    // rotational latency
    double transfer = 0.0;  // page transfer
    double overhead = 0.0;  // controller/command overhead
    double total() const { return seek + rotate + transfer + overhead; }
  };

  void SubmitRead(int64_t block, std::coroutine_handle<> handle,
                  ReqStats* stats);
  void SubmitWrite(int64_t block);
  void EnqueueArm(ArmRequest request);
  void DispatchArm();
  void CompleteArm(const ArmRequest& request);
  ArmService ArmServiceTime(int64_t block) const;
  void ExtendReadAhead(int64_t block, double from_time);
  void AbortPendingReadAhead();
  void CacheInsert(int64_t block, double available_at);

  int Cylinder(int64_t block) const {
    return static_cast<int>(block / params_.pages_per_cylinder);
  }

  Simulator& sim_;
  std::string name_;
  DiskParams params_;

  // Arm/elevator state.
  bool arm_busy_ = false;
  int head_cylinder_ = 0;
  bool sweep_up_ = true;
  std::multimap<int, ArmRequest> arm_queue_;  // keyed by cylinder
  /// The operation the arm is executing, plus its mechanical breakdown
  /// and start time; valid from DispatchArm until the completion callback
  /// finishes. Kept in members so the completion lambda captures only
  /// `this` (one pointer) and schedules without out-of-line callback
  /// state (see sim/event.h).
  ArmRequest arm_current_{};
  ArmService arm_service_{};
  double arm_start_ = 0.0;

  // Controller cache: block -> time the page is (or becomes) available.
  std::map<int64_t, double> cache_;
  std::deque<int64_t> cache_fifo_;
  int64_t stream_next_ = -1;   // next block the read-ahead stream will load
  double stream_time_ = 0.0;   // when stream_next_ becomes available

  // Write-behind bookkeeping.
  int pending_writes_ = 0;
  std::deque<WriteWaiter> write_waiters_;
  std::vector<std::coroutine_handle<>> flush_waiters_;

  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t cache_hits_ = 0;
  double busy_ms_ = 0.0;
  double wait_ms_ = 0.0;
  double seek_ms_ = 0.0;
  double rotate_ms_ = 0.0;
  double transfer_ms_ = 0.0;
  double overhead_ms_ = 0.0;
  uint64_t readahead_pages_ = 0;
  uint64_t readahead_aborts_ = 0;
  int max_queue_depth_ = 0;

  Histogram* service_hist_ = nullptr;
  int trace_pid_ = 0;
  int trace_tid_ = 0;
};

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_DISK_H_

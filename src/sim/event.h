#ifndef DIMSUM_SIM_EVENT_H_
#define DIMSUM_SIM_EVENT_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/frame_pool.h"

namespace dimsum::sim {

/// One scheduled kernel event: a coroutine resumption or a callback. The
/// (time, seq) pair is a strict total order -- seq is unique per
/// simulator -- so every queue implementation pops in exactly the same
/// deterministic order.
///
/// The legacy kernel stored a heap-allocated std::function per callback
/// and paid a binary-heap sift over the resulting 56-byte entries. Here
/// an event is one cache line and trivially copyable: queue maintenance
/// (bucket inserts, heap sifts) lowers to memmove, and callbacks live in
/// a small inline buffer. Trivially copyable callables up to
/// kInlineBytes (the kernel's own completion lambdas capture just `this`
/// or a handle) are stored in the event itself; larger or non-trivial
/// callables go to one FramePool freelist block -- still never a global
/// allocation on the hot path.
///
/// Because events are trivially copyable they carry no destructor; the
/// owning queue calls DestroyPending() on events discarded unexecuted
/// (simulator teardown with events still scheduled). Dispatch() releases
/// any out-of-line state itself.
struct Event {
  /// Inline callback capacity. Sized so every kernel-internal callback
  /// ([this] or [this, handle] captures) stays inline while the whole
  /// event spans exactly one cache line.
  static constexpr std::size_t kInlineBytes = 32;

  double time = 0.0;
  uint64_t seq = 0;
  /// floor(time / width) under the calendar queue's current bucket width;
  /// maintained by CalendarQueue, unused by HeapQueue.
  uint64_t vbucket = 0;
  /// Null for coroutine events (Dispatch resumes `target`); otherwise the
  /// trampoline invoking the inline or out-of-line callable.
  void (*invoke)(Event&) = nullptr;
  union {
    /// Coroutine address, or the out-of-line callable blob.
    void* target = nullptr;
    alignas(8) unsigned char inline_buf[kInlineBytes];
  };

  /// Binds a coroutine resumption.
  void BindCoroutine(std::coroutine_handle<> handle) {
    invoke = nullptr;
    target = handle.address();
  }

  /// Binds a callback. Returns false (leaving the event invalid) for an
  /// empty callable such as a default-constructed std::function, so the
  /// scheduler can fail at the Call site instead of at dispatch time.
  template <typename F>
  bool BindCallback(F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (std::is_constructible_v<bool, const Fn&>) {
      if (!static_cast<bool>(fn)) return false;
    }
    if constexpr (std::is_trivially_copyable_v<Fn> &&
                  sizeof(Fn) <= kInlineBytes && alignof(Fn) <= 8) {
      ::new (static_cast<void*>(inline_buf)) Fn(std::forward<F>(fn));
      invoke = &InvokeInline<Fn>;
    } else {
      const std::size_t bytes = sizeof(BlobHeader) + sizeof(Fn);
      auto* header =
          static_cast<BlobHeader*>(FramePool::ThisThread().Allocate(bytes));
      header->call_and_destroy = &CallAndDestroy<Fn>;
      header->destroy_only = &DestroyOnly<Fn>;
      header->bytes = bytes;
      ::new (static_cast<void*>(header + 1)) Fn(std::forward<F>(fn));
      target = header;
      invoke = &InvokeBlob;
    }
    return true;
  }

  bool is_coroutine() const { return invoke == nullptr; }

  /// Runs the event: resumes the coroutine or invokes the callback
  /// (releasing its out-of-line state, if any).
  void Dispatch() {
    if (invoke == nullptr) {
      std::coroutine_handle<>::from_address(target).resume();
    } else {
      invoke(*this);
    }
  }

  /// Releases an unexecuted event's out-of-line state (teardown path).
  void DestroyPending() {
    if (invoke != &InvokeBlob) return;
    auto* header = static_cast<BlobHeader*>(target);
    header->destroy_only(header + 1);
    FramePool::ThisThread().Deallocate(header, header->bytes);
  }

 private:
  /// Out-of-line callables are stored as [BlobHeader][callable] in one
  /// FramePool block.
  struct BlobHeader {
    void (*call_and_destroy)(void*);
    void (*destroy_only)(void*);
    std::size_t bytes;
  };

  template <typename Fn>
  static void InvokeInline(Event& event) {
    // Trivially copyable implies trivially destructible: invoking the
    // buffered copy is all the cleanup there is.
    (*std::launder(reinterpret_cast<Fn*>(event.inline_buf)))();
  }

  static void InvokeBlob(Event& event) {
    auto* header = static_cast<BlobHeader*>(event.target);
    const std::size_t bytes = header->bytes;
    header->call_and_destroy(header + 1);
    FramePool::ThisThread().Deallocate(header, bytes);
  }

  template <typename Fn>
  static void CallAndDestroy(void* callable) {
    Fn* fn = static_cast<Fn*>(callable);
    (*fn)();
    fn->~Fn();
  }

  template <typename Fn>
  static void DestroyOnly(void* callable) {
    static_cast<Fn*>(callable)->~Fn();
  }
};

static_assert(std::is_trivially_copyable_v<Event>);
static_assert(sizeof(Event) == 64, "one event per cache line");

inline bool EarlierThan(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_EVENT_H_

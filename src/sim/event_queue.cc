#include "sim/event_queue.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace dimsum::sim {

void CalendarQueue::EnsureHead() {
  if (have_head_) return;
  DIMSUM_CHECK_GT(size_, std::size_t{0});
  // Sweep at most one year (each physical bucket once) from the cursor,
  // taking the first bucket whose minimum lies in the cursor's virtual
  // bucket. Within a year, bucket order equals time order.
  const std::size_t n = buckets_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Bucket& bucket = buckets_[cursor_ & mask_];
    if (!bucket.Empty() && bucket.Min().vbucket == cursor_) {
      head_bucket_ = cursor_ & mask_;
      have_head_ = true;
      return;
    }
    ++cursor_;
  }
  // Sparse tail: nothing within a year of the cursor. Direct-search the
  // global minimum by (time, seq) and jump the cursor to it.
  const Event* best = nullptr;
  std::size_t best_bucket = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Bucket& bucket = buckets_[i];
    if (bucket.Empty()) continue;
    if (best == nullptr || EarlierThan(bucket.Min(), *best)) {
      best = &bucket.Min();
      best_bucket = i;
    }
  }
  DIMSUM_CHECK(best != nullptr);
  cursor_ = best->vbucket;
  head_bucket_ = best_bucket;
  have_head_ = true;
}

void CalendarQueue::Resize(std::size_t new_buckets) {
  ++resizes_;
  pushes_since_resize_ = 0;
  std::vector<Event> all;
  all.reserve(size_);
  for (Bucket& bucket : buckets_) {
    for (std::size_t i = bucket.head; i < bucket.events.size(); ++i) {
      all.push_back(bucket.events[i]);
    }
    bucket.events.clear();
    bucket.head = 0;
  }
  // Width from the mean gap among the earliest kWidthSample events
  // (Brown's sampling rule, x3 so ~2/3 of head buckets hold one event).
  // A global span/size average looks plausible but under-resolves the
  // dense head whenever inter-event gaps are skewed: exponential holds
  // cluster the pending population near the cursor with a long sparse
  // tail, and span-based widths leave dozens of events per head bucket.
  // Degenerate gaps (everything at one instant, or <2 events) keep a
  // sane default.
  constexpr std::size_t kWidthSample = 64;
  const std::size_t k = std::min(all.size(), kWidthSample);
  double width = 1.0;
  if (k >= 2) {
    std::partial_sort(
        all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k), all.end(),
        [](const Event& a, const Event& b) { return EarlierThan(a, b); });
    width = 3.0 * (all[k - 1].time - all[0].time) / static_cast<double>(k - 1);
  }
  if (!(width > 1e-9)) width = 1.0;
  width_ = width;
  inv_width_ = 1.0 / width;
  buckets_ = std::vector<Bucket>(new_buckets);
  mask_ = new_buckets - 1;
  double min_time = 0.0;
  if (!all.empty()) {
    min_time = all[0].time;
    if (k < 2) {  // not sorted above: find the minimum directly
      for (const Event& ev : all) {
        if (ev.time < min_time) min_time = ev.time;
      }
    }
  }
  cursor_ = all.empty() ? 0 : VirtualBucket(min_time);
  have_head_ = false;
  for (Event& ev : all) {
    ev.vbucket = VirtualBucket(ev.time);
    buckets_[ev.vbucket & mask_].Insert(ev);
  }
}

EventQueueKind DefaultEventQueueKind() {
  const char* env = std::getenv("DIMSUM_EVENT_QUEUE");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "calendar") == 0) {
    return EventQueueKind::kCalendar;
  }
  if (std::strcmp(env, "heap") == 0) return EventQueueKind::kHeap;
  DIMSUM_CHECK(false) << "DIMSUM_EVENT_QUEUE must be 'calendar' or 'heap', "
                         "got '"
                      << env << "'";
  return EventQueueKind::kCalendar;
}

}  // namespace dimsum::sim

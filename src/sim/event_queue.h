#ifndef DIMSUM_SIM_EVENT_QUEUE_H_
#define DIMSUM_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/event.h"

namespace dimsum::sim {

/// Binary min-heap over (time, seq) -- the legacy event queue, kept as a
/// differential-testing oracle and selectable via DIMSUM_EVENT_QUEUE=heap.
class HeapQueue {
 public:
  HeapQueue() = default;
  HeapQueue(const HeapQueue&) = delete;
  HeapQueue& operator=(const HeapQueue&) = delete;
  ~HeapQueue() {
    for (Event& ev : heap_) ev.DestroyPending();
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  void Push(Event ev) {
    heap_.push_back(ev);
    SiftUp(heap_.size() - 1);
  }

  const Event& Peek() const { return heap_.front(); }

  Event Pop() {
    Event top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
    return top;
  }

 private:
  void SiftUp(std::size_t i) {
    Event ev = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!EarlierThan(ev, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = ev;
  }

  void SiftDown(std::size_t i) {
    Event ev = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t smallest = i;
      const std::size_t left = 2 * i + 1;
      const std::size_t right = 2 * i + 2;
      const Event* best = &ev;
      if (left < n && EarlierThan(heap_[left], *best)) {
        smallest = left;
        best = &heap_[left];
      }
      if (right < n && EarlierThan(heap_[right], *best)) {
        smallest = right;
      }
      if (smallest == i) break;
      heap_[i] = heap_[smallest];
      i = smallest;
    }
    heap_[i] = ev;
  }

  std::vector<Event> heap_;
};

/// Calendar queue (Brown 1988): a power-of-two array of buckets, each
/// covering `width` ms of virtual time; bucket index is
/// floor(time/width) mod nbuckets, so one sweep of the array spans a
/// "year" of nbuckets*width ms. With the width tuned to ~2 events per
/// bucket, Push and Pop are O(1) amortized instead of the heap's
/// O(log n) sift.
///
/// Buckets hold events in ascending (time, seq) order behind a consumed
/// head index: DES insertions are strongly biased toward later
/// (time, seq) than existing bucket content -- same-instant events arrive
/// in seq order -- so the common insert is an O(1) append and the common
/// pop an O(1) head advance, even for bursts of simultaneous events.
///
/// Pop order is exactly (time, seq): equal times always map to the same
/// bucket, and the year filter compares the event's own virtual-bucket
/// number (not an accumulated float bound) so no rounding drift can
/// reorder events near bucket edges. When a full year sweep finds
/// nothing (sparse far-future tail), a direct search locates the global
/// minimum by (time, seq). The cursor rewinds on out-of-order pushes, so
/// correctness does not depend on the simulator's monotone-time contract.
class CalendarQueue {
 public:
  CalendarQueue() : buckets_(kMinBuckets), mask_(kMinBuckets - 1) {}
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;
  ~CalendarQueue() {
    for (Bucket& bucket : buckets_) {
      for (std::size_t i = bucket.head; i < bucket.events.size(); ++i) {
        bucket.events[i].DestroyPending();
      }
    }
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t num_buckets() const { return buckets_.size(); }
  /// Bucket-array rebuilds (grow or shrink) so far.
  uint64_t resizes() const { return resizes_; }

  void Push(Event ev) {
    ev.vbucket = VirtualBucket(ev.time);
    if (ev.vbucket < cursor_) {
      // Out-of-order push (earlier than the scan cursor): rewind so the
      // next sweep starts early enough to see it.
      cursor_ = ev.vbucket;
      have_head_ = false;
    } else if (have_head_ && EarlierThan(ev, buckets_[head_bucket_].Min())) {
      have_head_ = false;
    }
    buckets_[ev.vbucket & mask_].Insert(ev);
    ++size_;
    ++pushes_since_resize_;
    if (size_ > 2 * buckets_.size()) {
      Resize(buckets_.size() * 2);
    } else if (pushes_since_resize_ >= size_ &&
               buckets_[ev.vbucket & mask_].Size() > kRetuneOccupancy) {
      // Width retune. Size-triggered resizes never fire while the pending
      // population plateaus, so the width can go stale -- the classic
      // failure is seeding a simulation by pushing the whole population at
      // one instant (span 0, so the width falls back to its default),
      // after which every steady-state bucket holds dozens of events and
      // sorted insertion degrades to O(bucket). An over-full bucket after
      // a full population turnover of pushes signals staleness; rebuilding
      // at the same bucket count recomputes the width from the current
      // span. The turnover gate keeps genuinely-simultaneous bursts (span
      // really is 0) at amortized O(1) per push.
      Resize(buckets_.size());
    }
  }

  const Event& Peek() {
    EnsureHead();
    return buckets_[head_bucket_].Min();
  }

  Event Pop() {
    EnsureHead();
    Bucket& bucket = buckets_[head_bucket_];
    Event ev = bucket.PopMin();
    --size_;
    // The next event in this bucket often shares the virtual bucket,
    // keeping the head memoized for runs of nearby events.
    have_head_ = !bucket.Empty() && bucket.Min().vbucket == cursor_;
    if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
      Resize(buckets_.size() / 2);
    }
    return ev;
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;
  /// Live events in one bucket (8x the ~2 the width aims for) that, after
  /// a full population turnover of pushes, trigger a width retune.
  static constexpr std::size_t kRetuneOccupancy = 16;

  /// Ascending (time, seq) events from index `head` on; the consumed
  /// prefix is compacted away once it outweighs the live tail.
  struct Bucket {
    std::vector<Event> events;
    std::size_t head = 0;

    bool Empty() const { return head == events.size(); }
    std::size_t Size() const { return events.size() - head; }
    const Event& Min() const { return events[head]; }

    void Insert(const Event& ev) {
      std::size_t i = events.size();
      while (i > head && EarlierThan(ev, events[i - 1])) --i;
      if (i == events.size()) {
        events.push_back(ev);  // the common, append-at-end case
      } else {
        events.insert(events.begin() + i, ev);
      }
    }

    Event PopMin() {
      Event ev = events[head++];
      if (head == events.size()) {
        events.clear();
        head = 0;
      } else if (head >= 64 && head * 2 >= events.size()) {
        events.erase(events.begin(), events.begin() + head);
        head = 0;
      }
      return ev;
    }
  };

  /// Multiplies by the cached reciprocal rather than dividing; the exact
  /// bucket boundaries differ negligibly from floor(time/width) but the
  /// mapping is monotone in time and used consistently everywhere, which
  /// is all correctness needs.
  uint64_t VirtualBucket(double time) const {
    return static_cast<uint64_t>(time * inv_width_);
  }

  void EnsureHead();
  void Resize(std::size_t new_buckets);

  std::vector<Bucket> buckets_;
  std::size_t mask_;
  double width_ = 1.0;
  double inv_width_ = 1.0;
  /// Scan cursor: the virtual bucket the next sweep starts from.
  uint64_t cursor_ = 0;
  std::size_t size_ = 0;
  /// Pushes since the last rebuild; gates the width-retune heuristic.
  std::size_t pushes_since_resize_ = 0;
  bool have_head_ = false;
  std::size_t head_bucket_ = 0;
  uint64_t resizes_ = 0;
};

enum class EventQueueKind { kCalendar, kHeap };

/// Queue selected by the DIMSUM_EVENT_QUEUE environment variable
/// ("calendar" is the default; "heap" keeps the legacy binary heap).
/// Both pop in the identical (time, seq) order, so results are
/// bit-identical across kinds (differential-tested).
EventQueueKind DefaultEventQueueKind();

/// The simulator's event queue: a calendar queue or the legacy heap
/// behind one predictable branch per operation.
class EventQueue {
 public:
  explicit EventQueue(EventQueueKind kind) : kind_(kind) {}

  EventQueueKind kind() const { return kind_; }
  bool empty() const {
    return kind_ == EventQueueKind::kCalendar ? calendar_.empty()
                                              : heap_.empty();
  }
  std::size_t size() const {
    return kind_ == EventQueueKind::kCalendar ? calendar_.size()
                                              : heap_.size();
  }
  uint64_t resizes() const { return calendar_.resizes(); }

  void Push(Event ev) {
    if (kind_ == EventQueueKind::kCalendar) {
      calendar_.Push(ev);
    } else {
      heap_.Push(ev);
    }
  }

  /// Time of the earliest event; requires !empty().
  double PeekTime() {
    return kind_ == EventQueueKind::kCalendar ? calendar_.Peek().time
                                              : heap_.Peek().time;
  }

  /// Removes and returns the earliest event by (time, seq); requires
  /// !empty(). The caller owns the event: either Dispatch() it or
  /// release it with DestroyPending().
  Event Pop() {
    return kind_ == EventQueueKind::kCalendar ? calendar_.Pop() : heap_.Pop();
  }

 private:
  EventQueueKind kind_;
  CalendarQueue calendar_;
  HeapQueue heap_;
};

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_EVENT_QUEUE_H_

#include "sim/fault.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/check.h"

namespace dimsum::sim {
namespace {

/// Splits `text` on `sep`, keeping empty pieces (they are parse errors the
/// caller reports with context).
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> pieces;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      pieces.push_back(text.substr(begin));
      return pieces;
    }
    pieces.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
}

double ParseNumber(const std::string& clause, const std::string& token) {
  const std::size_t eq = token.find('=');
  DIMSUM_CHECK(eq != std::string::npos)
      << "fault clause '" << clause << "': expected key=value, got '" << token
      << "'";
  const std::string value = token.substr(eq + 1);
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  DIMSUM_CHECK(!value.empty() && end != nullptr && *end == '\0')
      << "fault clause '" << clause << "': bad number '" << value << "'";
  return parsed;
}

/// Parses the shared timing keys (at/for or mtbf/mttr, optional seed) of
/// one clause into `out`, check-failing on unknown keys or mixed modes.
void ParseTiming(const std::string& clause,
                 const std::vector<std::string>& tokens, std::size_t first,
                 FaultClause* out) {
  bool has_at = false, has_for = false, has_mtbf = false, has_mttr = false;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.rfind("at=", 0) == 0) {
      out->at_ms = ParseNumber(clause, token);
      has_at = true;
    } else if (token.rfind("for=", 0) == 0) {
      out->for_ms = ParseNumber(clause, token);
      has_for = true;
    } else if (token.rfind("mtbf=", 0) == 0) {
      out->mtbf_ms = ParseNumber(clause, token);
      has_mtbf = true;
    } else if (token.rfind("mttr=", 0) == 0) {
      out->mttr_ms = ParseNumber(clause, token);
      has_mttr = true;
    } else if (token.rfind("seed=", 0) == 0) {
      out->seed = static_cast<uint64_t>(ParseNumber(clause, token));
    } else if (token.rfind("site=", 0) == 0) {
      // handled by the caller for crash clauses
      continue;
    } else {
      DIMSUM_CHECK(false) << "fault clause '" << clause << "': unknown key '"
                          << token << "'";
    }
  }
  DIMSUM_CHECK(!(has_at || has_for) || !(has_mtbf || has_mttr))
      << "fault clause '" << clause
      << "': at/for and mtbf/mttr are mutually exclusive";
  if (has_at || has_for) {
    DIMSUM_CHECK(has_at && has_for)
        << "fault clause '" << clause << "': one-shot needs both at= and for=";
    DIMSUM_CHECK_GE(out->at_ms, 0.0) << "fault clause '" << clause << "'";
    DIMSUM_CHECK_GT(out->for_ms, 0.0)
        << "fault clause '" << clause << "': for= must be positive";
    out->one_shot = true;
  } else {
    DIMSUM_CHECK(has_mtbf && has_mttr)
        << "fault clause '" << clause
        << "': need at=/for= or mtbf=/mttr= timing";
    DIMSUM_CHECK_GT(out->mtbf_ms, 0.0)
        << "fault clause '" << clause << "': mtbf= must be positive";
    DIMSUM_CHECK_GT(out->mttr_ms, 0.0)
        << "fault clause '" << clause << "': mttr= must be positive";
    out->one_shot = false;
  }
}

FaultClause ParseClause(const std::string& clause) {
  const std::size_t colon = clause.find(':');
  DIMSUM_CHECK(colon != std::string::npos && colon > 0)
      << "fault clause '" << clause << "': expected kind:key=value,...";
  const std::string kind = clause.substr(0, colon);
  const std::vector<std::string> tokens = Split(clause.substr(colon + 1), ',');
  DIMSUM_CHECK(!tokens.empty() && !tokens.front().empty())
      << "fault clause '" << clause << "': empty body";

  FaultClause out;
  if (kind == "crash") {
    out.target = FaultClause::Target::kSite;
    bool has_site = false;
    for (const std::string& token : tokens) {
      if (token.rfind("site=", 0) == 0) {
        out.site = static_cast<SiteId>(ParseNumber(clause, token));
        has_site = true;
      }
    }
    DIMSUM_CHECK(has_site) << "fault clause '" << clause
                           << "': crash needs site=<id>";
    DIMSUM_CHECK_GE(out.site, 0) << "fault clause '" << clause << "'";
    ParseTiming(clause, tokens, 0, &out);
  } else if (kind == "link") {
    out.target = FaultClause::Target::kLink;
    const std::string& mode = tokens.front();
    if (mode == "drop") {
      out.link_kind = LinkFaultKind::kDrop;
    } else if (mode.rfind("delay=", 0) == 0) {
      out.link_kind = LinkFaultKind::kDelay;
      out.delay_factor = ParseNumber(clause, mode);
      DIMSUM_CHECK_GT(out.delay_factor, 0.0)
          << "fault clause '" << clause << "': delay factor must be positive";
    } else {
      DIMSUM_CHECK(false) << "fault clause '" << clause
                          << "': link needs drop or delay=<factor> first";
    }
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      DIMSUM_CHECK(tokens[i].rfind("site=", 0) != 0)
          << "fault clause '" << clause << "': link clauses take no site=";
    }
    ParseTiming(clause, tokens, 1, &out);
  } else {
    DIMSUM_CHECK(false) << "fault clause '" << clause << "': unknown kind '"
                        << kind << "' (want crash or link)";
  }
  return out;
}

}  // namespace

FaultSchedule ParseFaultSpec(const std::string& spec) {
  FaultSchedule schedule;
  if (spec.empty()) return schedule;
  for (const std::string& clause : Split(spec, ';')) {
    DIMSUM_CHECK(!clause.empty())
        << "fault spec '" << spec << "': empty clause";
    schedule.clauses.push_back(ParseClause(clause));
  }
  return schedule;
}

FaultState::FaultState(const FaultSchedule& schedule) {
  clauses_.reserve(schedule.clauses.size());
  for (std::size_t i = 0; i < schedule.clauses.size(); ++i) {
    const FaultClause& clause = schedule.clauses[i];
    ClauseState cs;
    cs.clause = clause;
    if (clause.one_shot) {
      cs.windows.push_back(
          FaultWindow{clause.at_ms, clause.at_ms + clause.for_ms});
      cs.generated_until_ms = std::numeric_limits<double>::infinity();
    } else {
      // Mix the clause index into the seed so identical clauses get
      // independent streams.
      cs.rng = Rng(clause.seed + 0x9e3779b97f4a7c15ULL * (i + 1));
    }
    clauses_.push_back(std::move(cs));
  }
}

void FaultState::EnsureUntil(ClauseState& cs, double t_ms) {
  while (cs.generated_until_ms <= t_ms) {
    // Uptime then downtime; tiny floors keep the renewal process advancing
    // even on degenerate exponential draws.
    const double up = std::max(1e-6, cs.rng.Exponential(cs.clause.mtbf_ms));
    const double down = std::max(1e-6, cs.rng.Exponential(cs.clause.mttr_ms));
    const double start = cs.generated_until_ms + up;
    cs.windows.push_back(FaultWindow{start, start + down});
    cs.generated_until_ms = start + down;
  }
}

const FaultWindow* FaultState::ActiveWindow(ClauseState& cs, double now_ms) {
  EnsureUntil(cs, now_ms);
  // First window with end > now; active iff it has also started.
  const auto it = std::upper_bound(
      cs.windows.begin(), cs.windows.end(), now_ms,
      [](double t, const FaultWindow& w) { return t < w.end_ms; });
  if (it == cs.windows.end() || it->start_ms > now_ms) return nullptr;
  return &*it;
}

bool FaultState::SiteDown(SiteId site, double now_ms) {
  for (ClauseState& cs : clauses_) {
    if (cs.clause.target != FaultClause::Target::kSite ||
        cs.clause.site != site) {
      continue;
    }
    if (ActiveWindow(cs, now_ms) != nullptr) return true;
  }
  return false;
}

double FaultState::SiteUpAt(SiteId site, double now_ms) {
  double up_at = now_ms;
  for (ClauseState& cs : clauses_) {
    if (cs.clause.target != FaultClause::Target::kSite ||
        cs.clause.site != site) {
      continue;
    }
    if (const FaultWindow* w = ActiveWindow(cs, now_ms)) {
      up_at = std::max(up_at, w->end_ms);
    }
  }
  DIMSUM_CHECK_GT(up_at, now_ms) << "SiteUpAt requires SiteDown(site, now)";
  return up_at;
}

std::vector<SiteId> FaultState::DownSites(double now_ms) {
  std::vector<SiteId> down;
  for (ClauseState& cs : clauses_) {
    if (cs.clause.target != FaultClause::Target::kSite) continue;
    if (ActiveWindow(cs, now_ms) != nullptr) down.push_back(cs.clause.site);
  }
  std::sort(down.begin(), down.end());
  down.erase(std::unique(down.begin(), down.end()), down.end());
  return down;
}

bool FaultState::AnySiteDownDuring(double begin_ms, double end_ms) {
  for (ClauseState& cs : clauses_) {
    if (cs.clause.target != FaultClause::Target::kSite) continue;
    EnsureUntil(cs, end_ms);
    for (const FaultWindow& w : cs.windows) {
      if (w.start_ms >= end_ms) break;
      if (w.end_ms > begin_ms) return true;
    }
  }
  return false;
}

double FaultState::LinkDelayFactor(double now_ms) {
  double factor = 1.0;
  for (ClauseState& cs : clauses_) {
    if (cs.clause.target != FaultClause::Target::kLink ||
        cs.clause.link_kind != LinkFaultKind::kDelay) {
      continue;
    }
    if (ActiveWindow(cs, now_ms) != nullptr) factor *= cs.clause.delay_factor;
  }
  return factor;
}

bool FaultState::LinkDropping(double now_ms) {
  for (ClauseState& cs : clauses_) {
    if (cs.clause.target != FaultClause::Target::kLink ||
        cs.clause.link_kind != LinkFaultKind::kDrop) {
      continue;
    }
    if (ActiveWindow(cs, now_ms) != nullptr) return true;
  }
  return false;
}

std::vector<FaultState::SiteWindow> FaultState::SiteWindowsUpTo(
    double horizon_ms) {
  std::vector<SiteWindow> result;
  for (ClauseState& cs : clauses_) {
    if (cs.clause.target != FaultClause::Target::kSite) continue;
    EnsureUntil(cs, horizon_ms);
    for (const FaultWindow& w : cs.windows) {
      if (w.start_ms >= horizon_ms) break;
      result.push_back(SiteWindow{cs.clause.site, w});
    }
  }
  return result;
}

}  // namespace dimsum::sim

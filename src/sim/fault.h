#ifndef DIMSUM_SIM_FAULT_H_
#define DIMSUM_SIM_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace dimsum::sim {

/// One contiguous virtual-time window during which a component is faulted.
/// Windows are half-open: the component is faulted at t iff
/// start_ms <= t < end_ms.
struct FaultWindow {
  double start_ms = 0.0;
  double end_ms = 0.0;
};

/// What a link fault does to transfers started inside its windows.
enum class LinkFaultKind {
  kDelay,  // time on the wire is multiplied by delay_factor
  kDrop,   // the message is lost and must be retransmitted
};

/// One clause of a fault specification: a target (a site's CPU+disks, or
/// the shared network link) and either a one-shot window (at/for) or a
/// seeded renewal process (uptime ~ Exp(mtbf), downtime ~ Exp(mttr)).
struct FaultClause {
  enum class Target { kSite, kLink };
  Target target = Target::kSite;
  SiteId site = kUnboundSite;  // kSite only
  LinkFaultKind link_kind = LinkFaultKind::kDelay;  // kLink only
  double delay_factor = 1.0;  // kDelay only: transfer-time multiplier

  bool one_shot = false;
  double at_ms = 0.0;    // one-shot: window start
  double for_ms = 0.0;   // one-shot: window length
  double mtbf_ms = 0.0;  // renewal: mean time between failures
  double mttr_ms = 0.0;  // renewal: mean time to repair
  uint64_t seed = 0;     // renewal: per-clause stream seed
};

/// A full fault schedule. An empty schedule means a healthy run; the
/// executor then keeps its null-fault fast paths, so healthy results stay
/// bit-identical to builds without the fault layer.
struct FaultSchedule {
  std::vector<FaultClause> clauses;
  bool empty() const { return clauses.empty(); }
};

/// Parses the `--faults=` / DIMSUM_FAULTS spec grammar; check-fails with a
/// message naming the offending clause on malformed input.
///
/// Grammar: clauses joined by ';', each `kind:key=value[,key=value...]`:
///   crash:site=<id>,at=<ms>,for=<ms>
///   crash:site=<id>,mtbf=<ms>,mttr=<ms>[,seed=<n>]
///   link:drop,at=<ms>,for=<ms>
///   link:drop,mtbf=<ms>,mttr=<ms>[,seed=<n>]
///   link:delay=<factor>,at=<ms>,for=<ms>
///   link:delay=<factor>,mtbf=<ms>,mttr=<ms>[,seed=<n>]
/// An empty spec is the empty (healthy) schedule.
FaultSchedule ParseFaultSpec(const std::string& spec);

/// Run-time fault oracle over a schedule: answers "is this site/link
/// faulted at virtual time t?". Renewal clauses generate their windows
/// lazily from per-clause seeded streams, so the generated timeline
/// depends only on the schedule (seed included) and how far virtual time
/// has advanced -- never on query order or host threading. This keeps
/// faulted runs bit-deterministic for a fixed seed.
class FaultState {
 public:
  explicit FaultState(const FaultSchedule& schedule);

  // --- site crashes (fail-stop: CPU + all disks of the site) ------------
  bool SiteDown(SiteId site, double now_ms);
  /// Earliest restart time covering `now_ms`; requires SiteDown(site, now).
  double SiteUpAt(SiteId site, double now_ms);
  /// All distinct sites with a crash window active at `now_ms`, sorted.
  std::vector<SiteId> DownSites(double now_ms);
  /// True iff any site crash window overlaps [begin_ms, end_ms); used to
  /// classify completions as degraded for availability-windowed stats.
  bool AnySiteDownDuring(double begin_ms, double end_ms);

  // --- link faults ------------------------------------------------------
  /// Product of the delay factors of all delay windows active at `now_ms`
  /// (1.0 when the link is healthy).
  double LinkDelayFactor(double now_ms);
  /// True iff a drop window is active at `now_ms` (transfers started now
  /// are lost and must be retransmitted).
  bool LinkDropping(double now_ms);

  // --- reporting --------------------------------------------------------
  struct SiteWindow {
    SiteId site = kUnboundSite;
    FaultWindow window;
  };
  /// Every site crash window that begins before `horizon_ms`, in clause
  /// order then start order. Used for trace spans and downtime metrics.
  std::vector<SiteWindow> SiteWindowsUpTo(double horizon_ms);

 private:
  struct ClauseState {
    FaultClause clause;
    std::vector<FaultWindow> windows;  // sorted, non-overlapping
    Rng rng{0};
    double generated_until_ms = 0.0;
  };

  /// Extends a renewal clause's window list to cover virtual time `t_ms`.
  void EnsureUntil(ClauseState& cs, double t_ms);
  /// The window of `cs` containing `now_ms`, or null.
  const FaultWindow* ActiveWindow(ClauseState& cs, double now_ms);

  std::vector<ClauseState> clauses_;
};

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_FAULT_H_

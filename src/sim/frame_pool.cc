#include "sim/frame_pool.h"

#include <new>

namespace dimsum::sim {

FramePool& FramePool::ThisThread() {
  thread_local FramePool pool;
  return pool;
}

void* FramePool::Allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooledBytes) {
    ++stats_.misses;
    ++stats_.oversized;
    return ::operator new(bytes);
  }
  const std::size_t index = ClassIndex(bytes);
  if (FreeNode* node = heads_[index]; node != nullptr) {
    heads_[index] = node->next;
    --lengths_[index];
    --free_blocks_;
    ++stats_.hits;
    return node;
  }
  ++stats_.misses;
  return ::operator new(ClassBytes(index));
}

void FramePool::Deallocate(void* ptr, std::size_t bytes) noexcept {
  if (ptr == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooledBytes) {
    ::operator delete(ptr);
    return;
  }
  const std::size_t index = ClassIndex(bytes);
  if (lengths_[index] >= kMaxFreePerClass) {
    ::operator delete(ptr);
    return;
  }
  auto* node = static_cast<FreeNode*>(ptr);
  node->next = heads_[index];
  heads_[index] = node;
  ++lengths_[index];
  ++free_blocks_;
}

FramePool::~FramePool() {
  for (std::size_t i = 0; i < kNumClasses; ++i) {
    FreeNode* node = heads_[i];
    while (node != nullptr) {
      FreeNode* next = node->next;
      ::operator delete(node);
      node = next;
    }
    heads_[i] = nullptr;
  }
}

}  // namespace dimsum::sim

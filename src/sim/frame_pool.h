#ifndef DIMSUM_SIM_FRAME_POOL_H_
#define DIMSUM_SIM_FRAME_POOL_H_

#include <cstddef>
#include <cstdint>

namespace dimsum::sim {

/// Size-bucketed freelist allocator for coroutine frames and event
/// callbacks. Every `Task<T>`/`Process` the executor creates used to hit
/// global `new`/`delete` once per frame; with simulations issuing one
/// Task per operator page hand-off that allocation was a measurable slice
/// of kernel time. The pool recycles blocks in 64-byte size classes up to
/// 4 KiB (larger requests pass through to the global allocator).
///
/// The pool is thread-local: each simulation runs single-threaded on one
/// thread (parallel replication gives every trial its own thread and its
/// own simulator), so frames are always freed on the thread that
/// allocated them and no locking is needed. Blocks are returned to the
/// global allocator when a class's freelist is full and when the thread
/// exits.
class FramePool {
 public:
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kMaxPooledBytes = 4096;
  static constexpr std::size_t kNumClasses = kMaxPooledBytes / kGranule;
  /// Freelist length cap per size class; beyond it, frees pass through.
  static constexpr std::size_t kMaxFreePerClass = 1024;

  /// Allocation counters. `hits` are served from a freelist; `misses`
  /// went to the global allocator (cold start or oversized request).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t oversized = 0;  // subset of misses: > kMaxPooledBytes
    double HitRate() const {
      const uint64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }
  };

  /// The calling thread's pool.
  static FramePool& ThisThread();

  void* Allocate(std::size_t bytes);
  void Deallocate(void* ptr, std::size_t bytes) noexcept;

  /// Cumulative counters for this thread (never reset by runs; callers
  /// wanting per-run figures difference two snapshots).
  const Stats& stats() const { return stats_; }

  /// Blocks currently parked on this thread's freelists.
  std::size_t free_blocks() const { return free_blocks_; }

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;
  ~FramePool();

 private:
  FramePool() = default;

  struct FreeNode {
    FreeNode* next;
  };

  static std::size_t ClassIndex(std::size_t bytes) {
    return (bytes + kGranule - 1) / kGranule - 1;
  }
  static std::size_t ClassBytes(std::size_t index) {
    return (index + 1) * kGranule;
  }

  FreeNode* heads_[kNumClasses] = {};
  std::size_t lengths_[kNumClasses] = {};
  std::size_t free_blocks_ = 0;
  Stats stats_;
};

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_FRAME_POOL_H_

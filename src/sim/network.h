#ifndef DIMSUM_SIM_NETWORK_H_
#define DIMSUM_SIM_NETWORK_H_

#include <cstdint>

#include "sim/resource.h"
#include "sim/simulator.h"

namespace dimsum::sim {

/// Shared network link, modeled (as in the paper) as a single FIFO queue
/// with a fixed bandwidth; technology details (Ethernet, ATM, ...) are not
/// modeled. Per-message CPU costs are charged by the caller at the sending
/// and receiving sites' CPUs, not here.
class Network {
 public:
  Network(Simulator& sim, double bandwidth_mbit_per_sec)
      : link_(sim, "network"), bandwidth_mbps_(bandwidth_mbit_per_sec) {}

  /// Time on the wire for a message of `bytes`, in ms.
  double TransferTimeMs(int64_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / (bandwidth_mbps_ * 1000.0);
  }

  /// Occupies the link for the message's time-on-the-wire. `time_factor`
  /// stretches the transfer (fault injection's latency spikes); the
  /// default of 1.0 is exact multiplication, so healthy runs are
  /// bit-identical to the factor-free model. `stats`, when non-null,
  /// receives the message's queueing/wire-time split (see Resource::Use).
  auto Transfer(int64_t bytes, double time_factor = 1.0,
                ReqStats* stats = nullptr) {
    ++messages_;
    bytes_sent_ += bytes;
    return link_.Use(TransferTimeMs(bytes) * time_factor, stats);
  }

  double bandwidth_mbps() const { return bandwidth_mbps_; }
  uint64_t messages() const { return messages_; }
  int64_t bytes_sent() const { return bytes_sent_; }
  double busy_ms() const { return link_.busy_ms(); }
  /// Total time messages spent queued behind the shared link.
  double wait_ms() const { return link_.wait_ms(); }
  /// Messages currently queued behind the link (excludes the one on it).
  std::size_t queue_depth() const { return link_.queue_depth(); }
  /// Whether a message currently occupies the wire.
  bool in_service() const { return link_.in_service(); }
  void ResetStats() {
    messages_ = 0;
    bytes_sent_ = 0;
    link_.ResetStats();
  }

  // --- observability ----------------------------------------------------
  /// Routes each message's queueing delay into `histogram` (not owned;
  /// null disables).
  void set_queue_histogram(Histogram* histogram) {
    link_.set_wait_histogram(histogram);
  }
  /// Assigns the link's trace track (the network gets its own trace
  /// process; see exec/executor.cc).
  void SetTraceTrack(int pid, int tid) { link_.SetTraceTrack(pid, tid); }

 private:
  Resource link_;
  double bandwidth_mbps_;
  uint64_t messages_ = 0;
  int64_t bytes_sent_ = 0;
};

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_NETWORK_H_

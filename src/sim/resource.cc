#include "sim/resource.h"

#include "sim/trace.h"

namespace dimsum::sim {

void Resource::Enqueue(std::coroutine_handle<> handle, double service_ms,
                       ReqStats* stats) {
  queue_.push_back(Request{handle, service_ms, sim_.now(), stats});
  ++total_requests_;
  Dispatch();
}

void Resource::Dispatch() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  // The server is single-service: the in-flight request lives in members
  // so the completion callback captures only `this` and stays inline in
  // its event (see sim/event.h).
  in_service_ = queue_.front();
  queue_.pop_front();
  in_service_wait_ = sim_.now() - in_service_.enqueue_time;
  in_service_start_ = sim_.now();
  wait_ms_ += in_service_wait_;
  busy_ms_ += in_service_.service_ms;
  if (wait_hist_ != nullptr) wait_hist_->Add(in_service_wait_);
  if (in_service_.stats != nullptr) {
    in_service_.stats->wait_ms += in_service_wait_;
    in_service_.stats->service_ms += in_service_.service_ms;
  }
  sim_.Call(in_service_.service_ms, [this] {
    busy_ = false;
    if (TraceSink* trace = sim_.trace()) {
      trace->Complete(trace_pid_, trace_tid_, "service", "resource",
                      in_service_start_, sim_.now(),
                      {{"wait_ms", in_service_wait_},
                       {"service_ms", in_service_.service_ms}});
    }
    sim_.Resume(0.0, in_service_.handle);
    Dispatch();
  });
}

}  // namespace dimsum::sim

#include "sim/resource.h"

#include "sim/trace.h"

namespace dimsum::sim {

void Resource::Enqueue(std::coroutine_handle<> handle, double service_ms) {
  queue_.push_back(Request{handle, service_ms, sim_.now()});
  ++total_requests_;
  Dispatch();
}

void Resource::Dispatch() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  Request request = queue_.front();
  queue_.pop_front();
  const double wait = sim_.now() - request.enqueue_time;
  wait_ms_ += wait;
  busy_ms_ += request.service_ms;
  if (wait_hist_ != nullptr) wait_hist_->Add(wait);
  const double start = sim_.now();
  sim_.Call(request.service_ms, [this, request, wait, start] {
    busy_ = false;
    if (TraceSink* trace = sim_.trace()) {
      trace->Complete(trace_pid_, trace_tid_, "service", "resource", start,
                      sim_.now(),
                      {{"wait_ms", wait}, {"service_ms", request.service_ms}});
    }
    sim_.Resume(0.0, request.handle);
    Dispatch();
  });
}

}  // namespace dimsum::sim

#include "sim/resource.h"

namespace dimsum::sim {

void Resource::Enqueue(std::coroutine_handle<> handle, double service_ms) {
  queue_.push_back(Request{handle, service_ms, sim_.now()});
  ++total_requests_;
  Dispatch();
}

void Resource::Dispatch() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  Request request = queue_.front();
  queue_.pop_front();
  wait_ms_ += sim_.now() - request.enqueue_time;
  busy_ms_ += request.service_ms;
  sim_.Call(request.service_ms, [this, request] {
    busy_ = false;
    sim_.Resume(0.0, request.handle);
    Dispatch();
  });
}

}  // namespace dimsum::sim

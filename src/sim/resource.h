#ifndef DIMSUM_SIM_RESOURCE_H_
#define DIMSUM_SIM_RESOURCE_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "common/metrics.h"
#include "sim/simulator.h"
#include "sim/span.h"

namespace dimsum::sim {

/// Single-server FIFO queueing resource (the paper models CPUs and the
/// network this way). `co_await resource.Use(t)` waits for the server,
/// holds it for `t` ms of virtual time, and resumes the caller when done.
class Resource {
 public:
  /// `service_scale` multiplies every requested service time; a half-speed
  /// CPU is a Resource with scale 2.0.
  Resource(Simulator& sim, std::string name, double service_scale = 1.0)
      : sim_(sim), name_(std::move(name)), service_scale_(service_scale) {}
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  const std::string& name() const { return name_; }
  double service_scale() const { return service_scale_; }

  /// `stats`, when non-null, receives this request's queueing/service split
  /// (written additively at dispatch with plain memory stores -- never
  /// perturbs event timing). Requests short-circuited by the zero-service
  /// fast path write nothing: they neither queue nor suspend.
  auto Use(double service_ms, ReqStats* stats = nullptr) {
    service_ms *= service_scale_;
    struct Awaiter {
      Resource& resource;
      double service_ms;
      ReqStats* stats;
      bool await_ready() const noexcept { return service_ms <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) {
        resource.Enqueue(h, service_ms, stats);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, service_ms, stats};
  }

  // --- statistics -------------------------------------------------------
  uint64_t total_requests() const { return total_requests_; }
  double busy_ms() const { return busy_ms_; }
  /// Total time requests spent waiting for the server (excludes service).
  double wait_ms() const { return wait_ms_; }
  /// Requests currently waiting (excludes the one in service).
  std::size_t queue_depth() const { return queue_.size(); }
  /// Whether a request currently holds the server.
  bool in_service() const { return busy_; }
  /// Fraction of [0, horizon_ms] the server was busy.
  double Utilization(double horizon_ms) const {
    return horizon_ms > 0.0 ? busy_ms_ / horizon_ms : 0.0;
  }
  void ResetStats() {
    total_requests_ = 0;
    busy_ms_ = 0.0;
    wait_ms_ = 0.0;
  }

  // --- observability ----------------------------------------------------
  /// Routes each request's queueing delay into `histogram` (not owned;
  /// null disables). Used by the network link's queueing-delay histogram.
  void set_wait_histogram(Histogram* histogram) { wait_hist_ = histogram; }
  /// Assigns this resource's trace track; events are recorded only while
  /// the simulator has a TraceSink attached.
  void SetTraceTrack(int pid, int tid) {
    trace_pid_ = pid;
    trace_tid_ = tid;
  }

 private:
  struct Request {
    std::coroutine_handle<> handle;
    double service_ms;
    double enqueue_time;
    ReqStats* stats = nullptr;  ///< optional caller-owned split out-param
  };

  void Enqueue(std::coroutine_handle<> handle, double service_ms,
               ReqStats* stats);
  void Dispatch();

  Simulator& sim_;
  std::string name_;
  double service_scale_ = 1.0;
  bool busy_ = false;
  /// The request currently holding the server, plus its trace figures;
  /// valid from Dispatch until the completion callback finishes. Kept in
  /// members so the completion lambda captures only `this` (one pointer)
  /// and schedules without any out-of-line callback state.
  Request in_service_{};
  double in_service_wait_ = 0.0;
  double in_service_start_ = 0.0;
  std::deque<Request> queue_;
  uint64_t total_requests_ = 0;
  double busy_ms_ = 0.0;
  double wait_ms_ = 0.0;
  Histogram* wait_hist_ = nullptr;
  int trace_pid_ = 0;
  int trace_tid_ = 0;
};

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_RESOURCE_H_

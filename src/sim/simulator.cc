#include "sim/simulator.h"

#include "sim/task.h"
#include "sim/telemetry.h"

namespace dimsum::sim {

void Simulator::SampleTelemetry(double time) { telemetry_->AdvanceTo(time); }

void Simulator::Spawn(Process process) {
  Spawn(std::move(process), nullptr);
}

void Simulator::Spawn(Process process, std::function<void()> on_done) {
  Process::Handle handle = process.Release();
  DIMSUM_CHECK(handle);
  handle.promise().on_done = std::move(on_done);
  Resume(0.0, handle);
}

}  // namespace dimsum::sim

#include "sim/simulator.h"

#include "sim/task.h"

namespace dimsum::sim {

void Simulator::Spawn(Process process) {
  Spawn(std::move(process), nullptr);
}

void Simulator::Spawn(Process process, std::function<void()> on_done) {
  Process::Handle handle = process.Release();
  DIMSUM_CHECK(handle);
  handle.promise().on_done = std::move(on_done);
  Resume(0.0, handle);
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  Entry entry = queue_.top();
  queue_.pop();
  DIMSUM_CHECK_GE(entry.time, now_);
  now_ = entry.time;
  ++processed_;
  if (entry.handle) {
    entry.handle.resume();
  } else {
    entry.fn();
  }
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(double time) {
  while (!queue_.empty() && queue_.top().time <= time) Step();
  if (now_ < time) now_ = time;
}

}  // namespace dimsum::sim

#ifndef DIMSUM_SIM_SIMULATOR_H_
#define DIMSUM_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/check.h"
#include "sim/event_queue.h"

namespace dimsum::sim {

class Process;
class TelemetrySampler;
class TraceSink;

/// Discrete-event simulation kernel.
///
/// Keeps a virtual clock (milliseconds) and a calendar queue of events
/// (see sim/event_queue.h; DIMSUM_EVENT_QUEUE=heap selects the legacy
/// binary heap, which pops in the identical order). Events are either
/// coroutine resumptions or plain callbacks, stored inline without heap
/// allocation (sim/inline_fn.h). Ties are broken by insertion order, so
/// runs are fully deterministic and bit-identical across queue kinds.
class Simulator {
 public:
  Simulator() : queue_(DefaultEventQueueKind()) {}
  explicit Simulator(EventQueueKind kind) : queue_(kind) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in milliseconds.
  double now() const { return now_; }

  /// Schedules `handle` to be resumed `delay` ms from now. The delay
  /// must be non-negative (NaN fails the check).
  void Resume(double delay, std::coroutine_handle<> handle) {
    DIMSUM_CHECK_GE(delay, 0.0);
    DIMSUM_CHECK(handle);
    Event ev;
    ev.BindCoroutine(handle);
    Push(now_ + delay, ev);
  }

  /// Schedules `fn` to run `delay` ms from now. Trivially copyable
  /// callables up to Event::kInlineBytes are stored in the event itself;
  /// an empty callable (e.g. a default-constructed std::function) fails
  /// here rather than at dispatch. The delay must be non-negative (NaN
  /// fails the check).
  template <typename F>
  void Call(double delay, F&& fn) {
    DIMSUM_CHECK_GE(delay, 0.0);
    Event ev;
    DIMSUM_CHECK(ev.BindCallback(std::forward<F>(fn))) << "empty callback";
    Push(now_ + delay, ev);
  }

  /// Starts a detached process; see sim/task.h.
  void Spawn(Process process);

  /// Starts a detached process and invokes `on_done` when it completes.
  void Spawn(Process process, std::function<void()> on_done);

  /// Processes the next event. Returns false if the queue is empty.
  bool Step() {
    if (queue_.empty()) return false;
    Event event = queue_.Pop();
    DIMSUM_CHECK_GE(event.time, now_);
    // Telemetry samples the interval boundaries the clock is about to
    // cross *before* the event dispatches: state is piecewise-constant
    // between events, so the boundary reads are exact and sampling never
    // schedules an event of its own (see sim/telemetry.h).
    if (telemetry_ != nullptr) SampleTelemetry(event.time);
    now_ = event.time;
    ++processed_;
    event.Dispatch();
    return true;
  }

  /// Runs until no events remain.
  void Run() {
    while (Step()) {
    }
  }

  /// Runs until the clock reaches `time` (events at exactly `time` are
  /// processed) or the queue empties.
  void RunUntil(double time) {
    while (!queue_.empty() && queue_.PeekTime() <= time) Step();
    if (now_ < time) {
      if (telemetry_ != nullptr) SampleTelemetry(time);
      now_ = time;
    }
  }

  // --- kernel counters --------------------------------------------------
  /// Number of events processed so far.
  uint64_t processed_events() const { return processed_; }
  /// Events currently pending.
  std::size_t queue_depth() const { return queue_.size(); }
  /// High-water mark of pending events over the run.
  std::size_t peak_queue_depth() const { return peak_depth_; }
  /// Calendar-queue bucket-array rebuilds (0 under the heap).
  uint64_t calendar_resizes() const { return queue_.resizes(); }
  /// Which queue implementation this simulator runs on.
  EventQueueKind event_queue_kind() const { return queue_.kind(); }

  /// Optional trace sink (see sim/trace.h), not owned. Instrumented
  /// components test `trace()` for null before recording, so a simulator
  /// without a sink pays one predictable branch per event site.
  TraceSink* trace() const { return trace_; }
  void set_trace(TraceSink* sink) { trace_ = sink; }

  /// Optional telemetry sampler (see sim/telemetry.h), not owned. Like the
  /// trace sink, a simulator without one pays a single predictable branch
  /// per Step; with one attached, sampling is a pure read of simulation
  /// state and never perturbs event order or results.
  TelemetrySampler* telemetry() const { return telemetry_; }
  void set_telemetry(TelemetrySampler* sampler) { telemetry_ = sampler; }

  /// Suspends the awaiting coroutine for `delay` ms of virtual time.
  /// A non-positive delay does not suspend; NaN fails the schedule check.
  auto Delay(double delay) {
    struct Awaiter {
      Simulator& sim;
      double delay;
      bool await_ready() const noexcept { return delay <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) { sim.Resume(delay, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, delay};
  }

 private:
  /// Out-of-line AdvanceTo (TelemetrySampler is incomplete here).
  void SampleTelemetry(double time);

  void Push(double time, Event& ev) {
    ev.time = time;
    ev.seq = next_seq_++;
    queue_.Push(ev);
    if (queue_.size() > peak_depth_) peak_depth_ = queue_.size();
  }

  double now_ = 0.0;
  TraceSink* trace_ = nullptr;
  TelemetrySampler* telemetry_ = nullptr;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  std::size_t peak_depth_ = 0;
  EventQueue queue_;
};

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_SIMULATOR_H_

#ifndef DIMSUM_SIM_SIMULATOR_H_
#define DIMSUM_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"

namespace dimsum::sim {

class Process;
class TraceSink;

/// Discrete-event simulation kernel.
///
/// Keeps a virtual clock (milliseconds) and a priority queue of events.
/// Events are either coroutine resumptions or plain callbacks. Ties are
/// broken by insertion order, so runs are fully deterministic.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in milliseconds.
  double now() const { return now_; }

  /// Schedules `handle` to be resumed `delay` ms from now.
  void Resume(double delay, std::coroutine_handle<> handle) {
    DIMSUM_CHECK_GE(delay, 0.0);
    DIMSUM_CHECK(handle);
    queue_.push(Entry{now_ + delay, next_seq_++, handle, nullptr});
  }

  /// Schedules `fn` to run `delay` ms from now.
  void Call(double delay, std::function<void()> fn) {
    DIMSUM_CHECK_GE(delay, 0.0);
    DIMSUM_CHECK(fn);
    queue_.push(Entry{now_ + delay, next_seq_++, nullptr, std::move(fn)});
  }

  /// Starts a detached process; see sim/task.h.
  void Spawn(Process process);

  /// Starts a detached process and invokes `on_done` when it completes.
  void Spawn(Process process, std::function<void()> on_done);

  /// Processes the next event. Returns false if the queue is empty.
  bool Step();

  /// Runs until no events remain.
  void Run();

  /// Runs until the clock reaches `time` (events at exactly `time` are
  /// processed) or the queue empties.
  void RunUntil(double time);

  /// Number of events processed so far.
  uint64_t processed_events() const { return processed_; }

  /// Optional trace sink (see sim/trace.h), not owned. Instrumented
  /// components test `trace()` for null before recording, so a simulator
  /// without a sink pays one predictable branch per event site.
  TraceSink* trace() const { return trace_; }
  void set_trace(TraceSink* sink) { trace_ = sink; }

  /// Suspends the awaiting coroutine for `delay` ms of virtual time.
  /// A non-positive delay does not suspend.
  auto Delay(double delay) {
    struct Awaiter {
      Simulator& sim;
      double delay;
      bool await_ready() const noexcept { return delay <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) { sim.Resume(delay, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, delay};
  }

 private:
  struct Entry {
    double time;
    uint64_t seq;
    std::coroutine_handle<> handle;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  TraceSink* trace_ = nullptr;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_SIMULATOR_H_

#include "sim/span.h"

namespace dimsum::sim {

std::vector<std::vector<const Span*>> SpansByOp(const QuerySpans& q) {
  std::vector<std::vector<const Span*>> by_op(
      static_cast<std::size_t>(q.num_ops > 0 ? q.num_ops : 0));
  for (const Span& span : q.spans) {
    if (span.op >= 0 && span.op < q.num_ops) {
      by_op[static_cast<std::size_t>(span.op)].push_back(&span);
    }
  }
  return by_op;
}

}  // namespace dimsum::sim

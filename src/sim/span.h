#ifndef DIMSUM_SIM_SPAN_H_
#define DIMSUM_SIM_SPAN_H_

#include <cstdint>
#include <vector>

namespace dimsum::sim {

/// Out-parameter a caller threads into Resource::Use / Disk::Read /
/// Network::Transfer to learn how one request's elapsed time split into
/// queueing and service. The primitives write it ADDITIVELY with plain
/// memory stores at their existing dispatch points, so threading a ReqStats
/// through never changes event timing -- the non-perturbation contract
/// (DESIGN.md §8/§9). Additive accumulation lets one probe window cover a
/// multi-request sequence (e.g. a retransmit loop issuing several
/// transfers): service sums across requests and the remainder of the
/// window is queueing.
struct ReqStats {
  double wait_ms = 0.0;     ///< time queued before service began
  double service_ms = 0.0;  ///< pure (scaled) service time
};

/// What a span's interval was spent on.
enum class SpanKind : uint8_t {
  kCpu = 0,     ///< CPU acquisition (queueing + service)
  kDisk,        ///< disk read/write acquisition (cache hits included)
  kNet,         ///< network transfer (queueing + wire time + retransmits)
  kMemory,      ///< waiting for buffer-pool frames
  kChannel,     ///< blocked on a pipeline channel Put/Get (wake edge to peer)
  kFaultStall,  ///< stalled waiting for a crashed site to restart
};

/// One contiguous virtual-time interval attributed to an operator timeline.
/// An operator process is serial, so the spans of one timeline never
/// overlap; together they cover every instant the operator was blocked
/// (between co_awaits no virtual time passes).
struct Span {
  int op = -1;              ///< owning timeline: pre-order plan-operator id,
                            ///< or a synthetic id for a net send/recv process
  double begin_ms = 0.0;
  double end_ms = 0.0;
  SpanKind kind = SpanKind::kCpu;
  double service_ms = 0.0;  ///< trailing part of the interval that was pure
                            ///< service; the leading remainder is queueing
  int site = -1;            ///< site owning the resource (-1: network / none)
  int peer_op = -1;         ///< kChannel only: the timeline on the other end
                            ///< of the channel (the causal wake edge)
};

/// Every span recorded for one query, plus the envelope the critical-path
/// walk needs. Owned by the executor's per-query state, NOT by ExecMetrics,
/// so the metrics struct stays bit-identical with capture on or off.
struct QuerySpans {
  double start_ms = 0.0;     ///< submit instant (operator processes spawn here)
  double complete_ms = 0.0;  ///< display-operator completion instant
  int root_op = 0;           ///< the display operator's timeline id
  int num_ops = 0;           ///< total timelines (plan ops + synthetic net ops)
  std::vector<Span> spans;   ///< recording order; per-timeline sorted, disjoint
};

/// Buckets `q.spans` by owning timeline, preserving recording order (which
/// per timeline is begin-sorted, since processes are serial). Spans with an
/// out-of-range op id are dropped.
std::vector<std::vector<const Span*>> SpansByOp(const QuerySpans& q);

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_SPAN_H_

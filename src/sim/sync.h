#ifndef DIMSUM_SIM_SYNC_H_
#define DIMSUM_SIM_SYNC_H_

#include <coroutine>
#include <vector>

#include "common/check.h"
#include "sim/simulator.h"

namespace dimsum::sim {

/// One-shot broadcast event. Waiters suspend until Set() is called; setting
/// schedules all waiters for resumption at the current virtual time.
class Signal {
 public:
  explicit Signal(Simulator& sim) : sim_(sim) {}
  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  bool is_set() const { return set_; }

  void Set() {
    if (set_) return;
    set_ = true;
    for (auto handle : waiters_) sim_.Resume(0.0, handle);
    waiters_.clear();
  }

  auto Wait() {
    struct Awaiter {
      Signal& signal;
      bool await_ready() const noexcept { return signal.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        signal.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counter with the ability to await the value dropping to zero. Used for
/// flush barriers (e.g., waiting for all write-behind disk I/O to finish).
class ZeroCounter {
 public:
  explicit ZeroCounter(Simulator& sim) : sim_(sim) {}
  ZeroCounter(const ZeroCounter&) = delete;
  ZeroCounter& operator=(const ZeroCounter&) = delete;

  int64_t value() const { return value_; }

  void Increment() { ++value_; }

  void Decrement() {
    DIMSUM_CHECK_GT(value_, 0);
    if (--value_ == 0) {
      for (auto handle : waiters_) sim_.Resume(0.0, handle);
      waiters_.clear();
    }
  }

  /// Suspends until the counter is zero (ready immediately if it already is).
  auto AwaitZero() {
    struct Awaiter {
      ZeroCounter& counter;
      bool await_ready() const noexcept { return counter.value_ == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        counter.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  int64_t value_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_SYNC_H_

#ifndef DIMSUM_SIM_TASK_H_
#define DIMSUM_SIM_TASK_H_

#include <coroutine>
#include <cstddef>
#include <functional>
#include <optional>
#include <utility>

#include "common/check.h"
#include "sim/frame_pool.h"

namespace dimsum::sim {

/// Routes a coroutine type's frame allocations through the thread-local
/// FramePool (size-bucketed freelists) instead of global new/delete.
/// Inherited by every promise type below: operator-pipeline simulations
/// create a Task frame per page hand-off, so recycling frames removes an
/// allocator round-trip from the kernel's hottest path.
struct PooledFrame {
  static void* operator new(std::size_t bytes) {
    return FramePool::ThisThread().Allocate(bytes);
  }
  static void operator delete(void* ptr, std::size_t bytes) noexcept {
    FramePool::ThisThread().Deallocate(ptr, bytes);
  }
};

/// Lazily-started coroutine returning a value of type T. `Task` is the
/// building block for nested simulation logic: an operator's `Next()`
/// returns a Task which the caller co_awaits. Resuming the innermost
/// suspended leaf (a Delay, Resource grant, or Channel hand-off) resumes
/// the whole logical call stack via symmetric transfer.
///
/// Exceptions are not supported (the library does not use them); an
/// escaping exception terminates the program.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) const noexcept {
      auto continuation = h.promise().continuation;
      return continuation ? continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  struct promise_type : PooledFrame {
    std::coroutine_handle<> continuation;
    std::optional<T> value;

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void return_value(T v) { value.emplace(std::move(v)); }
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
    handle_.promise().continuation = caller;
    return handle_;
  }
  T await_resume() {
    DIMSUM_CHECK(handle_.promise().value.has_value());
    return std::move(*handle_.promise().value);
  }

 private:
  explicit Task(Handle handle) : handle_(handle) {}
  Handle handle_;
};

/// Task<void> specialization.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) const noexcept {
      auto continuation = h.promise().continuation;
      return continuation ? continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  struct promise_type : PooledFrame {
    std::coroutine_handle<> continuation;

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
    handle_.promise().continuation = caller;
    return handle_;
  }
  void await_resume() const noexcept {}

 private:
  explicit Task(Handle handle) : handle_(handle) {}
  Handle handle_;
};

/// Detached top-level coroutine. A Process is created suspended and is
/// started by Simulator::Spawn; once running, its frame self-destructs on
/// completion (after invoking the optional on_done callback installed by
/// Spawn). A Process that is never spawned is destroyed with its token.
class Process {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    promise_type* promise;
    // Runs the completion hook, then lets the coroutine finish without
    // suspending so the frame is destroyed automatically.
    bool await_ready() const noexcept;
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };

  struct promise_type : PooledFrame {
    std::function<void()> on_done;

    Process get_return_object() { return Process(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return FinalAwaiter{this}; }
    void return_void() const noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  Process(Process&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Process() {
    if (handle_) handle_.destroy();
  }

  /// Releases ownership of the coroutine handle (used by Spawn). After the
  /// handle is resumed the frame manages its own lifetime.
  Handle Release() { return std::exchange(handle_, {}); }

 private:
  explicit Process(Handle handle) : handle_(handle) {}
  Handle handle_;
};

inline bool Process::FinalAwaiter::await_ready() const noexcept {
  if (promise->on_done) promise->on_done();
  return true;  // never suspend: frame is destroyed on return
}

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_TASK_H_

#include "sim/telemetry.h"

#include <fstream>
#include <utility>

#include "common/check.h"
#include "common/json.h"
#include "sim/trace.h"

namespace dimsum::sim {

TelemetrySampler::TelemetrySampler(double interval_ms)
    : interval_ms_(interval_ms), next_boundary_ms_(interval_ms) {
  DIMSUM_CHECK_GT(interval_ms, 0.0);
}

void TelemetrySampler::AddCumulative(int pid, int site, std::string resource,
                                     const char* metric, Reader reader) {
  DIMSUM_CHECK(!finalized_);
  DIMSUM_CHECK(times_ms_.empty()) << "register probes before the run";
  Series s;
  s.pid = pid;
  s.site = site;
  s.resource = std::move(resource);
  s.metric = metric;
  s.kind = Kind::kRate;
  s.reader = std::move(reader);
  s.last_total = s.reader();
  series_.push_back(std::move(s));
}

void TelemetrySampler::AddGauge(int pid, int site, std::string resource,
                                const char* metric, Reader reader) {
  DIMSUM_CHECK(!finalized_);
  DIMSUM_CHECK(times_ms_.empty()) << "register probes before the run";
  Series s;
  s.pid = pid;
  s.site = site;
  s.resource = std::move(resource);
  s.metric = metric;
  s.kind = Kind::kGauge;
  s.reader = std::move(reader);
  series_.push_back(std::move(s));
}

void TelemetrySampler::Sample(double boundary_ms, double dt_ms) {
  DIMSUM_CHECK_GT(dt_ms, 0.0);
  times_ms_.push_back(boundary_ms);
  for (Series& s : series_) {
    if (s.kind == Kind::kRate) {
      const double total = s.reader();
      s.values.push_back((total - s.last_total) / dt_ms);
      s.last_total = total;
    } else {
      s.values.push_back(s.reader());
    }
  }
  last_sample_ms_ = boundary_ms;
}

void TelemetrySampler::AdvanceTo(double time) {
  if (finalized_) return;
  // State is piecewise-constant over (last event, time]; reading the
  // probes now yields the exact value at every boundary in that window.
  while (next_boundary_ms_ <= time) {
    Sample(next_boundary_ms_, next_boundary_ms_ - last_sample_ms_);
    next_boundary_ms_ += interval_ms_;
  }
}

void TelemetrySampler::Finalize(double end_ms) {
  DIMSUM_CHECK(!finalized_);
  AdvanceTo(end_ms);
  if (end_ms > last_sample_ms_) Sample(end_ms, end_ms - last_sample_ms_);
  end_ms_ = end_ms;
  finalized_ = true;
}

double TelemetrySampler::RateIntegralMs(int site, const std::string& resource,
                                        const std::string& metric) const {
  for (const Series& s : series_) {
    if (s.site != site || s.resource != resource || metric != s.metric ||
        s.kind != Kind::kRate) {
      continue;
    }
    double integral = 0.0;
    double prev = 0.0;
    for (std::size_t k = 0; k < s.values.size(); ++k) {
      integral += s.values[k] * (times_ms_[k] - prev);
      prev = times_ms_[k];
    }
    return integral;
  }
  DIMSUM_CHECK(false) << "no rate series (site=" << site << ", " << resource
                      << ", " << metric << ")";
  return 0.0;
}

void TelemetrySampler::WriteJson(std::ostream& out) const {
  out << "{\"schema\":\"dimsum.telemetry.v1\",\"interval_ms\":";
  JsonWriteNumber(out, interval_ms_);
  out << ",\"end_ms\":";
  JsonWriteNumber(out, end_ms_);
  out << ",\"num_samples\":" << times_ms_.size() << ",\"times_ms\":[";
  for (std::size_t k = 0; k < times_ms_.size(); ++k) {
    if (k > 0) out << ",";
    JsonWriteNumber(out, times_ms_[k]);
  }
  out << "],\"series\":[";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const Series& s = series_[i];
    if (i > 0) out << ",";
    out << "{\"pid\":" << s.pid << ",\"site\":" << s.site
        << ",\"resource\":\"" << JsonEscape(s.resource) << "\",\"metric\":\""
        << JsonEscape(s.metric) << "\",\"kind\":\""
        << (s.kind == Kind::kRate ? "rate" : "gauge") << "\"";
    if (s.kind == Kind::kRate) {
      out << ",\"integral_ms\":";
      JsonWriteNumber(out, RateIntegralMs(s.site, s.resource, s.metric));
    }
    out << ",\"values\":[";
    for (std::size_t k = 0; k < s.values.size(); ++k) {
      if (k > 0) out << ",";
      JsonWriteNumber(out, s.values[k]);
    }
    out << "]}";
  }
  out << "]}\n";
}

bool TelemetrySampler::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  WriteJson(out);
  return out.good();
}

void TelemetrySampler::ExportCounterTracks(TraceSink& trace) const {
  for (const Series& s : series_) {
    for (std::size_t k = 0; k < s.values.size(); ++k) {
      trace.CounterSample(s.pid, s.resource + " telemetry", times_ms_[k],
                          s.metric, s.values[k]);
    }
  }
}

}  // namespace dimsum::sim

#ifndef DIMSUM_SIM_TELEMETRY_H_
#define DIMSUM_SIM_TELEMETRY_H_

// Virtual-time utilization sampler. Records per-site, per-resource time
// series (utilization, queueing intensity, queue depth, in-service flags,
// buffer-pool occupancy, admission-control gauges) at a fixed virtual-time
// interval, driven by the DES clock.
//
// Non-perturbation contract (see DESIGN.md §8): the sampler NEVER
// schedules a simulation event. The kernel calls AdvanceTo(t) from
// Simulator::Step() *before* the clock advances to the next event's time,
// and the sampler reads its probes at every interval boundary crossed.
// Because all simulation state is piecewise-constant between events, the
// boundary reads are exact, and event times, sequence numbers, and every
// simulation result are bit-identical with sampling on or off (asserted by
// tests/exec/telemetry_exec_test.cc).
//
// Two probe kinds:
//  - cumulative: the reader returns a non-decreasing running total (e.g. a
//    resource's busy_ms or wait_ms). Each sample is the total's delta over
//    the interval divided by the interval length -- utilization for busy
//    time, mean queue length (Little's law) for wait time. The busy-time
//    integral identity Sum(v_k * dt_k) == total(end) - total(0) holds
//    exactly by construction and is cross-checked against independently
//    reported BatchTotals in tests.
//  - gauge: the reader returns an instantaneous value (queue depth, free
//    frames, in-flight count), sampled at each boundary.

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace dimsum::sim {

class TraceSink;

class TelemetrySampler {
 public:
  using Reader = std::function<double()>;

  /// `interval_ms` is the virtual-time sampling period (must be > 0).
  explicit TelemetrySampler(double interval_ms = 10.0);
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  double interval_ms() const { return interval_ms_; }

  // --- probe registration (before the simulation runs) ------------------
  // `pid` is the trace-process id used for Perfetto counter export (site
  // id for site resources; the executor assigns network/driver pids past
  // the sites). `site` is the owning SiteId, or -1 for shared/systemwide
  // series. `metric` must be a string literal (kept by pointer, like
  // TraceSink categories). The reader is called at interval boundaries
  // only; it must be a pure read of simulation state. Cumulative probes
  // capture the reader's current value as the baseline at registration.
  void AddCumulative(int pid, int site, std::string resource,
                     const char* metric, Reader reader);
  void AddGauge(int pid, int site, std::string resource, const char* metric,
                Reader reader);

  // --- kernel hook ------------------------------------------------------
  /// Samples every interval boundary in (last, time]. Called by
  /// Simulator::Step() before the clock advances to `time`, and by
  /// RunUntil() for quiet tails; user code normally never calls this.
  void AdvanceTo(double time);

  /// Closes the series at `end_ms`: emits one final partial-interval
  /// sample covering (last boundary, end_ms] when the tail is non-empty.
  /// Must be called exactly once, after the simulation has drained.
  void Finalize(double end_ms);
  bool finalized() const { return finalized_; }

  // --- accessors --------------------------------------------------------
  std::size_t num_series() const { return series_.size(); }
  std::size_t num_samples() const { return times_ms_.size(); }
  double end_ms() const { return end_ms_; }

  /// Integral Sum(v_k * dt_k) of a rate series over the sampled span; for
  /// a cumulative probe this equals total(end) - total(registration) and
  /// is the left side of the busy-time self-check. Check-fails when no
  /// such series exists.
  double RateIntegralMs(int site, const std::string& resource,
                        const std::string& metric) const;

  // --- export -----------------------------------------------------------
  /// One JSON object with schema "dimsum.telemetry.v1":
  ///   {"schema":"dimsum.telemetry.v1","interval_ms":..,"end_ms":..,
  ///    "num_samples":N,"times_ms":[..],
  ///    "series":[{"pid","site","resource","metric","kind":"rate"|"gauge",
  ///               "integral_ms","values":[..]}, ...]}
  /// Every series' values array aligns with times_ms (sample k covers
  /// (times_ms[k-1], times_ms[k]]).
  void WriteJson(std::ostream& out) const;
  /// Writes the JSON document to `path`; false if the file cannot be
  /// opened.
  bool WriteJsonFile(const std::string& path) const;

  /// Re-emits every series as Perfetto counter samples on its pid (one
  /// counter track per resource, one line per metric), so utilization and
  /// queue depth plot alongside the existing span tracks in the viewer.
  /// Call after Finalize, once the run is over -- export is offline and
  /// never touches the simulation.
  void ExportCounterTracks(TraceSink& trace) const;

 private:
  enum class Kind { kRate, kGauge };

  struct Series {
    int pid = 0;
    int site = -1;
    std::string resource;
    const char* metric = "";
    Kind kind = Kind::kGauge;
    Reader reader;
    double last_total = 0.0;  // cumulative probes: value at last boundary
    std::vector<double> values;
  };

  void Sample(double boundary_ms, double dt_ms);

  double interval_ms_;
  double next_boundary_ms_;
  double last_sample_ms_ = 0.0;
  double end_ms_ = 0.0;
  bool finalized_ = false;
  std::vector<Series> series_;
  std::vector<double> times_ms_;
};

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_TELEMETRY_H_

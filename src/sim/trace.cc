#include "sim/trace.h"

#include <algorithm>
#include <fstream>

#include "common/json.h"

namespace dimsum::sim {

void TraceSink::SetProcessName(int pid, const std::string& name) {
  process_names_[pid] = name;
}

int TraceSink::NewTrack(int pid, const std::string& name) {
  const int tid = next_tid_[pid]++;
  track_names_[{pid, tid}] = name;
  return tid;
}

void TraceSink::Complete(int pid, int tid, std::string name,
                         const char* category, double begin_ms, double end_ms,
                         std::vector<Arg> args) {
  events_.push_back(Event{'X', pid, tid, begin_ms,
                          std::max(0.0, end_ms - begin_ms), std::move(name),
                          category, nullptr, 0.0, std::move(args)});
}

void TraceSink::Instant(int pid, int tid, std::string name,
                        const char* category, double ts_ms,
                        std::vector<Arg> args) {
  events_.push_back(Event{'i', pid, tid, ts_ms, 0.0, std::move(name),
                          category, nullptr, 0.0, std::move(args)});
}

void TraceSink::CounterSample(int pid, std::string name, double ts_ms,
                              const char* series, double value) {
  events_.push_back(Event{'C', pid, /*tid=*/0, ts_ms, 0.0, std::move(name),
                          nullptr, series, value, {}});
}

void TraceSink::FlowStart(int pid, int tid, std::string name,
                          const char* category, double ts_ms,
                          uint64_t flow_id) {
  events_.push_back(Event{'s', pid, tid, ts_ms, 0.0, std::move(name),
                          category, nullptr, 0.0, {}, flow_id});
}

void TraceSink::FlowEnd(int pid, int tid, std::string name,
                        const char* category, double ts_ms,
                        uint64_t flow_id) {
  events_.push_back(Event{'f', pid, tid, ts_ms, 0.0, std::move(name),
                          category, nullptr, 0.0, {}, flow_id});
}

namespace {

/// Virtual milliseconds -> trace microseconds.
double ToTraceUs(double ms) { return ms * 1000.0; }

}  // namespace

void TraceSink::WriteEvent(std::ostream& out, const Event& event) const {
  out << "{\"name\": \"" << JsonEscape(event.name) << "\", \"ph\": \""
      << event.phase << "\", \"pid\": " << event.pid
      << ", \"tid\": " << event.tid << ", \"ts\": ";
  JsonWriteNumber(out, ToTraceUs(event.ts_ms));
  if (event.phase == 'X') {
    out << ", \"dur\": ";
    JsonWriteNumber(out, ToTraceUs(event.dur_ms));
  }
  if (event.category != nullptr) {
    out << ", \"cat\": \"" << JsonEscape(event.category) << "\"";
  }
  if (event.phase == 'i') {
    out << ", \"s\": \"t\"";  // instant scope: thread
  }
  if (event.phase == 's' || event.phase == 'f') {
    out << ", \"id\": " << event.flow_id;
    // Bind the finish end to its enclosing slice so the viewer draws the
    // arrow into the consumer's span rather than the next slice.
    if (event.phase == 'f') out << ", \"bp\": \"e\"";
  }
  if (event.phase == 'C') {
    out << ", \"args\": {\"" << JsonEscape(event.series) << "\": ";
    JsonWriteNumber(out, event.value);
    out << "}";
  } else if (!event.args.empty()) {
    out << ", \"args\": {";
    for (std::size_t i = 0; i < event.args.size(); ++i) {
      if (i > 0) out << ", ";
      out << "\"" << JsonEscape(event.args[i].first) << "\": ";
      JsonWriteNumber(out, event.args[i].second);
    }
    out << "}";
  }
  out << "}";
}

void TraceSink::WriteJson(std::ostream& out) const {
  out << "{\"traceEvents\": [\n";
  bool first = true;
  auto separator = [&] {
    out << (first ? "  " : ",\n  ");
    first = false;
  };
  // Metadata: process and thread names.
  for (const auto& [pid, name] : process_names_) {
    separator();
    out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
        << ", \"tid\": 0, \"args\": {\"name\": \"" << JsonEscape(name)
        << "\"}}";
  }
  for (const auto& [key, name] : track_names_) {
    separator();
    out << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << key.first
        << ", \"tid\": " << key.second << ", \"args\": {\"name\": \""
        << JsonEscape(name) << "\"}}";
  }
  // Events in timestamp order (stable, so same-time events keep their
  // recording order); span timestamps are span *begins*.
  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const Event& event : events_) ordered.push_back(&event);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) {
                     return a->ts_ms < b->ts_ms;
                   });
  for (const Event* event : ordered) {
    separator();
    WriteEvent(out, *event);
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

bool TraceSink::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  WriteJson(out);
  return true;
}

}  // namespace dimsum::sim

#ifndef DIMSUM_SIM_TRACE_H_
#define DIMSUM_SIM_TRACE_H_

// Per-Simulator trace sink. Instrumented layers record begin/end spans and
// instant events stamped with *virtual* time; WriteJson emits Chrome
// trace-event JSON (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
// so a run opens directly in Perfetto or chrome://tracing. Mapping:
//   virtual milliseconds -> trace microseconds (x1000)
//   sites               -> trace processes (pid)
//   resources/operators -> trace threads (tid) within their site
//
// A simulator with no sink attached (the default) costs instrumented code
// one branch per event site; see bench/micro_observability.cpp for the
// bound on that overhead. Recording is purely observational: attaching a
// sink never changes simulation results (asserted by
// tests/exec/observability_test.cc).

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace dimsum::sim {

class TraceSink {
 public:
  /// One (key, value) annotation on an event; keys must be string
  /// literals (they are not copied).
  using Arg = std::pair<const char*, double>;

  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // --- track registration -----------------------------------------------
  /// Names a trace process (a simulated site, or the shared network).
  void SetProcessName(int pid, const std::string& name);
  /// Allocates the next thread id within `pid` and names it. Tracks are
  /// how resources and operators get their own rows in the viewer.
  int NewTrack(int pid, const std::string& name);

  // --- event recording (all times in virtual milliseconds) --------------
  /// A span [begin_ms, end_ms] on a track. `category` (and Arg keys) must
  /// be string literals; `name` is copied.
  void Complete(int pid, int tid, std::string name, const char* category,
                double begin_ms, double end_ms,
                std::vector<Arg> args = {});
  /// A point event on a track.
  void Instant(int pid, int tid, std::string name, const char* category,
               double ts_ms, std::vector<Arg> args = {});
  /// A sampled counter series (rendered as a graph row in the viewer).
  void CounterSample(int pid, std::string name, double ts_ms,
                     const char* series, double value);
  /// One end of a flow arrow linking two tracks (Perfetto draws an arrow
  /// from the 's' event to the 'f' event with the same `flow_id`). Used to
  /// make channel producer->consumer handoffs visible as causal edges.
  /// The enclosing slice on the same track binds the arrow endpoint.
  void FlowStart(int pid, int tid, std::string name, const char* category,
                 double ts_ms, uint64_t flow_id);
  void FlowEnd(int pid, int tid, std::string name, const char* category,
               double ts_ms, uint64_t flow_id);

  std::size_t num_events() const { return events_.size(); }

  // --- export ------------------------------------------------------------
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}; metadata first, then
  /// events sorted by timestamp (stable), virtual ms scaled to trace us.
  void WriteJson(std::ostream& out) const;
  /// Writes the JSON document to `path`; false if the file cannot be
  /// opened.
  bool WriteJsonFile(const std::string& path) const;

 private:
  struct Event {
    char phase;        // 'X' complete, 'i' instant, 'C' counter,
                       // 's'/'f' flow start/finish
    int pid;
    int tid;
    double ts_ms;
    double dur_ms;     // 'X' only
    std::string name;
    const char* category;  // null for counters
    const char* series;    // 'C' only
    double value;          // 'C' only
    std::vector<Arg> args;
    uint64_t flow_id = 0;  // 's'/'f' only
  };

  void WriteEvent(std::ostream& out, const Event& event) const;

  std::vector<Event> events_;
  std::map<int, std::string> process_names_;
  // (pid, tid) -> name, insertion-ordered per pid by tid.
  std::map<std::pair<int, int>, std::string> track_names_;
  std::map<int, int> next_tid_;
};

}  // namespace dimsum::sim

#endif  // DIMSUM_SIM_TRACE_H_

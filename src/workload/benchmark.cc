#include "workload/benchmark.h"

#include <string>

#include "common/check.h"

namespace dimsum {
namespace {

Catalog MakeRelations(const WorkloadSpec& spec) {
  Catalog catalog(spec.num_clients);
  for (int i = 0; i < spec.num_relations; ++i) {
    const RelationId id = catalog.AddRelation(
        "R" + std::to_string(i), spec.tuples_per_relation, spec.tuple_bytes);
    const double fraction =
        i < spec.fully_cached_relations ? 1.0 : spec.cached_fraction;
    for (int c = 0; c < spec.num_clients; ++c) {
      catalog.SetCachedFraction(id, ClientSite(c), fraction);
    }
  }
  return catalog;
}

std::vector<RelationId> AllRelations(const WorkloadSpec& spec) {
  std::vector<RelationId> rels;
  for (int i = 0; i < spec.num_relations; ++i) rels.push_back(i);
  return rels;
}

/// Places `id` with its primary on `primary_server` plus
/// `spec.replication_degree - 1` extra copies on the following servers in
/// round-robin order. With `spec.shards > 1` the relation is instead
/// sharded over `shards` servers starting at the primary, with
/// `replication_degree` copies of each shard (chained declustering).
void PlaceReplicated(Catalog& catalog, const WorkloadSpec& spec,
                     RelationId id, int primary_server) {
  DIMSUM_CHECK_GE(spec.replication_degree, 1)
      << "replication degree must be at least 1";
  if (spec.shards > 1) {
    DIMSUM_CHECK_LE(spec.shards, spec.num_servers)
        << "cannot spread shards over more servers than exist";
    DIMSUM_CHECK_LE(spec.replication_degree, spec.shards)
        << "per-shard copies cannot exceed the shard count";
    std::vector<SiteId> sites;
    for (int k = 0; k < spec.shards; ++k) {
      sites.push_back(ServerSite((primary_server + k) % spec.num_servers,
                                 spec.num_clients));
    }
    catalog.ShardRelation(id, std::move(sites), spec.shard_scheme,
                          spec.replication_degree);
    return;
  }
  DIMSUM_CHECK_LE(spec.replication_degree, spec.num_servers)
      << "cannot place more copies than there are servers";
  for (int k = 0; k < spec.replication_degree; ++k) {
    catalog.PlaceRelation(
        id, ServerSite((primary_server + k) % spec.num_servers,
                       spec.num_clients));
  }
}

}  // namespace

BenchmarkWorkload MakeChainWorkload(const WorkloadSpec& spec, Rng& rng) {
  DIMSUM_CHECK_GE(spec.num_relations, spec.num_servers)
      << "each server must hold at least one relation";
  BenchmarkWorkload workload;
  workload.catalog = MakeRelations(spec);
  // Random placement with the constraint that every server holds at least
  // one relation: shuffle the relations, deal the first num_servers out to
  // distinct servers, place the rest uniformly at random.
  std::vector<RelationId> order = AllRelations(spec);
  rng.Shuffle(order);
  for (int i = 0; i < spec.num_relations; ++i) {
    const int primary =
        (i < spec.num_servers)
            ? i
            : static_cast<int>(rng.UniformInt(0, spec.num_servers - 1));
    PlaceReplicated(workload.catalog, spec, order[i], primary);
  }
  workload.query = QueryGraph::Chain(AllRelations(spec), spec.selectivity);
  return workload;
}

BenchmarkWorkload MakeChainWorkloadRoundRobin(const WorkloadSpec& spec) {
  DIMSUM_CHECK_GE(spec.num_relations, spec.num_servers)
      << "each server must hold at least one relation";
  BenchmarkWorkload workload;
  workload.catalog = MakeRelations(spec);
  for (int i = 0; i < spec.num_relations; ++i) {
    PlaceReplicated(workload.catalog, spec, i, i % spec.num_servers);
  }
  workload.query = QueryGraph::Chain(AllRelations(spec), spec.selectivity);
  return workload;
}

BenchmarkWorkload MakeCompleteWorkloadRoundRobin(const WorkloadSpec& spec) {
  BenchmarkWorkload workload = MakeChainWorkloadRoundRobin(spec);
  workload.query = QueryGraph::Complete(AllRelations(spec), spec.selectivity);
  return workload;
}

}  // namespace dimsum

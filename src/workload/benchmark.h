#ifndef DIMSUM_WORKLOAD_BENCHMARK_H_
#define DIMSUM_WORKLOAD_BENCHMARK_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "plan/query.h"

namespace dimsum {

/// The paper's benchmark workloads (Section 3.3): chain ("functional")
/// equijoins over relations of 10,000 tuples x 100 bytes (250 pages of
/// 4 KB). Moderate selectivity (factor 1.0) keeps every join result at
/// base-relation size; the HiSel variant uses factor 0.2.
struct BenchmarkWorkload {
  Catalog catalog;
  QueryGraph query;
};

/// Parameters of a benchmark instance.
struct WorkloadSpec {
  int num_relations = 2;
  int num_servers = 1;
  /// Number of client sites (sites 0..num_clients-1). Every client gets
  /// the same cached fractions; multi-client drivers can override
  /// per-client caching on the returned catalog afterwards.
  int num_clients = 1;
  /// Fraction of each relation cached (contiguous prefix) at each client.
  double cached_fraction = 0.0;
  /// Number of relations (lowest ids first) cached *in full* at the client,
  /// on top of `cached_fraction` for the rest -- the paper's Figure 7
  /// setting caches five of the ten relations this way.
  int fully_cached_relations = 0;
  /// Join selectivity factor: 1.0 moderate, 0.2 HiSel.
  double selectivity = 1.0;
  int64_t tuples_per_relation = 10000;
  int tuple_bytes = 100;
  /// Copies of every relation (1 = unreplicated). Extra copies go to the
  /// servers following the primary in round-robin order, so degree
  /// num_servers fully replicates. Must be in [1, num_servers]. With
  /// `shards > 1` this instead sets the per-shard copy count (chained
  /// declustering); it must then be in [1, shards].
  int replication_degree = 1;
  /// Horizontal shards per relation (1 = whole-relation placement). With
  /// K > 1 every relation is split into K shards dealt to K distinct
  /// servers starting at the relation's primary (requires
  /// shards <= num_servers and cached_fraction == 0 /
  /// fully_cached_relations == 0: sharding and client caching are
  /// mutually exclusive).
  int shards = 1;
  /// Partitioning scheme used when `shards > 1`.
  ShardScheme shard_scheme = ShardScheme::kRange;
};

/// Builds the benchmark with relations placed *randomly* among the servers,
/// ensuring every server holds at least one relation (requires
/// num_relations >= num_servers). This is the placement model of the
/// paper's multi-server experiments (Section 4.3).
BenchmarkWorkload MakeChainWorkload(const WorkloadSpec& spec, Rng& rng);

/// Deterministic round-robin placement (relation i on server i % servers);
/// convenient for unit tests and examples.
BenchmarkWorkload MakeChainWorkloadRoundRobin(const WorkloadSpec& spec);

/// Complete-graph ("all joinable") variant used by the Section 5 data-
/// migration example.
BenchmarkWorkload MakeCompleteWorkloadRoundRobin(const WorkloadSpec& spec);

}  // namespace dimsum

#endif  // DIMSUM_WORKLOAD_BENCHMARK_H_

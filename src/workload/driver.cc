#include "workload/driver.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "opt/two_step.h"
#include "plan/binding.h"
#include "sim/fault.h"

namespace dimsum {
namespace {

/// Shared state of one run, referenced by every client coroutine. Lives in
/// RunClosedLoop's frame, which outlives session.Run().
struct RunState {
  ExecSession& session;
  const Catalog& catalog;
  const RetryPolicy& retry;
  int page_bytes;
  DriverResult* result;
  /// Owns plans produced by recovery re-optimization, so adopted plans
  /// stay alive for the queries still running on them.
  std::vector<std::unique_ptr<Plan>> replanned;
};

/// One closed-loop client: submit, await completion, think, repeat.
/// Records each completion into the shared result at its completion
/// instant, so the global completion order falls directly out of the
/// event order. With a fault schedule, each submission first runs crash
/// detection and recovery (see RetryPolicy).
sim::Process ClientProcess(RunState& run, const ClientWorkload& work,
                           SiteId client, int queries, double think_mean_ms,
                           Rng rng) {
  sim::Simulator& sim = run.session.sim();
  const Plan* plan = work.plan;
  for (int i = 0; i < queries; ++i) {
    if (i > 0 && think_mean_ms > 0.0) {
      co_await sim.Delay(rng.Exponential(think_mean_ms));
    }
    int attempts = 0;
    sim::FaultState* faults = run.session.faults();
    if (faults != nullptr) {
      double backoff_ms = run.retry.backoff_base_ms;
      while (true) {
        std::vector<SiteId> down;
        for (const SiteId site :
             BoundServerSites(*plan, run.catalog, run.page_bytes)) {
          if (faults->SiteDown(site, sim.now())) down.push_back(site);
        }
        if (down.empty()) break;
        // The submission attempt times out against the crashed site.
        ++attempts;
        ++run.result->total_retries;
        co_await sim.Delay(run.retry.detect_timeout_ms);
        if (run.retry.reoptimize && work.reopt_model != nullptr &&
            work.reopt_config != nullptr) {
          OptimizerConfig reopt = *work.reopt_config;
          reopt.unavailable_sites = faults->DownSites(sim.now());
          Rng opt_rng = rng.Fork();
          OptimizeResult selected = TwoStepSiteSelection(
              *work.reopt_model, *work.plan, *work.query, reopt, opt_rng);
          ++run.result->total_reopts;
          auto candidate = std::make_unique<Plan>(std::move(selected.plan));
          BindSites(*candidate, run.catalog, client);
          bool avoids_down = true;
          for (const SiteId site :
               BoundServerSites(*candidate, run.catalog, run.page_bytes)) {
            if (faults->SiteDown(site, sim.now())) avoids_down = false;
          }
          if (avoids_down) {
            plan = candidate.get();
            run.replanned.push_back(std::move(candidate));
            continue;  // re-check and submit the recovered plan
          }
        }
        if (attempts >= run.retry.max_retries) {
          // Out of retries; wait for the first blocking site to restart
          // (queries are never abandoned).
          while (faults->SiteDown(down.front(), sim.now())) {
            co_await sim.Delay(faults->SiteUpAt(down.front(), sim.now()) -
                               sim.now());
          }
          continue;
        }
        co_await sim.Delay(backoff_ms);
        backoff_ms =
            std::min(backoff_ms * run.retry.backoff_mult,
                     run.retry.backoff_cap_ms);
      }
    }
    const double submit_ms = sim.now();
    const int ticket = run.session.Submit(*plan, *work.query);
    if (static_cast<int>(run.result->query_client.size()) <= ticket) {
      run.result->query_client.resize(ticket + 1, kUnboundSite);
      run.result->retries_per_query.resize(ticket + 1, 0);
    }
    run.result->query_client[ticket] = client;
    run.result->retries_per_query[ticket] = attempts;
    co_await run.session.UntilDone(ticket);
    run.result->completions.push_back(
        Completion{ticket, client, submit_ms, sim.now()});
  }
}

}  // namespace

DriverResult RunClosedLoop(const std::vector<ClientWorkload>& clients,
                           const Catalog& catalog, const SystemConfig& config,
                           const DriverConfig& driver) {
  const int num_clients = static_cast<int>(clients.size());
  DIMSUM_CHECK_GE(num_clients, 1);
  DIMSUM_CHECK_EQ(num_clients, config.num_clients);
  DIMSUM_CHECK_EQ(num_clients, catalog.num_clients());
  DIMSUM_CHECK_GE(driver.queries_per_client, 1);
  DIMSUM_CHECK_GE(driver.think_time_mean_ms, 0.0);
  DIMSUM_CHECK_GE(driver.num_batches, 1);
  const int total = num_clients * driver.queries_per_client;
  DIMSUM_CHECK_LT(driver.warmup_queries, total)
      << "warmup must leave at least one measured completion";

  DriverResult result;
  ExecSession session(catalog, config, driver.seed);
  session.ExpectQueries(total);
  RunState run{session, catalog, driver.retry, config.params.page_bytes,
               &result, {}};
  Rng rng(driver.seed * 6364136223846793005ULL + 1442695040888963407ULL);
  for (int c = 0; c < num_clients; ++c) {
    const ClientWorkload& work = clients[c];
    DIMSUM_CHECK(work.plan != nullptr);
    DIMSUM_CHECK(work.query != nullptr);
    DIMSUM_CHECK(!work.plan->empty());
    DIMSUM_CHECK_EQ(work.plan->root()->bound_site, ClientSite(c))
        << "client " << c << "'s plan displays elsewhere";
    DIMSUM_CHECK_EQ(work.query->home_client, ClientSite(c));
    session.sim().Spawn(ClientProcess(run, work, ClientSite(c),
                                      driver.queries_per_client,
                                      driver.think_time_mean_ms, rng.Fork()));
  }
  session.Run();

  DIMSUM_CHECK_EQ(static_cast<int>(result.completions.size()), total);
  result.totals = session.Totals();
  result.per_query.reserve(total);
  for (int t = 0; t < total; ++t) {
    result.per_query.push_back(session.Metrics(t));
    result.fault_stall_ms += session.Metrics(t).fault_stall_ms;
    result.retransmits += session.Metrics(t).retransmits;
  }
  result.makespan_ms = result.completions.back().complete_ms;
  result.abort_rate =
      static_cast<double>(result.total_retries) /
      static_cast<double>(total + result.total_retries);

  // Steady-state estimation over the post-warmup completions, in global
  // completion order (the batch-means method over one merged output
  // stream).
  const int warmup = driver.warmup_queries;
  result.warmup_end_ms =
      warmup > 0 ? result.completions[warmup - 1].complete_ms : 0.0;
  result.measured = total - warmup;
  const double window_ms = result.makespan_ms - result.warmup_end_ms;
  result.throughput_qps =
      window_ms > 0.0 ? result.measured / window_ms * 1000.0 : 0.0;

  // Batch means: split the measured stream into num_batches contiguous
  // batches of floor(measured / num_batches) completions (at least one),
  // folding the remainder into the last batch.
  const int batch_size = std::max(1, result.measured / driver.num_batches);
  RunningStat overall;
  RunningStat batch;
  int in_batch = 0;
  int batches_done = 0;
  for (int i = warmup; i < total; ++i) {
    const Completion& c = result.completions[i];
    const double response_ms = c.complete_ms - c.submit_ms;
    overall.Add(response_ms);
    batch.Add(response_ms);
    ++in_batch;
    const bool last_batch = batches_done + 1 >= driver.num_batches;
    if (in_batch >= batch_size && !last_batch) {
      result.batch_means.Add(batch.mean());
      batch = RunningStat();
      in_batch = 0;
      ++batches_done;
    }
    // Availability-windowed split (faulted runs only): degraded when any
    // site was down somewhere in [submit, complete).
    if (session.faults() != nullptr) {
      if (session.faults()->AnySiteDownDuring(c.submit_ms, c.complete_ms)) {
        result.degraded_response_ms.Add(response_ms);
      } else {
        result.healthy_response_ms.Add(response_ms);
      }
    }
  }
  if (in_batch > 0) result.batch_means.Add(batch.mean());
  result.mean_response_ms = overall.mean();
  result.response_ci90_ms = result.batch_means.count() >= 2
                                ? result.batch_means.ConfidenceHalfWidth90()
                                : 0.0;
  result.healthy_ci90_ms =
      result.healthy_response_ms.count() >= 2
          ? result.healthy_response_ms.ConfidenceHalfWidth90()
          : 0.0;
  result.degraded_ci90_ms =
      result.degraded_response_ms.count() >= 2
          ? result.degraded_response_ms.ConfidenceHalfWidth90()
          : 0.0;

  MetricsRegistry& registry = MetricsRegistry::Global();
  if (registry.enabled() && session.faults() != nullptr) {
    registry.counter("faults.retries").Add(result.total_retries);
    registry.counter("faults.reopts").Add(result.total_reopts);
    registry.counter("faults.retransmits").Add(result.retransmits);
    registry.counter("faults.crashes").Add(result.totals.crashes);
    registry.gauge("faults.downtime_ms").Add(result.totals.crash_downtime_ms);
    registry.gauge("faults.stall_ms").Add(result.fault_stall_ms);
    if (config.collect_histograms && result.totals.downtime_ms.count() > 0) {
      registry.MergeHistogram("faults.downtime_ms_hist",
                              result.totals.downtime_ms);
    }
  }
  return result;
}

}  // namespace dimsum

#include "workload/driver.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace dimsum {
namespace {

/// One closed-loop client: submit, await completion, think, repeat.
/// Records each completion into `completions` at its completion instant,
/// so the global completion order falls directly out of the event order.
sim::Process ClientProcess(ExecSession& session, const ClientWorkload& work,
                           SiteId client, int queries, double think_mean_ms,
                           Rng rng, std::vector<Completion>* completions,
                           std::vector<SiteId>* query_client) {
  for (int i = 0; i < queries; ++i) {
    if (i > 0 && think_mean_ms > 0.0) {
      co_await session.sim().Delay(rng.Exponential(think_mean_ms));
    }
    const double submit_ms = session.sim().now();
    const int ticket = session.Submit(*work.plan, *work.query);
    if (static_cast<int>(query_client->size()) <= ticket) {
      query_client->resize(ticket + 1, kUnboundSite);
    }
    (*query_client)[ticket] = client;
    co_await session.UntilDone(ticket);
    completions->push_back(
        Completion{ticket, client, submit_ms, session.sim().now()});
  }
}

}  // namespace

DriverResult RunClosedLoop(const std::vector<ClientWorkload>& clients,
                           const Catalog& catalog, const SystemConfig& config,
                           const DriverConfig& driver) {
  const int num_clients = static_cast<int>(clients.size());
  DIMSUM_CHECK_GE(num_clients, 1);
  DIMSUM_CHECK_EQ(num_clients, config.num_clients);
  DIMSUM_CHECK_EQ(num_clients, catalog.num_clients());
  DIMSUM_CHECK_GE(driver.queries_per_client, 1);
  DIMSUM_CHECK_GE(driver.think_time_mean_ms, 0.0);
  DIMSUM_CHECK_GE(driver.num_batches, 1);
  const int total = num_clients * driver.queries_per_client;
  DIMSUM_CHECK_LT(driver.warmup_queries, total)
      << "warmup must leave at least one measured completion";

  DriverResult result;
  ExecSession session(catalog, config, driver.seed);
  session.ExpectQueries(total);
  Rng rng(driver.seed * 6364136223846793005ULL + 1442695040888963407ULL);
  for (int c = 0; c < num_clients; ++c) {
    const ClientWorkload& work = clients[c];
    DIMSUM_CHECK(work.plan != nullptr);
    DIMSUM_CHECK(work.query != nullptr);
    DIMSUM_CHECK(!work.plan->empty());
    DIMSUM_CHECK_EQ(work.plan->root()->bound_site, ClientSite(c))
        << "client " << c << "'s plan displays elsewhere";
    DIMSUM_CHECK_EQ(work.query->home_client, ClientSite(c));
    session.sim().Spawn(ClientProcess(
        session, work, ClientSite(c), driver.queries_per_client,
        driver.think_time_mean_ms, rng.Fork(), &result.completions,
        &result.query_client));
  }
  session.Run();

  DIMSUM_CHECK_EQ(static_cast<int>(result.completions.size()), total);
  result.totals = session.Totals();
  result.per_query.reserve(total);
  for (int t = 0; t < total; ++t) {
    result.per_query.push_back(session.Metrics(t));
  }
  result.makespan_ms = result.completions.back().complete_ms;

  // Steady-state estimation over the post-warmup completions, in global
  // completion order (the batch-means method over one merged output
  // stream).
  const int warmup = driver.warmup_queries;
  result.warmup_end_ms =
      warmup > 0 ? result.completions[warmup - 1].complete_ms : 0.0;
  result.measured = total - warmup;
  const double window_ms = result.makespan_ms - result.warmup_end_ms;
  result.throughput_qps =
      window_ms > 0.0 ? result.measured / window_ms * 1000.0 : 0.0;

  // Batch means: split the measured stream into num_batches contiguous
  // batches of floor(measured / num_batches) completions (at least one),
  // folding the remainder into the last batch.
  const int batch_size = std::max(1, result.measured / driver.num_batches);
  RunningStat overall;
  RunningStat batch;
  int in_batch = 0;
  int batches_done = 0;
  for (int i = warmup; i < total; ++i) {
    const Completion& c = result.completions[i];
    const double response_ms = c.complete_ms - c.submit_ms;
    overall.Add(response_ms);
    batch.Add(response_ms);
    ++in_batch;
    const bool last_batch = batches_done + 1 >= driver.num_batches;
    if (in_batch >= batch_size && !last_batch) {
      result.batch_means.Add(batch.mean());
      batch = RunningStat();
      in_batch = 0;
      ++batches_done;
    }
  }
  if (in_batch > 0) result.batch_means.Add(batch.mean());
  result.mean_response_ms = overall.mean();
  result.response_ci90_ms = result.batch_means.count() >= 2
                                ? result.batch_means.ConfidenceHalfWidth90()
                                : 0.0;
  return result;
}

}  // namespace dimsum

#include "workload/driver.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/bottleneck.h"
#include "core/critical_path.h"
#include "opt/cost_cache.h"
#include "opt/two_step.h"
#include "plan/binding.h"
#include "sim/fault.h"
#include "sim/trace.h"

namespace dimsum {

const char* ToString(ReplicaPolicy policy) {
  switch (policy) {
    case ReplicaPolicy::kFirstCopy:
      return "first-copy";
    case ReplicaPolicy::kRoundRobin:
      return "round-robin";
    case ReplicaPolicy::kLeastOutstanding:
      return "least-outstanding";
  }
  DIMSUM_UNREACHABLE();
}

namespace {

/// Memoizes plan signature hashes and server fan-outs per submitted plan
/// while building query-log records (plans repeat across tickets).
class PlanLogCache {
 public:
  PlanLogCache(const Catalog& catalog, int page_bytes)
      : catalog_(catalog), page_bytes_(page_bytes) {}

  uint64_t Signature(const Plan& plan) {
    auto [it, inserted] = signatures_.try_emplace(&plan, 0);
    if (inserted) it->second = HashPlanSignature(PlanSignature(plan));
    return it->second;
  }
  const std::vector<SiteId>& Fanout(const Plan& plan) {
    auto [it, inserted] = fanouts_.try_emplace(&plan);
    if (inserted) it->second = BoundServerSites(plan, catalog_, page_bytes_);
    return it->second;
  }

 private:
  const Catalog& catalog_;
  const int page_bytes_;
  std::map<const Plan*, uint64_t> signatures_;
  std::map<const Plan*, std::vector<SiteId>> fanouts_;
};

/// Folds a query's per-operator elapsed totals into its record.
void FillResourceTotals(const ExecMetrics& metrics, QueryLogRecord& record) {
  for (const OperatorActual& actual : metrics.operator_actuals) {
    record.cpu_elapsed_ms += actual.cpu_ms;
    record.disk_elapsed_ms += actual.disk_ms;
    record.net_elapsed_ms += actual.net_ms;
    record.stall_elapsed_ms += actual.stall_ms;
  }
}

/// Submission-time replica selection shared by both drivers. Constructed
/// only when a balancing policy is requested *and* the catalog holds
/// multiple copies of something (whole-relation replicas or shard copies);
/// single-copy or kFirstCopy runs never instantiate it, so their event and
/// allocation sequences are untouched.
///
/// Balanced submissions are cached clones of the client's plan with each
/// multi-copy scan re-pointed at the chosen replica and the clone re-bound
/// for the client; a steady state therefore allocates nothing (the variant
/// space is bounded by the product of replica counts). Single-copy scans
/// always keep the plan's own replica annotation. Shard fragments choose
/// among their shard's copies (ShardSite), so a replicated sharded
/// relation balances per shard, not per relation.
class ReplicaBalancer {
 public:
  ReplicaBalancer(const Catalog& catalog, ReplicaPolicy policy,
                  int page_bytes, int num_sites)
      : catalog_(catalog),
        policy_(policy),
        page_bytes_(page_bytes),
        round_robin_(static_cast<std::size_t>(catalog.num_relations()), 0),
        outstanding_(static_cast<std::size_t>(num_sites), 0),
        ewma_ms_(static_cast<std::size_t>(num_sites), 0.0) {}

  /// The plan to submit for this arrival: `base` with every multi-copy
  /// scan's serving replica re-chosen per the policy. The returned plan is
  /// owned here and outlives the run.
  const Plan* Choose(const Plan& base, SiteId client) {
    std::vector<int32_t> assignment;
    base.ForEach([&](const PlanNode& node) {
      if (node.type != OpType::kScan) return;
      int32_t choice = node.replica;
      const int copies = catalog_.ScanCopies(node.relation);
      if (copies > 1) {
        choice = policy_ == ReplicaPolicy::kRoundRobin
                     ? NextRoundRobin(node.relation, copies)
                     : LeastOutstanding(node.relation, node.shard, copies);
      }
      assignment.push_back(choice);
    });
    auto [it, inserted] =
        variants_.try_emplace({&base, std::move(assignment)});
    if (inserted) {
      const std::vector<int32_t>& chosen = it->first.second;
      auto variant = std::make_unique<Plan>(base.Clone());
      std::size_t scan = 0;
      variant->ForEachMutable([&](PlanNode& node) {
        if (node.type == OpType::kScan) node.replica = chosen[scan++];
      });
      BindSites(*variant, catalog_, client);
      it->second = std::move(variant);
    }
    return it->second.get();
  }

  void OnSubmit(const Plan* plan) { Bump(plan, +1); }

  /// Completion hook: releases the in-flight counts and folds the
  /// query's response time into each touched server's EWMA estimate.
  void OnComplete(const Plan* plan, double response_ms) {
    Bump(plan, -1);
    const auto it = plan_sites_.find(plan);
    DIMSUM_CHECK(it != plan_sites_.end());
    for (const SiteId site : it->second) {
      double& est = ewma_ms_[static_cast<std::size_t>(site)];
      // Seed with the first observation, then decay (alpha = 0.2). A
      // never-observed site keeps est == 0, which Score treats as a
      // neutral multiplier -- cold state ranks exactly like raw counts.
      est = est > 0.0 ? kEwmaAlpha * response_ms + (1.0 - kEwmaAlpha) * est
                      : response_ms;
    }
  }

  /// Queries currently in flight that touch `site` (for telemetry).
  int outstanding(SiteId site) const {
    return outstanding_[static_cast<std::size_t>(site)];
  }

 private:
  static constexpr double kEwmaAlpha = 0.2;

  /// Serving site of copy `replica` of a scan: the shard's copy chain for
  /// shard fragments (and shard 0's for a logical sharded scan), the
  /// replica list otherwise.
  SiteId CopySite(RelationId rel, int32_t shard, int32_t replica) const {
    if (catalog_.sharded(rel)) {
      return catalog_.ShardSite(rel, shard >= 0 ? shard : 0, replica);
    }
    return catalog_.ReplicaSite(rel, replica);
  }

  int32_t NextRoundRobin(RelationId rel, int copies) {
    const int32_t r = round_robin_[static_cast<std::size_t>(rel)];
    round_robin_[static_cast<std::size_t>(rel)] = (r + 1) % copies;
    return r;
  }

  int32_t LeastOutstanding(RelationId rel, int32_t shard, int copies) const {
    // Rank candidates lexicographically: live queue depth (in-flight
    // queries touching the site) first, the site's decayed response-time
    // estimate second, lowest server site last. Queue depth stays the
    // primary signal because whole-query response times are recency-
    // confounded: under a building backlog later completions always
    // report longer responses, so a site avoided for a while keeps a
    // frozen (and eventually flattering) estimate -- weighting the count
    // *by* the estimate lets that staleness override live queue state and
    // herds submissions. Depth ties are where the count is uninformative,
    // and there the EWMA steers toward the site that has actually been
    // completing faster (unobserved sites rank as estimate 0, i.e. are
    // preferred -- which also makes a cold balancer rank exactly like the
    // raw-count policy).
    //
    // Residual ties break toward the lowest *server site*, not the lowest
    // replica index: relations whose copy lists are rotations of each
    // other then agree on the winning site, so a query's scans co-locate
    // and the whole query lands on the least-loaded server (join-the-
    // shortest-queue per query rather than per relation). The estimate is
    // per site, so co-location survives the EWMA tie-break too.
    const auto ewma = [&](SiteId site) {
      return ewma_ms_[static_cast<std::size_t>(site)];
    };
    int32_t best = 0;
    SiteId best_site = CopySite(rel, shard, 0);
    for (int32_t r = 1; r < copies; ++r) {
      const SiteId site = CopySite(rel, shard, r);
      const int load = outstanding(site);
      const int best_load = outstanding(best_site);
      const bool wins =
          load < best_load ||
          (load == best_load &&
           (ewma(site) < ewma(best_site) ||
            (ewma(site) == ewma(best_site) && site < best_site)));
      if (wins) {
        best = r;
        best_site = site;
      }
    }
    return best;
  }

  void Bump(const Plan* plan, int delta) {
    auto [it, inserted] = plan_sites_.try_emplace(plan);
    if (inserted) it->second = BoundServerSites(*plan, catalog_, page_bytes_);
    for (const SiteId site : it->second) {
      outstanding_[static_cast<std::size_t>(site)] += delta;
    }
  }

  const Catalog& catalog_;
  const ReplicaPolicy policy_;
  const int page_bytes_;
  std::vector<int32_t> round_robin_;       // per-relation rotation cursor
  std::vector<int> outstanding_;           // per-site in-flight queries
  std::vector<double> ewma_ms_;            // per-site response-time EWMA
  std::map<std::pair<const Plan*, std::vector<int32_t>>,
           std::unique_ptr<Plan>>
      variants_;
  std::map<const Plan*, std::vector<SiteId>> plan_sites_;
};

/// True when some sharded relation keeps more than one copy per shard
/// (chained declustering), giving a balancing policy a real choice.
bool HasBalancedShards(const Catalog& catalog) {
  for (RelationId id = 0; id < catalog.num_relations(); ++id) {
    if (catalog.sharded(id) && catalog.ShardReplication(id) > 1) return true;
  }
  return false;
}

/// Creates a balancer when the (policy, catalog) pair calls for one.
std::unique_ptr<ReplicaBalancer> MakeBalancer(const Catalog& catalog,
                                              ReplicaPolicy policy,
                                              int page_bytes, int num_sites) {
  if (policy == ReplicaPolicy::kFirstCopy ||
      (!catalog.replicated() && !HasBalancedShards(catalog))) {
    return nullptr;
  }
  return std::make_unique<ReplicaBalancer>(catalog, policy, page_bytes,
                                           num_sites);
}

/// Shared state of one run, referenced by every client coroutine. Lives in
/// RunClosedLoop's frame, which outlives session.Run().
struct RunState {
  ExecSession& session;
  const Catalog& catalog;
  const RetryPolicy& retry;
  int page_bytes;
  DriverResult* result;
  /// Owns plans produced by recovery re-optimization, so adopted plans
  /// stay alive for the queries still running on them.
  std::vector<std::unique_ptr<Plan>> replanned;
  /// Non-null when a balancing policy is active (see ReplicaBalancer).
  ReplicaBalancer* balancer = nullptr;
  /// Plan each ticket is attributed against: the balanced variant when one
  /// was submitted, otherwise the client's original plan (so recovery
  /// re-planned tickets keep their pre-existing skip-on-misalignment
  /// attribution behavior).
  std::vector<const Plan*> submitted;
  /// Per-ticket issue instants (the client started trying, before crash
  /// retries) and the aborted attempts that preceded the submission.
  std::vector<double> issue_ms;
  std::vector<std::vector<QueryLogAttempt>> attempts;
};

/// One closed-loop client: submit, await completion, think, repeat.
/// Records each completion into the shared result at its completion
/// instant, so the global completion order falls directly out of the
/// event order. With a fault schedule, each submission first runs crash
/// detection and recovery (see RetryPolicy).
sim::Process ClientProcess(RunState& run, const ClientWorkload& work,
                           SiteId client, int queries, double think_mean_ms,
                           Rng rng) {
  sim::Simulator& sim = run.session.sim();
  const Plan* plan = work.plan;
  for (int i = 0; i < queries; ++i) {
    if (i > 0 && think_mean_ms > 0.0) {
      co_await sim.Delay(rng.Exponential(think_mean_ms));
    }
    const double issue_ms = sim.now();
    std::vector<QueryLogAttempt> attempt_log;
    int attempts = 0;
    sim::FaultState* faults = run.session.faults();
    if (faults != nullptr) {
      double backoff_ms = run.retry.backoff_base_ms;
      while (true) {
        // The previous attempt's wait ran until this re-check instant.
        if (!attempt_log.empty() && attempt_log.back().wait_ms == 0.0) {
          attempt_log.back().wait_ms =
              sim.now() - attempt_log.back().start_ms;
        }
        std::vector<SiteId> down;
        for (const SiteId site :
             BoundServerSites(*plan, run.catalog, run.page_bytes)) {
          if (faults->SiteDown(site, sim.now())) down.push_back(site);
        }
        if (down.empty()) break;
        // The submission attempt times out against the crashed site.
        ++attempts;
        ++run.result->total_retries;
        attempt_log.push_back(QueryLogAttempt{sim.now(), 0.0, false});
        co_await sim.Delay(run.retry.detect_timeout_ms);
        if (run.retry.reoptimize && work.reopt_model != nullptr &&
            work.reopt_config != nullptr) {
          OptimizerConfig reopt = *work.reopt_config;
          reopt.unavailable_sites = faults->DownSites(sim.now());
          Rng opt_rng = rng.Fork();
          OptimizeResult selected = TwoStepSiteSelection(
              *work.reopt_model, *work.plan, *work.query, reopt, opt_rng);
          ++run.result->total_reopts;
          attempt_log.back().reoptimized = true;
          auto candidate = std::make_unique<Plan>(std::move(selected.plan));
          BindSites(*candidate, run.catalog, client);
          bool avoids_down = true;
          for (const SiteId site :
               BoundServerSites(*candidate, run.catalog, run.page_bytes)) {
            if (faults->SiteDown(site, sim.now())) avoids_down = false;
          }
          if (avoids_down) {
            plan = candidate.get();
            run.replanned.push_back(std::move(candidate));
            continue;  // re-check and submit the recovered plan
          }
        }
        if (attempts >= run.retry.max_retries) {
          // Out of retries; wait for the first blocking site to restart
          // (queries are never abandoned).
          while (faults->SiteDown(down.front(), sim.now())) {
            co_await sim.Delay(faults->SiteUpAt(down.front(), sim.now()) -
                               sim.now());
          }
          continue;
        }
        co_await sim.Delay(backoff_ms);
        backoff_ms =
            std::min(backoff_ms * run.retry.backoff_mult,
                     run.retry.backoff_cap_ms);
      }
    }
    const double submit_ms = sim.now();
    // Load balancing rewrites as-planned submissions only; a recovery
    // re-planned tree already chose its sites around the crash.
    const Plan* to_submit = plan;
    if (run.balancer != nullptr && plan == work.plan) {
      to_submit = run.balancer->Choose(*plan, client);
    }
    const int ticket = run.session.Submit(*to_submit, *work.query);
    if (run.balancer != nullptr) run.balancer->OnSubmit(to_submit);
    if (static_cast<int>(run.result->query_client.size()) <= ticket) {
      run.result->query_client.resize(ticket + 1, kUnboundSite);
      run.result->retries_per_query.resize(ticket + 1, 0);
      run.submitted.resize(ticket + 1, nullptr);
      run.issue_ms.resize(ticket + 1, 0.0);
      run.attempts.resize(ticket + 1);
    }
    run.result->query_client[ticket] = client;
    run.result->retries_per_query[ticket] = attempts;
    run.submitted[ticket] = (to_submit != plan) ? to_submit : work.plan;
    run.issue_ms[ticket] = issue_ms;
    run.attempts[ticket] = std::move(attempt_log);
    co_await run.session.UntilDone(ticket);
    if (run.balancer != nullptr) {
      run.balancer->OnComplete(to_submit, sim.now() - submit_ms);
    }
    run.result->completions.push_back(
        Completion{ticket, client, submit_ms, sim.now()});
  }
}

}  // namespace

DriverResult RunClosedLoop(const std::vector<ClientWorkload>& clients,
                           const Catalog& catalog, const SystemConfig& config,
                           const DriverConfig& driver) {
  const int num_clients = static_cast<int>(clients.size());
  DIMSUM_CHECK_GE(num_clients, 1);
  DIMSUM_CHECK_EQ(num_clients, config.num_clients);
  DIMSUM_CHECK_EQ(num_clients, catalog.num_clients());
  DIMSUM_CHECK_GE(driver.queries_per_client, 1);
  DIMSUM_CHECK_GE(driver.think_time_mean_ms, 0.0);
  DIMSUM_CHECK_GE(driver.num_batches, 1);
  const int total = num_clients * driver.queries_per_client;
  DIMSUM_CHECK_LT(driver.warmup_queries, total)
      << "warmup must leave at least one measured completion";

  DriverResult result;
  // Query logging needs spans and actuals; both are pure observation, so
  // forcing them on the session's config copy leaves results bit-identical.
  SystemConfig session_config = config;
  if (driver.collect_query_log) {
    session_config.collect_spans = true;
    session_config.collect_operator_actuals = true;
  }
  ExecSession session(catalog, session_config, driver.seed);
  session.ExpectQueries(total);
  std::unique_ptr<ReplicaBalancer> balancer =
      MakeBalancer(catalog, driver.replica_policy, config.params.page_bytes,
                   config.num_sites());
  RunState run{session,  catalog, driver.retry, config.params.page_bytes,
               &result,  {},      balancer.get(), {}};
  Rng rng(driver.seed * 6364136223846793005ULL + 1442695040888963407ULL);
  for (int c = 0; c < num_clients; ++c) {
    const ClientWorkload& work = clients[c];
    DIMSUM_CHECK(work.plan != nullptr);
    DIMSUM_CHECK(work.query != nullptr);
    DIMSUM_CHECK(!work.plan->empty());
    DIMSUM_CHECK_EQ(work.plan->root()->bound_site, ClientSite(c))
        << "client " << c << "'s plan displays elsewhere";
    DIMSUM_CHECK_EQ(work.query->home_client, ClientSite(c));
    session.sim().Spawn(ClientProcess(run, work, ClientSite(c),
                                      driver.queries_per_client,
                                      driver.think_time_mean_ms, rng.Fork()));
  }
  session.Run();

  DIMSUM_CHECK_EQ(static_cast<int>(result.completions.size()), total);
  result.totals = session.Totals();
  result.per_query.reserve(total);
  for (int t = 0; t < total; ++t) {
    result.per_query.push_back(session.Metrics(t));
    result.fault_stall_ms += session.Metrics(t).fault_stall_ms;
    result.retransmits += session.Metrics(t).retransmits;
  }
  result.makespan_ms = result.completions.back().complete_ms;
  if (session_config.collect_operator_actuals) {
    // Attribute each ticket against the plan actually submitted for it
    // (the balanced variant when one was chosen); queries that ran a
    // recovery re-planned tree are skipped by the accumulator (their
    // actuals no longer align with the client's plan).
    std::map<const Plan*, std::vector<SiteId>> op_sites;
    BottleneckAccumulator acc;
    for (int t = 0; t < total; ++t) {
      const Plan* p = run.submitted[t];
      auto [it, inserted] = op_sites.try_emplace(p);
      if (inserted) it->second = OperatorSites(*p);
      acc.Add(it->second, result.per_query[t]);
    }
    result.bottleneck = acc.Finish(result.totals, result.makespan_ms);
  }
  if (driver.collect_query_log) {
    const std::string policy = driver.policy_label.empty()
                                   ? ToString(driver.replica_policy)
                                   : driver.policy_label;
    PlanLogCache plans(catalog, config.params.page_bytes);
    result.query_log.reserve(total);
    for (const Completion& c : result.completions) {
      QueryLogRecord record;
      record.policy = policy;
      record.ticket = c.ticket;
      record.client = c.client;
      const Plan& plan = *run.submitted[c.ticket];
      record.plan_signature = plans.Signature(plan);
      record.fanout = plans.Fanout(plan);
      record.issue_ms = run.issue_ms[c.ticket];
      record.submit_ms = c.submit_ms;
      record.complete_ms = c.complete_ms;
      record.response_ms = c.complete_ms - c.submit_ms;
      record.attempts = run.attempts[c.ticket];
      FillResourceTotals(result.per_query[c.ticket], record);
      const sim::QuerySpans* spans = session.Spans(c.ticket);
      DIMSUM_CHECK(spans != nullptr);
      record.path = ExtractCriticalPath(*spans);
      result.query_log.push_back(std::move(record));
    }
  }
  result.abort_rate =
      static_cast<double>(result.total_retries) /
      static_cast<double>(total + result.total_retries);

  // Steady-state estimation over the post-warmup completions, in global
  // completion order (the batch-means method over one merged output
  // stream).
  const int warmup = driver.warmup_queries;
  result.warmup_end_ms =
      warmup > 0 ? result.completions[warmup - 1].complete_ms : 0.0;
  result.measured = total - warmup;
  const double window_ms = result.makespan_ms - result.warmup_end_ms;
  result.throughput_qps =
      window_ms > 0.0 ? result.measured / window_ms * 1000.0 : 0.0;

  // Batch means: split the measured stream into num_batches contiguous
  // batches of floor(measured / num_batches) completions (at least one),
  // folding the remainder into the last batch.
  const int batch_size = std::max(1, result.measured / driver.num_batches);
  RunningStat overall;
  RunningStat batch;
  int in_batch = 0;
  int batches_done = 0;
  for (int i = warmup; i < total; ++i) {
    const Completion& c = result.completions[i];
    const double response_ms = c.complete_ms - c.submit_ms;
    overall.Add(response_ms);
    batch.Add(response_ms);
    ++in_batch;
    const bool last_batch = batches_done + 1 >= driver.num_batches;
    if (in_batch >= batch_size && !last_batch) {
      result.batch_means.Add(batch.mean());
      batch = RunningStat();
      in_batch = 0;
      ++batches_done;
    }
    // Availability-windowed split (faulted runs only): degraded when any
    // site was down somewhere in [submit, complete).
    if (session.faults() != nullptr) {
      if (session.faults()->AnySiteDownDuring(c.submit_ms, c.complete_ms)) {
        result.degraded_response_ms.Add(response_ms);
      } else {
        result.healthy_response_ms.Add(response_ms);
      }
    }
  }
  if (in_batch > 0) result.batch_means.Add(batch.mean());
  result.mean_response_ms = overall.mean();
  result.response_ci90_ms = result.batch_means.count() >= 2
                                ? result.batch_means.ConfidenceHalfWidth90()
                                : 0.0;
  result.healthy_ci90_ms =
      result.healthy_response_ms.count() >= 2
          ? result.healthy_response_ms.ConfidenceHalfWidth90()
          : 0.0;
  result.degraded_ci90_ms =
      result.degraded_response_ms.count() >= 2
          ? result.degraded_response_ms.ConfidenceHalfWidth90()
          : 0.0;

  MetricsRegistry& registry = MetricsRegistry::Global();
  if (registry.enabled()) {
    registry.counter("driver.completions").Add(total);
  }
  if (registry.enabled() && session.faults() != nullptr) {
    registry.counter("faults.retries").Add(result.total_retries);
    registry.counter("faults.reopts").Add(result.total_reopts);
    registry.counter("faults.retransmits").Add(result.retransmits);
    registry.counter("faults.crashes").Add(result.totals.crashes);
    registry.gauge("faults.downtime_ms").Add(result.totals.crash_downtime_ms);
    registry.gauge("faults.stall_ms").Add(result.fault_stall_ms);
    if (config.collect_histograms && result.totals.downtime_ms.count() > 0) {
      registry.MergeHistogram("faults.downtime_ms_hist",
                              result.totals.downtime_ms);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Open loop
// ---------------------------------------------------------------------------

namespace {

/// Shared state of one open-loop run. Lives in RunOpenLoop's frame, which
/// outlives session.Run().
struct OpenLoopState {
  ExecSession& session;
  const std::vector<ClientWorkload>& clients;
  const AdmissionControl& admission;
  OpenLoopResult* result;

  struct PendingArrival {
    double arrival_ms;
    int client_index;
  };
  std::deque<PendingArrival> pending;
  int in_flight = 0;
  /// Non-null when a balancing policy is active (see ReplicaBalancer).
  ReplicaBalancer* balancer = nullptr;
  /// Plan actually submitted for each ticket (for bottleneck attribution).
  std::vector<const Plan*> submitted;

  /// Query-log collection (OpenLoopConfig::collect_query_log): arrivals
  /// turned away, recorded at their rejection instants.
  bool collect_log = false;
  struct Rejected {
    double arrival_ms;
    double reject_ms;
    SiteId client;
  };
  std::vector<Rejected> aborted_log;
  std::vector<Rejected> shed_log;
};

sim::Process OpenLoopQuery(OpenLoopState& state, int client_index,
                           double arrival_ms);

/// Moves an admitted arrival into execution (consumes an in-flight slot).
void OpenLoopDispatch(OpenLoopState& state, int client_index,
                      double arrival_ms) {
  ++state.in_flight;
  ++state.result->dispatched;
  if (state.in_flight > state.result->peak_in_flight) {
    state.result->peak_in_flight = state.in_flight;
  }
  state.session.sim().Spawn(OpenLoopQuery(state, client_index, arrival_ms));
}

/// Admission control at the arrival instant: dispatch if a slot is free,
/// otherwise queue up to max_pending, otherwise shed.
void OpenLoopAdmit(OpenLoopState& state, int client_index) {
  ++state.result->arrivals;
  const AdmissionControl& ac = state.admission;
  const double now = state.session.sim().now();
  if (ac.max_in_flight <= 0 || state.in_flight < ac.max_in_flight) {
    OpenLoopDispatch(state, client_index, now);
    return;
  }
  if (static_cast<int>(state.pending.size()) < ac.max_pending) {
    state.pending.push_back({now, client_index});
    if (static_cast<int>(state.pending.size()) >
        state.result->peak_pending) {
      state.result->peak_pending = static_cast<int>(state.pending.size());
    }
    return;
  }
  ++state.result->shed;
  if (state.collect_log) {
    state.shed_log.push_back({now, now, ClientSite(client_index)});
  }
}

/// One open-loop query: submit, await completion, record, then hand the
/// freed slot to the pending queue (skipping arrivals that outwaited
/// abort_wait_ms).
sim::Process OpenLoopQuery(OpenLoopState& state, int client_index,
                           double arrival_ms) {
  sim::Simulator& sim = state.session.sim();
  const ClientWorkload& work = state.clients[client_index];
  const double submit_ms = sim.now();
  const Plan* to_submit =
      state.balancer != nullptr
          ? state.balancer->Choose(*work.plan, ClientSite(client_index))
          : work.plan;
  const int ticket = state.session.Submit(*to_submit, *work.query);
  if (state.balancer != nullptr) state.balancer->OnSubmit(to_submit);
  if (static_cast<int>(state.submitted.size()) <= ticket) {
    state.submitted.resize(static_cast<std::size_t>(ticket) + 1, nullptr);
  }
  state.submitted[ticket] = to_submit;
  co_await state.session.UntilDone(ticket);
  if (state.balancer != nullptr) {
    state.balancer->OnComplete(to_submit, sim.now() - submit_ms);
  }
  state.result->completions.push_back(OpenLoopCompletion{
      ticket, ClientSite(client_index), arrival_ms, submit_ms, sim.now()});
  ++state.result->completed;
  --state.in_flight;
  const AdmissionControl& ac = state.admission;
  while (!state.pending.empty() &&
         (ac.max_in_flight <= 0 || state.in_flight < ac.max_in_flight)) {
    OpenLoopState::PendingArrival next = state.pending.front();
    state.pending.pop_front();
    if (ac.abort_wait_ms > 0.0 &&
        sim.now() - next.arrival_ms > ac.abort_wait_ms) {
      ++state.result->aborted;
      if (state.collect_log) {
        state.aborted_log.push_back(
            {next.arrival_ms, sim.now(), ClientSite(next.client_index)});
      }
      continue;
    }
    OpenLoopDispatch(state, next.client_index, next.arrival_ms);
  }
}

/// The arrival generator: produces arrivals over [0, duration_ms) from the
/// configured process, assigning them round-robin to client sites.
sim::Process OpenLoopGenerator(OpenLoopState& state,
                               const ArrivalProcessConfig& arrival,
                               double duration_ms, Rng rng) {
  sim::Simulator& sim = state.session.sim();
  const int num_clients = static_cast<int>(state.clients.size());
  const double mean_gap_ms = 1000.0 / arrival.rate_per_sec;
  int next_client = 0;
  auto admit = [&] {
    OpenLoopAdmit(state, next_client);
    next_client = (next_client + 1) % num_clients;
  };
  switch (arrival.kind) {
    case ArrivalKind::kPoisson: {
      while (true) {
        const double dt = rng.Exponential(mean_gap_ms);
        if (sim.now() + dt >= duration_ms) break;
        co_await sim.Delay(dt);
        admit();
      }
      break;
    }
    case ArrivalKind::kBursty: {
      // Alternate exponential ON phases (arrivals at burst_factor times
      // the base rate) with exponential OFF phases (no arrivals).
      const double on_gap_ms = mean_gap_ms / arrival.burst_factor;
      bool on = true;
      double phase_end_ms = rng.Exponential(arrival.burst_on_mean_ms);
      while (sim.now() < duration_ms) {
        if (!on) {
          const double resume_ms = std::min(phase_end_ms, duration_ms);
          if (resume_ms > sim.now()) co_await sim.Delay(resume_ms - sim.now());
          if (sim.now() >= duration_ms) break;
          on = true;
          phase_end_ms = sim.now() + rng.Exponential(arrival.burst_on_mean_ms);
          continue;
        }
        const double dt = rng.Exponential(on_gap_ms);
        if (sim.now() + dt >= phase_end_ms) {
          const double resume_ms = std::min(phase_end_ms, duration_ms);
          if (resume_ms > sim.now()) co_await sim.Delay(resume_ms - sim.now());
          if (sim.now() >= duration_ms) break;
          on = false;
          phase_end_ms = sim.now() + rng.Exponential(arrival.burst_off_mean_ms);
          continue;
        }
        if (sim.now() + dt >= duration_ms) break;
        co_await sim.Delay(dt);
        admit();
      }
      break;
    }
    case ArrivalKind::kDiurnal: {
      // Thinning (Lewis-Shedler): candidate arrivals at the peak rate,
      // each kept with probability rate(t) / peak_rate.
      const double peak_rate = arrival.rate_per_sec *
                               (1.0 + arrival.diurnal_amplitude);
      const double peak_gap_ms = 1000.0 / peak_rate;
      constexpr double kTwoPi = 6.28318530717958647692;
      while (true) {
        const double dt = rng.Exponential(peak_gap_ms);
        if (sim.now() + dt >= duration_ms) break;
        co_await sim.Delay(dt);
        const double rate =
            arrival.rate_per_sec *
            (1.0 + arrival.diurnal_amplitude *
                       std::sin(kTwoPi * sim.now() / arrival.diurnal_period_ms));
        if (rng.NextDouble() * peak_rate < rate) admit();
      }
      break;
    }
  }
}

}  // namespace

OpenLoopResult RunOpenLoop(const std::vector<ClientWorkload>& clients,
                           const Catalog& catalog, const SystemConfig& config,
                           const OpenLoopConfig& openloop) {
  const int num_clients = static_cast<int>(clients.size());
  DIMSUM_CHECK_GE(num_clients, 1);
  DIMSUM_CHECK_EQ(num_clients, config.num_clients);
  DIMSUM_CHECK_EQ(num_clients, catalog.num_clients());
  DIMSUM_CHECK_GT(openloop.arrival.rate_per_sec, 0.0);
  DIMSUM_CHECK_GT(openloop.duration_ms, 0.0);
  DIMSUM_CHECK_GE(openloop.num_batches, 1);
  DIMSUM_CHECK_GE(openloop.warmup_completions, 0);
  if (openloop.arrival.kind == ArrivalKind::kBursty) {
    DIMSUM_CHECK_GT(openloop.arrival.burst_factor, 0.0);
    DIMSUM_CHECK_GT(openloop.arrival.burst_on_mean_ms, 0.0);
    DIMSUM_CHECK_GT(openloop.arrival.burst_off_mean_ms, 0.0);
  }
  if (openloop.arrival.kind == ArrivalKind::kDiurnal) {
    DIMSUM_CHECK_GE(openloop.arrival.diurnal_amplitude, 0.0);
    DIMSUM_CHECK_LE(openloop.arrival.diurnal_amplitude, 1.0);
    DIMSUM_CHECK_GT(openloop.arrival.diurnal_period_ms, 0.0);
  }
  DIMSUM_CHECK_GE(openloop.admission.max_in_flight, 0);
  DIMSUM_CHECK_GE(openloop.admission.max_pending, 0);
  DIMSUM_CHECK_GE(openloop.admission.abort_wait_ms, 0.0);
  for (int c = 0; c < num_clients; ++c) {
    const ClientWorkload& work = clients[c];
    DIMSUM_CHECK(work.plan != nullptr);
    DIMSUM_CHECK(work.query != nullptr);
    DIMSUM_CHECK(!work.plan->empty());
    DIMSUM_CHECK_EQ(work.plan->root()->bound_site, ClientSite(c))
        << "client " << c << "'s plan displays elsewhere";
    DIMSUM_CHECK_EQ(work.query->home_client, ClientSite(c));
  }

  OpenLoopResult result;
  // The shed count is only known at the end, so the session's completion
  // target grows dynamically with each Submit (no ExpectQueries). Query
  // logging needs spans and actuals; both are pure observation, so forcing
  // them on the session's config copy leaves results bit-identical.
  SystemConfig session_config = config;
  if (openloop.collect_query_log) {
    session_config.collect_spans = true;
    session_config.collect_operator_actuals = true;
  }
  ExecSession session(catalog, session_config, openloop.seed);
  std::unique_ptr<ReplicaBalancer> balancer =
      MakeBalancer(catalog, openloop.replica_policy, config.params.page_bytes,
                   config.num_sites());
  OpenLoopState state{session, clients, openloop.admission, &result,
                      {},      0,       balancer.get(),     {}};
  state.collect_log = openloop.collect_query_log;
  if (config.telemetry != nullptr) {
    // Admission-control gauges ride the sampler's existing boundaries on
    // their own "driver" track (one past the network pid). Pure reads of
    // RunOpenLoop's frame state: non-perturbing by the same argument as
    // the resource probes (DESIGN.md section 8).
    const int driver_pid = session.system().num_sites() + 1;
    config.telemetry->AddGauge(
        driver_pid, kUnboundSite, "admission", "in_flight",
        [&state] { return static_cast<double>(state.in_flight); });
    config.telemetry->AddGauge(
        driver_pid, kUnboundSite, "admission", "pending",
        [&state] { return static_cast<double>(state.pending.size()); });
    if (state.balancer != nullptr) {
      // Per-server in-flight gauges: the balancing policy's own view of
      // server load, sampled on the same non-perturbing boundaries.
      for (SiteId s = catalog.num_clients();
           s < session.system().num_sites(); ++s) {
        config.telemetry->AddGauge(
            driver_pid, s, "replica", "outstanding", [&state, s] {
              return static_cast<double>(state.balancer->outstanding(s));
            });
      }
    }
    if (config.trace != nullptr) {
      config.trace->SetProcessName(driver_pid, "driver");
    }
  }
  Rng rng(openloop.seed * 6364136223846793005ULL + 1442695040888963407ULL);
  session.sim().Spawn(OpenLoopGenerator(state, openloop.arrival,
                                        openloop.duration_ms, rng.Fork()));
  session.Run();

  DIMSUM_CHECK_EQ(result.completed, result.dispatched);
  DIMSUM_CHECK_EQ(result.arrivals,
                  result.dispatched + result.shed + result.aborted +
                      static_cast<int64_t>(state.pending.size()));
  // Pending arrivals that never got a slot before the run drained count as
  // aborted (they were admitted but never executed).
  result.aborted += static_cast<int64_t>(state.pending.size());
  if (state.collect_log) {
    for (const OpenLoopState::PendingArrival& p : state.pending) {
      state.aborted_log.push_back(
          {p.arrival_ms, session.sim().now(), ClientSite(p.client_index)});
    }
  }

  result.totals = session.Totals();
  const int total = session.submitted();
  result.per_query.reserve(total);
  for (int t = 0; t < total; ++t) {
    result.per_query.push_back(session.Metrics(t));
  }
  result.makespan_ms =
      result.completions.empty() ? 0.0 : result.completions.back().complete_ms;
  if (session_config.collect_operator_actuals) {
    std::map<const Plan*, std::vector<SiteId>> op_sites;
    BottleneckAccumulator acc;
    for (const OpenLoopCompletion& c : result.completions) {
      const Plan* p = state.submitted[c.ticket];
      auto [it, inserted] = op_sites.try_emplace(p);
      if (inserted) it->second = OperatorSites(*p);
      acc.Add(it->second, result.per_query[c.ticket]);
    }
    result.bottleneck = acc.Finish(result.totals, result.makespan_ms);
  }
  if (openloop.collect_query_log) {
    const std::string policy = openloop.policy_label.empty()
                                   ? ToString(openloop.replica_policy)
                                   : openloop.policy_label;
    PlanLogCache plans(catalog, config.params.page_bytes);
    result.query_log.reserve(result.completions.size() +
                             state.aborted_log.size() +
                             state.shed_log.size());
    for (const OpenLoopCompletion& c : result.completions) {
      QueryLogRecord record;
      record.policy = policy;
      record.ticket = c.ticket;
      record.client = c.client;
      const Plan& plan = *state.submitted[c.ticket];
      record.plan_signature = plans.Signature(plan);
      record.fanout = plans.Fanout(plan);
      record.issue_ms = c.arrival_ms;
      record.submit_ms = c.submit_ms;
      record.complete_ms = c.complete_ms;
      record.response_ms = c.complete_ms - c.arrival_ms;
      FillResourceTotals(result.per_query[c.ticket], record);
      const sim::QuerySpans* spans = session.Spans(c.ticket);
      DIMSUM_CHECK(spans != nullptr);
      record.path = ExtractCriticalPath(*spans);
      // The admission wait (arrival -> dispatch) precedes execution; with
      // it the segments tile [arrival, complete], so they sum to the
      // open-loop response time.
      if (c.submit_ms > c.arrival_ms) {
        record.path.segments.insert(
            record.path.segments.begin(),
            PathSegment{PathKind::kAdmission, true, kUnboundSite,
                        c.submit_ms - c.arrival_ms});
      }
      record.path.total_ms = record.response_ms;
      result.query_log.push_back(std::move(record));
    }
    auto rejected = [&](const OpenLoopState::Rejected& r,
                        const char* outcome) {
      QueryLogRecord record;
      record.policy = policy;
      record.client = r.client;
      record.outcome = outcome;
      record.issue_ms = r.arrival_ms;
      record.submit_ms = r.reject_ms;
      record.complete_ms = r.reject_ms;
      record.response_ms = r.reject_ms - r.arrival_ms;
      record.path.total_ms = record.response_ms;
      if (record.response_ms > 0.0) {
        record.path.segments.push_back(PathSegment{
            PathKind::kAdmission, true, kUnboundSite, record.response_ms});
      }
      result.query_log.push_back(std::move(record));
    };
    for (const OpenLoopState::Rejected& r : state.aborted_log) {
      rejected(r, "aborted");
    }
    for (const OpenLoopState::Rejected& r : state.shed_log) {
      rejected(r, "shed");
    }
  }
  result.offered_qps = result.arrivals / openloop.duration_ms * 1000.0;
  result.processed_events = session.sim().processed_events();
  result.peak_event_queue_depth = session.sim().peak_queue_depth();

  // Steady-state estimation over post-warmup completions, mirroring the
  // closed-loop batch-means method. Response time runs arrival to
  // completion, so admission-queue waits are part of the figure.
  const int completed = static_cast<int>(result.completions.size());
  const int warmup = std::min(openloop.warmup_completions, completed);
  result.warmup_end_ms =
      warmup > 0 ? result.completions[warmup - 1].complete_ms : 0.0;
  result.measured = completed - warmup;
  const double window_ms = result.makespan_ms - result.warmup_end_ms;
  result.throughput_qps =
      window_ms > 0.0 ? result.measured / window_ms * 1000.0 : 0.0;
  const int batch_size = std::max(1, result.measured / openloop.num_batches);
  RunningStat overall;
  RunningStat queue_wait;
  RunningStat batch;
  int in_batch = 0;
  int batches_done = 0;
  for (int i = warmup; i < completed; ++i) {
    const OpenLoopCompletion& c = result.completions[i];
    const double response_ms = c.complete_ms - c.arrival_ms;
    overall.Add(response_ms);
    queue_wait.Add(c.submit_ms - c.arrival_ms);
    batch.Add(response_ms);
    ++in_batch;
    const bool last_batch = batches_done + 1 >= openloop.num_batches;
    if (in_batch >= batch_size && !last_batch) {
      result.batch_means.Add(batch.mean());
      batch = RunningStat();
      in_batch = 0;
      ++batches_done;
    }
  }
  if (in_batch > 0) result.batch_means.Add(batch.mean());
  result.mean_response_ms = overall.mean();
  result.mean_queue_wait_ms = queue_wait.mean();
  result.response_ci90_ms = result.batch_means.count() >= 2
                                ? result.batch_means.ConfidenceHalfWidth90()
                                : 0.0;

  MetricsRegistry& registry = MetricsRegistry::Global();
  if (registry.enabled()) {
    registry.counter("driver.arrivals").Add(result.arrivals);
    registry.counter("driver.dispatched").Add(result.dispatched);
    registry.counter("driver.completions").Add(result.completed);
    registry.counter("driver.shed").Add(result.shed);
    registry.counter("driver.aborted").Add(result.aborted);
    Gauge& peak = registry.gauge("driver.peak_pending");
    if (result.peak_pending > peak.value()) {
      peak.Set(static_cast<double>(result.peak_pending));
    }
  }
  return result;
}

}  // namespace dimsum

#ifndef DIMSUM_WORKLOAD_DRIVER_H_
#define DIMSUM_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/ids.h"
#include "common/stats.h"
#include "exec/executor.h"
#include "exec/metrics.h"
#include "exec/runtime.h"
#include "plan/plan.h"
#include "plan/query.h"

namespace dimsum {

class CostModel;
struct OptimizerConfig;

/// One client's closed-loop workload: the bound plan it re-issues (display
/// bound to that client's site) and the matching query graph (home_client
/// set to the client's site). Both must outlive the driver run.
struct ClientWorkload {
  const Plan* plan = nullptr;
  const QueryGraph* query = nullptr;
  /// Optional recovery hooks. When both are set, the run has a fault
  /// schedule, and the retry policy enables re-optimization, a client whose
  /// plan touches a crashed server re-runs 2-step site selection (compiled
  /// join order of `plan` kept) against `reopt_model` with the crashed
  /// sites marked unavailable, adopting the new plan if it avoids them.
  /// Both must outlive the driver run.
  const CostModel* reopt_model = nullptr;
  const OptimizerConfig* reopt_config = nullptr;
};

/// How a client reacts when its plan depends on a crashed site. All delays
/// are virtual time.
struct RetryPolicy {
  /// Time a submission attempt takes to detect the dead site (the request
  /// timeout), charged per aborted attempt.
  double detect_timeout_ms = 100.0;
  /// Aborted attempts per query before the client stops backing off and
  /// simply waits for the crashed site to restart (a query is never
  /// abandoned: ExecSession requires every expected query to complete).
  int max_retries = 8;
  /// Exponential backoff between attempts.
  double backoff_base_ms = 100.0;
  double backoff_mult = 2.0;
  double backoff_cap_ms = 5000.0;
  /// Re-run site selection around crashed sites (needs the workload's
  /// reopt_model / reopt_config; ignored without them).
  bool reoptimize = true;
};

/// Parameters of a closed-loop multi-client run.
struct DriverConfig {
  /// Completions each client contributes before retiring.
  int queries_per_client = 10;
  /// Mean of the exponential think time between a query's completion and
  /// the client's next submission, ms. Zero thinks are skipped entirely
  /// (the next query is submitted at the completion instant).
  double think_time_mean_ms = 0.0;
  /// Completions (in global completion order) discarded as warmup before
  /// steady-state estimation starts.
  int warmup_queries = 0;
  /// Number of batches for batch-means estimation of the response-time
  /// mean. Fewer measured completions than batches degrades gracefully
  /// (each batch holds at least one sample; leftovers fold into the last).
  int num_batches = 10;
  uint64_t seed = 0;
  /// Crash detection/retry behavior; only consulted when the SystemConfig
  /// carries a fault schedule.
  RetryPolicy retry;
};

/// One completed query, in global completion order.
struct Completion {
  int ticket = 0;        // index into DriverResult::per_query
  SiteId client = 0;     // home client
  double submit_ms = 0.0;
  double complete_ms = 0.0;
};

/// Results of a closed-loop run.
struct DriverResult {
  /// Per-query attributed metrics, indexed by ticket (submission order).
  std::vector<ExecMetrics> per_query;
  /// Home client of each ticket.
  std::vector<SiteId> query_client;
  /// All completions in global completion order (warmup included).
  std::vector<Completion> completions;
  /// System-wide resource totals over the whole run (warmup included).
  BatchTotals totals;
  /// Time of the last completion, ms.
  double makespan_ms = 0.0;

  // --- Steady-state estimates over the post-warmup window ---
  /// End of the warmup window: completion time of the last discarded
  /// query (0 when warmup_queries == 0).
  double warmup_end_ms = 0.0;
  /// Number of measured (post-warmup) completions.
  int measured = 0;
  /// Measured completions per second of virtual time.
  double throughput_qps = 0.0;
  /// Mean response time over measured completions, ms.
  double mean_response_ms = 0.0;
  /// 90% confidence half-width of the mean, from batch means (0 when
  /// fewer than two batches have samples).
  double response_ci90_ms = 0.0;
  /// The batch means themselves (one sample per batch).
  RunningStat batch_means;

  // --- Fault injection & recovery (all zero/empty on healthy runs) ------
  /// Aborted submission attempts per ticket (a query submitted first try
  /// has 0).
  std::vector<int> retries_per_query;
  /// Sum of retries_per_query.
  int64_t total_retries = 0;
  /// Site-selection re-optimizations performed during recovery.
  int64_t total_reopts = 0;
  /// Aborted attempts / (completions + aborted attempts).
  double abort_rate = 0.0;
  /// Virtual time operators spent stalled on crashed sites, summed over
  /// queries, ms.
  double fault_stall_ms = 0.0;
  /// Link-fault retransmissions, summed over queries.
  int64_t retransmits = 0;
  /// Availability-windowed response times over the measured completions:
  /// a completion is *degraded* when some site was down at any point
  /// between its submission and completion, *healthy* otherwise. The ci90
  /// half-widths treat samples as independent (use with the usual
  /// closed-loop caveats); populated only on faulted runs.
  RunningStat healthy_response_ms;
  RunningStat degraded_response_ms;
  double healthy_ci90_ms = 0.0;
  double degraded_ci90_ms = 0.0;
};

/// Runs a closed-loop multi-client workload on one simulated cluster: each
/// of the `clients.size()` client processes submits its query, awaits the
/// result, thinks for an exponential time, and repeats, until it has
/// completed `queries_per_client` queries. All clients share the servers'
/// CPUs and disks and the network, so the run exhibits genuine multi-client
/// contention (the paper's Section 7 multi-query direction).
///
/// `clients[i]` runs on client site i; `clients.size()` must equal both
/// `catalog.num_clients()` and `config.num_clients`, and each plan's
/// display must be bound to its client's site.
///
/// Deterministic: identical inputs (including seed) produce identical
/// results, independent of wall-clock threading (the simulation is
/// single-threaded).
DriverResult RunClosedLoop(const std::vector<ClientWorkload>& clients,
                           const Catalog& catalog, const SystemConfig& config,
                           const DriverConfig& driver);

}  // namespace dimsum

#endif  // DIMSUM_WORKLOAD_DRIVER_H_

#ifndef DIMSUM_WORKLOAD_DRIVER_H_
#define DIMSUM_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/ids.h"
#include "common/stats.h"
#include "core/bottleneck.h"
#include "exec/executor.h"
#include "exec/metrics.h"
#include "exec/runtime.h"
#include "plan/plan.h"
#include "plan/query.h"
#include "workload/querylog.h"

namespace dimsum {

class CostModel;
struct OptimizerConfig;

/// One client's closed-loop workload: the bound plan it re-issues (display
/// bound to that client's site) and the matching query graph (home_client
/// set to the client's site). Both must outlive the driver run.
struct ClientWorkload {
  const Plan* plan = nullptr;
  const QueryGraph* query = nullptr;
  /// Optional recovery hooks. When both are set, the run has a fault
  /// schedule, and the retry policy enables re-optimization, a client whose
  /// plan touches a crashed server re-runs 2-step site selection (compiled
  /// join order of `plan` kept) against `reopt_model` with the crashed
  /// sites marked unavailable, adopting the new plan if it avoids them.
  /// Both must outlive the driver run.
  const CostModel* reopt_model = nullptr;
  const OptimizerConfig* reopt_config = nullptr;
};

/// How a client reacts when its plan depends on a crashed site. All delays
/// are virtual time.
struct RetryPolicy {
  /// Time a submission attempt takes to detect the dead site (the request
  /// timeout), charged per aborted attempt.
  double detect_timeout_ms = 100.0;
  /// Aborted attempts per query before the client stops backing off and
  /// simply waits for the crashed site to restart (a query is never
  /// abandoned: ExecSession requires every expected query to complete).
  int max_retries = 8;
  /// Exponential backoff between attempts.
  double backoff_base_ms = 100.0;
  double backoff_mult = 2.0;
  double backoff_cap_ms = 5000.0;
  /// Re-run site selection around crashed sites (needs the workload's
  /// reopt_model / reopt_config; ignored without them).
  bool reoptimize = true;
};

/// How the driver chooses among a relation's copies at submission time.
/// Balancing applies only when the catalog is replicated (some relation
/// has more than one copy); on unreplicated catalogs every policy takes
/// exactly the kFirstCopy code path, so existing runs are bit-identical.
enum class ReplicaPolicy {
  /// Submit each plan exactly as bound: scans read the serving replicas the
  /// optimizer chose (index 0, the primary, unless a replica move changed
  /// it). The default.
  kFirstCopy,
  /// Rotate each multi-copy relation's scans over its replicas in placement
  /// order, one step per submission (per-relation counters shared by all
  /// clients).
  kRoundRobin,
  /// Point each multi-copy scan at the replica whose server currently has
  /// the least queueing exposure, ranked lexicographically: fewest
  /// in-flight queries touching the site first, then -- only to order
  /// depth ties -- the site's decayed (EWMA, alpha 0.2) estimate of the
  /// response time of queries that touched it, then the lowest server
  /// site. Unobserved sites carry a zero estimate, so cold starts rank
  /// exactly like raw in-flight counts, and the final site-id tie-break
  /// keeps co-placed relations agreeing on the winner so whole queries
  /// co-locate. Counts and estimates update at submit/complete instants
  /// in virtual time, so the choice is deterministic. Shard fragments
  /// choose among their shard's copies (chained declustering), balancing
  /// per shard.
  kLeastOutstanding,
};

/// "first-copy", "round-robin", or "least-outstanding".
const char* ToString(ReplicaPolicy policy);

/// Parameters of a closed-loop multi-client run.
struct DriverConfig {
  /// Completions each client contributes before retiring.
  int queries_per_client = 10;
  /// Mean of the exponential think time between a query's completion and
  /// the client's next submission, ms. Zero thinks are skipped entirely
  /// (the next query is submitted at the completion instant).
  double think_time_mean_ms = 0.0;
  /// Completions (in global completion order) discarded as warmup before
  /// steady-state estimation starts.
  int warmup_queries = 0;
  /// Number of batches for batch-means estimation of the response-time
  /// mean. Fewer measured completions than batches degrades gracefully
  /// (each batch holds at least one sample; leftovers fold into the last).
  int num_batches = 10;
  uint64_t seed = 0;
  /// Crash detection/retry behavior; only consulted when the SystemConfig
  /// carries a fault schedule.
  RetryPolicy retry;
  /// Submission-time replica selection (see ReplicaPolicy). Balanced
  /// submissions are rewritten copies of the client's plan; recovery
  /// re-planned trees are submitted as-is.
  ReplicaPolicy replica_policy = ReplicaPolicy::kFirstCopy;
  /// Emit one wide-event record per query (DriverResult::query_log,
  /// workload/querylog.h). Forces span and actuals collection on the run's
  /// SystemConfig copy -- both are pure observation, so simulation results
  /// are unchanged (bit-identical; asserted by tests).
  bool collect_query_log = false;
  /// Policy label stamped into query-log records; empty uses
  /// ToString(replica_policy).
  std::string policy_label;
};

/// One completed query, in global completion order.
struct Completion {
  int ticket = 0;        // index into DriverResult::per_query
  SiteId client = 0;     // home client
  double submit_ms = 0.0;
  double complete_ms = 0.0;
};

/// Results of a closed-loop run.
struct DriverResult {
  /// Per-query attributed metrics, indexed by ticket (submission order).
  std::vector<ExecMetrics> per_query;
  /// Home client of each ticket.
  std::vector<SiteId> query_client;
  /// All completions in global completion order (warmup included).
  std::vector<Completion> completions;
  /// System-wide resource totals over the whole run (warmup included).
  BatchTotals totals;
  /// Time of the last completion, ms.
  double makespan_ms = 0.0;
  /// Run-level bottleneck attribution (queueing vs service against the
  /// run's shared resource totals), populated only when the SystemConfig
  /// set collect_operator_actuals. On faulted runs, queries that executed
  /// a recovery re-planned tree are skipped (their actuals no longer align
  /// with the submitted plan).
  BottleneckReport bottleneck;
  /// Wide-event records in global completion order; populated only when
  /// DriverConfig::collect_query_log is set. response_ms runs from submit
  /// (the closed loop's metric); crash retries are surfaced per attempt.
  std::vector<QueryLogRecord> query_log;

  // --- Steady-state estimates over the post-warmup window ---
  /// End of the warmup window: completion time of the last discarded
  /// query (0 when warmup_queries == 0).
  double warmup_end_ms = 0.0;
  /// Number of measured (post-warmup) completions.
  int measured = 0;
  /// Measured completions per second of virtual time.
  double throughput_qps = 0.0;
  /// Mean response time over measured completions, ms.
  double mean_response_ms = 0.0;
  /// 90% confidence half-width of the mean, from batch means (0 when
  /// fewer than two batches have samples).
  double response_ci90_ms = 0.0;
  /// The batch means themselves (one sample per batch).
  RunningStat batch_means;

  // --- Fault injection & recovery (all zero/empty on healthy runs) ------
  /// Aborted submission attempts per ticket (a query submitted first try
  /// has 0).
  std::vector<int> retries_per_query;
  /// Sum of retries_per_query.
  int64_t total_retries = 0;
  /// Site-selection re-optimizations performed during recovery.
  int64_t total_reopts = 0;
  /// Aborted attempts / (completions + aborted attempts).
  double abort_rate = 0.0;
  /// Virtual time operators spent stalled on crashed sites, summed over
  /// queries, ms.
  double fault_stall_ms = 0.0;
  /// Link-fault retransmissions, summed over queries.
  int64_t retransmits = 0;
  /// Availability-windowed response times over the measured completions:
  /// a completion is *degraded* when some site was down at any point
  /// between its submission and completion, *healthy* otherwise. The ci90
  /// half-widths treat samples as independent (use with the usual
  /// closed-loop caveats); populated only on faulted runs.
  RunningStat healthy_response_ms;
  RunningStat degraded_response_ms;
  double healthy_ci90_ms = 0.0;
  double degraded_ci90_ms = 0.0;
};

/// Runs a closed-loop multi-client workload on one simulated cluster: each
/// of the `clients.size()` client processes submits its query, awaits the
/// result, thinks for an exponential time, and repeats, until it has
/// completed `queries_per_client` queries. All clients share the servers'
/// CPUs and disks and the network, so the run exhibits genuine multi-client
/// contention (the paper's Section 7 multi-query direction).
///
/// `clients[i]` runs on client site i; `clients.size()` must equal both
/// `catalog.num_clients()` and `config.num_clients`, and each plan's
/// display must be bound to its client's site.
///
/// Deterministic: identical inputs (including seed) produce identical
/// results, independent of wall-clock threading (the simulation is
/// single-threaded).
DriverResult RunClosedLoop(const std::vector<ClientWorkload>& clients,
                           const Catalog& catalog, const SystemConfig& config,
                           const DriverConfig& driver);

// ---------------------------------------------------------------------------
// Open-loop workload generation
// ---------------------------------------------------------------------------

/// Shape of the open-loop arrival process. All three are driven by one
/// deterministic Rng stream, so a (config, seed) pair reproduces the exact
/// arrival sequence.
enum class ArrivalKind {
  /// Homogeneous Poisson arrivals at rate_per_sec.
  kPoisson,
  /// On/off modulated Poisson (interrupted Poisson process): exponential
  /// ON phases with arrivals at rate_per_sec * burst_factor alternate with
  /// exponential OFF phases with none. The long-run mean rate is
  /// rate_per_sec * burst_factor * on / (on + off).
  kBursty,
  /// Sinusoidally modulated Poisson via thinning:
  /// rate(t) = rate_per_sec * (1 + amplitude * sin(2*pi*t / period)).
  kDiurnal,
};

struct ArrivalProcessConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Base arrival rate, queries per second of virtual time.
  double rate_per_sec = 10.0;
  /// kBursty: mean ON / OFF phase lengths and the ON-phase rate multiplier.
  double burst_on_mean_ms = 500.0;
  double burst_off_mean_ms = 500.0;
  double burst_factor = 2.0;
  /// kDiurnal: modulation period and relative amplitude in [0, 1].
  double diurnal_period_ms = 60'000.0;
  double diurnal_amplitude = 0.5;
};

/// Admission control for open-loop arrivals. Unlike a closed loop -- where
/// the population bounds the backlog by construction -- an open-loop system
/// past saturation grows its queue without bound, so the driver enforces
/// the bound explicitly and accounts for every arrival it turns away.
struct AdmissionControl {
  /// Queries executing concurrently; arrivals past this wait in the
  /// pending queue. 0 = unlimited (every arrival dispatches immediately).
  int max_in_flight = 0;
  /// Pending-queue capacity; arrivals past it are shed (dropped at the
  /// door, counted in OpenLoopResult::shed).
  int max_pending = 0;
  /// A pending arrival that has waited longer than this when its dispatch
  /// slot opens is aborted instead of executed (counted in
  /// OpenLoopResult::aborted). 0 = never abort.
  double abort_wait_ms = 0.0;
};

/// Parameters of an open-loop run. Arrivals are generated in
/// [0, duration_ms); the run then drains whatever is in flight.
struct OpenLoopConfig {
  ArrivalProcessConfig arrival;
  AdmissionControl admission;
  double duration_ms = 10'000.0;
  /// Completions (in completion order) discarded as warmup.
  int warmup_completions = 0;
  /// Batch count for batch-means response-time estimation.
  int num_batches = 10;
  uint64_t seed = 0;
  /// Submission-time replica selection (see ReplicaPolicy).
  ReplicaPolicy replica_policy = ReplicaPolicy::kFirstCopy;
  /// Emit one wide-event record per arrival (OpenLoopResult::query_log):
  /// completed queries carry their critical path plus an "admission"
  /// segment for the arrival -> dispatch wait; aborted and shed arrivals
  /// get records too. Forces span and actuals collection (pure
  /// observation; results bit-identical).
  bool collect_query_log = false;
  /// Policy label stamped into query-log records; empty uses
  /// ToString(replica_policy).
  std::string policy_label;
};

/// One completed open-loop query, in global completion order. Response
/// time is measured from *arrival* (admission wait included); submit_ms -
/// arrival_ms is the admission-queue wait.
struct OpenLoopCompletion {
  int ticket = 0;
  SiteId client = 0;
  double arrival_ms = 0.0;
  double submit_ms = 0.0;
  double complete_ms = 0.0;
};

/// Results of an open-loop run.
struct OpenLoopResult {
  /// Arrival accounting: arrivals = dispatched + shed + aborted, and every
  /// dispatched query completes (completed == dispatched).
  int64_t arrivals = 0;
  int64_t dispatched = 0;
  int64_t shed = 0;
  int64_t aborted = 0;
  int64_t completed = 0;

  /// Per-query attributed metrics, indexed by ticket (dispatch order).
  std::vector<ExecMetrics> per_query;
  /// All completions in global completion order (warmup included).
  std::vector<OpenLoopCompletion> completions;
  /// Whole-run resource totals (warmup included).
  BatchTotals totals;
  /// Time of the last completion (0 when nothing completed), ms.
  double makespan_ms = 0.0;
  /// Offered load: arrivals per second over [0, duration_ms).
  double offered_qps = 0.0;
  /// Run-level bottleneck attribution, populated only when the
  /// SystemConfig set collect_operator_actuals: names the dominant
  /// (resource, site, queueing-vs-service) triple of the whole run.
  BottleneckReport bottleneck;
  /// Wide-event records, populated only when
  /// OpenLoopConfig::collect_query_log is set: completed queries first (in
  /// completion order, response measured from arrival), then aborted
  /// arrivals, then shed arrivals (each in event order).
  std::vector<QueryLogRecord> query_log;

  // --- Steady-state estimates over the post-warmup window ---
  double warmup_end_ms = 0.0;
  int measured = 0;
  /// Measured completions per second of virtual time.
  double throughput_qps = 0.0;
  /// Mean arrival-to-completion time over measured completions, ms.
  double mean_response_ms = 0.0;
  /// 90% confidence half-width from batch means (0 with fewer than two
  /// batches).
  double response_ci90_ms = 0.0;
  RunningStat batch_means;
  /// Mean admission-queue wait (arrival to dispatch) over measured
  /// completions, ms.
  double mean_queue_wait_ms = 0.0;

  // --- Saturation indicators -------------------------------------------
  int peak_in_flight = 0;
  int peak_pending = 0;

  // --- Kernel counters (see sim/simulator.h) ---------------------------
  uint64_t processed_events = 0;
  uint64_t peak_event_queue_depth = 0;
};

/// Runs an open-loop workload on one simulated cluster: arrivals follow
/// the configured process regardless of completions (the load is *offered*,
/// not paced by the system -- the open-loop counterpart of RunClosedLoop's
/// think-time loop), are assigned round-robin to the client sites, and
/// pass admission control before executing. `clients[i]` provides the
/// bound plan issued from client site i; constraints match RunClosedLoop.
///
/// Deterministic: identical inputs (including seed) produce identical
/// results, independent of wall-clock threading.
OpenLoopResult RunOpenLoop(const std::vector<ClientWorkload>& clients,
                           const Catalog& catalog, const SystemConfig& config,
                           const OpenLoopConfig& openloop);

}  // namespace dimsum

#endif  // DIMSUM_WORKLOAD_DRIVER_H_

#include "workload/querylog.h"

#include <fstream>
#include <sstream>

#include "common/json.h"

namespace dimsum {
namespace {

void WriteMs(std::ostream& out, const char* key, double value) {
  out << "\"" << key << "\": ";
  JsonWriteNumber(out, value);
}

/// Lowercase hex of a 64-bit hash, fixed width (JSON numbers cannot carry
/// full uint64 precision, so the signature travels as a string).
std::string HexU64(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

uint64_t HashPlanSignature(const std::string& signature) {
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  for (const char c : signature) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ULL;  // FNV-1a 64 prime
  }
  return hash;
}

std::string QueryLogJson(const QueryLogRecord& record) {
  std::ostringstream out;
  out << "{\"schema\": \"dimsum.querylog.v1\""
      << ", \"policy\": \"" << JsonEscape(record.policy) << "\""
      << ", \"ticket\": " << record.ticket
      << ", \"client\": " << record.client
      << ", \"plan_signature\": \"" << HexU64(record.plan_signature) << "\""
      << ", \"fanout\": [";
  for (size_t i = 0; i < record.fanout.size(); ++i) {
    if (i > 0) out << ", ";
    out << record.fanout[i];
  }
  out << "], \"outcome\": \"" << JsonEscape(record.outcome) << "\", ";
  WriteMs(out, "issue_ms", record.issue_ms);
  out << ", ";
  WriteMs(out, "submit_ms", record.submit_ms);
  out << ", ";
  WriteMs(out, "complete_ms", record.complete_ms);
  out << ", ";
  WriteMs(out, "response_ms", record.response_ms);
  out << ", \"retries\": " << record.attempts.size() << ", \"attempts\": [";
  for (size_t i = 0; i < record.attempts.size(); ++i) {
    const QueryLogAttempt& attempt = record.attempts[i];
    if (i > 0) out << ", ";
    out << "{";
    WriteMs(out, "start_ms", attempt.start_ms);
    out << ", ";
    WriteMs(out, "wait_ms", attempt.wait_ms);
    out << ", \"reoptimized\": " << (attempt.reoptimized ? "true" : "false")
        << "}";
  }
  out << "], \"resources\": {";
  WriteMs(out, "cpu_ms", record.cpu_elapsed_ms);
  out << ", ";
  WriteMs(out, "disk_ms", record.disk_elapsed_ms);
  out << ", ";
  WriteMs(out, "net_ms", record.net_elapsed_ms);
  out << ", ";
  WriteMs(out, "stall_ms", record.stall_elapsed_ms);
  out << "}, \"critical_path\": {";
  WriteMs(out, "total_ms", record.path.total_ms);
  out << ", ";
  WriteMs(out, "untracked_ms", record.path.untracked_ms);
  out << ", \"segments\": [";
  for (size_t i = 0; i < record.path.segments.size(); ++i) {
    const PathSegment& segment = record.path.segments[i];
    if (i > 0) out << ", ";
    out << "{\"label\": \"" << segment.Label() << "\", \"kind\": \""
        << PathKindName(segment.kind) << "\", \"queueing\": "
        << (segment.queueing ? "true" : "false")
        << ", \"site\": " << segment.site << ", ";
    WriteMs(out, "ms", segment.ms);
    out << "}";
  }
  out << "]}}";
  return out.str();
}

bool WriteQueryLogFile(const std::string& path,
                       const std::vector<QueryLogRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  for (const QueryLogRecord& record : records) {
    out << QueryLogJson(record) << "\n";
  }
  return out.good();
}

}  // namespace dimsum

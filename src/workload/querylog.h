#ifndef DIMSUM_WORKLOAD_QUERYLOG_H_
#define DIMSUM_WORKLOAD_QUERYLOG_H_

// Wide-event query log: one structured record per query of a workload run,
// carrying everything needed to explain that query's response time -- the
// replica policy, plan signature, server fan-out, submission attempts
// (crash retries), the per-resource elapsed split, and the critical-path
// decomposition extracted from its causal spans (core/critical_path.h).
//
// Records serialize to one JSON object per line ("dimsum.querylog.v1"),
// suitable for line-oriented tooling (tools/tail_report.py). Serialization
// uses round-trippable number formatting, and records are built from the
// deterministic simulation outputs only, so a (workload, seed) pair yields
// a byte-identical log regardless of host threading or event-queue kind.

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "core/critical_path.h"

namespace dimsum {

/// One aborted submission attempt of a query on a faulted run (the crash
/// detection/retry loop of workload/driver.h). `wait_ms` is the virtual
/// time the attempt consumed: the detection timeout plus the backoff (or
/// the wait for a restart once retries ran out).
struct QueryLogAttempt {
  double start_ms = 0.0;
  double wait_ms = 0.0;
  /// The attempt triggered recovery re-optimization around the crash.
  bool reoptimized = false;
};

/// One query's wide event.
struct QueryLogRecord {
  /// Replica-policy label of the run (e.g. "first-copy", "least-out").
  std::string policy;
  /// Session ticket (submission order).
  int ticket = -1;
  /// Home client site.
  SiteId client = kUnboundSite;
  /// FNV-1a 64 hash of the submitted plan's canonical signature
  /// (opt/cost_cache.h); 0 for queries that never submitted.
  uint64_t plan_signature = 0;
  /// Server sites the submitted plan touches (scan fan-out after replica
  /// selection and shard expansion).
  std::vector<SiteId> fanout;
  /// "ok" (completed), "aborted" (admitted but never executed), or "shed"
  /// (dropped at the admission door).
  std::string outcome = "ok";

  /// Closed loop: the instant the client began issuing (before crash
  /// retries). Open loop: the arrival instant.
  double issue_ms = 0.0;
  double submit_ms = 0.0;
  double complete_ms = 0.0;
  /// Closed loop: complete - submit (recovery surfaced via `attempts`).
  /// Open loop: complete - issue (admission wait included, surfaced as an
  /// "admission" critical-path segment).
  double response_ms = 0.0;

  /// Aborted submission attempts before the successful one.
  std::vector<QueryLogAttempt> attempts;

  /// Per-resource elapsed totals summed over the plan's operators
  /// (EXPLAIN ANALYZE actuals; overlapping, unlike the critical path).
  double cpu_elapsed_ms = 0.0;
  double disk_elapsed_ms = 0.0;
  double net_elapsed_ms = 0.0;
  double stall_elapsed_ms = 0.0;

  /// Critical-path decomposition; its segments (admission included) sum to
  /// response_ms within accumulation error for completed queries.
  CriticalPath path;
};

/// Serializes one record as a single JSON line (no trailing newline),
/// leading with {"schema": "dimsum.querylog.v1", ...}.
std::string QueryLogJson(const QueryLogRecord& record);

/// Writes records as JSONL; returns false when the file cannot be opened.
bool WriteQueryLogFile(const std::string& path,
                       const std::vector<QueryLogRecord>& records);

/// FNV-1a 64 over the canonical plan-signature bytes.
uint64_t HashPlanSignature(const std::string& signature);

}  // namespace dimsum

#endif  // DIMSUM_WORKLOAD_QUERYLOG_H_

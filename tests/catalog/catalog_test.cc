#include "catalog/catalog.h"

#include <gtest/gtest.h>

namespace dimsum {
namespace {

constexpr int kPageBytes = 4096;

TEST(RelationTest, PaperBenchmarkRelationIs250Pages) {
  Relation r{0, "A", 10000, 100};
  EXPECT_EQ(r.TuplesPerPage(kPageBytes), 40);
  EXPECT_EQ(r.Pages(kPageBytes), 250);
}

TEST(RelationTest, PagesRoundUp) {
  Relation r{0, "A", 41, 100};
  EXPECT_EQ(r.Pages(kPageBytes), 2);
  Relation exact{0, "B", 40, 100};
  EXPECT_EQ(exact.Pages(kPageBytes), 1);
}

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  const RelationId b = catalog.AddRelation("B", 20000, 200);
  EXPECT_EQ(catalog.num_relations(), 2);
  EXPECT_EQ(catalog.relation(a).name, "A");
  EXPECT_EQ(catalog.relation(b).num_tuples, 20000);
  EXPECT_NE(a, b);
}

TEST(CatalogTest, PlacementRoundTrip) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  catalog.PlaceRelation(a, ServerSite(0));
  EXPECT_EQ(catalog.PrimarySite(a), 1);
  catalog.PlaceRelation(a, ServerSite(4));  // relations can migrate
  EXPECT_EQ(catalog.PrimarySite(a), 5);
}

TEST(CatalogTest, CachedFractionDefaultsToZero) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  EXPECT_EQ(catalog.CachedFraction(a), 0.0);
  EXPECT_EQ(catalog.CachedPages(a, kPageBytes), 0);
}

TEST(CatalogTest, CachedPagesIsContiguousPrefix) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  catalog.SetCachedFraction(a, 0.25);
  EXPECT_EQ(catalog.CachedPages(a, kPageBytes), 62);  // floor(0.25 * 250)
  catalog.SetCachedFraction(a, 0.5);
  EXPECT_EQ(catalog.CachedPages(a, kPageBytes), 125);
  catalog.SetCachedFraction(a, 1.0);
  EXPECT_EQ(catalog.CachedPages(a, kPageBytes), 250);
}

TEST(CatalogDeathTest, UnplacedRelationFails) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  EXPECT_DEATH(catalog.PrimarySite(a), "has not been placed");
}

TEST(CatalogDeathTest, ClientCannotHoldPrimaryCopies) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  EXPECT_DEATH(catalog.PlaceRelation(a, kClientSite), "check failed");
}

}  // namespace
}  // namespace dimsum

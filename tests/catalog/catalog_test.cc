#include "catalog/catalog.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dimsum {
namespace {

constexpr int kPageBytes = 4096;

TEST(RelationTest, PaperBenchmarkRelationIs250Pages) {
  Relation r{0, "A", 10000, 100};
  EXPECT_EQ(r.TuplesPerPage(kPageBytes), 40);
  EXPECT_EQ(r.Pages(kPageBytes), 250);
}

TEST(RelationTest, PagesRoundUp) {
  Relation r{0, "A", 41, 100};
  EXPECT_EQ(r.Pages(kPageBytes), 2);
  Relation exact{0, "B", 40, 100};
  EXPECT_EQ(exact.Pages(kPageBytes), 1);
}

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  const RelationId b = catalog.AddRelation("B", 20000, 200);
  EXPECT_EQ(catalog.num_relations(), 2);
  EXPECT_EQ(catalog.relation(a).name, "A");
  EXPECT_EQ(catalog.relation(b).num_tuples, 20000);
  EXPECT_NE(a, b);
}

TEST(CatalogTest, PlacementRoundTrip) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  catalog.PlaceRelation(a, ServerSite(0));
  EXPECT_EQ(catalog.PrimarySite(a), 1);
  catalog.MoveRelation(a, ServerSite(4));  // relations can migrate
  EXPECT_EQ(catalog.PrimarySite(a), 5);
  EXPECT_EQ(catalog.NumReplicas(a), 1);  // a move leaves a single copy
}

TEST(CatalogTest, PlaceRelationAccumulatesReplicas) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  catalog.PlaceRelation(a, ServerSite(0));  // primary
  catalog.PlaceRelation(a, ServerSite(2));  // second copy
  catalog.PlaceRelation(a, ServerSite(2));  // idempotent per site
  EXPECT_EQ(catalog.NumReplicas(a), 2);
  EXPECT_EQ(catalog.PrimarySite(a), ServerSite(0));
  EXPECT_EQ(catalog.ReplicaSite(a, 0), ServerSite(0));
  EXPECT_EQ(catalog.ReplicaSite(a, 1), ServerSite(2));
  // Replica indices wrap, so any annotation stays valid after a move.
  EXPECT_EQ(catalog.ReplicaSite(a, 2), ServerSite(0));
  EXPECT_EQ(catalog.ReplicaSites(a),
            (std::vector<SiteId>{ServerSite(0), ServerSite(2)}));
}

TEST(CatalogTest, ReplicatedReportsMultiCopyRelations) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  const RelationId b = catalog.AddRelation("B", 10000, 100);
  catalog.PlaceRelation(a, ServerSite(0));
  catalog.PlaceRelation(b, ServerSite(1));
  EXPECT_FALSE(catalog.replicated());
  catalog.PlaceRelation(b, ServerSite(0));
  EXPECT_TRUE(catalog.replicated());
  catalog.MoveRelation(b, ServerSite(1));  // migration drops extra copies
  EXPECT_FALSE(catalog.replicated());
}

TEST(CatalogTest, CachedFractionDefaultsToZero) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  EXPECT_EQ(catalog.CachedFraction(a), 0.0);
  EXPECT_EQ(catalog.CachedPages(a, kPageBytes), 0);
}

TEST(CatalogTest, CachedPagesIsContiguousPrefix) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  catalog.SetCachedFraction(a, 0.25);
  EXPECT_EQ(catalog.CachedPages(a, kPageBytes), 63);  // round(0.25 * 250)
  catalog.SetCachedFraction(a, 0.5);
  EXPECT_EQ(catalog.CachedPages(a, kPageBytes), 125);
  catalog.SetCachedFraction(a, 1.0);
  EXPECT_EQ(catalog.CachedPages(a, kPageBytes), 250);
}

TEST(CatalogTest, CachedPagesRoundsToNearestAcrossSweep) {
  // Regression for the truncation bug: fraction * pages went through a
  // float cast that floored (0.7 * 10 pages -> 6). CachedPages must round
  // to nearest for every fraction x size combination.
  const std::vector<double> fractions = {0.0,  0.1,  0.25, 0.3, 0.5,
                                         0.65, 0.7,  0.75, 0.9, 1.0};
  const std::vector<int64_t> tuple_counts = {40, 400, 401, 10000, 20000,
                                             99960};
  for (const int64_t tuples : tuple_counts) {
    Catalog catalog;
    const RelationId r = catalog.AddRelation("R", tuples, 100);
    const int64_t pages = catalog.relation(r).Pages(kPageBytes);
    for (const double fraction : fractions) {
      catalog.SetCachedFraction(r, fraction);
      EXPECT_EQ(catalog.CachedPages(r, kPageBytes),
                std::llround(fraction * static_cast<double>(pages)))
          << "tuples=" << tuples << " fraction=" << fraction;
    }
  }
  // The motivating case, spelled out: 10-page relation, 70% cached.
  Catalog catalog;
  const RelationId r = catalog.AddRelation("S", 400, 100);
  ASSERT_EQ(catalog.relation(r).Pages(kPageBytes), 10);
  catalog.SetCachedFraction(r, 0.7);
  EXPECT_EQ(catalog.CachedPages(r, kPageBytes), 7);  // not 6
}

TEST(CatalogTest, PerClientCachedFractionsAreIndependent) {
  Catalog catalog(/*num_clients=*/3);
  EXPECT_EQ(catalog.num_clients(), 3);
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  catalog.SetCachedFraction(a, ClientSite(0), 1.0);
  catalog.SetCachedFraction(a, ClientSite(2), 0.5);
  EXPECT_EQ(catalog.CachedFraction(a, ClientSite(0)), 1.0);
  EXPECT_EQ(catalog.CachedFraction(a, ClientSite(1)), 0.0);
  EXPECT_EQ(catalog.CachedFraction(a, ClientSite(2)), 0.5);
  EXPECT_EQ(catalog.CachedPages(a, ClientSite(0), kPageBytes), 250);
  EXPECT_EQ(catalog.CachedPages(a, ClientSite(1), kPageBytes), 0);
  EXPECT_EQ(catalog.CachedPages(a, ClientSite(2), kPageBytes), 125);
  // The single-client convenience overloads address client 0.
  EXPECT_EQ(catalog.CachedFraction(a), 1.0);
  EXPECT_EQ(catalog.CachedPages(a, kPageBytes), 250);
}

TEST(CatalogTest, MultiClientSiteSpace) {
  Catalog catalog(/*num_clients=*/2);
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  EXPECT_TRUE(catalog.IsClientSite(0));
  EXPECT_TRUE(catalog.IsClientSite(1));
  EXPECT_FALSE(catalog.IsClientSite(2));
  // Server 0 is site 2 when two clients come first.
  catalog.PlaceRelation(a, ServerSite(0, /*num_clients=*/2));
  EXPECT_EQ(catalog.PrimarySite(a), 2);
}

TEST(CatalogDeathTest, NoClientSiteCanHoldPrimaryCopies) {
  Catalog catalog(/*num_clients=*/2);
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  EXPECT_DEATH(catalog.PlaceRelation(a, ClientSite(1)), "check failed");
}

TEST(CatalogDeathTest, CachedFractionForUnknownClientFails) {
  Catalog catalog(/*num_clients=*/2);
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  EXPECT_DEATH(catalog.SetCachedFraction(a, /*client=*/2, 0.5),
               "check failed");
}

TEST(CatalogDeathTest, UnplacedRelationFails) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  EXPECT_DEATH(catalog.PrimarySite(a), "has not been placed");
}

TEST(CatalogDeathTest, ClientCannotHoldPrimaryCopies) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  EXPECT_DEATH(catalog.PlaceRelation(a, kClientSite), "check failed");
}

TEST(CatalogDeathTest, ClientCannotHoldReplicas) {
  Catalog catalog;
  const RelationId a = catalog.AddRelation("A", 10000, 100);
  catalog.PlaceRelation(a, ServerSite(0));
  EXPECT_DEATH(catalog.PlaceRelation(a, kClientSite), "check failed");
  EXPECT_DEATH(catalog.MoveRelation(a, kClientSite), "check failed");
}

}  // namespace
}  // namespace dimsum

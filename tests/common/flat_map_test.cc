#include "common/flat_map.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dimsum {
namespace {

TEST(FlatMapTest, StartsEmpty) {
  FlatMap<int, double> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.contains(1));
  EXPECT_EQ(map.find(1), map.end());
}

TEST(FlatMapTest, SubscriptInsertsDefaultAndUpdates) {
  FlatMap<int, double> map;
  map[3] += 1.5;  // the ExecMetrics accumulation idiom
  map[3] += 2.5;
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.at(3), 4.0);
  EXPECT_EQ(map[7], 0.0);  // insertion of a default value
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMapTest, IterationIsKeySorted) {
  FlatMap<int, std::string> map;
  map[5] = "five";
  map[1] = "one";
  map[3] = "three";
  std::vector<int> keys;
  for (const auto& [key, value] : map) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(map.at(1), "one");
  EXPECT_EQ(map.at(3), "three");
  EXPECT_EQ(map.at(5), "five");
}

TEST(FlatMapTest, FindAndContains) {
  FlatMap<int, int> map;
  map[2] = 20;
  map[4] = 40;
  EXPECT_TRUE(map.contains(2));
  EXPECT_FALSE(map.contains(3));
  auto it = map.find(4);
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->second, 40);
  // find must not insert.
  map.find(3);
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMapTest, ConstAccess) {
  FlatMap<int, int> map;
  map[1] = 10;
  const FlatMap<int, int>& cmap = map;
  EXPECT_EQ(cmap.at(1), 10);
  EXPECT_NE(cmap.find(1), cmap.end());
  EXPECT_EQ(cmap.find(2), cmap.end());
  int sum = 0;
  for (const auto& [key, value] : cmap) sum += value;
  EXPECT_EQ(sum, 10);
}

TEST(FlatMapTest, EqualityComparesEntries) {
  FlatMap<int, double> a;
  FlatMap<int, double> b;
  EXPECT_TRUE(a == b);
  a[1] = 1.0;
  EXPECT_FALSE(a == b);
  b[1] = 1.0;
  EXPECT_TRUE(a == b);
  // Insertion order must not matter.
  FlatMap<int, double> c;
  FlatMap<int, double> d;
  c[1] = 1.0;
  c[2] = 2.0;
  d[2] = 2.0;
  d[1] = 1.0;
  EXPECT_TRUE(c == d);
}

TEST(FlatMapTest, ClearAndReserve) {
  FlatMap<int, int> map;
  map.reserve(8);
  for (int i = 0; i < 5; ++i) map[i] = i;
  EXPECT_EQ(map.size(), 5u);
  map.clear();
  EXPECT_TRUE(map.empty());
}

TEST(FlatMapDeathTest, AtOnMissingKeyFails) {
  FlatMap<int, int> map;
  map[1] = 10;
  EXPECT_DEATH(map.at(2), "key not found");
}

}  // namespace
}  // namespace dimsum

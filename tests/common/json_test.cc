#include "common/json.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace dimsum {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("disk0.1"), "disk0.1");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string{'a', '\x01', 'b'}), "a\\u0001b");
}

TEST(JsonWriteNumberTest, IntegersPrintWithoutExponent) {
  std::ostringstream out;
  JsonWriteNumber(out, 42.0);
  EXPECT_EQ(out.str(), "42");
}

TEST(JsonWriteNumberTest, NonFiniteBecomesNull) {
  std::ostringstream nan_out;
  JsonWriteNumber(nan_out, std::nan(""));
  EXPECT_EQ(nan_out.str(), "null");
  std::ostringstream inf_out;
  JsonWriteNumber(inf_out, INFINITY);
  EXPECT_EQ(inf_out.str(), "null");
}

TEST(JsonWriteNumberTest, DoublesRoundTrip) {
  const double value = 123.456789012345;
  std::ostringstream out;
  JsonWriteNumber(out, value);
  const auto parsed = JsonValue::Parse(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->number_value(), value);
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_EQ(JsonValue::Parse("true")->bool_value(), true);
  EXPECT_EQ(JsonValue::Parse("false")->bool_value(), false);
  EXPECT_EQ(JsonValue::Parse("-1.5e2")->number_value(), -150.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\\n\"")->string_value(), "hi\n");
}

TEST(JsonParseTest, NestedDocument) {
  const auto doc = JsonValue::Parse(
      R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}})");
  ASSERT_TRUE(doc.has_value());
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array_items().size(), 3u);
  EXPECT_EQ(a->array_items()[1].number_value(), 2.0);
  EXPECT_EQ(a->array_items()[2].Find("b")->string_value(), "x");
  EXPECT_TRUE(doc->Find("c")->Find("d")->is_null());
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonParseTest, UnicodeEscapes) {
  const auto doc = JsonValue::Parse("\"\\u0041\"");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_value(), "A");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(JsonValue::Parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::Parse("{\"a\": 1,}").has_value());
  EXPECT_FALSE(JsonValue::Parse("").has_value());
  EXPECT_FALSE(JsonValue::Parse("tru").has_value());
}

TEST(JsonParseTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(JsonValue::Parse("42 x").has_value());
  EXPECT_TRUE(JsonValue::Parse("  42  ").has_value());
}

}  // namespace
}  // namespace dimsum

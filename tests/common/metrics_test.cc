#include "common/metrics.h"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"

namespace dimsum {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kAddsPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);
  gauge.Add(1.5);
  EXPECT_EQ(gauge.value(), 4.0);
  gauge.Set(-1.0);
  EXPECT_EQ(gauge.value(), -1.0);
}

TEST(HistogramTest, DefaultConstructedHasNoBuckets) {
  Histogram hist;
  EXPECT_FALSE(hist.has_buckets());
  EXPECT_EQ(hist.count(), 0);
}

TEST(HistogramTest, BucketAssignment) {
  Histogram hist({1.0, 10.0});
  hist.Add(0.5);    // <= 1.0
  hist.Add(1.0);    // <= 1.0 (bounds are inclusive upper limits)
  hist.Add(5.0);    // <= 10.0
  hist.Add(100.0);  // overflow
  EXPECT_EQ(hist.count(), 4);
  EXPECT_EQ(hist.sum(), 106.5);
  EXPECT_EQ(hist.min(), 0.5);
  EXPECT_EQ(hist.max(), 100.0);
  ASSERT_EQ(hist.bucket_counts().size(), 3u);
  EXPECT_EQ(hist.bucket_counts()[0], 2);
  EXPECT_EQ(hist.bucket_counts()[1], 1);
  EXPECT_EQ(hist.bucket_counts()[2], 1);
}

TEST(HistogramTest, MergeAddsCountsAndExtremes) {
  Histogram a({1.0, 10.0});
  Histogram b({1.0, 10.0});
  a.Add(0.5);
  b.Add(20.0);
  b.Add(2.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.min(), 0.5);
  EXPECT_EQ(a.max(), 20.0);
  EXPECT_EQ(a.bucket_counts()[0], 1);
  EXPECT_EQ(a.bucket_counts()[1], 1);
  EXPECT_EQ(a.bucket_counts()[2], 1);
}

TEST(HistogramTest, MergeIntoBucketlessAdoptsOther) {
  Histogram a;
  Histogram b({1.0});
  b.Add(0.25);
  a.Merge(b);
  EXPECT_TRUE(a.has_buckets());
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.sum(), 0.25);
}

TEST(HistogramTest, MergeEmptyIsNoOp) {
  Histogram a({1.0});
  a.Add(0.5);
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
}

TEST(HistogramTest, ResetClearsSamplesButKeepsBounds) {
  Histogram hist({1.0, 10.0});
  hist.Add(5.0);
  hist.Reset();
  EXPECT_TRUE(hist.has_buckets());
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.sum(), 0.0);
  EXPECT_EQ(hist.min(), 0.0);
  EXPECT_EQ(hist.max(), 0.0);
  for (int64_t c : hist.bucket_counts()) EXPECT_EQ(c, 0);
}

TEST(HistogramTest, DefaultTimeBoundsAreAscending) {
  const std::vector<double> bounds = Histogram::DefaultTimeBoundsMs();
  ASSERT_GT(bounds.size(), 1u);
  EXPECT_EQ(bounds.front(), 0.01);
  EXPECT_EQ(bounds.back(), 10000.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram hist({10.0, 20.0});
  for (int i = 1; i <= 10; ++i) hist.Add(static_cast<double>(i));
  // All ten samples land in the first bucket, which spans [min=1, 10].
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 1.0 + 9.0 * 0.5);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 10.0);
}

TEST(HistogramTest, QuantileClampsToObservedRangeAndHandlesEmpty) {
  Histogram empty({1.0});
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
  Histogram hist({10.0});
  hist.Add(50.0);  // single overflow sample
  // The overflow bucket has no finite upper bound; the clamp pins the
  // estimate to the observed max.
  EXPECT_DOUBLE_EQ(hist.Quantile(0.99), 50.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.01), 50.0);
}

TEST(HistogramTest, QuantilesAreMergeOrderIndependent) {
  // Shard the same sample stream three ways, merge the shards in
  // different orders, and require identical summaries: quantiles read
  // only the merged bucket counts plus exact min/max, so the merge order
  // must not show through.
  const std::vector<double> bounds = Histogram::DefaultTimeBoundsMs();
  std::vector<Histogram> shards;
  for (int s = 0; s < 3; ++s) shards.emplace_back(bounds);
  uint64_t state = 12345;
  for (int i = 0; i < 300; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double value = 0.01 + static_cast<double>(state % 100000) / 97.0;
    shards[i % 3].Add(value);
  }
  Histogram forward(bounds);
  for (int s = 0; s < 3; ++s) forward.Merge(shards[s]);
  Histogram backward(bounds);
  for (int s = 2; s >= 0; --s) backward.Merge(shards[s]);
  EXPECT_EQ(forward.count(), backward.count());
  EXPECT_EQ(forward.min(), backward.min());
  EXPECT_EQ(forward.max(), backward.max());
  EXPECT_EQ(forward.bucket_counts(), backward.bucket_counts());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(forward.Quantile(q), backward.Quantile(q)) << q;
  }
  EXPECT_NEAR(forward.sum(), backward.sum(),
              1e-9 * std::max(1.0, forward.sum()));
}

TEST(HistogramTest, JsonReportsQuantileSummaries) {
  Histogram hist({1.0, 10.0});
  hist.Add(0.5);
  hist.Add(5.0);
  std::ostringstream out;
  hist.WriteJson(out);
  const auto doc = JsonValue::Parse(out.str());
  ASSERT_TRUE(doc.has_value());
  for (const char* key : {"mean", "p50", "p90", "p99"}) {
    const JsonValue* value = doc->Find(key);
    ASSERT_NE(value, nullptr) << key;
    EXPECT_TRUE(value->is_number()) << key;
  }
  EXPECT_DOUBLE_EQ(doc->Find("mean")->number_value(), 2.75);
}

TEST(HistogramTest, JsonIsParsableAndComplete) {
  Histogram hist({1.0, 10.0});
  hist.Add(0.5);
  hist.Add(42.0);
  std::ostringstream out;
  hist.WriteJson(out);
  const auto doc = JsonValue::Parse(out.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Find("count")->number_value(), 2.0);
  EXPECT_EQ(doc->Find("sum")->number_value(), 42.5);
  const JsonValue* buckets = doc->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->array_items().size(), 3u);
  // The overflow bucket is labeled with the string "inf".
  const JsonValue& overflow = buckets->array_items().back();
  EXPECT_EQ(overflow.Find("le")->string_value(), "inf");
  EXPECT_EQ(overflow.Find("count")->number_value(), 1.0);
}

TEST(MetricsRegistryTest, LookupsReturnStableInstruments) {
  MetricsRegistry registry;
  Counter& c1 = registry.counter("a");
  c1.Add(3);
  EXPECT_EQ(&registry.counter("a"), &c1);
  EXPECT_EQ(registry.counter("a").value(), 3);
  Gauge& g = registry.gauge("b");
  g.Set(1.5);
  EXPECT_EQ(&registry.gauge("b"), &g);
  Histogram& h = registry.histogram("c", {1.0});
  EXPECT_EQ(&registry.histogram("c"), &h);
  // First call fixed the bounds; later bounds arguments are ignored.
  EXPECT_EQ(registry.histogram("c", {5.0, 6.0}).bounds(),
            std::vector<double>({1.0}));
}

TEST(MetricsRegistryTest, HistogramDefaultsToTimeBounds) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.histogram("t").bounds(),
            Histogram::DefaultTimeBoundsMs());
}

TEST(MetricsRegistryTest, MergeHistogramCreatesOnFirstSample) {
  MetricsRegistry registry;
  Histogram sample({1.0});
  sample.Add(0.5);
  registry.MergeHistogram("m", sample);
  registry.MergeHistogram("m", sample);
  EXPECT_EQ(registry.histogram("m").count(), 2);
  // Empty samples never materialize an instrument.
  Histogram empty;
  registry.MergeHistogram("never", empty);
  std::ostringstream out;
  registry.WriteJson(out);
  EXPECT_EQ(out.str().find("never"), std::string::npos);
}

TEST(MetricsRegistryTest, SnapshotJsonIsParsable) {
  MetricsRegistry registry;
  registry.counter("opt.runs").Add(2);
  registry.gauge("exec.response_ms").Set(123.5);
  Histogram sample({1.0});
  sample.Add(0.25);
  registry.MergeHistogram("exec.disk.service_ms", sample);
  std::ostringstream out;
  registry.WriteJson(out);
  std::string error;
  const auto doc = JsonValue::Parse(out.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("opt.runs")->number_value(), 2.0);
  const JsonValue* gauges = doc->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("exec.response_ms")->number_value(), 123.5);
  const JsonValue* histograms = doc->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  EXPECT_EQ(histograms->Find("exec.disk.service_ms")
                ->Find("count")->number_value(),
            1.0);
}

TEST(MetricsRegistryTest, EmptySnapshotIsStillValidJson) {
  MetricsRegistry registry;
  std::ostringstream out;
  registry.WriteJson(out);
  const auto doc = JsonValue::Parse(out.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->Find("counters")->object_items().empty());
  EXPECT_TRUE(doc->Find("gauges")->object_items().empty());
  EXPECT_TRUE(doc->Find("histograms")->object_items().empty());
}

TEST(MetricsRegistryTest, ResetDropsInstruments) {
  MetricsRegistry registry;
  registry.counter("x").Add(1);
  registry.Reset();
  EXPECT_EQ(registry.counter("x").value(), 0);
}

TEST(MetricsRegistryTest, EnableToggle) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.enabled());
  registry.set_enabled(true);
  EXPECT_TRUE(registry.enabled());
  registry.set_enabled(false);
  EXPECT_FALSE(registry.enabled());
}

}  // namespace
}  // namespace dimsum

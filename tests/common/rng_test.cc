#include "common/rng.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace dimsum {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t value = rng.UniformInt(-3, 4);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 4);
    saw_lo |= (value == -3);
    saw_hi |= (value == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.UniformInt(0, 9)];
  for (int count : counts) {
    EXPECT_NEAR(count, kSamples / 10, kSamples / 100);
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Exponential(12.5);
  EXPECT_NEAR(sum / kSamples, 12.5, 0.2);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(kSamples), 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> identity(32);
  for (int i = 0; i < 32; ++i) identity[i] = i;
  std::vector<int> shuffled = identity;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, identity);  // probability of identity is ~1/32!
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace dimsum

#include "common/stats.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace dimsum {
namespace {

TEST(RunningStatTest, EmptyStat) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.ConfidenceHalfWidth90(), 0.0);
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(v);
  EXPECT_EQ(stat.count(), 8);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatTest, SingleValueHasZeroVariance) {
  RunningStat stat;
  stat.Add(3.5);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.5);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, ConfidenceIntervalShrinksWithSamples) {
  RunningStat small;
  RunningStat large;
  // Same alternating data, different sample counts.
  for (int i = 0; i < 4; ++i) small.Add(i % 2 == 0 ? 9.0 : 11.0);
  for (int i = 0; i < 400; ++i) large.Add(i % 2 == 0 ? 9.0 : 11.0);
  EXPECT_GT(small.ConfidenceHalfWidth90(), large.ConfidenceHalfWidth90());
}

TEST(RunningStatTest, WithinRelativeError) {
  RunningStat stat;
  for (int i = 0; i < 100; ++i) stat.Add(i % 2 == 0 ? 99.0 : 101.0);
  EXPECT_TRUE(stat.WithinRelativeError(0.05));
  RunningStat wild;
  wild.Add(1.0);
  wild.Add(100.0);
  wild.Add(0.5);
  EXPECT_FALSE(wild.WithinRelativeError(0.05));
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0 + i * 0.1;
    all.Add(v);
    (i < 20 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(StudentT90Test, KnownValues) {
  EXPECT_NEAR(StudentT90(1), 6.314, 1e-3);
  EXPECT_NEAR(StudentT90(10), 1.812, 1e-3);
  EXPECT_NEAR(StudentT90(30), 1.697, 1e-3);
  EXPECT_NEAR(StudentT90(10000), 1.645, 1e-3);
}

TEST(StudentT90Test, MonotonicallyDecreasing) {
  for (int df = 1; df < 35; ++df) {
    EXPECT_GE(StudentT90(df), StudentT90(df + 1)) << "df=" << df;
  }
}

TEST(RunningStatTest, MergeEmptyIntoEmptyIsNoOp) {
  RunningStat a;
  RunningStat b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(RunningStatTest, MergeEmptyOtherLeavesThisUnchanged) {
  RunningStat a;
  for (double v : {1.0, 2.0, 3.0}) a.Add(v);
  const double mean = a.mean();
  const double variance = a.variance();
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.mean(), mean);
  EXPECT_EQ(a.variance(), variance);
}

TEST(RunningStatTest, MergeIntoEmptyCopiesOther) {
  RunningStat a;
  RunningStat b;
  for (double v : {1.0, 2.0, 3.0, 10.0}) b.Add(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
}

TEST(RunningStatTest, MergeSingleSamplePartitions) {
  // Welford merge must hold even when one side carries a single sample
  // (m2 == 0): the boundary case for the speculative-batch Replicate.
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (double v : {4.0, 7.0, -2.0, 11.0}) all.Add(v);
  left.Add(4.0);
  for (double v : {7.0, -2.0, 11.0}) right.Add(v);
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
}

TEST(RunningStatTest, MergeIsShuffleOrderInsensitive) {
  // The pairwise (Chan) combination must give the same moments no matter
  // which order worker shards are folded in, up to floating-point
  // rounding -- the property the parallel optimizer and the calibration
  // harness both rely on.
  std::vector<RunningStat> shards(4);
  uint64_t state = 99;
  for (int i = 0; i < 400; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    shards[i % 4].Add(static_cast<double>(state % 10007) / 13.0);
  }
  RunningStat forward;
  for (int s = 0; s < 4; ++s) forward.Merge(shards[s]);
  RunningStat backward;
  for (int s = 3; s >= 0; --s) backward.Merge(shards[s]);
  RunningStat shuffled;
  for (int s : {2, 0, 3, 1}) shuffled.Merge(shards[s]);
  EXPECT_EQ(forward.count(), backward.count());
  EXPECT_EQ(forward.count(), shuffled.count());
  const double tol = 1e-9 * std::fabs(forward.mean());
  EXPECT_NEAR(forward.mean(), backward.mean(), tol);
  EXPECT_NEAR(forward.mean(), shuffled.mean(), tol);
  const double var_tol = 1e-9 * forward.variance();
  EXPECT_NEAR(forward.variance(), backward.variance(), var_tol);
  EXPECT_NEAR(forward.variance(), shuffled.variance(), var_tol);
}

TEST(StudentT90Test, TableBoundaries) {
  // Exact values at every df range switch in the implementation.
  EXPECT_NEAR(StudentT90(0), 6.314, 1e-9);    // df < 1 clamps to df = 1
  EXPECT_NEAR(StudentT90(-5), 6.314, 1e-9);
  EXPECT_NEAR(StudentT90(29), 1.699, 1e-9);
  EXPECT_NEAR(StudentT90(30), 1.697, 1e-9);   // last exact table entry
  EXPECT_NEAR(StudentT90(31), 1.684, 1e-9);   // 31..40 bucket
  EXPECT_NEAR(StudentT90(40), 1.684, 1e-9);
  EXPECT_NEAR(StudentT90(41), 1.671, 1e-9);   // 41..60 bucket
  EXPECT_NEAR(StudentT90(60), 1.671, 1e-9);
  EXPECT_NEAR(StudentT90(61), 1.658, 1e-9);   // 61..120 bucket
  EXPECT_NEAR(StudentT90(120), 1.658, 1e-9);
  EXPECT_NEAR(StudentT90(121), 1.645, 1e-9);  // normal approximation
  EXPECT_NEAR(StudentT90(1'000'000'000), 1.645, 1e-9);
}

}  // namespace
}  // namespace dimsum

#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dimsum {
namespace {

TEST(RunningStatTest, EmptyStat) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.ConfidenceHalfWidth90(), 0.0);
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(v);
  EXPECT_EQ(stat.count(), 8);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatTest, SingleValueHasZeroVariance) {
  RunningStat stat;
  stat.Add(3.5);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.5);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, ConfidenceIntervalShrinksWithSamples) {
  RunningStat small;
  RunningStat large;
  // Same alternating data, different sample counts.
  for (int i = 0; i < 4; ++i) small.Add(i % 2 == 0 ? 9.0 : 11.0);
  for (int i = 0; i < 400; ++i) large.Add(i % 2 == 0 ? 9.0 : 11.0);
  EXPECT_GT(small.ConfidenceHalfWidth90(), large.ConfidenceHalfWidth90());
}

TEST(RunningStatTest, WithinRelativeError) {
  RunningStat stat;
  for (int i = 0; i < 100; ++i) stat.Add(i % 2 == 0 ? 99.0 : 101.0);
  EXPECT_TRUE(stat.WithinRelativeError(0.05));
  RunningStat wild;
  wild.Add(1.0);
  wild.Add(100.0);
  wild.Add(0.5);
  EXPECT_FALSE(wild.WithinRelativeError(0.05));
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0 + i * 0.1;
    all.Add(v);
    (i < 20 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(StudentT90Test, KnownValues) {
  EXPECT_NEAR(StudentT90(1), 6.314, 1e-3);
  EXPECT_NEAR(StudentT90(10), 1.812, 1e-3);
  EXPECT_NEAR(StudentT90(30), 1.697, 1e-3);
  EXPECT_NEAR(StudentT90(10000), 1.645, 1e-3);
}

TEST(StudentT90Test, MonotonicallyDecreasing) {
  for (int df = 1; df < 35; ++df) {
    EXPECT_GE(StudentT90(df), StudentT90(df + 1)) << "df=" << df;
  }
}

}  // namespace
}  // namespace dimsum

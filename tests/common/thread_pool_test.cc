#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace dimsum {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureValue) {
  ThreadPool pool(4);
  auto future = pool.Submit([] { return 42; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  const auto caller = std::this_thread::get_id();
  auto future = pool.Submit([caller] { return std::this_thread::get_id() == caller; });
  EXPECT_TRUE(future.get());
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.thread_count(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 1000;
  std::vector<int> visits(kN, 0);
  pool.ParallelFor(kN, [&](int i) { ++visits[static_cast<std::size_t>(i)]; });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), kN);
  for (int count : visits) EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingleRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](int) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Two iterations throw; the lowest index must win regardless of which
  // worker reaches it first.
  try {
    pool.ParallelFor(100, [](int i) {
      if (i == 7 || i == 50) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "7");
  }
}

TEST(ThreadPoolTest, PoolRemainsUsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(8, [](int) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> sum{0};
  pool.ParallelFor(8, [&](int i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 28);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](int) {
    pool.ParallelFor(4, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPoolTest, DestructorJoinsSubmittedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 12; ++i) {
      pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
      });
    }
  }  // destructor must drain the queue and join
  EXPECT_EQ(completed.load(), 12);
}

TEST(ThreadPoolTest, ThreadCountFromEnvParsing) {
  const int hardware = ThreadCountFromEnv(nullptr);
  EXPECT_GE(hardware, 1);
  EXPECT_EQ(ThreadCountFromEnv(""), hardware);
  EXPECT_EQ(ThreadCountFromEnv("garbage"), hardware);
  EXPECT_EQ(ThreadCountFromEnv("0"), hardware);
  EXPECT_EQ(ThreadCountFromEnv("-4"), hardware);
  EXPECT_EQ(ThreadCountFromEnv("1"), 1);
  EXPECT_EQ(ThreadCountFromEnv("8"), 8);
}

TEST(ThreadPoolTest, SetGlobalThreadCountResizesPool) {
  SetGlobalThreadCount(3);
  EXPECT_EQ(GlobalThreadPool().thread_count(), 3);
  SetGlobalThreadCount(1);
  EXPECT_EQ(GlobalThreadPool().thread_count(), 1);
}

}  // namespace
}  // namespace dimsum

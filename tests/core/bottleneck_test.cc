// Tests of the per-query / per-run bottleneck attribution: bucket sums,
// the queueing-vs-service split against busy-time bounds, dominant-triple
// selection, summary strings, and the accumulator's misalignment skip.

#include "core/bottleneck.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/metrics.h"
#include "plan/binding.h"
#include "plan/plan.h"

namespace dimsum {
namespace {

OperatorActual Actual(double cpu, double disk, double net,
                      double stall = 0.0) {
  OperatorActual a;
  a.cpu_ms = cpu;
  a.disk_ms = disk;
  a.net_ms = net;
  a.stall_ms = stall;
  return a;
}

TEST(BottleneckTest, SplitsQueueingAgainstBusyBounds) {
  // Two operators: a client-side scan (site 0, pure CPU) and a server join
  // (site 1) whose 10 ms of disk elapsed is only backed by 4 ms of disk
  // busy time -- the other 6 ms were queueing.
  const std::vector<SiteId> op_sites = {0, 1};
  ExecMetrics metrics;
  metrics.response_ms = 20.0;
  metrics.operator_actuals = {Actual(2.0, 0.0, 0.0),
                              Actual(0.0, 10.0, 3.0)};
  metrics.cpu_busy_ms[0] = 2.0;
  metrics.disk_busy_ms[1] = 4.0;
  metrics.network_busy_ms = 3.0;

  const BottleneckReport report = BuildBottleneck(op_sites, metrics);
  EXPECT_EQ(report.queries, 1);
  EXPECT_DOUBLE_EQ(report.response_ms, 20.0);
  EXPECT_DOUBLE_EQ(report.attributed_ms, 15.0);
  ASSERT_EQ(report.buckets.size(), 3u);

  const BottleneckBucket* dominant = report.dominant();
  ASSERT_NE(dominant, nullptr);
  EXPECT_EQ(dominant->resource, BottleneckResource::kDisk);
  EXPECT_EQ(dominant->site, 1);
  EXPECT_DOUBLE_EQ(dominant->elapsed_ms, 10.0);
  EXPECT_DOUBLE_EQ(dominant->service_ms, 4.0);
  EXPECT_DOUBLE_EQ(dominant->queueing_ms, 6.0);
  EXPECT_DOUBLE_EQ(dominant->share, 10.0 / 15.0);
  EXPECT_TRUE(report.dominant_is_queueing());

  // The network bucket is shared (unbound site) and fully service-backed.
  const BottleneckBucket& net = report.buckets[1];
  EXPECT_EQ(net.resource, BottleneckResource::kNet);
  EXPECT_EQ(net.site, kUnboundSite);
  EXPECT_DOUBLE_EQ(net.queueing_ms, 0.0);

  // With client/server labeling, site 1 is a server (1 client).
  const std::string summary = report.Summary(/*num_clients=*/1);
  EXPECT_NE(summary.find("server disk queueing at site 1"),
            std::string::npos)
      << summary;
  EXPECT_NE(summary.find("ms attributed"), std::string::npos) << summary;
  // Without labeling the role prefix is omitted.
  EXPECT_EQ(report.Summary().find("server"), std::string::npos);
}

TEST(BottleneckTest, UnknownBusyBoundIsConservativelyService) {
  // Per-query metrics of a shared run carry no busy maps: the split must
  // not invent queueing time it cannot substantiate.
  const std::vector<SiteId> op_sites = {0};
  ExecMetrics metrics;
  metrics.response_ms = 12.0;
  metrics.operator_actuals = {Actual(0.0, 8.0, 0.0)};

  const BottleneckReport report = BuildBottleneck(op_sites, metrics);
  ASSERT_EQ(report.buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(report.buckets[0].service_ms, 8.0);
  EXPECT_DOUBLE_EQ(report.buckets[0].queueing_ms, 0.0);
  EXPECT_FALSE(report.dominant_is_queueing());
  EXPECT_NE(report.Summary().find("disk service"), std::string::npos);
}

TEST(BottleneckTest, FaultStallsArePureQueueing) {
  const std::vector<SiteId> op_sites = {0};
  ExecMetrics metrics;
  metrics.operator_actuals = {Actual(1.0, 0.0, 0.0, /*stall=*/9.0)};
  const BottleneckReport report = BuildBottleneck(op_sites, metrics);
  const BottleneckBucket* dominant = report.dominant();
  ASSERT_NE(dominant, nullptr);
  EXPECT_EQ(dominant->resource, BottleneckResource::kStall);
  EXPECT_DOUBLE_EQ(dominant->queueing_ms, 9.0);
  EXPECT_NE(report.Summary().find("fault-stall"), std::string::npos);
}

TEST(BottleneckTest, EmptyReportSaysSo) {
  const BottleneckReport report = BuildBottleneck({}, ExecMetrics{});
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(report.dominant(), nullptr);
  EXPECT_EQ(report.Summary(), "no attributed time");
}

TEST(BottleneckTest, AccumulatorFoldsAlignedAndSkipsMisaligned) {
  const std::vector<SiteId> op_sites = {0, 1};
  ExecMetrics aligned;
  aligned.operator_actuals = {Actual(1.0, 0.0, 0.0), Actual(0.0, 6.0, 2.0)};
  ExecMetrics misaligned;  // e.g. recovery re-planned: no actuals
  ExecMetrics replanned;   // different shape than the submitted plan
  replanned.operator_actuals = {Actual(1.0, 1.0, 1.0)};

  BottleneckAccumulator acc;
  acc.Add(op_sites, aligned);
  acc.Add(op_sites, aligned);
  acc.Add(op_sites, misaligned);
  acc.Add(op_sites, replanned);
  EXPECT_EQ(acc.queries(), 2);

  BatchTotals totals;
  totals.cpu_busy_ms[0] = 2.0;
  totals.disk_busy_ms[1] = 5.0;
  totals.network_busy_ms = 10.0;
  const BottleneckReport report = acc.Finish(totals, /*window_ms=*/100.0);
  EXPECT_EQ(report.queries, 2);
  EXPECT_DOUBLE_EQ(report.response_ms, 100.0);
  EXPECT_DOUBLE_EQ(report.attributed_ms, 18.0);
  const BottleneckBucket* dominant = report.dominant();
  ASSERT_NE(dominant, nullptr);
  EXPECT_EQ(dominant->resource, BottleneckResource::kDisk);
  EXPECT_DOUBLE_EQ(dominant->elapsed_ms, 12.0);
  EXPECT_DOUBLE_EQ(dominant->service_ms, 5.0);
  EXPECT_DOUBLE_EQ(dominant->queueing_ms, 7.0);
}

TEST(BottleneckTest, OperatorSitesWalksPlanInPreorder) {
  Catalog catalog;
  catalog.AddRelation("R0", 1000, 100);
  catalog.PlaceRelation(0, ServerSite(0));
  Plan plan(MakeDisplay(MakeScan(0, SiteAnnotation::kPrimaryCopy)));
  BindSites(plan, catalog);
  const std::vector<SiteId> sites = OperatorSites(plan);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], ClientSite(0));  // display at the home client
  EXPECT_EQ(sites[1], ServerSite(0));  // scan at the primary copy
}

}  // namespace
}  // namespace dimsum

// The joined EXPLAIN ANALYZE report: BuildExplainReport over a real
// estimate + simulation pair, the invariants of its error metrics, the
// "dimsum.explain.v1" JSON document (parsed back through common/json),
// and the --explain mode parser.

#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "cost/response_time.h"
#include "exec/executor.h"
#include "plan/binding.h"

namespace dimsum {
namespace {

Catalog PaperCatalog(int relations, int servers, double cached = 0.0) {
  Catalog catalog;
  for (int i = 0; i < relations; ++i) {
    const RelationId id =
        catalog.AddRelation("R" + std::to_string(i), 10000, 100);
    catalog.PlaceRelation(id, ServerSite(i % servers));
    catalog.SetCachedFraction(id, cached);
  }
  return catalog;
}

QueryGraph ChainQuery(int n) {
  std::vector<RelationId> rels;
  for (int i = 0; i < n; ++i) rels.push_back(i);
  return QueryGraph::Chain(std::move(rels));
}

Plan LeftDeepPlan(int n) {
  std::unique_ptr<PlanNode> tree = MakeScan(0, SiteAnnotation::kPrimaryCopy);
  for (int i = 1; i < n; ++i) {
    tree = MakeJoin(MakeScan(i, SiteAnnotation::kPrimaryCopy),
                    std::move(tree), SiteAnnotation::kConsumer);
  }
  return Plan(MakeDisplay(std::move(tree)));
}

/// One costed + simulated 4-way plan, shared across the report tests.
struct Joined {
  Catalog catalog = PaperCatalog(4, 2, /*cached=*/0.25);
  QueryGraph query = ChainQuery(4);
  Plan plan = LeftDeepPlan(4);
  SystemConfig config;
  PlanEstimate est;
  ExecMetrics act;
  int nodes = 0;

  Joined() {
    config.num_servers = 2;
    config.collect_operator_actuals = true;
    config.collect_histograms = true;
    BindSites(plan, catalog);
    EstimateTime(plan, catalog, query, config.params, {}, &est);
    act = ExecutePlan(plan, catalog, query, config);
    plan.ForEach([this](const PlanNode&) { ++nodes; });
  }
};

TEST(ExplainReportTest, JoinsEstimatesAndActualsPerOperator) {
  Joined j;
  const ExplainReport report = BuildExplainReport(j.est, j.act);

  EXPECT_EQ(report.est_response_ms, j.est.response_ms);
  EXPECT_EQ(report.act_response_ms, j.act.response_ms);
  EXPECT_GT(report.act_total_ms, 0.0);
  ASSERT_EQ(static_cast<int>(report.ops.size()), j.nodes);

  for (int i = 0; i < static_cast<int>(report.ops.size()); ++i) {
    const ExplainOp& op = report.ops[i];
    EXPECT_EQ(op.est.op_id, i);
    EXPECT_FALSE(op.label.empty());
    EXPECT_NEAR(op.act_total_ms, op.act.cpu_ms + op.act.disk_ms + op.act.net_ms,
                1e-12);
    for (double err : {op.err_cpu, op.err_disk, op.err_net, op.err_total}) {
      EXPECT_TRUE(std::isfinite(err));
      EXPECT_GE(err, -1.0);
      EXPECT_LE(err, 1.0);
    }
  }
  EXPECT_TRUE(std::isfinite(report.response_err));
  EXPECT_GE(report.mean_op_err, 0.0);
  EXPECT_GE(report.max_op_err, report.mean_op_err);
  EXPECT_LE(report.max_op_err, 1.0);

  // worst is a permutation of all op ids ordered by |est-act| ms.
  ASSERT_EQ(report.worst.size(), report.ops.size());
  auto abs_diff = [&](int id) {
    return std::abs(report.ops[id].est.total_ms() -
                    report.ops[id].act_total_ms);
  };
  for (size_t i = 1; i < report.worst.size(); ++i) {
    EXPECT_GE(abs_diff(report.worst[i - 1]), abs_diff(report.worst[i]));
  }

  // Histograms were collected, so the distribution summaries are present.
  ASSERT_TRUE(report.disk_service.has_value());
  EXPECT_GT(report.disk_service->count, 0);
  EXPECT_LE(report.disk_service->p50, report.disk_service->p99);
}

TEST(ExplainReportTest, TextRendersEveryOperatorAndRollup) {
  Joined j;
  const ExplainReport report = BuildExplainReport(j.est, j.act);
  const std::string text = ExplainToText(report, j.plan);
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(text.find("phases"), std::string::npos);
  EXPECT_NE(text.find("worst"), std::string::npos);
  // One est/sim annotation pair under every operator of the tree.
  size_t est_lines = 0, sim_lines = 0;
  for (size_t pos = 0; (pos = text.find("est ", pos)) != std::string::npos;
       ++pos) {
    ++est_lines;
  }
  for (size_t pos = 0; (pos = text.find("sim ", pos)) != std::string::npos;
       ++pos) {
    ++sim_lines;
  }
  EXPECT_GE(est_lines, report.ops.size());
  EXPECT_GE(sim_lines, report.ops.size());
}

TEST(ExplainReportTest, JsonMatchesTheV1Schema) {
  Joined j;
  const ExplainReport report = BuildExplainReport(j.est, j.act);
  std::ostringstream out;
  WriteExplainJson(report, out);

  std::string error;
  const std::optional<JsonValue> doc = JsonValue::Parse(out.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  for (const char* key : {"schema", "estimated", "simulated", "errors",
                          "operators", "phases", "sites", "worst"}) {
    EXPECT_NE(doc->Find(key), nullptr) << key;
  }
  EXPECT_EQ(doc->Find("schema")->string_value(), "dimsum.explain.v1");
  EXPECT_EQ(static_cast<int>(doc->Find("operators")->array_items().size()),
            j.nodes);

  for (const JsonValue& op : doc->Find("operators")->array_items()) {
    for (const char* key : {"op_id", "label", "type", "site", "phase", "est",
                            "sim", "err"}) {
      ASSERT_NE(op.Find(key), nullptr) << key;
    }
    for (const char* key : {"cpu", "disk", "net", "total"}) {
      const double err = op.Find("err")->Find(key)->number_value();
      EXPECT_TRUE(std::isfinite(err));
      EXPECT_GE(err, -1.0);
      EXPECT_LE(err, 1.0);
    }
  }
  // Histograms were collected, so distributions must be present.
  ASSERT_NE(doc->Find("distributions"), nullptr);
  ASSERT_NE(doc->Find("distributions")->Find("disk_service_ms"), nullptr);
  EXPECT_GT(doc->Find("distributions")
                ->Find("disk_service_ms")
                ->Find("count")
                ->number_value(),
            0.0);
}

TEST(ExplainReportTest, PhaseAndSiteRowsCoverBothSides) {
  Joined j;
  const ExplainReport report = BuildExplainReport(j.est, j.act);
  ASSERT_FALSE(report.phases.empty());
  for (const ExplainPhaseRow& phase : report.phases) {
    EXPECT_GE(phase.act_span_ms, 0.0);
    EXPECT_FALSE(phase.ops.empty());
    EXPECT_TRUE(std::is_sorted(phase.ops.begin(), phase.ops.end()));
  }
  ASSERT_FALSE(report.sites.empty());
  double est_cpu = 0.0, act_cpu = 0.0;
  for (const ExplainSiteRow& site : report.sites) {
    est_cpu += site.est_cpu_ms;
    act_cpu += site.act_cpu_ms;
  }
  EXPECT_GT(est_cpu, 0.0);
  EXPECT_GT(act_cpu, 0.0);
}

TEST(ExplainRelErrTest, IsSymmetricBoundedAndEpsilonSafe) {
  EXPECT_EQ(ExplainRelErr(0.0, 0.0), 0.0);
  EXPECT_EQ(ExplainRelErr(1e-9, 1e-9), 0.0);  // both below eps
  EXPECT_DOUBLE_EQ(ExplainRelErr(2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(ExplainRelErr(1.0, 2.0), -0.5);
  EXPECT_DOUBLE_EQ(ExplainRelErr(5.0, 0.0), 1.0);   // pure over-estimate
  EXPECT_DOUBLE_EQ(ExplainRelErr(0.0, 5.0), -1.0);  // pure under-estimate
  for (double est : {0.0, 0.5, 3.0}) {
    for (double act : {0.0, 0.5, 3.0}) {
      const double err = ExplainRelErr(est, act);
      EXPECT_TRUE(std::isfinite(err));
      EXPECT_GE(err, -1.0);
      EXPECT_LE(err, 1.0);
      EXPECT_DOUBLE_EQ(err, -ExplainRelErr(act, est));
    }
  }
}

TEST(ParseExplainModeTest, AcceptsDocumentedValuesRejectsOthers) {
  EXPECT_EQ(ParseExplainMode(""), ExplainMode::kText);
  EXPECT_EQ(ParseExplainMode("1"), ExplainMode::kText);
  EXPECT_EQ(ParseExplainMode("text"), ExplainMode::kText);
  EXPECT_EQ(ParseExplainMode("json"), ExplainMode::kJson);
  EXPECT_EQ(ParseExplainMode("0"), ExplainMode::kOff);
  EXPECT_EQ(ParseExplainMode("off"), ExplainMode::kOff);
  EXPECT_FALSE(ParseExplainMode("bogus").has_value());
  EXPECT_FALSE(ParseExplainMode("TEXT").has_value());
  EXPECT_FALSE(ParseExplainMode("jsonx").has_value());
  EXPECT_FALSE(ParseExplainMode(" json").has_value());
}

}  // namespace
}  // namespace dimsum

#include "core/report.h"

#include <sstream>

#include <gtest/gtest.h>

namespace dimsum {
namespace {

TEST(ReportTableTest, AlignsColumns) {
  ReportTable table({"a", "long header", "x"});
  table.AddRow({"1", "2", "3"});
  table.AddRow({"10000", "2", "3"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  // Three lines, each ending in newline.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  // Header present and rows align under it.
  EXPECT_NE(text.find("long header"), std::string::npos);
  std::istringstream lines(text);
  std::string header, row1, row2;
  std::getline(lines, header);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.size(), row1.size());
  EXPECT_EQ(row1.size(), row2.size());
}

TEST(ReportTableDeathTest, WrongArityRejected) {
  ReportTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only one"}), "check failed");
}

TEST(FmtTest, FixedPrecision) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(3.14159, 0), "3");
  EXPECT_EQ(Fmt(1000.0, 1), "1000.0");
}

TEST(FmtCiTest, MeanPlusMinus) {
  EXPECT_EQ(FmtCi(12.5, 0.25, 2), "12.50 +-0.25");
  EXPECT_EQ(FmtCi(100.0, 0.0, 0), "100 +-0");
}

}  // namespace
}  // namespace dimsum

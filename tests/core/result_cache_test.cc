#include "core/result_cache.h"

#include <gtest/gtest.h>

#include "workload/benchmark.h"

namespace dimsum {
namespace {

TEST(ResultCacheTest, SignatureCanonicalizesOrder) {
  QueryGraph a = QueryGraph::Chain({0, 1, 2});
  QueryGraph b;
  b.relations = {2, 0, 1};
  b.edges = {{1, 0}, {2, 1}};
  b.selectivity_factor = 1.0;
  EXPECT_EQ(ResultCache::Signature(a), ResultCache::Signature(b));
}

TEST(ResultCacheTest, SignatureDistinguishesQueries) {
  QueryGraph chain = QueryGraph::Chain({0, 1, 2});
  QueryGraph complete = QueryGraph::Complete({0, 1, 2});
  QueryGraph hisel = QueryGraph::Chain({0, 1, 2}, 0.2);
  EXPECT_NE(ResultCache::Signature(chain), ResultCache::Signature(complete));
  EXPECT_NE(ResultCache::Signature(chain), ResultCache::Signature(hisel));
}

TEST(ResultCacheTest, LookupAfterInsert) {
  ResultCache cache(1000);
  QueryGraph query = QueryGraph::Chain({0, 1});
  EXPECT_FALSE(cache.Lookup(query));
  cache.Insert(query, 250);
  EXPECT_TRUE(cache.Lookup(query));
  EXPECT_EQ(cache.used_pages(), 250);
}

TEST(ResultCacheTest, LruEvictionByPages) {
  ResultCache cache(500);
  QueryGraph q1 = QueryGraph::Chain({0, 1});
  QueryGraph q2 = QueryGraph::Chain({2, 3});
  QueryGraph q3 = QueryGraph::Chain({4, 5});
  cache.Insert(q1, 250);
  cache.Insert(q2, 250);
  EXPECT_TRUE(cache.Lookup(q1));  // refreshes q1; q2 is now LRU
  cache.Insert(q3, 250);          // evicts q2
  EXPECT_TRUE(cache.Lookup(q1));
  EXPECT_FALSE(cache.Lookup(q2));
  EXPECT_TRUE(cache.Lookup(q3));
  EXPECT_LE(cache.used_pages(), 500);
}

TEST(ResultCacheTest, OversizedResultNotAdmitted) {
  ResultCache cache(100);
  QueryGraph query = QueryGraph::Chain({0, 1});
  cache.Insert(query, 250);
  EXPECT_FALSE(cache.Lookup(query));
  EXPECT_EQ(cache.used_pages(), 0);
}

TEST(CachingSessionTest, RepeatedQueryIsServedLocally) {
  WorkloadSpec spec;
  spec.num_relations = 2;
  spec.num_servers = 1;
  BenchmarkWorkload w = MakeChainWorkloadRoundRobin(spec);
  SystemConfig config;
  config.num_servers = 1;
  config.params.buf_alloc = BufAlloc::kMaximum;
  ClientServerSystem system(std::move(w.catalog), config);
  CachingSession session(system, /*cache_pages=*/1000);

  OptimizerConfig opt;
  opt.ii_starts = 4;
  opt.ii_patience = 24;
  auto first = session.Run(w.query, ShippingPolicy::kQueryShipping,
                           OptimizeMetric::kResponseTime, 1, &opt);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.data_pages_sent, 0);

  auto second = session.Run(w.query, ShippingPolicy::kQueryShipping,
                            OptimizeMetric::kResponseTime, 2, &opt);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.data_pages_sent, 0);
  // Reading 250 result pages locally beats re-running the join.
  EXPECT_LT(second.response_ms, first.response_ms * 0.7);
  EXPECT_GT(second.response_ms, 0.0);
}

TEST(CachingSessionTest, DifferentQueryMisses) {
  WorkloadSpec spec;
  spec.num_relations = 4;
  spec.num_servers = 1;
  BenchmarkWorkload w = MakeChainWorkloadRoundRobin(spec);
  SystemConfig config;
  config.num_servers = 1;
  config.params.buf_alloc = BufAlloc::kMaximum;
  ClientServerSystem system(std::move(w.catalog), config);
  CachingSession session(system, 1000);
  OptimizerConfig opt;
  opt.ii_starts = 4;
  opt.ii_patience = 24;

  QueryGraph q1 = QueryGraph::Chain({0, 1});
  QueryGraph q2 = QueryGraph::Chain({2, 3});
  auto first = session.Run(q1, ShippingPolicy::kQueryShipping,
                           OptimizeMetric::kResponseTime, 1, &opt);
  auto other = session.Run(q2, ShippingPolicy::kQueryShipping,
                           OptimizeMetric::kResponseTime, 2, &opt);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(other.cache_hit);
  EXPECT_EQ(session.cache().entries(), 2);
}

}  // namespace
}  // namespace dimsum

#include "core/system.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "plan/binding.h"
#include "plan/validate.h"
#include "workload/benchmark.h"

namespace dimsum {
namespace {

OptimizerConfig FastOptimizer() {
  OptimizerConfig config;
  config.ii_starts = 4;
  config.ii_patience = 24;
  config.sa_stage_moves_per_join = 4;
  return config;
}

TEST(ClientServerSystemTest, RunOptimizesAndExecutes) {
  WorkloadSpec spec;
  spec.num_relations = 2;
  BenchmarkWorkload w = MakeChainWorkloadRoundRobin(spec);
  SystemConfig config;
  config.num_servers = 1;
  ClientServerSystem system(std::move(w.catalog), config);
  OptimizerConfig opt = FastOptimizer();
  auto result =
      system.Run(w.query, ShippingPolicy::kHybridShipping,
                 OptimizeMetric::kResponseTime, /*seed=*/1, &opt);
  EXPECT_TRUE(IsFullyBound(result.optimize.plan));
  EXPECT_GT(result.optimize.cost, 0.0);
  EXPECT_GT(result.execute.response_ms, 0.0);
}

TEST(ClientServerSystemTest, OptimizerEstimateTracksSimulator) {
  // The cost model is not exact (the paper says so explicitly), but for a
  // simple plan it should be within a small factor of the measurement.
  WorkloadSpec spec;
  spec.num_relations = 2;
  BenchmarkWorkload w = MakeChainWorkloadRoundRobin(spec);
  SystemConfig config;
  config.num_servers = 1;
  ClientServerSystem system(std::move(w.catalog), config);
  OptimizerConfig opt = FastOptimizer();
  auto result =
      system.Run(w.query, ShippingPolicy::kQueryShipping,
                 OptimizeMetric::kResponseTime, /*seed=*/2, &opt);
  EXPECT_GT(result.optimize.cost, result.execute.response_ms * 0.3);
  EXPECT_LT(result.optimize.cost, result.execute.response_ms * 3.0);
}

TEST(ClientServerSystemTest, ServerDiskUtilizationFromLoadRates) {
  Catalog catalog;
  catalog.AddRelation("R0", 10000, 100);
  catalog.PlaceRelation(0, ServerSite(0));
  SystemConfig config;
  config.num_servers = 2;
  config.server_disk_load_per_sec[ServerSite(0)] = 40.0;
  ClientServerSystem system(std::move(catalog), config);
  auto utilization = system.ServerDiskUtilization();
  // 40 req/s at ~11.8 ms/req ~ 47% (the paper calls it 50%).
  EXPECT_NEAR(utilization.at(ServerSite(0)), 0.47, 0.03);
  EXPECT_EQ(utilization.count(ServerSite(1)), 0u);
}

TEST(ClientServerSystemTest, UtilizationIsCapped) {
  Catalog catalog;
  catalog.AddRelation("R0", 10000, 100);
  catalog.PlaceRelation(0, ServerSite(0));
  SystemConfig config;
  config.server_disk_load_per_sec[ServerSite(0)] = 500.0;  // overload
  ClientServerSystem system(std::move(catalog), config);
  EXPECT_LE(system.ServerDiskUtilization().at(ServerSite(0)), 0.95);
}

TEST(ExperimentTest, ReplicateStopsWhenConverged) {
  int calls = 0;
  RunningStat stat = Replicate(
      [&](uint64_t) {
        ++calls;
        return 100.0;  // zero variance: converges at min_replications
      },
      ReplicationOptions{});
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stat.mean(), 100.0);
}

TEST(ExperimentTest, ReplicateRunsToCapOnNoisyData) {
  int calls = 0;
  ReplicationOptions options;
  options.max_replications = 7;
  Replicate(
      [&](uint64_t seed) {
        ++calls;
        return (seed % 2 == 0) ? 1.0 : 1000.0;  // wildly noisy
      },
      options);
  EXPECT_EQ(calls, 7);
}

TEST(ExperimentTest, SeedsAreSequential) {
  std::vector<uint64_t> seeds;
  ReplicationOptions options;
  options.min_replications = 4;
  options.max_replications = 4;
  Replicate(
      [&](uint64_t seed) {
        seeds.push_back(seed);
        return 1.0;
      },
      options, /*base_seed=*/100);
  EXPECT_EQ(seeds, (std::vector<uint64_t>{100, 101, 102, 103}));
}

}  // namespace
}  // namespace dimsum

#include "cost/cardinality.h"

#include <gtest/gtest.h>

namespace dimsum {
namespace {

Catalog PaperCatalog(int relations) {
  Catalog catalog;
  for (int i = 0; i < relations; ++i) {
    const RelationId id =
        catalog.AddRelation("R" + std::to_string(i), 10000, 100);
    catalog.PlaceRelation(id, ServerSite(0));
  }
  return catalog;
}

TEST(CardinalityTest, ScanProducesWholeRelation) {
  Catalog catalog = PaperCatalog(1);
  QueryGraph query = QueryGraph::Chain({0});
  Plan plan(MakeDisplay(MakeScan(0, SiteAnnotation::kClient)));
  PlanStats stats = ComputeStats(plan, catalog, query, CostParams{});
  const StreamStats& scan = stats.at(plan.root()->left.get());
  EXPECT_EQ(scan.tuples, 10000);
  EXPECT_EQ(scan.tuple_bytes, 100);
  EXPECT_EQ(scan.pages, 250);
}

TEST(CardinalityTest, ModerateJoinKeepsBaseRelationSize) {
  // The paper's functional join: result has the size and cardinality of one
  // base relation.
  Catalog catalog = PaperCatalog(2);
  QueryGraph query = QueryGraph::Chain({0, 1});
  auto join = MakeJoin(MakeScan(0, SiteAnnotation::kClient),
                       MakeScan(1, SiteAnnotation::kClient),
                       SiteAnnotation::kConsumer);
  Plan plan(MakeDisplay(std::move(join)));
  PlanStats stats = ComputeStats(plan, catalog, query, CostParams{});
  const StreamStats& out = stats.at(plan.root()->left.get());
  EXPECT_EQ(out.tuples, 10000);
  EXPECT_EQ(out.tuple_bytes, 100);  // projected back to 100 bytes
  EXPECT_EQ(out.pages, 250);
}

TEST(CardinalityTest, TenWayChainIntermediatesStayBaseSized) {
  Catalog catalog = PaperCatalog(10);
  std::vector<RelationId> rels;
  for (int i = 0; i < 10; ++i) rels.push_back(i);
  QueryGraph query = QueryGraph::Chain(rels);
  // Left-deep plan.
  std::unique_ptr<PlanNode> tree = MakeScan(0, SiteAnnotation::kClient);
  for (int i = 1; i < 10; ++i) {
    tree = MakeJoin(std::move(tree), MakeScan(i, SiteAnnotation::kClient),
                    SiteAnnotation::kConsumer);
  }
  Plan plan(MakeDisplay(std::move(tree)));
  PlanStats stats = ComputeStats(plan, catalog, query, CostParams{});
  plan.ForEach([&](const PlanNode& node) {
    if (node.type == OpType::kJoin) {
      EXPECT_EQ(stats.at(&node).tuples, 10000);
    }
  });
}

TEST(CardinalityTest, HiSelJoinShrinksResult) {
  Catalog catalog = PaperCatalog(2);
  QueryGraph query = QueryGraph::Chain({0, 1}, /*selectivity_factor=*/0.2);
  auto join = MakeJoin(MakeScan(0, SiteAnnotation::kClient),
                       MakeScan(1, SiteAnnotation::kClient),
                       SiteAnnotation::kConsumer);
  Plan plan(MakeDisplay(std::move(join)));
  PlanStats stats = ComputeStats(plan, catalog, query, CostParams{});
  EXPECT_EQ(stats.at(plan.root()->left.get()).tuples, 2000);
  EXPECT_EQ(stats.at(plan.root()->left.get()).pages, 50);
}

TEST(CardinalityTest, SelectReducesCardinality) {
  Catalog catalog = PaperCatalog(1);
  QueryGraph query = QueryGraph::Chain({0});
  auto select = MakeSelect(MakeScan(0, SiteAnnotation::kClient), 0.1,
                           SiteAnnotation::kConsumer);
  Plan plan(MakeDisplay(std::move(select)));
  PlanStats stats = ComputeStats(plan, catalog, query, CostParams{});
  EXPECT_EQ(stats.at(plan.root()->left.get()).tuples, 1000);
  EXPECT_EQ(stats.at(plan.root()->left.get()).pages, 25);
}

TEST(CardinalityTest, CartesianProductMultiplies) {
  Catalog catalog = PaperCatalog(3);
  QueryGraph query = QueryGraph::Chain({0, 1, 2});
  // R0 x R2 (no predicate connects them directly).
  auto cross = MakeJoin(MakeScan(0, SiteAnnotation::kClient),
                        MakeScan(2, SiteAnnotation::kClient),
                        SiteAnnotation::kConsumer);
  auto join = MakeJoin(std::move(cross), MakeScan(1, SiteAnnotation::kClient),
                       SiteAnnotation::kConsumer);
  Plan plan(MakeDisplay(std::move(join)));
  PlanStats stats = ComputeStats(plan, catalog, query, CostParams{});
  const PlanNode* cross_node = plan.root()->left->left.get();
  EXPECT_EQ(stats.at(cross_node).tuples, 100000000LL);
  // The paper quotes ~5 million pages for this Cartesian product; 10^8
  // tuples at 40 tuples/page is 2.5M pages -- same order of magnitude.
  EXPECT_EQ(stats.at(cross_node).pages, 2500000LL);
}

TEST(CardinalityTest, DisplayPassesThrough) {
  Catalog catalog = PaperCatalog(1);
  QueryGraph query = QueryGraph::Chain({0});
  Plan plan(MakeDisplay(MakeScan(0, SiteAnnotation::kClient)));
  PlanStats stats = ComputeStats(plan, catalog, query, CostParams{});
  EXPECT_EQ(stats.at(plan.root()).tuples, 10000);
}

}  // namespace
}  // namespace dimsum

#include "cost/comm_cost.h"

#include <gtest/gtest.h>

#include "plan/binding.h"

namespace dimsum {
namespace {

Catalog PaperCatalog(int relations, int servers) {
  Catalog catalog;
  for (int i = 0; i < relations; ++i) {
    const RelationId id =
        catalog.AddRelation("R" + std::to_string(i), 10000, 100);
    catalog.PlaceRelation(id, ServerSite(i % servers));
  }
  return catalog;
}

Plan TwoWayPlan(SiteAnnotation scan_annotation, SiteAnnotation join_annotation) {
  auto join = MakeJoin(MakeScan(0, scan_annotation),
                       MakeScan(1, scan_annotation), join_annotation);
  return Plan(MakeDisplay(std::move(join)));
}

// Figure 2, left end: DS with an empty cache faults in both relations.
TEST(CommCostTest, DataShippingNoCacheSends500Pages) {
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = QueryGraph::Chain({0, 1});
  Plan plan = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  BindSites(plan, catalog);
  CommCost cost = ComputeCommCost(plan, catalog, query, CostParams{});
  EXPECT_EQ(cost.pages, 500);
}

// Figure 2: QS always ships exactly the 250-page result.
TEST(CommCostTest, QueryShippingSends250PagesRegardlessOfCache) {
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = QueryGraph::Chain({0, 1});
  for (double cached : {0.0, 0.25, 0.5, 1.0}) {
    catalog.SetCachedFraction(0, cached);
    catalog.SetCachedFraction(1, cached);
    Plan plan =
        TwoWayPlan(SiteAnnotation::kPrimaryCopy, SiteAnnotation::kInnerRel);
    BindSites(plan, catalog);
    CommCost cost = ComputeCommCost(plan, catalog, query, CostParams{});
    EXPECT_EQ(cost.pages, 250) << "cached=" << cached;
  }
}

// Figure 2: DS decreases linearly with caching; crossover at 50%.
TEST(CommCostTest, DataShippingDecreasesLinearlyWithCache) {
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = QueryGraph::Chain({0, 1});
  const std::vector<std::pair<double, int64_t>> expectations = {
      {0.0, 500}, {0.25, 374}, {0.5, 250}, {0.75, 124}, {1.0, 0}};
  for (const auto& [cached, pages] : expectations) {
    catalog.SetCachedFraction(0, cached);
    catalog.SetCachedFraction(1, cached);
    Plan plan = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
    BindSites(plan, catalog);
    CommCost cost = ComputeCommCost(plan, catalog, query, CostParams{});
    EXPECT_EQ(cost.pages, pages) << "cached=" << cached;
  }
}

// Figure 6, left end: QS with one server sends only the result.
TEST(CommCostTest, TenWayQueryShippingOneServer) {
  Catalog catalog = PaperCatalog(10, 1);
  std::vector<RelationId> rels;
  for (int i = 0; i < 10; ++i) rels.push_back(i);
  QueryGraph query = QueryGraph::Chain(rels);
  std::unique_ptr<PlanNode> tree = MakeScan(0, SiteAnnotation::kPrimaryCopy);
  for (int i = 1; i < 10; ++i) {
    tree = MakeJoin(std::move(tree), MakeScan(i, SiteAnnotation::kPrimaryCopy),
                    SiteAnnotation::kInnerRel);
  }
  Plan plan(MakeDisplay(std::move(tree)));
  BindSites(plan, catalog);
  CommCost cost = ComputeCommCost(plan, catalog, query, CostParams{});
  EXPECT_EQ(cost.pages, 250);
}

// Figure 6, right end: DS always ships all ten relations.
TEST(CommCostTest, TenWayDataShippingSends2500Pages) {
  for (int servers : {1, 5, 10}) {
    Catalog catalog = PaperCatalog(10, servers);
    std::vector<RelationId> rels;
    for (int i = 0; i < 10; ++i) rels.push_back(i);
    QueryGraph query = QueryGraph::Chain(rels);
    std::unique_ptr<PlanNode> tree = MakeScan(0, SiteAnnotation::kClient);
    for (int i = 1; i < 10; ++i) {
      tree = MakeJoin(std::move(tree), MakeScan(i, SiteAnnotation::kClient),
                      SiteAnnotation::kConsumer);
    }
    Plan plan(MakeDisplay(std::move(tree)));
    BindSites(plan, catalog);
    CommCost cost = ComputeCommCost(plan, catalog, query, CostParams{});
    EXPECT_EQ(cost.pages, 2500) << servers << " servers";
  }
}

// Server-server shipping: a join at R0's server pulls R1 from its server,
// then ships the result to the client.
TEST(CommCostTest, ServerToServerTransferCounted) {
  Catalog catalog = PaperCatalog(2, 2);
  QueryGraph query = QueryGraph::Chain({0, 1});
  Plan plan =
      TwoWayPlan(SiteAnnotation::kPrimaryCopy, SiteAnnotation::kInnerRel);
  BindSites(plan, catalog);
  CommCost cost = ComputeCommCost(plan, catalog, query, CostParams{});
  EXPECT_EQ(cost.pages, 250 + 250);  // R1 to server 1, result to client
}

// Hybrid plans may ship cached data from the client to a server.
TEST(CommCostTest, ClientToServerShipmentCounted) {
  Catalog catalog = PaperCatalog(2, 2);
  catalog.SetCachedFraction(0, 1.0);
  QueryGraph query = QueryGraph::Chain({0, 1});
  // Scan R0 at the client (fully cached: no faults), join at R1's server.
  auto join = MakeJoin(MakeScan(0, SiteAnnotation::kClient),
                       MakeScan(1, SiteAnnotation::kPrimaryCopy),
                       SiteAnnotation::kOuterRel);
  Plan plan(MakeDisplay(std::move(join)));
  BindSites(plan, catalog);
  CommCost cost = ComputeCommCost(plan, catalog, query, CostParams{});
  // R0's 250 pages flow client -> server 2; the result flows back.
  EXPECT_EQ(cost.pages, 500);
}

TEST(CommCostTest, MessageAndByteAccounting) {
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = QueryGraph::Chain({0, 1});
  CostParams params;
  Plan plan = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  BindSites(plan, catalog);
  CommCost cost = ComputeCommCost(plan, catalog, query, params);
  EXPECT_EQ(cost.messages, 2 * 500);  // request + response per faulted page
  EXPECT_EQ(cost.bytes,
            500 * (params.page_bytes + params.fault_request_bytes));
}

}  // namespace
}  // namespace dimsum

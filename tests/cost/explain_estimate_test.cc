// Estimate-side EXPLAIN capture: EstimateTime with a PlanEstimate out
// param must record one operator per plan node (pre-order), attribute
// per-resource demand consistently with the plan-level totals, and --
// critically -- return exactly the same TimeEstimate with and without
// collection (capture is side-band, never part of the model).

#include "cost/response_time.h"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "plan/binding.h"

namespace dimsum {
namespace {

Catalog PaperCatalog(int relations, int servers, double cached = 0.0) {
  Catalog catalog;
  for (int i = 0; i < relations; ++i) {
    const RelationId id =
        catalog.AddRelation("R" + std::to_string(i), 10000, 100);
    catalog.PlaceRelation(id, ServerSite(i % servers));
    catalog.SetCachedFraction(id, cached);
  }
  return catalog;
}

QueryGraph ChainQuery(int n) {
  std::vector<RelationId> rels;
  for (int i = 0; i < n; ++i) rels.push_back(i);
  return QueryGraph::Chain(std::move(rels));
}

/// Left-deep n-way plan with server scans and client joins: crossing
/// edges, both-site CPU, and a multi-phase pipeline.
Plan LeftDeepPlan(int n) {
  std::unique_ptr<PlanNode> tree = MakeScan(0, SiteAnnotation::kPrimaryCopy);
  for (int i = 1; i < n; ++i) {
    tree = MakeJoin(MakeScan(i, SiteAnnotation::kPrimaryCopy),
                    std::move(tree), SiteAnnotation::kConsumer);
  }
  return Plan(MakeDisplay(std::move(tree)));
}

int PlanSize(const Plan& plan) {
  int n = 0;
  plan.ForEach([&n](const PlanNode&) { ++n; });
  return n;
}

TEST(ExplainEstimateTest, CaptureDoesNotChangeTheEstimate) {
  Catalog catalog = PaperCatalog(4, 2, /*cached=*/0.25);
  QueryGraph query = ChainQuery(4);
  CostParams params;
  Plan plan = LeftDeepPlan(4);
  BindSites(plan, catalog);
  const TimeEstimate bare = EstimateTime(plan, catalog, query, params);
  PlanEstimate explain;
  const TimeEstimate captured =
      EstimateTime(plan, catalog, query, params, {}, &explain);
  EXPECT_EQ(bare.response_ms, captured.response_ms);
  EXPECT_EQ(bare.total_ms, captured.total_ms);
  EXPECT_EQ(explain.response_ms, bare.response_ms);
  EXPECT_EQ(explain.total_ms, bare.total_ms);
}

TEST(ExplainEstimateTest, OneRecordPerPlanNodeInPreOrder) {
  Catalog catalog = PaperCatalog(3, 2);
  QueryGraph query = ChainQuery(3);
  CostParams params;
  Plan plan = LeftDeepPlan(3);
  BindSites(plan, catalog);
  PlanEstimate explain;
  EstimateTime(plan, catalog, query, params, {}, &explain);

  ASSERT_EQ(static_cast<int>(explain.ops.size()), PlanSize(plan));
  // Pre-order identity: record i describes the i-th node of the walk.
  int next = 0;
  plan.ForEach([&](const PlanNode& node) {
    const OperatorEstimate& op = explain.ops[next];
    EXPECT_EQ(op.op_id, next);
    EXPECT_EQ(op.type, node.type);
    EXPECT_EQ(op.site, node.bound_site);
    if (node.type == OpType::kScan) {
      EXPECT_EQ(op.relation, node.relation);
      EXPECT_GT(op.est_pages, 0);
    }
    ++next;
  });
  // The display root is op 0.
  EXPECT_EQ(explain.ops[0].type, OpType::kDisplay);
}

TEST(ExplainEstimateTest, PerOpDemandsRollUpToPlanTotals) {
  Catalog catalog = PaperCatalog(4, 2, /*cached=*/0.5);
  QueryGraph query = ChainQuery(4);
  CostParams params;
  Plan plan = LeftDeepPlan(4);
  BindSites(plan, catalog);
  PlanEstimate explain;
  EstimateTime(plan, catalog, query, params, {}, &explain);

  double cpu = 0.0, disk = 0.0, net = 0.0;
  double site_cpu = 0.0, site_disk = 0.0;
  for (const OperatorEstimate& op : explain.ops) {
    EXPECT_GE(op.cpu_ms, 0.0);
    EXPECT_GE(op.disk_ms, 0.0);
    EXPECT_GE(op.net_ms, 0.0);
    cpu += op.cpu_ms;
    disk += op.disk_ms;
    net += op.net_ms;
  }
  for (const auto& [site, ms] : explain.cpu_ms_by_site) site_cpu += ms;
  for (const auto& [site, ms] : explain.disk_ms_by_site) site_disk += ms;
  // Per-op and per-site views are two partitions of the same demand.
  EXPECT_NEAR(cpu, site_cpu, 1e-9 * std::max(1.0, cpu));
  EXPECT_NEAR(disk, site_disk, 1e-9 * std::max(1.0, disk));
  EXPECT_NEAR(net, explain.net_ms, 1e-9 * std::max(1.0, net));
  // Pre-interference per-op demand never exceeds the (interference
  // inflated) plan total, and the plan does real work.
  EXPECT_GT(cpu + disk + net, 0.0);
  EXPECT_LE(cpu + disk + net, explain.total_ms + 1e-6);
}

TEST(ExplainEstimateTest, PhasesCoverOpsAndCarryTheCriticalPath) {
  Catalog catalog = PaperCatalog(4, 2);
  QueryGraph query = ChainQuery(4);
  CostParams params;
  params.buf_alloc = BufAlloc::kMinimum;  // blocking joins => many phases
  Plan plan = LeftDeepPlan(4);
  BindSites(plan, catalog);
  PlanEstimate explain;
  EstimateTime(plan, catalog, query, params, {}, &explain);

  ASSERT_FALSE(explain.phases.empty());
  std::set<int> ids;
  double max_finish = 0.0;
  for (const PhaseEstimate& phase : explain.phases) {
    EXPECT_EQ(phase.id, static_cast<int>(ids.size()));
    ids.insert(phase.id);
    EXPECT_GE(phase.duration_ms, 0.0);
    EXPECT_NEAR(phase.finish_ms - phase.start_ms, phase.duration_ms, 1e-9);
    max_finish = std::max(max_finish, phase.finish_ms);
  }
  // Every operator maps into a dense phase id.
  for (const OperatorEstimate& op : explain.ops) {
    EXPECT_TRUE(ids.count(op.phase)) << "op " << op.op_id;
  }
  // The latest phase finish is the critical path, i.e. the response time.
  EXPECT_NEAR(max_finish, explain.response_ms,
              1e-9 * std::max(1.0, explain.response_ms));
}

TEST(ExplainEstimateTest, ClientScanChainIsRecordedButExcludedFromTotals) {
  // A client scan of uncached data serializes page faults; the chain
  // pseudo-resource must show up on the scan's record without inflating
  // its cpu+disk+net total (its components are already charged there).
  Catalog catalog = PaperCatalog(2, 1, /*cached=*/0.0);
  QueryGraph query = ChainQuery(2);
  CostParams params;
  Plan plan(MakeDisplay(MakeJoin(MakeScan(0, SiteAnnotation::kClient),
                                 MakeScan(1, SiteAnnotation::kClient),
                                 SiteAnnotation::kConsumer)));
  BindSites(plan, catalog);
  PlanEstimate explain;
  EstimateTime(plan, catalog, query, params, {}, &explain);
  bool found_chain = false;
  for (const OperatorEstimate& op : explain.ops) {
    if (op.type == OpType::kScan) {
      EXPECT_GT(op.chain_ms, 0.0);
      EXPECT_GT(op.total_ms(), 0.0);
      found_chain = true;
    }
    EXPECT_NEAR(op.total_ms(), op.cpu_ms + op.disk_ms + op.net_ms, 1e-12);
  }
  EXPECT_TRUE(found_chain);
}

}  // namespace
}  // namespace dimsum

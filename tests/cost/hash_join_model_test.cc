#include "cost/hash_join_model.h"

#include <gtest/gtest.h>

namespace dimsum {
namespace {

TEST(HashJoinModelTest, MaximumAllocationNeverSpills) {
  HashJoinModel m = ComputeHashJoinModel(250, BufAlloc::kMaximum, 1.2);
  EXPECT_TRUE(m.in_memory());
  EXPECT_EQ(m.memory_frames, 300);  // F * M
  EXPECT_EQ(m.spill_fraction, 0.0);
  EXPECT_EQ(m.SpillPages(250), 0);
}

TEST(HashJoinModelTest, MinimumAllocationPaperRelation) {
  // Paper relation: 250 pages, F = 1.2 -> sqrt(300) ~ 17.3 -> 18 frames.
  HashJoinModel m = ComputeHashJoinModel(250, BufAlloc::kMinimum, 1.2);
  EXPECT_FALSE(m.in_memory());
  EXPECT_EQ(m.memory_frames, 18);
  EXPECT_EQ(m.num_partitions, 17);  // ceil((300-18)/17)
  // Nearly everything spills: only one frame stays resident.
  EXPECT_GT(m.spill_fraction, 0.95);
  EXPECT_LT(m.spill_fraction, 1.0);
  // Spilled partitions must individually fit in memory for the join phase.
  const double partition_pages =
      1.2 * 250.0 * m.spill_fraction / m.num_partitions;
  EXPECT_LE(partition_pages, static_cast<double>(m.memory_frames));
}

TEST(HashJoinModelTest, OnePageInnerFitsEvenWithMinimum) {
  // ceil(sqrt(1.2)) = 2 frames >= 1.2 needed frames: no spilling.
  HashJoinModel m = ComputeHashJoinModel(1, BufAlloc::kMinimum, 1.2);
  EXPECT_TRUE(m.in_memory());
  EXPECT_EQ(m.spill_fraction, 0.0);
}

TEST(HashJoinModelTest, SmallInnerStillSpillsUnderMinimum) {
  // Minimum allocation is sqrt(F*M) by definition; 3 pages do not fit in
  // ceil(sqrt(3.6)) = 2 frames, so the join partitions.
  HashJoinModel m = ComputeHashJoinModel(3, BufAlloc::kMinimum, 1.2);
  EXPECT_FALSE(m.in_memory());
}

TEST(HashJoinModelTest, SpillPagesScaleWithInput) {
  HashJoinModel m = ComputeHashJoinModel(250, BufAlloc::kMinimum, 1.2);
  const int64_t inner_spill = m.SpillPages(250);
  const int64_t outer_spill = m.SpillPages(500);
  EXPECT_GT(inner_spill, 200);
  EXPECT_LE(inner_spill, 250);
  EXPECT_NEAR(static_cast<double>(outer_spill),
              2.0 * static_cast<double>(inner_spill), 2.0);
}

TEST(HashJoinModelTest, ZeroPagesInput) {
  HashJoinModel m = ComputeHashJoinModel(0, BufAlloc::kMinimum, 1.2);
  EXPECT_TRUE(m.in_memory());
  EXPECT_EQ(m.SpillPages(0), 0);
}

TEST(HashJoinModelTest, MinimumAllocationSpillsMostOfLargeInputs) {
  // With sqrt(F*M) frames the resident part of the hash table is at most a
  // handful of frames, so nearly everything spills -- but never more than
  // everything, and each spilled partition must fit in memory.
  for (int64_t pages : {10, 50, 250, 1000, 5000}) {
    HashJoinModel m = ComputeHashJoinModel(pages, BufAlloc::kMinimum, 1.2);
    EXPECT_GT(m.spill_fraction, 0.9) << pages << " pages";
    EXPECT_LE(m.spill_fraction, 1.0) << pages << " pages";
    ASSERT_GT(m.num_partitions, 0);
    const double partition_pages =
        1.2 * static_cast<double>(pages) / m.num_partitions;
    EXPECT_LE(partition_pages, static_cast<double>(m.memory_frames) + 1.0)
        << pages << " pages";
  }
}

}  // namespace
}  // namespace dimsum

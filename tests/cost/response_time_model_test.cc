// Focused tests of the response-time model's structure: phase boundaries,
// the serial fault chain, the interference term, and load inflation.

#include <gtest/gtest.h>

#include "cost/response_time.h"
#include "plan/binding.h"

namespace dimsum {
namespace {

Catalog MakeCatalog(int relations, int servers, double cached = 0.0) {
  Catalog catalog;
  for (int i = 0; i < relations; ++i) {
    catalog.AddRelation("R" + std::to_string(i), 10000, 100);
    catalog.PlaceRelation(i, ServerSite(i % servers));
    catalog.SetCachedFraction(i, cached);
  }
  return catalog;
}

TEST(ResponseModelTest, SingleScanIsDiskBound) {
  Catalog catalog = MakeCatalog(1, 1);
  QueryGraph query = QueryGraph::Chain({0});
  CostParams params;
  Plan plan(MakeDisplay(MakeScan(0, SiteAnnotation::kPrimaryCopy)));
  BindSites(plan, catalog);
  TimeEstimate estimate = EstimateTime(plan, catalog, query, params);
  // 250 sequential pages dominate; everything else overlaps.
  EXPECT_NEAR(estimate.response_ms, 250 * params.seq_page_ms, 100.0);
}

TEST(ResponseModelTest, FaultChainIsSerial) {
  // The faulting scan's chain pseudo-resource makes its estimate the SUM
  // of per-page round-trip components, well above any single resource.
  Catalog catalog = MakeCatalog(1, 1);
  QueryGraph query = QueryGraph::Chain({0});
  CostParams params;
  Plan plan(MakeDisplay(MakeScan(0, SiteAnnotation::kClient)));
  BindSites(plan, catalog);
  TimeEstimate estimate = EstimateTime(plan, catalog, query, params);
  const double disk_only = 250 * params.seq_page_ms;
  EXPECT_GT(estimate.response_ms, disk_only * 1.4);
}

TEST(ResponseModelTest, CachedScanHasNoChain) {
  Catalog catalog = MakeCatalog(1, 1, /*cached=*/1.0);
  QueryGraph query = QueryGraph::Chain({0});
  CostParams params;
  Plan plan(MakeDisplay(MakeScan(0, SiteAnnotation::kClient)));
  BindSites(plan, catalog);
  TimeEstimate estimate = EstimateTime(plan, catalog, query, params);
  EXPECT_NEAR(estimate.response_ms, 250 * params.seq_page_ms, 100.0);
}

TEST(ResponseModelTest, InterferenceTermChargesScansAtRandomRate) {
  // QS 2-way with min allocation: scan and temp I/O share the server disk
  // in the same phases, so scan demand is inflated toward rand_page_ms.
  Catalog catalog = MakeCatalog(2, 1);
  QueryGraph query = QueryGraph::Chain({0, 1});
  CostParams min_alloc;
  min_alloc.buf_alloc = BufAlloc::kMinimum;
  Plan plan(MakeDisplay(MakeJoin(MakeScan(0, SiteAnnotation::kPrimaryCopy),
                                 MakeScan(1, SiteAnnotation::kPrimaryCopy),
                                 SiteAnnotation::kInnerRel)));
  BindSites(plan, catalog);
  const double with_temp =
      EstimateTime(plan, catalog, query, min_alloc).response_ms;

  CostParams max_alloc;
  max_alloc.buf_alloc = BufAlloc::kMaximum;
  const double without_temp =
      EstimateTime(plan, catalog, query, max_alloc).response_ms;
  // Temp I/O itself adds ~1000 page I/Os, but the interference term adds
  // even more: the scans alone are re-rated 3.5 -> 11.8 (2075 ms extra).
  EXPECT_GT(with_temp, without_temp + 2000.0);
}

TEST(ResponseModelTest, LoadInflatesOnlyLoadedSites) {
  Catalog catalog = MakeCatalog(2, 2);
  QueryGraph query = QueryGraph::Chain({0, 1});
  CostParams params;
  // Join at R1's server; R0's server only scans.
  Plan plan(MakeDisplay(MakeJoin(MakeScan(0, SiteAnnotation::kPrimaryCopy),
                                 MakeScan(1, SiteAnnotation::kPrimaryCopy),
                                 SiteAnnotation::kOuterRel)));
  BindSites(plan, catalog);
  const double base = EstimateTime(plan, catalog, query, params).response_ms;
  // Loading the scan-only server inflates its (non-critical) scan; loading
  // the join server inflates the critical path more.
  const double load_scan_server =
      EstimateTime(plan, catalog, query, params, {{ServerSite(0), 0.8}})
          .response_ms;
  const double load_join_server =
      EstimateTime(plan, catalog, query, params, {{ServerSite(1), 0.8}})
          .response_ms;
  EXPECT_GE(load_scan_server, base);
  EXPECT_GT(load_join_server, load_scan_server);
}

TEST(ResponseModelTest, IndependentSubtreesOverlap) {
  // A bushy 4-way join over 4 servers: the two bottom joins' builds draw
  // from different disks, so the estimate is far below the serial sum.
  Catalog catalog = MakeCatalog(4, 4);
  QueryGraph query = QueryGraph::Complete({0, 1, 2, 3});
  CostParams params;
  params.buf_alloc = BufAlloc::kMaximum;
  auto bushy = MakeJoin(
      MakeJoin(MakeScan(0, SiteAnnotation::kPrimaryCopy),
               MakeScan(1, SiteAnnotation::kPrimaryCopy),
               SiteAnnotation::kInnerRel),
      MakeJoin(MakeScan(2, SiteAnnotation::kPrimaryCopy),
               MakeScan(3, SiteAnnotation::kPrimaryCopy),
               SiteAnnotation::kInnerRel),
      SiteAnnotation::kInnerRel);
  Plan plan(MakeDisplay(std::move(bushy)));
  BindSites(plan, catalog);
  TimeEstimate estimate = EstimateTime(plan, catalog, query, params);
  const double one_scan = 250 * params.seq_page_ms;
  // Serial would be >= 4 scans (3500 ms); with overlap the critical path
  // is exactly three pipeline stages deep: max(build AB, build CD), then
  // probe AB feeding the top build, then probe CD feeding the top probe.
  EXPECT_LE(estimate.response_ms, 3.0 * one_scan + 100.0);
  EXPECT_GE(estimate.response_ms, 1.9 * one_scan);
}

TEST(ResponseModelTest, TotalIsSumResponseIsPath) {
  Catalog catalog = MakeCatalog(2, 2);
  QueryGraph query = QueryGraph::Chain({0, 1});
  CostParams params;
  Plan plan(MakeDisplay(MakeJoin(MakeScan(0, SiteAnnotation::kPrimaryCopy),
                                 MakeScan(1, SiteAnnotation::kPrimaryCopy),
                                 SiteAnnotation::kInnerRel)));
  BindSites(plan, catalog);
  TimeEstimate estimate = EstimateTime(plan, catalog, query, params);
  EXPECT_GT(estimate.total_ms, estimate.response_ms);
  // Total cost covers both scans' disk time plus network and CPU.
  EXPECT_GT(estimate.total_ms, 2 * 250 * params.seq_page_ms);
}

TEST(ResponseModelTest, MoreServersNeverWorseForQueryShipping) {
  // Splitting the same QS plan's relations across two servers can only
  // help the estimate (disk parallelism).
  QueryGraph query = QueryGraph::Chain({0, 1});
  CostParams params;
  params.buf_alloc = BufAlloc::kMinimum;
  Catalog one = MakeCatalog(2, 1);
  Catalog two = MakeCatalog(2, 2);
  Plan p1(MakeDisplay(MakeJoin(MakeScan(0, SiteAnnotation::kPrimaryCopy),
                               MakeScan(1, SiteAnnotation::kPrimaryCopy),
                               SiteAnnotation::kInnerRel)));
  Plan p2 = p1.Clone();
  BindSites(p1, one);
  BindSites(p2, two);
  EXPECT_LE(EstimateTime(p2, two, query, params).response_ms,
            EstimateTime(p1, one, query, params).response_ms);
}

}  // namespace
}  // namespace dimsum

#include "cost/response_time.h"

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "plan/binding.h"

namespace dimsum {
namespace {

Catalog PaperCatalog(int relations, int servers) {
  Catalog catalog;
  for (int i = 0; i < relations; ++i) {
    const RelationId id =
        catalog.AddRelation("R" + std::to_string(i), 10000, 100);
    catalog.PlaceRelation(id, ServerSite(i % servers));
  }
  return catalog;
}

Plan TwoWayPlan(SiteAnnotation scan, SiteAnnotation join) {
  return Plan(MakeDisplay(
      MakeJoin(MakeScan(0, scan), MakeScan(1, scan), join)));
}

TEST(ResponseTimeTest, ResponseNeverExceedsTotal) {
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = QueryGraph::Chain({0, 1});
  for (BufAlloc alloc : {BufAlloc::kMinimum, BufAlloc::kMaximum}) {
    CostParams params;
    params.buf_alloc = alloc;
    Plan plan = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
    BindSites(plan, catalog);
    TimeEstimate estimate = EstimateTime(plan, catalog, query, params);
    EXPECT_GT(estimate.response_ms, 0.0);
    EXPECT_LE(estimate.response_ms, estimate.total_ms + 1e-9);
  }
}

TEST(ResponseTimeTest, MaxAllocationFasterThanMin) {
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = QueryGraph::Chain({0, 1});
  CostParams min_params;
  min_params.buf_alloc = BufAlloc::kMinimum;
  CostParams max_params;
  max_params.buf_alloc = BufAlloc::kMaximum;
  Plan plan = TwoWayPlan(SiteAnnotation::kPrimaryCopy, SiteAnnotation::kInnerRel);
  BindSites(plan, catalog);
  const double t_min = EstimateTime(plan, catalog, query, min_params).response_ms;
  const double t_max = EstimateTime(plan, catalog, query, max_params).response_ms;
  EXPECT_LT(t_max, t_min);  // no temp I/O with maximum allocation
}

TEST(ResponseTimeTest, MinAllocQsSlowerThanDsNoCache) {
  // Figure 3 at 0% cache: executing the join at the client while scanning
  // at the server exploits disk parallelism; QS piles everything on the
  // server disk.
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = QueryGraph::Chain({0, 1});
  CostParams params;
  params.buf_alloc = BufAlloc::kMinimum;
  Plan ds = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  Plan qs = TwoWayPlan(SiteAnnotation::kPrimaryCopy, SiteAnnotation::kInnerRel);
  BindSites(ds, catalog);
  BindSites(qs, catalog);
  const double t_ds = EstimateTime(ds, catalog, query, params).response_ms;
  const double t_qs = EstimateTime(qs, catalog, query, params).response_ms;
  EXPECT_LT(t_ds, t_qs);
}

TEST(ResponseTimeTest, ServerLoadInflatesQueryShipping) {
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = QueryGraph::Chain({0, 1});
  CostParams params;
  Plan qs = TwoWayPlan(SiteAnnotation::kPrimaryCopy, SiteAnnotation::kInnerRel);
  BindSites(qs, catalog);
  const double unloaded = EstimateTime(qs, catalog, query, params).response_ms;
  const double loaded =
      EstimateTime(qs, catalog, query, params, {{ServerSite(0), 0.75}})
          .response_ms;
  EXPECT_GT(loaded, unloaded * 2.5);
}

TEST(ResponseTimeTest, CachingSpeedsUpDataShippingWithMaxAlloc) {
  // With maximum allocation there is no temp I/O, so reading cached data
  // locally (no page-fault round trips) is faster.
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = QueryGraph::Chain({0, 1});
  CostParams params;
  params.buf_alloc = BufAlloc::kMaximum;
  Plan ds0 = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  BindSites(ds0, catalog);
  const double uncached = EstimateTime(ds0, catalog, query, params).response_ms;
  catalog.SetCachedFraction(0, 1.0);
  catalog.SetCachedFraction(1, 1.0);
  Plan ds1 = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  BindSites(ds1, catalog);
  const double cached = EstimateTime(ds1, catalog, query, params).response_ms;
  EXPECT_LT(cached, uncached);
}

TEST(ResponseTimeTest, FaultingScanIsSlowerThanShippedScan) {
  // Same data volume crosses the wire, but the faulting scan is a serial
  // request/response chain while query shipping pipelines (Figure 5's
  // beyond-50% crossover effect).
  Catalog catalog = PaperCatalog(1, 1);
  QueryGraph query = QueryGraph::Chain({0});
  CostParams params;
  Plan faulting(MakeDisplay(MakeScan(0, SiteAnnotation::kClient)));
  Plan shipped(MakeDisplay(MakeScan(0, SiteAnnotation::kPrimaryCopy)));
  BindSites(faulting, catalog);
  BindSites(shipped, catalog);
  const double t_fault = EstimateTime(faulting, catalog, query, params).response_ms;
  const double t_ship = EstimateTime(shipped, catalog, query, params).response_ms;
  EXPECT_GT(t_fault, t_ship);
}

TEST(ResponseTimeTest, BushyPlanExploitsServersUnderMinAlloc) {
  // Four relations on four servers: a bushy plan with joins spread across
  // servers beats the same joins all at one site.
  Catalog catalog = PaperCatalog(4, 4);
  QueryGraph query = QueryGraph::Complete({0, 1, 2, 3});
  CostParams params;
  params.buf_alloc = BufAlloc::kMinimum;

  auto bushy_join = MakeJoin(
      MakeJoin(MakeScan(0, SiteAnnotation::kPrimaryCopy),
               MakeScan(1, SiteAnnotation::kPrimaryCopy),
               SiteAnnotation::kInnerRel),
      MakeJoin(MakeScan(2, SiteAnnotation::kPrimaryCopy),
               MakeScan(3, SiteAnnotation::kPrimaryCopy),
               SiteAnnotation::kInnerRel),
      SiteAnnotation::kInnerRel);
  Plan bushy(MakeDisplay(std::move(bushy_join)));
  BindSites(bushy, catalog);

  // All joins forced to server 1 by consumer annotations under a join at R0.
  auto deep = MakeJoin(
      MakeJoin(MakeJoin(MakeScan(0, SiteAnnotation::kPrimaryCopy),
                        MakeScan(1, SiteAnnotation::kPrimaryCopy),
                        SiteAnnotation::kInnerRel),
               MakeScan(2, SiteAnnotation::kPrimaryCopy),
               SiteAnnotation::kInnerRel),
      MakeScan(3, SiteAnnotation::kPrimaryCopy), SiteAnnotation::kInnerRel);
  Plan deep_plan(MakeDisplay(std::move(deep)));
  BindSites(deep_plan, catalog);

  const double t_bushy = EstimateTime(bushy, catalog, query, params).response_ms;
  const double t_deep =
      EstimateTime(deep_plan, catalog, query, params).response_ms;
  EXPECT_LT(t_bushy, t_deep);
}

TEST(CostModelTest, MetricsSelectable) {
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = QueryGraph::Chain({0, 1});
  CostModel model(catalog, CostParams{});
  Plan plan = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  EXPECT_EQ(model.PlanCost(plan, query, OptimizeMetric::kPagesSent), 500.0);
  const double response =
      model.PlanCost(plan, query, OptimizeMetric::kResponseTime);
  const double total = model.PlanCost(plan, query, OptimizeMetric::kTotalCost);
  EXPECT_GT(response, 0.0);
  EXPECT_GE(total, response);
}

TEST(CostModelTest, BindsPlanAsSideEffect) {
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = QueryGraph::Chain({0, 1});
  CostModel model(catalog, CostParams{});
  Plan plan = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  model.PlanCost(plan, query, OptimizeMetric::kPagesSent);
  EXPECT_TRUE(IsFullyBound(plan));
}

}  // namespace
}  // namespace dimsum

#include "exec/buffer_pool.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/task.h"

namespace dimsum {
namespace {

sim::Process AcquireHoldRelease(sim::Simulator& sim, BufferPool& pool,
                                int64_t frames, double hold_ms,
                                std::vector<double>* acquired_at) {
  co_await pool.Acquire(frames);
  acquired_at->push_back(sim.now());
  co_await sim.Delay(hold_ms);
  pool.Release(frames);
}

TEST(BufferPoolTest, ImmediateWhenAvailable) {
  sim::Simulator sim;
  BufferPool pool(sim, 100);
  std::vector<double> acquired;
  sim.Spawn(AcquireHoldRelease(sim, pool, 60, 5.0, &acquired));
  sim.Run();
  EXPECT_EQ(acquired, (std::vector<double>{0.0}));
  EXPECT_EQ(pool.free_frames(), 100);
}

TEST(BufferPoolTest, WaitsForRelease) {
  sim::Simulator sim;
  BufferPool pool(sim, 100);
  std::vector<double> acquired;
  sim.Spawn(AcquireHoldRelease(sim, pool, 80, 10.0, &acquired));
  sim.Spawn(AcquireHoldRelease(sim, pool, 80, 1.0, &acquired));
  sim.Run();
  ASSERT_EQ(acquired.size(), 2u);
  EXPECT_EQ(acquired[0], 0.0);
  EXPECT_EQ(acquired[1], 10.0);  // waits for the first to release
}

TEST(BufferPoolTest, FifoOrderPreserved) {
  sim::Simulator sim;
  BufferPool pool(sim, 100);
  std::vector<double> acquired;
  sim.Spawn(AcquireHoldRelease(sim, pool, 100, 5.0, &acquired));
  sim.Spawn(AcquireHoldRelease(sim, pool, 10, 5.0, &acquired));
  sim.Spawn(AcquireHoldRelease(sim, pool, 90, 5.0, &acquired));
  sim.Run();
  ASSERT_EQ(acquired.size(), 3u);
  // Second and third both fit after the first releases at t=5.
  EXPECT_EQ(acquired[1], 5.0);
  EXPECT_EQ(acquired[2], 5.0);
}

TEST(BufferPoolTest, FifoAdmissionUnderContention) {
  // Strict FIFO: a small request that *would* fit the free frames still
  // queues behind an earlier larger one -- no overtaking, so big joins
  // cannot starve behind a stream of small ones.
  sim::Simulator sim;
  BufferPool pool(sim, 100);
  std::vector<double> acquired;
  sim.Spawn(AcquireHoldRelease(sim, pool, 60, 10.0, &acquired));  // [0, 10)
  sim.Spawn(AcquireHoldRelease(sim, pool, 100, 2.0, &acquired));  // waits
  // 30 frames fit the 40 free right now, but the 100-frame request is
  // ahead in line.
  sim.Spawn(AcquireHoldRelease(sim, pool, 30, 1.0, &acquired));
  sim.Run();
  ASSERT_EQ(acquired.size(), 3u);
  EXPECT_EQ(acquired[0], 0.0);
  EXPECT_EQ(acquired[1], 10.0);  // admitted when the first releases
  EXPECT_EQ(acquired[2], 12.0);  // only after the 100-frame user is done
  EXPECT_EQ(pool.free_frames(), 100);
}

TEST(BufferPoolDeathTest, OversizedRequestFails) {
  sim::Simulator sim;
  BufferPool pool(sim, 100);
  std::vector<double> acquired;
  sim.Spawn(AcquireHoldRelease(sim, pool, 101, 1.0, &acquired));
  EXPECT_DEATH(sim.Run(), "exceeds physical memory");
}

TEST(BufferPoolDeathTest, ZeroAcquireFails) {
  sim::Simulator sim;
  BufferPool pool(sim, 100);
  std::vector<double> acquired;
  sim.Spawn(AcquireHoldRelease(sim, pool, 0, 1.0, &acquired));
  EXPECT_DEATH(sim.Run(), "empty buffer acquisition");
}

TEST(BufferPoolDeathTest, NegativeAcquireFails) {
  sim::Simulator sim;
  BufferPool pool(sim, 100);
  std::vector<double> acquired;
  sim.Spawn(AcquireHoldRelease(sim, pool, -5, 1.0, &acquired));
  EXPECT_DEATH(sim.Run(), "empty buffer acquisition");
}

TEST(BufferPoolDeathTest, ZeroReleaseFails) {
  sim::Simulator sim;
  BufferPool pool(sim, 100);
  EXPECT_DEATH(pool.Release(0), "empty buffer release");
}

TEST(BufferPoolDeathTest, NegativeReleaseFails) {
  sim::Simulator sim;
  BufferPool pool(sim, 100);
  EXPECT_DEATH(pool.Release(-1), "empty buffer release");
}

}  // namespace
}  // namespace dimsum

#include <algorithm>

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "plan/binding.h"

namespace dimsum {
namespace {

Catalog OneServerCatalog(int relations) {
  Catalog catalog;
  for (int i = 0; i < relations; ++i) {
    catalog.AddRelation("R" + std::to_string(i), 10000, 100);
    catalog.PlaceRelation(i, ServerSite(0));
  }
  return catalog;
}

Plan QsJoin(RelationId a, RelationId b) {
  return Plan(MakeDisplay(MakeJoin(MakeScan(a, SiteAnnotation::kPrimaryCopy),
                                   MakeScan(b, SiteAnnotation::kPrimaryCopy),
                                   SiteAnnotation::kInnerRel)));
}

Plan DsJoin(RelationId a, RelationId b) {
  return Plan(MakeDisplay(MakeJoin(MakeScan(a, SiteAnnotation::kClient),
                                   MakeScan(b, SiteAnnotation::kClient),
                                   SiteAnnotation::kConsumer)));
}

TEST(ConcurrentTest, SingleQueryBatchMatchesExecutePlan) {
  Catalog catalog = OneServerCatalog(2);
  QueryGraph query = QueryGraph::Chain({0, 1});
  SystemConfig config;
  config.num_servers = 1;
  Plan plan = QsJoin(0, 1);
  BindSites(plan, catalog);
  ExecMetrics single = ExecutePlan(plan, catalog, query, config);
  ConcurrentResult batch = ExecuteConcurrent(
      {WorkloadQuery{&plan, &query}}, catalog, config);
  EXPECT_EQ(batch.per_query.size(), 1u);
  EXPECT_EQ(batch.per_query[0].response_ms, single.response_ms);
  EXPECT_EQ(batch.makespan_ms, single.response_ms);
}

TEST(ConcurrentTest, TwoQueriesContendSuperLinearly) {
  // Two QS joins over disjoint relations on the same server: their scans
  // interleave on the shared disk and destroy each other's sequential
  // read-ahead (the same interference effect as Figure 3), so the makespan
  // is *more* than twice a solo run.
  Catalog catalog = OneServerCatalog(4);
  QueryGraph q1 = QueryGraph::Chain({0, 1});
  QueryGraph q2 = QueryGraph::Chain({2, 3});
  SystemConfig config;
  config.num_servers = 1;
  config.params.buf_alloc = BufAlloc::kMaximum;
  Plan p1 = QsJoin(0, 1);
  Plan p2 = QsJoin(2, 3);
  BindSites(p1, catalog);
  BindSites(p2, catalog);

  const double solo = ExecutePlan(p1, catalog, q1, config).response_ms;
  ConcurrentResult both = ExecuteConcurrent(
      {WorkloadQuery{&p1, &q1}, WorkloadQuery{&p2, &q2}}, catalog, config);
  EXPECT_GT(both.makespan_ms, solo * 2.0);
  // ... though never worse than if every read went fully random.
  EXPECT_LT(both.makespan_ms, solo * 8.0);
}

TEST(ConcurrentTest, MemoryAdmissionSerializesAndAvoidsThrashing) {
  // Two maximum-allocation joins need 300 frames each; with a ~300-frame
  // pool the second join waits for the first to release its memory. The
  // buffer pool thus acts as admission control: the serialized schedule
  // avoids the disk interference of running both scans at once, and the
  // makespan is the *sum* of two clean runs -- which here beats running
  // both concurrently (a classic thrashing-vs-admission effect).
  Catalog catalog = OneServerCatalog(4);
  QueryGraph q1 = QueryGraph::Chain({0, 1});
  QueryGraph q2 = QueryGraph::Chain({2, 3});
  SystemConfig roomy;
  roomy.num_servers = 1;
  roomy.params.buf_alloc = BufAlloc::kMaximum;
  roomy.site_memory_frames = 4096;
  SystemConfig tight = roomy;
  tight.site_memory_frames = 310;

  Plan p1 = DsJoin(0, 1);
  Plan p2 = DsJoin(2, 3);
  BindSites(p1, catalog);
  BindSites(p2, catalog);

  const double solo = ExecutePlan(p1, catalog, q1, roomy).response_ms;
  ConcurrentResult with_room = ExecuteConcurrent(
      {WorkloadQuery{&p1, &q1}, WorkloadQuery{&p2, &q2}}, catalog, roomy);
  ConcurrentResult squeezed = ExecuteConcurrent(
      {WorkloadQuery{&p1, &q1}, WorkloadQuery{&p2, &q2}}, catalog, tight);
  // Serialized: roughly two back-to-back solo runs.
  EXPECT_NEAR(squeezed.makespan_ms, 2.0 * solo, 0.25 * solo);
  // Admission control beats thrashing in this configuration.
  EXPECT_LT(squeezed.makespan_ms, with_room.makespan_ms);
  // And one query clearly finished before the other started heavy work.
  const double first = std::min(squeezed.per_query[0].response_ms,
                                squeezed.per_query[1].response_ms);
  EXPECT_LT(first, solo * 1.5);
}

TEST(ConcurrentTest, ClientCacheServesManyQueriesWithoutServer) {
  // Three DS queries over fully cached relations never touch the network.
  Catalog catalog = OneServerCatalog(2);
  catalog.SetCachedFraction(0, 1.0);
  catalog.SetCachedFraction(1, 1.0);
  QueryGraph query = QueryGraph::Chain({0, 1});
  SystemConfig config;
  config.num_servers = 1;
  config.params.buf_alloc = BufAlloc::kMaximum;
  Plan p1 = DsJoin(0, 1);
  Plan p2 = DsJoin(0, 1);
  Plan p3 = DsJoin(0, 1);
  BindSites(p1, catalog);
  BindSites(p2, catalog);
  BindSites(p3, catalog);
  ConcurrentResult result = ExecuteConcurrent(
      {WorkloadQuery{&p1, &query}, WorkloadQuery{&p2, &query},
       WorkloadQuery{&p3, &query}},
      catalog, config);
  for (const ExecMetrics& m : result.per_query) {
    EXPECT_EQ(m.data_pages_sent, 0);
  }
  EXPECT_EQ(result.per_query[0].bytes_sent, 0);
}

TEST(ConcurrentTest, BatchMetricsAreQueryAttributed) {
  // Regression: batch execution used to copy the *system-wide* counters
  // (bytes sent, per-site busy times, disk detail) into every query's
  // ExecMetrics, so summing per-query numbers over an N-query batch
  // counted the whole system N times. Per-query fields must now be
  // attributed to their query alone, with the system-wide totals reported
  // once in ConcurrentResult::totals.
  Catalog catalog = OneServerCatalog(4);
  QueryGraph q1 = QueryGraph::Chain({0, 1});
  QueryGraph q2 = QueryGraph::Chain({2, 3});
  SystemConfig config;
  config.num_servers = 1;
  config.params.buf_alloc = BufAlloc::kMaximum;
  Plan p1 = QsJoin(0, 1);
  Plan p2 = QsJoin(2, 3);
  BindSites(p1, catalog);
  BindSites(p2, catalog);
  ConcurrentResult both = ExecuteConcurrent(
      {WorkloadQuery{&p1, &q1}, WorkloadQuery{&p2, &q2}}, catalog, config);

  // The queries' own bytes sum exactly to the network's total: no double
  // counting, nothing unattributed.
  ASSERT_EQ(both.per_query.size(), 2u);
  EXPECT_GT(both.totals.bytes_sent, 0);
  EXPECT_EQ(both.per_query[0].bytes_sent + both.per_query[1].bytes_sent,
            both.totals.bytes_sent);
  // Identical queries over identically-placed relations ship the same
  // amount each -- half the batch total, not the batch total twice.
  EXPECT_EQ(both.per_query[0].bytes_sent, both.per_query[1].bytes_sent);
  EXPECT_EQ(both.per_query[0].data_pages_sent,
            both.per_query[1].data_pages_sent);
  // System-wide counters live only in totals; per-query entries no longer
  // mirror them.
  EXPECT_GT(both.totals.network_busy_ms, 0.0);
  EXPECT_EQ(both.per_query[0].network_busy_ms, 0.0);
  EXPECT_TRUE(both.per_query[0].cpu_busy_ms.empty());
  EXPECT_TRUE(both.per_query[0].disk_busy_ms.empty());
  EXPECT_EQ(both.per_query[0].disk.reads, 0u);
  EXPECT_GT(both.totals.disk.reads, 0u);
}

TEST(ConcurrentTest, StaggeredStartTimes) {
  // A query with start_ms > 0 is submitted at that virtual time and its
  // response time is measured from submission, not from time zero.
  Catalog catalog = OneServerCatalog(4);
  QueryGraph q1 = QueryGraph::Chain({0, 1});
  QueryGraph q2 = QueryGraph::Chain({2, 3});
  SystemConfig config;
  config.num_servers = 1;
  config.params.buf_alloc = BufAlloc::kMaximum;
  Plan p1 = QsJoin(0, 1);
  Plan p2 = QsJoin(2, 3);
  BindSites(p1, catalog);
  BindSites(p2, catalog);

  const double solo = ExecutePlan(p1, catalog, q1, config).response_ms;
  // Start the second query long after the first finishes: no contention,
  // both run at solo speed, and the makespan includes the offset.
  const double offset = solo * 10.0;
  WorkloadQuery wq1{&p1, &q1};
  WorkloadQuery wq2{&p2, &q2};
  wq2.start_ms = offset;
  ConcurrentResult result =
      ExecuteConcurrent({wq1, wq2}, catalog, config);
  EXPECT_EQ(result.per_query[0].response_ms, solo);
  // The late query runs uncontended (only residual disk state -- arm
  // position, controller cache -- separates it from a cold solo run).
  EXPECT_NEAR(result.per_query[1].response_ms, solo, 0.025 * solo);
  EXPECT_EQ(result.makespan_ms, offset + result.per_query[1].response_ms);
}

TEST(ConcurrentTest, DeterministicBatchReplay) {
  Catalog catalog = OneServerCatalog(4);
  QueryGraph q1 = QueryGraph::Chain({0, 1});
  QueryGraph q2 = QueryGraph::Chain({2, 3});
  SystemConfig config;
  config.num_servers = 1;
  config.server_disk_load_per_sec[ServerSite(0)] = 30.0;
  Plan p1 = QsJoin(0, 1);
  Plan p2 = DsJoin(2, 3);
  BindSites(p1, catalog);
  BindSites(p2, catalog);
  ConcurrentResult a = ExecuteConcurrent(
      {WorkloadQuery{&p1, &q1}, WorkloadQuery{&p2, &q2}}, catalog, config, 5);
  ConcurrentResult b = ExecuteConcurrent(
      {WorkloadQuery{&p1, &q1}, WorkloadQuery{&p2, &q2}}, catalog, config, 5);
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_EQ(a.per_query[0].response_ms, b.per_query[0].response_ms);
  EXPECT_EQ(a.per_query[1].response_ms, b.per_query[1].response_ms);
}

}  // namespace
}  // namespace dimsum

#include "exec/executor.h"

#include <gtest/gtest.h>

#include "cost/comm_cost.h"
#include "plan/binding.h"

namespace dimsum {
namespace {

Catalog PaperCatalog(int relations, int servers, double cached = 0.0) {
  Catalog catalog;
  for (int i = 0; i < relations; ++i) {
    const RelationId id =
        catalog.AddRelation("R" + std::to_string(i), 10000, 100);
    catalog.PlaceRelation(id, ServerSite(i % servers));
    catalog.SetCachedFraction(id, cached);
  }
  return catalog;
}

QueryGraph ChainQuery(int n, double selectivity = 1.0) {
  std::vector<RelationId> rels;
  for (int i = 0; i < n; ++i) rels.push_back(i);
  return QueryGraph::Chain(std::move(rels), selectivity);
}

Plan TwoWayPlan(SiteAnnotation scan, SiteAnnotation join) {
  return Plan(
      MakeDisplay(MakeJoin(MakeScan(0, scan), MakeScan(1, scan), join)));
}

/// Left-deep plan in the natural hash-join shape: each new base relation is
/// the build (inner) input, the accumulated result streams through as the
/// probe input -- so all builds can proceed in parallel while the probe
/// pipeline flows through every join.
Plan LeftDeepPlan(int n, SiteAnnotation scan, SiteAnnotation join) {
  std::unique_ptr<PlanNode> tree = MakeScan(0, scan);
  for (int i = 1; i < n; ++i) {
    tree = MakeJoin(MakeScan(i, scan), std::move(tree), join);
  }
  return Plan(MakeDisplay(std::move(tree)));
}

SystemConfig Config(int servers, BufAlloc alloc) {
  SystemConfig config;
  config.num_servers = servers;
  config.params.buf_alloc = alloc;
  return config;
}

TEST(ExecutorTest, TwoWayJoinCompletes) {
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = ChainQuery(2);
  Plan plan = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  BindSites(plan, catalog);
  ExecMetrics metrics =
      ExecutePlan(plan, catalog, query, Config(1, BufAlloc::kMinimum));
  EXPECT_GT(metrics.response_ms, 0.0);
  EXPECT_EQ(metrics.data_pages_sent, 500);
}

// The simulator's measured pages must agree with the analytic
// communication-cost model on the same bound plan.
TEST(ExecutorTest, PagesSentMatchesAnalyticModel) {
  struct Case {
    SiteAnnotation scan;
    SiteAnnotation join;
    double cached;
  };
  for (const Case& c :
       {Case{SiteAnnotation::kClient, SiteAnnotation::kConsumer, 0.0},
        Case{SiteAnnotation::kClient, SiteAnnotation::kConsumer, 0.5},
        Case{SiteAnnotation::kPrimaryCopy, SiteAnnotation::kInnerRel, 0.0},
        Case{SiteAnnotation::kPrimaryCopy, SiteAnnotation::kOuterRel, 0.25}}) {
    Catalog catalog = PaperCatalog(2, 2, c.cached);
    QueryGraph query = ChainQuery(2);
    Plan plan = TwoWayPlan(c.scan, c.join);
    BindSites(plan, catalog);
    SystemConfig config = Config(2, BufAlloc::kMaximum);
    CommCost analytic = ComputeCommCost(plan, catalog, query, config.params);
    ExecMetrics measured = ExecutePlan(plan, catalog, query, config);
    EXPECT_EQ(measured.data_pages_sent, analytic.pages)
        << "cached=" << c.cached;
  }
}

TEST(ExecutorTest, DeterministicReplay) {
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = ChainQuery(2);
  Plan plan = TwoWayPlan(SiteAnnotation::kPrimaryCopy, SiteAnnotation::kInnerRel);
  BindSites(plan, catalog);
  SystemConfig config = Config(1, BufAlloc::kMinimum);
  config.server_disk_load_per_sec[ServerSite(0)] = 40.0;
  ExecMetrics a = ExecutePlan(plan, catalog, query, config, /*seed=*/7);
  ExecMetrics b = ExecutePlan(plan, catalog, query, config, /*seed=*/7);
  EXPECT_EQ(a.response_ms, b.response_ms);
  EXPECT_EQ(a.data_pages_sent, b.data_pages_sent);
}

// Figure 3 at 0% caching: QS (scan + join temp I/O on one server disk)
// loses to DS (scan I/O at the server, join temp I/O at the client).
TEST(ExecutorTest, MinAllocInterferenceHurtsQueryShipping) {
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = ChainQuery(2);
  SystemConfig config = Config(1, BufAlloc::kMinimum);
  Plan ds = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  Plan qs = TwoWayPlan(SiteAnnotation::kPrimaryCopy, SiteAnnotation::kInnerRel);
  BindSites(ds, catalog);
  BindSites(qs, catalog);
  const double t_ds = ExecutePlan(ds, catalog, query, config).response_ms;
  const double t_qs = ExecutePlan(qs, catalog, query, config).response_ms;
  EXPECT_LT(t_ds, t_qs);
}

// Figure 3's right end: with everything cached, DS suffers the same
// scan/temp interference on the *client* disk and loses its advantage.
TEST(ExecutorTest, MinAllocCachingDegradesDataShipping) {
  QueryGraph query = ChainQuery(2);
  SystemConfig config = Config(1, BufAlloc::kMinimum);
  Catalog uncached = PaperCatalog(2, 1, 0.0);
  Catalog cached = PaperCatalog(2, 1, 1.0);
  Plan ds0 = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  Plan ds1 = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  BindSites(ds0, uncached);
  BindSites(ds1, cached);
  const double t0 = ExecutePlan(ds0, uncached, query, config).response_ms;
  const double t1 = ExecutePlan(ds1, cached, query, config).response_ms;
  EXPECT_GT(t1, t0);  // caching *hurts* DS under minimum allocation
}

// Figure 5: with maximum allocation there is no temp I/O; DS with a full
// cache beats QS (local reads, no communication), DS with an empty cache
// loses to QS (serial page faulting vs pipelined shipping).
TEST(ExecutorTest, MaxAllocCachingCrossover) {
  QueryGraph query = ChainQuery(2);
  SystemConfig config = Config(1, BufAlloc::kMaximum);
  Catalog uncached = PaperCatalog(2, 1, 0.0);
  Catalog cached = PaperCatalog(2, 1, 1.0);

  Plan qs = TwoWayPlan(SiteAnnotation::kPrimaryCopy, SiteAnnotation::kInnerRel);
  BindSites(qs, uncached);
  const double t_qs = ExecutePlan(qs, uncached, query, config).response_ms;

  Plan ds0 = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  BindSites(ds0, uncached);
  const double t_ds0 = ExecutePlan(ds0, uncached, query, config).response_ms;

  Plan ds1 = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  BindSites(ds1, cached);
  const double t_ds1 = ExecutePlan(ds1, cached, query, config).response_ms;

  EXPECT_GT(t_ds0, t_qs);  // faulting everything is worse than QS
  EXPECT_LT(t_ds1, t_qs);  // full cache beats QS
}

// Figure 4: under heavy server-disk load, client caching turns from a
// liability into a win for DS.
TEST(ExecutorTest, ServerLoadMakesCachingPayOff) {
  QueryGraph query = ChainQuery(2);
  SystemConfig config = Config(1, BufAlloc::kMinimum);
  config.server_disk_load_per_sec[ServerSite(0)] = 70.0;  // ~90% utilization
  Catalog uncached = PaperCatalog(2, 1, 0.0);
  Catalog cached = PaperCatalog(2, 1, 1.0);
  Plan ds0 = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  Plan ds1 = TwoWayPlan(SiteAnnotation::kClient, SiteAnnotation::kConsumer);
  BindSites(ds0, uncached);
  BindSites(ds1, cached);
  const double t0 = ExecutePlan(ds0, uncached, query, config, 3).response_ms;
  const double t1 = ExecutePlan(ds1, cached, query, config, 3).response_ms;
  EXPECT_LT(t1, t0);  // with a loaded server, caching helps
}

// Figure 8's driving effect: QS over more servers spreads scan and temp
// I/O across disks; DS stays bottlenecked on the client disk.
TEST(ExecutorTest, QueryShippingExploitsMultipleServers) {
  QueryGraph query = ChainQuery(10);
  SystemConfig one = Config(1, BufAlloc::kMinimum);
  SystemConfig five = Config(5, BufAlloc::kMinimum);

  Catalog catalog1 = PaperCatalog(10, 1);
  Plan qs1 = LeftDeepPlan(10, SiteAnnotation::kPrimaryCopy,
                          SiteAnnotation::kInnerRel);
  BindSites(qs1, catalog1);
  const double t1 = ExecutePlan(qs1, catalog1, query, one).response_ms;

  Catalog catalog5 = PaperCatalog(10, 5);
  Plan qs5 = LeftDeepPlan(10, SiteAnnotation::kPrimaryCopy,
                          SiteAnnotation::kInnerRel);
  BindSites(qs5, catalog5);
  const double t5 = ExecutePlan(qs5, catalog5, query, five).response_ms;

  EXPECT_LT(t5, t1 * 0.75);

  Catalog catalog_ds1 = PaperCatalog(10, 1);
  Plan ds1 = LeftDeepPlan(10, SiteAnnotation::kClient,
                          SiteAnnotation::kConsumer);
  BindSites(ds1, catalog_ds1);
  const double tds1 = ExecutePlan(ds1, catalog_ds1, query, one).response_ms;
  Catalog catalog_ds5 = PaperCatalog(10, 5);
  Plan ds5 = LeftDeepPlan(10, SiteAnnotation::kClient,
                          SiteAnnotation::kConsumer);
  BindSites(ds5, catalog_ds5);
  const double tds5 = ExecutePlan(ds5, catalog_ds5, query, five).response_ms;
  // DS barely benefits from extra servers (joins stay on the client disk).
  EXPECT_GT(tds5, tds1 * 0.75);
}

TEST(ExecutorTest, SelectionReducesShippedPages) {
  Catalog catalog = PaperCatalog(1, 1);
  QueryGraph query = ChainQuery(1);
  query.scan_selectivities = {0.2};
  // Select at the server (producer): only the filtered stream crosses.
  auto select = MakeSelect(MakeScan(0, SiteAnnotation::kPrimaryCopy), 0.2,
                           SiteAnnotation::kProducer);
  Plan plan(MakeDisplay(std::move(select)));
  BindSites(plan, catalog);
  ExecMetrics metrics =
      ExecutePlan(plan, catalog, query, Config(1, BufAlloc::kMaximum));
  EXPECT_EQ(metrics.data_pages_sent, 50);  // 2000 tuples = 50 pages
}

TEST(ExecutorTest, InMemoryJoinDoesNoTempIo) {
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph query = ChainQuery(2);
  Plan plan = TwoWayPlan(SiteAnnotation::kPrimaryCopy, SiteAnnotation::kInnerRel);
  BindSites(plan, catalog);
  ExecMetrics metrics =
      ExecutePlan(plan, catalog, query, Config(1, BufAlloc::kMaximum));
  // Server disk reads the two base relations and writes nothing.
  EXPECT_EQ(metrics.disk_busy_ms.at(kClientSite), 0.0);
  EXPECT_GT(metrics.disk_busy_ms.at(ServerSite(0)), 0.0);
}

TEST(ExecutorTest, HiSelQueryProducesSmallerResult) {
  Catalog catalog = PaperCatalog(2, 1);
  QueryGraph moderate = ChainQuery(2, 1.0);
  QueryGraph hisel = ChainQuery(2, 0.2);
  SystemConfig config = Config(1, BufAlloc::kMaximum);
  Plan p1 = TwoWayPlan(SiteAnnotation::kPrimaryCopy, SiteAnnotation::kInnerRel);
  Plan p2 = TwoWayPlan(SiteAnnotation::kPrimaryCopy, SiteAnnotation::kInnerRel);
  BindSites(p1, catalog);
  BindSites(p2, catalog);
  EXPECT_EQ(ExecutePlan(p1, catalog, moderate, config).data_pages_sent, 250);
  EXPECT_EQ(ExecutePlan(p2, catalog, hisel, config).data_pages_sent, 50);
}

}  // namespace
}  // namespace dimsum
